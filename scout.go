// Package scout is the public API of the SCOUT reproduction: an
// end-to-end network-policy fault-localization system after
// "Fault Localization in Large-Scale Network Policy Deployment"
// (Tammana et al., ICDCS 2018).
//
// The pipeline (paper Figure 6):
//
//  1. Collect TCAM rules (T) from every switch and compile logical rules
//     (L) from the controller's network policy.
//  2. Run the ROBDD-based L-T equivalence checker per switch; differences
//     yield missing rules.
//  3. Build switch and controller risk models and augment them with the
//     missing rules.
//  4. Run the SCOUT greedy localization algorithm to produce a hypothesis:
//     a minimal set of most-likely faulty policy objects.
//  5. Correlate the hypothesis with controller change logs and device
//     fault logs to infer physical-level root causes.
//
// Typical use:
//
//	f, _ := scout.NewFabric(pol, topology, scout.FabricOptions{})
//	f.Deploy()
//	// ... faults happen ...
//	report, _ := scout.NewAnalyzer().Analyze(f)
//	fmt.Println(report.Summary())
package scout

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scout/internal/correlate"
	"scout/internal/equiv"
	"scout/internal/fabric"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/probe"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/store"
)

// AnalyzerOptions tunes the end-to-end analysis.
type AnalyzerOptions struct {
	// IncludeSwitchRisk models each switch as a shared risk in the
	// controller risk model so whole-switch failures are localizable.
	// Default true.
	IncludeSwitchRisk *bool

	// ChangeWindow bounds how far back a change-log entry counts as
	// "recent" for SCOUT's second stage. Default 24h.
	ChangeWindow time.Duration

	// Signatures overrides the correlation engine's fault signatures;
	// nil selects the defaults.
	Signatures []correlate.Signature

	// UseNaiveChecker swaps the BDD equivalence checker for the exact-key
	// differ (valid only when rule matches never partially overlap; used
	// by ablation benchmarks).
	UseNaiveChecker bool

	// UseProbes derives observations from active connectivity probes
	// against the switch dataplane instead of exhaustive TCAM
	// verification (§III-C's "allowed to communicate but fail to do so"
	// observation source). Probing samples the header space, so extra
	// behaviour from corrupted rules is not reported in this mode.
	UseProbes bool

	// SessionMissingRuleCap bounds how many rules (missing + extra) a
	// Session caches per switch. A massively inconsistent switch can
	// report rule lists rivaling its whole TCAM; caching those for every
	// such switch made session memory unbounded. Reports over the cap are
	// still returned but not cached — the switch falls back to a re-check
	// on the next run instead of a replay (counted in
	// SessionStats.OverCap). 0 selects the default (4096); negative
	// disables the bound. One-shot Analyzers ignore it.
	SessionMissingRuleCap int

	// Workers bounds the number of concurrent per-switch equivalence
	// checks. L-T checks are independent across switches (§III-C checks
	// each switch on its own), so the check stage fans out over a pool of
	// Workers goroutines, each owning its own equiv.Checker; results are
	// folded back serially in ascending switch-ID order, so reports are
	// byte-for-byte identical for any worker count. 0 (the default)
	// selects runtime.NumCPU(); 1 restores the fully serial pipeline.
	Workers int

	// PrivateCheckers disables the shared frozen BDD base: every check
	// worker builds a private equiv.Checker from scratch instead of
	// forking a base warmed with the deployment's match encodings. This
	// is the pre-shared-base behaviour, kept for ablation (the sharedbdd
	// experiment measures the duplicated node construction it causes).
	// Reports are byte-identical either way — the base only moves where
	// encoding work happens, never what a check returns.
	PrivateCheckers bool

	// RefLocalizer runs every localization on the retained map-based
	// reference engine (localize.RefScout) instead of the compiled-plan
	// engine. Reports are byte-identical either way — the localizer CI
	// gate pins it — so this exists for ablation and differential
	// testing, like PrivateCheckers does for the shared BDD base.
	RefLocalizer bool

	// SessionNodeBudget bounds each session worker checker's private BDD
	// delta (in nodes). A checker over budget is first compacted (delta
	// GC around its live memo roots, keeping warm state) and Reset only
	// if compaction alone cannot get it under. 0 selects the default
	// (4 << 20); negative disables the bound. One-shot Analyzers ignore
	// it — their checkers live for a single run.
	SessionNodeBudget int

	// WarmStore, when set, gives Sessions durable warm state: on the
	// first run of a deployment the session loads a fingerprint-matching
	// frozen base and verdict cache from the store (a fresh process
	// replays a clean fabric with zero encodes), and after every run it
	// persists deltas through the store's write-behind queue (flushed by
	// Session.Close). It applies to the shared-base checker modes — the
	// default TCAM pipeline and probe sessions (verdicts only) — and is
	// ignored with UseNaiveChecker or PrivateCheckers, which have no
	// durable BDD state worth keeping. One-shot Analyzers ignore it.
	WarmStore *store.Store

	// BaseRegistry, when set, shares frozen whole-switch semantics BDDs
	// across every analyzer and session handed the same registry: a base
	// build resolves rule lists another deployment's base already froze
	// and grafts the donor BDD instead of re-folding it (verified
	// against the donor's canonical list, so fingerprint collisions fall
	// through to a private fold). Opt-in so ablation baselines keep
	// measuring unshared work.
	BaseRegistry *store.BaseRegistry
}

// Analyzer runs the SCOUT pipeline against a fabric.
type Analyzer struct {
	opts   AnalyzerOptions
	engine *correlate.Engine

	// The cached prober gives probe-mode analyses one probe.Prober per
	// deployment fingerprint instead of one per run, so the packet memo
	// amortizes across repeated analyses of the same deployment (watch
	// loops re-probing a live fabric), not just across switches within
	// one run. A recompile invalidates it — the prober reads rule lists
	// through its deployment, which must stay current. Guarded because
	// one Analyzer may serve concurrent Analyze calls.
	proberMu  sync.Mutex
	prober    *probe.Prober
	proberDep *Deployment
	proberFP  uint64

	// swModels, when non-nil (session-owned analyzers only), caches the
	// annotated per-switch risk models built for inequivalent switches,
	// keyed by switch and validated by (deployment, report) identity: a
	// session replaying a cached check report hands assemble the same
	// report pointer under the same deployment, which pins the model —
	// and therefore its compiled localization plan — as identical. Warm
	// runs then localize every still-broken switch with zero plan
	// compiles. Localization never mutates its view, so the cached model
	// is safe to share across runs and across the assemble fan-out.
	swModelMu sync.Mutex
	swModels  map[object.ID]*switchModelEntry
}

// switchModelEntry is one cached annotated switch model and the identity
// of the inputs it was built from.
type switchModelEntry struct {
	dep    *Deployment
	report *equiv.Report
	model  *risk.Model
}

// NewAnalyzer creates an analyzer. The zero AnalyzerOptions give the
// paper's configuration.
func NewAnalyzer(opts ...AnalyzerOptions) *Analyzer {
	var o AnalyzerOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.ChangeWindow <= 0 {
		o.ChangeWindow = 24 * time.Hour
	}
	return &Analyzer{opts: o, engine: correlate.NewEngine(o.Signatures)}
}

// SwitchReport is the per-switch analysis outcome.
type SwitchReport struct {
	Switch object.ID
	// Equivalent is true when the switch's TCAM matches the policy.
	Equivalent bool
	// MissingRules should have been deployed on this switch but are not.
	MissingRules []rule.Rule
	// ExtraRules are deployed but allow traffic the policy does not.
	ExtraRules []rule.Rule
	// Result is the SCOUT run on this switch's risk model (nil when the
	// switch is consistent).
	Result *localize.Result
}

// Report is the end-to-end analysis output.
type Report struct {
	// Consistent is true when every switch's TCAM matches the policy.
	Consistent bool
	// TotalMissing counts missing rules across switches.
	TotalMissing int
	// Switches holds per-switch reports (only inconsistent switches have
	// localization results), sorted by switch ID.
	Switches []SwitchReport
	// Controller is the SCOUT result on the controller risk model.
	Controller *localize.Result
	// ControllerView is the annotated controller risk view the global
	// localization ran on: a freshly built model for one-shot analyses, a
	// copy-on-write overlay over the cached pristine core for warm
	// session runs. It is a live structure (not a serializable result),
	// so it is excluded from the JSON form; its String() reports
	// overlay-aware element/edge/failure counts.
	ControllerView risk.View `json:"-"`
	// EncodeStats summarizes the check stage's BDD encoding work: the
	// shared frozen base's size, every worker checker's private delta,
	// and where match encodings were resolved from. Nil for observation
	// sources without BDD checkers (naive differ, probes). Like
	// ControllerView it is diagnostics, not result: it is excluded from
	// the JSON form so reports stay byte-identical across worker counts
	// and checker modes.
	EncodeStats *equiv.EncodeStats `json:"-"`
	// LocalizeStats is the localization engine's counter delta for this
	// run: plan compiles vs cache reuses, lazy-greedy coverage
	// re-evaluations vs the full rescans they replaced, and per-stage
	// timings. Nil when the run localized nothing (consistent fabric) or
	// under RefLocalizer. Diagnostics like EncodeStats, so excluded from
	// the JSON form.
	LocalizeStats *localize.EngineStats `json:"-"`
	// Hypothesis is the controller-model hypothesis: the minimal set of
	// most-likely faulty policy objects (may include switch objects).
	Hypothesis []object.Ref
	// RootCauses is the event-correlation outcome for the hypothesis.
	RootCauses *correlate.Report
	// Elapsed is the total analysis wall-clock time.
	Elapsed time.Duration
}

// State is the raw input of an analysis: the compiled desired state, the
// collected TCAM snapshots, and the two log streams. Production users
// populate it from their own controller and devices; Analyze populates
// it from the simulated fabric.
type State struct {
	// Deployment is the compiled desired state (L-type rules).
	Deployment *Deployment
	// TCAM maps each switch to its collected rules (T-type).
	TCAM map[object.ID][]rule.Rule
	// Changes is the controller change log (may be nil).
	Changes *ChangeLog
	// Faults is the device fault log (may be nil).
	Faults *FaultLog
	// Now anchors the change-window computation.
	Now time.Time
}

// Analyze runs the full pipeline against the fabric's current state.
func (a *Analyzer) Analyze(f *fabric.Fabric) (*Report, error) {
	d := f.Deployment()
	if d == nil {
		return nil, fmt.Errorf("scout: fabric has never been deployed")
	}
	if a.opts.UseProbes {
		return a.analyzeWithProbes(f)
	}
	return a.AnalyzeState(State{
		Deployment: d,
		TCAM:       f.CollectAll(),
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	})
}

// analyzeWithProbes runs the probe-based observation source, which needs
// live dataplane access rather than TCAM dumps. One prober is shared
// across the whole fan-out — and, via the analyzer's deployment-keyed
// cache, across runs — so probe-packet synthesis memoizes per rule key:
// switches sharing EPG pairs reuse each other's packets instead of
// regenerating them (the Prober's memo is safe for concurrent readers).
func (a *Analyzer) analyzeWithProbes(f *fabric.Fabric) (*Report, error) {
	start := time.Now()
	d := f.Deployment()
	prober := a.proberFor(d)
	switches := sortSwitches(f.Topology().Switches())
	reports, err := a.checkAll(switches, func(c *equiv.Checker, sw object.ID) (*equiv.Report, error) {
		return a.checkSwitch(f, d, c, prober, sw)
	})
	if err != nil {
		return nil, err
	}
	rep := a.assemble(a.controllerModel(d), d, f.ChangeLog(), f.FaultLog(), f.Now(), switches, reports)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// AnalyzeState runs the pipeline on raw collected state, independent of
// the simulator.
func (a *Analyzer) AnalyzeState(st State) (*Report, error) {
	start := time.Now()
	if st.Deployment == nil {
		return nil, fmt.Errorf("scout: state has no deployment")
	}
	st = st.withDefaultLogs()
	switches := st.sortedSwitches()
	base, _ := a.buildSharedBase(st.Deployment)
	pool := a.newCheckerPool(base, a.workers(len(switches)))
	check := func(c *equiv.Checker, sw object.ID) (*equiv.Report, error) {
		return a.checkState(st, c, sw)
	}
	var (
		reports []*equiv.Report
		plan    *dedupPlan
		err     error
	)
	if a.dedupEnabled() {
		logFPs, tcamFPs := a.stateFingerprints(st, switches)
		reports, plan, err = a.checkDeduped(st, switches, logFPs, tcamFPs, pool.checker, check)
	} else {
		reports, err = a.checkAllWith(switches, pool.checker, check)
	}
	if err != nil {
		return nil, err
	}
	rep := a.assemble(a.controllerModel(st.Deployment), st.Deployment, st.Changes, st.Faults, st.Now, switches, reports)
	rep.EncodeStats = pool.stats()
	plan.record(rep.EncodeStats)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// proberFor returns the cached prober for the deployment, rebuilding it
// when the deployment changed (pointer identity short-circuits the
// hashing, like the session's base key).
func (a *Analyzer) proberFor(d *Deployment) *probe.Prober {
	a.proberMu.Lock()
	defer a.proberMu.Unlock()
	if a.prober != nil && d == a.proberDep {
		return a.prober
	}
	fp := equiv.DeploymentFingerprint(d.BySwitch)
	if a.prober == nil || fp != a.proberFP {
		a.prober = probe.New(d)
		a.proberFP = fp
	} else {
		// Equal content at a new address: keep the memo, release the
		// superseded deployment instead of pinning it via the prober.
		a.prober.Rebind(d)
	}
	a.proberDep = d
	return a.prober
}

// ProberStats returns a snapshot of the cached prober's counters — the
// packet-memo hit/miss counts and the batch-classification counters —
// and whether a prober exists yet (probe-mode analyses create it on
// first use).
func (a *Analyzer) ProberStats() (probe.Stats, bool) {
	a.proberMu.Lock()
	defer a.proberMu.Unlock()
	if a.prober == nil {
		return probe.Stats{}, false
	}
	return a.prober.Stats(), true
}

// withDefaultLogs returns a copy of the state with nil logs replaced by
// empty ones, so the pipeline never branches on their presence.
func (st State) withDefaultLogs() State {
	if st.Changes == nil {
		st.Changes = &ChangeLog{}
	}
	if st.Faults == nil {
		st.Faults = &FaultLog{}
	}
	return st
}

// sortedSwitches returns the collected switch IDs in ascending order, the
// canonical fan-out and fold order.
func (st State) sortedSwitches() []object.ID {
	switches := make([]object.ID, 0, len(st.TCAM))
	for sw := range st.TCAM {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	return switches
}

// checkState computes one switch's equivalence report from collected
// state with the configured checker (BDD or naive).
func (a *Analyzer) checkState(st State, c *equiv.Checker, sw object.ID) (*equiv.Report, error) {
	logical := st.Deployment.RulesFor(sw)
	if a.opts.UseNaiveChecker {
		return equiv.NaiveCheck(logical, st.TCAM[sw]), nil
	}
	checkRep, err := c.Check(logical, st.TCAM[sw])
	if err != nil {
		return nil, fmt.Errorf("scout: equivalence check switch %d: %w", sw, err)
	}
	return checkRep, nil
}

// checkFunc computes one switch's equivalence report. The checker argument
// is private to the calling worker (nil in the naive and probe modes,
// which never touch it); implementations must otherwise only read shared
// state, since checkAll invokes them concurrently.
type checkFunc func(c *equiv.Checker, sw object.ID) (*equiv.Report, error)

// newWorkerChecker builds a private per-worker BDD checker, or nil when
// the configured observation source never uses one.
func (a *Analyzer) newWorkerChecker() *equiv.Checker {
	return a.newWorkerCheckerFrom(nil)
}

// newWorkerCheckerFrom builds a worker checker as a fork of the shared
// base when one was built, a private checker otherwise, and nil when the
// configured observation source never uses one.
func (a *Analyzer) newWorkerCheckerFrom(base *equiv.Base) *equiv.Checker {
	if a.opts.UseNaiveChecker || a.opts.UseProbes {
		return nil
	}
	if base != nil {
		return base.NewChecker()
	}
	return equiv.NewChecker()
}

// newWorkerCheckerSized is newWorkerCheckerFrom for callers that know
// their checker's delta budget (sessions): base forks pre-size their
// node array and tables for deltaNodes, skipping the growth ramp.
func (a *Analyzer) newWorkerCheckerSized(base *equiv.Base, deltaNodes int) *equiv.Checker {
	if a.opts.UseNaiveChecker || a.opts.UseProbes {
		return nil
	}
	if base != nil {
		return base.NewCheckerSized(deltaNodes)
	}
	return equiv.NewChecker()
}

// baseSemanticsTopK bounds how many whole-switch semantics folds the
// warmup freezes into the shared base. Lists are ranked most-duplicated
// first, so the cap sheds only the rarest fingerprints on fabrics with
// more distinct rule lists than this; their folds land in worker deltas
// exactly as before the semantics cache existed.
const baseSemanticsTopK = 1024

// buildSharedBase is the check stage's warmup pass: it gathers the
// distinct rule matches across the deployment — fanned out per switch
// over the worker pool — encodes each exactly once, then folds the
// top-K most duplicated whole-switch rule lists (ranked by canonical
// semantics fingerprint, most shared first) into frozen semantics roots,
// and freezes the result into an immutable base every worker's checker
// forks. Nil when the options call for private checkers or no BDD
// checkers at all.
//
// The base covers logical rule lists only: deployed TCAM rules are the
// deployment's rules minus faults, so in the common near-consistent case
// virtually every deployed match is warm too — and a consistent switch's
// TCAM side shares its logical list's semantics fingerprint, so even its
// whole-list fold resolves from the base. Corrupted entries' novel
// matches and drifted switches' folds land in the owning worker's
// copy-on-write delta. Keying the base off the deployment alone is what
// lets a Session reuse it across runs whose TCAM state drifts.
//
// The semantics folds build serially inside NewBase (one manager, not
// shareable mid-build), where the pre-warming design folded each list
// inside the parallel per-switch checks — a deliberate trade: the
// one-time serial warmup buys every consistent switch's check down to
// two hashes, and sessions amortize it across all runs of a deployment.
// A cold one-shot analysis on a many-core box pays a slice of its fold
// work serially; the foldshare experiment pins the payoff on node
// counters, which is what survives any core count.
func (a *Analyzer) buildSharedBase(d *Deployment) (*equiv.Base, equiv.BaseBuildStats) {
	if a.opts.UseNaiveChecker || a.opts.UseProbes || a.opts.PrivateCheckers {
		return nil, equiv.BaseBuildStats{}
	}
	switches := make([]object.ID, 0, len(d.BySwitch))
	for sw := range d.BySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	sets := make([]map[rule.Match]struct{}, len(switches))
	semFPs := make([]uint64, len(switches))
	a.forEach(len(switches), func(i int) {
		rules := d.BySwitch[switches[i]]
		set := make(map[rule.Match]struct{}, len(rules))
		equiv.CollectMatches(set, rules)
		sets[i] = set
		semFPs[i] = equiv.SemanticsFingerprint(rules)
	})
	merged := make(map[rule.Match]struct{})
	for _, set := range sets {
		for m := range set {
			merged[m] = struct{}{}
		}
	}
	matches := make([]rule.Match, 0, len(merged))
	for m := range merged {
		matches = append(matches, m)
	}
	equiv.SortMatches(matches)

	// Rank the distinct rule lists most-duplicated first (fingerprint
	// tiebreak, representative = lowest switch ID), so the build order —
	// and with it every frozen node ID — is deterministic for a given
	// deployment.
	type semGroup struct {
		fp    uint64
		count int
		rep   int
	}
	byFP := make(map[uint64]int, len(switches))
	groups := make([]semGroup, 0, len(switches))
	for i, fp := range semFPs {
		if g, ok := byFP[fp]; ok {
			groups[g].count++
			continue
		}
		byFP[fp] = len(groups)
		groups = append(groups, semGroup{fp: fp, count: 1, rep: i})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].count != groups[j].count {
			return groups[i].count > groups[j].count
		}
		return groups[i].fp < groups[j].fp
	})
	if len(groups) > baseSemanticsTopK {
		groups = groups[:baseSemanticsTopK]
	}
	lists := make([][]rule.Rule, len(groups))
	for i, g := range groups {
		lists[i] = d.BySwitch[switches[g.rep]]
	}
	// A shared BaseRegistry lets this build graft whole-switch semantics
	// BDDs another deployment's base already froze (collision-verified
	// against the donor's canonical list), then publishes this base's
	// roots for later builds. The typed-nil guard keeps the interface nil
	// when no registry was configured.
	var src equiv.SemanticsSource
	if a.opts.BaseRegistry != nil {
		src = a.opts.BaseRegistry
	}
	base, bstats := equiv.NewBaseWith(src, matches, lists...)
	if a.opts.BaseRegistry != nil {
		a.opts.BaseRegistry.RegisterBase(base)
	}
	return base, bstats
}

// dedupEnabled reports whether whole-switch check dedup applies. It
// rides the shared-base checker mode: the naive differ has nothing worth
// deduping, probes never reach the state-based check stage, and
// PrivateCheckers is the pre-sharing ablation baseline, which must keep
// measuring the duplicated work.
func (a *Analyzer) dedupEnabled() bool {
	return !a.opts.UseNaiveChecker && !a.opts.UseProbes && !a.opts.PrivateCheckers
}

// stateFingerprints hashes every switch's logical and TCAM rule lists
// over the worker pool — the dedup grouping key. Hashing is O(rules),
// trivial next to a BDD check; the session path skips this and reuses
// the fingerprints it already maintains per switch.
func (a *Analyzer) stateFingerprints(st State, switches []object.ID) (logFPs, tcamFPs []uint64) {
	logFPs = make([]uint64, len(switches))
	tcamFPs = make([]uint64, len(switches))
	a.forEach(len(switches), func(i int) {
		logFPs[i] = equiv.Fingerprint(st.Deployment.RulesFor(switches[i]))
		tcamFPs[i] = equiv.Fingerprint(st.TCAM[switches[i]])
	})
	return logFPs, tcamFPs
}

// dedupPlan is a whole-switch check dedup: switches sharing both the
// logical- and TCAM-side rule-list fingerprints form one group, the
// group's lowest-ID switch is checked, and every member replays the
// verdict. Equivalence reports are pure functions of the two rule lists,
// so a replayed report is byte-identical to re-running the check.
type dedupPlan struct {
	// reps holds one representative switch per group, in ascending order
	// (switches arrive sorted, so first-seen is lowest-ID).
	reps []object.ID
	// groupOf maps the i'th input switch to its group's index in reps.
	groupOf []int
	// groups counts multi-member groups; replays counts the non-rep
	// members — switches that got a verdict without a check.
	groups  int
	replays int
}

// buildDedupPlan groups switches by the (logical, TCAM) fingerprint
// pair, verifying each member against its group representative's actual
// rule lists so a 64-bit fingerprint collision degrades to an extra
// check, never a wrong report.
func buildDedupPlan(st State, switches []object.ID, logFPs, tcamFPs []uint64) *dedupPlan {
	plan := &dedupPlan{groupOf: make([]int, len(switches))}
	byKey := make(map[[2]uint64][]int, len(switches))
	sizes := make([]int, 0, len(switches))
	for i, sw := range switches {
		key := [2]uint64{logFPs[i], tcamFPs[i]}
		group := -1
		for _, g := range byKey[key] {
			rep := plan.reps[g]
			if rule.SlicesEqual(st.Deployment.RulesFor(sw), st.Deployment.RulesFor(rep)) &&
				rule.SlicesEqual(st.TCAM[sw], st.TCAM[rep]) {
				group = g
				break
			}
		}
		if group < 0 {
			group = len(plan.reps)
			plan.reps = append(plan.reps, sw)
			byKey[key] = append(byKey[key], group)
			sizes = append(sizes, 0)
		} else {
			plan.replays++
		}
		sizes[group]++
		plan.groupOf[i] = group
	}
	for _, n := range sizes {
		if n > 1 {
			plan.groups++
		}
	}
	return plan
}

// record publishes the plan's counters into the run's encode stats (a
// nil plan — dedup disabled — or nil stats is a no-op).
func (p *dedupPlan) record(es *equiv.EncodeStats) {
	if p == nil || es == nil {
		return
	}
	es.DedupGroups = p.groups
	es.DedupReplays = p.replays
}

// checkDeduped runs the check stage over one representative per dedup
// group — fanned through the same worker pool as an undeduped run — and
// replays each group's verdict into all its members' report slots,
// aligned with switches. Per-switch error attribution is preserved: a
// failing check is wrapped with the representative's switch ID, and the
// representative genuinely owns the offending rules (its group mates
// hold byte-equal lists).
func (a *Analyzer) checkDeduped(st State, switches []object.ID, logFPs, tcamFPs []uint64,
	checker func(worker int) *equiv.Checker, check checkFunc) ([]*equiv.Report, *dedupPlan, error) {
	plan := buildDedupPlan(st, switches, logFPs, tcamFPs)
	repReports, err := a.checkAllWith(plan.reps, checker, check)
	if err != nil {
		return nil, nil, err
	}
	reports := make([]*equiv.Report, len(switches))
	for i := range switches {
		reports[i] = repReports[plan.groupOf[i]]
	}
	return reports, plan, nil
}

// checkerPool hands each check-stage worker its BDD checker — a fork of
// the shared base when one was built, a private checker otherwise — and
// records them so the run's encoding work can be aggregated afterwards.
type checkerPool struct {
	a        *Analyzer
	base     *equiv.Base
	checkers []*equiv.Checker
}

// newCheckerPool sizes the pool for the given worker count. Slot k is
// written only by worker k (checkAllWith hands each worker a distinct
// index), so the pool needs no locking.
func (a *Analyzer) newCheckerPool(base *equiv.Base, workers int) *checkerPool {
	return &checkerPool{a: a, base: base, checkers: make([]*equiv.Checker, workers)}
}

// checker builds (and records) worker k's checker.
func (p *checkerPool) checker(k int) *equiv.Checker {
	c := p.a.newWorkerCheckerFrom(p.base)
	p.checkers[k] = c
	return c
}

// stats aggregates the run's encoding counters; nil when the run had no
// BDD checkers.
func (p *checkerPool) stats() *equiv.EncodeStats {
	if p.a.opts.UseNaiveChecker || p.a.opts.UseProbes {
		return nil
	}
	return equiv.AggregateEncodeStats(p.base, p.checkers)
}

// workers resolves the worker count for a check stage over n switches.
func (a *Analyzer) workers(n int) int {
	w := a.opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// checkAll runs the pure check stage of the pipeline: it fans check out
// over the switches with the configured worker pool and returns the
// reports aligned with the input slice. Each worker owns one
// equiv.Checker (a Checker is not safe for concurrent use, but reusing
// one per worker amortizes BDD construction across that worker's
// switches). With one worker — or one switch — it degenerates to the
// serial loop the pipeline always ran. The caller folds the aligned
// results serially, so report order never depends on scheduling. On
// error the pool drains early and the lowest-index recorded error is
// returned; when several switches fail concurrently, which one is
// reported may vary (successful analyses are deterministic, failures
// are exceptional).
func (a *Analyzer) checkAll(switches []object.ID, check checkFunc) ([]*equiv.Report, error) {
	return a.checkAllWith(switches, func(int) *equiv.Checker { return a.newWorkerChecker() }, check)
}

// checkAllWith is checkAll with caller-provided worker checkers:
// checker(k) returns worker k's private checker (a Session passes its
// persistent pool so memoized match encodings survive across runs; the
// one-shot analyzer builds fresh ones). Which worker checks which switch
// is scheduling-dependent, which is safe because checker state never
// influences check results, only their cost.
func (a *Analyzer) checkAllWith(switches []object.ID, checker func(worker int) *equiv.Checker, check checkFunc) ([]*equiv.Report, error) {
	reports := make([]*equiv.Report, len(switches))
	w := a.workers(len(switches))
	if w <= 1 {
		c := checker(0)
		for i, sw := range switches {
			rep, err := check(c, sw)
			if err != nil {
				return nil, err
			}
			reports[i] = rep
		}
		return reports, nil
	}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Bool
	)
	errs := make([]error, len(switches))
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := checker(k)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(switches) || failed.Load() {
					return
				}
				rep, err := check(c, switches[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				reports[i] = rep
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// forEach runs fn(i) for every i in [0, n) over the configured worker
// pool. It is the fan-out primitive for pipeline stages whose per-switch
// work is independent and infallible (the fold's risk-model builds);
// callers write results into index-addressed slices so output order never
// depends on scheduling.
func (a *Analyzer) forEach(n int, fn func(i int)) {
	w := a.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// sortSwitches returns a sorted copy of the switch IDs, the canonical
// fan-out and fold order.
func sortSwitches(switches []object.ID) []object.ID {
	out := append([]object.ID(nil), switches...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// controllerModel builds the fabric-wide controller risk model for the
// deployment per the analyzer's options, sharding the build by switch
// over the worker pool. The sharded build merges in ascending switch-ID
// order, so the result is identical at any worker count and a Session may
// cache it per deployment as the immutable pristine core that overlays
// stack on.
func (a *Analyzer) controllerModel(d *Deployment) *risk.Model {
	includeSwitch := true
	if a.opts.IncludeSwitchRisk != nil {
		includeSwitch = *a.opts.IncludeSwitchRisk
	}
	return risk.BuildControllerModelParallel(d,
		risk.ControllerModelOptions{IncludeSwitchRisk: includeSwitch},
		a.workers(len(d.BySwitch)))
}

// oracle builds the change-log oracle anchored at now.
func (a *Analyzer) oracle(changes *ChangeLog, now time.Time) localize.ChangeLogOracle {
	return localize.ChangeLogOracle{Log: changes, Since: now.Add(-a.opts.ChangeWindow)}
}

// assemble runs the pipeline stages downstream of the check stage. The
// per-switch residue — risk-model build plus localization for every
// inequivalent switch, and the controller-model augmentation patch — fans
// out over the worker pool (patches only read the still-pristine
// controller view); then the serial fold walks the switches in ascending
// ID order to count missing rules and replay the patches, and the global
// localization/correlation pass finishes the report. The only serial
// stages left are order-dependent by construction: the O(failures) patch
// replay and the single controller localize.Scout, which runs on the
// compiled-plan engine (cached CSR/bitset plan plus O(marks) overlay
// delta), so its cost is the greedy rounds themselves, not model-sized
// setup. switches must be sorted ascending and aligned with checkReps.
// ctrl is consumed (marked in place): the one-shot analyzer passes a
// fresh model, a warm session a copy-on-write overlay over its cached
// pristine core.
func (a *Analyzer) assemble(ctrl risk.Marker, d *Deployment, changes *ChangeLog, faults *FaultLog,
	now time.Time, switches []object.ID, checkReps []*equiv.Report) *Report {
	oracle := a.oracle(changes, now)
	lstatsBefore := localize.StatsSnapshot()

	srs := make([]SwitchReport, len(switches))
	patches := make([]*risk.Patch, len(switches))
	a.forEach(len(switches), func(i int) {
		srs[i] = a.buildSwitchReport(d, oracle, switches[i], checkReps[i])
		if !srs[i].Equivalent {
			patches[i] = risk.AugmentControllerModelPatch(ctrl, switches[i], srs[i].MissingRules, d.Provenance)
		}
	})

	rep := &Report{Consistent: true, Switches: srs, ControllerView: ctrl}
	for i := range srs {
		if srs[i].Equivalent {
			continue
		}
		rep.Consistent = false
		rep.TotalMissing += len(srs[i].MissingRules)
		patches[i].Apply(ctrl)
	}
	if !rep.Consistent {
		rep.Controller = a.localizeScout(ctrl, oracle)
		rep.Hypothesis = rep.Controller.Hypothesis
		rep.RootCauses = a.engine.Correlate(rep.Hypothesis, changes, faults)
	}
	if !rep.Consistent && !a.opts.RefLocalizer {
		delta := localize.StatsSnapshot().Delta(lstatsBefore)
		rep.LocalizeStats = &delta
	}
	return rep
}

// localizeScout dispatches one Scout run to the configured localization
// engine. The per-switch calls run concurrently inside the assemble
// fan-out over one shared compiled plan per model, which is safe: plans
// are immutable once compiled and the per-run state is private.
func (a *Analyzer) localizeScout(v risk.View, oracle localize.ChangeOracle) *localize.Result {
	if a.opts.RefLocalizer {
		return localize.RefScout(v, oracle)
	}
	return localize.Scout(v, oracle)
}

// buildSwitchReport assembles one switch's report from its check result,
// running the switch-model localization when the switch is inequivalent.
// It only reads shared state, so reports for distinct switches build
// concurrently.
func (a *Analyzer) buildSwitchReport(d *Deployment, oracle localize.ChangeOracle, sw object.ID, checkRep *equiv.Report) SwitchReport {
	sr := SwitchReport{
		Switch:       sw,
		Equivalent:   checkRep.Equivalent,
		MissingRules: checkRep.MissingRules,
		ExtraRules:   checkRep.ExtraRules,
	}
	if !checkRep.Equivalent {
		sr.Result = a.localizeScout(a.switchModel(d, sw, checkRep), oracle)
	}
	return sr
}

// switchModel returns the annotated risk model for one inequivalent
// switch, served from the session's model cache when the same
// (deployment, report) pair was localized before. One-shot analyzers
// (nil cache) build fresh — their models cannot outlive the run anyway.
func (a *Analyzer) switchModel(d *Deployment, sw object.ID, checkRep *equiv.Report) *risk.Model {
	if a.swModels == nil {
		return risk.BuildAnnotatedSwitchModel(d, sw, checkRep.MissingRules)
	}
	a.swModelMu.Lock()
	ent := a.swModels[sw]
	a.swModelMu.Unlock()
	if ent != nil && ent.dep == d && ent.report == checkRep {
		return ent.model
	}
	m := risk.BuildAnnotatedSwitchModel(d, sw, checkRep.MissingRules)
	a.swModelMu.Lock()
	a.swModels[sw] = &switchModelEntry{dep: d, report: checkRep, model: m}
	a.swModelMu.Unlock()
	return m
}

// checkSwitch produces the missing/extra-rule report for one switch using
// the configured observation source (BDD checker, naive differ, or
// dataplane probes). The deployment is passed in so the hot per-switch
// path never re-fetches it; prober, when non-nil, is the run-shared
// prober whose packet memo amortizes synthesis across switches.
func (a *Analyzer) checkSwitch(f *fabric.Fabric, d *Deployment, checker *equiv.Checker, prober *probe.Prober, sw object.ID) (*equiv.Report, error) {
	if a.opts.UseProbes {
		s, err := f.Switch(sw)
		if err != nil {
			return nil, fmt.Errorf("scout: probe switch %d: %w", sw, err)
		}
		if prober == nil {
			prober = probe.New(d)
		}
		violations := prober.ProbeSwitch(sw, s.TCAM())
		return &equiv.Report{
			Equivalent:   len(violations) == 0,
			MissingRules: probe.MissingRules(violations),
		}, nil
	}
	deployed, err := f.CollectTCAM(sw)
	if err != nil {
		return nil, fmt.Errorf("scout: collect switch %d: %w", sw, err)
	}
	logical := d.RulesFor(sw)
	if a.opts.UseNaiveChecker {
		return equiv.NaiveCheck(logical, deployed), nil
	}
	rep, err := checker.Check(logical, deployed)
	if err != nil {
		return nil, fmt.Errorf("scout: equivalence check switch %d: %w", sw, err)
	}
	return rep, nil
}

// AnalyzeSwitch runs the pipeline for a single switch — the event-driven
// collection mode of §III-C (e.g. triggered by a device fault event). The
// risk model is the switch risk model, so the hypothesis is scoped to
// that switch's policy objects.
func (a *Analyzer) AnalyzeSwitch(f *fabric.Fabric, sw object.ID) (*SwitchReport, error) {
	d := f.Deployment()
	if d == nil {
		return nil, fmt.Errorf("scout: fabric has never been deployed")
	}
	checkRep, err := a.checkSwitch(f, d, a.newWorkerChecker(), nil, sw)
	if err != nil {
		return nil, err
	}
	sr := a.buildSwitchReport(d, a.oracle(f.ChangeLog(), f.Now()), sw, checkRep)
	return &sr, nil
}

// MarshalJSON serializes the report (for dashboards and tooling).
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	return json.Marshal(struct {
		*alias
		ElapsedMillis int64 `json:"elapsedMillis"`
	}{
		alias:         (*alias)(r),
		ElapsedMillis: r.Elapsed.Milliseconds(),
	})
}

// Summary renders a human-readable digest of the report.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Consistent {
		b.WriteString("network state consistent: every switch TCAM matches the policy\n")
		return b.String()
	}
	fmt.Fprintf(&b, "network state INCONSISTENT: %d missing rules across %d switches\n",
		r.TotalMissing, len(r.inconsistentSwitches()))
	fmt.Fprintf(&b, "hypothesis (%d faulty objects):\n", len(r.Hypothesis))
	for _, ref := range r.Hypothesis {
		fmt.Fprintf(&b, "  - %s\n", ref)
	}
	if r.RootCauses != nil && len(r.RootCauses.RootCauses) > 0 {
		b.WriteString("most likely root causes:\n")
		for _, rc := range r.RootCauses.RootCauses {
			fmt.Fprintf(&b, "  - %s (explains %d objects)\n", rc.Description, len(rc.Objects))
		}
	} else {
		b.WriteString("no physical root cause matched (silent fault, e.g. TCAM corruption)\n")
	}
	return b.String()
}

func (r *Report) inconsistentSwitches() []object.ID {
	var out []object.ID
	for _, sr := range r.Switches {
		if !sr.Equivalent {
			out = append(out, sr.Switch)
		}
	}
	return out
}
