// Quickstart: build the paper's 3-tier web-service policy (Figure 1),
// deploy it on a simulated fabric, break one filter, and let SCOUT
// localize the faulty object.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"scout"
)

// workers shards the per-switch equivalence checks (0 = NumCPU).
var workers = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Express the tenant intent: Web ↔ App on port 80, App ↔ DB on
	//    ports 80 and 700 (the paper's Figure 1).
	p := scout.NewPolicy("three-tier")
	p.AddVRF(scout.VRF{ID: 101, Name: "vrf-101"})
	p.AddEPG(scout.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(scout.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(scout.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(scout.Endpoint{ID: 11, Name: "EP1", EPG: 1, Switch: 1})
	p.AddEndpoint(scout.Endpoint{ID: 12, Name: "EP2", EPG: 2, Switch: 2})
	p.AddEndpoint(scout.Endpoint{ID: 13, Name: "EP3", EPG: 3, Switch: 3})
	p.AddFilter(scout.Filter{ID: 80, Name: "port-80/allow", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 80),
	}})
	p.AddFilter(scout.Filter{ID: 700, Name: "port-700/allow", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 700),
	}})
	p.AddContract(scout.Contract{ID: 201, Name: "Web-App", Filters: []scout.ObjectID{80}})
	p.AddContract(scout.Contract{ID: 202, Name: "App-DB", Filters: []scout.ObjectID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)

	// 2. Deploy onto the simulated fabric (controller → agents → TCAM).
	f, err := scout.NewFabric(p, scout.TopologyFromPolicy(p), scout.FabricOptions{Seed: 1})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	fmt.Println("deployed 3-tier policy across 3 switches")

	// 3. Break filter 700: every TCAM rule derived from it vanishes (a
	//    full object fault), silently breaking App ↔ DB on port 700.
	removed, err := f.InjectObjectFault(scout.FilterRef(700), 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("injected fault: filter:700 lost %d TCAM rules\n\n", removed)

	// 4. Run the SCOUT pipeline: collect TCAMs, BDD-check against the
	//    policy, localize faulty objects, correlate root causes.
	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	fmt.Printf("\nanalysis took %v across %d switches\n", report.Elapsed, len(report.Switches))
	return nil
}
