// Scorecompare contrasts SCOUT with the SCORE baseline on the same
// failure signature, demonstrating the paper's central accuracy claim:
// SCORE's fixed hit-ratio threshold misses partial object faults, while
// SCOUT's change-log stage recovers them.
//
//	go run ./examples/scorecompare
package main

import (
	"flag"
	"fmt"
	"log"

	"scout"
)

// workers shards the per-switch equivalence checks (0 = NumCPU).
var workers = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := scout.ProductionWorkloadSpec()
	spec.EPGs = 150
	spec.Contracts = 100
	spec.Filters = 50
	spec.TargetPairs = 1500
	spec.Switches = 10

	pol, topo, err := scout.GenerateWorkload(spec, 7)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 7})
	if err != nil {
		return err
	}
	since := f.Now()
	if err := f.Deploy(); err != nil {
		return err
	}

	// Ground truth: one full fault on a filter and one partial fault on a
	// contract. Not every generated object ends up with deployed rules,
	// so scan until each injection actually removes something.
	full, err := injectFirst(f, 1.0, func(i scout.ObjectID) scout.ObjectRef {
		return scout.FilterRef(5000 + i)
	})
	if err != nil {
		return err
	}
	partial, err := injectFirst(f, 0.3, func(i scout.ObjectID) scout.ObjectRef {
		return scout.ContractRef(3000 + i)
	})
	if err != nil {
		return err
	}
	groundTruth := []scout.ObjectRef{full, partial}
	fmt.Printf("injected faults (ground truth): full %s, partial %s\n\n", full, partial)

	// Shared pipeline front half: the analyzer produces per-switch missing
	// rules; stack a copy-on-write failure overlay on a pristine
	// controller model and annotate it from them, so SCOUT and SCORE run
	// on identical inputs (an overlay and an annotated clone are
	// interchangeable behind scout.RiskView).
	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	d := f.Deployment()
	pristine := scout.BuildControllerRiskModelParallel(d,
		scout.ControllerModelOptions{IncludeSwitchRisk: true}, *workers)
	model := scout.NewRiskOverlay(pristine)
	for _, sr := range report.Switches {
		if !sr.Equivalent {
			scout.AugmentControllerRiskModel(model, sr.Switch, sr.MissingRules, d.Provenance)
		}
	}
	fmt.Printf("annotated view: %s\n", model)
	fmt.Printf("failure signature: %d observations, %d suspect objects\n\n",
		len(model.FailureSignature()), len(model.SuspectSet()))

	oracle := scout.ChangeLogOracle{Log: f.ChangeLog(), Since: since}
	show("SCOUT", scout.Localize(model, oracle), groundTruth)
	show("SCORE-1.0", scout.LocalizeSCORE(model, 1.0), groundTruth)
	show("SCORE-0.6", scout.LocalizeSCORE(model, 0.6), groundTruth)
	return nil
}

// injectFirst injects a fault into the first object (by candidate index)
// that actually has deployed rules, returning its ref.
func injectFirst(f *scout.Fabric, fraction float64, candidate func(scout.ObjectID) scout.ObjectRef) (scout.ObjectRef, error) {
	for i := scout.ObjectID(0); i < 50; i++ {
		ref := candidate(i)
		removed, err := f.InjectObjectFault(ref, fraction)
		if err != nil {
			return scout.ObjectRef{}, err
		}
		if removed > 0 {
			return ref, nil
		}
	}
	return scout.ObjectRef{}, fmt.Errorf("no candidate object with deployed rules")
}

func show(name string, res *scout.LocalizationResult, truth []scout.ObjectRef) {
	acc := res.Evaluate(truth)
	fmt.Printf("%-10s hypothesis=%v\n", name, res.Hypothesis)
	fmt.Printf("%-10s precision=%.2f recall=%.2f unexplained=%d\n\n",
		"", acc.Precision, acc.Recall, len(res.Unexplained))
}
