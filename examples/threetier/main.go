// Threetier reproduces the paper's §V-B use cases end to end on the
// 3-tier web-service policy:
//
//	UC1 — TCAM overflow: a stream of new filters overflows a switch's
//	      TCAM; SCOUT localizes the undeployed filters and the
//	      correlation engine tags them with the overflow fault.
//	UC2 — Unresponsive switch: a switch silently drops controller
//	      instructions during an 'add filter' push; SCOUT localizes the
//	      missing filter and names the unreachable switch as root cause.
//	UC3 — Too many missing rules: a large policy lands on the
//	      unresponsive switch; thousands of rules go missing but the
//	      hypothesis collapses to the single faulty switch.
//
//	go run ./examples/threetier
package main

import (
	"flag"
	"fmt"
	"log"

	"scout"
)

// workers shards the per-switch equivalence checks (0 = NumCPU).
var workers = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== UC1: TCAM overflow ===")
	if err := tcamOverflow(); err != nil {
		return err
	}
	fmt.Println("\n=== UC2: unresponsive switch ===")
	if err := unresponsiveSwitch(); err != nil {
		return err
	}
	fmt.Println("\n=== UC3: too many missing rules ===")
	return tooManyMissingRules()
}

// threeTier builds the Figure 1 policy.
func threeTier() *scout.Policy {
	p := scout.NewPolicy("three-tier")
	p.AddVRF(scout.VRF{ID: 101, Name: "vrf-101"})
	p.AddEPG(scout.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(scout.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(scout.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(scout.Endpoint{ID: 11, Name: "EP1", EPG: 1, Switch: 1})
	p.AddEndpoint(scout.Endpoint{ID: 12, Name: "EP2", EPG: 2, Switch: 2})
	p.AddEndpoint(scout.Endpoint{ID: 13, Name: "EP3", EPG: 3, Switch: 3})
	p.AddFilter(scout.Filter{ID: 80, Name: "port-80", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 80),
	}})
	p.AddContract(scout.Contract{ID: 201, Name: "Web-App", Filters: []scout.ObjectID{80}})
	p.AddContract(scout.Contract{ID: 202, Name: "App-DB", Filters: []scout.ObjectID{80}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	return p
}

// tcamOverflow mimics the paper's dynamic policy change: filters are
// added to Contract:App-DB one after another until the switch TCAM
// overflows and rule installation goes incomplete.
func tcamOverflow() error {
	p := threeTier()
	f, err := scout.NewFabric(p, scout.TopologyFromPolicy(p), scout.FabricOptions{
		Seed:         1,
		TCAMCapacity: 16, // tiny ACL TCAM to force overflow
	})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	// Continuously add one new filter after another (paper §V-B).
	for i := 0; i < 12; i++ {
		id := scout.ObjectID(1000 + i)
		if err := f.AddFilter(scout.Filter{
			ID:      id,
			Name:    fmt.Sprintf("svc-port-%d", 9000+i),
			Entries: []scout.FilterEntry{scout.PortEntry(scout.ProtoTCP, uint16(9000+i))},
		}); err != nil {
			return err
		}
		if err := f.AddFilterToContract(202, id); err != nil {
			return err
		}
	}
	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	return nil
}

// unresponsiveSwitch makes switch 2 silently drop controller traffic
// while a new filter is pushed.
func unresponsiveSwitch() error {
	p := threeTier()
	f, err := scout.NewFabric(p, scout.TopologyFromPolicy(p), scout.FabricOptions{Seed: 2})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	if err := f.Disconnect(2); err != nil {
		return err
	}
	if err := f.AddFilter(scout.Filter{ID: 443, Name: "port-443", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 443),
	}}); err != nil {
		return err
	}
	if err := f.AddFilterToContract(202, 443); err != nil {
		return err
	}
	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	return nil
}

// tooManyMissingRules pushes a large policy onto an unresponsive switch:
// the equivalence checker reports a flood of missing rules, and SCOUT
// collapses them to the switch itself.
func tooManyMissingRules() error {
	// A larger generated policy concentrated on few switches.
	spec := scout.TestbedWorkloadSpec()
	spec.EPGs = 80
	spec.Contracts = 60
	spec.Filters = 30
	spec.TargetPairs = 400
	spec.Switches = 4
	p, topo, err := scout.GenerateWorkload(spec, 7)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 3})
	if err != nil {
		return err
	}
	// Switch 1 is down from the start: it misses the entire deployment.
	if err := f.Disconnect(1); err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	fmt.Printf("missing rules reported by the checker: %d\n", report.TotalMissing)
	fmt.Print(report.Summary())
	return nil
}
