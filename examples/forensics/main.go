// Forensics demonstrates post-incident analysis with the state collector
// and a persistent analysis session: TCAM state is snapshotted into
// epochs on a schedule and continuously verified by a scout.Session, a
// scripted incident (JSON scenario) unfolds between collections, and the
// operator reconstructs what happened — diffing epochs and re-verifying
// only the switches the incident touched (the session replays cached
// verdicts for the rest).
//
//	go run ./examples/forensics
package main

import (
	"flag"
	"fmt"
	"log"

	"scout"
)

// incident is the replayable trouble-ticket artifact: switch 2 loses its
// control channel, then a filter rollout passes it by, and a TCAM
// corruption silently damages switch 1.
const incident = `{
  "name": "ticket-4711: intermittent drops after https rollout",
  "steps": [
    {"op": "disconnect", "switch": 2},
    {"op": "add-filter", "filter": {"id": 8443, "name": "alt-https", "proto": 6, "portLo": 8443, "portHi": 8443}},
    {"op": "attach-filter", "contract": 202, "filterId": 8443},
    {"op": "reconnect", "switch": 2},
    {"op": "corrupt", "switch": 1, "count": 1, "field": "vrf"}
  ]
}`

// workers shards the per-switch equivalence checks (0 = NumCPU).
var workers = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The 3-tier policy from the paper's Figure 1.
	p := scout.NewPolicy("three-tier")
	p.AddVRF(scout.VRF{ID: 101, Name: "vrf-101"})
	p.AddEPG(scout.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(scout.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(scout.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(scout.Endpoint{ID: 11, Name: "EP1", EPG: 1, Switch: 1})
	p.AddEndpoint(scout.Endpoint{ID: 12, Name: "EP2", EPG: 2, Switch: 2})
	p.AddEndpoint(scout.Endpoint{ID: 13, Name: "EP3", EPG: 3, Switch: 3})
	p.AddFilter(scout.Filter{ID: 80, Name: "http", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 80),
	}})
	p.AddContract(scout.Contract{ID: 201, Name: "Web-App", Filters: []scout.ObjectID{80}})
	p.AddContract(scout.Contract{ID: 202, Name: "App-DB", Filters: []scout.ObjectID{80}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)

	f, err := scout.NewFabric(p, scout.TopologyFromPolicy(p), scout.FabricOptions{Seed: 4711})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}

	// Periodic collection feeding a persistent session: the baseline
	// epoch is fully verified (cold run) and its verdicts cached.
	sess, err := scout.NewSession(f, scout.AnalyzerOptions{Workers: *workers})
	if err != nil {
		return err
	}
	collector := scout.NewCollector(f, 8)
	baseline := collector.Snapshot()
	baseRep, err := sess.AnalyzeEpoch(baseline)
	if err != nil {
		return err
	}
	fmt.Printf("epoch %d collected: %d rules (baseline, consistent=%v)\n",
		baseline.Seq, baseline.RuleCount(), baseRep.Consistent)

	// The incident unfolds (replayed from the ticket's scenario JSON).
	sc, err := scout.ParseScenario([]byte(incident))
	if err != nil {
		return err
	}
	if _, err := sc.Run(f); err != nil {
		return err
	}
	incidentEpoch := collector.Snapshot()
	fmt.Printf("epoch %d collected: %d rules (post-incident)\n\n",
		incidentEpoch.Seq, incidentEpoch.RuleCount())

	// Forensics step 1: what changed between epochs?
	fmt.Println("epoch diff (baseline → post-incident):")
	for _, delta := range scout.DiffEpochs(baseline, incidentEpoch) {
		fmt.Printf("  switch %d: +%d rules, -%d rules\n",
			delta.Switch, len(delta.Added), len(delta.Removed))
	}

	// Forensics step 2: delta re-verification of the post-incident epoch.
	// The session re-checks only the switches whose logical or TCAM rules
	// changed and replays the cached baseline verdicts for the rest; the
	// report is byte-identical to a cold full analysis.
	before := sess.Stats()
	report, err := sess.AnalyzeEpoch(incidentEpoch)
	if err != nil {
		return err
	}
	after := sess.Stats()
	fmt.Printf("\ndelta re-verification: re-checked %d/%d switches (%d replayed from cache)\n\n",
		after.Checked-before.Checked, len(report.Switches), after.Replayed-before.Replayed)
	fmt.Print(report.Summary())
	// The session backs the view with a copy-on-write overlay over its
	// cached pristine model; the printed counts include the overlay's
	// failure marks.
	fmt.Printf("\ncontroller risk view: %s\n", report.ControllerView)

	// Forensics step 3: localization trace for the ticket.
	if report.Controller != nil {
		fmt.Println("\nlocalization trace:")
		for i, step := range report.Controller.Steps {
			fmt.Printf("  round %d: picked %v (covered %d observations)\n",
				i+1, step.Picked, step.Coverage)
		}
		if len(report.Controller.ChangeLogPicks) > 0 {
			fmt.Printf("  change-log stage added: %v\n", report.Controller.ChangeLogPicks)
		}
	}
	return nil
}
