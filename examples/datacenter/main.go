// Datacenter runs the SCOUT pipeline against a production-like policy
// (hundreds of EPGs, heavy risk sharing, calibrated to the paper's
// cluster statistics) with several simultaneous, heterogeneous faults:
// an evicted filter, a TCAM corruption, and a disconnected switch that
// misses a policy change.
//
//	go run ./examples/datacenter
package main

import (
	"flag"
	"fmt"
	"log"

	"scout"
)

// workers shards the per-switch equivalence checks (0 = NumCPU).
var workers = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A mid-size production-like policy (scaled down from the paper's
	// cluster so the example finishes in seconds).
	spec := scout.ProductionWorkloadSpec()
	spec.EPGs = 150
	spec.Contracts = 100
	spec.Filters = 50
	spec.TargetPairs = 1500
	spec.Switches = 12

	pol, topo, err := scout.GenerateWorkload(spec, 2018)
	if err != nil {
		return err
	}
	st := pol.Stats()
	fmt.Printf("generated policy: %d VRFs, %d EPGs, %d contracts, %d filters, %d EPG pairs\n",
		st.VRFs, st.EPGs, st.Contracts, st.Filters, st.EPGPairs)

	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 99})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}

	// Fault 1: full object fault on a filter (e.g. a software bug dropped
	// it from every switch agent's logical view). Scan for a filter that
	// actually has deployed rules.
	var fullRef scout.ObjectRef
	for i := scout.ObjectID(0); i < 50; i++ {
		ref := scout.FilterRef(5000 + i)
		removed, err := f.InjectObjectFault(ref, 1.0)
		if err != nil {
			return err
		}
		if removed > 0 {
			fullRef = ref
			fmt.Printf("fault 1: full fault on %s (%d rules lost)\n", ref, removed)
			break
		}
	}
	// Fault 2: partial fault on an EPG — only some of its rule instances
	// are lost (the regime SCORE's threshold misses).
	var partialRef scout.ObjectRef
	for i := scout.ObjectID(0); i < 150; i++ {
		ref := scout.EPGRef(1000 + i)
		if ref == fullRef {
			continue
		}
		removed, err := f.InjectObjectFault(ref, 0.4)
		if err != nil {
			return err
		}
		if removed > 0 {
			partialRef = ref
			fmt.Printf("fault 2: partial fault on %s (%d rules lost)\n", ref, removed)
			break
		}
	}
	_ = partialRef
	// Fault 3: switch 3 disconnects, then a policy change passes it by.
	// Attach the new filter to a contract that certainly has bindings.
	boundContract := pol.Bindings[0].Contract
	if err := f.Disconnect(3); err != nil {
		return err
	}
	if err := f.AddFilter(scout.Filter{ID: 9999, Name: "emergency-allow", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 8443),
	}}); err != nil {
		return err
	}
	if err := f.AddFilterToContract(boundContract, 9999); err != nil {
		return err
	}
	fmt.Printf("fault 3: switch 3 offline while filter:9999 joined contract:%d\n", boundContract)

	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Summary())

	fmt.Println("\nper-switch view (inconsistent switches only):")
	for _, sr := range report.Switches {
		if sr.Equivalent {
			continue
		}
		fmt.Printf("  switch %d: %d missing rules, local hypothesis %v\n",
			sr.Switch, len(sr.MissingRules), sr.Result.Hypothesis)
	}
	fmt.Printf("\nanalysis wall-clock: %v\n", report.Elapsed)
	return nil
}
