module scout

go 1.22
