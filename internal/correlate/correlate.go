// Package correlate implements the paper's event correlation engine (§V):
// it joins the localization hypothesis (faulty policy objects) with the
// controller's change log and the devices' fault log to infer the most
// likely physical-level root causes. The engine is signature-driven:
// known fault classes (TCAM overflow, unresponsive switch, …) match
// pre-configured signatures; objects whose failures match nothing are
// tagged unknown.
package correlate

import (
	"fmt"
	"sort"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
)

// Signature describes a known physical-fault class. Match decides whether
// a fault event explains a policy-object failure; Describe renders the
// inferred root cause for the report.
type Signature struct {
	Name     string
	Code     faultlog.FaultCode
	Match    func(f faultlog.Fault, change faultlog.Change) bool
	Describe func(f faultlog.Fault) string
}

// DefaultSignatures returns the signatures for the §V-B fault classes.
// Admins extend the engine with additional signatures over time.
func DefaultSignatures() []Signature {
	return []Signature{
		{
			Name: "tcam-overflow",
			Code: faultlog.FaultTCAMOverflow,
			Describe: func(f faultlog.Fault) string {
				return fmt.Sprintf("TCAM overflow on switch %d (%s)", f.Switch, f.Detail)
			},
		},
		{
			Name: "unresponsive-switch",
			Code: faultlog.FaultSwitchUnreachable,
			Describe: func(f faultlog.Fault) string {
				return fmt.Sprintf("switch %d unreachable during policy change (%s)", f.Switch, f.Detail)
			},
		},
		{
			Name: "agent-crash",
			Code: faultlog.FaultAgentCrash,
			Describe: func(f faultlog.Fault) string {
				return fmt.Sprintf("switch %d agent crashed mid-update (%s)", f.Switch, f.Detail)
			},
		},
		{
			Name: "control-channel-disruption",
			Code: faultlog.FaultControlChannel,
			Describe: func(f faultlog.Fault) string {
				return fmt.Sprintf("control channel to switch %d disrupted (%s)", f.Switch, f.Detail)
			},
		},
	}
}

// Engine correlates hypotheses with logs.
type Engine struct {
	sigs []Signature
}

// NewEngine creates an engine with the given signatures; nil selects
// DefaultSignatures.
func NewEngine(sigs []Signature) *Engine {
	if sigs == nil {
		sigs = DefaultSignatures()
	}
	return &Engine{sigs: append([]Signature(nil), sigs...)}
}

// AddSignature registers an additional signature.
func (e *Engine) AddSignature(s Signature) { e.sigs = append(e.sigs, s) }

// Diagnosis is the per-object correlation outcome.
type Diagnosis struct {
	// Object is the faulty policy object from the hypothesis.
	Object object.Ref
	// Change is the most recent change-log entry for the object, if any.
	Change *faultlog.Change
	// Causes lists matched physical root causes.
	Causes []Cause
	// Unknown is set when no signature matched (e.g. silent TCAM
	// corruption): the object is real but its physical cause is not in
	// the logs.
	Unknown bool
}

// Cause is one matched physical-level root cause.
type Cause struct {
	Signature   string
	Fault       faultlog.Fault
	Description string
}

// Report aggregates correlation results for a hypothesis.
type Report struct {
	Diagnoses []Diagnosis
	// RootCauses ranks distinct (signature, switch) causes by how many
	// hypothesis objects they explain — the engine's "most likely root
	// causes" output.
	RootCauses []RankedCause
}

// RankedCause is a distinct physical cause with its impacted objects.
type RankedCause struct {
	Signature   string
	Switch      object.ID
	Description string
	Objects     []object.Ref
}

// Correlate executes the three-step §V-A procedure for every hypothesis
// object: find its change-log entries, window the fault log to faults
// active at change time, and match signatures.
func (e *Engine) Correlate(hypothesis []object.Ref, changes *faultlog.ChangeLog, faults *faultlog.FaultLog) *Report {
	rep := &Report{}
	type causeKey struct {
		sig string
		sw  object.ID
	}
	ranked := make(map[causeKey]*RankedCause)
	rankedObjs := make(map[causeKey]object.Set)

	for _, obj := range hypothesis {
		d := Diagnosis{Object: obj}
		var at time.Time
		var relevantSwitches map[object.ID]struct{}

		if obj.Kind == object.KindSwitch {
			// A physical switch in the hypothesis: correlate directly
			// against faults on that switch, active now or in the past.
			relevantSwitches = map[object.ID]struct{}{obj.ID: {}}
			for _, f := range faults.OnSwitch(obj.ID) {
				e.matchFault(&d, f, faultlog.Change{})
			}
		} else {
			change, ok := changes.LastChange(obj)
			if ok {
				d.Change = &change
				at = change.Time
				if len(change.Switches) > 0 {
					relevantSwitches = make(map[object.ID]struct{}, len(change.Switches))
					for _, sw := range change.Switches {
						relevantSwitches[sw] = struct{}{}
					}
				}
				// Step 2: faults active when the change was applied.
				for _, f := range faults.ActiveAt(at) {
					if relevantSwitches != nil {
						if _, ok := relevantSwitches[f.Switch]; !ok {
							continue
						}
					}
					e.matchFault(&d, f, change)
				}
			}
		}

		d.Unknown = len(d.Causes) == 0
		rep.Diagnoses = append(rep.Diagnoses, d)
		for _, c := range d.Causes {
			k := causeKey{sig: c.Signature, sw: c.Fault.Switch}
			rc, ok := ranked[k]
			if !ok {
				rc = &RankedCause{
					Signature:   c.Signature,
					Switch:      c.Fault.Switch,
					Description: c.Description,
				}
				ranked[k] = rc
				rankedObjs[k] = make(object.Set)
			}
			// An object may match several fault events of the same class
			// on the same switch (e.g. repeated overflow events); count
			// it once per distinct cause.
			if !rankedObjs[k].Has(obj) {
				rankedObjs[k].Add(obj)
				rc.Objects = append(rc.Objects, obj)
			}
		}
	}

	for _, rc := range ranked {
		object.SortRefs(rc.Objects)
		rep.RootCauses = append(rep.RootCauses, *rc)
	}
	sort.Slice(rep.RootCauses, func(i, j int) bool {
		a, b := rep.RootCauses[i], rep.RootCauses[j]
		if len(a.Objects) != len(b.Objects) {
			return len(a.Objects) > len(b.Objects)
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Signature < b.Signature
	})
	return rep
}

func (e *Engine) matchFault(d *Diagnosis, f faultlog.Fault, change faultlog.Change) {
	for _, sig := range e.sigs {
		if sig.Code != f.Code {
			continue
		}
		if sig.Match != nil && !sig.Match(f, change) {
			continue
		}
		desc := f.Code.String()
		if sig.Describe != nil {
			desc = sig.Describe(f)
		}
		d.Causes = append(d.Causes, Cause{
			Signature:   sig.Name,
			Fault:       f,
			Description: desc,
		})
	}
}
