package correlate

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
)

var t0 = time.Date(2018, 7, 2, 9, 0, 0, 0, time.UTC)

func TestCorrelateTCAMOverflow(t *testing.T) {
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	// The overflow fault is active when the filter change is applied —
	// the §V-B "TCAM overflow" use case.
	faults.Raise(t0, faultlog.FaultTCAMOverflow, 2, "tcam at 4096/4096 entries")
	changes.Append(t0.Add(time.Minute), faultlog.OpAdd, object.Filter(7), "add filter", 2)

	rep := NewEngine(nil).Correlate([]object.Ref{object.Filter(7)}, changes, faults)
	if len(rep.Diagnoses) != 1 {
		t.Fatalf("diagnoses = %d", len(rep.Diagnoses))
	}
	d := rep.Diagnoses[0]
	if d.Unknown || len(d.Causes) != 1 {
		t.Fatalf("diagnosis = %+v", d)
	}
	if d.Causes[0].Signature != "tcam-overflow" {
		t.Errorf("signature = %q", d.Causes[0].Signature)
	}
	if d.Change == nil || d.Change.Object != object.Filter(7) {
		t.Error("diagnosis must carry the change entry")
	}
	if len(rep.RootCauses) != 1 || rep.RootCauses[0].Switch != 2 {
		t.Errorf("RootCauses = %+v", rep.RootCauses)
	}
}

func TestCorrelateFaultInactiveAtChangeTime(t *testing.T) {
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultTCAMOverflow, 2, "")
	faults.Clear(t0.Add(time.Minute), faultlog.FaultTCAMOverflow, 2)
	// Change applied after the fault cleared: no correlation.
	changes.Append(t0.Add(time.Hour), faultlog.OpAdd, object.Filter(7), "", 2)

	rep := NewEngine(nil).Correlate([]object.Ref{object.Filter(7)}, changes, faults)
	if !rep.Diagnoses[0].Unknown {
		t.Error("cleared fault must not explain a later change")
	}
}

func TestCorrelateSwitchScoping(t *testing.T) {
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultSwitchUnreachable, 9, "")
	// The change was pushed to switch 2 only; the fault is on switch 9.
	changes.Append(t0.Add(time.Minute), faultlog.OpAdd, object.Filter(7), "", 2)

	rep := NewEngine(nil).Correlate([]object.Ref{object.Filter(7)}, changes, faults)
	if !rep.Diagnoses[0].Unknown {
		t.Error("fault on an unrelated switch must not match")
	}

	// Without switch scoping on the change, any active fault matches.
	changes2 := faultlog.NewChangeLog()
	changes2.Append(t0.Add(time.Minute), faultlog.OpAdd, object.Filter(7), "")
	rep = NewEngine(nil).Correlate([]object.Ref{object.Filter(7)}, changes2, faults)
	if rep.Diagnoses[0].Unknown {
		t.Error("unscoped change should match any active fault")
	}
}

func TestCorrelateSwitchObjectInHypothesis(t *testing.T) {
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultSwitchUnreachable, 4, "heartbeat lost")

	rep := NewEngine(nil).Correlate([]object.Ref{object.Switch(4)}, changes, faults)
	d := rep.Diagnoses[0]
	if d.Unknown || len(d.Causes) != 1 || d.Causes[0].Signature != "unresponsive-switch" {
		t.Errorf("switch hypothesis diagnosis = %+v", d)
	}
}

func TestCorrelateNoChangeLogEntry(t *testing.T) {
	rep := NewEngine(nil).Correlate(
		[]object.Ref{object.Filter(1)},
		faultlog.NewChangeLog(), faultlog.NewFaultLog())
	if !rep.Diagnoses[0].Unknown {
		t.Error("object with no change history must be unknown")
	}
}

func TestRootCauseRanking(t *testing.T) {
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultSwitchUnreachable, 2, "")
	faults.Raise(t0, faultlog.FaultTCAMOverflow, 3, "")
	// Three filters changed while switch 2 was down; one while switch 3
	// overflowed.
	for i := 1; i <= 3; i++ {
		changes.Append(t0.Add(time.Minute), faultlog.OpAdd, object.Filter(object.ID(i)), "", 2)
	}
	changes.Append(t0.Add(time.Minute), faultlog.OpAdd, object.Filter(9), "", 3)

	hyp := []object.Ref{object.Filter(1), object.Filter(2), object.Filter(3), object.Filter(9)}
	rep := NewEngine(nil).Correlate(hyp, changes, faults)
	if len(rep.RootCauses) != 2 {
		t.Fatalf("root causes = %d", len(rep.RootCauses))
	}
	if rep.RootCauses[0].Switch != 2 || len(rep.RootCauses[0].Objects) != 3 {
		t.Errorf("top cause = %+v, want switch 2 with 3 objects", rep.RootCauses[0])
	}
}

func TestCustomSignature(t *testing.T) {
	eng := NewEngine(nil)
	eng.AddSignature(Signature{
		Name: "corruption-heuristic",
		Code: faultlog.FaultTCAMCorruption,
		Describe: func(f faultlog.Fault) string {
			return fmt.Sprintf("suspected bit corruption on switch %d", f.Switch)
		},
	})
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultTCAMCorruption, 5, "parity mismatch")
	changes.Append(t0.Add(time.Second), faultlog.OpModify, object.Filter(1), "", 5)

	rep := eng.Correlate([]object.Ref{object.Filter(1)}, changes, faults)
	if rep.Diagnoses[0].Unknown {
		t.Fatal("custom signature must match")
	}
	if !strings.Contains(rep.Diagnoses[0].Causes[0].Description, "suspected bit corruption") {
		t.Errorf("description = %q", rep.Diagnoses[0].Causes[0].Description)
	}
}

func TestSignatureMatchPredicate(t *testing.T) {
	eng := NewEngine([]Signature{{
		Name: "overflow-on-add-only",
		Code: faultlog.FaultTCAMOverflow,
		Match: func(f faultlog.Fault, c faultlog.Change) bool {
			return c.Op == faultlog.OpAdd
		},
	}})
	changes := faultlog.NewChangeLog()
	faults := faultlog.NewFaultLog()
	faults.Raise(t0, faultlog.FaultTCAMOverflow, 2, "")
	changes.Append(t0.Add(time.Second), faultlog.OpDelete, object.Filter(1), "", 2)

	rep := eng.Correlate([]object.Ref{object.Filter(1)}, changes, faults)
	if !rep.Diagnoses[0].Unknown {
		t.Error("predicate must filter out delete changes")
	}
}
