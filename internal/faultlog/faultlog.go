// Package faultlog provides the two system-level log streams the SCOUT
// event-correlation engine consumes (§V): the controller's policy change
// log (what was changed, when, to which objects) and the network devices'
// fault log (physical-level fault events such as TCAM overflow or an
// unresponsive switch).
package faultlog

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scout/internal/object"
)

// ChangeOp enumerates policy change operations recorded by the controller.
type ChangeOp int

// Change operations.
const (
	OpAdd ChangeOp = iota + 1
	OpModify
	OpDelete
)

// String returns the operation name.
func (op ChangeOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Change is one controller change-log entry.
type Change struct {
	Seq    int        `json:"seq"`
	Time   time.Time  `json:"time"`
	Op     ChangeOp   `json:"op"`
	Object object.Ref `json:"object"`
	Detail string     `json:"detail,omitempty"`
	// Switches lists the switches the change was pushed to (empty when the
	// change did not reach any switch).
	Switches []object.ID `json:"switches,omitempty"`
}

// ChangeLog is an append-only log of policy changes, safe for concurrent
// use.
type ChangeLog struct {
	mu      sync.RWMutex
	entries []Change
	nextSeq int
}

// NewChangeLog returns an empty change log.
func NewChangeLog() *ChangeLog { return &ChangeLog{} }

// Append records a change and returns the stored entry (with Seq set).
func (l *ChangeLog) Append(at time.Time, op ChangeOp, obj object.Ref, detail string, switches ...object.ID) Change {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	c := Change{
		Seq:      l.nextSeq,
		Time:     at,
		Op:       op,
		Object:   obj,
		Detail:   detail,
		Switches: append([]object.ID(nil), switches...),
	}
	l.entries = append(l.entries, c)
	return c
}

// Len returns the number of entries.
func (l *ChangeLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries returns a snapshot of all entries in append order.
func (l *ChangeLog) Entries() []Change {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Change(nil), l.entries...)
}

// ByObject returns entries for obj in append order.
func (l *ChangeLog) ByObject(obj object.Ref) []Change {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Change
	for _, c := range l.entries {
		if c.Object == obj {
			out = append(out, c)
		}
	}
	return out
}

// LastChange returns the most recent entry for obj, if any.
func (l *ChangeLog) LastChange(obj object.Ref) (Change, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := len(l.entries) - 1; i >= 0; i-- {
		if l.entries[i].Object == obj {
			return l.entries[i], true
		}
	}
	return Change{}, false
}

// ChangedSince reports whether obj has a change entry at or after t.
func (l *ChangeLog) ChangedSince(obj object.Ref, t time.Time) bool {
	c, ok := l.LastChange(obj)
	return ok && !c.Time.Before(t)
}

// RecentObjects returns the distinct objects changed at or after t, sorted.
func (l *ChangeLog) RecentObjects(t time.Time) []object.Ref {
	l.mu.RLock()
	defer l.mu.RUnlock()
	set := make(object.Set)
	for _, c := range l.entries {
		if !c.Time.Before(t) {
			set.Add(c.Object)
		}
	}
	return set.Sorted()
}

// FaultCode identifies a class of physical-level fault, mirroring the
// device fault codes the paper's correlation engine matches signatures
// against.
type FaultCode int

// Physical fault codes.
const (
	FaultTCAMOverflow FaultCode = iota + 1
	FaultSwitchUnreachable
	FaultAgentCrash
	FaultControlChannel
	FaultTCAMCorruption // usually NOT logged by devices (silent fault)
)

// String returns the canonical fault-code name.
func (c FaultCode) String() string {
	switch c {
	case FaultTCAMOverflow:
		return "tcam-overflow"
	case FaultSwitchUnreachable:
		return "switch-unreachable"
	case FaultAgentCrash:
		return "agent-crash"
	case FaultControlChannel:
		return "control-channel-disruption"
	case FaultTCAMCorruption:
		return "tcam-corruption"
	default:
		return fmt.Sprintf("fault(%d)", int(c))
	}
}

// Fault is one device fault-log event. A fault is raised at Raised and, if
// the condition ended, cleared at Cleared (zero time means still active).
type Fault struct {
	Seq     int       `json:"seq"`
	Code    FaultCode `json:"code"`
	Switch  object.ID `json:"switch"`
	Raised  time.Time `json:"raised"`
	Cleared time.Time `json:"cleared,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// ActiveAt reports whether the fault condition held at time t.
func (f Fault) ActiveAt(t time.Time) bool {
	if t.Before(f.Raised) {
		return false
	}
	return f.Cleared.IsZero() || t.Before(f.Cleared)
}

// FaultLog is an append-only device fault log, safe for concurrent use.
type FaultLog struct {
	mu      sync.RWMutex
	faults  []Fault
	nextSeq int
}

// NewFaultLog returns an empty fault log.
func NewFaultLog() *FaultLog { return &FaultLog{} }

// Raise records a new active fault and returns its sequence number.
func (l *FaultLog) Raise(at time.Time, code FaultCode, sw object.ID, detail string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	l.faults = append(l.faults, Fault{
		Seq:    l.nextSeq,
		Code:   code,
		Switch: sw,
		Raised: at,
		Detail: detail,
	})
	return l.nextSeq
}

// Clear marks the most recent active fault with the given code on the
// given switch as cleared at time at. It reports whether a fault was
// cleared.
func (l *FaultLog) Clear(at time.Time, code FaultCode, sw object.ID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.faults) - 1; i >= 0; i-- {
		f := &l.faults[i]
		if f.Code == code && f.Switch == sw && f.Cleared.IsZero() {
			f.Cleared = at
			return true
		}
	}
	return false
}

// Len returns the number of recorded faults.
func (l *FaultLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.faults)
}

// Faults returns a snapshot of all faults in raise order.
func (l *FaultLog) Faults() []Fault {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Fault(nil), l.faults...)
}

// ActiveAt returns the faults whose condition held at time t, ordered by
// switch then sequence — the "relevant fault logs" window the correlation
// engine inspects.
func (l *FaultLog) ActiveAt(t time.Time) []Fault {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Fault
	for _, f := range l.faults {
		if f.ActiveAt(t) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// OnSwitch returns all faults raised on switch sw in raise order.
func (l *FaultLog) OnSwitch(sw object.ID) []Fault {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Fault
	for _, f := range l.faults {
		if f.Switch == sw {
			out = append(out, f)
		}
	}
	return out
}
