package faultlog

import (
	"strings"
	"testing"
	"time"

	"scout/internal/object"
)

var t0 = time.Date(2018, 7, 2, 9, 0, 0, 0, time.UTC)

func TestChangeLogAppendAndQuery(t *testing.T) {
	l := NewChangeLog()
	c1 := l.Append(t0, OpAdd, object.Filter(1), "add filter", 1, 2)
	c2 := l.Append(t0.Add(time.Minute), OpModify, object.Filter(1), "modify filter")
	l.Append(t0.Add(2*time.Minute), OpDelete, object.Contract(9), "drop contract")

	if c1.Seq != 1 || c2.Seq != 2 {
		t.Errorf("sequence numbers: %d, %d", c1.Seq, c2.Seq)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if got := l.ByObject(object.Filter(1)); len(got) != 2 {
		t.Errorf("ByObject = %d entries", len(got))
	}
	last, ok := l.LastChange(object.Filter(1))
	if !ok || last.Op != OpModify {
		t.Errorf("LastChange = %+v, %v", last, ok)
	}
	if _, ok := l.LastChange(object.VRF(99)); ok {
		t.Error("LastChange of unknown object must be absent")
	}
	if len(c1.Switches) != 2 {
		t.Errorf("switches not recorded: %v", c1.Switches)
	}
}

func TestChangedSince(t *testing.T) {
	l := NewChangeLog()
	l.Append(t0, OpAdd, object.Filter(1), "")
	if !l.ChangedSince(object.Filter(1), t0) {
		t.Error("change at exactly t counts")
	}
	if l.ChangedSince(object.Filter(1), t0.Add(time.Second)) {
		t.Error("older changes must not count")
	}
	if l.ChangedSince(object.Filter(2), t0) {
		t.Error("unknown object never changed")
	}
}

func TestRecentObjects(t *testing.T) {
	l := NewChangeLog()
	l.Append(t0, OpAdd, object.Filter(1), "")
	l.Append(t0.Add(time.Hour), OpAdd, object.Filter(2), "")
	l.Append(t0.Add(time.Hour), OpModify, object.Filter(2), "")
	got := l.RecentObjects(t0.Add(30 * time.Minute))
	if len(got) != 1 || got[0] != object.Filter(2) {
		t.Errorf("RecentObjects = %v", got)
	}
}

func TestChangeOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpModify.String() != "modify" || OpDelete.String() != "delete" {
		t.Error("op names wrong")
	}
	if !strings.Contains(ChangeOp(9).String(), "9") {
		t.Error("unknown op should carry its value")
	}
}

func TestFaultLifecycle(t *testing.T) {
	l := NewFaultLog()
	l.Raise(t0, FaultSwitchUnreachable, 2, "heartbeat lost")
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	f := l.Faults()[0]
	if !f.ActiveAt(t0) || !f.ActiveAt(t0.Add(time.Hour)) {
		t.Error("uncleared fault stays active")
	}
	if f.ActiveAt(t0.Add(-time.Second)) {
		t.Error("fault not active before raise")
	}

	if !l.Clear(t0.Add(10*time.Minute), FaultSwitchUnreachable, 2) {
		t.Fatal("Clear should find the active fault")
	}
	if l.Clear(t0, FaultSwitchUnreachable, 2) {
		t.Error("second Clear must fail")
	}
	f = l.Faults()[0]
	if !f.ActiveAt(t0.Add(5 * time.Minute)) {
		t.Error("fault active inside its window")
	}
	if f.ActiveAt(t0.Add(10 * time.Minute)) {
		t.Error("fault inactive at clear instant")
	}
}

func TestActiveAtWindowing(t *testing.T) {
	l := NewFaultLog()
	l.Raise(t0, FaultTCAMOverflow, 3, "")
	l.Raise(t0.Add(5*time.Minute), FaultSwitchUnreachable, 1, "")
	l.Clear(t0.Add(10*time.Minute), FaultTCAMOverflow, 3)

	at := l.ActiveAt(t0.Add(7 * time.Minute))
	if len(at) != 2 {
		t.Fatalf("ActiveAt mid-window = %d faults", len(at))
	}
	// Sorted by switch.
	if at[0].Switch != 1 || at[1].Switch != 3 {
		t.Errorf("ordering: %v", at)
	}
	at = l.ActiveAt(t0.Add(20 * time.Minute))
	if len(at) != 1 || at[0].Code != FaultSwitchUnreachable {
		t.Errorf("ActiveAt after clear = %v", at)
	}
}

func TestOnSwitch(t *testing.T) {
	l := NewFaultLog()
	l.Raise(t0, FaultTCAMOverflow, 3, "")
	l.Raise(t0, FaultAgentCrash, 4, "")
	l.Raise(t0, FaultTCAMOverflow, 3, "")
	if got := l.OnSwitch(3); len(got) != 2 {
		t.Errorf("OnSwitch(3) = %d", len(got))
	}
	if got := l.OnSwitch(9); len(got) != 0 {
		t.Errorf("OnSwitch(9) = %d", len(got))
	}
}

func TestFaultCodeString(t *testing.T) {
	codes := map[FaultCode]string{
		FaultTCAMOverflow:      "tcam-overflow",
		FaultSwitchUnreachable: "switch-unreachable",
		FaultAgentCrash:        "agent-crash",
		FaultControlChannel:    "control-channel-disruption",
		FaultTCAMCorruption:    "tcam-corruption",
	}
	for code, want := range codes {
		if code.String() != want {
			t.Errorf("%d.String() = %q, want %q", code, code.String(), want)
		}
	}
	if !strings.Contains(FaultCode(42).String(), "42") {
		t.Error("unknown code should carry its value")
	}
}
