package faultlog

// This file is the dataplane event stream of the paper's event-driven
// collection mode (§III-C: rules are collected "periodically and/or in an
// event-driven fashion"). Where ChangeLog and FaultLog are forensic
// records the correlation engine reads after the fact, EventLog is the
// live ingestion signal: the monitoring plane's switch-scoped
// notifications (a TCAM write, a control-channel transition, an EPG
// placement change) that tell a collector *which* switches to re-read
// instead of sweeping the whole fabric.

import (
	"fmt"
	"sync"
	"time"

	"scout/internal/object"
)

// EventKind classifies a dataplane event.
type EventKind int

// Event kinds.
const (
	// EventTCAMChange reports that a switch's TCAM contents changed (a
	// policy push, an eviction, a corruption, a restart rendering queued
	// rules). The event names the switch, not the rules: consumers
	// re-read the switch's current state, so coalescing a burst of
	// changes to one refresh is always safe.
	EventTCAMChange EventKind = iota + 1
	// EventLink reports a control-channel/link state transition on the
	// switch (disconnect, reconnect).
	EventLink
	// EventEPG reports an EPG-scoped policy placement change touching
	// the switch (a contract bound or unbound on a pair the switch
	// hosts).
	EventEPG
)

// String returns the canonical event-kind name.
func (k EventKind) String() string {
	switch k {
	case EventTCAMChange:
		return "tcam-change"
	case EventLink:
		return "link"
	case EventEPG:
		return "epg"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one switch-scoped dataplane event. Seq is the stream-wide
// sequence number: strictly increasing in emission order, so consumers
// can detect out-of-order delivery and resume from a cursor position.
type Event struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Switch object.ID `json:"switch"`
	Detail string    `json:"detail,omitempty"`
}

// EventLog is an append-only stream of dataplane events, safe for
// concurrent use. Consumers pull from it through Cursors; the log itself
// never blocks a producer (backpressure is the consumer's coalescing
// queue's job, not the stream's).
type EventLog struct {
	mu      sync.RWMutex
	events  []Event
	nextSeq int
}

// NewEventLog returns an empty event stream.
func NewEventLog() *EventLog { return &EventLog{} }

// Append records an event and returns the stored entry (with Seq set).
func (l *EventLog) Append(at time.Time, kind EventKind, sw object.ID, detail string) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	ev := Event{Seq: l.nextSeq, Time: at, Kind: kind, Switch: sw, Detail: detail}
	l.events = append(l.events, ev)
	return ev
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// LastSeq returns the sequence number of the newest event (0 when empty).
func (l *EventLog) LastSeq() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextSeq
}

// Events returns a snapshot of all events in emission order.
func (l *EventLog) Events() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Event(nil), l.events...)
}

// Since returns the events with sequence numbers strictly greater than
// seq, in emission order. Seq assignment is dense (1, 2, 3, …), so the
// slice can be located by offset instead of scanning.
func (l *EventLog) Since(seq int) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if seq < 0 {
		seq = 0
	}
	if seq >= l.nextSeq {
		return nil
	}
	return append([]Event(nil), l.events[seq:]...)
}

// Cursor is a stateful consumer position over an EventLog: each Drain
// returns the events appended since the previous Drain. Cursors are
// independent — several consumers can tail one stream — but a single
// Cursor is not safe for concurrent use.
type Cursor struct {
	log *EventLog
	seq int
}

// Cursor returns a consumer position at the start of the stream: the
// first Drain replays every retained event.
func (l *EventLog) Cursor() *Cursor { return &Cursor{log: l} }

// TailCursor returns a consumer position at the current end of the
// stream: the first Drain returns only events appended after this call.
func (l *EventLog) TailCursor() *Cursor { return &Cursor{log: l, seq: l.LastSeq()} }

// Drain returns the events appended since the previous Drain (or since
// the cursor's creation point) and advances past them.
func (c *Cursor) Drain() []Event {
	evs := c.log.Since(c.seq)
	if n := len(evs); n > 0 {
		c.seq = evs[n-1].Seq
	}
	return evs
}

// Pending reports how many events a Drain would currently return.
func (c *Cursor) Pending() int { return c.log.LastSeq() - c.seq }
