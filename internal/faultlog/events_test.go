package faultlog

import (
	"testing"
	"time"
)

func TestEventLogAppendAndSince(t *testing.T) {
	l := NewEventLog()
	if l.Len() != 0 || l.LastSeq() != 0 {
		t.Fatalf("fresh log not empty: Len %d LastSeq %d", l.Len(), l.LastSeq())
	}
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, kind := range []EventKind{EventTCAMChange, EventLink, EventEPG} {
		ev := l.Append(at, kind, 7, "detail")
		if ev.Seq != i+1 {
			t.Fatalf("append %d: Seq = %d, want dense numbering from 1", i, ev.Seq)
		}
	}
	if l.Len() != 3 || l.LastSeq() != 3 {
		t.Fatalf("Len %d LastSeq %d, want 3/3", l.Len(), l.LastSeq())
	}
	// Since is exclusive of seq and offset-indexed off dense numbering.
	if evs := l.Since(0); len(evs) != 3 || evs[0].Seq != 1 {
		t.Fatalf("Since(0) = %v, want all 3", evs)
	}
	if evs := l.Since(2); len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("Since(2) = %v, want just seq 3", evs)
	}
	if evs := l.Since(3); evs != nil {
		t.Fatalf("Since(LastSeq) = %v, want nil", evs)
	}
	if evs := l.Since(-5); len(evs) != 3 {
		t.Fatalf("Since(negative) = %v, want all 3", evs)
	}
	// Events returns an isolated snapshot.
	snap := l.Events()
	snap[0].Seq = 99
	if l.Events()[0].Seq != 1 {
		t.Fatal("Events snapshot aliases log storage")
	}
}

func TestEventCursors(t *testing.T) {
	l := NewEventLog()
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	l.Append(at, EventTCAMChange, 1, "")
	l.Append(at, EventTCAMChange, 2, "")

	head := l.Cursor()
	tail := l.TailCursor()
	if head.Pending() != 2 {
		t.Fatalf("head cursor Pending = %d, want 2 (replays retained events)", head.Pending())
	}
	if tail.Pending() != 0 {
		t.Fatalf("tail cursor Pending = %d, want 0", tail.Pending())
	}
	if evs := head.Drain(); len(evs) != 2 || evs[1].Seq != 2 {
		t.Fatalf("head Drain = %v, want seqs 1..2", evs)
	}
	if evs := tail.Drain(); len(evs) != 0 {
		t.Fatalf("tail Drain = %v, want empty", evs)
	}

	l.Append(at, EventLink, 3, "")
	// Independent cursors both see the new event exactly once.
	for name, c := range map[string]*Cursor{"head": head, "tail": tail} {
		if c.Pending() != 1 {
			t.Fatalf("%s Pending = %d after append, want 1", name, c.Pending())
		}
		if evs := c.Drain(); len(evs) != 1 || evs[0].Seq != 3 {
			t.Fatalf("%s Drain = %v, want just seq 3", name, evs)
		}
		if evs := c.Drain(); len(evs) != 0 {
			t.Fatalf("%s re-Drain = %v, want empty", name, evs)
		}
	}
}

func TestEventKindString(t *testing.T) {
	tests := []struct {
		kind EventKind
		want string
	}{
		{EventTCAMChange, "tcam-change"},
		{EventLink, "link"},
		{EventEPG, "epg"},
		{EventKind(42), "event(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}
