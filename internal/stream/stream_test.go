package stream

import (
	"testing"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
)

// ev builds a test event; t is seconds on a fixed logical clock.
func ev(seq int, sw object.ID, sec int) faultlog.Event {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return faultlog.Event{
		Seq:    seq,
		Time:   base.Add(time.Duration(sec) * time.Second),
		Kind:   faultlog.EventTCAMChange,
		Switch: sw,
	}
}

func at(sec int) time.Time {
	return time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

// TestQueueCoalescesDuplicates pins the core property: K events for one
// switch occupy one pending slot, the newest sequence number wins, and
// the cut batch carries exactly one entry for the switch.
func TestQueueCoalescesDuplicates(t *testing.T) {
	q := New(Options{Cap: 8})
	for seq := 1; seq <= 5; seq++ {
		if q.Push(ev(seq, 3, seq)) {
			t.Fatalf("push %d: batch due below BatchSize", seq)
		}
	}
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d after 5 events for one switch, want 1", got)
	}
	st := q.Stats()
	if st.Pushed != 5 || st.Coalesced != 4 || st.Stale != 0 {
		t.Fatalf("stats = %+v, want Pushed 5, Coalesced 4, Stale 0", st)
	}
	b := q.Cut(at(10))
	if len(b.Switches) != 1 || b.Switches[0] != 3 {
		t.Fatalf("batch switches = %v, want [3]", b.Switches)
	}
	if b.Events[0].Seq != 5 || b.MaxSeq != 5 {
		t.Fatalf("coalesced entry seq = %d (MaxSeq %d), want newest 5", b.Events[0].Seq, b.MaxSeq)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained after cut: Len = %d", q.Len())
	}
}

// TestQueueOutOfOrderSequences pins the stale-event contract: an event
// whose sequence number is not beyond the newest already seen is counted
// stale but still marks its switch, and a stale duplicate never rolls a
// pending entry back to an older sequence number.
func TestQueueOutOfOrderSequences(t *testing.T) {
	q := New(Options{Cap: 8})
	q.Push(ev(5, 1, 1))
	q.Push(ev(3, 1, 2)) // stale duplicate: must not replace seq 5
	q.Push(ev(2, 2, 3)) // stale but for a fresh switch: must still mark it
	st := q.Stats()
	if st.Stale != 2 {
		t.Fatalf("Stale = %d, want 2", st.Stale)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (stale event must still mark its switch)", q.Len())
	}
	b := q.Cut(at(4))
	if len(b.Switches) != 2 || b.Switches[0] != 1 || b.Switches[1] != 2 {
		t.Fatalf("batch switches = %v, want [1 2]", b.Switches)
	}
	if b.Events[0].Seq != 5 {
		t.Fatalf("switch 1 entry seq = %d, want 5 (stale dup must not roll back)", b.Events[0].Seq)
	}
	if b.MaxSeq != 5 {
		t.Fatalf("MaxSeq = %d, want 5", b.MaxSeq)
	}
}

// TestQueueDeadline pins Window semantics: an empty queue is never due
// (a timer firing with nothing pending is a no-op), pending work is due
// only once the oldest arrival has waited the full window, and cutting
// an empty queue returns an empty batch without counting a batch.
func TestQueueDeadline(t *testing.T) {
	q := New(Options{Cap: 8, Window: 5 * time.Second})
	if q.Due(at(1000)) {
		t.Fatal("empty queue reported due")
	}
	b := q.Cut(at(1000))
	if !b.Empty() || b.Latency() != 0 {
		t.Fatalf("cut of empty queue = %+v, want empty batch with zero latency", b)
	}
	if st := q.Stats(); st.Batches != 0 {
		t.Fatalf("empty cut counted as a batch: %+v", st)
	}

	q.Push(ev(1, 1, 10))
	if q.Due(at(14)) {
		t.Fatal("due before the window elapsed")
	}
	if !q.Due(at(15)) {
		t.Fatal("not due once the oldest arrival waited the full window")
	}
	b = q.Cut(at(16))
	if b.Latency() != 6*time.Second {
		t.Fatalf("Latency = %v, want 6s", b.Latency())
	}
	if q.Due(at(1000)) {
		t.Fatal("drained queue still due")
	}
}

// TestQueueDeadlineReanchors pins that cutting re-anchors the deadline
// on the remaining pending entries instead of the drained ones.
func TestQueueDeadlineReanchors(t *testing.T) {
	q := New(Options{Cap: 8, BatchSize: 2, Window: 5 * time.Second})
	q.Push(ev(1, 1, 0))
	q.Push(ev(2, 2, 1))
	q.Push(ev(3, 3, 10))
	q.Cut(at(11)) // drains switches 1 and 2 (longest waiting)
	if q.Due(at(12)) {
		t.Fatal("due off a drained entry's age; deadline must re-anchor on switch 3")
	}
	if !q.Due(at(15)) {
		t.Fatal("not due once the remaining entry waited the full window")
	}
}

// TestQueueOverflowCoalesces pins the backpressure contract: a push past
// capacity admits the switch (dropping a dirty mark would stale
// reports), counts an overflow, and signals an immediate cut; the cut
// drains the longest-waiting switches first.
func TestQueueOverflowCoalesces(t *testing.T) {
	q := New(Options{Cap: 2})
	if q.Push(ev(1, 10, 1)) {
		t.Fatal("due below capacity")
	}
	if !q.Push(ev(2, 20, 2)) {
		t.Fatal("push at BatchSize (=Cap) must signal a cut")
	}
	if !q.Push(ev(3, 30, 3)) {
		t.Fatal("overflow push must signal a cut")
	}
	st := q.Stats()
	if st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", st.Overflows)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (overflow must admit, never drop)", q.Len())
	}
	b := q.Cut(at(4))
	if len(b.Switches) != 2 || b.Switches[0] != 10 || b.Switches[1] != 20 {
		t.Fatalf("batch = %v, want the two longest-waiting switches [10 20]", b.Switches)
	}
	b = q.Cut(at(5))
	if len(b.Switches) != 1 || b.Switches[0] != 30 {
		t.Fatalf("second batch = %v, want [30]", b.Switches)
	}
	st = q.Stats()
	if st.Batches != 2 || st.BatchedSwitches != 3 || st.MaxBatch != 2 {
		t.Fatalf("stats = %+v, want Batches 2, BatchedSwitches 3, MaxBatch 2", st)
	}
}

// TestQueueBatchSize pins that BatchSize below Cap cuts early and that
// batch switches come out ascending regardless of arrival order.
func TestQueueBatchSize(t *testing.T) {
	q := New(Options{Cap: 16, BatchSize: 3})
	q.Push(ev(1, 9, 1))
	q.Push(ev(2, 4, 2))
	if q.Due(at(2)) {
		t.Fatal("due below BatchSize with no window")
	}
	if !q.Push(ev(3, 7, 3)) {
		t.Fatal("push reaching BatchSize must signal a cut")
	}
	b := q.Cut(at(4))
	if len(b.Switches) != 3 || b.Switches[0] != 4 || b.Switches[1] != 7 || b.Switches[2] != 9 {
		t.Fatalf("batch = %v, want ascending [4 7 9]", b.Switches)
	}
	for i, sw := range b.Switches {
		if b.Events[i].Switch != sw {
			t.Fatalf("Events misaligned at %d: event switch %d vs %d", i, b.Events[i].Switch, sw)
		}
	}
}

// TestQueueDefaultOptions pins the Options defaulting rules.
func TestQueueDefaultOptions(t *testing.T) {
	q := New(Options{})
	if q.cap != DefaultCap || q.batchSize != DefaultCap {
		t.Fatalf("zero options: cap %d batchSize %d, want both %d", q.cap, q.batchSize, DefaultCap)
	}
	q = New(Options{Cap: 4, BatchSize: 100})
	if q.batchSize != 4 {
		t.Fatalf("BatchSize above Cap must clamp to Cap: got %d", q.batchSize)
	}
}
