// Package stream turns a raw dataplane event stream into bounded,
// coalesced work batches — the backpressure layer between
// faultlog.EventLog (which never blocks a producer) and an analysis
// session (whose per-switch refresh is the expensive unit of work).
//
// The queue exploits the one property that makes event-driven refresh
// safe to coalesce: an event names a switch, not a state. Consumers
// re-read the switch's *current* state, so a burst of K events on one
// switch needs exactly one refresh, and the refresh is correct no matter
// which of the K events triggered it. The queue therefore keeps at most
// one pending entry per switch (newest event wins), cuts batches by size
// or deadline, and under an event storm degrades to coalescing — never
// to dropping a switch, which would silently stale a report.
package stream

import (
	"sort"
	"sync"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
)

// DefaultCap is the queue capacity used when Options.Cap is zero.
const DefaultCap = 1024

// Options configures a Queue.
type Options struct {
	// Cap bounds the distinct switches buffered before the queue asks
	// for an immediate cut (overflow). Overflow never drops a switch —
	// losing a dirty mark would stale reports — it signals the consumer
	// to drain now. <= 0 selects DefaultCap.
	Cap int
	// BatchSize cuts a batch once this many distinct switches are
	// pending. <= 0 selects Cap (batches bounded only by capacity).
	BatchSize int
	// Window is the batch deadline: with pending work older than this,
	// Due reports true even below BatchSize, bounding refresh latency
	// under a trickle of events. <= 0 means no deadline (cut on size or
	// explicitly).
	Window time.Duration
}

// Stats counts the queue's coalescing behaviour, the assertion surface
// for the storm experiment: Pushed - Coalesced distinct switch marks
// ever became batch members, so re-check work is bounded by batches, not
// by raw event volume.
type Stats struct {
	// Pushed counts events offered to the queue.
	Pushed int
	// Coalesced counts pushed events merged into an already-pending
	// switch entry instead of growing the queue.
	Coalesced int
	// Stale counts pushed events that arrived out of order (sequence
	// number at or below the newest already seen). Stale events still
	// mark their switch — a refresh of an already-current switch is
	// wasted work, never a wrong report.
	Stale int
	// Overflows counts pushes that found the queue at capacity with a
	// new switch; the switch is admitted and the push reports due.
	Overflows int
	// Batches counts batches cut; BatchedSwitches sums their sizes and
	// MaxBatch tracks the largest.
	Batches         int
	BatchedSwitches int
	MaxBatch        int
}

// Queue is a coalescing event queue, safe for concurrent use.
type Queue struct {
	mu        sync.Mutex
	cap       int
	batchSize int
	window    time.Duration

	// pending holds the newest event per marked switch; order remembers
	// first-arrival order so size-limited cuts drain the longest-waiting
	// switches first (FIFO fairness under a storm).
	pending map[object.ID]faultlog.Event
	order   []object.ID
	// oldest is the event time of the earliest still-pending arrival,
	// the deadline anchor. Event times come from the producer's clock
	// (the fabric's logical clock in simulation), keeping deadline
	// behaviour deterministic.
	oldest time.Time
	// lastSeq is the highest sequence number ever pushed, the
	// out-of-order detector.
	lastSeq int

	stats Stats
}

// New creates a queue with the given options.
func New(opts Options) *Queue {
	if opts.Cap <= 0 {
		opts.Cap = DefaultCap
	}
	if opts.BatchSize <= 0 || opts.BatchSize > opts.Cap {
		opts.BatchSize = opts.Cap
	}
	return &Queue{
		cap:       opts.Cap,
		batchSize: opts.BatchSize,
		window:    opts.Window,
		pending:   make(map[object.ID]faultlog.Event),
	}
}

// Push offers an event to the queue and reports whether a batch is due
// (pending switches reached BatchSize, or capacity overflowed). Events
// for an already-pending switch coalesce: the entry keeps the newer
// sequence number and the queue does not grow.
func (q *Queue) Push(ev faultlog.Event) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats.Pushed++
	if ev.Seq <= q.lastSeq {
		q.stats.Stale++
	} else {
		q.lastSeq = ev.Seq
	}
	if prev, ok := q.pending[ev.Switch]; ok {
		q.stats.Coalesced++
		if ev.Seq > prev.Seq {
			q.pending[ev.Switch] = ev
		}
		return len(q.pending) >= q.batchSize
	}
	if len(q.pending) >= q.cap {
		q.stats.Overflows++
	}
	if len(q.pending) == 0 || ev.Time.Before(q.oldest) {
		q.oldest = ev.Time
	}
	q.pending[ev.Switch] = ev
	q.order = append(q.order, ev.Switch)
	return len(q.pending) >= q.batchSize
}

// Len returns the number of distinct pending switches.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Due reports whether a batch should be cut at time now: pending
// switches reached BatchSize, or the oldest pending arrival has waited
// at least the configured Window. An empty queue is never due.
func (q *Queue) Due(now time.Time) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return false
	}
	if len(q.pending) >= q.batchSize {
		return true
	}
	return q.window > 0 && !now.Before(q.oldest.Add(q.window))
}

// Cut drains up to BatchSize pending switches — longest-waiting first —
// into a batch stamped with the cut time. Cutting an empty queue returns
// an empty batch (a deadline timer firing with nothing pending is a
// no-op, not an error).
func (q *Queue) Cut(now time.Time) Batch {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.order)
	if n == 0 {
		return Batch{CutAt: now}
	}
	if n > q.batchSize {
		n = q.batchSize
	}
	b := Batch{
		Switches: make([]object.ID, n),
		Events:   make([]faultlog.Event, n),
		OldestAt: q.oldest,
		CutAt:    now,
	}
	copy(b.Switches, q.order[:n])
	sort.Slice(b.Switches, func(i, j int) bool { return b.Switches[i] < b.Switches[j] })
	for i, sw := range b.Switches {
		ev := q.pending[sw]
		b.Events[i] = ev
		if ev.Seq > b.MaxSeq {
			b.MaxSeq = ev.Seq
		}
		delete(q.pending, sw)
	}
	q.order = append(q.order[:0], q.order[n:]...)
	// Re-anchor the deadline on the remaining pending entries.
	q.oldest = time.Time{}
	for _, sw := range q.order {
		if t := q.pending[sw].Time; q.oldest.IsZero() || t.Before(q.oldest) {
			q.oldest = t
		}
	}
	q.stats.Batches++
	q.stats.BatchedSwitches += len(b.Switches)
	if len(b.Switches) > q.stats.MaxBatch {
		q.stats.MaxBatch = len(b.Switches)
	}
	return b
}

// Stats returns the queue's cumulative counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Batch is one coalesced unit of refresh work: the distinct switches to
// re-read (ascending, the pipeline's canonical order) with the newest
// event that marked each.
type Batch struct {
	// Switches are the batch members, ascending; Events is aligned with
	// it, holding each member's newest coalesced event.
	Switches []object.ID
	Events   []faultlog.Event
	// MaxSeq is the highest event sequence number in the batch.
	MaxSeq int
	// OldestAt is the event time of the batch's longest-waiting member
	// at cut time; CutAt is when the batch was cut. Their difference is
	// the queueing latency the batching traded for coalescing.
	OldestAt time.Time
	CutAt    time.Time
}

// Empty reports whether the batch carries no work.
func (b Batch) Empty() bool { return len(b.Switches) == 0 }

// Latency returns how long the batch's oldest member waited in the
// queue (zero for an empty batch).
func (b Batch) Latency() time.Duration {
	if b.Empty() {
		return 0
	}
	return b.CutAt.Sub(b.OldestAt)
}
