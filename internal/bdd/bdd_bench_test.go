package bdd

import (
	"math/rand"
	"testing"
)

// BenchmarkApplyChain measures a long And/Or chain over disjoint cubes —
// the checker's dominant workload shape.
func BenchmarkApplyChain(b *testing.B) {
	const nVars = 72
	m := NewManager(nVars)
	rng := rand.New(rand.NewSource(1))
	cubes := make([]Node, 256)
	for i := range cubes {
		lits := make(map[int]bool, 16)
		for v := 0; v < 16; v++ {
			lits[v*4] = rng.Intn(2) == 0
		}
		cubes[i] = m.Cube(lits)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := False
		for _, c := range cubes {
			acc = m.Or(acc, c)
		}
		if acc == False {
			b.Fatal("union must be non-empty")
		}
	}
}

// BenchmarkCube measures literal-cube construction.
func BenchmarkCube(b *testing.B) {
	m := NewManager(72)
	lits := make(map[int]bool, 48)
	for v := 0; v < 48; v++ {
		lits[v] = v%3 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Cube(lits)
	}
}

// BenchmarkSatCount measures model counting on a mid-size BDD.
func BenchmarkSatCount(b *testing.B) {
	m := NewManager(24)
	rng := rand.New(rand.NewSource(2))
	n, _ := randomFormula(m, rng, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SatCount(n)
	}
}

// BenchmarkEval measures point evaluation.
func BenchmarkEval(b *testing.B) {
	m := NewManager(24)
	rng := rand.New(rand.NewSource(3))
	n, _ := randomFormula(m, rng, 10)
	assign := make([]bool, 24)
	for i := range assign {
		assign[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(n, assign)
	}
}
