package bdd

import (
	"math/rand"
	"sync"
	"testing"
)

// buildForkWorkload builds a frozen base plus a fork carrying both
// base-resident and delta roots, returning the fork, the roots the
// caller wants to keep live, and some deliberately dropped roots.
func buildForkWorkload(t *testing.T, nVars int, seed int64) (snap *Snapshot, fork *Manager, keep, drop []Node) {
	t.Helper()
	base := NewManager(nVars)
	rng := rand.New(rand.NewSource(seed))
	var baseRoots []Node
	for i := 0; i < 6; i++ {
		n, _ := randomFormula(base, rng, 4)
		baseRoots = append(baseRoots, n)
	}
	snap = base.Freeze()
	fork = NewManagerFrom(snap)
	keep = append(keep, baseRoots[:3]...)
	for i := 0; i < 8; i++ {
		n, _ := randomFormula(fork, rng, 5)
		if i%2 == 0 {
			keep = append(keep, n)
		} else {
			drop = append(drop, n)
		}
	}
	return snap, fork, keep, drop
}

// evalSignature samples a root's truth value on deterministic
// assignments — enough to distinguish the workload's functions.
func evalSignature(m *Manager, n Node, nVars int) []bool {
	rng := rand.New(rand.NewSource(99))
	sig := make([]bool, 64)
	assign := make([]bool, nVars)
	for i := range sig {
		for j := range assign {
			assign[j] = rng.Intn(2) == 0
		}
		sig[i] = m.Eval(n, assign)
	}
	return sig
}

func sigEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompactDeltaForkOracle(t *testing.T) {
	const nVars = 12
	_, fork, keep, drop := buildForkWorkload(t, nVars, 1)

	sigs := make([][]bool, len(keep))
	counts := make([]float64, len(keep))
	for i, n := range keep {
		sigs[i] = evalSignature(fork, n, nVars)
		counts[i] = fork.SatCount(n)
	}
	before := fork.DeltaSize()

	remap, stats := fork.CompactDelta(keep)
	if stats.Retained+stats.Dropped != before {
		t.Fatalf("retained %d + dropped %d != pre-compact delta %d",
			stats.Retained, stats.Dropped, before)
	}
	if fork.DeltaSize() != stats.Retained {
		t.Fatalf("post-compact DeltaSize %d != retained %d", fork.DeltaSize(), stats.Retained)
	}
	if stats.Dropped == 0 {
		t.Fatalf("workload built dead roots but nothing was dropped")
	}

	// Base nodes (and terminals) are pinned: identity under the remap.
	for id := Node(0); int(id) < fork.baseLen; id++ {
		if remap.Node(id) != id {
			t.Fatalf("base node %d remapped to %d", id, remap.Node(id))
		}
	}

	for i, n := range keep {
		rn := remap.Node(n)
		if rn == NoNode {
			t.Fatalf("live root %d mapped to NoNode", n)
		}
		if fork.InBase(n) != fork.InBase(rn) {
			t.Fatalf("root %d changed base residency under remap", n)
		}
		if !sigEqual(evalSignature(fork, rn, nVars), sigs[i]) {
			t.Fatalf("root %d evaluates differently after compaction", n)
		}
		if got := fork.SatCount(rn); got != counts[i] {
			t.Fatalf("root %d SatCount %v after compaction, want %v", n, got, counts[i])
		}
	}
	for _, n := range drop {
		if fork.InBase(n) {
			continue // base-expressible roots survive by definition
		}
		if remap.Node(n) != NoNode {
			t.Fatalf("dead delta root %d survived as %d", n, remap.Node(n))
		}
	}

	// Idempotence: compacting again with the remapped roots keeps
	// everything and maps every live node to itself.
	live := make([]Node, 0, len(keep))
	for _, n := range keep {
		live = append(live, remap.Node(n))
	}
	sizeBefore := fork.DeltaSize()
	remap2, stats2 := fork.CompactDelta(live)
	if stats2.Dropped != 0 || stats2.Retained != sizeBefore {
		t.Fatalf("second compaction not a no-op: %+v (delta %d)", stats2, sizeBefore)
	}
	for _, n := range live {
		if remap2.Node(n) != n {
			t.Fatalf("idempotent compaction moved %d to %d", n, remap2.Node(n))
		}
	}
}

// TestCompactDeltaInterning pins the rebuilt unique table: re-deriving a
// kept function after compaction must resolve to its remapped ID, not
// intern a duplicate.
func TestCompactDeltaInterning(t *testing.T) {
	base := NewManager(8)
	for v := 0; v < 7; v++ {
		base.And(base.Var(v), base.Var(v+1))
	}
	snap := base.Freeze()
	fork := NewManagerFrom(snap)

	// Keep the Xor intermediate live too, so the re-derivation below can
	// resolve every step from the rebuilt unique table.
	x := fork.Xor(fork.Var(0), fork.Var(3))
	keepRoot := fork.And(x, fork.Var(5))
	fork.OrAll([]Node{fork.Var(1), fork.Var(2), fork.Var(6)}) // dead

	remap, _ := fork.CompactDelta([]Node{x, keepRoot})
	want := remap.Node(keepRoot)
	size := fork.DeltaSize()
	if got := fork.And(fork.Xor(fork.Var(0), fork.Var(3)), fork.Var(5)); got != want {
		t.Fatalf("re-derived kept function interned as %d, want remapped %d", got, want)
	}
	if fork.DeltaSize() != size {
		t.Fatalf("re-deriving a kept function grew the delta %d -> %d", size, fork.DeltaSize())
	}
}

// TestCompactDeltaKeepsWarmCache pins the memo-retention property that
// makes compaction cheaper than Reset: an operation over surviving
// nodes, repeated after compaction, is a cache hit (no new nodes, no
// misses), because its entry was remapped rather than dropped.
func TestCompactDeltaKeepsWarmCache(t *testing.T) {
	base := NewManager(10)
	for v := 0; v < 9; v++ {
		base.Or(base.Var(v), base.Var(v+1))
	}
	snap := base.Freeze()
	fork := NewManagerFrom(snap)

	a := fork.And(fork.Var(0), fork.Xor(fork.Var(4), fork.Var(7)))
	b := fork.Or(fork.NVar(2), fork.Var(8))
	r := fork.And(a, b)

	remap, stats := fork.CompactDelta([]Node{a, b, r})
	if stats.CacheKept == 0 {
		t.Fatalf("no op-cache entries survived a fully-live compaction: %+v", stats)
	}
	misses := fork.CacheStats().Misses
	size := fork.DeltaSize()
	if got := fork.And(remap.Node(a), remap.Node(b)); got != remap.Node(r) {
		t.Fatalf("repeat of warm op returned %d, want %d", got, remap.Node(r))
	}
	if fork.CacheStats().Misses != misses {
		t.Fatalf("repeat of warm op missed the cache after compaction")
	}
	if fork.DeltaSize() != size {
		t.Fatalf("repeat of warm op built nodes after compaction: %d -> %d", size, fork.DeltaSize())
	}
}

func TestCompactDeltaStandalone(t *testing.T) {
	m := NewManager(10)
	rng := rand.New(rand.NewSource(5))
	var keep []Node
	for i := 0; i < 6; i++ {
		n, _ := randomFormula(m, rng, 5)
		if i%2 == 0 {
			keep = append(keep, n)
		}
	}
	sigs := make([][]bool, len(keep))
	for i, n := range keep {
		sigs[i] = evalSignature(m, n, 10)
	}
	remap, stats := m.CompactDelta(keep)
	// Terminals are pinned even without a frozen base.
	if remap.Node(False) != False || remap.Node(True) != True {
		t.Fatalf("terminals moved: %d, %d", remap.Node(False), remap.Node(True))
	}
	if m.DeltaSize() != stats.Retained+2 {
		t.Fatalf("standalone DeltaSize %d != retained %d + terminals", m.DeltaSize(), stats.Retained)
	}
	for i, n := range keep {
		if !sigEqual(evalSignature(m, remap.Node(n), 10), sigs[i]) {
			t.Fatalf("root %d evaluates differently after standalone compaction", n)
		}
	}
	// The compacted manager keeps working: new construction interns fine.
	n2, tt := randomFormula(m, rng, 5)
	assign := make([]bool, 10)
	for a := 0; a < 1<<10; a += 37 {
		for j := range assign {
			assign[j] = a&(1<<j) != 0
		}
		if m.Eval(n2, assign) != tt[a] {
			t.Fatalf("post-compaction construction wrong at assignment %d", a)
		}
	}
}

// TestCompactDeltaConcurrentSnapshotReaders races per-goroutine fork
// compactions against lock-free snapshot readers: compaction touches
// only fork-private state, so readers of the shared frozen base must
// never observe it (meaningful under -race).
func TestCompactDeltaConcurrentSnapshotReaders(t *testing.T) {
	const nVars = 10
	base := NewManager(nVars)
	var frozen []Node
	for v := 0; v < nVars-1; v++ {
		frozen = append(frozen, base.And(base.Var(v), base.Var(v+1)))
	}
	snap := base.Freeze()

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			fork := NewManagerFrom(snap)
			var keep []Node
			for i := 0; i < 40; i++ {
				n, _ := randomFormula(fork, rng, 4)
				keep = append(keep, n)
				if i%10 == 9 {
					roots := keep[len(keep)-3:]
					remap, _ := fork.CompactDelta(roots)
					keep = keep[:0]
					for _, r := range roots {
						keep = append(keep, remap.Node(r))
					}
				}
			}
			// Base-expressible rebuilds must still resolve to frozen IDs.
			v := rng.Intn(nVars - 1)
			if fork.And(fork.Var(v), fork.Var(v+1)) != frozen[v] {
				errs <- "fork disagreed with frozen ID after compactions"
			}
		}(g)
	}
	// Concurrent snapshot readers.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			assign := make([]bool, nVars)
			for i := 0; i < 2000; i++ {
				for j := range assign {
					assign[j] = rng.Intn(2) == 0
				}
				v := rng.Intn(nVars - 1)
				want := assign[v] && assign[v+1]
				if snap.Eval(frozen[v], assign) != want {
					errs <- "snapshot reader observed a wrong value"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
