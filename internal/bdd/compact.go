// Delta garbage collection. A long-lived fork accumulates delta nodes
// from every re-encode it performs; most become unreachable as memo
// roots are replaced. CompactDelta rebuilds the delta densely around the
// caller's live roots — keeping warm op-cache entries whose operands and
// results survive — so a session checker under a node budget can shed
// dead nodes without the cold restart of a whole-delta Reset.

package bdd

// NoNode is the remap result for a node that did not survive compaction.
const NoNode Node = -1

// Remap is the old→new node-ID mapping produced by CompactDelta. IDs at
// or above the pinned prefix map through the dense rebuild; pinned IDs
// (the frozen base, or the terminals of a standalone manager) map to
// themselves. The mapping is monotone: live nodes keep their relative
// order, they only slide down over freed slots.
type Remap struct {
	pin   int
	delta []Node
}

// Node maps an old node ID to its post-compaction ID, or NoNode if the
// node was dropped.
func (r *Remap) Node(n Node) Node {
	if int(n) < r.pin {
		return n
	}
	return r.delta[int(n)-r.pin]
}

// CompactStats reports what one CompactDelta call kept and shed.
type CompactStats struct {
	// Retained and Dropped count delta nodes (never base nodes or
	// terminals, which are pinned).
	Retained int
	Dropped  int
	// CacheKept and CacheDropped count exact-tier op-cache entries:
	// kept entries had live operands and result and were remapped in
	// place (the warm memo state compaction exists to preserve),
	// dropped entries referenced at least one dead node.
	CacheKept    int
	CacheDropped int
}

// CompactDelta drops every delta node not reachable from roots, rebuilds
// the delta arrays and tables densely, and returns the old→new ID remap
// the caller must apply to any node IDs it retains (memo tables, cached
// results). Base nodes and terminals are pinned and never move. Exact
// op-cache entries whose operands and result all survive are remapped
// and kept warm; the rest are dropped, and the L1 tier is cleared (its
// entries are duplicates of kept L2 state at worst).
//
// Roots may include base nodes, terminals, and duplicates; they cost
// nothing. Compacting with every reachable node live is the identity
// mapping, so the call is idempotent.
func (m *Manager) CompactDelta(roots []Node) (*Remap, CompactStats) {
	if m.frozen {
		panic("bdd: CompactDelta on a frozen manager")
	}
	// pin is the first compactable absolute ID: the frozen prefix for
	// forks, the two terminals for standalone managers (whose nodes
	// slice stores them at indices 0 and 1).
	pin := m.baseLen
	if m.base == nil {
		pin = 2
	}
	pinJ := pin - m.baseLen // delta index of the first compactable node

	// Mark. Children always have smaller IDs than their parent (mk
	// creates bottom-up), so one descending sweep after seeding the
	// roots propagates liveness without a stack.
	live := make([]bool, len(m.nodes))
	for _, r := range roots {
		if int(r) >= pin {
			live[int(r)-m.baseLen] = true
		}
	}
	for j := len(m.nodes) - 1; j >= pinJ; j-- {
		if !live[j] {
			continue
		}
		d := &m.nodes[j]
		if int(d.lo) >= pin {
			live[int(d.lo)-m.baseLen] = true
		}
		if int(d.hi) >= pin {
			live[int(d.hi)-m.baseLen] = true
		}
	}

	// Rebuild the node array in place, ascending so every child is
	// remapped before the parents that reference it. The slice keeps
	// its capacity: compaction frees logical nodes, not the arena.
	remap := make([]Node, len(m.nodes))
	for j := 0; j < pinJ; j++ {
		remap[j] = Node(j) // standalone terminals stay put
	}
	dst := pinJ
	for j := pinJ; j < len(m.nodes); j++ {
		if !live[j] {
			remap[j] = NoNode
			continue
		}
		d := m.nodes[j]
		if int(d.lo) >= pin {
			d.lo = remap[int(d.lo)-m.baseLen]
		}
		if int(d.hi) >= pin {
			d.hi = remap[int(d.hi)-m.baseLen]
		}
		m.nodes[dst] = d
		remap[j] = Node(m.baseLen + dst)
		dst++
	}
	stats := CompactStats{
		Retained: dst - pinJ,
		Dropped:  len(m.nodes) - dst,
	}
	m.nodes = m.nodes[:dst]

	// Rebuild the unique table over the surviving nodes.
	m.unique = newNodeTable(stats.Retained)
	for j := pinJ; j < dst; j++ {
		m.unique.insert(m.nodes, m.baseLen, Node(m.baseLen+j))
	}

	// Rebuild the exact op cache, keeping entries that are fully live.
	// The remap is monotone, so a commutatively normalized key (a <= b)
	// stays normalized after remapping.
	oldCache := m.cache
	m.cache = newOpCache(oldCache.count)
	for i := range oldCache.entries {
		e := &oldCache.entries[i]
		if e.gen != oldCache.gen {
			continue
		}
		op, a, b := unpackOpKey(e.key)
		if a = rmNode(remap, pin, m.baseLen, a); a == NoNode {
			stats.CacheDropped++
			continue
		}
		if b = rmNode(remap, pin, m.baseLen, b); b == NoNode {
			stats.CacheDropped++
			continue
		}
		v := rmNode(remap, pin, m.baseLen, e.val)
		if v == NoNode {
			stats.CacheDropped++
			continue
		}
		m.cache.insert(packOpKey(op, a, b), v)
		stats.CacheKept++
	}
	// L1 entries are duplicates of (at most) the exact tier under old
	// IDs; cheaper to clear than to remap.
	m.l1.clear()

	return &Remap{pin: pin, delta: remap[pinJ:]}, stats
}

func rmNode(remap []Node, pin, baseLen int, n Node) Node {
	if int(n) < pin {
		return n
	}
	return remap[int(n)-baseLen]
}
