package bdd

import (
	"math/rand"
	"testing"
)

// diffHarness replays one operation stream against the open-addressed
// manager and the map-backed reference, asserting node-ID identity after
// every step. IDs — not just semantics — must match: the report
// byte-identity guarantee rests on interning being exact and the exact
// cache tier never evicting, so the two engines construct the same nodes
// in the same order.
type diffHarness struct {
	t   *testing.T
	m   *Manager
	ref *RefManager
	// nodes holds every root produced so far; the two engines' IDs are
	// asserted equal, so one slice serves both.
	nodes []Node
}

func newDiffHarness(t *testing.T, nVars int) *diffHarness {
	return &diffHarness{
		t:     t,
		m:     NewManager(nVars),
		ref:   NewRefManager(nVars),
		nodes: []Node{False, True},
	}
}

func (h *diffHarness) check(step string, got, want Node) Node {
	h.t.Helper()
	if got != want {
		h.t.Fatalf("%s: manager node %d, reference node %d", step, got, want)
	}
	h.nodes = append(h.nodes, got)
	return got
}

func (h *diffHarness) pick(rng *rand.Rand) Node {
	return h.nodes[rng.Intn(len(h.nodes))]
}

// step applies one random operation to both engines.
func (h *diffHarness) step(rng *rand.Rand) {
	switch rng.Intn(8) {
	case 0:
		v := rng.Intn(h.m.NumVars())
		h.check("Var", h.m.Var(v), h.ref.Var(v))
	case 1:
		v := rng.Intn(h.m.NumVars())
		h.check("NVar", h.m.NVar(v), h.ref.NVar(v))
	case 2:
		lits := make(map[int]bool)
		for i, k := 0, rng.Intn(h.m.NumVars()); i < k; i++ {
			lits[rng.Intn(h.m.NumVars())] = rng.Intn(2) == 0
		}
		h.check("Cube", h.m.Cube(lits), h.ref.Cube(lits))
	case 3:
		a, b := h.pick(rng), h.pick(rng)
		h.check("And", h.m.And(a, b), h.ref.And(a, b))
	case 4:
		a, b := h.pick(rng), h.pick(rng)
		h.check("Or", h.m.Or(a, b), h.ref.Or(a, b))
	case 5:
		a, b := h.pick(rng), h.pick(rng)
		h.check("Xor", h.m.Xor(a, b), h.ref.Xor(a, b))
	case 6:
		a := h.pick(rng)
		h.check("Not", h.m.Not(a), h.ref.Not(a))
	case 7:
		k := rng.Intn(7)
		set := make([]Node, k)
		for i := range set {
			set[i] = h.pick(rng)
		}
		h.check("OrAll", h.m.OrAll(set), h.ref.OrAll(set))
	}
}

// verify compares Eval on random assignments and SatCount for every root
// accumulated so far.
func (h *diffHarness) verify(rng *rand.Rand) {
	h.t.Helper()
	assign := make([]bool, h.m.NumVars())
	for trial := 0; trial < 32; trial++ {
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		for _, n := range h.nodes {
			if h.m.Eval(n, assign) != h.ref.Eval(n, assign) {
				h.t.Fatalf("Eval(%d) disagrees between manager and reference", n)
			}
		}
	}
	for _, n := range h.nodes {
		if got, want := h.m.SatCount(n), h.ref.SatCount(n); got != want {
			h.t.Fatalf("SatCount(%d) = %v on manager, %v on reference", n, got, want)
		}
	}
}

func TestDifferentialRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newDiffHarness(t, 10)
		for i := 0; i < 400; i++ {
			h.step(rng)
			// ClearCache must never change node identity on either
			// engine — only memoization speed.
			if rng.Intn(97) == 0 {
				h.m.ClearCache()
				h.ref.ClearCache()
			}
		}
		h.verify(rng)
		if h.m.Size() != h.ref.Size() {
			t.Fatalf("seed %d: node counts diverged: manager %d, reference %d",
				seed, h.m.Size(), h.ref.Size())
		}
	}
}

// TestDifferentialDeepFormulas drives deeper recursion than the uniform
// op mix: apply on wide random formulas exercises the growth paths of
// the open-addressed tables past their initial capacities.
func TestDifferentialDeepFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newDiffHarness(t, 12)
	for i := 0; i < 6; i++ {
		acc := False
		for j := 0; j < 60; j++ {
			lits := make(map[int]bool)
			for k := 0; k < 4; k++ {
				lits[rng.Intn(12)] = rng.Intn(2) == 0
			}
			c := h.check("Cube", h.m.Cube(lits), h.ref.Cube(lits))
			acc = h.check("Or", h.m.Or(acc, c), h.ref.Or(acc, c))
		}
	}
	h.verify(rng)
}

// TestCacheStatsConsistency pins the tier split's accounting: the tiers
// only move where hits are answered, so total lookups resolve fully into
// the four counters and every L1 hit shadows an entry the exact tiers
// hold.
func TestCacheStatsConsistency(t *testing.T) {
	m := NewManager(10)
	rng := rand.New(rand.NewSource(7))
	var roots []Node
	for i := 0; i < 40; i++ {
		n, _ := randomFormula(m, rng, 4)
		roots = append(roots, n)
	}
	// Re-apply pairwise ops over existing roots: all warm.
	st0 := m.CacheStats()
	for i := 0; i+1 < len(roots); i++ {
		m.And(roots[i], roots[i+1])
	}
	st1 := m.CacheStats()
	if st1.Hits()+st1.Misses < st0.Hits()+st0.Misses {
		t.Fatalf("cache counters went backwards: %+v -> %+v", st0, st1)
	}
	if st1.BaseHits != 0 {
		t.Fatalf("standalone manager reported base hits: %+v", st1)
	}
	m.ClearCache()
	st2 := m.CacheStats()
	if st2 != st1 {
		t.Fatalf("ClearCache changed counters: %+v -> %+v", st1, st2)
	}
}

// TestSatCountMemoReuse pins the satellite: repeated SatCount calls on a
// warm manager must not allocate (the memo is a reused stamped slice).
func TestSatCountMemoReuse(t *testing.T) {
	m := NewManager(12)
	rng := rand.New(rand.NewSource(3))
	n, _ := randomFormula(m, rng, 6)
	want := m.SatCount(n) // first call sizes the memo
	allocs := testing.AllocsPerRun(50, func() {
		if got := m.SatCount(n); got != want {
			t.Fatalf("SatCount drifted: %v != %v", got, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SatCount allocates %v times per call, want 0", allocs)
	}
}
