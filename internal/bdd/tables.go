// Open-addressed hash tables backing the manager's hot path. The Go maps
// they replace (map[nodeKey]Node, map[opKey]Node) dominated per-mk cost:
// hashing a 12-byte struct key through the runtime's generic hasher,
// bucket chasing, and a fresh allocation on every ClearCache. Both tables
// here pack their keys into machine words, hash with a xorshift-multiply
// mix, probe linearly over power-of-two slot arrays, and never need
// tombstones (entries are only ever inserted; bulk removal happens by
// rebuilding, bulk clearing by bumping a generation counter).
//
// Node IDs are non-negative int32s, so a (level, lo, hi) triple packs
// into two 64-bit words and an (op, a, b) operation key into one: op
// needs 2 bits and each operand 31, exactly filling a word. Valid op
// keys are never zero (op kinds start at 1), which both tables exploit
// for cheap empty-slot checks.

package bdd

// hashMix is a xorshift-multiply finalizer (the splitmix64/murmur3 tail):
// every input bit avalanches into the slot index, which linear probing
// needs to keep runs short.
func hashMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	return x
}

// hashNode hashes an interning key. lo and hi fill one word, the level
// perturbs via a second mix round.
func hashNode(level int32, lo, hi Node) uint64 {
	return hashMix(uint64(uint32(lo))<<32 | uint64(uint32(hi)) + uint64(uint32(level))*0xbf58476d1ce4e5b9)
}

// pow2Slots rounds a desired entry count up to a power-of-two slot count
// with room to stay under the ~3/4 load-factor growth trigger.
func pow2Slots(entries int) int {
	c := 16
	for c*3 < entries*4 {
		c <<= 1
	}
	return c
}

// nodeTable is the unique (interning) table: it maps (level, lo, hi) to
// the node's ID without storing the triple at all — each slot holds just
// the node ID, and probes compare against the node array itself (the
// nodes slice is the struct-of-arrays ground truth; the table is a dense
// int32 index over it). Slot value 0 means empty: the terminals are
// pre-allocated and never interned, so no stored ID is ever 0.
//
// A frozen table is read-only and therefore safe for concurrent lookups
// (the shared-base snapshot contract).
type nodeTable struct {
	slots []Node
	count int
}

func newNodeTable(entries int) nodeTable {
	return nodeTable{slots: make([]Node, pow2Slots(entries))}
}

// lookup returns the ID interned for (level, lo, hi), or 0. Stored IDs
// index nodes at offset -off (a fork's delta table stores absolute IDs
// but owns only the delta slice).
func (t *nodeTable) lookup(nodes []nodeData, off int, level int32, lo, hi Node) Node {
	mask := uint64(len(t.slots) - 1)
	for i := hashNode(level, lo, hi) & mask; ; i = (i + 1) & mask {
		id := t.slots[i]
		if id == 0 {
			return 0
		}
		if d := &nodes[int(id)-off]; d.level == level && d.lo == lo && d.hi == hi {
			return id
		}
	}
}

// insert adds a freshly interned node's ID. The caller guarantees the
// key is absent (mk looks up first), so probing stops at the first empty
// slot. Growth rebuilds the slot array from the node data — tombstone
// free, since nothing is ever individually deleted.
func (t *nodeTable) insert(nodes []nodeData, off int, id Node) {
	if (t.count+1)*4 > len(t.slots)*3 {
		t.grow(nodes, off)
	}
	d := &nodes[int(id)-off]
	mask := uint64(len(t.slots) - 1)
	i := hashNode(d.level, d.lo, d.hi) & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = id
	t.count++
}

func (t *nodeTable) grow(nodes []nodeData, off int) {
	old := t.slots
	t.slots = make([]Node, len(old)*2)
	mask := uint64(len(t.slots) - 1)
	for _, id := range old {
		if id == 0 {
			continue
		}
		d := &nodes[int(id)-off]
		i := hashNode(d.level, d.lo, d.hi) & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = id
	}
}

// packOpKey packs an operation-cache key into one word: op kind in bits
// 0-1, operand a in bits 2-32, operand b in bits 33-63. Node IDs are
// non-negative int32s (31 bits), so the packing is exact and injective,
// and no valid key is 0 (op kinds start at 1).
func packOpKey(op opKind, a, b Node) uint64 {
	return uint64(op) | uint64(uint32(a))<<2 | uint64(uint32(b))<<33
}

// unpackOpKey inverts packOpKey (compaction rewrites live entries).
func unpackOpKey(k uint64) (op opKind, a, b Node) {
	return opKind(k & 3), Node(k >> 2 & 0x7fffffff), Node(k >> 33)
}

// opEntry is one memoized operation. gen stamps the generation the entry
// was written in: entries from older generations are logically absent,
// which is what makes clearing O(1).
type opEntry struct {
	key uint64
	val Node
	gen uint32
}

// opCache is the exact (L2) operation cache: open-addressed, packed
// one-word keys, generation-stamped entries. Unlike the direct-mapped L1
// it never evicts within a generation, so memoization is exactly as
// complete as the map it replaced — node construction counts cannot
// drift. A frozen opCache (inside a Snapshot) is read-only and safe for
// concurrent lookups.
type opCache struct {
	entries []opEntry
	count   int
	// gen is the current generation; entries stamped differently are
	// stale. Starts at 1 so zero-initialized slots are always stale.
	gen uint32
}

func newOpCache(entries int) opCache {
	return opCache{entries: make([]opEntry, pow2Slots(entries)), gen: 1}
}

func (c *opCache) lookup(k uint64) (Node, bool) {
	mask := uint64(len(c.entries) - 1)
	for i := hashMix(k) & mask; ; i = (i + 1) & mask {
		e := &c.entries[i]
		if e.gen != c.gen {
			return 0, false
		}
		if e.key == k {
			return e.val, true
		}
	}
}

// insert memoizes k → v. Stale slots (older generations) count as empty
// and are overwritten in place; within one generation nothing is ever
// deleted, so probe chains stay intact.
func (c *opCache) insert(k uint64, v Node) {
	if (c.count+1)*4 > len(c.entries)*3 {
		c.grow()
	}
	mask := uint64(len(c.entries) - 1)
	for i := hashMix(k) & mask; ; i = (i + 1) & mask {
		e := &c.entries[i]
		if e.gen != c.gen {
			*e = opEntry{key: k, val: v, gen: c.gen}
			c.count++
			return
		}
		if e.key == k {
			e.val = v
			return
		}
	}
}

func (c *opCache) grow() {
	old := c.entries
	oldGen := c.gen
	c.entries = make([]opEntry, 2*len(old))
	c.count = 0
	for i := range old {
		if old[i].gen == oldGen {
			c.insert(old[i].key, old[i].val)
		}
	}
}

// clear empties the cache without touching (or allocating) the entry
// array: one generation bump. On the astronomically rare wrap-around the
// array is zeroed so ancient entries cannot alias the reused stamp.
func (c *opCache) clear() {
	c.count = 0
	c.gen++
	if c.gen == 0 {
		for i := range c.entries {
			c.entries[i] = opEntry{}
		}
		c.gen = 1
	}
}

// l1Bits sizes the direct-mapped L1 op cache: 1<<l1Bits entries (64 KiB
// of opEntry), small enough to stay cache-resident, large enough to
// absorb the tight re-reference runs apply produces.
const l1Bits = 12

// l1Cache is the direct-mapped first-tier op cache: one slot per hash
// bucket, overwrite on collision, generation-stamped like the exact
// table so clearing is O(1). It exists to answer the highly repetitive
// lookups of cofactor recursion in one predictable load before the
// probing L2 (or the frozen base cache) is consulted. Purely a
// performance tier: every entry it holds is also in the L2/base cache,
// so eviction can never change what gets memoized.
type l1Cache struct {
	entries []opEntry // nil until the first store
	gen     uint32
}

func (c *l1Cache) lookup(k uint64) (Node, bool) {
	if c.entries == nil {
		return 0, false
	}
	e := &c.entries[hashMix(k)&(1<<l1Bits-1)]
	if e.gen == c.gen && e.key == k {
		return e.val, true
	}
	return 0, false
}

func (c *l1Cache) store(k uint64, v Node) {
	if c.entries == nil {
		c.entries = make([]opEntry, 1<<l1Bits)
		c.gen = 1
	}
	c.entries[hashMix(k)&(1<<l1Bits-1)] = opEntry{key: k, val: v, gen: c.gen}
}

func (c *l1Cache) clear() {
	c.gen++
	if c.gen == 0 {
		for i := range c.entries {
			c.entries[i] = opEntry{}
		}
		c.gen = 1
	}
}
