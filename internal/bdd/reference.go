// RefManager is the map-backed reference implementation the
// open-addressed Manager replaced, kept as a differential oracle: the
// property tests replay randomized operation sequences against both and
// assert node-ID, Eval, and SatCount identity, and scout-bench's
// bddspeed experiment runs whole checker workloads on it to pin report
// bytes. It deliberately preserves the old storage (Go maps keyed by
// structs, per-call SatCount memo map) and supports only standalone use
// — no freeze/fork — since that is all the oracle roles need.

package bdd

import "fmt"

type refNodeKey struct {
	level  int32
	lo, hi Node
}

type refOpKey struct {
	op   opKind
	a, b Node
}

// RefManager is a map-backed standalone BDD manager with the same node
// numbering as Manager: identical operation sequences yield identical
// node IDs on both, which is what makes differential checks exact.
type RefManager struct {
	numVars int
	nodes   []nodeData
	unique  map[refNodeKey]Node
	cache   map[refOpKey]Node
	pow2    []float64
}

// NewRefManager creates a reference manager over numVars variables.
func NewRefManager(numVars int) *RefManager {
	m := &RefManager{
		numVars: numVars,
		nodes:   make([]nodeData, 2, 1024),
		unique:  make(map[refNodeKey]Node, 1024),
		cache:   make(map[refOpKey]Node, 1024),
		pow2:    pow2Table(numVars),
	}
	m.nodes[False] = nodeData{level: terminalLevel}
	m.nodes[True] = nodeData{level: terminalLevel}
	return m
}

// NumVars returns the number of variables in the ordering.
func (m *RefManager) NumVars() int { return m.numVars }

// Size returns the number of nodes (including the two terminals).
func (m *RefManager) Size() int { return len(m.nodes) }

// DeltaSize mirrors Manager.DeltaSize; a reference manager is always
// standalone, so its delta is everything.
func (m *RefManager) DeltaSize() int { return len(m.nodes) }

// InBase mirrors Manager.InBase; always false for a standalone manager.
func (m *RefManager) InBase(Node) bool { return false }

// Var returns the BDD for the single variable v.
func (m *RefManager) Var(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *RefManager) NVar(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), True, False)
}

func (m *RefManager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := refNodeKey{level: level, lo: lo, hi: hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	return n
}

// And returns a ∧ b.
func (m *RefManager) And(a, b Node) Node { return m.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (m *RefManager) Or(a, b Node) Node { return m.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (m *RefManager) Xor(a, b Node) Node { return m.apply(opXor, a, b) }

// Not returns ¬a.
func (m *RefManager) Not(a Node) Node { return m.apply(opXor, a, True) }

// Diff returns a ∧ ¬b.
func (m *RefManager) Diff(a, b Node) Node { return m.And(a, m.Not(b)) }

// OrAll reduces nodes with the same balanced, deterministic OR tree as
// Manager.OrAll.
func (m *RefManager) OrAll(nodes []Node) Node {
	switch len(nodes) {
	case 0:
		return False
	case 1:
		return nodes[0]
	}
	mid := len(nodes) / 2
	return m.Or(m.OrAll(nodes[:mid]), m.OrAll(nodes[mid:]))
}

// Implies reports whether a → b is a tautology.
func (m *RefManager) Implies(a, b Node) bool { return m.Diff(a, b) == False }

// Equiv reports whether a and b denote the same function.
func (m *RefManager) Equiv(a, b Node) bool { return a == b }

func (m *RefManager) apply(op opKind, a, b Node) Node {
	switch op {
	case opAnd:
		switch {
		case a == False || b == False:
			return False
		case a == True:
			return b
		case b == True:
			return a
		case a == b:
			return a
		}
	case opOr:
		switch {
		case a == True || b == True:
			return True
		case a == False:
			return b
		case b == False:
			return a
		case a == b:
			return a
		}
	case opXor:
		switch {
		case a == b:
			return False
		case a == False:
			return b
		case b == False:
			return a
		}
	}
	ca, cb := a, b
	if cb < ca {
		ca, cb = cb, ca
	}
	key := refOpKey{op: op, a: ca, b: cb}
	if r, ok := m.cache[key]; ok {
		return r
	}
	da, db := m.nodes[a], m.nodes[b]
	var level int32
	var aLo, aHi, bLo, bHi Node
	switch {
	case da.level == db.level:
		level, aLo, aHi, bLo, bHi = da.level, da.lo, da.hi, db.lo, db.hi
	case da.level < db.level:
		level, aLo, aHi, bLo, bHi = da.level, da.lo, da.hi, b, b
	default:
		level, aLo, aHi, bLo, bHi = db.level, a, a, db.lo, db.hi
	}
	r := m.mk(level, m.apply(op, aLo, bLo), m.apply(op, aHi, bHi))
	m.cache[key] = r
	return r
}

// Cube returns the conjunction of literals, identically to Manager.Cube.
func (m *RefManager) Cube(literals map[int]bool) Node {
	vars := make([]int, 0, len(literals))
	for v := range literals {
		vars = append(vars, v)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	acc := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if literals[v] {
			acc = m.mk(int32(v), False, acc)
		} else {
			acc = m.mk(int32(v), acc, False)
		}
	}
	return acc
}

// SatCount returns the satisfying-assignment count of n, with the old
// per-call map memo.
func (m *RefManager) SatCount(n Node) float64 {
	memo := make(map[Node]float64)
	var count func(Node) float64
	count = func(n Node) float64 {
		if n == False {
			return 0
		}
		if n == True {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		d := m.nodes[n]
		c := count(d.lo)*m.pow2[m.refLevelOf(d.lo)-d.level-1] +
			count(d.hi)*m.pow2[m.refLevelOf(d.hi)-d.level-1]
		memo[n] = c
		return c
	}
	return count(n) * m.pow2[m.refLevelOf(n)]
}

func (m *RefManager) refLevelOf(n Node) int32 {
	l := m.nodes[n].level
	if l == terminalLevel {
		return int32(m.numVars)
	}
	return l
}

// AllSat invokes fn for every satisfying cube of n, like Manager.AllSat.
func (m *RefManager) AllSat(n Node, fn func(cube []Lit) bool) {
	cube := make([]Lit, m.numVars)
	for i := range cube {
		cube[i] = LitAny
	}
	m.refAllSat(n, cube, fn)
}

func (m *RefManager) refAllSat(n Node, cube []Lit, fn func([]Lit) bool) bool {
	if n == False {
		return true
	}
	if n == True {
		return fn(cube)
	}
	d := m.nodes[n]
	v := int(d.level)
	cube[v] = LitFalse
	if !m.refAllSat(d.lo, cube, fn) {
		cube[v] = LitAny
		return false
	}
	cube[v] = LitTrue
	if !m.refAllSat(d.hi, cube, fn) {
		cube[v] = LitAny
		return false
	}
	cube[v] = LitAny
	return true
}

// Eval evaluates n under the given full assignment.
func (m *RefManager) Eval(n Node, assignment []bool) bool {
	for n != False && n != True {
		d := m.nodes[n]
		if assignment[d.level] {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}

// ClearCache drops the operation cache.
func (m *RefManager) ClearCache() {
	m.cache = make(map[refOpKey]Node, 1024)
}

// CacheStats mirrors Manager.CacheStats; the reference manager has no
// tiered cache, so the counters stay zero.
func (m *RefManager) CacheStats() CacheStats { return CacheStats{} }
