package bdd

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestFreezeForkIdentity pins the fork contract: nodes built before the
// freeze keep their IDs and meaning in every fork, base-expressible
// functions resolve to base IDs (never duplicated into the delta), and
// distinct forks agree on those IDs.
func TestFreezeForkIdentity(t *testing.T) {
	m := NewManager(6)
	ab := m.And(m.Var(0), m.Var(1))
	cd := m.Or(m.Var(2), m.NVar(3))
	snap := m.Freeze()

	f1 := NewManagerFrom(snap)
	f2 := NewManagerFrom(snap)
	if f1.Size() != snap.Size() || f1.DeltaSize() != 0 {
		t.Fatalf("fresh fork: Size=%d DeltaSize=%d, want %d and 0", f1.Size(), f1.DeltaSize(), snap.Size())
	}
	// Rebuilding a frozen function in a fork must yield the frozen ID,
	// not a delta node.
	if got := f1.And(f1.Var(0), f1.Var(1)); got != ab {
		t.Errorf("fork rebuild of a∧b = node %d, want frozen node %d", got, ab)
	}
	if f1.DeltaSize() != 0 {
		t.Errorf("base-expressible rebuild allocated %d delta nodes", f1.DeltaSize())
	}
	// New functions extend the frozen prefix.
	x := f1.And(ab, cd)
	if int(x) < snap.Size() {
		t.Errorf("fresh conjunction landed in the frozen prefix: node %d", x)
	}
	if !snap.Contains(ab) || snap.Contains(x) {
		t.Error("Contains must separate frozen prefix from fork delta")
	}
	// Forks agree on every base ID even after divergent private work.
	_ = f2.Xor(f2.Var(4), f2.Var(5))
	if f2.And(f2.Var(0), f2.Var(1)) != ab {
		t.Error("forks must agree on base-expressible node IDs")
	}
}

// TestForkMatchesStandalone is the fork soundness property: any formula
// evaluated through a fork (mixing frozen and delta nodes) denotes the
// same boolean function a standalone manager computes.
func TestForkMatchesStandalone(t *testing.T) {
	const nVars = 6
	base := NewManager(nVars)
	rng := rand.New(rand.NewSource(1))
	// Warm the base with some frozen structure first.
	for i := 0; i < 5; i++ {
		randomFormula(base, rng, 3)
	}
	snap := base.Freeze()

	f := func(seed int64) bool {
		fork := NewManagerFrom(snap)
		rng := rand.New(rand.NewSource(seed))
		n, tt := randomFormula(fork, rng, 5)
		for a := uint(0); a < 1<<nVars; a++ {
			assign := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				assign[v] = a&(1<<v) != 0
			}
			if fork.Eval(n, assign) != tt[a] {
				return false
			}
			// Frozen nodes also evaluate directly through the snapshot.
			if snap.Contains(n) && snap.Eval(n, assign) != tt[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFrozenManagerPanics pins the freeze contract: the frozen manager
// rejects further construction and operations (its tables are shared
// with concurrent snapshot readers), while reads stay valid.
func TestFrozenManagerPanics(t *testing.T) {
	m := NewManager(4)
	ab := m.And(m.Var(0), m.Var(1))
	m.Freeze()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a frozen manager must panic", name)
			}
		}()
		fn()
	}
	mustPanic("Or", func() { m.Or(ab, m.Var(2)) })
	mustPanic("And", func() { m.And(True, True) }) // even a cache-hit-free terminal case
	mustPanic("Cube", func() { m.Cube(map[int]bool{2: true, 3: false}) })

	if !m.Eval(ab, []bool{true, true, false, false}) {
		t.Error("Eval must keep working after Freeze")
	}
	if m.SatCount(ab) != 4 {
		t.Errorf("SatCount after Freeze = %v, want 4", m.SatCount(ab))
	}
}

// TestFreezeForkPanics: re-freezing a fork is unsupported.
func TestFreezeForkPanics(t *testing.T) {
	snap := NewManager(2).Freeze()
	fork := NewManagerFrom(snap)
	defer func() {
		if recover() == nil {
			t.Error("Freeze on a fork must panic")
		}
	}()
	fork.Freeze()
}

// TestForkClearCachePreservesIdentity mirrors the standalone cache-clear
// invariant on a fork: identity survives because both unique tables stay.
func TestForkClearCachePreservesIdentity(t *testing.T) {
	base := NewManager(4)
	frozenAB := base.And(base.Var(0), base.Var(1))
	fork := NewManagerFrom(base.Freeze())
	x := fork.And(frozenAB, fork.Var(2))
	fork.ClearCache()
	if fork.And(frozenAB, fork.Var(2)) != x {
		t.Error("fork identity must survive cache clears")
	}
	if fork.And(fork.Var(0), fork.Var(1)) != frozenAB {
		t.Error("base identity must survive fork cache clears")
	}
}

// TestSnapshotConcurrentReaders is the -race guard for the shared-base
// design: many goroutines fork the same frozen snapshot concurrently and
// hammer it — rebuilding frozen functions (base unique-table reads),
// combining frozen nodes (base op-cache reads), evaluating through fork
// and snapshot — while each builds private delta structure. Any mutation
// of shared state under this schedule is a data race the -race CI leg
// must catch.
func TestSnapshotConcurrentReaders(t *testing.T) {
	const nVars = 8
	base := NewManager(nVars)
	frozen := make([]Node, 0, 16)
	for v := 0; v < nVars-1; v++ {
		frozen = append(frozen, base.And(base.Var(v), base.Var(v+1)))
	}
	union := False
	for _, n := range frozen {
		union = base.Or(union, n)
	}
	frozen = append(frozen, union)
	snap := base.Freeze()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fork := NewManagerFrom(snap)
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				// Base-expressible rebuilds must resolve to frozen IDs.
				v := rng.Intn(nVars - 1)
				if fork.And(fork.Var(v), fork.Var(v+1)) != frozen[v] {
					errs <- "fork disagreed with frozen ID"
					return
				}
				// Mixed frozen/delta work.
				n := fork.Diff(frozen[len(frozen)-1], frozen[rng.Intn(len(frozen))])
				assign := make([]bool, nVars)
				for j := range assign {
					assign[j] = rng.Intn(2) == 0
				}
				want := fork.Eval(n, assign)
				if snap.Contains(n) && snap.Eval(n, assign) != want {
					errs <- "snapshot Eval disagreed with fork Eval"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
