package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminalsAndVar(t *testing.T) {
	m := NewManager(4)
	if m.NumVars() != 4 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	v := m.Var(0)
	if v == False || v == True {
		t.Fatal("Var(0) must be a fresh node")
	}
	if m.Var(0) != v {
		t.Error("Var must hash-cons")
	}
	if m.NVar(0) == v {
		t.Error("NVar(0) must differ from Var(0)")
	}
}

func TestBasicAlgebra(t *testing.T) {
	m := NewManager(3)
	a, b := m.Var(0), m.Var(1)
	tests := []struct {
		name string
		got  Node
		want Node
	}{
		{"and-false", m.And(a, False), False},
		{"and-true", m.And(a, True), a},
		{"and-self", m.And(a, a), a},
		{"or-true", m.Or(a, True), True},
		{"or-false", m.Or(a, False), a},
		{"or-self", m.Or(a, a), a},
		{"xor-self", m.Xor(a, a), False},
		{"xor-false", m.Xor(a, False), a},
		{"not-not", m.Not(m.Not(a)), a},
		{"not-true", m.Not(True), False},
		{"excluded-middle", m.Or(a, m.Not(a)), True},
		{"contradiction", m.And(a, m.Not(a)), False},
		{"diff-self", m.Diff(a, a), False},
		{"diff-false", m.Diff(a, False), a},
		{"absorb", m.Or(a, m.And(a, b)), a},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s: got node %d, want node %d", tt.name, tt.got, tt.want)
		}
	}
}

func TestCommutativityAndDeMorgan(t *testing.T) {
	m := NewManager(4)
	a := m.And(m.Var(0), m.Not(m.Var(2)))
	b := m.Or(m.Var(1), m.Var(3))
	if m.And(a, b) != m.And(b, a) {
		t.Error("And must commute")
	}
	if m.Or(a, b) != m.Or(b, a) {
		t.Error("Or must commute")
	}
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan: ¬(a∧b) = ¬a∨¬b")
	}
	if m.Not(m.Or(a, b)) != m.And(m.Not(a), m.Not(b)) {
		t.Error("De Morgan: ¬(a∨b) = ¬a∧¬b")
	}
}

// randomFormula builds a random boolean function bottom-up and in parallel
// evaluates it as a truth table, giving an exact oracle.
func randomFormula(m *Manager, rng *rand.Rand, depth int) (Node, []bool) {
	nVars := m.NumVars()
	table := func(f func(assign uint) bool) []bool {
		tt := make([]bool, 1<<nVars)
		for a := uint(0); a < uint(len(tt)); a++ {
			tt[a] = f(a)
		}
		return tt
	}
	if depth == 0 || rng.Intn(3) == 0 {
		v := rng.Intn(nVars)
		if rng.Intn(2) == 0 {
			return m.Var(v), table(func(a uint) bool { return a&(1<<v) != 0 })
		}
		return m.NVar(v), table(func(a uint) bool { return a&(1<<v) == 0 })
	}
	l, lt := randomFormula(m, rng, depth-1)
	r, rt := randomFormula(m, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(l, r), table(func(a uint) bool { return lt[a] && rt[a] })
	case 1:
		return m.Or(l, r), table(func(a uint) bool { return lt[a] || rt[a] })
	case 2:
		return m.Xor(l, r), table(func(a uint) bool { return lt[a] != rt[a] })
	default:
		return m.Not(l), table(func(a uint) bool { return !lt[a] })
	}
}

func TestRandomFormulaMatchesTruthTable(t *testing.T) {
	const nVars = 6
	f := func(seed int64) bool {
		m := NewManager(nVars)
		rng := rand.New(rand.NewSource(seed))
		n, tt := randomFormula(m, rng, 5)
		for a := uint(0); a < 1<<nVars; a++ {
			assign := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				assign[v] = a&(1<<v) != 0
			}
			if m.Eval(n, assign) != tt[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCanonicityQuick(t *testing.T) {
	// Two formulas with equal truth tables must map to the same node.
	const nVars = 5
	f := func(seed int64) bool {
		m := NewManager(nVars)
		rng := rand.New(rand.NewSource(seed))
		n1, t1 := randomFormula(m, rng, 4)
		n2, t2 := randomFormula(m, rng, 4)
		equalTables := true
		for i := range t1 {
			if t1[i] != t2[i] {
				equalTables = false
				break
			}
		}
		return equalTables == (n1 == n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSatCount(t *testing.T) {
	m := NewManager(4)
	tests := []struct {
		name string
		n    Node
		want float64
	}{
		{"false", False, 0},
		{"true", True, 16},
		{"var", m.Var(0), 8},
		{"and2", m.And(m.Var(0), m.Var(1)), 4},
		{"or2", m.Or(m.Var(0), m.Var(1)), 12},
		{"xor", m.Xor(m.Var(2), m.Var(3)), 8},
	}
	for _, tt := range tests {
		if got := m.SatCount(tt.n); got != tt.want {
			t.Errorf("%s: SatCount = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSatCountMatchesTruthTableQuick(t *testing.T) {
	const nVars = 6
	f := func(seed int64) bool {
		m := NewManager(nVars)
		rng := rand.New(rand.NewSource(seed))
		n, tt := randomFormula(m, rng, 5)
		count := 0.0
		for _, v := range tt {
			if v {
				count++
			}
		}
		return m.SatCount(n) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCube(t *testing.T) {
	m := NewManager(4)
	c := m.Cube(map[int]bool{0: true, 2: false})
	if m.SatCount(c) != 4 { // two free variables
		t.Errorf("cube SatCount = %v, want 4", m.SatCount(c))
	}
	if !m.Eval(c, []bool{true, false, false, true}) {
		t.Error("cube should accept x0=1,x2=0")
	}
	if m.Eval(c, []bool{true, false, true, true}) {
		t.Error("cube should reject x2=1")
	}
	// Equivalent to explicit conjunction.
	want := m.And(m.Var(0), m.NVar(2))
	if c != want {
		t.Error("Cube must equal the literal conjunction")
	}
	if m.Cube(nil) != True {
		t.Error("empty cube is True")
	}
}

func TestAllSatEnumeratesDisjointCoveringCubes(t *testing.T) {
	const nVars = 5
	f := func(seed int64) bool {
		m := NewManager(nVars)
		rng := rand.New(rand.NewSource(seed))
		n, tt := randomFormula(m, rng, 4)
		covered := make([]bool, 1<<nVars)
		ok := true
		m.AllSat(n, func(cube []Lit) bool {
			// Expand cube into concrete assignments.
			expand(cube, 0, 0, func(a uint) {
				if covered[a] {
					ok = false // cubes must be disjoint
				}
				covered[a] = true
				if !tt[a] {
					ok = false // cube must be inside the onset
				}
			})
			return true
		})
		for a, want := range tt {
			if want && !covered[a] {
				return false // full coverage
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func expand(cube []Lit, v int, acc uint, visit func(uint)) {
	if v == len(cube) {
		visit(acc)
		return
	}
	switch cube[v] {
	case LitFalse:
		expand(cube, v+1, acc, visit)
	case LitTrue:
		expand(cube, v+1, acc|1<<uint(v), visit)
	default:
		expand(cube, v+1, acc, visit)
		expand(cube, v+1, acc|1<<uint(v), visit)
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := NewManager(3)
	n := m.Or(m.Var(0), m.Var(1))
	calls := 0
	m.AllSat(n, func([]Lit) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop: %d calls, want 1", calls)
	}
}

func TestImplies(t *testing.T) {
	m := NewManager(3)
	ab := m.And(m.Var(0), m.Var(1))
	a := m.Var(0)
	if !m.Implies(ab, a) {
		t.Error("a∧b → a")
	}
	if m.Implies(a, ab) {
		t.Error("a does not imply a∧b")
	}
	if !m.Implies(False, a) || !m.Implies(a, True) {
		t.Error("False implies everything; everything implies True")
	}
}

func TestClearCachePreservesIdentity(t *testing.T) {
	m := NewManager(3)
	x := m.And(m.Var(0), m.Var(1))
	m.ClearCache()
	y := m.And(m.Var(0), m.Var(1))
	if x != y {
		t.Error("identity must survive cache clears (unique table intact)")
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	m := NewManager(2)
	for _, v := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Var(%d) should panic", v)
				}
			}()
			m.Var(v)
		}()
	}
}

func TestSizeGrowsAndIsShared(t *testing.T) {
	m := NewManager(8)
	before := m.Size()
	f1 := m.And(m.Var(0), m.Var(1))
	mid := m.Size()
	if mid <= before {
		t.Error("building a formula must allocate nodes")
	}
	f2 := m.And(m.Var(1), m.Var(0)) // same function
	if f1 != f2 || m.Size() != mid {
		t.Error("equal functions must share structure without new nodes")
	}
}

func TestOrAll(t *testing.T) {
	m := NewManager(6)
	if m.OrAll(nil) != False {
		t.Error("OrAll(nil) must be False")
	}
	a := m.Var(0)
	if m.OrAll([]Node{a}) != a {
		t.Error("OrAll of one node must be that node")
	}
	nodes := []Node{m.Var(0), m.Var(1), m.Var(2), m.Var(3), m.Var(4)}
	want := False
	for _, n := range nodes {
		want = m.Or(want, n)
	}
	if got := m.OrAll(nodes); got != want {
		t.Errorf("OrAll = node %d, left fold = node %d (canonicity violated)", got, want)
	}
	// Balanced reduction of a disjoint cube family must still equal the
	// left fold (canonical form is association-independent).
	cubes := []Node{
		m.Cube(map[int]bool{0: true, 1: false}),
		m.Cube(map[int]bool{0: false, 2: true}),
		m.Cube(map[int]bool{3: true, 4: true, 5: false}),
	}
	want = False
	for _, n := range cubes {
		want = m.Or(want, n)
	}
	if got := m.OrAll(cubes); got != want {
		t.Error("OrAll over cubes differs from left fold")
	}
}

func TestInBase(t *testing.T) {
	m := NewManager(4)
	frozen := m.And(m.Var(0), m.Var(1))
	snap := m.Freeze()

	fork := NewManagerFrom(snap)
	if !fork.InBase(frozen) || !fork.InBase(True) || !fork.InBase(False) {
		t.Error("frozen nodes and terminals must be InBase for a fork")
	}
	// A function expressible in the base resolves to its frozen ID.
	if got := fork.And(fork.Var(0), fork.Var(1)); !fork.InBase(got) {
		t.Errorf("base-expressible function landed in the delta (node %d)", got)
	}
	novel := fork.And(fork.Var(2), fork.Var(3))
	if fork.InBase(novel) {
		t.Error("novel function must live in the delta")
	}

	standalone := NewManager(4)
	if standalone.InBase(standalone.Var(0)) || standalone.InBase(True) {
		t.Error("standalone managers have no base")
	}
}
