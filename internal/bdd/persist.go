// Snapshot persistence support: the introspection and reconstruction
// surface the durable warm-state store (internal/store) is built on. A
// frozen Snapshot is fully determined by its variable count and flat
// (level, lo, hi) node array — the unique table is a dense index over
// those triples and the op cache is a pure accelerator — so NodeAt
// exposes the array for encoding and RebuildSnapshot re-interns it on
// load, validating the ROBDD invariants so a corrupted file can never
// produce a snapshot that violates canonicity. Import grafts a frozen
// function across managers, which is how the cross-deployment registry
// shares semantics BDDs between bases with different node pools.

package bdd

import "fmt"

// NodeAt returns the (level, lo, hi) triple of frozen node i. Indices 0
// and 1 are the terminals (level == NumVars() sentinel reported as-is is
// not useful to callers, so terminals report their stored sentinel; a
// codec only needs the triple to round-trip). It is safe for concurrent
// use, like every Snapshot read.
func (s *Snapshot) NodeAt(i int) (level int32, lo, hi Node) {
	d := s.nodes[i]
	return d.level, d.lo, d.hi
}

// RebuildSnapshot reconstructs a frozen Snapshot from a flat node
// stream: node(i) must return the triple NodeAt(i) reported when the
// snapshot was encoded, for i in [2, numNodes). The unique table is
// rebuilt by re-interning every triple, so node IDs — and therefore
// every memoized root referring into the snapshot — are preserved
// exactly. The op cache starts empty (it is a pure accelerator; forks
// repopulate it), so a rebuilt snapshot answers the same questions as
// the original, only the first operations after a cold start recurse
// instead of hitting memos.
//
// The ROBDD structural invariants are validated as the array is
// replayed — levels in range, children preceding parents, no redundant
// (lo == hi) nodes, no duplicate triples — so a corrupted or
// hand-forged byte stream is rejected here even if it passed the
// codec's checksum.
func RebuildSnapshot(numVars, numNodes int, node func(i int) (level int32, lo, hi Node)) (*Snapshot, error) {
	if numVars <= 0 || numVars > 1<<20 {
		return nil, fmt.Errorf("bdd: rebuild: variable count %d out of range", numVars)
	}
	if numNodes < 2 {
		return nil, fmt.Errorf("bdd: rebuild: node count %d below the two terminals", numNodes)
	}
	s := &Snapshot{
		numVars: numVars,
		nodes:   make([]nodeData, 2, numNodes),
		unique:  newNodeTable(numNodes),
		cache:   newOpCache(1024),
		pow2:    pow2Table(numVars),
	}
	s.nodes[False] = nodeData{level: terminalLevel}
	s.nodes[True] = nodeData{level: terminalLevel}
	for i := 2; i < numNodes; i++ {
		level, lo, hi := node(i)
		if level < 0 || int(level) >= numVars {
			return nil, fmt.Errorf("bdd: rebuild: node %d level %d out of range [0,%d)", i, level, numVars)
		}
		if lo < 0 || int(lo) >= i || hi < 0 || int(hi) >= i {
			return nil, fmt.Errorf("bdd: rebuild: node %d children (%d,%d) not below id", i, lo, hi)
		}
		if lo == hi {
			return nil, fmt.Errorf("bdd: rebuild: node %d is redundant (lo == hi == %d)", i, lo)
		}
		// Children must be strictly deeper in the ordering (terminals sit
		// at the sentinel level below everything).
		if s.nodes[lo].level <= level || s.nodes[hi].level <= level {
			return nil, fmt.Errorf("bdd: rebuild: node %d level %d not above its children", i, level)
		}
		if dup := s.unique.lookup(s.nodes, 0, level, lo, hi); dup != 0 {
			return nil, fmt.Errorf("bdd: rebuild: node %d duplicates node %d", i, dup)
		}
		s.nodes = append(s.nodes, nodeData{level: level, lo: lo, hi: hi})
		s.unique.insert(s.nodes, 0, Node(i))
	}
	return s, nil
}

// Import copies the function rooted at root in the frozen snapshot src
// into this manager, returning the equivalent root here. The copy is a
// memoized structural walk through mk, so shared subgraphs are visited
// once and every subfunction the manager (or its frozen base) already
// interns resolves to its existing ID — importing a function a fork's
// base can express costs no delta nodes at all. Recursion depth is
// bounded by the variable count (levels strictly increase along any
// root-to-terminal path). Both managers must agree on the variable
// ordering; here that is enforced as an equal variable count.
func (m *Manager) Import(src *Snapshot, root Node) Node {
	if src.numVars != m.numVars {
		panic(fmt.Sprintf("bdd: Import across variable counts (%d vs %d)", src.numVars, m.numVars))
	}
	if root == False || root == True {
		return root
	}
	memo := make(map[Node]Node, 64)
	return m.importNode(src, root, memo)
}

func (m *Manager) importNode(src *Snapshot, n Node, memo map[Node]Node) Node {
	if n == False || n == True {
		return n
	}
	if r, ok := memo[n]; ok {
		return r
	}
	d := src.nodes[n]
	r := m.mk(d.level, m.importNode(src, d.lo, memo), m.importNode(src, d.hi, memo))
	memo[n] = r
	return r
}
