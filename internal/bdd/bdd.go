// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with hash-consing, the data structure behind the paper's L-T
// equivalence checker (§III-C): two rule sets are behaviourally equal iff
// their ROBDDs have the same root node.
//
// The implementation is a classic shared-node manager: every (variable,
// low, high) triple is interned in a unique table so structural equality
// is pointer (node-ID) equality, and binary operations are memoized in an
// operation cache. Only the standard boolean algebra needed by the
// checker is provided: And, Or, Xor, Not, Diff, plus satisfiability
// counting and cube enumeration used by tests and the missing-rule
// extractor.
//
// Storage is struct-of-arrays: nodes live in a flat []nodeData slice and
// the unique table and operation cache are custom open-addressed tables
// over packed machine-word keys (tables.go) rather than Go maps — node
// IDs and operation results are identical to the map-backed layout (the
// exact caches never evict), only the per-operation cost changes. A
// direct-mapped L1 tier sits in front of the exact op cache, and both
// clear in O(1) via generation counters instead of reallocation.
//
// A manager can be frozen into an immutable Snapshot (Freeze) and forked
// (NewManagerFrom): forks extend the frozen node-ID prefix with a private
// delta, so any number of forks share the snapshot's nodes lock-free
// while building their own. This is how the equivalence checker shares
// one warm encoding base across check-stage workers. Long-lived forks
// can shed dead delta nodes in place with CompactDelta (compact.go).
package bdd

import (
	"fmt"
	"math"
)

// Node identifies a BDD node within its Manager. The terminals False and
// True are pre-allocated in every manager. Node IDs are stable across
// Freeze/NewManagerFrom: a node built against a snapshot's manager keeps
// its ID in every fork of that snapshot.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // variable index; terminals use level = maxLevel sentinel
	lo, hi Node
}

type opKind uint8

const (
	opAnd opKind = iota + 1
	opOr
	opXor
)

const terminalLevel = math.MaxInt32

// Snapshot is an immutable, frozen view of a manager's node pool: the
// node array, the unique table, and the operation cache at freeze time.
// A Snapshot is safe for lock-free concurrent reads — any number of
// goroutines may fork managers from it (NewManagerFrom), evaluate its
// nodes (Eval), or share it between checkers; nothing ever mutates it.
type Snapshot struct {
	numVars int
	nodes   []nodeData
	unique  nodeTable
	cache   opCache
	pow2    []float64
}

// NumVars returns the number of variables in the snapshot's ordering.
func (s *Snapshot) NumVars() int { return s.numVars }

// Size returns the number of frozen nodes (including the two terminals).
func (s *Snapshot) Size() int { return len(s.nodes) }

// Contains reports whether n is a node of the frozen prefix (valid in
// every fork of this snapshot).
func (s *Snapshot) Contains(n Node) bool { return n >= 0 && int(n) < len(s.nodes) }

// Eval evaluates a frozen node under the given full assignment (indexed
// by variable). It is safe for concurrent use.
func (s *Snapshot) Eval(n Node, assignment []bool) bool {
	for n != False && n != True {
		d := s.nodes[n]
		if assignment[d.level] {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}

// deltaHint is the default fork table pre-sizing derived from the frozen
// base's observed size: forks of a heavily-loaded base tend to build
// proportionally larger deltas (dirty-switch re-encodes against a big
// deployment), while tiny bases should not drag 64 KiB tables into every
// short-lived fork. Callers that know their actual delta budget use
// NewManagerFromSized instead.
func (s *Snapshot) deltaHint() int {
	h := len(s.nodes) / 8
	if h < 1024 {
		return 1024
	}
	if h > 1<<16 {
		return 1 << 16
	}
	return h
}

// CacheStats counts operation-cache outcomes on a manager's apply path.
// L1Hits answered from the direct-mapped first tier, BaseHits from the
// frozen base snapshot's cache, L2Hits from the exact open-addressed
// table, Misses recursed. The tiers are purely a speed split: every
// L1/base/L2 hit returns exactly what the exact table holds, so the sum
// of hits and misses is workload-determined, not policy-determined.
type CacheStats struct {
	L1Hits   uint64
	L2Hits   uint64
	BaseHits uint64
	Misses   uint64
}

// Hits returns all cache hits across tiers.
func (s CacheStats) Hits() uint64 { return s.L1Hits + s.L2Hits + s.BaseHits }

// Add accumulates other into s.
func (s *CacheStats) Add(other CacheStats) {
	s.L1Hits += other.L1Hits
	s.L2Hits += other.L2Hits
	s.BaseHits += other.BaseHits
	s.Misses += other.Misses
}

// Manager owns a shared BDD node pool over a fixed number of boolean
// variables. Variable 0 is the topmost in the ordering. A Manager is not
// safe for concurrent use; share work across goroutines by freezing one
// manager and forking it per goroutine instead.
type Manager struct {
	numVars int
	// base is the frozen prefix this manager extends (nil for standalone
	// managers). Node IDs < baseLen resolve through base; IDs >= baseLen
	// index nodes (the private delta) at offset -baseLen.
	base    *Snapshot
	baseLen int
	frozen  bool
	nodes   []nodeData
	unique  nodeTable
	cache   opCache
	l1      l1Cache
	stats   CacheStats
	// pow2[i] = 2^i for i in [0, numVars], precomputed once so SatCount's
	// per-node visits avoid math.Pow (hot in the missing-rule extractor).
	pow2 []float64
	// SatCount memo, reused across calls: satStamps[id] == satStamp marks
	// satCounts[id] valid for the current call. Bumping satStamp is the
	// whole between-call invalidation, so steady-state SatCount allocates
	// nothing.
	satCounts []float64
	satStamps []uint32
	satStamp  uint32
}

// NewManager creates a manager over numVars boolean variables.
func NewManager(numVars int) *Manager {
	m := &Manager{
		numVars: numVars,
		nodes:   make([]nodeData, 2, 1024),
		unique:  newNodeTable(1024),
		cache:   newOpCache(1024),
		pow2:    pow2Table(numVars),
	}
	m.nodes[False] = nodeData{level: terminalLevel}
	m.nodes[True] = nodeData{level: terminalLevel}
	return m
}

// NewManagerFrom creates a manager extending the frozen snapshot: every
// snapshot node keeps its ID and meaning, and new nodes are interned in a
// private delta starting at ID snapshot.Size(). Creating a fork is O(1)
// — no node copying — so per-worker forks of a large shared base are
// cheap, and discarding one (building a replacement fork) discards only
// its delta. Delta tables are pre-sized from the base's observed load;
// callers that know their delta budget use NewManagerFromSized.
func NewManagerFrom(s *Snapshot) *Manager {
	return NewManagerFromSized(s, s.deltaHint())
}

// NewManagerFromSized is NewManagerFrom with an explicit delta budget:
// the fork's node array and tables are pre-sized for roughly deltaNodes
// delta nodes, so a caller that knows its working-set bound (a session
// checker with a node budget) skips the incremental growth ramp.
func NewManagerFromSized(s *Snapshot, deltaNodes int) *Manager {
	if deltaNodes < 16 {
		deltaNodes = 16
	}
	return &Manager{
		numVars: s.numVars,
		base:    s,
		baseLen: len(s.nodes),
		nodes:   make([]nodeData, 0, deltaNodes),
		unique:  newNodeTable(deltaNodes),
		cache:   newOpCache(deltaNodes),
		pow2:    s.pow2,
	}
}

// Freeze seals the manager's node pool into an immutable Snapshot and
// marks the manager frozen: any further node construction panics, which
// is what guarantees the snapshot's readers never race a writer. Freeze
// is for standalone managers (the warmup pass); freezing a fork panics —
// re-freeze-and-extend is not supported.
func (m *Manager) Freeze() *Snapshot {
	if m.base != nil {
		panic("bdd: Freeze on a forked manager is not supported")
	}
	m.frozen = true
	return &Snapshot{
		numVars: m.numVars,
		nodes:   m.nodes,
		unique:  m.unique,
		cache:   m.cache,
		pow2:    m.pow2,
	}
}

func pow2Table(numVars int) []float64 {
	t := make([]float64, numVars+1)
	p := 1.0
	for i := range t {
		t[i] = p
		p *= 2
	}
	return t
}

// NumVars returns the number of variables in the ordering.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes reachable through this manager
// (including the two terminals and, for forks, the whole frozen base).
func (m *Manager) Size() int { return m.baseLen + len(m.nodes) }

// DeltaSize returns the number of nodes owned by this manager itself:
// everything beyond the frozen base for forks, Size() for standalone
// managers. Node budgets on long-lived forks watch DeltaSize — the base
// is shared and immutable, only the delta is this manager's to shed.
func (m *Manager) DeltaSize() int { return len(m.nodes) }

// InBase reports whether n lives in the frozen prefix this manager forked
// from (always false for standalone managers). It is the delta-accounting
// probe the shared-semantics identity tests assert with: a function
// resolved entirely from the base — a warmed match encoding or a frozen
// whole-switch semantics root — is base-resident and costs the fork
// nothing.
func (m *Manager) InBase(n Node) bool { return int(n) < m.baseLen }

// CacheStats returns the cumulative operation-cache hit/miss counters.
func (m *Manager) CacheStats() CacheStats { return m.stats }

// node resolves a node ID through the frozen base or the private delta.
func (m *Manager) node(n Node) nodeData {
	if int(n) < m.baseLen {
		return m.base.nodes[n]
	}
	return m.nodes[int(n)-m.baseLen]
}

// Var returns the BDD for the single variable v (true branch to True).
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), True, False)
}

// mk interns the node (level, lo, hi), applying the ROBDD reduction rule.
// Nodes already interned in the frozen base resolve to their base ID, so
// forks sharing a base agree on the identity of every base-expressible
// function.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	if m.base != nil {
		if n := m.base.unique.lookup(m.base.nodes, 0, level, lo, hi); n != 0 {
			return n
		}
	}
	if n := m.unique.lookup(m.nodes, m.baseLen, level, lo, hi); n != 0 {
		return n
	}
	if m.frozen {
		panic("bdd: node construction on a frozen manager")
	}
	n := Node(m.baseLen + len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique.insert(m.nodes, m.baseLen, n)
	return n
}

// And returns a ∧ b.
func (m *Manager) And(a, b Node) Node { return m.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Node) Node { return m.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Node) Node { return m.apply(opXor, a, b) }

// Not returns ¬a.
func (m *Manager) Not(a Node) Node { return m.apply(opXor, a, True) }

// Diff returns a ∧ ¬b — the satisfying assignments of a not covered by b.
// This is the "missing behaviour" operator of the equivalence checker.
func (m *Manager) Diff(a, b Node) Node { return m.And(a, m.Not(b)) }

// OrAll reduces nodes with a balanced binary OR tree. Compared to a left
// fold, the balanced shape keeps intermediate BDDs small (O(N log N)
// total apply work for the checker's same-action rule runs) and, more
// importantly here, makes the reduction deterministic in the node IDs it
// creates — the property the frozen-base warmup relies on to build
// byte-reproducible snapshots.
func (m *Manager) OrAll(nodes []Node) Node {
	switch len(nodes) {
	case 0:
		return False
	case 1:
		return nodes[0]
	}
	mid := len(nodes) / 2
	return m.Or(m.OrAll(nodes[:mid]), m.OrAll(nodes[mid:]))
}

// Implies reports whether a → b is a tautology (a's onset ⊆ b's onset).
func (m *Manager) Implies(a, b Node) bool { return m.Diff(a, b) == False }

// Equiv reports whether a and b denote the same boolean function. Because
// ROBDDs are canonical this is node-ID equality.
func (m *Manager) Equiv(a, b Node) bool { return a == b }

func (m *Manager) apply(op opKind, a, b Node) Node {
	// A frozen manager's unique table and op cache are shared with its
	// snapshot's readers; even a cache-hit lookup here would race the
	// write below, so operations are cut off wholesale. (Reads — Eval,
	// SatCount, AllSat — stay valid; they never touch the caches.)
	if m.frozen {
		panic("bdd: boolean operations on a frozen manager")
	}
	// Terminal short-circuits.
	switch op {
	case opAnd:
		switch {
		case a == False || b == False:
			return False
		case a == True:
			return b
		case b == True:
			return a
		case a == b:
			return a
		}
	case opOr:
		switch {
		case a == True || b == True:
			return True
		case a == False:
			return b
		case b == False:
			return a
		case a == b:
			return a
		}
	case opXor:
		switch {
		case a == b:
			return False
		case a == False:
			return b
		case b == False:
			return a
		}
	}

	// Normalize operand order for the commutative ops to halve the cache.
	ca, cb := a, b
	if cb < ca {
		ca, cb = cb, ca
	}
	key := packOpKey(op, ca, cb)
	// Tier order: direct-mapped L1 (one predictable load) in front of the
	// base's frozen cache (operations whose operands and result all
	// predate the freeze — the warm encodings a fork exists to reuse) in
	// front of the exact local table. Hits from the slower tiers refill
	// L1 so the tight re-reference runs of cofactor recursion stay in it.
	if r, ok := m.l1.lookup(key); ok {
		m.stats.L1Hits++
		return r
	}
	if m.base != nil {
		if r, ok := m.base.cache.lookup(key); ok {
			m.stats.BaseHits++
			m.l1.store(key, r)
			return r
		}
	}
	if r, ok := m.cache.lookup(key); ok {
		m.stats.L2Hits++
		m.l1.store(key, r)
		return r
	}
	m.stats.Misses++

	da, db := m.node(a), m.node(b)
	var level int32
	var aLo, aHi, bLo, bHi Node
	switch {
	case da.level == db.level:
		level, aLo, aHi, bLo, bHi = da.level, da.lo, da.hi, db.lo, db.hi
	case da.level < db.level:
		level, aLo, aHi, bLo, bHi = da.level, da.lo, da.hi, b, b
	default:
		level, aLo, aHi, bLo, bHi = db.level, a, a, db.lo, db.hi
	}
	r := m.mk(level, m.apply(op, aLo, bLo), m.apply(op, aHi, bHi))
	m.cache.insert(key, r)
	m.l1.store(key, r)
	return r
}

// Cube returns the conjunction of literals: for each (variable, value)
// pair, variable if value is true, its negation otherwise. Literals must
// be given in ascending variable order for best performance but any order
// is accepted.
func (m *Manager) Cube(literals map[int]bool) Node {
	// Build bottom-up in descending variable order for linear node count.
	vars := make([]int, 0, len(literals))
	for v := range literals {
		vars = append(vars, v)
	}
	// insertion sort: literal maps are small (tens of variables)
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	acc := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if literals[v] {
			acc = m.mk(int32(v), False, acc)
		} else {
			acc = m.mk(int32(v), acc, False)
		}
	}
	return acc
}

// SatCount returns the number of satisfying assignments of n over the full
// variable set, as a float64 (counts can exceed 2^53 for wide managers;
// the checker only compares counts for equality at small widths in tests).
// The memo is a stamped slice indexed by (dense) node ID, reused across
// calls: steady-state SatCount allocates nothing.
func (m *Manager) SatCount(n Node) float64 {
	if size := m.Size(); len(m.satCounts) < size {
		m.satCounts = make([]float64, size)
		m.satStamps = make([]uint32, size)
		m.satStamp = 0
	}
	m.satStamp++
	if m.satStamp == 0 {
		// Stamp wrap: zero the stamps so stale entries cannot alias.
		for i := range m.satStamps {
			m.satStamps[i] = 0
		}
		m.satStamp = 1
	}
	return m.satCount(n) * m.pow2[m.levelOf(n)]
}

func (m *Manager) satCount(n Node) float64 {
	if n == False {
		return 0
	}
	if n == True {
		return 1
	}
	if m.satStamps[n] == m.satStamp {
		return m.satCounts[n]
	}
	d := m.node(n)
	c := m.satCount(d.lo)*m.pow2[m.levelOf(d.lo)-d.level-1] +
		m.satCount(d.hi)*m.pow2[m.levelOf(d.hi)-d.level-1]
	m.satCounts[n] = c
	m.satStamps[n] = m.satStamp
	return c
}

func (m *Manager) levelOf(n Node) int32 {
	l := m.node(n).level
	if l == terminalLevel {
		return int32(m.numVars)
	}
	return l
}

// Lit is one literal of a satisfying cube: -1 don't-care, 0 false, 1 true.
type Lit int8

// Don't-care, false, and true literal values.
const (
	LitAny   Lit = -1
	LitFalse Lit = 0
	LitTrue  Lit = 1
)

// AllSat invokes fn for every satisfying cube of n. The cube slice is
// reused between calls; fn must copy it if it retains it. fn returns false
// to stop the enumeration early.
func (m *Manager) AllSat(n Node, fn func(cube []Lit) bool) {
	cube := make([]Lit, m.numVars)
	for i := range cube {
		cube[i] = LitAny
	}
	m.allSat(n, cube, fn)
}

func (m *Manager) allSat(n Node, cube []Lit, fn func([]Lit) bool) bool {
	if n == False {
		return true
	}
	if n == True {
		return fn(cube)
	}
	d := m.node(n)
	v := int(d.level)
	cube[v] = LitFalse
	if !m.allSat(d.lo, cube, fn) {
		cube[v] = LitAny
		return false
	}
	cube[v] = LitTrue
	if !m.allSat(d.hi, cube, fn) {
		cube[v] = LitAny
		return false
	}
	cube[v] = LitAny
	return true
}

// Eval evaluates n under the given full assignment (indexed by variable).
func (m *Manager) Eval(n Node, assignment []bool) bool {
	for n != False && n != True {
		d := m.node(n)
		if assignment[d.level] {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}

// ClearCache drops the operation cache (the unique table is kept so node
// identity is preserved). Clearing is allocation-free: both cache tiers
// bump their generation counter instead of reallocating. A fork's frozen
// base cache is unaffected.
func (m *Manager) ClearCache() {
	m.cache.clear()
	m.l1.clear()
}
