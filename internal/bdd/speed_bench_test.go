package bdd

import (
	"math/rand"
	"testing"
)

// engine is the operation surface the speed benchmarks drive on both the
// open-addressed Manager and the map-backed RefManager, so the two share
// one workload definition and the legs stay comparable.
type engine interface {
	Cube(map[int]bool) Node
	And(a, b Node) Node
	Or(a, b Node) Node
	Xor(a, b Node) Node
	Size() int
}

// internWorkload builds the checker-shaped literal cubes once; each
// benchmark iteration replays them against a manager. Every cube fixes
// the same 16 spread positions with random polarities (the match-field
// shape BenchmarkApplyChain uses), which keeps the accumulated unions
// polynomial while still churning the unique table and op cache.
func internWorkload(nVars, nCubes int) []map[int]bool {
	rng := rand.New(rand.NewSource(17))
	lits := make([]map[int]bool, nCubes)
	for i := range lits {
		l := make(map[int]bool, 16)
		for v := 0; v < 16 && v*4 < nVars; v++ {
			l[v*4] = rng.Intn(2) == 0
		}
		lits[i] = l
	}
	return lits
}

func runIntern(m engine, lits []map[int]bool) Node {
	acc := False
	for _, l := range lits {
		acc = m.Or(acc, m.Cube(l))
	}
	return acc
}

// BenchmarkMkIntern measures raw node interning: a fresh manager per
// iteration builds and unions a few thousand literal cubes, so nearly
// every mk is a unique-table miss followed by an insert. The open/ref
// pair is the unique-table replacement's headline comparison.
func BenchmarkMkIntern(b *testing.B) {
	const nVars = 64
	lits := internWorkload(nVars, 2048)
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if runIntern(NewManager(nVars), lits) == False {
				b.Fatal("union must be non-empty")
			}
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if runIntern(NewRefManager(nVars), lits) == False {
				b.Fatal("union must be non-empty")
			}
		}
	})
}

// applyWorkload replays an apply-heavy mix: pairwise And/Or/Xor over a
// ladder of accumulated unions — the fold loop's shape, dominated by
// op-cache lookups and mk on wide intermediate functions rather than by
// cube construction.
func applyWorkload(m engine, lits []map[int]bool) Node {
	roots := make([]Node, 0, len(lits))
	for _, l := range lits {
		roots = append(roots, m.Cube(l))
	}
	// Prefix unions give progressively wider operands.
	sums := make([]Node, len(roots))
	acc := False
	for i, r := range roots {
		acc = m.Or(acc, r)
		sums[i] = acc
	}
	out := False
	for i := 0; i < len(sums); i++ {
		j := (i*7 + 3) % len(sums)
		out = m.Or(out, m.And(m.Xor(sums[i], sums[j]), sums[(i+j)/2]))
	}
	return out
}

// BenchmarkApplyColdWarm is the cold-encode microbench the tentpole is
// gated on: the cold legs rebuild a fresh manager per iteration (every
// op-cache lookup misses, every node interns — the one-shot analyzer's
// cost shape), the warm legs replay the identical stream on a warm
// manager (all hits — the session re-check shape). The open/cold vs
// ref/cold ratio is the claimed speedup.
func BenchmarkApplyColdWarm(b *testing.B) {
	const nVars = 64
	lits := internWorkload(nVars, 512)
	b.Run("open/cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			applyWorkload(NewManager(nVars), lits)
		}
	})
	b.Run("ref/cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			applyWorkload(NewRefManager(nVars), lits)
		}
	})
	b.Run("open/warm", func(b *testing.B) {
		m := NewManager(nVars)
		applyWorkload(m, lits)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			applyWorkload(m, lits)
		}
	})
	b.Run("ref/warm", func(b *testing.B) {
		m := NewRefManager(nVars)
		applyWorkload(m, lits)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			applyWorkload(m, lits)
		}
	})
}

// BenchmarkCompactDelta measures the delta GC itself: a fork accumulates
// a mixed live/dead delta (rebuilt outside the timer each iteration),
// then CompactDelta marks, rebuilds, and remaps it.
func BenchmarkCompactDelta(b *testing.B) {
	const nVars = 24
	base := NewManager(nVars)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		randomFormula(base, rng, 6)
	}
	snap := base.Freeze()
	lits := internWorkload(nVars, 384)

	var retained, dropped int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fork := NewManagerFrom(snap)
		var keep []Node
		for j := 0; j < len(lits); j += 4 {
			keep = append(keep, applyWorkload(fork, lits[j:j+4]))
		}
		keep = keep[:len(keep)/2] // half the roots die
		b.StartTimer()
		_, stats := fork.CompactDelta(keep)
		retained, dropped = stats.Retained, stats.Dropped
	}
	b.ReportMetric(float64(retained), "retained-nodes")
	b.ReportMetric(float64(dropped), "dropped-nodes")
}
