package rule

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scout/internal/object"
)

func TestRuleEqual(t *testing.T) {
	base := Rule{
		Match:      Match{VRF: 101, SrcEPG: 1, DstEPG: 2, Proto: ProtoTCP, PortLo: 80, PortHi: 80},
		Action:     Allow,
		Priority:   10,
		Provenance: []object.Ref{object.Filter(5000), object.Contract(3000)},
	}
	if !base.Equal(base.Clone()) {
		t.Fatal("clone must be Equal")
	}
	variants := []Rule{}
	v := base.Clone()
	v.Match.PortHi = 81
	variants = append(variants, v)
	v = base.Clone()
	v.Action = Deny
	variants = append(variants, v)
	v = base.Clone()
	v.Priority = 11
	variants = append(variants, v)
	v = base.Clone()
	v.Provenance = v.Provenance[:1]
	variants = append(variants, v)
	v = base.Clone()
	v.Provenance[0], v.Provenance[1] = v.Provenance[1], v.Provenance[0]
	variants = append(variants, v)
	for i, v := range variants {
		if base.Equal(v) {
			t.Errorf("variant %d must not be Equal", i)
		}
	}

	a := []Rule{base, DefaultDeny()}
	if !SlicesEqual(a, []Rule{base.Clone(), DefaultDeny()}) {
		t.Error("equal slices reported unequal")
	}
	if SlicesEqual(a, a[:1]) {
		t.Error("length mismatch reported equal")
	}
	if SlicesEqual(a, []Rule{DefaultDeny(), base}) {
		t.Error("order must matter")
	}
	if !SlicesEqual(nil, []Rule{}) {
		t.Error("nil and empty slices must be equal")
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Error("action names wrong")
	}
	if !strings.Contains(Action(9).String(), "9") {
		t.Error("unknown action should include numeric value")
	}
}

func TestProtocolString(t *testing.T) {
	tests := []struct {
		p    Protocol
		want string
	}{
		{ProtoAny, "any"}, {ProtoICMP, "icmp"}, {ProtoTCP, "tcp"}, {ProtoUDP, "udp"}, {Protocol(89), "89"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Protocol(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestMatchCovers(t *testing.T) {
	m := Match{VRF: 101, SrcEPG: 1, DstEPG: 2, Proto: ProtoTCP, PortLo: 80, PortHi: 90}
	tests := []struct {
		name  string
		vrf   object.ID
		src   object.ID
		dst   object.ID
		proto Protocol
		port  uint16
		want  bool
	}{
		{"exact", 101, 1, 2, ProtoTCP, 80, true},
		{"port-in-range", 101, 1, 2, ProtoTCP, 85, true},
		{"port-hi-edge", 101, 1, 2, ProtoTCP, 90, true},
		{"port-below", 101, 1, 2, ProtoTCP, 79, false},
		{"port-above", 101, 1, 2, ProtoTCP, 91, false},
		{"wrong-vrf", 102, 1, 2, ProtoTCP, 80, false},
		{"wrong-src", 101, 9, 2, ProtoTCP, 80, false},
		{"wrong-dst", 101, 1, 9, ProtoTCP, 80, false},
		{"wrong-proto", 101, 1, 2, ProtoUDP, 80, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Covers(tt.vrf, tt.src, tt.dst, tt.proto, tt.port); got != tt.want {
				t.Errorf("Covers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchCoversWildcards(t *testing.T) {
	m := DefaultDeny().Match
	if !m.Covers(1, 2, 3, ProtoTCP, 80) || !m.Covers(0, 0, 0, ProtoICMP, 0) {
		t.Error("default deny must cover everything")
	}
	// ProtoAny in match covers any protocol.
	m2 := Match{VRF: 1, SrcEPG: 1, DstEPG: 1, Proto: ProtoAny, PortLo: 0, PortHi: PortMax}
	if !m2.Covers(1, 1, 1, ProtoUDP, 9999) {
		t.Error("ProtoAny should match udp")
	}
}

func TestDefaultDenyIsDefaultDeny(t *testing.T) {
	if !DefaultDeny().IsDefaultDeny() {
		t.Error("DefaultDeny() must satisfy IsDefaultDeny")
	}
	r := Rule{Match: Match{VRF: 1, Proto: ProtoAny, PortHi: PortMax}, Action: Deny}
	if r.IsDefaultDeny() {
		t.Error("non-wildcard deny is not a default deny")
	}
	allowAll := DefaultDeny()
	allowAll.Action = Allow
	if allowAll.IsDefaultDeny() {
		t.Error("allow-all is not a default deny")
	}
}

func TestRuleKeyIgnoresPriorityAndProvenance(t *testing.T) {
	a := Rule{Match: Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: ProtoTCP, PortLo: 80, PortHi: 80}, Action: Allow, Priority: 10,
		Provenance: []object.Ref{object.VRF(1)}}
	b := a.Clone()
	b.Priority = 99
	b.Provenance = nil
	if a.Key() != b.Key() {
		t.Error("Key must ignore priority and provenance")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := Rule{Match: Match{VRF: 1}, Action: Allow, Provenance: []object.Ref{object.VRF(1), object.EPG(2)}}
	cp := orig.Clone()
	cp.Provenance[0] = object.Filter(9)
	if orig.Provenance[0] != object.VRF(1) {
		t.Error("Clone shares provenance backing array")
	}
}

func TestHasProvenance(t *testing.T) {
	r := Rule{Provenance: []object.Ref{object.VRF(1), object.Filter(5)}}
	if !r.HasProvenance(object.Filter(5)) {
		t.Error("should find filter:5")
	}
	if r.HasProvenance(object.Filter(6)) {
		t.Error("should not find filter:6")
	}
}

func TestSortOrdersByPriorityThenFields(t *testing.T) {
	rules := []Rule{
		{Match: Match{VRF: 2}, Action: Allow, Priority: 10},
		{Match: Match{VRF: 1}, Action: Allow, Priority: 10},
		DefaultDeny(), // priority 0 → last
		{Match: Match{VRF: 1, SrcEPG: 5}, Action: Allow, Priority: 20},
	}
	Sort(rules)
	if rules[0].Priority != 20 {
		t.Errorf("highest priority first, got %v", rules[0])
	}
	if !rules[len(rules)-1].IsDefaultDeny() {
		t.Errorf("default deny last, got %v", rules[len(rules)-1])
	}
	if rules[1].Match.VRF != 1 || rules[2].Match.VRF != 2 {
		t.Error("ties broken by match fields ascending")
	}
}

func TestSortDeterministicQuick(t *testing.T) {
	gen := func(seed int64) []Rule {
		rng := rand.New(rand.NewSource(seed))
		rules := make([]Rule, 30)
		for i := range rules {
			rules[i] = Rule{
				Match: Match{
					VRF:    object.ID(rng.Intn(4)),
					SrcEPG: object.ID(rng.Intn(4)),
					DstEPG: object.ID(rng.Intn(4)),
					Proto:  Protocol(rng.Intn(3) * 6),
					PortLo: uint16(rng.Intn(100)),
					PortHi: uint16(100 + rng.Intn(100)),
				},
				Action:   Action(1 + rng.Intn(2)),
				Priority: rng.Intn(3) * 10,
			}
		}
		return rules
	}
	f := func(seed int64) bool {
		a := gen(seed)
		b := gen(seed)
		// Shuffle b differently, sort both: results must be identical.
		rng := rand.New(rand.NewSource(seed + 1))
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		Sort(a)
		Sort(b)
		for i := range a {
			if a[i].Key() != b[i].Key() || a[i].Priority != b[i].Priority {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDedupeKeepsFirst(t *testing.T) {
	r1 := Rule{Match: Match{VRF: 1}, Action: Allow, Priority: 20}
	r2 := Rule{Match: Match{VRF: 1}, Action: Allow, Priority: 10} // same key
	r3 := Rule{Match: Match{VRF: 2}, Action: Allow, Priority: 10}
	rules := []Rule{r1, r2, r3}
	Sort(rules)
	out := Dedupe(rules)
	if len(out) != 2 {
		t.Fatalf("Dedupe len = %d, want 2", len(out))
	}
	if out[0].Priority != 20 {
		t.Error("Dedupe must keep the higher-priority duplicate")
	}
}

func TestKeySet(t *testing.T) {
	rules := []Rule{
		{Match: Match{VRF: 1}, Action: Allow},
		{Match: Match{VRF: 1}, Action: Allow}, // dup
		{Match: Match{VRF: 2}, Action: Deny},
	}
	s := KeySet(rules)
	if len(s) != 2 {
		t.Errorf("KeySet len = %d, want 2", len(s))
	}
}

func TestRuleStringHumanReadable(t *testing.T) {
	r := Rule{Match: Match{VRF: 101, SrcEPG: 1, DstEPG: 2, Proto: ProtoTCP, PortLo: 80, PortHi: 80}, Action: Allow, Priority: 10}
	s := r.String()
	for _, want := range []string{"vrf=101", "src=1", "dst=2", "tcp", "80-80", "allow"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	dd := DefaultDeny().String()
	if !strings.Contains(dd, "vrf=*") || !strings.Contains(dd, "deny") {
		t.Errorf("default deny String() = %q", dd)
	}
}
