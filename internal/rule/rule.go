// Package rule defines the low-level access-control rule representation
// shared by the policy compiler (L-type logical rules) and the TCAM
// simulator (T-type deployed rules).
//
// A rule matches traffic on (VRF, source EPG, destination EPG, IP protocol,
// destination port range) — the same 5 fields the paper's Figure 2 shows for
// Nexus TCAM ACL entries — and carries an Allow/Deny action. Each rule also
// records its provenance: the set of policy objects whose (mis)deployment
// it depends on. Provenance drives the risk-model augmentation step.
package rule

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scout/internal/object"
)

// Action is the disposition a rule applies to matching traffic.
type Action int

// Rule actions. Values start at 1 so the zero Action is invalid.
const (
	Allow Action = iota + 1
	Deny
)

// String returns "allow" or "deny".
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	default:
		return "action(" + strconv.Itoa(int(a)) + ")"
	}
}

// Protocol is an IP protocol number. ProtoAny matches every protocol.
type Protocol uint8

// Common protocol numbers.
const (
	ProtoAny  Protocol = 0
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String returns a symbolic protocol name where one exists.
func (p Protocol) String() string {
	switch p {
	case ProtoAny:
		return "any"
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return strconv.Itoa(int(p))
	}
}

// PortMax is the maximum value of a transport port.
const PortMax = 65535

// Match is the matching half of a rule: the traffic slice it applies to.
// EPG and VRF identifiers of 0 combined with Wildcard* flags express the
// catch-all fields of a default-deny rule.
type Match struct {
	VRF         object.ID `json:"vrf"`
	SrcEPG      object.ID `json:"srcEPG"`
	DstEPG      object.ID `json:"dstEPG"`
	Proto       Protocol  `json:"proto"`
	PortLo      uint16    `json:"portLo"`
	PortHi      uint16    `json:"portHi"`
	WildcardVRF bool      `json:"wildcardVRF,omitempty"`
	WildcardSrc bool      `json:"wildcardSrc,omitempty"`
	WildcardDst bool      `json:"wildcardDst,omitempty"`
}

// AnyPort reports whether the match covers the full port range.
func (m Match) AnyPort() bool { return m.PortLo == 0 && m.PortHi == PortMax }

// Covers reports whether m matches the concrete packet 5-tuple
// (vrf, src, dst, proto, port).
func (m Match) Covers(vrf, src, dst object.ID, proto Protocol, port uint16) bool {
	if !m.WildcardVRF && m.VRF != vrf {
		return false
	}
	if !m.WildcardSrc && m.SrcEPG != src {
		return false
	}
	if !m.WildcardDst && m.DstEPG != dst {
		return false
	}
	if m.Proto != ProtoAny && m.Proto != proto {
		return false
	}
	return m.PortLo <= port && port <= m.PortHi
}

// String renders the match like "vrf=101 src=3 dst=4 tcp 80-80".
func (m Match) String() string {
	var b strings.Builder
	field := func(name string, wild bool, id object.ID) {
		b.WriteString(name)
		b.WriteByte('=')
		if wild {
			b.WriteByte('*')
		} else {
			b.WriteString(strconv.FormatUint(uint64(id), 10))
		}
		b.WriteByte(' ')
	}
	field("vrf", m.WildcardVRF, m.VRF)
	field("src", m.WildcardSrc, m.SrcEPG)
	field("dst", m.WildcardDst, m.DstEPG)
	b.WriteString(m.Proto.String())
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(int(m.PortLo)))
	b.WriteByte('-')
	b.WriteString(strconv.Itoa(int(m.PortHi)))
	return b.String()
}

// Rule is a single prioritized access-control entry.
type Rule struct {
	Match    Match  `json:"match"`
	Action   Action `json:"action"`
	Priority int    `json:"priority"`

	// Provenance lists the policy objects this rule was derived from:
	// the VRF, both EPGs, the contract, and the filter. A fault in any of
	// them can make this rule go missing, so they are this rule's shared
	// risks. Empty for rules collected from hardware (T-type).
	Provenance []object.Ref `json:"provenance,omitempty"`
}

// Key is a canonical, comparable identity for a rule's match+action,
// ignoring priority and provenance. Two rules with equal Keys enforce the
// same behaviour, which is what L-T equivalence compares.
type Key struct {
	Match  Match
	Action Action
}

// Key returns the rule's canonical identity.
func (r Rule) Key() Key { return Key{Match: r.Match, Action: r.Action} }

// String renders the rule for logs and test failures.
func (r Rule) String() string {
	return fmt.Sprintf("[p%d] %s -> %s", r.Priority, r.Match.String(), r.Action)
}

// HasProvenance reports whether ref appears in the rule's provenance.
func (r Rule) HasProvenance(ref object.Ref) bool {
	for _, p := range r.Provenance {
		if p == ref {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the rule (provenance slice copied).
func (r Rule) Clone() Rule {
	out := r
	if r.Provenance != nil {
		out.Provenance = make([]object.Ref, len(r.Provenance))
		copy(out.Provenance, r.Provenance)
	}
	return out
}

// Equal reports whether two rules are identical in every field that can
// influence an equivalence check or a report: match, action, priority, and
// provenance (elementwise, order-sensitive).
func (r Rule) Equal(o Rule) bool {
	if r.Match != o.Match || r.Action != o.Action || r.Priority != o.Priority {
		return false
	}
	if len(r.Provenance) != len(o.Provenance) {
		return false
	}
	for i, ref := range r.Provenance {
		if ref != o.Provenance[i] {
			return false
		}
	}
	return true
}

// SlicesEqual reports whether two rule lists are elementwise Equal in the
// same order. Rule lists are priority-ordered, so order sensitivity is the
// same sensitivity the equivalence checker has.
func SlicesEqual(a, b []Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// DefaultDeny returns the catch-all whitelist tail rule ("*,*,*,* -> deny")
// with the lowest priority.
func DefaultDeny() Rule {
	return Rule{
		Match: Match{
			WildcardVRF: true,
			WildcardSrc: true,
			WildcardDst: true,
			Proto:       ProtoAny,
			PortLo:      0,
			PortHi:      PortMax,
		},
		Action:   Deny,
		Priority: 0,
	}
}

// IsDefaultDeny reports whether r is a catch-all deny rule.
func (r Rule) IsDefaultDeny() bool {
	m := r.Match
	return r.Action == Deny && m.WildcardVRF && m.WildcardSrc && m.WildcardDst &&
		m.Proto == ProtoAny && m.PortLo == 0 && m.PortHi == PortMax
}

// Sort orders rules deterministically: descending priority first (match
// order), then by match fields. It sorts in place.
func Sort(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool { return Less(rules[i], rules[j]) })
}

// Less is a deterministic ordering on rules: descending priority, then
// every match field (including the wildcard flags), then action. It is
// total up to Key equality — two rules it cannot separate share a Key,
// which Dedupe collapses — so ties cannot occur within one switch's
// deduped rule list; callers needing a tiebreak for sorted outputs
// derived from such lists (e.g. probe violations) can rely on that.
func Less(a, b Rule) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	am, bm := a.Match, b.Match
	if am.VRF != bm.VRF {
		return am.VRF < bm.VRF
	}
	if am.SrcEPG != bm.SrcEPG {
		return am.SrcEPG < bm.SrcEPG
	}
	if am.DstEPG != bm.DstEPG {
		return am.DstEPG < bm.DstEPG
	}
	if am.Proto != bm.Proto {
		return am.Proto < bm.Proto
	}
	if am.PortLo != bm.PortLo {
		return am.PortLo < bm.PortLo
	}
	if am.PortHi != bm.PortHi {
		return am.PortHi < bm.PortHi
	}
	if am.WildcardVRF != bm.WildcardVRF {
		return bm.WildcardVRF
	}
	if am.WildcardSrc != bm.WildcardSrc {
		return bm.WildcardSrc
	}
	if am.WildcardDst != bm.WildcardDst {
		return bm.WildcardDst
	}
	return a.Action < b.Action
}

// Dedupe removes rules with duplicate Keys, keeping the first (highest
// priority after Sort). The input must already be sorted with Sort.
func Dedupe(rules []Rule) []Rule {
	if len(rules) == 0 {
		return rules
	}
	seen := make(map[Key]struct{}, len(rules))
	out := rules[:0]
	for _, r := range rules {
		k := r.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// KeySet builds a set of rule Keys from the given rules.
func KeySet(rules []Rule) map[Key]struct{} {
	s := make(map[Key]struct{}, len(rules))
	for _, r := range rules {
		s[r.Key()] = struct{}{}
	}
	return s
}
