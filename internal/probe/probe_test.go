package probe

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scout/internal/fabric"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/topo"
	"scout/internal/workload"
)

// threeTierFabric builds and deploys the Figure 1 example fabric.
func threeTierFabric(t testing.TB) *fabric.Fabric {
	t.Helper()
	p := policy.New("three-tier")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(policy.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddEndpoint(policy.Endpoint{ID: 13, EPG: 3, Switch: 3})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddFilter(policy.Filter{ID: 700, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 700)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.AddContract(policy.Contract{ID: 202, Filters: []object.ID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	f, err := fabric.New(p, topo.FromPolicy(p), fabric.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	return f
}

func dataplanes(t testing.TB, f *fabric.Fabric) map[object.ID]Classifier {
	t.Helper()
	out := make(map[object.ID]Classifier)
	for _, sw := range f.Topology().Switches() {
		s, err := f.Switch(sw)
		if err != nil {
			t.Fatal(err)
		}
		out[sw] = s.TCAM()
	}
	return out
}

// perPacketOnly strips the batch surface off a Classifier, forcing the
// prober down the per-packet fallback path.
type perPacketOnly struct{ c Classifier }

func (p perPacketOnly) Classify(vrf, src, dst object.ID, proto rule.Protocol, port uint16) (rule.Action, bool) {
	return p.c.Classify(vrf, src, dst, proto, port)
}

// TestBatchAndFallbackIdentical pins the BatchClassifier contract: a
// dataplane that only classifies per packet yields byte-for-byte the
// same violations as the batched pass over the same TCAM — only the
// counters differ (batch passes vs fallback probes).
func TestBatchAndFallbackIdentical(t *testing.T) {
	f := threeTierFabric(t)
	d := f.Deployment()
	// Break a switch so violations exist on both paths.
	s, err := f.Switch(2)
	if err != nil {
		t.Fatal(err)
	}
	rules := s.TCAM().Rules()
	if len(rules) == 0 || !s.TCAM().Remove(rules[0].Key()) {
		t.Fatal("failed to break switch 2")
	}

	batched := New(d)
	fallback := New(d)
	dps := dataplanes(t, f)
	wrapped := make(map[object.ID]Classifier, len(dps))
	for sw, c := range dps {
		wrapped[sw] = perPacketOnly{c: c}
	}

	a := batched.ProbeAll(dps)
	b := fallback.ProbeAll(wrapped)
	if len(a) != len(b) {
		t.Fatalf("batch found %d violations, fallback %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() || !a[i].Rule.Equal(b[i].Rule) {
			t.Errorf("violation %d differs: batch %v, fallback %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("expected violations after breaking switch 2")
	}

	bs := batched.Stats()
	if bs.BatchPasses == 0 || bs.BatchedPackets == 0 || bs.FallbackProbes != 0 {
		t.Errorf("batched prober counters = %+v, want batch passes only", bs)
	}
	fs := fallback.Stats()
	if fs.FallbackProbes == 0 || fs.BatchPasses != 0 || fs.BatchedPackets != 0 {
		t.Errorf("fallback prober counters = %+v, want fallback probes only", fs)
	}
	if bs.BatchedPackets != fs.FallbackProbes {
		t.Errorf("batch resolved %d packets, fallback %d — same probes must flow",
			bs.BatchedPackets, fs.FallbackProbes)
	}
	if bs.MemoHits != fs.MemoHits || bs.MemoMisses != fs.MemoMisses {
		t.Errorf("memo accounting differs: batch %+v, fallback %+v", bs, fs)
	}
}

func TestProbeCleanFabricNoViolations(t *testing.T) {
	f := threeTierFabric(t)
	p := New(f.Deployment())
	if v := p.ProbeAll(dataplanes(t, f)); len(v) != 0 {
		t.Fatalf("clean fabric must probe clean, got %v", v)
	}
}

func TestProbeDetectsMissingRules(t *testing.T) {
	f := threeTierFabric(t)
	if _, err := f.InjectObjectFault(object.Filter(700), 1.0); err != nil {
		t.Fatal(err)
	}
	p := New(f.Deployment())
	violations := p.ProbeAll(dataplanes(t, f))
	if len(violations) == 0 {
		t.Fatal("probes must detect the missing port-700 rules")
	}
	for _, v := range violations {
		if v.Packet.Port != 700 {
			t.Errorf("unexpected violation %v (only port 700 is broken)", v)
		}
		if v.Expected != rule.Allow || v.Got == rule.Allow {
			t.Errorf("violation %v: expected allow denied", v)
		}
		if !strings.Contains(v.String(), "700") {
			t.Errorf("String() = %q", v.String())
		}
	}
	// Port 700 is broken on S2 and S3, both directions: 4 probes fail.
	if len(violations) != 4 {
		t.Errorf("violations = %d, want 4", len(violations))
	}
}

func TestProbeDeterministicOrder(t *testing.T) {
	f := threeTierFabric(t)
	if _, err := f.InjectObjectFault(object.Filter(80), 1.0); err != nil {
		t.Fatal(err)
	}
	p := New(f.Deployment())
	a := p.ProbeAll(dataplanes(t, f))
	b := p.ProbeAll(dataplanes(t, f))
	if len(a) != len(b) {
		t.Fatal("probe runs differ in length")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("probe order nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Sorted by switch.
	for i := 1; i < len(a); i++ {
		if a[i].Switch < a[i-1].Switch {
			t.Fatal("violations not sorted by switch")
		}
	}
}

func TestMissingRulesDedupes(t *testing.T) {
	r := rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80},
		Action: rule.Allow,
	}
	vs := []Violation{
		{Switch: 1, Rule: r},
		{Switch: 2, Rule: r}, // same rule key on another switch
	}
	if got := MissingRules(vs); len(got) != 1 {
		t.Errorf("MissingRules = %d, want 1 after dedupe", len(got))
	}
}

func TestProbeLocalizationEndToEnd(t *testing.T) {
	// Probe violations must drive SCOUT to the same culprit the
	// equivalence checker would find.
	f := threeTierFabric(t)
	if _, err := f.InjectObjectFault(object.Filter(700), 1.0); err != nil {
		t.Fatal(err)
	}
	d := f.Deployment()
	p := New(d)
	violations := p.ProbeAll(dataplanes(t, f))

	m := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	if marked := AugmentControllerModel(m, violations, d.Provenance); marked == 0 {
		t.Fatal("augmentation marked nothing")
	}
	res := localize.Scout(m, localize.NoChanges{})
	found := false
	for _, ref := range res.Hypothesis {
		if ref == object.Filter(700) {
			found = true
		}
	}
	if !found {
		t.Errorf("hypothesis %v must contain filter:700", res.Hypothesis)
	}
}

func TestProbeSwitchModelAugmentation(t *testing.T) {
	f := threeTierFabric(t)
	if _, err := f.InjectObjectFault(object.Filter(700), 1.0); err != nil {
		t.Fatal(err)
	}
	d := f.Deployment()
	violations := New(d).ProbeSwitch(2, dataplanes(t, f)[2])
	m := risk.BuildSwitchModel(d, 2)
	if marked := AugmentSwitchModel(m, violations, d.Provenance); marked == 0 {
		t.Fatal("switch-model augmentation marked nothing")
	}
	appDB, _ := m.ElementByLabel("2-3")
	if !m.IsObservation(appDB) {
		t.Error("App-DB must be an observation on S2")
	}
}

// TestProbeAgreesWithCheckerOnGeneratedWorkloads: on the generated
// (overlap-free) workloads, the set of pairs the prober flags equals the
// set of pairs with missing rules.
func TestProbeAgreesWithCheckerOnGeneratedWorkloads(t *testing.T) {
	spec := workload.TestbedSpec()
	fn := func(seed int64) bool {
		pol, tp, err := workload.Generate(spec, seed)
		if err != nil {
			return false
		}
		f, err := fabric.New(pol, tp, fabric.Options{Seed: seed})
		if err != nil {
			return false
		}
		if err := f.Deploy(); err != nil {
			return false
		}
		d := f.Deployment()
		// Remove a random sample of rules.
		rng := rand.New(rand.NewSource(seed))
		removed := make(map[rule.Key]struct{})
		for _, sw := range tp.Switches() {
			s, err := f.Switch(sw)
			if err != nil {
				return false
			}
			for _, r := range s.TCAM().EvictRandom(3, rng) {
				removed[r.Key()] = struct{}{}
			}
		}
		dps := make(map[object.ID]Classifier)
		for _, sw := range tp.Switches() {
			s, _ := f.Switch(sw)
			dps[sw] = s.TCAM()
		}
		violations := New(d).ProbeAll(dps)
		// Every violation must correspond to a removed rule key.
		for _, v := range violations {
			if _, ok := removed[v.Rule.Key()]; !ok {
				return false
			}
		}
		// Every removed allow rule still deployed somewhere may or may not
		// violate per switch, but each (switch, removed key) present in the
		// deployment must be flagged.
		flagged := make(map[[2]interface{}]struct{})
		for _, v := range violations {
			flagged[[2]interface{}{v.Switch, v.Rule.Key()}] = struct{}{}
		}
		for _, sw := range tp.Switches() {
			s, _ := f.Switch(sw)
			keys := s.TCAM().Keys()
			for _, r := range d.RulesFor(sw) {
				if r.Action != rule.Allow {
					continue
				}
				if _, present := keys[r.Key()]; present {
					continue
				}
				if _, ok := flagged[[2]interface{}{sw, r.Key()}]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestProberPacketMemo covers the per-rule-key packet memo: switches
// sharing EPG pairs (here S2 shares both the Web-App and App-DB rules
// with S1 and S3) must reuse the packets the first switch synthesized,
// and the memoized prober must report exactly what a fresh one does.
func TestProberPacketMemo(t *testing.T) {
	f := threeTierFabric(t)
	d := f.Deployment()

	shared := New(d)
	var sharedViolations []Violation
	for _, sw := range []object.ID{1, 2, 3} {
		s, err := f.Switch(sw)
		if err != nil {
			t.Fatal(err)
		}
		sharedViolations = append(sharedViolations, shared.ProbeSwitch(sw, s.TCAM())...)
	}
	hits, misses := shared.MemoStats()
	if hits == 0 {
		t.Error("no memo hits across switches sharing EPG pairs")
	}
	if misses == 0 {
		t.Error("memo recorded no synthesis at all")
	}

	var freshViolations []Violation
	for _, sw := range []object.ID{1, 2, 3} {
		s, err := f.Switch(sw)
		if err != nil {
			t.Fatal(err)
		}
		freshViolations = append(freshViolations, New(d).ProbeSwitch(sw, s.TCAM())...)
	}
	if len(sharedViolations) != len(freshViolations) {
		t.Fatalf("shared prober found %d violations, fresh probers %d",
			len(sharedViolations), len(freshViolations))
	}
	for i := range sharedViolations {
		if sharedViolations[i].String() != freshViolations[i].String() {
			t.Errorf("violation %d differs: %s vs %s", i, sharedViolations[i], freshViolations[i])
		}
	}
}

// TestProbeAllMatchesPerSwitch pins the packet-outer batched ProbeAll
// against the per-switch form it replaced: on a faulty generated fabric,
// the batched pass must report exactly the concatenation of every
// switch's sorted ProbeSwitch output, while synthesizing each distinct
// packet once.
func TestProbeAllMatchesPerSwitch(t *testing.T) {
	pol, tp, err := workload.Generate(workload.TestbedSpec(), 23)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(pol, tp, fabric.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	// Knock out rules on two switches so violations span switches.
	for _, sw := range tp.Switches()[:2] {
		s, err := f.Switch(sw)
		if err != nil {
			t.Fatal(err)
		}
		rules := s.TCAM().Rules()
		for _, r := range rules {
			if r.Action == rule.Allow {
				s.TCAM().Remove(r.Key())
				break
			}
		}
	}
	dps := dataplanes(t, f)

	var want []Violation
	ref := New(f.Deployment())
	for _, sw := range f.Topology().Switches() {
		want = append(want, ref.ProbeSwitch(sw, dps[sw])...)
	}

	batched := New(f.Deployment())
	got := batched.ProbeAll(dps)
	if len(got) == 0 {
		t.Fatal("fault injection produced no violations; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("ProbeAll returned %d violations, per-switch form %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() || !got[i].Rule.Equal(want[i].Rule) {
			t.Errorf("violation %d differs:\nbatched:    %s\nper-switch: %s", i, got[i], want[i])
		}
	}

	// Batched synthesis: one miss per distinct packet, the rest hits.
	hits, misses := batched.MemoStats()
	refHits, refMisses := ref.MemoStats()
	if misses != refMisses {
		t.Errorf("batched pass synthesized %d packets, per-switch %d", misses, refMisses)
	}
	if hits != refHits {
		t.Errorf("batched pass recorded %d memo hits, per-switch %d", hits, refHits)
	}
}

// TestProbeAllSkipsMissingDataplanes: switches without a classification
// surface contribute no probes (matching the per-switch form, which was
// never invoked for them).
func TestProbeAllSkipsMissingDataplanes(t *testing.T) {
	f := threeTierFabric(t)
	dps := dataplanes(t, f)
	delete(dps, f.Topology().Switches()[0])
	for _, v := range New(f.Deployment()).ProbeAll(dps) {
		if _, ok := dps[v.Switch]; !ok {
			t.Errorf("violation reported for a switch without a dataplane: %s", v)
		}
	}
}
