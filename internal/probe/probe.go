// Package probe implements the paper's alternative observation source
// (§III-C): active connectivity probing. An EPG pair becomes an
// observation when its endpoints are *allowed to communicate by the
// policy but fail to do so* in the dataplane. The prober synthesizes one
// probe packet per (switch, EPG pair, filter entry) from the compiled
// deployment, classifies it against the switch's TCAM, and reports
// violations — policy-allowed probes that the hardware denies (missing
// rules) and policy-denied probes the hardware lets through (extra
// behaviour from corruption).
//
// Probing complements the ROBDD equivalence checker: it needs no access
// to the full TCAM dump (only forwarding behaviour), at the cost of
// sampling rather than exhaustively verifying the header space. Both
// sources feed the same risk-model augmentation.
package probe

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/tcam"
)

// Packet is one synthesized probe: the header tuple a pair's traffic
// would carry.
type Packet struct {
	VRF    object.ID
	SrcEPG object.ID
	DstEPG object.ID
	Proto  rule.Protocol
	Port   uint16
}

// String renders the probe header.
func (p Packet) String() string {
	return fmt.Sprintf("vrf=%d %d->%d %s:%d", p.VRF, p.SrcEPG, p.DstEPG, p.Proto, p.Port)
}

// Violation is one probe outcome that contradicts the policy.
type Violation struct {
	Switch object.ID
	Pair   policy.EPGPair
	Packet Packet
	// Expected is the action the policy prescribes; Got is what the TCAM
	// did (Got == 0 when no rule matched at all).
	Expected rule.Action
	Got      rule.Action
	// Rule is the logical rule the probe was derived from; its
	// provenance identifies the implicated policy objects.
	Rule rule.Rule
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("switch %d pair %s probe %s: want %v, got %v",
		v.Switch, v.Pair, v.Packet, v.Expected, v.Got)
}

// Classifier is the dataplane surface a probe needs: first-match
// classification. *tcam.TCAM implements it.
type Classifier interface {
	Classify(vrf, src, dst object.ID, proto rule.Protocol, port uint16) (rule.Action, bool)
}

var _ Classifier = (*tcam.TCAM)(nil)

// Prober synthesizes and evaluates probes for a compiled deployment.
// Probe packets are memoized per rule key — i.e. per (VRF, EPG pair,
// filter entry) — so switches sharing EPG pairs reuse each other's
// packets instead of re-synthesizing them; a long-lived Prober (the
// analyzer keeps one per deployment fingerprint) amortizes the memo
// across analysis runs, not just within one. The memo is guarded, so one
// Prober may serve concurrent ProbeSwitch calls from the analyzer's
// worker pool.
type Prober struct {
	// d is atomic so Rebind can swap deployments without racing probe
	// calls in flight (callers only rebind to fingerprint-equal
	// deployments, so either pointer yields the same rules).
	d atomic.Pointer[compile.Deployment]

	mu      sync.RWMutex
	packets map[rule.Key]Packet
	// hits/misses are atomic so the steady-state hit path stays on the
	// shared read lock instead of serializing the worker fan-out.
	hits   atomic.Int64
	misses atomic.Int64
}

// New creates a prober over the deployment.
func New(d *compile.Deployment) *Prober {
	p := &Prober{packets: make(map[rule.Key]Packet)}
	p.d.Store(d)
	return p
}

// Rebind points the prober at d, keeping the packet memo. For callers
// that verified d fingerprint-matches the prober's current deployment
// (the analyzer's per-deployment cache): packets are pure functions of
// rule keys, so the memo stays valid, and rebinding releases the
// superseded deployment instead of pinning it for the prober's life.
func (p *Prober) Rebind(d *compile.Deployment) { p.d.Store(d) }

// packetFor returns the memoized probe packet for an eligible rule,
// synthesizing and caching it on first sight of the rule's key.
func (p *Prober) packetFor(r rule.Rule) Packet {
	k := r.Key()
	p.mu.RLock()
	pkt, ok := p.packets[k]
	p.mu.RUnlock()
	if ok {
		p.hits.Add(1)
		return pkt
	}
	pkt = Packet{
		VRF:    r.Match.VRF,
		SrcEPG: r.Match.SrcEPG,
		DstEPG: r.Match.DstEPG,
		Proto:  r.Match.Proto,
		Port:   r.Match.PortLo,
	}
	p.mu.Lock()
	if _, raced := p.packets[k]; !raced {
		p.misses.Add(1)
		p.packets[k] = pkt
	} else {
		p.hits.Add(1)
	}
	p.mu.Unlock()
	return pkt
}

// MemoStats returns the packet memo's cumulative hit and miss counts —
// the observability hook for cross-switch probe-synthesis sharing.
func (p *Prober) MemoStats() (hits, misses int) {
	return int(p.hits.Load()), int(p.misses.Load())
}

// probeEligible reports whether r contributes a probe: concrete EPG
// pairs only, allow rules only (the paper's "allowed to communicate but
// fail to do so" observation).
func probeEligible(r rule.Rule) bool {
	return r.Action == rule.Allow && !r.Match.WildcardSrc && !r.Match.WildcardDst
}

// evalProbe classifies one probe packet against a switch's dataplane and
// reports whether the outcome contradicts the rule it was derived from
// (ok=true). An unmatched probe reports Got == 0.
func evalProbe(sw object.ID, r rule.Rule, pkt Packet, dataplane Classifier) (Violation, bool) {
	got, matched := dataplane.Classify(pkt.VRF, pkt.SrcEPG, pkt.DstEPG, pkt.Proto, pkt.Port)
	if matched && got == r.Action {
		return Violation{}, false
	}
	if !matched {
		got = 0
	}
	return Violation{
		Switch:   sw,
		Pair:     policy.MakeEPGPair(pkt.SrcEPG, pkt.DstEPG),
		Packet:   pkt,
		Expected: r.Action,
		Got:      got,
		Rule:     r.Clone(),
	}, true
}

// ProbeSwitch probes every (pair, rule) deployed on switch sw against
// the given classifier and returns the violations in deterministic
// order. Each allow rule contributes one probe at its low port (the
// paper's per-rule missing/present granularity).
func (p *Prober) ProbeSwitch(sw object.ID, dataplane Classifier) []Violation {
	var out []Violation
	for _, r := range p.d.Load().RulesFor(sw) {
		if !probeEligible(r) {
			continue
		}
		if v, ok := evalProbe(sw, r, p.packetFor(r), dataplane); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return violationLess(out[i], out[j]) })
	return out
}

// ProbeAll probes every switch in the deployment. dataplanes maps switch
// IDs to their classification surface (e.g. collected from
// fabric.Fabric via Switch(sw).TCAM()).
//
// The iteration is packet-outer, switch-inner: each distinct probe
// packet is synthesized once and then classified against every dataplane
// deploying a rule with its key in one batched pass, instead of looping
// switches and re-resolving the shared packets per switch. The violation
// order is identical to the per-switch form — violationLess leads with
// the switch ID, so one global sort reproduces the concatenation of
// per-switch sorted outputs.
//
// ProbeAll is the serial batch entry point (library users probing
// collected dataplanes in one call); the analyzer's probe pipeline
// instead fans ProbeSwitch out per switch over its worker pool, trading
// the batched pass for parallelism while sharing the same packet memo.
func (p *Prober) ProbeAll(dataplanes map[object.ID]Classifier) []Violation {
	d := p.d.Load()
	var switches []object.ID
	for sw := range d.BySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	// Gather the probe sites per rule key, keeping first-seen key order
	// (deterministic: switches ascending, rules in list order).
	type site struct {
		sw object.ID
		r  rule.Rule
	}
	var order []rule.Key
	sites := make(map[rule.Key][]site)
	for _, sw := range switches {
		if _, ok := dataplanes[sw]; !ok {
			continue
		}
		for _, r := range d.RulesFor(sw) {
			if !probeEligible(r) {
				continue
			}
			k := r.Key()
			if _, seen := sites[k]; !seen {
				order = append(order, k)
			}
			sites[k] = append(sites[k], site{sw: sw, r: r})
		}
	}

	var out []Violation
	for _, k := range order {
		ss := sites[k]
		pkt := p.packetFor(ss[0].r)
		// The remaining sites reuse the packet without re-consulting the
		// memo; account them as hits so MemoStats keeps measuring
		// cross-switch synthesis sharing.
		p.hits.Add(int64(len(ss) - 1))
		for _, s := range ss {
			if v, ok := evalProbe(s.sw, s.r, pkt, dataplanes[s.sw]); ok {
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return violationLess(out[i], out[j]) })
	return out
}

// violationLess orders violations by switch, then pair, then the source
// rule under rule.Less. The rule comparison makes the order total for
// any deduped rule list (the packet is a pure function of the rule), so
// the batched ProbeAll and the per-switch ProbeSwitch forms sort tied
// probes — same pair, proto, and port but e.g. opposite direction or
// different port ranges — identically regardless of insertion order.
func violationLess(a, b Violation) bool {
	if a.Switch != b.Switch {
		return a.Switch < b.Switch
	}
	if a.Pair != b.Pair {
		return a.Pair.Less(b.Pair)
	}
	return rule.Less(a.Rule, b.Rule)
}

// MissingRules converts violations into the missing-rule form the risk
// models consume (the same shape the equivalence checker outputs): the
// logical rules whose behaviour the probes showed to be absent.
func MissingRules(violations []Violation) []rule.Rule {
	seen := make(map[rule.Key]struct{}, len(violations))
	var out []rule.Rule
	for _, v := range violations {
		k := v.Rule.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v.Rule)
	}
	return out
}

// AugmentSwitchModel feeds probe violations for one switch into that
// switch's risk model, marking the violated pairs' edges to the
// implicated objects as failed. It returns the number of edges newly
// marked.
func AugmentSwitchModel(m risk.Marker, violations []Violation, prov map[rule.Key][]object.Ref) int {
	return risk.AugmentSwitchModel(m, MissingRules(violations), prov)
}

// AugmentControllerModel feeds per-switch probe violations into the
// controller risk model.
func AugmentControllerModel(m risk.Marker, violations []Violation, prov map[rule.Key][]object.Ref) int {
	bySwitch := make(map[object.ID][]rule.Rule)
	seen := make(map[object.ID]map[rule.Key]struct{})
	for _, v := range violations {
		ks, ok := seen[v.Switch]
		if !ok {
			ks = make(map[rule.Key]struct{})
			seen[v.Switch] = ks
		}
		k := v.Rule.Key()
		if _, dup := ks[k]; dup {
			continue
		}
		ks[k] = struct{}{}
		bySwitch[v.Switch] = append(bySwitch[v.Switch], v.Rule)
	}
	marked := 0
	var switches []object.ID
	for sw := range bySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, sw := range switches {
		marked += risk.AugmentControllerModel(m, sw, bySwitch[sw], prov)
	}
	return marked
}
