// Package probe implements the paper's alternative observation source
// (§III-C): active connectivity probing. An EPG pair becomes an
// observation when its endpoints are *allowed to communicate by the
// policy but fail to do so* in the dataplane. The prober synthesizes one
// probe packet per (switch, EPG pair, filter entry) from the compiled
// deployment, classifies it against the switch's TCAM, and reports
// violations — policy-allowed probes that the hardware denies (missing
// rules) and policy-denied probes the hardware lets through (extra
// behaviour from corruption).
//
// Probing complements the ROBDD equivalence checker: it needs no access
// to the full TCAM dump (only forwarding behaviour), at the cost of
// sampling rather than exhaustively verifying the header space. Both
// sources feed the same risk-model augmentation.
package probe

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/tcam"
)

// Packet is one synthesized probe: the header tuple a pair's traffic
// would carry.
type Packet struct {
	VRF    object.ID
	SrcEPG object.ID
	DstEPG object.ID
	Proto  rule.Protocol
	Port   uint16
}

// String renders the probe header.
func (p Packet) String() string {
	return fmt.Sprintf("vrf=%d %d->%d %s:%d", p.VRF, p.SrcEPG, p.DstEPG, p.Proto, p.Port)
}

// Violation is one probe outcome that contradicts the policy.
type Violation struct {
	Switch object.ID
	Pair   policy.EPGPair
	Packet Packet
	// Expected is the action the policy prescribes; Got is what the TCAM
	// did (Got == 0 when no rule matched at all).
	Expected rule.Action
	Got      rule.Action
	// Rule is the logical rule the probe was derived from; its
	// provenance identifies the implicated policy objects.
	Rule rule.Rule
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("switch %d pair %s probe %s: want %v, got %v",
		v.Switch, v.Pair, v.Packet, v.Expected, v.Got)
}

// Classifier is the dataplane surface a probe needs: first-match
// classification. *tcam.TCAM implements it.
type Classifier interface {
	Classify(vrf, src, dst object.ID, proto rule.Protocol, port uint16) (rule.Action, bool)
}

var _ Classifier = (*tcam.TCAM)(nil)

// BatchClassifier is a Classifier that can resolve a whole packet batch
// in one rule-major pass over its table. The prober feeds it per-switch
// batches so an n-entry TCAM is scanned once per probe round instead of
// once per probe; any plain Classifier still works via the per-packet
// fallback in classifyBatch. *tcam.TCAM implements it.
type BatchClassifier interface {
	Classifier
	ClassifyBatch(pkts []tcam.Packet) []tcam.Outcome
}

var _ BatchClassifier = (*tcam.TCAM)(nil)

// Prober synthesizes and evaluates probes for a compiled deployment.
// Probe packets are memoized per rule key — i.e. per (VRF, EPG pair,
// filter entry) — so switches sharing EPG pairs reuse each other's
// packets instead of re-synthesizing them; a long-lived Prober (the
// analyzer keeps one per deployment fingerprint) amortizes the memo
// across analysis runs, not just within one. The memo is guarded, so one
// Prober may serve concurrent ProbeSwitch calls from the analyzer's
// worker pool.
type Prober struct {
	// d is atomic so Rebind can swap deployments without racing probe
	// calls in flight (callers only rebind to fingerprint-equal
	// deployments, so either pointer yields the same rules).
	d atomic.Pointer[compile.Deployment]

	mu      sync.RWMutex
	packets map[rule.Key]Packet
	// hits/misses are atomic so the steady-state hit path stays on the
	// shared read lock instead of serializing the worker fan-out.
	hits   atomic.Int64
	misses atomic.Int64

	// Batch-path counters: passes counts rule-major batch
	// classifications issued, batched counts the packets those passes
	// resolved, and fallback counts packets classified one at a time
	// because the dataplane was not a BatchClassifier.
	batchPasses    atomic.Int64
	batchedPackets atomic.Int64
	fallbackProbes atomic.Int64
}

// Stats is a snapshot of a Prober's cumulative counters: the packet-memo
// hit/miss counts (cross-switch and cross-run synthesis sharing) and the
// batch-classification counters.
type Stats struct {
	MemoHits   int
	MemoMisses int
	// BatchPasses is the number of rule-major batch passes issued;
	// BatchedPackets the probes they resolved. FallbackProbes counts
	// probes classified per-packet against non-batching dataplanes.
	BatchPasses    int
	BatchedPackets int
	FallbackProbes int
}

// New creates a prober over the deployment.
func New(d *compile.Deployment) *Prober {
	p := &Prober{packets: make(map[rule.Key]Packet)}
	p.d.Store(d)
	return p
}

// Rebind points the prober at d, keeping the packet memo. For callers
// that verified d fingerprint-matches the prober's current deployment
// (the analyzer's per-deployment cache): packets are pure functions of
// rule keys, so the memo stays valid, and rebinding releases the
// superseded deployment instead of pinning it for the prober's life.
func (p *Prober) Rebind(d *compile.Deployment) { p.d.Store(d) }

// packetFor returns the memoized probe packet for an eligible rule,
// synthesizing and caching it on first sight of the rule's key.
func (p *Prober) packetFor(r rule.Rule) Packet {
	k := r.Key()
	p.mu.RLock()
	pkt, ok := p.packets[k]
	p.mu.RUnlock()
	if ok {
		p.hits.Add(1)
		return pkt
	}
	pkt = Packet{
		VRF:    r.Match.VRF,
		SrcEPG: r.Match.SrcEPG,
		DstEPG: r.Match.DstEPG,
		Proto:  r.Match.Proto,
		Port:   r.Match.PortLo,
	}
	p.mu.Lock()
	if _, raced := p.packets[k]; !raced {
		p.misses.Add(1)
		p.packets[k] = pkt
	} else {
		p.hits.Add(1)
	}
	p.mu.Unlock()
	return pkt
}

// MemoStats returns the packet memo's cumulative hit and miss counts —
// the observability hook for cross-switch probe-synthesis sharing.
func (p *Prober) MemoStats() (hits, misses int) {
	return int(p.hits.Load()), int(p.misses.Load())
}

// Stats returns a snapshot of every prober counter.
func (p *Prober) Stats() Stats {
	return Stats{
		MemoHits:       int(p.hits.Load()),
		MemoMisses:     int(p.misses.Load()),
		BatchPasses:    int(p.batchPasses.Load()),
		BatchedPackets: int(p.batchedPackets.Load()),
		FallbackProbes: int(p.fallbackProbes.Load()),
	}
}

// probeEligible reports whether r contributes a probe: concrete EPG
// pairs only, allow rules only (the paper's "allowed to communicate but
// fail to do so" observation).
func probeEligible(r rule.Rule) bool {
	return r.Action == rule.Allow && !r.Match.WildcardSrc && !r.Match.WildcardDst
}

// violationFrom converts one classification outcome into a Violation,
// reporting ok=true when the outcome contradicts the rule the probe was
// derived from. An unmatched probe reports Got == 0.
func violationFrom(sw object.ID, r rule.Rule, pkt Packet, o tcam.Outcome) (Violation, bool) {
	if o.Matched && o.Action == r.Action {
		return Violation{}, false
	}
	got := o.Action
	if !o.Matched {
		got = 0
	}
	return Violation{
		Switch:   sw,
		Pair:     policy.MakeEPGPair(pkt.SrcEPG, pkt.DstEPG),
		Packet:   pkt,
		Expected: r.Action,
		Got:      got,
		Rule:     r.Clone(),
	}, true
}

// classifyBatch resolves the probe packets against a dataplane: one
// rule-major pass when the dataplane batches, per-packet Classify calls
// otherwise. Outcomes are positional, and identical between the two
// paths. The second return reports whether the batch path was taken.
func classifyBatch(dataplane Classifier, pkts []Packet) ([]tcam.Outcome, bool) {
	if bc, ok := dataplane.(BatchClassifier); ok {
		batch := make([]tcam.Packet, len(pkts))
		for i, p := range pkts {
			batch[i] = tcam.Packet{VRF: p.VRF, Src: p.SrcEPG, Dst: p.DstEPG, Proto: p.Proto, Port: p.Port}
		}
		return bc.ClassifyBatch(batch), true
	}
	out := make([]tcam.Outcome, len(pkts))
	for i, p := range pkts {
		action, matched := dataplane.Classify(p.VRF, p.SrcEPG, p.DstEPG, p.Proto, p.Port)
		out[i] = tcam.Outcome{Action: action, Matched: matched}
	}
	return out, false
}

// probeSwitch synthesizes switch sw's probe batch, classifies it, and
// appends the violations to out (unsorted) — the shared body of
// ProbeSwitch and ProbeAll.
func (p *Prober) probeSwitch(sw object.ID, dataplane Classifier, out []Violation) []Violation {
	var eligible []rule.Rule
	for _, r := range p.d.Load().RulesFor(sw) {
		if probeEligible(r) {
			eligible = append(eligible, r)
		}
	}
	if len(eligible) == 0 {
		return out
	}
	pkts := make([]Packet, len(eligible))
	for i, r := range eligible {
		pkts[i] = p.packetFor(r)
	}
	outcomes, batched := classifyBatch(dataplane, pkts)
	if batched {
		p.batchPasses.Add(1)
		p.batchedPackets.Add(int64(len(pkts)))
	} else {
		p.fallbackProbes.Add(int64(len(pkts)))
	}
	for i, r := range eligible {
		if v, ok := violationFrom(sw, r, pkts[i], outcomes[i]); ok {
			out = append(out, v)
		}
	}
	return out
}

// ProbeSwitch probes every (pair, rule) deployed on switch sw against
// the given classifier and returns the violations in deterministic
// order. Each allow rule contributes one probe at its low port (the
// paper's per-rule missing/present granularity). The switch's probes go
// to the dataplane as one batch, so a batching dataplane (a TCAM) is
// scanned once rather than once per probe.
func (p *Prober) ProbeSwitch(sw object.ID, dataplane Classifier) []Violation {
	out := p.probeSwitch(sw, dataplane, nil)
	sort.Slice(out, func(i, j int) bool { return violationLess(out[i], out[j]) })
	return out
}

// ProbeAll probes every switch in the deployment. dataplanes maps switch
// IDs to their classification surface (e.g. collected from
// fabric.Fabric via Switch(sw).TCAM()).
//
// Switches are visited in ascending ID order and each switch's probes
// are classified as one batch. Packet synthesis still shares across
// switches through the memo — repeated keys hit instead of
// re-synthesizing, so MemoStats keeps measuring cross-switch sharing.
// The violation order is identical to the per-switch form: violationLess
// leads with the switch ID, so one global sort reproduces the
// concatenation of per-switch sorted outputs.
//
// ProbeAll is the serial batch entry point (library users probing
// collected dataplanes in one call); the analyzer's probe pipeline
// instead fans ProbeSwitch out per switch over its worker pool, sharing
// the same packet memo and per-switch batch passes.
func (p *Prober) ProbeAll(dataplanes map[object.ID]Classifier) []Violation {
	d := p.d.Load()
	var switches []object.ID
	for sw := range d.BySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	var out []Violation
	for _, sw := range switches {
		dataplane, ok := dataplanes[sw]
		if !ok {
			continue
		}
		out = p.probeSwitch(sw, dataplane, out)
	}
	sort.Slice(out, func(i, j int) bool { return violationLess(out[i], out[j]) })
	return out
}

// violationLess orders violations by switch, then pair, then the source
// rule under rule.Less. The rule comparison makes the order total for
// any deduped rule list (the packet is a pure function of the rule), so
// the batched ProbeAll and the per-switch ProbeSwitch forms sort tied
// probes — same pair, proto, and port but e.g. opposite direction or
// different port ranges — identically regardless of insertion order.
func violationLess(a, b Violation) bool {
	if a.Switch != b.Switch {
		return a.Switch < b.Switch
	}
	if a.Pair != b.Pair {
		return a.Pair.Less(b.Pair)
	}
	return rule.Less(a.Rule, b.Rule)
}

// MissingRules converts violations into the missing-rule form the risk
// models consume (the same shape the equivalence checker outputs): the
// logical rules whose behaviour the probes showed to be absent.
func MissingRules(violations []Violation) []rule.Rule {
	seen := make(map[rule.Key]struct{}, len(violations))
	var out []rule.Rule
	for _, v := range violations {
		k := v.Rule.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v.Rule)
	}
	return out
}

// AugmentSwitchModel feeds probe violations for one switch into that
// switch's risk model, marking the violated pairs' edges to the
// implicated objects as failed. It returns the number of edges newly
// marked.
func AugmentSwitchModel(m risk.Marker, violations []Violation, prov map[rule.Key][]object.Ref) int {
	return risk.AugmentSwitchModel(m, MissingRules(violations), prov)
}

// AugmentControllerModel feeds per-switch probe violations into the
// controller risk model.
func AugmentControllerModel(m risk.Marker, violations []Violation, prov map[rule.Key][]object.Ref) int {
	bySwitch := make(map[object.ID][]rule.Rule)
	seen := make(map[object.ID]map[rule.Key]struct{})
	for _, v := range violations {
		ks, ok := seen[v.Switch]
		if !ok {
			ks = make(map[rule.Key]struct{})
			seen[v.Switch] = ks
		}
		k := v.Rule.Key()
		if _, dup := ks[k]; dup {
			continue
		}
		ks[k] = struct{}{}
		bySwitch[v.Switch] = append(bySwitch[v.Switch], v.Rule)
	}
	marked := 0
	var switches []object.ID
	for sw := range bySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, sw := range switches {
		marked += risk.AugmentControllerModel(m, sw, bySwitch[sw], prov)
	}
	return marked
}
