package collect

import (
	"testing"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

func deployedFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	p := policy.New("t")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.Bind(1, 2, 201)
	f, err := fabric.New(p, topo.FromPolicy(p), fabric.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSnapshotAndHistory(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e1 := c.Snapshot()
	if e1.Seq != 1 || e1.RuleCount() == 0 {
		t.Fatalf("epoch 1 = %+v", e1)
	}
	e2 := c.Snapshot()
	if e2.Seq != 2 {
		t.Errorf("seq = %d", e2.Seq)
	}
	if len(c.History()) != 2 {
		t.Errorf("history = %d", len(c.History()))
	}
	latest, ok := c.Latest()
	if !ok || latest.Seq != 2 {
		t.Errorf("latest = %+v, %v", latest, ok)
	}
	got, err := c.Epoch(1)
	if err != nil || got.Seq != 1 {
		t.Errorf("Epoch(1) = %+v, %v", got, err)
	}
	if _, err := c.Epoch(99); err == nil {
		t.Error("unknown epoch must error")
	}
}

func TestHistoryBounded(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 3)
	for i := 0; i < 5; i++ {
		c.Snapshot()
	}
	h := c.History()
	if len(h) != 3 {
		t.Fatalf("history = %d, want 3", len(h))
	}
	if h[0].Seq != 3 || h[2].Seq != 5 {
		t.Errorf("retained epochs %d..%d, want 3..5", h[0].Seq, h[2].Seq)
	}
	// Evicted epoch no longer reachable.
	if _, err := c.Epoch(1); err == nil {
		t.Error("evicted epoch must be gone")
	}
}

func TestDiffDetectsEviction(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()

	evicted, err := f.EvictTCAM(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatal("nothing evicted")
	}
	after := c.Snapshot()

	deltas := Diff(before, after)
	if len(deltas) != 1 || deltas[0].Switch != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if len(deltas[0].Removed) != 1 || len(deltas[0].Added) != 0 {
		t.Errorf("delta = +%d -%d, want +0 -1", len(deltas[0].Added), len(deltas[0].Removed))
	}
	if deltas[0].Removed[0].Key() != evicted[0].Key() {
		t.Error("removed rule mismatch")
	}
}

func TestDiffDetectsAddition(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(201, 443); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	deltas := Diff(before, after)
	if len(deltas) != 2 { // both switches gained rules
		t.Fatalf("deltas = %+v", deltas)
	}
	for _, d := range deltas {
		if len(d.Added) == 0 || len(d.Removed) != 0 {
			t.Errorf("switch %d delta = +%d -%d", d.Switch, len(d.Added), len(d.Removed))
		}
	}
}

// TestDirtySwitchesNoChange covers the steady-state edge case of the
// incremental dirty-set path: identical epochs dirty nothing.
func TestDirtySwitchesNoChange(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	a := c.Snapshot()
	b := c.Snapshot()
	if dirty := DirtySwitches(a, b); len(dirty) != 0 {
		t.Errorf("identical epochs dirty = %v, want none", dirty)
	}
}

// TestDirtySwitchesAllChange covers the opposite edge: a policy rollout
// touching every switch dirties the whole fabric, sorted ascending.
func TestDirtySwitchesAllChange(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(201, 443); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	dirty := DirtySwitches(before, after)
	if len(dirty) != 2 || dirty[0] != 1 || dirty[1] != 2 {
		t.Fatalf("dirty = %v, want [1 2]", dirty)
	}
}

func TestDirtySwitchesSingleEviction(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if _, err := f.EvictTCAM(2, 1); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if dirty := DirtySwitches(before, after); len(dirty) != 1 || dirty[0] != 2 {
		t.Fatalf("dirty = %v, want [2]", dirty)
	}
}

// TestDirtySwitchesMembershipAndOrder pins the contract details on
// synthetic epochs: switches present in only one epoch are dirty, and
// the comparison is order-sensitive (the same sensitivity the
// equivalence checker has), so a reordered rule list counts as dirty.
func TestDirtySwitchesMembershipAndOrder(t *testing.T) {
	r1 := rule.Rule{Match: rule.Match{VRF: 101, SrcEPG: 1, DstEPG: 2, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80}, Action: rule.Allow, Priority: 10}
	r2 := rule.Rule{Match: rule.Match{VRF: 101, SrcEPG: 2, DstEPG: 1, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80}, Action: rule.Allow, Priority: 10}
	older := &Epoch{TCAM: map[object.ID][]rule.Rule{
		1: {r1, r2},
		2: {r1},
	}}
	newer := &Epoch{TCAM: map[object.ID][]rule.Rule{
		1: {r2, r1}, // same set, different order
		3: {r2},     // switch 2 vanished, switch 3 appeared
	}}
	dirty := DirtySwitches(older, newer)
	want := []object.ID{1, 2, 3}
	// Membership is checked before rule content: a switch present in only
	// one epoch is dirty even when its rule list is empty.
	if got := DirtySwitches(&Epoch{TCAM: map[object.ID][]rule.Rule{5: {}}}, &Epoch{TCAM: map[object.ID][]rule.Rule{}}); len(got) != 1 || got[0] != 5 {
		t.Errorf("empty-TCAM switch present only in older: dirty = %v, want [5]", got)
	}
	if len(dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}
}

func TestDiffIdenticalEpochsEmpty(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	a := c.Snapshot()
	b := c.Snapshot()
	if deltas := Diff(a, b); len(deltas) != 0 {
		t.Errorf("identical epochs must diff empty: %+v", deltas)
	}
}

func TestEpochImmutableAgainstFabricChanges(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e := c.Snapshot()
	countBefore := e.RuleCount()
	if _, err := f.EvictTCAM(1, 1); err != nil {
		t.Fatal(err)
	}
	if e.RuleCount() != countBefore {
		t.Error("epoch must be an immutable snapshot")
	}
}
