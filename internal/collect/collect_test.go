package collect

import (
	"testing"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

func deployedFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	p := policy.New("t")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.Bind(1, 2, 201)
	f, err := fabric.New(p, topo.FromPolicy(p), fabric.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSnapshotAndHistory(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e1 := c.Snapshot()
	if e1.Seq != 1 || e1.RuleCount() == 0 {
		t.Fatalf("epoch 1 = %+v", e1)
	}
	e2 := c.Snapshot()
	if e2.Seq != 2 {
		t.Errorf("seq = %d", e2.Seq)
	}
	if len(c.History()) != 2 {
		t.Errorf("history = %d", len(c.History()))
	}
	latest, ok := c.Latest()
	if !ok || latest.Seq != 2 {
		t.Errorf("latest = %+v, %v", latest, ok)
	}
	got, err := c.Epoch(1)
	if err != nil || got.Seq != 1 {
		t.Errorf("Epoch(1) = %+v, %v", got, err)
	}
	if _, err := c.Epoch(99); err == nil {
		t.Error("unknown epoch must error")
	}
}

func TestHistoryBounded(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 3)
	for i := 0; i < 5; i++ {
		c.Snapshot()
	}
	h := c.History()
	if len(h) != 3 {
		t.Fatalf("history = %d, want 3", len(h))
	}
	if h[0].Seq != 3 || h[2].Seq != 5 {
		t.Errorf("retained epochs %d..%d, want 3..5", h[0].Seq, h[2].Seq)
	}
	// Evicted epoch no longer reachable.
	if _, err := c.Epoch(1); err == nil {
		t.Error("evicted epoch must be gone")
	}
}

func TestDiffDetectsEviction(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()

	evicted, err := f.EvictTCAM(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatal("nothing evicted")
	}
	after := c.Snapshot()

	deltas := Diff(before, after)
	if len(deltas) != 1 || deltas[0].Switch != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if len(deltas[0].Removed) != 1 || len(deltas[0].Added) != 0 {
		t.Errorf("delta = +%d -%d, want +0 -1", len(deltas[0].Added), len(deltas[0].Removed))
	}
	if deltas[0].Removed[0].Key() != evicted[0].Key() {
		t.Error("removed rule mismatch")
	}
}

func TestDiffDetectsAddition(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(201, 443); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	deltas := Diff(before, after)
	if len(deltas) != 2 { // both switches gained rules
		t.Fatalf("deltas = %+v", deltas)
	}
	for _, d := range deltas {
		if len(d.Added) == 0 || len(d.Removed) != 0 {
			t.Errorf("switch %d delta = +%d -%d", d.Switch, len(d.Added), len(d.Removed))
		}
	}
}

func TestDiffIdenticalEpochsEmpty(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	a := c.Snapshot()
	b := c.Snapshot()
	if deltas := Diff(a, b); len(deltas) != 0 {
		t.Errorf("identical epochs must diff empty: %+v", deltas)
	}
}

func TestEpochImmutableAgainstFabricChanges(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e := c.Snapshot()
	countBefore := e.RuleCount()
	if _, err := f.EvictTCAM(1, 1); err != nil {
		t.Fatal(err)
	}
	if e.RuleCount() != countBefore {
		t.Error("epoch must be an immutable snapshot")
	}
}
