package collect

import (
	"testing"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

func deployedFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	p := policy.New("t")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.Bind(1, 2, 201)
	f, err := fabric.New(p, topo.FromPolicy(p), fabric.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSnapshotAndHistory(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e1 := c.Snapshot()
	if e1.Seq != 1 || e1.RuleCount() == 0 {
		t.Fatalf("epoch 1 = %+v", e1)
	}
	e2 := c.Snapshot()
	if e2.Seq != 2 {
		t.Errorf("seq = %d", e2.Seq)
	}
	if len(c.History()) != 2 {
		t.Errorf("history = %d", len(c.History()))
	}
	latest, ok := c.Latest()
	if !ok || latest.Seq != 2 {
		t.Errorf("latest = %+v, %v", latest, ok)
	}
	got, err := c.Epoch(1)
	if err != nil || got.Seq != 1 {
		t.Errorf("Epoch(1) = %+v, %v", got, err)
	}
	if _, err := c.Epoch(99); err == nil {
		t.Error("unknown epoch must error")
	}
}

func TestHistoryBounded(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 3)
	for i := 0; i < 5; i++ {
		c.Snapshot()
	}
	h := c.History()
	if len(h) != 3 {
		t.Fatalf("history = %d, want 3", len(h))
	}
	if h[0].Seq != 3 || h[2].Seq != 5 {
		t.Errorf("retained epochs %d..%d, want 3..5", h[0].Seq, h[2].Seq)
	}
	// Evicted epoch no longer reachable.
	if _, err := c.Epoch(1); err == nil {
		t.Error("evicted epoch must be gone")
	}
}

func TestDiffDetectsEviction(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()

	evicted, err := f.EvictTCAM(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatal("nothing evicted")
	}
	after := c.Snapshot()

	deltas := Diff(before, after)
	if len(deltas) != 1 || deltas[0].Switch != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if len(deltas[0].Removed) != 1 || len(deltas[0].Added) != 0 {
		t.Errorf("delta = +%d -%d, want +0 -1", len(deltas[0].Added), len(deltas[0].Removed))
	}
	if deltas[0].Removed[0].Key() != evicted[0].Key() {
		t.Error("removed rule mismatch")
	}
}

func TestDiffDetectsAddition(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(201, 443); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	deltas := Diff(before, after)
	if len(deltas) != 2 { // both switches gained rules
		t.Fatalf("deltas = %+v", deltas)
	}
	for _, d := range deltas {
		if len(d.Added) == 0 || len(d.Removed) != 0 {
			t.Errorf("switch %d delta = +%d -%d", d.Switch, len(d.Added), len(d.Removed))
		}
	}
}

// TestDirtySwitchesNoChange covers the steady-state edge case of the
// incremental dirty-set path: identical epochs dirty nothing.
func TestDirtySwitchesNoChange(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	a := c.Snapshot()
	b := c.Snapshot()
	if dirty := DirtySwitches(a, b); len(dirty) != 0 {
		t.Errorf("identical epochs dirty = %v, want none", dirty)
	}
}

// TestDirtySwitchesAllChange covers the opposite edge: a policy rollout
// touching every switch dirties the whole fabric, sorted ascending.
func TestDirtySwitchesAllChange(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(201, 443); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	dirty := DirtySwitches(before, after)
	if len(dirty) != 2 || dirty[0] != 1 || dirty[1] != 2 {
		t.Fatalf("dirty = %v, want [1 2]", dirty)
	}
}

func TestDirtySwitchesSingleEviction(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	before := c.Snapshot()
	if _, err := f.EvictTCAM(2, 1); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if dirty := DirtySwitches(before, after); len(dirty) != 1 || dirty[0] != 2 {
		t.Fatalf("dirty = %v, want [2]", dirty)
	}
}

// TestDirtySwitchesMembershipAndOrder pins the contract details on
// synthetic epochs: switches present in only one epoch are dirty, and
// the comparison is order-sensitive (the same sensitivity the
// equivalence checker has), so a reordered rule list counts as dirty.
func TestDirtySwitchesMembershipAndOrder(t *testing.T) {
	r1 := rule.Rule{Match: rule.Match{VRF: 101, SrcEPG: 1, DstEPG: 2, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80}, Action: rule.Allow, Priority: 10}
	r2 := rule.Rule{Match: rule.Match{VRF: 101, SrcEPG: 2, DstEPG: 1, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80}, Action: rule.Allow, Priority: 10}
	older := &Epoch{TCAM: map[object.ID][]rule.Rule{
		1: {r1, r2},
		2: {r1},
	}}
	newer := &Epoch{TCAM: map[object.ID][]rule.Rule{
		1: {r2, r1}, // same set, different order
		3: {r2},     // switch 2 vanished, switch 3 appeared
	}}
	dirty := DirtySwitches(older, newer)
	want := []object.ID{1, 2, 3}
	// Membership is checked before rule content: a switch present in only
	// one epoch is dirty even when its rule list is empty.
	if got := DirtySwitches(&Epoch{TCAM: map[object.ID][]rule.Rule{5: {}}}, &Epoch{TCAM: map[object.ID][]rule.Rule{}}); len(got) != 1 || got[0] != 5 {
		t.Errorf("empty-TCAM switch present only in older: dirty = %v, want [5]", got)
	}
	if len(dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}
}

func TestDiffIdenticalEpochsEmpty(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	a := c.Snapshot()
	b := c.Snapshot()
	if deltas := Diff(a, b); len(deltas) != 0 {
		t.Errorf("identical epochs must diff empty: %+v", deltas)
	}
}

func TestEpochImmutableAgainstFabricChanges(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e := c.Snapshot()
	countBefore := e.RuleCount()
	if _, err := f.EvictTCAM(1, 1); err != nil {
		t.Fatal(err)
	}
	if e.RuleCount() != countBefore {
		t.Error("epoch must be an immutable snapshot")
	}
}

// TestSnapshotSwitchesAliases pins the partial-epoch contract: only the
// named switches are re-read, every other switch's slice aliases the
// previous epoch's backing array (zero copy), and diff semantics over
// the mixed epoch are intact.
func TestSnapshotSwitchesAliases(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e1 := c.Snapshot()

	if _, err := f.EvictTCAM(1, 1); err != nil {
		t.Fatal(err)
	}
	e2, err := c.SnapshotSwitches([]object.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("partial epoch Seq = %d, want %d", e2.Seq, e1.Seq+1)
	}
	// Clean switch 2 aliases the previous epoch's storage.
	if len(e2.TCAM[2]) == 0 || &e2.TCAM[2][0] != &e1.TCAM[2][0] {
		t.Error("clean switch must alias the previous epoch's rule slice")
	}
	// Dirty switch 1 was re-read and reflects the eviction.
	if len(e2.TCAM[1]) != len(e1.TCAM[1])-1 {
		t.Errorf("dirty switch rules = %d, want %d", len(e2.TCAM[1]), len(e1.TCAM[1])-1)
	}
	if dirty := DirtySwitches(e1, e2); len(dirty) != 1 || dirty[0] != 1 {
		t.Errorf("dirty = %v, want [1]", dirty)
	}
	st := c.Stats()
	if st.FullSnapshots != 1 || st.PartialSnapshots != 1 {
		t.Errorf("snapshot counts = %+v, want 1 full + 1 partial", st)
	}
	if st.SwitchesRead != 3 || st.SwitchesAliased != 1 {
		t.Errorf("read/aliased = %d/%d, want 3/1", st.SwitchesRead, st.SwitchesAliased)
	}
}

// TestSnapshotSwitchesNoHistory pins the degradation rule: with nothing
// to alias, a partial snapshot is a full one.
func TestSnapshotSwitchesNoHistory(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	e, err := c.SnapshotSwitches([]object.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.TCAM) != 2 || e.RuleCount() == 0 {
		t.Fatalf("fallback epoch = %+v, want a full collection", e)
	}
	st := c.Stats()
	if st.FullSnapshots != 1 || st.PartialSnapshots != 0 {
		t.Errorf("no-history partial must count as full: %+v", st)
	}
}

// TestSnapshotEvents pins the event-driven collection round: pending
// events name the dirty switches (duplicates collapse to one read), and
// a round with no pending events aliases everything.
func TestSnapshotEvents(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	c.Subscribe(f.EventLog())
	c.Snapshot()

	// Two mutations on the same switch coalesce to one re-read.
	if _, err := f.EvictTCAM(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EvictTCAM(2, 1); err != nil {
		t.Fatal(err)
	}
	e, evs, err := c.SnapshotEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("consumed %d events, want 2", len(evs))
	}
	st := c.Stats()
	if st.EventsConsumed != 2 || st.PartialSnapshots != 1 {
		t.Errorf("stats = %+v, want 2 events consumed in 1 partial", st)
	}
	if st.SwitchesRead != 3 || st.SwitchesAliased != 1 {
		t.Errorf("read/aliased = %d/%d, want 3/1 (duplicates collapse)", st.SwitchesRead, st.SwitchesAliased)
	}
	if dirty := DirtySwitches(c.History()[0], e); len(dirty) != 1 || dirty[0] != 2 {
		t.Errorf("dirty = %v, want [2]", dirty)
	}

	// Quiet round: pure alias, zero reads.
	e2, evs, err := c.SnapshotEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("quiet round consumed %v", evs)
	}
	if st := c.Stats(); st.SwitchesRead != 3 || st.SwitchesAliased != 3 {
		t.Errorf("quiet round stats = %+v, want 0 extra reads, 2 extra aliases", st)
	}
	if dirty := DirtySwitches(e, e2); len(dirty) != 0 {
		t.Errorf("quiet round dirty = %v, want none", dirty)
	}
}

func TestSnapshotEventsWithoutSubscribePanics(t *testing.T) {
	f := deployedFabric(t)
	c := New(f, 0)
	defer func() {
		if recover() == nil {
			t.Error("SnapshotEvents without Subscribe must panic")
		}
	}()
	c.SnapshotEvents()
}
