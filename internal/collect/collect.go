// Package collect implements periodic network-state collection (§III-C:
// "collecting the TCAM rules deployed across all switches periodically
// and/or in an event-driven fashion"). A Collector snapshots the fabric's
// TCAMs into immutable epochs, keeps a bounded history, and can diff
// epochs to show which rules appeared or vanished between collections —
// the raw material for trend analysis and post-incident forensics.
package collect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/rule"
)

// Epoch is one immutable collection of every switch's TCAM contents.
type Epoch struct {
	Seq  int                       `json:"seq"`
	Time time.Time                 `json:"time"`
	TCAM map[object.ID][]rule.Rule `json:"tcam"`
}

// RuleCount returns the total rules across switches in the epoch.
func (e *Epoch) RuleCount() int {
	n := 0
	for _, rules := range e.TCAM {
		n += len(rules)
	}
	return n
}

// Collector snapshots a fabric and retains a bounded epoch history. It is
// safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	f       *fabric.Fabric
	history []*Epoch
	limit   int
	nextSeq int
}

// New creates a collector keeping at most limit epochs (<= 0 keeps 16).
func New(f *fabric.Fabric, limit int) *Collector {
	if limit <= 0 {
		limit = 16
	}
	return &Collector{f: f, limit: limit}
}

// Snapshot collects every switch's TCAM into a new epoch.
func (c *Collector) Snapshot() *Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSeq++
	e := &Epoch{
		Seq:  c.nextSeq,
		Time: c.f.Now(),
		TCAM: c.f.CollectAll(),
	}
	c.history = append(c.history, e)
	if len(c.history) > c.limit {
		c.history = c.history[len(c.history)-c.limit:]
	}
	return e
}

// History returns the retained epochs, oldest first.
func (c *Collector) History() []*Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Epoch(nil), c.history...)
}

// Latest returns the most recent epoch, if any.
func (c *Collector) Latest() (*Epoch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) == 0 {
		return nil, false
	}
	return c.history[len(c.history)-1], true
}

// Epoch returns the retained epoch with the given sequence number.
func (c *Collector) Epoch(seq int) (*Epoch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.history {
		if e.Seq == seq {
			return e, nil
		}
	}
	return nil, fmt.Errorf("collect: epoch %d not retained", seq)
}

// SwitchDelta is the per-switch difference between two epochs.
type SwitchDelta struct {
	Switch  object.ID
	Added   []rule.Rule // present in the newer epoch only
	Removed []rule.Rule // present in the older epoch only
}

// DirtySwitches returns the IDs of switches whose TCAM rule lists differ
// between the two epochs, sorted ascending; switches present in only one
// epoch count as dirty. Unlike Diff it never materializes per-rule deltas:
// rule lists are compared elementwise (order-sensitively, the same
// sensitivity the equivalence checker has, so a clean verdict is always
// safe to act on) with early exit at the first difference, making it cheap
// enough to run on every collection. It is the invalidation input for
// incremental re-verification: an analysis session re-checks only the
// dirty switches of a new epoch.
func DirtySwitches(older, newer *Epoch) []object.ID {
	var out []object.ID
	for sw, rules := range older.TCAM {
		newRules, ok := newer.TCAM[sw]
		if !ok || !rule.SlicesEqual(rules, newRules) {
			out = append(out, sw)
		}
	}
	for sw := range newer.TCAM {
		if _, ok := older.TCAM[sw]; !ok {
			out = append(out, sw)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diff compares two epochs and returns the per-switch rule deltas, sorted
// by switch; switches with no change are omitted.
func Diff(older, newer *Epoch) []SwitchDelta {
	switches := make(map[object.ID]struct{})
	for sw := range older.TCAM {
		switches[sw] = struct{}{}
	}
	for sw := range newer.TCAM {
		switches[sw] = struct{}{}
	}
	var out []SwitchDelta
	for sw := range switches {
		oldKeys := rule.KeySet(older.TCAM[sw])
		newKeys := rule.KeySet(newer.TCAM[sw])
		var delta SwitchDelta
		delta.Switch = sw
		for _, r := range newer.TCAM[sw] {
			if _, ok := oldKeys[r.Key()]; !ok {
				delta.Added = append(delta.Added, r)
			}
		}
		for _, r := range older.TCAM[sw] {
			if _, ok := newKeys[r.Key()]; !ok {
				delta.Removed = append(delta.Removed, r)
			}
		}
		if len(delta.Added)+len(delta.Removed) > 0 {
			rule.Sort(delta.Added)
			rule.Sort(delta.Removed)
			out = append(out, delta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}
