// Package collect implements periodic and event-driven network-state
// collection (§III-C: "collecting the TCAM rules deployed across all
// switches periodically and/or in an event-driven fashion"). A Collector
// snapshots the fabric's TCAMs into immutable epochs, keeps a bounded
// history, and can diff epochs to show which rules appeared or vanished
// between collections — the raw material for trend analysis and
// post-incident forensics. Subscribed to a faultlog.EventLog, it also
// collects *partial* epochs: only the switches named by pending events
// are re-read, everything else aliases the previous epoch's rule slices,
// so a collection round costs O(dirty switches) instead of O(fabric).
package collect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scout/internal/fabric"
	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/rule"
)

// Epoch is one immutable collection of every switch's TCAM contents.
type Epoch struct {
	Seq  int                       `json:"seq"`
	Time time.Time                 `json:"time"`
	TCAM map[object.ID][]rule.Rule `json:"tcam"`
}

// RuleCount returns the total rules across switches in the epoch.
func (e *Epoch) RuleCount() int {
	n := 0
	for _, rules := range e.TCAM {
		n += len(rules)
	}
	return n
}

// Stats counts a collector's snapshot work — the observability hook for
// event-driven collection, where the payoff is precisely the switches a
// partial epoch did NOT re-read.
type Stats struct {
	// FullSnapshots and PartialSnapshots count epochs by kind.
	FullSnapshots    int
	PartialSnapshots int
	// SwitchesRead counts per-switch TCAM reads across all snapshots;
	// SwitchesAliased counts the switches a partial epoch carried
	// forward from the previous epoch without touching the device.
	SwitchesRead    int
	SwitchesAliased int
	// EventsConsumed counts events drained from the subscribed stream
	// by SnapshotEvents.
	EventsConsumed int
}

// Collector snapshots a fabric and retains a bounded epoch history. It is
// safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	f       *fabric.Fabric
	history []*Epoch
	limit   int
	nextSeq int
	// cursor is the consumer position over the subscribed event stream
	// (nil until Subscribe); SnapshotEvents drains it.
	cursor *faultlog.Cursor
	stats  Stats
}

// New creates a collector keeping at most limit epochs (<= 0 keeps 16).
func New(f *fabric.Fabric, limit int) *Collector {
	if limit <= 0 {
		limit = 16
	}
	return &Collector{f: f, limit: limit}
}

// Subscribe attaches the collector to a dataplane event stream from its
// current end: subsequent SnapshotEvents calls re-read only the switches
// named by events appended after this call. Subscribe before the first
// (full) Snapshot, so no mutation can slip between the baseline and the
// cursor position.
func (c *Collector) Subscribe(events *faultlog.EventLog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cursor = events.TailCursor()
}

// Snapshot collects every switch's TCAM into a new epoch.
func (c *Collector) Snapshot() *Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Collector) snapshotLocked() *Epoch {
	tcams := c.f.CollectAll()
	c.stats.FullSnapshots++
	c.stats.SwitchesRead += len(tcams)
	return c.retainLocked(tcams)
}

// retainLocked stamps a collected TCAM map as the next epoch and retains
// it in the bounded history.
func (c *Collector) retainLocked(tcams map[object.ID][]rule.Rule) *Epoch {
	c.nextSeq++
	e := &Epoch{
		Seq:  c.nextSeq,
		Time: c.f.Now(),
		TCAM: tcams,
	}
	c.history = append(c.history, e)
	if len(c.history) > c.limit {
		c.history = c.history[len(c.history)-c.limit:]
	}
	return e
}

// SnapshotSwitches collects a partial epoch: only the named switches are
// re-read from the fabric; every other switch's rule slice aliases the
// previous epoch's (same backing array, zero copy), so the epoch is a
// complete fabric view at the cost of the dirty subset. DirtySwitches
// and Diff semantics are intact — an aliased slice compares equal to its
// predecessor, a re-read one compares by content. Without a previous
// epoch the call degrades to a full Snapshot (there is nothing to alias).
//
// Correctness rests on the event contract: a switch not named since the
// previous epoch has an unchanged TCAM. Callers that cannot trust the
// stream end to end should interleave periodic full Snapshots.
func (c *Collector) SnapshotSwitches(dirty []object.ID) (*Epoch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotSwitchesLocked(dirty)
}

func (c *Collector) snapshotSwitchesLocked(dirty []object.ID) (*Epoch, error) {
	if len(c.history) == 0 {
		return c.snapshotLocked(), nil
	}
	prev := c.history[len(c.history)-1]
	tcams := make(map[object.ID][]rule.Rule, len(prev.TCAM))
	for sw, rules := range prev.TCAM {
		tcams[sw] = rules
	}
	read := 0
	for _, sw := range dirty {
		rules, err := c.f.CollectTCAM(sw)
		if err != nil {
			return nil, fmt.Errorf("collect: partial epoch: %w", err)
		}
		// A switch unseen by the previous epoch simply joins the new one
		// (dirty by definition for the diff).
		tcams[sw] = rules
		read++
	}
	c.stats.PartialSnapshots++
	c.stats.SwitchesRead += read
	c.stats.SwitchesAliased += len(tcams) - read
	return c.retainLocked(tcams), nil
}

// SnapshotEvents drains the subscribed event stream and collects a
// partial epoch covering exactly the switches the pending events name
// (duplicates collapse to one read). It returns the epoch and the events
// consumed; with no pending events the epoch is a pure alias of the
// previous one (zero switches read) and the returned slice is empty.
// SnapshotEvents panics if Subscribe was never called.
func (c *Collector) SnapshotEvents() (*Epoch, []faultlog.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cursor == nil {
		panic("collect: SnapshotEvents without Subscribe")
	}
	evs := c.cursor.Drain()
	c.stats.EventsConsumed += len(evs)
	seen := make(map[object.ID]bool, len(evs))
	dirty := make([]object.ID, 0, len(evs))
	for _, ev := range evs {
		if !seen[ev.Switch] {
			seen[ev.Switch] = true
			dirty = append(dirty, ev.Switch)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	e, err := c.snapshotSwitchesLocked(dirty)
	if err != nil {
		return nil, nil, err
	}
	return e, evs, nil
}

// Stats returns the collector's cumulative snapshot counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// History returns the retained epochs, oldest first.
func (c *Collector) History() []*Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Epoch(nil), c.history...)
}

// Latest returns the most recent epoch, if any.
func (c *Collector) Latest() (*Epoch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) == 0 {
		return nil, false
	}
	return c.history[len(c.history)-1], true
}

// Epoch returns the retained epoch with the given sequence number.
func (c *Collector) Epoch(seq int) (*Epoch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.history {
		if e.Seq == seq {
			return e, nil
		}
	}
	return nil, fmt.Errorf("collect: epoch %d not retained", seq)
}

// SwitchDelta is the per-switch difference between two epochs.
type SwitchDelta struct {
	Switch  object.ID
	Added   []rule.Rule // present in the newer epoch only
	Removed []rule.Rule // present in the older epoch only
}

// DirtySwitches returns the IDs of switches whose TCAM rule lists differ
// between the two epochs, sorted ascending; switches present in only one
// epoch count as dirty. Unlike Diff it never materializes per-rule deltas:
// rule lists are compared elementwise (order-sensitively, the same
// sensitivity the equivalence checker has, so a clean verdict is always
// safe to act on) with early exit at the first difference, making it cheap
// enough to run on every collection. It is the invalidation input for
// incremental re-verification: an analysis session re-checks only the
// dirty switches of a new epoch.
func DirtySwitches(older, newer *Epoch) []object.ID {
	var out []object.ID
	for sw, rules := range older.TCAM {
		newRules, ok := newer.TCAM[sw]
		if !ok || !rule.SlicesEqual(rules, newRules) {
			out = append(out, sw)
		}
	}
	for sw := range newer.TCAM {
		if _, ok := older.TCAM[sw]; !ok {
			out = append(out, sw)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diff compares two epochs and returns the per-switch rule deltas, sorted
// by switch; switches with no change are omitted.
func Diff(older, newer *Epoch) []SwitchDelta {
	switches := make(map[object.ID]struct{})
	for sw := range older.TCAM {
		switches[sw] = struct{}{}
	}
	for sw := range newer.TCAM {
		switches[sw] = struct{}{}
	}
	var out []SwitchDelta
	for sw := range switches {
		oldKeys := rule.KeySet(older.TCAM[sw])
		newKeys := rule.KeySet(newer.TCAM[sw])
		var delta SwitchDelta
		delta.Switch = sw
		for _, r := range newer.TCAM[sw] {
			if _, ok := oldKeys[r.Key()]; !ok {
				delta.Added = append(delta.Added, r)
			}
		}
		for _, r := range older.TCAM[sw] {
			if _, ok := newKeys[r.Key()]; !ok {
				delta.Removed = append(delta.Removed, r)
			}
		}
		if len(delta.Added)+len(delta.Removed) > 0 {
			rule.Sort(delta.Added)
			rule.Sort(delta.Removed)
			out = append(out, delta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}
