package compile

import (
	"reflect"
	"testing"

	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

// threeTier reproduces the paper's Figure 1 example: Web(1)@S1, App(2)@S2,
// DB(3)@S3; Web-App on port 80, App-DB on ports 80 and 700.
func threeTier(t *testing.T) (*policy.Policy, *topo.Topology) {
	t.Helper()
	p := policy.New("three-tier")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(policy.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddEndpoint(policy.Endpoint{ID: 13, EPG: 3, Switch: 3})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddFilter(policy.Filter{ID: 700, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 700)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.AddContract(policy.Contract{ID: 202, Filters: []object.ID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, topo.FromPolicy(p)
}

func TestCompileFigure2RuleCount(t *testing.T) {
	p, tp := threeTier(t)
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2: S2 (hosting App) carries 6 allow rules + default deny:
	// Web↔App on 80 (2), App↔DB on 80 (2), App↔DB on 700 (2).
	s2 := d.RulesFor(2)
	if len(s2) != 7 {
		t.Fatalf("S2 rules = %d, want 7 (6 allows + default deny):\n%v", len(s2), s2)
	}
	allows := 0
	for _, r := range s2 {
		if r.Action == rule.Allow {
			allows++
		}
	}
	if allows != 6 {
		t.Errorf("S2 allow rules = %d, want 6", allows)
	}
	if !s2[len(s2)-1].IsDefaultDeny() {
		t.Error("last rule must be the default deny")
	}

	// S1 hosts only Web: Web↔App on 80 (2) + deny.
	if s1 := d.RulesFor(1); len(s1) != 3 {
		t.Errorf("S1 rules = %d, want 3:\n%v", len(s1), s1)
	}
	// S3 hosts only DB: App↔DB on 80+700 (4) + deny.
	if s3 := d.RulesFor(3); len(s3) != 5 {
		t.Errorf("S3 rules = %d, want 5:\n%v", len(s3), s3)
	}
}

func TestCompileProvenance(t *testing.T) {
	p, tp := threeTier(t)
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.RulesFor(2) {
		if r.IsDefaultDeny() {
			continue
		}
		want := object.NewSet(
			object.VRF(101),
			object.EPG(r.Match.SrcEPG), object.EPG(r.Match.DstEPG),
		)
		got := object.NewSet(r.Provenance...)
		if got.Len() != 5 {
			t.Errorf("rule %v provenance size = %d, want 5 (vrf, 2 epgs, contract, filter)", r, got.Len())
		}
		for ref := range want {
			if !got.Has(ref) {
				t.Errorf("rule %v provenance missing %v", r, ref)
			}
		}
		// Port 700 rules come from filter 700 / contract 202.
		if r.Match.PortLo == 700 {
			if !got.Has(object.Filter(700)) || !got.Has(object.Contract(202)) {
				t.Errorf("port-700 rule provenance wrong: %v", r.Provenance)
			}
		}
	}
	// Provenance index must cover every non-deny rule key.
	for sw, rules := range d.BySwitch {
		for _, r := range rules {
			if r.IsDefaultDeny() {
				continue
			}
			if _, ok := d.Provenance[r.Key()]; !ok {
				t.Errorf("switch %d rule %v missing from provenance index", sw, r)
			}
		}
	}
}

func TestCompilePairRules(t *testing.T) {
	p, tp := threeTier(t)
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Web-App pair (1-2) deployed on S1 and S2; App-DB (2-3) on S2 and S3.
	sps := d.SwitchPairs()
	var labels []string
	for _, sp := range sps {
		labels = append(labels, sp.String())
	}
	want := []string{"S1:1-2", "S2:1-2", "S2:2-3", "S3:2-3"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("SwitchPairs = %v, want %v", labels, want)
	}
	// The App-DB pair on S2 relies on 4 rule keys (2 ports × 2 dirs).
	keys := d.PairRules[SwitchPair{Switch: 2, Pair: policy.MakeEPGPair(2, 3)}]
	if len(keys) != 4 {
		t.Errorf("App-DB keys on S2 = %d, want 4", len(keys))
	}
}

func TestCompileIntraEPGBinding(t *testing.T) {
	p := policy.New("intra")
	p.AddVRF(policy.VRF{ID: 1})
	p.AddEPG(policy.EPG{ID: 10, VRF: 1})
	p.AddEndpoint(policy.Endpoint{ID: 1, EPG: 10, Switch: 1})
	p.AddFilter(policy.Filter{ID: 5, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 22)}})
	p.AddContract(policy.Contract{ID: 7, Filters: []object.ID{5}})
	p.Bind(10, 10, 7)
	d, err := Compile(p, topo.FromPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	// Intra-EPG: one rule (not two mirrored) + default deny.
	if got := len(d.RulesFor(1)); got != 2 {
		t.Errorf("intra-EPG rules = %d, want 2", got)
	}
}

func TestCompileDedupesSharedRules(t *testing.T) {
	p, tp := threeTier(t)
	// A second contract allowing the same port 80 between Web and App
	// produces duplicate keys that must dedupe.
	p.AddContract(policy.Contract{ID: 203, Filters: []object.ID{80}})
	p.Bind(1, 2, 203)
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.RulesFor(1)); got != 3 {
		t.Errorf("S1 rules after duplicate binding = %d, want 3 (dedupe)", got)
	}
}

func TestCompileRejectsInvalidPolicy(t *testing.T) {
	p, tp := threeTier(t)
	p.Bind(1, 999, 201)
	if _, err := Compile(p, tp); err == nil {
		t.Error("Compile should reject invalid policies")
	}
}

func TestCompileSkipsUnattachedPairs(t *testing.T) {
	p, tp := threeTier(t)
	// EPG with no endpoints: binding to it lands nowhere beyond the
	// partner's switches.
	p.AddEPG(policy.EPG{ID: 4, Name: "ghost", VRF: 101})
	p.AddContract(policy.Contract{ID: 204, Filters: []object.ID{80}})
	p.Bind(4, 4, 204) // fully unattached pair
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range d.SwitchPairs() {
		if sp.Pair == policy.MakeEPGPair(4, 4) {
			t.Error("unattached pair must not appear in deployment")
		}
	}
}

func TestTotalRules(t *testing.T) {
	p, tp := threeTier(t)
	d, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	// 2 (S1) + 6 (S2) + 4 (S3) allow rules.
	if got := d.TotalRules(); got != 12 {
		t.Errorf("TotalRules = %d, want 12", got)
	}
}

func TestPairFor(t *testing.T) {
	k := rule.Key{Match: rule.Match{SrcEPG: 9, DstEPG: 4}}
	if PairFor(k) != policy.MakeEPGPair(4, 9) {
		t.Error("PairFor must canonicalize")
	}
}

func TestSwitchPairOrdering(t *testing.T) {
	a := SwitchPair{Switch: 1, Pair: policy.MakeEPGPair(1, 2)}
	b := SwitchPair{Switch: 1, Pair: policy.MakeEPGPair(1, 3)}
	c := SwitchPair{Switch: 2, Pair: policy.MakeEPGPair(1, 2)}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("SwitchPair ordering broken")
	}
	if a.String() != "S1:1-2" {
		t.Errorf("String = %q", a.String())
	}
}
