// Package compile renders an abstract network policy into per-switch
// logical TCAM rules (the paper's L-type rules).
//
// For every contract binding (A, B, contract) the compiler emits, for each
// entry of each filter referenced by the contract, a pair of directional
// rules (A→B and B→A, as in the paper's Figure 2), placed on every switch
// that hosts endpoints of A or B. Each rule carries the provenance set
// {VRF, EPG A, EPG B, contract, filter} — its shared risks.
package compile

import (
	"fmt"
	"sort"

	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

// EntryPriority is the priority assigned to compiled filter-entry rules;
// the default-deny tail sits below at priority 0.
const EntryPriority = 10

// Deployment is the compiled desired state: the logical rules every switch
// should carry, plus lookup indexes used by risk-model construction.
type Deployment struct {
	// BySwitch maps a switch ID to its sorted, deduped logical rules
	// (including the default-deny tail).
	BySwitch map[object.ID][]rule.Rule

	// Provenance maps a rule Key to the provenance set of the logical
	// rule(s) with that key. Used to annotate missing T-type rules, which
	// arrive from the equivalence checker without provenance.
	Provenance map[rule.Key][]object.Ref

	// PairRules maps (switch, EPG pair) to the keys of the logical rules
	// serving that pair on that switch.
	PairRules map[SwitchPair][]rule.Key
}

// SwitchPair identifies an EPG pair deployed on a specific switch — the
// affected-element granularity of the controller risk model.
type SwitchPair struct {
	Switch object.ID
	Pair   policy.EPGPair
}

// String renders the triplet like "S2:3-4".
func (sp SwitchPair) String() string {
	return fmt.Sprintf("S%d:%s", sp.Switch, sp.Pair)
}

// Less orders SwitchPairs deterministically.
func (sp SwitchPair) Less(other SwitchPair) bool {
	if sp.Switch != other.Switch {
		return sp.Switch < other.Switch
	}
	return sp.Pair.Less(other.Pair)
}

// Compile renders the policy onto the topology. The policy must validate.
func Compile(p *policy.Policy, t *topo.Topology) (*Deployment, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if err := t.Validate(p); err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}

	d := &Deployment{
		BySwitch:   make(map[object.ID][]rule.Rule, t.NumSwitches()),
		Provenance: make(map[rule.Key][]object.Ref),
		PairRules:  make(map[SwitchPair][]rule.Key),
	}
	for _, sw := range t.Switches() {
		d.BySwitch[sw] = nil
	}

	for _, b := range p.Bindings {
		from := p.EPGs[b.From]
		contract := p.Contracts[b.Contract]
		pair := policy.MakeEPGPair(b.From, b.To)
		switches := t.SwitchesForPair(b.From, b.To)
		if len(switches) == 0 {
			continue // pair has no attached endpoints anywhere
		}
		for _, fid := range contract.Filters {
			filter := p.Filters[fid]
			prov := []object.Ref{
				object.VRF(from.VRF),
				object.EPG(b.From),
				object.EPG(b.To),
				object.Contract(b.Contract),
				object.Filter(fid),
			}
			object.SortRefs(prov)
			for _, entry := range filter.Entries {
				for _, dir := range directionalRules(from.VRF, b.From, b.To, entry, prov) {
					key := dir.Key()
					if _, ok := d.Provenance[key]; !ok {
						d.Provenance[key] = dir.Provenance
					}
					for _, sw := range switches {
						d.BySwitch[sw] = append(d.BySwitch[sw], dir)
						sp := SwitchPair{Switch: sw, Pair: pair}
						d.PairRules[sp] = append(d.PairRules[sp], key)
					}
				}
			}
		}
	}

	for sw, rules := range d.BySwitch {
		rules = append(rules, rule.DefaultDeny())
		rule.Sort(rules)
		d.BySwitch[sw] = rule.Dedupe(rules)
	}
	for sp, keys := range d.PairRules {
		d.PairRules[sp] = dedupeKeys(keys)
	}
	return d, nil
}

// directionalRules builds the two direction rules for a filter entry
// between EPGs a and b. When a == b (intra-EPG contract) a single rule is
// produced.
func directionalRules(vrf, a, b object.ID, e policy.FilterEntry, prov []object.Ref) []rule.Rule {
	mk := func(src, dst object.ID) rule.Rule {
		return rule.Rule{
			Match: rule.Match{
				VRF:    vrf,
				SrcEPG: src,
				DstEPG: dst,
				Proto:  e.Proto,
				PortLo: e.PortLo,
				PortHi: e.PortHi,
			},
			Action:     e.Action,
			Priority:   EntryPriority,
			Provenance: prov,
		}
	}
	if a == b {
		return []rule.Rule{mk(a, b)}
	}
	return []rule.Rule{mk(a, b), mk(b, a)}
}

// RulesFor returns the logical rules for a single switch (nil if unknown).
func (d *Deployment) RulesFor(sw object.ID) []rule.Rule {
	return d.BySwitch[sw]
}

// TotalRules returns the count of logical rules across all switches
// (excluding each switch's default-deny tail).
func (d *Deployment) TotalRules() int {
	n := 0
	for _, rules := range d.BySwitch {
		for _, r := range rules {
			if !r.IsDefaultDeny() {
				n++
			}
		}
	}
	return n
}

// SwitchPairs returns the sorted (switch, pair) deployment footprint.
func (d *Deployment) SwitchPairs() []SwitchPair {
	out := make([]SwitchPair, 0, len(d.PairRules))
	for sp := range d.PairRules {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PairFor derives the EPG pair a rule key serves from its match fields.
func PairFor(k rule.Key) policy.EPGPair {
	return policy.MakeEPGPair(k.Match.SrcEPG, k.Match.DstEPG)
}

func dedupeKeys(keys []rule.Key) []rule.Key {
	seen := make(map[rule.Key]struct{}, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}
