package compile_test

import (
	"testing"

	"scout/internal/compile"
	"scout/internal/workload"
)

// BenchmarkCompileProduction measures compiling a quarter-scale
// production policy into per-switch rules.
func BenchmarkCompileProduction(b *testing.B) {
	spec := workload.ProductionSpec()
	spec.EPGs = 150
	spec.Contracts = 100
	spec.Filters = 40
	spec.TargetPairs = 5000
	p, t, err := workload.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := compile.Compile(p, t)
		if err != nil {
			b.Fatal(err)
		}
		if d.TotalRules() == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkCompileTestbed measures the testbed-size compile.
func BenchmarkCompileTestbed(b *testing.B) {
	p, t, err := workload.Generate(workload.TestbedSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(p, t); err != nil {
			b.Fatal(err)
		}
	}
}
