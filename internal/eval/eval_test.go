package eval

import (
	"strings"
	"testing"

	"scout/internal/workload"
)

// testEnv builds a small production-like environment once per test run.
func testEnv(t testing.TB) *Env {
	t.Helper()
	spec := workload.ProductionSpec()
	spec.EPGs = 120
	spec.Contracts = 80
	spec.Filters = 40
	spec.TargetPairs = 1200
	spec.Switches = 10
	env, err := NewEnv(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSimSpecScaling(t *testing.T) {
	full := SimSpec(1)
	if full.EPGs != 615 {
		t.Errorf("full scale EPGs = %d", full.EPGs)
	}
	half := SimSpec(0.5)
	if half.EPGs >= full.EPGs || half.TargetPairs >= full.TargetPairs {
		t.Error("scaled spec must shrink")
	}
	if tiny := SimSpec(0.0001); tiny.EPGs < 2 {
		t.Error("scaling must clamp to a usable floor")
	}
}

func TestFigure3Shapes(t *testing.T) {
	env := testEnv(t)
	res := Figure3(env)
	for _, series := range []string{"switches", "vrfs", "epgs", "contracts", "filters"} {
		if len(res.Series[series]) == 0 {
			t.Errorf("series %q empty", series)
		}
	}
	// Paper shapes: the largest VRFs serve far more pairs than the median
	// contract; switches carry big pair populations.
	vrfs := res.Series["vrfs"]
	contracts := res.Series["contracts"]
	if vrfs[len(vrfs)-1] <= Percentile(contracts, 50) {
		t.Error("largest VRF must dominate median contract")
	}
	switches := res.Series["switches"]
	if Percentile(switches, 50) < 50 {
		t.Errorf("median switch pairs = %d, want substantial sharing", Percentile(switches, 50))
	}
	out := res.Render()
	if !strings.Contains(out, "vrfs") || !strings.Contains(out, "filters") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFractionAboveAndPercentile(t *testing.T) {
	s := []int{1, 2, 3, 10, 100}
	if got := FractionAbove(s, 3); got != 0.4 {
		t.Errorf("FractionAbove(3) = %v, want 0.4", got)
	}
	if got := FractionAbove(s, 1000); got != 0 {
		t.Errorf("FractionAbove(1000) = %v", got)
	}
	if got := FractionAbove(nil, 1); got != 0 {
		t.Errorf("FractionAbove(nil) = %v", got)
	}
	if Percentile(s, 0) != 1 || Percentile(s, 100) != 100 {
		t.Error("percentile endpoints wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestSwitchModelAccuracyShape(t *testing.T) {
	env := testEnv(t)
	res, err := SwitchModelAccuracy(env, AccuracyOptions{MaxFaults: 5, Runs: 10, Noise: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAccuracyShape(t, res)
}

func TestControllerModelAccuracyShape(t *testing.T) {
	env := testEnv(t)
	res, err := ControllerModelAccuracy(env, AccuracyOptions{MaxFaults: 5, Runs: 10, Noise: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAccuracyShape(t, res)
}

// checkAccuracyShape asserts the paper's qualitative claims: SCOUT recall
// exceeds SCORE's substantially; precision stays comparable; changing
// SCORE's threshold changes little.
func checkAccuracyShape(t *testing.T, res *AccuracyResult) {
	t.Helper()
	scout, ok := res.Curve("SCOUT")
	if !ok {
		t.Fatal("SCOUT curve missing")
	}
	score06, _ := res.Curve("SCORE-0.6")
	score1, _ := res.Curve("SCORE-1")

	if scout.MeanRecall() < score1.MeanRecall()+0.15 {
		t.Errorf("SCOUT recall %.3f should beat SCORE-1 %.3f by a wide margin\n%s",
			scout.MeanRecall(), score1.MeanRecall(), res.Render())
	}
	if scout.MeanRecall() < 0.8 {
		t.Errorf("SCOUT mean recall = %.3f, want high (paper: finds most faults)", scout.MeanRecall())
	}
	if scout.MeanPrecision() < score1.MeanPrecision()-0.25 {
		t.Errorf("SCOUT precision %.3f must stay comparable to SCORE-1 %.3f",
			scout.MeanPrecision(), score1.MeanPrecision())
	}
	// SCORE's threshold barely matters (both miss partial faults).
	d := score06.MeanRecall() - score1.MeanRecall()
	if d < -0.2 || d > 0.35 {
		t.Errorf("SCORE thresholds should behave similarly: 0.6→%.3f 1.0→%.3f",
			score06.MeanRecall(), score1.MeanRecall())
	}
	if !strings.Contains(res.Render(), "SCOUT") {
		t.Error("render must include curve names")
	}
}

func TestAblationChangeLogStage(t *testing.T) {
	env := testEnv(t)
	opts := AccuracyOptions{
		MaxFaults:  4,
		Runs:       10,
		Seed:       2,
		Algorithms: append(StandardAlgorithms(), ScoutNoChangeLog()),
	}
	res, err := ControllerModelAccuracy(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := res.Curve("SCOUT")
	ablated, _ := res.Curve("SCOUT-nolog")
	if full.MeanRecall() <= ablated.MeanRecall() {
		t.Errorf("change-log stage must add recall: with=%.3f without=%.3f",
			full.MeanRecall(), ablated.MeanRecall())
	}
}

func TestSuspectSetReduction(t *testing.T) {
	env := testEnv(t)
	res, err := SuspectSetReduction(env, GammaOptions{Faults: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Samples
		if b.Samples > 0 && (b.MeanGamma <= 0 || b.MeanGamma > 1) {
			t.Errorf("bucket %d-%d gamma = %v out of (0,1]", b.Lo, b.Hi, b.MeanGamma)
		}
	}
	if total == 0 {
		t.Fatal("no samples landed in any bucket")
	}
	// Paper: γ mostly below ~0.2; buckets with bigger suspect sets have
	// smaller γ. Check the widest populated bucket.
	for i := len(res.Buckets) - 1; i >= 0; i-- {
		if res.Buckets[i].Samples > 0 {
			if res.Buckets[i].MeanGamma > 0.25 {
				t.Errorf("large-suspect-set gamma = %v, want small", res.Buckets[i].MeanGamma)
			}
			break
		}
	}
	if !strings.Contains(res.Render(), "gamma") {
		t.Error("render missing header")
	}
}

func TestScalabilitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	res, err := Scalability([]int{5, 10}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].Elements <= res.Points[0].Elements {
		t.Error("model size must grow with switch count")
	}
	for _, p := range res.Points {
		if p.LocalizeSecs < 0 || p.BuildSecs < 0 {
			t.Error("negative timings")
		}
	}
	if !strings.Contains(res.Render(), "switches") {
		t.Error("render missing header")
	}
}

func TestAccuracyOptionsDefaults(t *testing.T) {
	o := AccuracyOptions{}.withDefaults()
	if o.MaxFaults != 10 || o.Runs != 30 || o.Algorithms == nil {
		t.Errorf("defaults = %+v", o)
	}
}

func TestTestbedAccuracyEndToEnd(t *testing.T) {
	spec := workload.TestbedSpec()
	res, err := TestbedAccuracy(spec, TestbedOptions{MaxFaults: 4, Runs: 5, Noise: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	scout, _ := res.Curve("SCOUT")
	score, _ := res.Curve("SCORE-1")
	if scout.MeanRecall() <= score.MeanRecall() {
		t.Errorf("end-to-end: SCOUT recall %.3f must beat SCORE-1 %.3f\n%s",
			scout.MeanRecall(), score.MeanRecall(), res.Render())
	}
	// Paper: SCOUT finds everything at low fault counts on the testbed.
	if scout.Points[0].Recall < 0.9 {
		t.Errorf("SCOUT single-fault recall = %.3f, want near 1\n%s", scout.Points[0].Recall, res.Render())
	}
}
