// Package eval contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (§VI): the Figure 3 sharing
// CDFs, the Figure 7 suspect-set-reduction study, the Figure 8/9/10
// precision-recall comparisons between SCOUT and SCORE, and the §VI-B
// scalability measurement. Each experiment is deterministic under a seed.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"scout/internal/compile"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/risk"
	"scout/internal/topo"
	"scout/internal/workload"
)

// Env bundles the generated workload artifacts shared by experiments.
type Env struct {
	Spec       workload.Spec
	Policy     *policy.Policy
	Topo       *topo.Topology
	Deployment *compile.Deployment
	Index      *workload.DepIndex
}

// NewEnv generates and compiles a workload environment.
func NewEnv(spec workload.Spec, seed int64) (*Env, error) {
	p, t, err := workload.Generate(spec, seed)
	if err != nil {
		return nil, err
	}
	d, err := compile.Compile(p, t)
	if err != nil {
		return nil, err
	}
	return &Env{
		Spec:       spec,
		Policy:     p,
		Topo:       t,
		Deployment: d,
		Index:      workload.BuildIndex(d),
	}, nil
}

// SimSpec returns the production-like simulation spec scaled by the given
// factor (1.0 = the paper's full cluster size). Benchmarks use a reduced
// scale to keep per-iteration cost sane; cmd/scout-bench runs full scale.
func SimSpec(scale float64) workload.Spec {
	s := workload.ProductionSpec()
	if scale <= 0 || scale == 1 {
		return s
	}
	shrink := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if v < 2 {
			v = 2
		}
		return v
	}
	s.EPGs = shrink(s.EPGs)
	s.Contracts = shrink(s.Contracts)
	s.Filters = shrink(s.Filters)
	s.TargetPairs = shrink(s.TargetPairs)
	s.Switches = shrink(s.Switches)
	return s
}

// ---------------------------------------------------------------------------
// Figure 3: CDF of EPG pairs per object.
// ---------------------------------------------------------------------------

// Figure3Result holds, per object category, the sorted per-object counts
// of distinct EPG pairs depending on it.
type Figure3Result struct {
	// Series maps category ("vrfs", "epgs", "contracts", "filters",
	// "switches") to sorted dependent-pair counts.
	Series map[string][]int
}

// Figure3 computes the sharing distributions for an environment.
func Figure3(env *Env) *Figure3Result {
	perObject := make(map[object.Ref]map[policy.EPGPair]struct{})
	perSwitch := make(map[object.ID]map[policy.EPGPair]struct{})
	for sp, keys := range env.Deployment.PairRules {
		swSet, ok := perSwitch[sp.Switch]
		if !ok {
			swSet = make(map[policy.EPGPair]struct{})
			perSwitch[sp.Switch] = swSet
		}
		swSet[sp.Pair] = struct{}{}
		for _, k := range keys {
			for _, ref := range env.Deployment.Provenance[k] {
				set, ok := perObject[ref]
				if !ok {
					set = make(map[policy.EPGPair]struct{})
					perObject[ref] = set
				}
				set[sp.Pair] = struct{}{}
			}
		}
	}

	res := &Figure3Result{Series: map[string][]int{}}
	kindName := map[object.Kind]string{
		object.KindVRF:      "vrfs",
		object.KindEPG:      "epgs",
		object.KindContract: "contracts",
		object.KindFilter:   "filters",
	}
	for ref, pairs := range perObject {
		name := kindName[ref.Kind]
		res.Series[name] = append(res.Series[name], len(pairs))
	}
	for _, pairs := range perSwitch {
		res.Series["switches"] = append(res.Series["switches"], len(pairs))
	}
	for k := range res.Series {
		sort.Ints(res.Series[k])
	}
	return res
}

// FractionAbove returns the fraction of sorted counts strictly greater
// than threshold.
func FractionAbove(sorted []int, threshold int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchInts(sorted, threshold+1)
	return float64(len(sorted)-i) / float64(len(sorted))
}

// Percentile returns the q-th percentile (0..100) of sorted counts.
func Percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Render returns the Figure 3 result as an aligned text table of CDF
// checkpoints.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s %8s %8s\n",
		"objects", "count", "p50", "p90", ">100", ">1000", ">10000")
	for _, name := range []string{"switches", "vrfs", "epgs", "contracts", "filters"} {
		s := r.Series[name]
		fmt.Fprintf(&b, "%-10s %8d %8d %8d %7.1f%% %7.1f%% %7.1f%%\n",
			name, len(s), Percentile(s, 50), Percentile(s, 90),
			100*FractionAbove(s, 100), 100*FractionAbove(s, 1000), 100*FractionAbove(s, 10000))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 8/9/10: precision & recall vs number of simultaneous faults.
// ---------------------------------------------------------------------------

// Algorithm selects a localization algorithm variant for experiments.
type Algorithm struct {
	// Name labels the curve ("SCOUT", "SCORE-0.6", "SCORE-1").
	Name string
	// Run executes the algorithm against an annotated risk view (a model
	// or a failure overlay). changed is the simulated recent-change
	// oracle.
	Run func(v risk.View, changed object.Set) *localize.Result
}

// StandardAlgorithms returns the three algorithm variants the paper's
// accuracy figures compare.
func StandardAlgorithms() []Algorithm {
	return []Algorithm{
		{
			Name: "SCOUT",
			Run: func(v risk.View, changed object.Set) *localize.Result {
				return localize.Scout(v, localize.SetOracle(changed))
			},
		},
		{
			Name: "SCORE-0.6",
			Run: func(v risk.View, _ object.Set) *localize.Result {
				return localize.Score(v, 0.6)
			},
		},
		{
			Name: "SCORE-1",
			Run: func(v risk.View, _ object.Set) *localize.Result {
				return localize.Score(v, 1.0)
			},
		},
	}
}

// RefStandardAlgorithms mirrors StandardAlgorithms on the retained
// map-based reference engine (localize.RefScout/RefScore). The localizer
// CI gate runs both sets over the same corpus and asserts identical
// Results — the differential that keeps the compiled-plan engine honest.
func RefStandardAlgorithms() []Algorithm {
	return []Algorithm{
		{
			Name: "SCOUT",
			Run: func(v risk.View, changed object.Set) *localize.Result {
				return localize.RefScout(v, localize.SetOracle(changed))
			},
		},
		{
			Name: "SCORE-0.6",
			Run: func(v risk.View, _ object.Set) *localize.Result {
				return localize.RefScore(v, 0.6)
			},
		},
		{
			Name: "SCORE-1",
			Run: func(v risk.View, _ object.Set) *localize.Result {
				return localize.RefScore(v, 1.0)
			},
		},
	}
}

// ScoutNoChangeLog is the DESIGN.md ablation: SCOUT stage one only.
func ScoutNoChangeLog() Algorithm {
	return Algorithm{
		Name: "SCOUT-nolog",
		Run: func(v risk.View, _ object.Set) *localize.Result {
			return localize.Scout(v, localize.NoChanges{})
		},
	}
}

// AccuracyPoint is one (fault count → mean accuracy) measurement.
type AccuracyPoint struct {
	Faults    int
	Precision float64
	Recall    float64
}

// AccuracyCurve is one algorithm's accuracy across fault counts.
type AccuracyCurve struct {
	Name   string
	Points []AccuracyPoint
}

// AccuracyResult is a full precision/recall figure.
type AccuracyResult struct {
	Title  string
	Curves []AccuracyCurve
}

// AccuracyOptions configures an accuracy experiment.
type AccuracyOptions struct {
	MaxFaults int // x-axis upper bound (paper: 10)
	Runs      int // repetitions per point (paper: 30 sim, 10 testbed)
	Noise     int // healthy objects added to the change oracle per run
	Seed      int64
	// Algorithms to compare; nil selects StandardAlgorithms.
	Algorithms []Algorithm
}

func (o AccuracyOptions) withDefaults() AccuracyOptions {
	if o.MaxFaults <= 0 {
		o.MaxFaults = 10
	}
	if o.Runs <= 0 {
		o.Runs = 30
	}
	if o.Noise < 0 {
		o.Noise = 0
	}
	if o.Algorithms == nil {
		o.Algorithms = StandardAlgorithms()
	}
	return o
}

// SwitchModelAccuracy reproduces Figure 8: faults are injected into the
// rules of a single switch and localized on that switch's risk model.
func SwitchModelAccuracy(env *Env, opts AccuracyOptions) (*AccuracyResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Choose the switch with the most dependent objects so every fault
	// count is feasible.
	sw := busiestSwitch(env)
	candidates := env.Index.ObjectsOnSwitch(sw)
	model := risk.BuildSwitchModel(env.Deployment, sw)

	return accuracySweep("switch risk model", model, candidates, opts, rng,
		func(m risk.Marker, sc workload.Scenario, r *rand.Rand) {
			workload.ApplyToSwitchModel(m, env.Deployment, env.Index, sw, sc, r)
		})
}

// ControllerModelAccuracy reproduces Figure 9: faults are injected across
// switches and localized on the controller risk model.
func ControllerModelAccuracy(env *Env, opts AccuracyOptions) (*AccuracyResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	candidates := env.Index.Objects()
	model := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})

	return accuracySweep("controller risk model", model, candidates, opts, rng,
		func(m risk.Marker, sc workload.Scenario, r *rand.Rand) {
			workload.ApplyToControllerModel(m, env.Deployment, env.Index, sc, r)
		})
}

// accuracySweep drives one accuracy figure. The pristine model is shared
// read-only across every run: each scenario's faults land in a fresh
// copy-on-write overlay and the algorithms localize through the overlay
// view, so runs never pay a model reset (or clone) and cannot leak marks
// into each other.
func accuracySweep(title string, pristine *risk.Model, candidates []object.Ref,
	opts AccuracyOptions, rng *rand.Rand,
	apply func(risk.Marker, workload.Scenario, *rand.Rand)) (*AccuracyResult, error) {

	res := &AccuracyResult{Title: title}
	curves := make([]AccuracyCurve, len(opts.Algorithms))
	for i, alg := range opts.Algorithms {
		curves[i].Name = alg.Name
	}

	for n := 1; n <= opts.MaxFaults; n++ {
		sumsP := make([]float64, len(opts.Algorithms))
		sumsR := make([]float64, len(opts.Algorithms))
		for run := 0; run < opts.Runs; run++ {
			sc, err := workload.NewScenario(rng, candidates, n, opts.Noise)
			if err != nil {
				return nil, err
			}
			ov := risk.NewOverlay(pristine)
			apply(ov, sc, rng)
			for i, alg := range opts.Algorithms {
				r := alg.Run(ov, sc.Changed)
				acc := r.Evaluate(sc.GroundTruth)
				sumsP[i] += acc.Precision
				sumsR[i] += acc.Recall
			}
		}
		for i := range opts.Algorithms {
			curves[i].Points = append(curves[i].Points, AccuracyPoint{
				Faults:    n,
				Precision: sumsP[i] / float64(opts.Runs),
				Recall:    sumsR[i] / float64(opts.Runs),
			})
		}
	}
	res.Curves = curves
	return res, nil
}

func busiestSwitch(env *Env) object.ID {
	best := object.ID(0)
	bestObjs := -1
	for _, sw := range env.Topo.Switches() {
		n := len(env.Index.ObjectsOnSwitch(sw))
		if n > bestObjs {
			best, bestObjs = sw, n
		}
	}
	return best
}

// Render returns the accuracy result as an aligned text table.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-8s", r.Title, "faults")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %12s-P %12s-R", c.Name, c.Name)
	}
	b.WriteByte('\n')
	if len(r.Curves) == 0 {
		return b.String()
	}
	for i := range r.Curves[0].Points {
		fmt.Fprintf(&b, "%-8d", r.Curves[0].Points[i].Faults)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, " %14.3f %14.3f", c.Points[i].Precision, c.Points[i].Recall)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Curve returns the named curve, if present.
func (r *AccuracyResult) Curve(name string) (AccuracyCurve, bool) {
	for _, c := range r.Curves {
		if c.Name == name {
			return c, true
		}
	}
	return AccuracyCurve{}, false
}

// MeanRecall averages recall across a curve's points.
func (c AccuracyCurve) MeanRecall() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range c.Points {
		sum += p.Recall
	}
	return sum / float64(len(c.Points))
}

// MeanPrecision averages precision across a curve's points.
func (c AccuracyCurve) MeanPrecision() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range c.Points {
		sum += p.Precision
	}
	return sum / float64(len(c.Points))
}

// ---------------------------------------------------------------------------
// Figure 7: suspect-set reduction γ.
// ---------------------------------------------------------------------------

// GammaBucket aggregates γ for faults whose suspect-set size falls in
// [Lo, Hi).
type GammaBucket struct {
	Lo, Hi    int
	MeanGamma float64
	Samples   int
}

// GammaResult is a full Figure 7 panel.
type GammaResult struct {
	Title   string
	Buckets []GammaBucket
}

// GammaOptions configures the suspect-set-reduction experiment.
type GammaOptions struct {
	Faults  int      // single-object faults to sample (paper: 1500 sim, 200 testbed)
	Buckets [][2]int // suspect-set-size buckets
	Noise   int
	Seed    int64
}

// SuspectSetReduction reproduces Figure 7 on the controller risk model:
// for each sampled single-object fault, γ = |hypothesis| / |suspect set|,
// bucketed by suspect-set size.
func SuspectSetReduction(env *Env, opts GammaOptions) (*GammaResult, error) {
	if opts.Faults <= 0 {
		opts.Faults = 200
	}
	if opts.Buckets == nil {
		opts.Buckets = [][2]int{{1, 10}, {10, 50}, {50, 100}, {100, 500}, {500, 1000}}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	candidates := env.Index.Objects()
	model := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})

	sums := make([]float64, len(opts.Buckets))
	counts := make([]int, len(opts.Buckets))
	for i := 0; i < opts.Faults; i++ {
		sc, err := workload.NewScenario(rng, candidates, 1, opts.Noise)
		if err != nil {
			return nil, err
		}
		ov := risk.NewOverlay(model)
		workload.ApplyToControllerModel(ov, env.Deployment, env.Index, sc, rng)
		suspects := len(ov.SuspectSet())
		if suspects == 0 {
			continue
		}
		res := localize.Scout(ov, localize.SetOracle(sc.Changed))
		gamma := float64(len(res.Hypothesis)) / float64(suspects)
		for bi, b := range opts.Buckets {
			if suspects >= b[0] && suspects < b[1] {
				sums[bi] += gamma
				counts[bi]++
				break
			}
		}
	}

	out := &GammaResult{Title: fmt.Sprintf("suspect-set reduction (%d faults)", opts.Faults)}
	for bi, b := range opts.Buckets {
		gb := GammaBucket{Lo: b[0], Hi: b[1], Samples: counts[bi]}
		if counts[bi] > 0 {
			gb.MeanGamma = sums[bi] / float64(counts[bi])
		}
		out.Buckets = append(out.Buckets, gb)
	}
	return out, nil
}

// Render returns the γ result as an aligned text table.
func (r *GammaResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %10s %10s\n", r.Title, "#suspects", "gamma", "samples")
	for _, gb := range r.Buckets {
		fmt.Fprintf(&b, "%6d-%-7d %10.4f %10d\n", gb.Lo, gb.Hi, gb.MeanGamma, gb.Samples)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Scalability (§VI-B): SCOUT runtime vs network size.
// ---------------------------------------------------------------------------

// ScalePoint is one scalability measurement.
type ScalePoint struct {
	Switches     int
	Elements     int
	Risks        int
	BuildSecs    float64
	LocalizeSecs float64
}

// ScaleResult is the scalability sweep output.
type ScaleResult struct {
	Points []ScalePoint
}

// ScaleSpec builds a workload spec that grows linearly with the switch
// count, mirroring the paper's methodology of scaling the 10-switch
// cluster policy by adding EPG-and-switch pairs up to 500 switches.
func ScaleSpec(switches int) workload.Spec {
	s := workload.ProductionSpec()
	s.Name = fmt.Sprintf("scale-%d", switches)
	s.Switches = switches
	s.EPGs = 20 * switches
	s.Contracts = 12 * switches
	s.TargetPairs = 300 * switches
	return s
}

// Scalability measures controller-risk-model construction and SCOUT
// runtime at each switch count.
func Scalability(switchCounts []int, faults int, seed int64) (*ScaleResult, error) {
	if faults <= 0 {
		faults = 5
	}
	out := &ScaleResult{}
	for _, n := range switchCounts {
		env, err := NewEnv(ScaleSpec(n), seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(n)))
		start := time.Now()
		model := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})
		build := time.Since(start)

		sc, err := workload.NewScenario(rng, env.Index.Objects(), faults, 10)
		if err != nil {
			return nil, err
		}
		workload.ApplyToControllerModel(model, env.Deployment, env.Index, sc, rng)

		start = time.Now()
		localize.Scout(model, localize.SetOracle(sc.Changed))
		loc := time.Since(start)

		out.Points = append(out.Points, ScalePoint{
			Switches:     n,
			Elements:     model.NumElements(),
			Risks:        model.NumRisks(),
			BuildSecs:    build.Seconds(),
			LocalizeSecs: loc.Seconds(),
		})
	}
	return out, nil
}

// Render returns the scalability sweep as an aligned text table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %8s %12s %14s\n",
		"switches", "elements", "risks", "build-secs", "localize-secs")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10d %10d %8d %12.3f %14.3f\n",
			p.Switches, p.Elements, p.Risks, p.BuildSecs, p.LocalizeSecs)
	}
	return b.String()
}
