// Figure 10: testbed accuracy, measured through the full end-to-end
// pipeline — fabric deployment, TCAM fault injection, BDD equivalence
// checking, risk-model augmentation, and localization — rather than
// model-level fault simulation. This mirrors the paper's hardware-testbed
// methodology (§VI-A) on the simulated fabric.

package eval

import (
	"math/rand"

	"scout/internal/compile"
	"scout/internal/equiv"
	"scout/internal/fabric"
	"scout/internal/faultlog"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/risk"
	"scout/internal/topo"
	"scout/internal/workload"
)

// TestbedOptions configures the end-to-end testbed experiment.
type TestbedOptions struct {
	MaxFaults int // paper: 10
	Runs      int // paper: 10
	Noise     int // healthy objects with recent change-log entries
	Seed      int64
}

// TestbedAccuracy reproduces Figure 10: SCOUT vs SCORE-1 on the testbed
// policy with up to MaxFaults simultaneous object faults, run through the
// complete pipeline.
func TestbedAccuracy(spec workload.Spec, opts TestbedOptions) (*AccuracyResult, error) {
	if opts.MaxFaults <= 0 {
		opts.MaxFaults = 10
	}
	if opts.Runs <= 0 {
		opts.Runs = 10
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	pol, tp, err := workload.Generate(spec, opts.Seed)
	if err != nil {
		return nil, err
	}

	res := &AccuracyResult{Title: "testbed end-to-end"}
	curves := []AccuracyCurve{{Name: "SCOUT"}, {Name: "SCORE-1"}}
	for n := 1; n <= opts.MaxFaults; n++ {
		var sumP, sumR [2]float64
		for run := 0; run < opts.Runs; run++ {
			accs, err := testbedRun(pol, tp, rng, n, opts.Noise)
			if err != nil {
				return nil, err
			}
			for i := range accs {
				sumP[i] += accs[i].Precision
				sumR[i] += accs[i].Recall
			}
		}
		for i := range curves {
			curves[i].Points = append(curves[i].Points, AccuracyPoint{
				Faults:    n,
				Precision: sumP[i] / float64(opts.Runs),
				Recall:    sumR[i] / float64(opts.Runs),
			})
		}
	}
	res.Curves = curves
	return res, nil
}

// testbedRun executes one end-to-end experiment: deploy the policy onto a
// fresh fabric, inject n object faults into the TCAMs, collect and check
// every switch, augment the controller risk model, and localize with both
// SCOUT and SCORE-1, scoring against the ground truth.
func testbedRun(pol *policy.Policy, tp *topo.Topology, rng *rand.Rand, n, noise int) ([2]localize.Accuracy, error) {
	var out [2]localize.Accuracy
	f, err := fabric.New(pol, tp, fabric.Options{Seed: rng.Int63()})
	if err != nil {
		return out, err
	}
	since := f.Now()
	if err := f.Deploy(); err != nil {
		return out, err
	}
	d := f.Deployment()

	// Sample the fault scenario among deployed objects.
	candidates := deployedObjects(d)
	sc, err := workload.NewScenario(rng, candidates, n, 0)
	if err != nil {
		return out, err
	}
	for _, flt := range sc.Faults {
		if _, err := f.InjectObjectFault(flt.Ref, flt.Fraction); err != nil {
			return out, err
		}
	}
	// Noise: healthy objects with recent change-log entries.
	perm := rng.Perm(len(candidates))
	noisy := 0
	truth := object.NewSet(sc.GroundTruth...)
	for _, i := range perm {
		if noisy >= noise {
			break
		}
		if truth.Has(candidates[i]) {
			continue
		}
		f.RecordChange(faultlog.OpModify, candidates[i], "unrelated operator action")
		noisy++
	}

	// Full pipeline: check every switch, augment the controller model.
	checker := equiv.NewChecker()
	model := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	for _, sw := range tp.Switches() {
		deployed, err := f.CollectTCAM(sw)
		if err != nil {
			return out, err
		}
		rep, err := checker.Check(d.RulesFor(sw), deployed)
		if err != nil {
			return out, err
		}
		if !rep.Equivalent {
			risk.AugmentControllerModel(model, sw, rep.MissingRules, d.Provenance)
		}
	}

	oracle := localize.ChangeLogOracle{Log: f.ChangeLog(), Since: since}
	out[0] = localize.Scout(model, oracle).Evaluate(sc.GroundTruth)
	out[1] = localize.Score(model, 1.0).Evaluate(sc.GroundTruth)
	return out, nil
}

// deployedObjects lists the distinct policy objects with deployed rules.
func deployedObjects(d *compile.Deployment) []object.Ref {
	set := make(object.Set)
	for _, refs := range d.Provenance {
		for _, ref := range refs {
			set.Add(ref)
		}
	}
	return set.Sorted()
}
