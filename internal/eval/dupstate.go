// Duplicate-switch state construction, shared by the fold-share
// experiment and the check-dedup regression tests: generated workloads
// produce all-distinct per-switch rule lists, so states with
// duplicated-fingerprint switches — the input whole-switch check dedup
// collapses — are built by cloning.

package eval

import (
	"sort"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/rule"
)

// CloneOffset is the switch-ID offset DuplicateSwitches gives clone
// switches, far above generated topology IDs.
const CloneOffset = 100000

// DuplicateSwitches returns copies of the deployment and TCAM state
// extended with byte-equal clone switches: every other switch (even
// ranks in ascending ID order) gets a twin at ID+CloneOffset sharing
// its logical rule list, its TCAM snapshot, and its pair-rule index
// entries — so each twin fingerprint-matches its original on both the
// logical and TCAM side. The inputs are not mutated; the returned
// deployment and TCAM own fresh maps (sharing the underlying rule
// slices). The third result is the number of clones added.
func DuplicateSwitches(d *compile.Deployment, tcam map[object.ID][]rule.Rule) (*compile.Deployment, map[object.ID][]rule.Rule, int) {
	switches := make([]object.ID, 0, len(tcam))
	for sw := range tcam {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	dup := &compile.Deployment{
		BySwitch:   make(map[object.ID][]rule.Rule, 2*len(d.BySwitch)),
		Provenance: d.Provenance,
		PairRules:  make(map[compile.SwitchPair][]rule.Key, 2*len(d.PairRules)),
	}
	for sw, rules := range d.BySwitch {
		dup.BySwitch[sw] = rules
	}
	for sp, keys := range d.PairRules {
		dup.PairRules[sp] = keys
	}
	dupTCAM := make(map[object.ID][]rule.Rule, 2*len(tcam))
	for sw, rules := range tcam {
		dupTCAM[sw] = rules
	}

	// Group the pair-rule index by switch once, so cloning is linear in
	// |PairRules| instead of one full map scan per clone.
	pairsOf := make(map[object.ID][]compile.SwitchPair, len(d.BySwitch))
	for sp := range d.PairRules {
		pairsOf[sp.Switch] = append(pairsOf[sp.Switch], sp)
	}

	clones := 0
	for i, sw := range switches {
		if i%2 != 0 {
			continue
		}
		clone := sw + CloneOffset
		dup.BySwitch[clone] = d.BySwitch[sw]
		dupTCAM[clone] = tcam[sw]
		for _, sp := range pairsOf[sw] {
			dup.PairRules[compile.SwitchPair{Switch: clone, Pair: sp.Pair}] = d.PairRules[sp]
		}
		clones++
	}
	return dup, dupTCAM, clones
}
