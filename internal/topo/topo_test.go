package topo

import (
	"reflect"
	"testing"

	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
)

func TestAddSwitchIdempotentAndSorted(t *testing.T) {
	tp := New(3, 1)
	tp.AddSwitch(2)
	tp.AddSwitch(2)
	if got := tp.Switches(); !reflect.DeepEqual(got, []object.ID{1, 2, 3}) {
		t.Errorf("Switches = %v", got)
	}
	if tp.NumSwitches() != 3 {
		t.Errorf("NumSwitches = %d", tp.NumSwitches())
	}
}

func TestAttachAndQueries(t *testing.T) {
	tp := New()
	tp.Attach(10, 1)
	tp.Attach(10, 2)
	tp.Attach(20, 2)

	if !tp.HasSwitch(1) || !tp.HasSwitch(2) || tp.HasSwitch(3) {
		t.Error("HasSwitch wrong")
	}
	if got := tp.EPGsOn(2); !reflect.DeepEqual(got, []object.ID{10, 20}) {
		t.Errorf("EPGsOn(2) = %v", got)
	}
	if got := tp.SwitchesHosting(10); !reflect.DeepEqual(got, []object.ID{1, 2}) {
		t.Errorf("SwitchesHosting(10) = %v", got)
	}
	if tp.EPGsOn(99) != nil || tp.SwitchesHosting(99) != nil {
		t.Error("unknown queries should return nil")
	}
	if !tp.Hosts(1, 10) || tp.Hosts(1, 20) {
		t.Error("Hosts wrong")
	}
}

func TestSwitchesForPair(t *testing.T) {
	tp := New()
	tp.Attach(10, 1)
	tp.Attach(10, 2)
	tp.Attach(20, 2)
	tp.Attach(20, 3)

	got := tp.SwitchesForPair(10, 20)
	if !reflect.DeepEqual(got, []object.ID{1, 2, 3}) {
		t.Errorf("SwitchesForPair = %v, want [1 2 3]", got)
	}
	// Same EPG twice: just its switches, no duplicates.
	got = tp.SwitchesForPair(10, 10)
	if !reflect.DeepEqual(got, []object.ID{1, 2}) {
		t.Errorf("SwitchesForPair(10,10) = %v", got)
	}
	if got := tp.SwitchesForPair(98, 99); got != nil {
		t.Errorf("unknown pair footprint = %v, want nil", got)
	}
}

func buildPolicy() *policy.Policy {
	p := policy.New("t")
	p.AddVRF(policy.VRF{ID: 1})
	p.AddEPG(policy.EPG{ID: 10, VRF: 1})
	p.AddEPG(policy.EPG{ID: 20, VRF: 1})
	p.AddEndpoint(policy.Endpoint{ID: 1, EPG: 10, Switch: 5})
	p.AddEndpoint(policy.Endpoint{ID: 2, EPG: 20, Switch: 6})
	p.AddFilter(policy.Filter{ID: 7, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(policy.Contract{ID: 9, Filters: []object.ID{7}})
	p.Bind(10, 20, 9)
	return p
}

func TestFromPolicy(t *testing.T) {
	p := buildPolicy()
	tp := FromPolicy(p)
	if !reflect.DeepEqual(tp.Switches(), []object.ID{5, 6}) {
		t.Errorf("Switches = %v", tp.Switches())
	}
	if !tp.Hosts(5, 10) || !tp.Hosts(6, 20) {
		t.Error("attachments missing")
	}
	if err := tp.Validate(p); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsUnknownSwitch(t *testing.T) {
	p := buildPolicy()
	tp := New(5) // switch 6 missing
	tp.Attach(10, 5)
	if err := tp.Validate(p); err == nil {
		t.Error("Validate should reject endpoint on unknown switch")
	}
}
