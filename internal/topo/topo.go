// Package topo models the physical network topology relevant to policy
// deployment: the set of leaf switches and which EPGs have endpoints
// attached to each switch. The paper's controller pushes the instructions
// for an EPG to exactly the switches that host endpoints of that EPG, so
// this attachment view determines where every logical rule must land.
package topo

import (
	"fmt"
	"sort"

	"scout/internal/object"
	"scout/internal/policy"
)

// Topology is the leaf-switch attachment view of a deployment.
type Topology struct {
	switches []object.ID
	// epgsOn[switch] = set of EPGs with at least one endpoint on switch.
	epgsOn map[object.ID]object.Set
	// switchesOf[epg] = set of switches hosting endpoints of epg.
	switchesOf map[object.ID]object.Set
}

// New creates a topology with the given switch IDs and no attachments.
func New(switches ...object.ID) *Topology {
	t := &Topology{
		epgsOn:     make(map[object.ID]object.Set),
		switchesOf: make(map[object.ID]object.Set),
	}
	for _, s := range switches {
		t.AddSwitch(s)
	}
	return t
}

// FromPolicy builds the topology implied by a policy's endpoint placements.
// Every switch referenced by some endpoint is added automatically.
func FromPolicy(p *policy.Policy) *Topology {
	t := New()
	for _, ep := range p.Endpoints {
		t.AddSwitch(ep.Switch)
		t.Attach(ep.EPG, ep.Switch)
	}
	return t
}

// AddSwitch registers a switch (idempotent).
func (t *Topology) AddSwitch(sw object.ID) {
	if _, ok := t.epgsOn[sw]; ok {
		return
	}
	t.epgsOn[sw] = make(object.Set)
	t.switches = append(t.switches, sw)
	sort.Slice(t.switches, func(i, j int) bool { return t.switches[i] < t.switches[j] })
}

// Attach records that epg has an endpoint on switch sw.
func (t *Topology) Attach(epg, sw object.ID) {
	t.AddSwitch(sw)
	t.epgsOn[sw].Add(object.EPG(epg))
	set, ok := t.switchesOf[epg]
	if !ok {
		set = make(object.Set)
		t.switchesOf[epg] = set
	}
	set.Add(object.Switch(sw))
}

// Switches returns the sorted switch IDs.
func (t *Topology) Switches() []object.ID {
	out := make([]object.ID, len(t.switches))
	copy(out, t.switches)
	return out
}

// NumSwitches returns the number of registered switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// HasSwitch reports whether sw is part of the topology.
func (t *Topology) HasSwitch(sw object.ID) bool {
	_, ok := t.epgsOn[sw]
	return ok
}

// EPGsOn returns the sorted IDs of EPGs with endpoints on switch sw.
func (t *Topology) EPGsOn(sw object.ID) []object.ID {
	set, ok := t.epgsOn[sw]
	if !ok {
		return nil
	}
	return idsOf(set)
}

// SwitchesHosting returns the sorted IDs of switches hosting endpoints of epg.
func (t *Topology) SwitchesHosting(epg object.ID) []object.ID {
	set, ok := t.switchesOf[epg]
	if !ok {
		return nil
	}
	return idsOf(set)
}

// Hosts reports whether switch sw hosts at least one endpoint of epg.
func (t *Topology) Hosts(sw, epg object.ID) bool {
	set, ok := t.epgsOn[sw]
	return ok && set.Has(object.EPG(epg))
}

// SwitchesForPair returns the sorted switches that must carry rules for the
// EPG pair (a, b): every switch hosting endpoints of either EPG. This is
// the deployment footprint of the pair (paper §II-A: EPG instructions go to
// the switches its endpoints connect to).
func (t *Topology) SwitchesForPair(a, b object.ID) []object.ID {
	seen := make(map[object.ID]struct{})
	var out []object.ID
	for _, epg := range [2]object.ID{a, b} {
		for _, sw := range t.SwitchesHosting(epg) {
			if _, dup := seen[sw]; dup {
				continue
			}
			seen[sw] = struct{}{}
			out = append(out, sw)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks that every endpoint in p is attached to a switch known to
// the topology.
func (t *Topology) Validate(p *policy.Policy) error {
	for id, ep := range p.Endpoints {
		if !t.HasSwitch(ep.Switch) {
			return fmt.Errorf("endpoint %d attached to unknown switch %d", id, ep.Switch)
		}
	}
	return nil
}

func idsOf(set object.Set) []object.ID {
	out := make([]object.ID, 0, set.Len())
	for _, r := range set.Sorted() {
		out = append(out, r.ID)
	}
	return out
}
