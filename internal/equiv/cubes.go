// Header-space cube extraction: decoding the difference BDD back into
// TCAM-style rules. The paper's checker "generates a set of missing TCAM
// rules that explains the difference"; MissingSpace produces that set
// directly from the header space, independent of which logical rules the
// difference maps onto. Useful when the logical rule list is unavailable
// (e.g. diffing two collected TCAM snapshots) and as a cross-check of
// the rule-level attribution.

package equiv

import (
	"fmt"

	"scout/internal/bdd"
	"scout/internal/object"
	"scout/internal/rule"
)

// Cube is one maximal don't-care cube of the difference BDD, decoded
// into header fields. A nil/absent constraint means the field is
// unconstrained in the cube.
type Cube struct {
	// VRF, SrcEPG, DstEPG, Proto are exact when the corresponding Has*
	// flag is set; ranges arise only on the port field.
	VRF    object.ID
	SrcEPG object.ID
	DstEPG object.ID
	Proto  rule.Protocol
	PortLo uint16
	PortHi uint16

	HasVRF   bool
	HasSrc   bool
	HasDst   bool
	HasProto bool
}

// String renders the cube like a ternary TCAM entry.
func (c Cube) String() string {
	field := func(has bool, v uint32) string {
		if !has {
			return "*"
		}
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("vrf=%s src=%s dst=%s proto=%s ports=%d-%d",
		field(c.HasVRF, uint32(c.VRF)),
		field(c.HasSrc, uint32(c.SrcEPG)),
		field(c.HasDst, uint32(c.DstEPG)),
		field(c.HasProto, uint32(c.Proto)),
		c.PortLo, c.PortHi)
}

// MaxCubes caps cube enumeration; differences beyond this are truncated
// (the rule-level report in Check has no such cap).
const MaxCubes = 10000

// MissingSpace diffs two rule lists and returns the missing behaviour
// (allowed by a but not by b) as decoded header-space cubes, truncated
// at MaxCubes.
func (c *Checker) MissingSpace(a, b []rule.Rule) ([]Cube, error) {
	aSem, err := c.semantics(a)
	if err != nil {
		return nil, err
	}
	bSem, err := c.semantics(b)
	if err != nil {
		return nil, err
	}
	return c.decodeCubes(c.m.Diff(aSem, bSem)), nil
}

// decodeCubes enumerates the BDD's satisfying cubes and decodes each
// into header fields. BDD cubes are ternary on individual bits; a cube
// with partially-constrained ID fields decodes into the covering value
// range on that field, which for the port field is reported as a range
// and for ID fields is split into exact cubes per enumerated value only
// when fully constrained (partially-constrained ID fields decode as
// unconstrained, a sound over-approximation for display purposes).
func (c *Checker) decodeCubes(n bdd.Node) []Cube {
	var out []Cube
	c.m.AllSat(n, func(lits []bdd.Lit) bool {
		out = append(out, decodeCube(lits))
		return len(out) < MaxCubes
	})
	return out
}

func decodeCube(lits []bdd.Lit) Cube {
	cube := Cube{}
	if v, exact := decodeField(lits, vrfOff, vrfBits); exact {
		cube.VRF = object.ID(v)
		cube.HasVRF = true
	}
	if v, exact := decodeField(lits, srcOff, epgBits); exact {
		cube.SrcEPG = object.ID(v)
		cube.HasSrc = true
	}
	if v, exact := decodeField(lits, dstOff, epgBits); exact {
		cube.DstEPG = object.ID(v)
		cube.HasDst = true
	}
	if v, exact := decodeField(lits, protoOff, protoBits); exact {
		cube.Proto = rule.Protocol(v)
		cube.HasProto = true
	}
	cube.PortLo, cube.PortHi = decodeRange(lits, portOff, portBits)
	return cube
}

// decodeField reads a bit field; exact is false when any bit is a
// don't-care.
func decodeField(lits []bdd.Lit, off, width int) (uint32, bool) {
	v := uint32(0)
	exact := true
	for i := 0; i < width; i++ {
		v <<= 1
		switch lits[off+i] {
		case bdd.LitTrue:
			v |= 1
		case bdd.LitFalse:
		default:
			exact = false
		}
	}
	return v, exact
}

// decodeRange computes the min/max values a ternary bit field covers.
func decodeRange(lits []bdd.Lit, off, width int) (lo, hi uint16) {
	var loV, hiV uint32
	for i := 0; i < width; i++ {
		loV <<= 1
		hiV <<= 1
		switch lits[off+i] {
		case bdd.LitTrue:
			loV |= 1
			hiV |= 1
		case bdd.LitFalse:
		default:
			hiV |= 1
		}
	}
	return uint16(loV), uint16(hiV)
}
