// Rule-set fingerprinting for incremental re-verification: a Session
// caches each switch's equivalence report keyed by the fingerprints of the
// logical and deployed rule lists, so an unchanged switch replays its
// cached report instead of re-running the BDD check.

package equiv

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"scout/internal/object"
	"scout/internal/rule"
)

// Fingerprint returns a 64-bit FNV-1a hash of a rule list. The hash is
// order-sensitive and covers every field that can influence a check report
// — match, action, priority, and provenance — so two lists with equal
// fingerprints produce identical Check output. Collisions are possible in
// principle (64-bit hash) but need ~2^32 distinct rule sets per switch to
// become likely; callers that cannot tolerate that keep the rule lists and
// compare with rule.SlicesEqual instead.
func Fingerprint(rules []rule.Rule) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:8], v)
		h.Write(buf[:8])
	}
	u64(uint64(len(rules)))
	for _, r := range rules {
		m := r.Match
		u32(uint32(m.VRF))
		u32(uint32(m.SrcEPG))
		u32(uint32(m.DstEPG))
		var flags uint32
		if m.WildcardVRF {
			flags |= 1
		}
		if m.WildcardSrc {
			flags |= 2
		}
		if m.WildcardDst {
			flags |= 4
		}
		u32(flags<<16 | uint32(m.Proto))
		u32(uint32(m.PortLo)<<16 | uint32(m.PortHi))
		u32(uint32(r.Action))
		u64(uint64(int64(r.Priority)))
		u64(uint64(len(r.Provenance)))
		for _, ref := range r.Provenance {
			u32(uint32(ref.Kind))
			u32(uint32(ref.ID))
		}
	}
	return h.Sum64()
}

// DeploymentFingerprint hashes a whole deployment's per-switch rule
// lists (in ascending switch-ID order) into one 64-bit key. It is the
// invalidation key for deployment-scoped caches — a Session's shared
// encoding Base persists across runs while the deployment fingerprint is
// unchanged and rebuilds when it moves. The same collision caveat as
// Fingerprint applies.
func DeploymentFingerprint(bySwitch map[object.ID][]rule.Rule) uint64 {
	_, fp := DeploymentFingerprints(bySwitch)
	return fp
}

// DeploymentFingerprints is DeploymentFingerprint exposing its
// intermediate per-switch fingerprints, so a caller that also needs
// those (a Session partitioning switches into replays and re-checks)
// hashes each rule list exactly once.
func DeploymentFingerprints(bySwitch map[object.ID][]rule.Rule) (map[object.ID]uint64, uint64) {
	switches := make([]object.ID, 0, len(bySwitch))
	for sw := range bySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	perSwitch := make(map[object.ID]uint64, len(switches))
	h := fnv.New64a()
	var buf [8]byte
	for _, sw := range switches {
		fp := Fingerprint(bySwitch[sw])
		perSwitch[sw] = fp
		binary.LittleEndian.PutUint64(buf[:], uint64(sw))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], fp)
		h.Write(buf[:])
	}
	return perSwitch, h.Sum64()
}
