// Rule-set fingerprinting for incremental re-verification: a Session
// caches each switch's equivalence report keyed by the fingerprints of the
// logical and deployed rule lists, so an unchanged switch replays its
// cached report instead of re-running the BDD check.

package equiv

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"sort"

	"scout/internal/object"
	"scout/internal/rule"
)

// hasher wraps an FNV-1a stream with the fixed-width writes the
// fingerprints are built from. Match hashing lives here once so
// Fingerprint and SemanticsFingerprint cannot drift apart when
// rule.Match grows a field.
type hasher struct {
	h   hash.Hash64
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (w *hasher) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.h.Write(w.buf[:4])
}

func (w *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.h.Write(w.buf[:8])
}

// match hashes every field of m.
func (w *hasher) match(m rule.Match) {
	w.u32(uint32(m.VRF))
	w.u32(uint32(m.SrcEPG))
	w.u32(uint32(m.DstEPG))
	var flags uint32
	if m.WildcardVRF {
		flags |= 1
	}
	if m.WildcardSrc {
		flags |= 2
	}
	if m.WildcardDst {
		flags |= 4
	}
	w.u32(flags<<16 | uint32(m.Proto))
	w.u32(uint32(m.PortLo)<<16 | uint32(m.PortHi))
}

// Fingerprint returns a 64-bit FNV-1a hash of a rule list. The hash is
// order-sensitive and covers every field that can influence a check report
// — match, action, priority, and provenance — so two lists with equal
// fingerprints produce identical Check output. Collisions are possible in
// principle (64-bit hash) but need ~2^32 distinct rule sets per switch to
// become likely; callers that cannot tolerate that keep the rule lists and
// compare with rule.SlicesEqual instead.
func Fingerprint(rules []rule.Rule) uint64 {
	w := newHasher()
	w.u64(uint64(len(rules)))
	for _, r := range rules {
		w.match(r.Match)
		w.u32(uint32(r.Action))
		w.u64(uint64(int64(r.Priority)))
		w.u64(uint64(len(r.Provenance)))
		for _, ref := range r.Provenance {
			w.u32(uint32(ref.Kind))
			w.u32(uint32(ref.ID))
		}
	}
	return w.h.Sum64()
}

// SemanticsFingerprint canonicalizes an ordered rule list into its
// semantics key: a 64-bit FNV-1a hash of exactly the fields the
// priority-fold consumes — each rule's match and action, in list order.
// Priority and provenance are deliberately excluded: the fold interprets
// the list positionally, so they cannot influence the allowed-set BDD,
// and excluding them lets a logical rule list and its (provenance-free)
// TCAM collection share one semantics key whenever the deployed behaviour
// is intact. Two lists with equal semantics fingerprints fold to the same
// BDD, which is what lets the frozen base share whole-switch semantics
// roots across switches and across the L/T sides of a consistent switch.
// The keyspace is domain-separated from Fingerprint by a leading tag, so
// the two hashes never alias each other's inputs. The same 64-bit
// collision caveat as Fingerprint applies.
func SemanticsFingerprint(rules []rule.Rule) uint64 {
	w := newHasher()
	w.h.Write([]byte{'s', 'e', 'm'})
	w.u64(uint64(len(rules)))
	for _, r := range rules {
		w.match(r.Match)
		w.u32(uint32(r.Action))
	}
	return w.h.Sum64()
}

// SemanticsEqual reports whether two rule lists are equal under the
// canonical form SemanticsFingerprint hashes: same length, and each
// position's match and action agree (priority and provenance free, like
// the fingerprint). It is the verification the semantics memos run on
// every fingerprint hit, so a 64-bit collision degrades to a private
// fold, never a wrong root.
func SemanticsEqual(a, b []rule.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Match != b[i].Match || a[i].Action != b[i].Action {
			return false
		}
	}
	return true
}

// DeploymentFingerprint hashes a whole deployment's per-switch rule
// lists (in ascending switch-ID order) into one 64-bit key. It is the
// invalidation key for deployment-scoped caches — a Session's shared
// encoding Base persists across runs while the deployment fingerprint is
// unchanged and rebuilds when it moves. The same collision caveat as
// Fingerprint applies.
func DeploymentFingerprint(bySwitch map[object.ID][]rule.Rule) uint64 {
	_, fp := DeploymentFingerprints(bySwitch)
	return fp
}

// DeploymentFingerprints is DeploymentFingerprint exposing its
// intermediate per-switch fingerprints, so a caller that also needs
// those (a Session partitioning switches into replays and re-checks)
// hashes each rule list exactly once.
func DeploymentFingerprints(bySwitch map[object.ID][]rule.Rule) (map[object.ID]uint64, uint64) {
	switches := make([]object.ID, 0, len(bySwitch))
	for sw := range bySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	perSwitch := make(map[object.ID]uint64, len(switches))
	h := fnv.New64a()
	var buf [8]byte
	for _, sw := range switches {
		fp := Fingerprint(bySwitch[sw])
		perSwitch[sw] = fp
		binary.LittleEndian.PutUint64(buf[:], uint64(sw))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], fp)
		h.Write(buf[:])
	}
	return perSwitch, h.Sum64()
}
