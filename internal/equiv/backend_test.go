package equiv

import (
	"math/rand"
	"reflect"
	"testing"

	"scout/internal/bdd"
	"scout/internal/object"
	"scout/internal/rule"
)

// randomRuleList builds a prioritized rule list with mixed exact matches,
// wildcards, and port ranges, ending in a default deny.
func randomRuleList(rng *rand.Rand, n int) []rule.Rule {
	rules := make([]rule.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		r := rule.Rule{
			Match: rule.Match{
				VRF:    object.ID(rng.Intn(4) + 1),
				SrcEPG: object.ID(rng.Intn(6) + 1),
				DstEPG: object.ID(rng.Intn(6) + 1),
				Proto:  rule.ProtoTCP,
				PortLo: uint16(rng.Intn(1000)),
			},
			Action:   rule.Allow,
			Priority: 10,
		}
		r.Match.PortHi = r.Match.PortLo + uint16(rng.Intn(200))
		switch rng.Intn(5) {
		case 0:
			r.Match.WildcardSrc = true
		case 1:
			r.Match.WildcardDst = true
		case 2:
			r.Match.Proto = rule.ProtoAny
		case 3:
			r.Action = rule.Deny
		}
		rules = append(rules, r)
	}
	return append(rules, rule.DefaultDeny())
}

// TestCheckerBackendDifferential runs the same check workload through a
// checker on the open-addressed manager and a checker on the map-backed
// reference, asserting report equality — the property the bddspeed
// experiment scales up to full pipeline runs.
func TestCheckerBackendDifferential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fast := NewChecker()
		ref := NewCheckerBacked(func() Backend { return bdd.NewRefManager(NumVars) })

		for i := 0; i < 12; i++ {
			logical := randomRuleList(rng, 8)
			deployed := randomRuleList(rng, 8)
			if rng.Intn(3) == 0 {
				deployed = logical // equivalent case
			}
			got, err := fast.Check(logical, deployed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Check(logical, deployed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d check %d: reports diverged\nfast: %+v\nref:  %+v", seed, i, got, want)
			}
		}
		// Node construction totals must agree too: the engines build the
		// same nodes, not just the same answers.
		if fast.Size() != ref.Size() {
			t.Fatalf("seed %d: node counts diverged: fast %d, ref %d", seed, fast.Size(), ref.Size())
		}
	}
}

// TestCheckerCompactPreservesReports pins the checker-level compaction
// contract: after Compact, re-checking already-seen switches still hits
// the (remapped) memos and yields identical reports.
func TestCheckerCompactPreservesReports(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := NewBase(nil)
	for _, c := range []*Checker{NewChecker(), base.NewChecker()} {
		var lists [][2][]rule.Rule
		var reports []*Report
		for i := 0; i < 8; i++ {
			logical := randomRuleList(rng, 10)
			deployed := randomRuleList(rng, 10)
			rep, err := c.Check(logical, deployed)
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, [2][]rule.Rule{logical, deployed})
			reports = append(reports, rep)
		}

		preStats := c.Stats()
		_, ok := c.Compact()
		if !ok {
			t.Fatal("Compact refused on a Manager-backed checker")
		}
		if got := c.Stats(); got.Compactions != preStats.Compactions+1 {
			t.Fatalf("Compactions counter = %d, want %d", got.Compactions, preStats.Compactions+1)
		}

		for i, pair := range lists {
			rep, err := c.Check(pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, reports[i]) {
				t.Fatalf("report %d changed after Compact:\nbefore: %+v\nafter:  %+v", i, reports[i], rep)
			}
		}
		// Every re-check must resolve its semantics from memo — the warm
		// state Compact exists to keep.
		post := c.Stats()
		if post.FoldMisses != preStats.FoldMisses {
			t.Fatalf("re-checks after Compact re-folded semantics: %d -> %d misses",
				preStats.FoldMisses, post.FoldMisses)
		}
	}
}

// TestCheckerCompactShrinksDelta pins that compaction actually sheds
// dead intermediates on a fold-heavy workload.
func TestCheckerCompactShrinksDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := NewChecker()
	for i := 0; i < 16; i++ {
		if _, err := c.Check(randomRuleList(rng, 12), randomRuleList(rng, 12)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.DeltaSize()
	st, ok := c.Compact()
	if !ok {
		t.Fatal("Compact refused")
	}
	if st.Dropped == 0 || c.DeltaSize() >= before {
		t.Fatalf("compaction shed nothing: before %d, after %d (%+v)", before, c.DeltaSize(), st)
	}
}

// TestRefBackedCheckerCompactNoop: the reference backend cannot compact;
// the call must refuse gracefully and change nothing.
func TestRefBackedCheckerCompactNoop(t *testing.T) {
	c := NewCheckerBacked(func() Backend { return bdd.NewRefManager(NumVars) })
	if _, err := c.Check(randomRuleList(rand.New(rand.NewSource(1)), 5), randomRuleList(rand.New(rand.NewSource(2)), 5)); err != nil {
		t.Fatal(err)
	}
	size := c.Size()
	if _, ok := c.Compact(); ok {
		t.Fatal("Compact claimed success on the reference backend")
	}
	if c.Size() != size {
		t.Fatalf("no-op Compact changed Size: %d -> %d", size, c.Size())
	}
}
