// Shared encoding base for the check-stage fan-out: the distinct
// rule.Matches of a deployment are encoded exactly once into one BDD
// manager, which is then frozen into an immutable snapshot that every
// worker's checker forks. Without it, each check-stage worker owns a
// private manager and re-derives every match encoding shared across its
// switches — duplicated node construction that grows with the worker
// count and eats the parallel speedup (the ROADMAP measured ~2.5x
// duplicated work at 4 workers on the production spec).

package equiv

import (
	"sort"

	"scout/internal/bdd"
	"scout/internal/rule"
)

// Base is a frozen, immutable encoding base: a BDD snapshot holding the
// warmed match encodings plus the memo mapping each match to its frozen
// node. A Base is safe for concurrent use by any number of checker forks
// — nothing ever mutates it; build a new Base when the deployment's rule
// matches change.
type Base struct {
	snap     *bdd.Snapshot
	matchMem map[rule.Match]bdd.Node
}

// NewBase encodes each match once, in the given order, and freezes the
// result. Matches that cannot be encoded (out-of-range IDs, inverted
// port ranges) are skipped rather than failing the build: the base is a
// cache, and the per-switch check that owns the offending rule reports
// the error with proper switch attribution.
//
// Callers wanting a deterministic base across processes should pass the
// matches in a canonical order (SortMatches); within one process any
// order yields an equivalent base.
func NewBase(matches []rule.Match) *Base {
	m := bdd.NewManager(NumVars)
	mem := make(map[rule.Match]bdd.Node, len(matches))
	for _, match := range matches {
		if _, ok := mem[match]; ok {
			continue
		}
		n, err := buildMatchBDD(m, match)
		if err != nil {
			continue
		}
		mem[match] = n
	}
	return &Base{snap: m.Freeze(), matchMem: mem}
}

// NewChecker forks the base: the returned checker resolves every warmed
// match from the base's frozen memo and builds only novel encodings (and
// per-check fold structure) in its private copy-on-write delta. Forking
// is O(1); use one fork per worker goroutine.
func (b *Base) NewChecker() *Checker {
	return &Checker{
		m:        bdd.NewManagerFrom(b.snap),
		base:     b,
		matchMem: make(map[rule.Match]bdd.Node, 1024),
	}
}

// Size returns the number of frozen BDD nodes in the base.
func (b *Base) Size() int { return b.snap.Size() }

// NumMatches returns the number of warmed match encodings.
func (b *Base) NumMatches() int { return len(b.matchMem) }

// CollectMatches adds the distinct matches of rules into set — the
// warmup pass's gather step, run per switch (concurrently over private
// sets) before the merged result is encoded into a Base.
func CollectMatches(set map[rule.Match]struct{}, rules []rule.Rule) {
	for _, r := range rules {
		set[r.Match] = struct{}{}
	}
}

// SortMatches orders matches canonically (field-by-field), making a
// Base build reproducible for a given match set.
func SortMatches(matches []rule.Match) {
	sort.Slice(matches, func(i, j int) bool { return matchLess(matches[i], matches[j]) })
}

func matchLess(a, b rule.Match) bool {
	if a.VRF != b.VRF {
		return a.VRF < b.VRF
	}
	if a.SrcEPG != b.SrcEPG {
		return a.SrcEPG < b.SrcEPG
	}
	if a.DstEPG != b.DstEPG {
		return a.DstEPG < b.DstEPG
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.PortLo != b.PortLo {
		return a.PortLo < b.PortLo
	}
	if a.PortHi != b.PortHi {
		return a.PortHi < b.PortHi
	}
	if a.WildcardVRF != b.WildcardVRF {
		return b.WildcardVRF
	}
	if a.WildcardSrc != b.WildcardSrc {
		return b.WildcardSrc
	}
	return !a.WildcardDst && b.WildcardDst
}

// EncodeStats aggregates the encoding work behind one analysis run:
// where the BDD nodes live (shared base vs per-checker deltas) and where
// match encodings were resolved from. It is the assertion surface for
// the shared-base design — cross-worker duplicated node construction
// shows up as DeltaNodes growth with the worker count.
type EncodeStats struct {
	// Checkers is the number of checkers aggregated (the worker count).
	Checkers int
	// BaseNodes is the size of the shared frozen base; 0 when the run
	// used private per-worker checkers.
	BaseNodes int
	// BaseMatches is the number of match encodings warmed in the base.
	BaseMatches int
	// DeltaNodes sums every checker's private node count.
	DeltaNodes int
	// BaseHits, LocalHits, and Misses sum the checkers' cumulative
	// encoding counters (see CheckerStats).
	BaseHits  int
	LocalHits int
	Misses    int
}

// TotalNodes is the run's total BDD node construction: the shared base
// (built once) plus every private delta.
func (s *EncodeStats) TotalNodes() int { return s.BaseNodes + s.DeltaNodes }

// Hits is the total memo-resolved encodings (base + local).
func (s *EncodeStats) Hits() int { return s.BaseHits + s.LocalHits }

// AggregateEncodeStats sums the encoding counters of a run's checkers
// over their shared base (nil for private-checker runs). Nil checker
// slots (workers that never started) are skipped.
func AggregateEncodeStats(base *Base, checkers []*Checker) *EncodeStats {
	st := &EncodeStats{}
	if base != nil {
		st.BaseNodes = base.Size()
		st.BaseMatches = base.NumMatches()
	}
	for _, c := range checkers {
		if c == nil {
			continue
		}
		st.Checkers++
		st.DeltaNodes += c.DeltaSize()
		cs := c.Stats()
		st.BaseHits += cs.BaseHits
		st.LocalHits += cs.LocalHits
		st.Misses += cs.Misses
	}
	return st
}
