// Shared encoding base for the check-stage fan-out: the distinct
// rule.Matches of a deployment are encoded exactly once into one BDD
// manager — followed by the whole-switch semantics folds of the most
// duplicated rule-list fingerprints — which is then frozen into an
// immutable snapshot that every worker's checker forks. Without it, each
// check-stage worker owns a private manager and re-derives every match
// encoding and every fold shared across its switches — duplicated node
// construction that grows with the worker count and eats the parallel
// speedup (the ROADMAP measured ~2.5x duplicated match work at 4 workers
// on the production spec, and ~6%/worker-doubling residual fold growth
// before semantics warming).

package equiv

import (
	"sort"

	"scout/internal/bdd"
	"scout/internal/object"
	"scout/internal/rule"
)

// Base is a frozen, immutable encoding base: a BDD snapshot holding the
// warmed match encodings and whole-switch semantics roots, plus the
// memos mapping each match — and each canonical rule-list fingerprint —
// to its frozen node. A Base is safe for concurrent use by any number of
// checker forks — nothing ever mutates it; build a new Base when the
// deployment's rules change.
type Base struct {
	snap     *bdd.Snapshot
	matchMem map[rule.Match]bdd.Node
	// semMem entries carry the canonical rule list alongside the frozen
	// root (references to the caller's slices, not copies); checker hits
	// verify against it so fingerprint collisions never alias roots.
	semMem map[uint64]semRoot
}

// NewBase encodes each match once, in the given order, then folds each
// semantics rule list into its whole-list allowed-set BDD (keyed by
// SemanticsFingerprint, duplicates collapsed), and freezes the result.
// Matches or lists that cannot be encoded (out-of-range IDs, inverted
// port ranges) are skipped rather than failing the build: the base is a
// cache, and the per-switch check that owns the offending rule reports
// the error with proper switch attribution.
//
// Callers wanting a deterministic base across processes should pass the
// matches in a canonical order (SortMatches) and the semantics lists in
// a canonical order too (the warmup ranks them by duplication count with
// a fingerprint tiebreak); within one process any order yields an
// equivalent base.
func NewBase(matches []rule.Match, semantics ...[]rule.Rule) *Base {
	b, _ := NewBaseWith(nil, matches, semantics...)
	return b
}

// NewChecker forks the base: the returned checker resolves every warmed
// match and whole-switch semantics root from the base's frozen memos and
// builds only novel encodings and folds in its private copy-on-write
// delta. Forking is O(1); use one fork per worker goroutine. The fork's
// delta tables are pre-sized from the base's observed load; callers with
// an explicit delta budget use NewCheckerSized.
func (b *Base) NewChecker() *Checker {
	return b.newChecker(func() Backend { return bdd.NewManagerFrom(b.snap) })
}

// NewCheckerSized is NewChecker with an explicit delta-node budget: the
// fork's node array and tables are pre-sized for it, so a session
// checker that will be compacted at the budget skips the growth ramp.
// Reset keeps the sizing.
func (b *Base) NewCheckerSized(deltaNodes int) *Checker {
	return b.newChecker(func() Backend { return bdd.NewManagerFromSized(b.snap, deltaNodes) })
}

func (b *Base) newChecker(newM func() Backend) *Checker {
	return &Checker{
		m:        newM(),
		newM:     newM,
		base:     b,
		matchMem: make(map[rule.Match]bdd.Node, 1024),
		semMem:   make(map[uint64]semRoot, 64),
	}
}

// Size returns the number of frozen BDD nodes in the base.
func (b *Base) Size() int { return b.snap.Size() }

// NumMatches returns the number of warmed match encodings.
func (b *Base) NumMatches() int { return len(b.matchMem) }

// NumSemantics returns the number of frozen whole-switch semantics roots.
func (b *Base) NumSemantics() int { return len(b.semMem) }

// RebindSemantics re-points the frozen semantics entries' canonical
// rule-list references at the given deployment's slices, for a caller
// that verified the deployment fingerprint-matches the one the base was
// built from (a session keeping its base across a content-identical
// recompile at a new address). The frozen BDD content is untouched —
// only the collision-verification references move, releasing the
// superseded deployment's rule slices instead of pinning them for the
// base's lifetime (the same retention fix Prober.Rebind applies).
//
// This is the one exception to the base's nothing-ever-mutates-it rule:
// the caller must hold off every checker fork while rebinding (the
// session's run lock does), exactly as it must when replacing the base
// outright.
func (b *Base) RebindSemantics(bySwitch map[object.ID][]rule.Rule) {
	for _, rules := range bySwitch {
		fp := SemanticsFingerprint(rules)
		if e, ok := b.semMem[fp]; ok && SemanticsEqual(e.rules, rules) {
			e.rules = rules
			b.semMem[fp] = e
		}
	}
}

// CollectMatches adds the distinct matches of rules into set — the
// warmup pass's gather step, run per switch (concurrently over private
// sets) before the merged result is encoded into a Base.
func CollectMatches(set map[rule.Match]struct{}, rules []rule.Rule) {
	for _, r := range rules {
		set[r.Match] = struct{}{}
	}
}

// SortMatches orders matches canonically (field-by-field), making a
// Base build reproducible for a given match set.
func SortMatches(matches []rule.Match) {
	sort.Slice(matches, func(i, j int) bool { return matchLess(matches[i], matches[j]) })
}

func matchLess(a, b rule.Match) bool {
	if a.VRF != b.VRF {
		return a.VRF < b.VRF
	}
	if a.SrcEPG != b.SrcEPG {
		return a.SrcEPG < b.SrcEPG
	}
	if a.DstEPG != b.DstEPG {
		return a.DstEPG < b.DstEPG
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.PortLo != b.PortLo {
		return a.PortLo < b.PortLo
	}
	if a.PortHi != b.PortHi {
		return a.PortHi < b.PortHi
	}
	if a.WildcardVRF != b.WildcardVRF {
		return b.WildcardVRF
	}
	if a.WildcardSrc != b.WildcardSrc {
		return b.WildcardSrc
	}
	return !a.WildcardDst && b.WildcardDst
}

// EncodeStats aggregates the encoding work behind one analysis run:
// where the BDD nodes live (shared base vs per-checker deltas) and where
// match encodings were resolved from. It is the assertion surface for
// the shared-base design — cross-worker duplicated node construction
// shows up as DeltaNodes growth with the worker count.
//
// Units caveat for session-produced reports: a session's checkers
// persist across runs, so the hit/miss counters aggregated from them
// are cumulative over the session's lifetime, while DedupGroups and
// DedupReplays describe only the producing run's check plan. Per-run
// encode/fold attribution and cumulative dedup counters both live in
// the session's SessionStats instead.
type EncodeStats struct {
	// Checkers is the number of checkers aggregated (the worker count).
	Checkers int
	// BaseNodes is the size of the shared frozen base; 0 when the run
	// used private per-worker checkers.
	BaseNodes int
	// BaseMatches is the number of match encodings warmed in the base.
	BaseMatches int
	// BaseSemantics is the number of whole-switch semantics roots frozen
	// in the base (the top-K most duplicated rule-list fingerprints).
	BaseSemantics int
	// DeltaNodes sums every checker's private node count.
	DeltaNodes int
	// BaseHits, LocalHits, and Misses sum the checkers' cumulative
	// encoding counters (see CheckerStats).
	BaseHits  int
	LocalHits int
	Misses    int
	// FoldBaseHits, FoldLocalHits, and FoldMisses sum the checkers'
	// whole-list semantics counters: folds resolved from the base's
	// frozen roots, from a checker's own memo, or built from scratch.
	FoldBaseHits  int
	FoldLocalHits int
	FoldMisses    int
	// DedupGroups counts multi-switch check groups — switches sharing
	// both logical- and TCAM-side fingerprints whose equivalence check
	// ran once for the whole group. DedupReplays counts the switches
	// whose verdict was replayed from their group's single check. Zero
	// when the run's checker mode disables dedup (private, naive).
	DedupGroups  int
	DedupReplays int

	// OpCache sums the checkers' BDD operation-cache tier counters
	// (direct-mapped L1 hits, exact-table L2 hits, frozen-base hits,
	// misses). Like the encode counters, cumulative over each checker's
	// lifetime for session-produced reports.
	OpCache bdd.CacheStats

	// Compactions, CompactRetained, and CompactDropped sum the checkers'
	// delta-GC counters: compaction runs and the delta nodes they kept
	// and shed.
	Compactions     int
	CompactRetained int
	CompactDropped  int
}

// TotalNodes is the run's total BDD node construction: the shared base
// (built once) plus every private delta.
func (s *EncodeStats) TotalNodes() int { return s.BaseNodes + s.DeltaNodes }

// Hits is the total memo-resolved encodings (base + local).
func (s *EncodeStats) Hits() int { return s.BaseHits + s.LocalHits }

// FoldHits is the total memo-resolved whole-list folds (base + local).
func (s *EncodeStats) FoldHits() int { return s.FoldBaseHits + s.FoldLocalHits }

// AggregateEncodeStats sums the encoding counters of a run's checkers
// over their shared base (nil for private-checker runs). Nil checker
// slots (workers that never started) are skipped. The dedup counters are
// the fan-out's to fill in — they describe the check plan, not the
// checkers.
func AggregateEncodeStats(base *Base, checkers []*Checker) *EncodeStats {
	st := &EncodeStats{}
	if base != nil {
		st.BaseNodes = base.Size()
		st.BaseMatches = base.NumMatches()
		st.BaseSemantics = base.NumSemantics()
	}
	for _, c := range checkers {
		if c == nil {
			continue
		}
		st.Checkers++
		st.DeltaNodes += c.DeltaSize()
		cs := c.Stats()
		st.BaseHits += cs.BaseHits
		st.LocalHits += cs.LocalHits
		st.Misses += cs.Misses
		st.FoldBaseHits += cs.FoldBaseHits
		st.FoldLocalHits += cs.FoldLocalHits
		st.FoldMisses += cs.FoldMisses
		st.OpCache.Add(cs.Cache)
		st.Compactions += cs.Compactions
		st.CompactRetained += cs.CompactRetained
		st.CompactDropped += cs.CompactDropped
	}
	return st
}
