package equiv

import (
	"strings"
	"testing"

	"scout/internal/rule"
)

func TestMissingSpaceSingleRule(t *testing.T) {
	c := NewChecker()
	logical := withDeny(allowRule(1, 2, 3, 80))
	deployed := withDeny()
	cubes, err := c.MissingSpace(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 1 {
		t.Fatalf("cubes = %d, want 1:\n%v", len(cubes), cubes)
	}
	cube := cubes[0]
	if !cube.HasVRF || cube.VRF != 1 {
		t.Errorf("vrf wrong: %+v", cube)
	}
	if !cube.HasSrc || cube.SrcEPG != 2 || !cube.HasDst || cube.DstEPG != 3 {
		t.Errorf("epgs wrong: %+v", cube)
	}
	if !cube.HasProto || cube.Proto != rule.ProtoTCP {
		t.Errorf("proto wrong: %+v", cube)
	}
	if cube.PortLo != 80 || cube.PortHi != 80 {
		t.Errorf("ports wrong: %+v", cube)
	}
	if !strings.Contains(cube.String(), "vrf=1") {
		t.Errorf("String = %q", cube.String())
	}
}

func TestMissingSpaceEmptyWhenEquivalent(t *testing.T) {
	c := NewChecker()
	l := withDeny(allowRule(1, 2, 3, 80))
	cubes, err := c.MissingSpace(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 0 {
		t.Errorf("equivalent sets must have empty missing space: %v", cubes)
	}
}

func TestMissingSpacePortRange(t *testing.T) {
	// Missing behaviour spans ports [64,127]: a single aligned cube.
	c := NewChecker()
	logical := withDeny(rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 64, PortHi: 127},
		Action: rule.Allow, Priority: 10,
	})
	cubes, err := c.MissingSpace(logical, withDeny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 1 {
		t.Fatalf("aligned range should be one cube, got %d", len(cubes))
	}
	if cubes[0].PortLo != 64 || cubes[0].PortHi != 127 {
		t.Errorf("range = %d-%d, want 64-127", cubes[0].PortLo, cubes[0].PortHi)
	}
}

func TestMissingSpacePartialDeployment(t *testing.T) {
	// Deployed covers [100,105] of logical [100,110]: the missing space
	// is [106,110], decoded across however many cubes, whose union must
	// be exactly that range.
	c := NewChecker()
	logical := withDeny(rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 100, PortHi: 110},
		Action: rule.Allow, Priority: 10,
	})
	deployed := withDeny(rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 100, PortHi: 105},
		Action: rule.Allow, Priority: 10,
	})
	cubes, err := c.MissingSpace(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[uint16]bool)
	for _, cube := range cubes {
		for p := cube.PortLo; ; p++ {
			covered[p] = true
			if p == cube.PortHi {
				break
			}
		}
	}
	for p := uint16(106); p <= 110; p++ {
		if !covered[p] {
			t.Errorf("port %d missing from cubes %v", p, cubes)
		}
	}
	for p := uint16(100); p <= 105; p++ {
		if covered[p] {
			t.Errorf("port %d wrongly in missing space", p)
		}
	}
}

func TestMissingSpaceDirectionality(t *testing.T) {
	// Extra direction: diff(b, a) is the reverse question.
	c := NewChecker()
	a := withDeny(allowRule(1, 2, 3, 80))
	b := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 3, 2, 80))
	missingAB, err := c.MissingSpace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(missingAB) != 0 {
		t.Errorf("a ⊆ b: no missing space, got %v", missingAB)
	}
	missingBA, err := c.MissingSpace(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(missingBA) != 1 || missingBA[0].SrcEPG != 3 {
		t.Errorf("b\\a should be the reverse rule: %v", missingBA)
	}
}
