package equiv

import (
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

func TestFingerprintSensitivity(t *testing.T) {
	base := []rule.Rule{
		allowRule(101, 1, 2, 80, object.Filter(5000)),
		allowRule(101, 2, 1, 80, object.Filter(5000)),
		rule.DefaultDeny(),
	}
	fp := Fingerprint(base)
	if fp != Fingerprint(base) {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint(nil) != Fingerprint([]rule.Rule{}) {
		t.Error("nil and empty lists must fingerprint alike")
	}

	mutate := map[string]func([]rule.Rule){
		"swap order":        func(rs []rule.Rule) { rs[0], rs[1] = rs[1], rs[0] },
		"change port":       func(rs []rule.Rule) { rs[0].Match.PortHi = 81 },
		"change action":     func(rs []rule.Rule) { rs[0].Action = rule.Deny },
		"change priority":   func(rs []rule.Rule) { rs[0].Priority++ },
		"change provenance": func(rs []rule.Rule) { rs[0].Provenance = []object.Ref{object.Filter(5001)} },
		"drop provenance":   func(rs []rule.Rule) { rs[0].Provenance = nil },
		"set wildcard":      func(rs []rule.Rule) { rs[0].Match.WildcardSrc = true },
		"drop rule":         func(rs []rule.Rule) { copy(rs, rs[1:]) }, // truncation handled below
	}
	for name, f := range mutate {
		rs := make([]rule.Rule, len(base))
		for i, r := range base {
			rs[i] = r.Clone()
		}
		f(rs)
		if name == "drop rule" {
			rs = rs[:len(rs)-1]
		}
		if Fingerprint(rs) == fp {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
}

// TestCheckerReset verifies the session lifecycle hooks: Size grows with
// use, Reset returns the checker to cold, and post-Reset reports are
// identical to pre-Reset ones.
func TestCheckerReset(t *testing.T) {
	logical := []rule.Rule{
		allowRule(101, 1, 2, 80),
		allowRule(101, 3, 4, 443),
		rule.DefaultDeny(),
	}
	deployed := []rule.Rule{
		allowRule(101, 1, 2, 80),
		rule.DefaultDeny(),
	}
	c := NewChecker()
	fresh := c.Size()
	before, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() <= fresh {
		t.Errorf("Size after a check = %d, want growth over %d", c.Size(), fresh)
	}
	c.Reset()
	if c.Size() != fresh {
		t.Errorf("Size after Reset = %d, want %d", c.Size(), fresh)
	}
	after, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if before.Equivalent != after.Equivalent || len(before.MissingRules) != len(after.MissingRules) {
		t.Error("Reset changed check results")
	}
	for i := range before.MissingRules {
		if !before.MissingRules[i].Equal(after.MissingRules[i]) {
			t.Errorf("missing rule %d differs after Reset", i)
		}
	}
}
