// Property tests for the semantics-sharing layer: the canonical rule-list
// fingerprint (order sensitivity, field coverage, collision freedom on
// randomized lists) and the identity between frozen whole-switch
// semantics roots and per-fork folds.

package equiv

import (
	"math/rand"
	"reflect"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// randRule draws a rule from a small ID space so randomized lists share
// plenty of matches (the regime semantics sharing targets) while staying
// encodable.
func randRule(rng *rand.Rand) rule.Rule {
	lo := uint16(rng.Intn(1000))
	r := rule.Rule{
		Match: rule.Match{
			VRF:    object.ID(1 + rng.Intn(4)),
			SrcEPG: object.ID(1 + rng.Intn(16)),
			DstEPG: object.ID(1 + rng.Intn(16)),
			Proto:  rule.ProtoTCP,
			PortLo: lo,
			PortHi: lo + uint16(rng.Intn(100)),
		},
		Action:   rule.Allow,
		Priority: 10,
	}
	if rng.Intn(4) == 0 {
		r.Action = rule.Deny
	}
	if rng.Intn(8) == 0 {
		r.Provenance = []object.Ref{object.Filter(object.ID(5000 + rng.Intn(50)))}
	}
	return r
}

func randRuleList(rng *rand.Rand, n int) []rule.Rule {
	rules := make([]rule.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		rules = append(rules, randRule(rng))
	}
	return append(rules, rule.DefaultDeny())
}

// TestSemanticsFingerprintCanonicalization pins what the semantics key
// must and must not see: list order and every match/action field move
// it; priority and provenance — which cannot influence the fold — do
// not, and that indifference is exactly what lets a provenance-free TCAM
// collection share its logical list's key.
func TestSemanticsFingerprintCanonicalization(t *testing.T) {
	base := []rule.Rule{
		allowRule(101, 1, 2, 80, object.Filter(5000)),
		allowRule(101, 2, 1, 80, object.Filter(5000)),
		rule.DefaultDeny(),
	}
	fp := SemanticsFingerprint(base)
	if fp != SemanticsFingerprint(base) {
		t.Fatal("semantics fingerprint not deterministic")
	}
	if SemanticsFingerprint(nil) != SemanticsFingerprint([]rule.Rule{}) {
		t.Error("nil and empty lists must fingerprint alike")
	}
	if fp == Fingerprint(base) {
		t.Error("semantics keyspace must be domain-separated from Fingerprint")
	}

	clone := func() []rule.Rule {
		rs := make([]rule.Rule, len(base))
		for i, r := range base {
			rs[i] = r.Clone()
		}
		return rs
	}

	moves := map[string]func([]rule.Rule){
		"swap order":    func(rs []rule.Rule) { rs[0], rs[1] = rs[1], rs[0] },
		"change vrf":    func(rs []rule.Rule) { rs[0].Match.VRF = 102 },
		"change src":    func(rs []rule.Rule) { rs[0].Match.SrcEPG = 9 },
		"change dst":    func(rs []rule.Rule) { rs[0].Match.DstEPG = 9 },
		"change proto":  func(rs []rule.Rule) { rs[0].Match.Proto = rule.ProtoUDP },
		"change port":   func(rs []rule.Rule) { rs[0].Match.PortHi = 81 },
		"change action": func(rs []rule.Rule) { rs[0].Action = rule.Deny },
		"set wildcard":  func(rs []rule.Rule) { rs[0].Match.WildcardSrc = true },
	}
	for name, f := range moves {
		rs := clone()
		f(rs)
		if SemanticsFingerprint(rs) == fp {
			t.Errorf("%s: semantics fingerprint unchanged", name)
		}
	}
	if SemanticsFingerprint(base[:len(base)-1]) == fp {
		t.Error("drop rule: semantics fingerprint unchanged")
	}

	holds := map[string]func([]rule.Rule){
		"change priority":   func(rs []rule.Rule) { rs[0].Priority++ },
		"change provenance": func(rs []rule.Rule) { rs[0].Provenance = []object.Ref{object.Filter(5001)} },
		"drop provenance":   func(rs []rule.Rule) { rs[0].Provenance = nil },
	}
	for name, f := range holds {
		rs := clone()
		f(rs)
		if SemanticsFingerprint(rs) != fp {
			t.Errorf("%s: semantics fingerprint moved on a fold-invisible field", name)
		}
	}
}

// TestSemanticsFingerprintRandomizedCollisionFree draws many randomized
// rule lists — including order permutations of one list, which are the
// likeliest near-collisions — and requires all structurally distinct
// lists to key distinctly (64 bits make a true collision vanishingly
// unlikely at this scale; one would indicate a hashing bug).
func TestSemanticsFingerprintRandomizedCollisionFree(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	seen := make(map[uint64][]rule.Rule)
	record := func(rs []rule.Rule) {
		fp := SemanticsFingerprint(rs)
		if prev, ok := seen[fp]; ok {
			if !SemanticsEqual(prev, rs) {
				t.Fatalf("semantics fingerprint collision between distinct lists:\n%v\n%v", prev, rs)
			}
			return
		}
		// Copy: some callers reshuffle their slice in place between calls.
		seen[fp] = append([]rule.Rule(nil), rs...)
	}
	for i := 0; i < 2000; i++ {
		record(randRuleList(rng, 1+rng.Intn(12)))
	}
	// Permutations of one list must all key distinctly (order is part of
	// the canonical form).
	perm := randRuleList(rng, 8)
	for i := 0; i < 200; i++ {
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		record(perm)
	}
	if len(seen) < 2000 {
		t.Fatalf("only %d distinct fingerprints recorded; generator degenerate", len(seen))
	}
}

// TestSharedSemanticsIdentity is the fold-sharing identity contract: a
// fork resolving whole-switch semantics from frozen base roots reports
// exactly what a standalone checker (private fold) reports, across
// randomized L/T pairs with every verdict shape, and the warmed folds
// cost the fork nothing (no fold misses, roots frozen in the base).
func TestSharedSemanticsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		logical := randRuleList(rng, 2+rng.Intn(10))
		var deployed []rule.Rule
		switch trial % 3 {
		case 0: // consistent: same semantics, no provenance (the TCAM shape)
			for _, r := range logical {
				c := r.Clone()
				c.Provenance = nil
				deployed = append(deployed, c)
			}
		case 1: // drifted: drop a rule
			for i, r := range logical {
				if i == len(logical)/2 {
					continue
				}
				deployed = append(deployed, r.Clone())
			}
		case 2: // corrupted: a novel match, warmed here via the deployed list
			deployed = append(deployed, logical[0].Clone())
			novel := randRule(rng)
			novel.Match.DstEPG = object.ID(4000 + trial)
			deployed = append(deployed, novel, rule.DefaultDeny())
		}

		base := NewBase(baseMatches(logical), logical, deployed)
		wantRoots := 2
		if SemanticsFingerprint(logical) == SemanticsFingerprint(deployed) {
			wantRoots = 1
		}
		if base.NumSemantics() != wantRoots {
			t.Fatalf("trial %d: base froze %d semantics roots, want %d", trial, base.NumSemantics(), wantRoots)
		}
		fork := base.NewChecker()
		want, err := NewChecker().Check(logical, deployed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fork.Check(logical, deployed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: fork report %+v differs from standalone %+v", trial, got, want)
		}
		st := fork.Stats()
		if st.FoldMisses != 0 {
			t.Errorf("trial %d: fully warmed fork folded %d lists privately", trial, st.FoldMisses)
		}
		if st.FoldBaseHits == 0 {
			t.Errorf("trial %d: fork never hit a frozen semantics root", trial)
		}
		// Delta accounting: every frozen root is base-resident, so
		// resolving it costs the fork no nodes.
		for fp, e := range base.semMem {
			if !fork.m.InBase(e.node) {
				t.Errorf("trial %d: frozen root for fp %x lives outside the base", trial, fp)
			}
		}
	}
}

// TestRebindSemantics: re-pointing the frozen entries at a byte-equal
// deployment's slices keeps every root, swaps the verification
// references (releasing the old slices), and ignores lists the base
// never froze.
func TestRebindSemantics(t *testing.T) {
	listA := withDeny(allowRule(1, 2, 3, 80))
	listB := withDeny(allowRule(1, 3, 2, 443))
	base := NewBase(baseMatches(listA, listB), listA, listB)

	cloneList := func(rs []rule.Rule) []rule.Rule {
		out := make([]rule.Rule, len(rs))
		for i, r := range rs {
			out[i] = r.Clone()
		}
		return out
	}
	newA, newB := cloneList(listA), cloneList(listB)
	novel := withDeny(allowRule(9, 9, 9, 9))
	base.RebindSemantics(map[object.ID][]rule.Rule{1: newA, 2: newB, 3: novel})

	if base.NumSemantics() != 2 {
		t.Fatalf("rebind changed the root count: %d", base.NumSemantics())
	}
	for name, want := range map[string][]rule.Rule{"A": newA, "B": newB} {
		e, ok := base.semMem[SemanticsFingerprint(want)]
		if !ok {
			t.Fatalf("list %s lost its root", name)
		}
		if &e.rules[0] != &want[0] {
			t.Errorf("list %s still references the superseded slice", name)
		}
	}
	// Checks still resolve from the rebound entries.
	fork := base.NewChecker()
	if _, err := fork.Check(listA, newA); err != nil {
		t.Fatal(err)
	}
	if st := fork.Stats(); st.FoldBaseHits != 2 || st.FoldMisses != 0 {
		t.Errorf("rebound roots not hit: %+v", st)
	}
}

// TestSemanticsBaseMissFoldsInDelta covers the copy-on-write side of
// fold sharing: a list absent from the base folds into the fork's
// private delta (counted as a fold miss), repeats hit the fork's local
// memo, and the base stays untouched.
func TestSemanticsBaseMissFoldsInDelta(t *testing.T) {
	logical := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 3, 2, 443))
	drifted := withDeny(allowRule(1, 2, 3, 80))

	base := NewBase(baseMatches(logical, drifted), logical)
	fork := base.NewChecker()
	if _, err := fork.Check(logical, drifted); err != nil {
		t.Fatal(err)
	}
	st := fork.Stats()
	if st.FoldBaseHits != 1 {
		t.Errorf("logical side must hit the frozen root: %+v", st)
	}
	if st.FoldMisses != 1 {
		t.Errorf("drifted side must fold privately: %+v", st)
	}
	if fork.DeltaSize() == 0 {
		t.Error("private fold must allocate delta nodes")
	}
	if base.Size() != base.snap.Size() {
		t.Error("base must be unchanged by fork folds")
	}

	// Re-checking the same pair resolves both sides from memos.
	if _, err := fork.Check(logical, drifted); err != nil {
		t.Fatal(err)
	}
	st2 := fork.Stats()
	if st2.FoldMisses != st.FoldMisses {
		t.Errorf("repeat check re-folded: %+v", st2)
	}
	if st2.FoldLocalHits != st.FoldLocalHits+1 {
		t.Errorf("repeat check must hit the local semantics memo: %+v", st2)
	}

	// Reset discards the local semantics memo with the delta; the frozen
	// roots stay warm.
	fork.Reset()
	if _, err := fork.Check(logical, drifted); err != nil {
		t.Fatal(err)
	}
	st3 := fork.Stats()
	if st3.FoldMisses != st2.FoldMisses+1 {
		t.Errorf("post-Reset check must re-fold the unwarmed list once: %+v", st3)
	}
	if st3.FoldBaseHits != st2.FoldBaseHits+1 {
		t.Errorf("post-Reset check must still hit the frozen root: %+v", st3)
	}
}

// TestNewBaseSkipsUnfoldableLists mirrors the unencodable-match contract
// for whole lists: a list whose rules cannot encode contributes no
// frozen root, and the owning switch's check still reports the error.
func TestNewBaseSkipsUnfoldableLists(t *testing.T) {
	good := withDeny(allowRule(1, 2, 3, 80))
	bad := []rule.Rule{{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, PortLo: 90, PortHi: 80},
		Action: rule.Allow,
	}}
	base := NewBase(baseMatches(good), good, bad, good)
	if base.NumSemantics() != 1 {
		t.Errorf("NumSemantics = %d, want 1 (bad list skipped, duplicate collapsed)", base.NumSemantics())
	}
	fork := base.NewChecker()
	if _, err := fork.Check(bad, nil); err == nil {
		t.Error("fork must still report the encode error for the bad list")
	}
}

// TestSemanticsCollisionFallsThrough forces a fingerprint collision by
// planting a base entry whose stored canonical list disagrees with the
// checker's input: the hit verification must reject it and fold
// privately, producing the correct (standalone-identical) report.
func TestSemanticsCollisionFallsThrough(t *testing.T) {
	listA := withDeny(allowRule(1, 2, 3, 80))
	listB := withDeny(allowRule(1, 2, 3, 443), allowRule(1, 3, 2, 80))

	base := NewBase(baseMatches(listA, listB), listA)
	// Simulate a 64-bit collision: re-key listA's frozen root under
	// listB's fingerprint (whitebox — nothing else can produce one).
	entry := base.semMem[SemanticsFingerprint(listA)]
	delete(base.semMem, SemanticsFingerprint(listA))
	base.semMem[SemanticsFingerprint(listB)] = entry

	fork := base.NewChecker()
	want, err := NewChecker().Check(listB, listA)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fork.Check(listB, listA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("collision reused the wrong root: got %+v, want %+v", got, want)
	}
	st := fork.Stats()
	if st.FoldBaseHits != 0 {
		t.Errorf("colliding entry must not count as a base hit: %+v", st)
	}
	if st.FoldMisses != 2 {
		t.Errorf("both sides must fold privately after the collision: %+v", st)
	}
}
