package equiv

import (
	"math/rand"
	"testing"

	"scout/internal/bdd"
)

// assignBits expands value into a big-endian assignment of width vars
// starting at off (matching the encoders' most-significant-bit-first
// layout).
func assignBits(numVars, off, width int, value uint32) []bool {
	assign := make([]bool, numVars)
	for i := 0; i < width; i++ {
		assign[off+i] = (value>>uint(width-1-i))&1 == 1
	}
	return assign
}

// TestRangeBDDBruteForce brute-forces the three comparator encoders
// against direct enumeration at small widths: every value of the field
// is evaluated against randomized bounds — including inverted (lo > hi)
// and full ([0, max]) ranges — and must agree with the arithmetic
// predicate.
func TestRangeBDDBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, width := range []int{1, 2, 3, 5, 8} {
		max := uint32(1)<<uint(width) - 1
		m := bdd.NewManager(width)
		// Deterministic edge pairs plus randomized ones.
		pairs := [][2]uint32{
			{0, max},           // full range
			{0, 0}, {max, max}, // single-value extremes
			{max, 0}, // fully inverted
		}
		for i := 0; i < 40; i++ {
			pairs = append(pairs, [2]uint32{rng.Uint32() & max, rng.Uint32() & max})
		}
		for _, p := range pairs {
			lo, hi := p[0], p[1]
			le := leBDD(m, 0, width, 0, hi)
			ge := geBDD(m, 0, width, 0, lo)
			rg := rangeBDD(m, 0, width, lo, hi)
			for v := uint32(0); v <= max; v++ {
				assign := assignBits(width, 0, width, v)
				if got, want := m.Eval(le, assign), v <= hi; got != want {
					t.Fatalf("width=%d leBDD(%d): value %d → %v, want %v", width, hi, v, got, want)
				}
				if got, want := m.Eval(ge, assign), v >= lo; got != want {
					t.Fatalf("width=%d geBDD(%d): value %d → %v, want %v", width, lo, v, got, want)
				}
				if got, want := m.Eval(rg, assign), lo <= v && v <= hi; got != want {
					t.Fatalf("width=%d rangeBDD(%d,%d): value %d → %v, want %v", width, lo, hi, v, got, want)
				}
			}
			// Cross-check the satisfying-assignment count arithmetically
			// (exercises the SatCount powers-of-two table on the same
			// structures the extractor walks).
			wantCount := 0.0
			if lo <= hi {
				wantCount = float64(hi - lo + 1)
			}
			if got := m.SatCount(rg); got != wantCount {
				t.Fatalf("width=%d rangeBDD(%d,%d): SatCount = %v, want %v", width, lo, hi, got, wantCount)
			}
		}
	}
}

// TestRangeBDDAtFieldOffset pins the encoders at a nonzero offset inside
// a wider manager (how the checker actually uses them: the port field
// sits at portOff): bits outside the field must be don't-cares.
func TestRangeBDDAtFieldOffset(t *testing.T) {
	const numVars, off, width = 12, 3, 5
	max := uint32(1)<<width - 1
	m := bdd.NewManager(numVars)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		lo, hi := rng.Uint32()&max, rng.Uint32()&max
		rg := rangeBDD(m, off, width, lo, hi)
		for v := uint32(0); v <= max; v++ {
			assign := assignBits(numVars, off, width, v)
			// Scramble the out-of-field bits; they must not matter.
			for j := 0; j < numVars; j++ {
				if j < off || j >= off+width {
					assign[j] = rng.Intn(2) == 0
				}
			}
			if got, want := m.Eval(rg, assign), lo <= v && v <= hi; got != want {
				t.Fatalf("off=%d rangeBDD(%d,%d): value %d → %v, want %v", off, lo, hi, v, got, want)
			}
		}
	}
}
