package equiv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scout/internal/object"
	"scout/internal/rule"
)

func allowRule(vrf, src, dst object.ID, port uint16, prov ...object.Ref) rule.Rule {
	return rule.Rule{
		Match: rule.Match{
			VRF: vrf, SrcEPG: src, DstEPG: dst,
			Proto: rule.ProtoTCP, PortLo: port, PortHi: port,
		},
		Action:     rule.Allow,
		Priority:   10,
		Provenance: prov,
	}
}

func withDeny(rules ...rule.Rule) []rule.Rule {
	return append(rules, rule.DefaultDeny())
}

func TestEquivalentIdenticalSets(t *testing.T) {
	c := NewChecker()
	l := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 3, 2, 80))
	rep, err := c.Check(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent || len(rep.MissingRules) != 0 || len(rep.ExtraRules) != 0 {
		t.Errorf("identical sets must be equivalent: %+v", rep)
	}
}

func TestMissingRuleDetected(t *testing.T) {
	c := NewChecker()
	logical := withDeny(
		allowRule(1, 2, 3, 80, object.Filter(80)),
		allowRule(1, 2, 3, 700, object.Filter(700)),
	)
	deployed := withDeny(allowRule(1, 2, 3, 80))
	rep, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatal("must detect missing rule")
	}
	if len(rep.MissingRules) != 1 || rep.MissingRules[0].Match.PortLo != 700 {
		t.Errorf("MissingRules = %v, want the port-700 rule", rep.MissingRules)
	}
	if len(rep.MissingRules[0].Provenance) == 0 {
		t.Error("missing rules must keep their provenance")
	}
	if len(rep.ExtraRules) != 0 {
		t.Errorf("no extra rules expected, got %v", rep.ExtraRules)
	}
}

func TestExtraRuleDetected(t *testing.T) {
	c := NewChecker()
	logical := withDeny(allowRule(1, 2, 3, 80))
	deployed := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 9, 9, 22))
	rep, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatal("must detect extra behaviour")
	}
	if len(rep.ExtraRules) != 1 || rep.ExtraRules[0].Match.SrcEPG != 9 {
		t.Errorf("ExtraRules = %v", rep.ExtraRules)
	}
}

func TestCorruptedRuleIsMissingPlusExtra(t *testing.T) {
	// A corrupted VRF field: intended behaviour absent AND bogus
	// behaviour present — the checker should flag both.
	c := NewChecker()
	logical := withDeny(allowRule(1, 2, 3, 80))
	deployed := withDeny(allowRule(4097, 2, 3, 80)) // bit 12 flipped
	rep, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent || len(rep.MissingRules) != 1 || len(rep.ExtraRules) != 1 {
		t.Errorf("corruption: missing=%d extra=%d", len(rep.MissingRules), len(rep.ExtraRules))
	}
}

func TestSemanticEquivalenceDespiteDifferentRules(t *testing.T) {
	// Port range [80,81] equals two single-port rules — behaviourally
	// identical even though the key sets differ. The BDD checker must say
	// equivalent; the naive differ (documented limitation) must not.
	c := NewChecker()
	ranged := rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 81},
		Action: rule.Allow, Priority: 10,
	}
	logical := withDeny(ranged)
	deployed := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 2, 3, 81))
	rep, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Error("BDD checker must see through rule-splitting")
	}
	if naive := NaiveCheck(logical, deployed); naive.Equivalent {
		t.Error("naive differ cannot see through rule-splitting (oracle sanity)")
	}
}

func TestPartialRangeOverlapMissing(t *testing.T) {
	// Logical allows ports [100,110]; deployed only [100,105]: missing.
	c := NewChecker()
	logical := withDeny(rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 100, PortHi: 110},
		Action: rule.Allow, Priority: 10,
	})
	deployed := withDeny(rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 100, PortHi: 105},
		Action: rule.Allow, Priority: 10,
	})
	rep, err := c.Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent || len(rep.MissingRules) != 1 {
		t.Errorf("partially-covered range must be missing: %+v", rep)
	}
}

func TestPriorityShadowing(t *testing.T) {
	// A deny above an allow shadows it: semantics = nothing allowed.
	c := NewChecker()
	deny := rule.Rule{
		Match:  rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80},
		Action: rule.Deny, Priority: 20,
	}
	shadowed := []rule.Rule{deny, allowRule(1, 2, 3, 80), rule.DefaultDeny()}
	empty := []rule.Rule{rule.DefaultDeny()}
	rep, err := c.Check(shadowed, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Error("shadowed allow contributes nothing; sets must be equivalent")
	}
}

func TestEmptySets(t *testing.T) {
	c := NewChecker()
	rep, err := c.Check(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Error("two empty rule sets are equivalent")
	}
	rep, err = c.Check(withDeny(allowRule(1, 2, 3, 80)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent || len(rep.MissingRules) != 1 {
		t.Error("allow vs empty must be missing")
	}
}

func TestEncodingRejectsOversizeIDs(t *testing.T) {
	c := NewChecker()
	bad := allowRule(1<<17, 2, 3, 80)
	if _, err := c.Check(withDeny(bad), nil); err == nil {
		t.Error("IDs beyond the bit width must be rejected")
	}
}

func TestWildcardFields(t *testing.T) {
	c := NewChecker()
	anySrc := rule.Rule{
		Match: rule.Match{
			VRF: 1, WildcardSrc: true, DstEPG: 3,
			Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80,
		},
		Action: rule.Allow, Priority: 10,
	}
	specific := withDeny(allowRule(1, 2, 3, 80))
	rep, err := c.Check(withDeny(anySrc), specific)
	if err != nil {
		t.Fatal(err)
	}
	// Wildcard-src allows more than the single src=2 rule.
	if rep.Equivalent {
		t.Error("wildcard src covers strictly more traffic")
	}
	if len(rep.MissingRules) != 1 {
		t.Errorf("the wildcard rule is partially missing: %+v", rep.MissingRules)
	}
	if len(rep.ExtraRules) != 0 {
		t.Errorf("specific ⊆ wildcard, no extra behaviour: %v", rep.ExtraRules)
	}
}

// TestCheckerAgreesWithNaiveOnDisjointRules is the oracle property: when
// every rule has a distinct, non-overlapping match (as compiler output on
// generated workloads does), BDD missing/extra results must exactly equal
// naive key-set differences.
func TestCheckerAgreesWithNaiveOnDisjointRules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Universe of disjoint rules: distinct (src, dst, port-block).
		var universe []rule.Rule
		for i := 0; i < 12; i++ {
			universe = append(universe, allowRule(
				object.ID(1+rng.Intn(2)),
				object.ID(rng.Intn(4)),
				object.ID(4+rng.Intn(4)),
				uint16(1000+i*16), // disjoint ports
			))
		}
		universe = rule.Dedupe(universe)
		pick := func() []rule.Rule {
			var out []rule.Rule
			for _, r := range universe {
				if rng.Intn(2) == 0 {
					out = append(out, r)
				}
			}
			return withDeny(out...)
		}
		logical, deployed := pick(), pick()

		c := NewChecker()
		rep, err := c.Check(logical, deployed)
		if err != nil {
			return false
		}
		naive := NaiveCheck(logical, deployed)
		if rep.Equivalent != naive.Equivalent {
			return false
		}
		return rule.KeySet(rep.MissingRules) != nil &&
			setsEqual(rule.KeySet(rep.MissingRules), rule.KeySet(naive.MissingRules)) &&
			setsEqual(rule.KeySet(rep.ExtraRules), rule.KeySet(naive.ExtraRules))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func setsEqual(a, b map[rule.Key]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func TestMissingPairObjects(t *testing.T) {
	missing := []rule.Rule{
		allowRule(1, 2, 3, 80, object.Filter(80), object.Contract(5)),
		allowRule(1, 3, 2, 80, object.Filter(80), object.Contract(5)),
		allowRule(1, 4, 5, 90, object.Filter(90)),
	}
	got := MissingPairObjects(missing, nil)
	if len(got) != 2 {
		t.Fatalf("pairs = %d, want 2", len(got))
	}
	p23 := got[[2]object.ID{2, 3}]
	if len(p23) != 2 {
		t.Errorf("pair 2-3 objects = %v", p23)
	}
	// Provenance-less rules resolve through the provided index.
	bare := []rule.Rule{allowRule(1, 7, 8, 70)}
	prov := map[rule.Key][]object.Ref{bare[0].Key(): {object.VRF(1)}}
	got = MissingPairObjects(bare, prov)
	if len(got[[2]object.ID{7, 8}]) != 1 {
		t.Error("provenance index not consulted")
	}
	// Without index or provenance the rule is skipped.
	if got := MissingPairObjects([]rule.Rule{allowRule(1, 7, 8, 70)}, nil); len(got) != 0 {
		t.Error("unattributable rules must be skipped")
	}
}

func TestCheckerReuseAcrossChecks(t *testing.T) {
	c := NewChecker()
	l1 := withDeny(allowRule(1, 2, 3, 80))
	l2 := withDeny(allowRule(1, 2, 3, 81))
	for i := 0; i < 3; i++ {
		r1, err := c.Check(l1, l1)
		if err != nil || !r1.Equivalent {
			t.Fatalf("iteration %d: %v %v", i, err, r1)
		}
		r2, err := c.Check(l1, l2)
		if err != nil || r2.Equivalent {
			t.Fatalf("iteration %d: reuse broke the checker", i)
		}
	}
}
