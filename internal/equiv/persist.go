// Base persistence and cross-deployment sharing: the introspection
// surface the durable warm-state store serializes a Base through, the
// reconstruction path that revives one from decoded parts, and the
// SemanticsSource hook that lets a base under construction graft frozen
// whole-switch semantics roots out of other deployments' bases instead
// of folding them privately — PR 5's fingerprint-keyed semantics dedup
// generalized across deployments, with the same canonical-list
// verification so a 64-bit collision degrades to a private fold, never
// a wrong root.

package equiv

import (
	"fmt"
	"sort"

	"scout/internal/bdd"
	"scout/internal/rule"
)

// SemanticsSource resolves frozen whole-switch semantics roots built
// elsewhere in the process — the cross-deployment registry implements
// it. ResolveSemantics returns the donor snapshot and the root node of
// the allowed-set BDD for a rule list canonically equal to rules (the
// implementation MUST verify with SemanticsEqual before answering, so
// fingerprint collisions are filtered at the source), or ok == false to
// make the caller fold privately. Implementations must be safe for
// concurrent use: bases for different deployments build concurrently.
type SemanticsSource interface {
	ResolveSemantics(fp uint64, rules []rule.Rule) (snap *bdd.Snapshot, root bdd.Node, ok bool)
}

// BaseBuildStats counts where a base's whole-switch semantics roots
// came from: grafted out of another deployment's frozen base through a
// SemanticsSource, or folded here. Grafts + Folds = distinct semantics
// entries built.
type BaseBuildStats struct {
	SemGrafts int
	SemFolds  int
}

// NewBaseWith is NewBase with a cross-deployment semantics source: each
// distinct rule list is first looked up in src (verified canonical-list
// hit → the donor's frozen BDD is imported node-for-node through the
// manager's unique table, a pure structural copy that skips the whole
// priority fold), and only source misses fold locally. A nil src makes
// it exactly NewBase.
func NewBaseWith(src SemanticsSource, matches []rule.Match, semantics ...[]rule.Rule) (*Base, BaseBuildStats) {
	var stats BaseBuildStats
	m := bdd.NewManager(NumVars)
	mem := make(map[rule.Match]bdd.Node, len(matches))
	encode := func(match rule.Match) (bdd.Node, error) {
		if n, ok := mem[match]; ok {
			return n, nil
		}
		n, err := buildMatchBDD(m, match)
		if err != nil {
			return bdd.False, err
		}
		mem[match] = n
		return n, nil
	}
	for _, match := range matches {
		// Unencodable matches are skipped: the base is a cache.
		_, _ = encode(match)
	}
	semMem := make(map[uint64]semRoot, len(semantics))
	for _, rules := range semantics {
		fp := SemanticsFingerprint(rules)
		if _, ok := semMem[fp]; ok {
			// Duplicate list, or — vanishingly rarely — a colliding one;
			// either way the first owner keeps the slot and a colliding
			// list simply folds in the forks (hits verify the list).
			continue
		}
		if src != nil {
			if donor, droot, ok := src.ResolveSemantics(fp, rules); ok {
				semMem[fp] = semRoot{rules: rules, node: m.Import(donor, droot)}
				stats.SemGrafts++
				continue
			}
		}
		root, err := foldSemantics(m, encode, rules)
		if err != nil {
			continue
		}
		semMem[fp] = semRoot{rules: rules, node: root}
		stats.SemFolds++
	}
	return &Base{snap: m.Freeze(), matchMem: mem, semMem: semMem}, stats
}

// Snapshot returns the base's frozen BDD snapshot (safe for concurrent
// reads; the store's codec walks its node array through NodeAt).
func (b *Base) Snapshot() *bdd.Snapshot { return b.snap }

// ForEachMatch visits every warmed match encoding in canonical
// (SortMatches) order — the deterministic iteration the codec needs to
// produce byte-reproducible files from one base.
func (b *Base) ForEachMatch(fn func(m rule.Match, n bdd.Node)) {
	matches := make([]rule.Match, 0, len(b.matchMem))
	for m := range b.matchMem {
		matches = append(matches, m)
	}
	SortMatches(matches)
	for _, m := range matches {
		fn(m, b.matchMem[m])
	}
}

// ForEachSemantics visits every frozen whole-switch semantics entry —
// its fingerprint key, canonical rule list, and root — in ascending
// fingerprint order (deterministic for the codec, like ForEachMatch).
func (b *Base) ForEachSemantics(fn func(fp uint64, rules []rule.Rule, root bdd.Node)) {
	fps := make([]uint64, 0, len(b.semMem))
	for fp := range b.semMem {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		e := b.semMem[fp]
		fn(fp, e.rules, e.node)
	}
}

// MatchEntry is one decoded match-memo binding for RebuildBase.
type MatchEntry struct {
	Match rule.Match
	Node  bdd.Node
}

// SemEntry is one decoded semantics-memo binding for RebuildBase: the
// canonical rule list and its frozen root. The fingerprint key is not
// part of the entry — RebuildBase recomputes it from the list, so a
// corrupted or stale key in a file can never misfile an entry.
type SemEntry struct {
	Rules []rule.Rule
	Node  bdd.Node
}

// RebuildBase reassembles a Base from a rebuilt snapshot and decoded
// memo entries — the load half of the store's base codec. Every node
// must live in the snapshot and entries must not collide (duplicate
// matches, or rule lists sharing a semantics fingerprint, cannot come
// from a well-formed encode and are rejected as corruption).
func RebuildBase(snap *bdd.Snapshot, matches []MatchEntry, semantics []SemEntry) (*Base, error) {
	if snap.NumVars() != NumVars {
		return nil, fmt.Errorf("equiv: rebuild base: snapshot has %d vars, want %d", snap.NumVars(), NumVars)
	}
	mem := make(map[rule.Match]bdd.Node, len(matches))
	for _, e := range matches {
		if !snap.Contains(e.Node) {
			return nil, fmt.Errorf("equiv: rebuild base: match node %d outside snapshot", e.Node)
		}
		if _, dup := mem[e.Match]; dup {
			return nil, fmt.Errorf("equiv: rebuild base: duplicate match entry")
		}
		mem[e.Match] = e.Node
	}
	semMem := make(map[uint64]semRoot, len(semantics))
	for _, e := range semantics {
		if !snap.Contains(e.Node) {
			return nil, fmt.Errorf("equiv: rebuild base: semantics node %d outside snapshot", e.Node)
		}
		fp := SemanticsFingerprint(e.Rules)
		if _, dup := semMem[fp]; dup {
			return nil, fmt.Errorf("equiv: rebuild base: duplicate semantics fingerprint %#x", fp)
		}
		semMem[fp] = semRoot{rules: e.Rules, node: e.Node}
	}
	return &Base{snap: snap, matchMem: mem, semMem: semMem}, nil
}
