package equiv

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// baseMatches extracts the distinct matches of the given rule lists in
// canonical order, the warmup pass in miniature.
func baseMatches(ruleSets ...[]rule.Rule) []rule.Match {
	set := make(map[rule.Match]struct{})
	for _, rules := range ruleSets {
		CollectMatches(set, rules)
	}
	matches := make([]rule.Match, 0, len(set))
	for m := range set {
		matches = append(matches, m)
	}
	SortMatches(matches)
	return matches
}

// TestForkReportMatchesStandalone is the core interchangeability
// contract: a fork of a warmed base and a standalone checker produce
// deeply equal reports on every checker path (equivalent, missing,
// extra, partial overlap).
func TestForkReportMatchesStandalone(t *testing.T) {
	logical := withDeny(
		allowRule(1, 2, 3, 80, object.Filter(9)),
		allowRule(1, 3, 2, 443),
		allowRule(2, 4, 5, 8080),
	)
	deployed := withDeny(
		allowRule(1, 2, 3, 80),
		allowRule(7, 7, 7, 22), // extra
	)

	base := NewBase(baseMatches(logical, deployed))
	fork := base.NewChecker()
	standalone := NewChecker()

	pairs := [][2][]rule.Rule{
		{logical, logical},
		{logical, deployed},
		{deployed, logical},
		{nil, deployed},
	}
	for i, p := range pairs {
		want, err := standalone.Check(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := fork.Check(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("pair %d: fork report %+v differs from standalone %+v", i, got, want)
		}
	}

	// Every match was warmed, so the fork resolved all encodings from
	// the base.
	st := fork.Stats()
	if st.Misses != 0 {
		t.Errorf("fully warmed fork missed %d encodings", st.Misses)
	}
	if st.BaseHits == 0 {
		t.Error("fork never hit the base memo")
	}
}

// TestForkEncodesNovelMatches covers the copy-on-write side: matches
// absent from the base (a corrupted TCAM entry) are encoded into the
// fork's private delta, and only there.
func TestForkEncodesNovelMatches(t *testing.T) {
	logical := withDeny(allowRule(1, 2, 3, 80))
	corrupted := withDeny(allowRule(1, 2, 99, 80)) // dst not in base

	base := NewBase(baseMatches(logical))
	fork := base.NewChecker()

	want, err := NewChecker().Check(logical, corrupted)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fork.Check(logical, corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fork report %+v differs from standalone %+v", got, want)
	}
	if fork.Stats().Misses == 0 {
		t.Error("novel match must count as an encode miss")
	}
	if fork.DeltaSize() == 0 {
		t.Error("novel match must allocate delta nodes")
	}
	if base.Size() != base.snap.Size() {
		t.Error("base must be unchanged by fork work")
	}
}

// TestForkResetKeepsBase: Reset discards only the delta; the base stays
// warm and subsequent checks still hit it.
func TestForkResetKeepsBase(t *testing.T) {
	logical := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 3, 2, 443))
	base := NewBase(baseMatches(logical))
	fork := base.NewChecker()

	if _, err := fork.Check(logical, logical); err != nil {
		t.Fatal(err)
	}
	if fork.DeltaSize() == 0 {
		t.Fatal("check must build fold structure in the delta")
	}
	fork.Reset()
	if fork.DeltaSize() != 0 {
		t.Errorf("Reset left %d delta nodes", fork.DeltaSize())
	}
	if fork.Size() != base.Size() {
		t.Errorf("post-Reset Size = %d, want base size %d", fork.Size(), base.Size())
	}
	before := fork.Stats().BaseHits
	if _, err := fork.Check(logical, logical); err != nil {
		t.Fatal(err)
	}
	if fork.Stats().BaseHits <= before {
		t.Error("post-Reset checks must still hit the base memo")
	}
	if fork.Stats().Misses != 0 {
		t.Errorf("post-Reset checks re-encoded %d warmed matches", fork.Stats().Misses)
	}
}

// TestConcurrentForks runs many forks of one base concurrently (-race
// guards the lock-free shared reads) and checks they all agree with a
// serial standalone checker.
func TestConcurrentForks(t *testing.T) {
	logical := withDeny(
		allowRule(1, 2, 3, 80),
		allowRule(1, 3, 2, 443),
		allowRule(2, 4, 5, 8080),
	)
	deployed := withDeny(allowRule(1, 2, 3, 80), allowRule(1, 3, 2, 443))
	want, err := NewChecker().Check(logical, deployed)
	if err != nil {
		t.Fatal(err)
	}

	base := NewBase(baseMatches(logical, deployed))
	const forks = 8
	var wg sync.WaitGroup
	reports := make([]*Report, forks)
	errs := make([]error, forks)
	for k := 0; k < forks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := base.NewChecker()
			for i := 0; i < 20; i++ {
				reports[k], errs[k] = c.Check(logical, deployed)
				if errs[k] != nil {
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k := 0; k < forks; k++ {
		if errs[k] != nil {
			t.Fatal(errs[k])
		}
		if !reflect.DeepEqual(want, reports[k]) {
			t.Errorf("fork %d report differs from standalone", k)
		}
	}
}

// TestNewBaseSkipsUnencodableMatches: the base is a cache; rules the
// encoding rejects are left to the owning switch's check to report.
func TestNewBaseSkipsUnencodableMatches(t *testing.T) {
	good := rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, PortLo: 80, PortHi: 80}
	inverted := rule.Match{VRF: 1, SrcEPG: 2, DstEPG: 3, PortLo: 90, PortHi: 80}
	base := NewBase([]rule.Match{good, inverted, good})
	if base.NumMatches() != 1 {
		t.Errorf("NumMatches = %d, want 1 (inverted skipped, duplicate collapsed)", base.NumMatches())
	}
	// The fork still surfaces the error when the bad rule is checked.
	fork := base.NewChecker()
	bad := []rule.Rule{{Match: inverted, Action: rule.Allow}}
	if _, err := fork.Check(bad, nil); err == nil {
		t.Error("fork must still report the encode error for the bad rule")
	}
}

// TestSortMatchesTotalOrder: the canonical order is deterministic and
// insensitive to input permutation.
func TestSortMatchesTotalOrder(t *testing.T) {
	matches := []rule.Match{
		{VRF: 2, SrcEPG: 1, DstEPG: 1, PortLo: 0, PortHi: rule.PortMax},
		{VRF: 1, SrcEPG: 9, DstEPG: 1, PortLo: 80, PortHi: 80},
		{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80},
		{VRF: 1, SrcEPG: 2, DstEPG: 3, Proto: rule.ProtoTCP, PortLo: 80, PortHi: 80, WildcardDst: true},
		{WildcardVRF: true, WildcardSrc: true, WildcardDst: true, PortHi: rule.PortMax},
	}
	a := append([]rule.Match(nil), matches...)
	b := []rule.Match{a[4], a[2], a[0], a[3], a[1]}
	SortMatches(a)
	SortMatches(b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sort not canonical:\n%v\n%v", a, b)
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return matchLess(a[i], a[j]) }) {
		t.Error("result not sorted under matchLess")
	}
	for i := 1; i < len(a); i++ {
		if matchLess(a[i], a[i-1]) {
			t.Error("matchLess violates antisymmetry on sorted output")
		}
	}
}

// TestAggregateEncodeStats sums counters across forks and tolerates nil
// slots.
func TestAggregateEncodeStats(t *testing.T) {
	logical := withDeny(allowRule(1, 2, 3, 80))
	base := NewBase(baseMatches(logical))
	f1, f2 := base.NewChecker(), base.NewChecker()
	if _, err := f1.Check(logical, logical); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Check(logical, nil); err != nil {
		t.Fatal(err)
	}
	st := AggregateEncodeStats(base, []*Checker{f1, nil, f2})
	if st.Checkers != 2 {
		t.Errorf("Checkers = %d, want 2", st.Checkers)
	}
	if st.BaseNodes != base.Size() || st.BaseMatches != base.NumMatches() {
		t.Errorf("base counters wrong: %+v", st)
	}
	wantDelta := f1.DeltaSize() + f2.DeltaSize()
	if st.DeltaNodes != wantDelta {
		t.Errorf("DeltaNodes = %d, want %d", st.DeltaNodes, wantDelta)
	}
	if st.TotalNodes() != st.BaseNodes+st.DeltaNodes {
		t.Error("TotalNodes must be base + delta")
	}
	if st.Hits() != st.BaseHits+st.LocalHits {
		t.Error("Hits must be base + local")
	}
	if st.BaseHits == 0 {
		t.Error("warmed checks must register base hits")
	}
}

// TestDeploymentFingerprint: stable under map iteration, sensitive to
// any switch's rule change.
func TestDeploymentFingerprint(t *testing.T) {
	bySwitch := map[object.ID][]rule.Rule{
		1: withDeny(allowRule(1, 2, 3, 80)),
		2: withDeny(allowRule(1, 3, 2, 443)),
		9: nil,
	}
	fp := DeploymentFingerprint(bySwitch)
	for i := 0; i < 10; i++ {
		if DeploymentFingerprint(bySwitch) != fp {
			t.Fatal("fingerprint unstable across calls")
		}
	}
	mutated := map[object.ID][]rule.Rule{
		1: bySwitch[1],
		2: withDeny(allowRule(1, 3, 2, 8443)),
		9: nil,
	}
	if DeploymentFingerprint(mutated) == fp {
		t.Error("rule change must move the fingerprint")
	}
	moved := map[object.ID][]rule.Rule{
		2: bySwitch[1],
		1: bySwitch[2],
		9: nil,
	}
	if DeploymentFingerprint(moved) == fp {
		t.Error("swapping switches' rule lists must move the fingerprint")
	}
}
