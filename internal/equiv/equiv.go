// Package equiv implements the paper's L-T equivalence checker (§III-C):
// it compares the logical rules compiled from the network policy (L-type)
// against the TCAM rules collected from a switch (T-type) by encoding both
// as reduced ordered BDDs and diffing them. When the two differ, the
// checker reports the set of missing rules — logical rules whose behaviour
// should have been deployed in the TCAM but is absent — which become the
// observations that annotate the risk models.
package equiv

import (
	"fmt"

	"scout/internal/bdd"
	"scout/internal/object"
	"scout/internal/rule"
)

// Field bit widths of the packet-classifier encoding. The header space is
// (VRF, source EPG class, destination EPG class, IP protocol, destination
// port), matching the TCAM rule format of the paper's Figure 2.
const (
	vrfBits   = 16
	epgBits   = 16
	protoBits = 8
	portBits  = 16

	vrfOff   = 0
	srcOff   = vrfOff + vrfBits
	dstOff   = srcOff + epgBits
	protoOff = dstOff + epgBits
	portOff  = protoOff + protoBits

	// NumVars is the total number of boolean variables in the encoding.
	NumVars = portOff + portBits
)

// maxID is the largest object ID representable in the encoding.
const maxID = 1<<vrfBits - 1

// Backend is the BDD-manager surface the checker builds on. Its primary
// implementation is *bdd.Manager (open-addressed tables); *bdd.RefManager
// (the map-backed reference) satisfies it too, which is how the bddspeed
// experiment and the differential tests run full checker workloads on
// both engines and compare the reports byte for byte.
type Backend interface {
	NumVars() int
	Var(v int) bdd.Node
	NVar(v int) bdd.Node
	Cube(literals map[int]bool) bdd.Node
	And(a, b bdd.Node) bdd.Node
	Or(a, b bdd.Node) bdd.Node
	Xor(a, b bdd.Node) bdd.Node
	Not(a bdd.Node) bdd.Node
	Diff(a, b bdd.Node) bdd.Node
	OrAll(nodes []bdd.Node) bdd.Node
	Implies(a, b bdd.Node) bool
	Equiv(a, b bdd.Node) bool
	SatCount(n bdd.Node) float64
	AllSat(n bdd.Node, fn func(cube []bdd.Lit) bool)
	Eval(n bdd.Node, assignment []bool) bool
	Size() int
	DeltaSize() int
	InBase(n bdd.Node) bool
	CacheStats() bdd.CacheStats
	ClearCache()
}

// Checker performs BDD-based equivalence checks between rule sets. A
// Checker owns a BDD manager and memoizes per-rule encodings, so reusing
// one Checker across many switches amortizes node construction. Not safe
// for concurrent use.
//
// A checker is either standalone (NewChecker: private manager, every
// encoding built from scratch) or a fork of a shared Base
// (Base.NewChecker): forks resolve match encodings — and, by canonical
// rule-list fingerprint, whole-switch semantics roots — through the
// base's frozen memos first and build only what the base lacks in a
// private copy-on-write delta, so any number of concurrent forks share
// one node pool for the hot encodings and the hot folds.
type Checker struct {
	m Backend
	// newM recreates the manager on Reset with the same kind and sizing
	// the checker was constructed with (standalone, ref-backed, or a
	// fork pre-sized to a delta budget).
	newM     func() Backend
	base     *Base // nil for standalone checkers
	matchMem map[rule.Match]bdd.Node
	// semMem memoizes whole-list semantics roots by SemanticsFingerprint,
	// so a checker re-handed an identical rule list (the same switch
	// re-checked across session runs, or the L and T sides of a
	// consistent switch) skips the entire priority fold. Every hit is
	// verified against the entry's canonical list (SemanticsEqual), so a
	// 64-bit collision costs a private fold, never a wrong root.
	semMem map[uint64]semRoot

	// Encoding counters, cumulative across checks and Resets: baseHits
	// answered by the shared base's frozen memo, localHits by this
	// checker's own memo, misses encoded from scratch.
	baseHits  int
	localHits int
	misses    int

	// Fold counters, the same split for whole-list semantics roots.
	foldBaseHits  int
	foldLocalHits int
	foldMisses    int

	// cacheAcc accumulates the op-cache counters of managers discarded
	// by Reset, so Stats stays cumulative like the encode counters.
	cacheAcc bdd.CacheStats

	// Compaction counters, cumulative: compactions run, delta nodes
	// retained and dropped across them.
	compactions     int
	compactRetained int
	compactDropped  int
}

// semRoot is one memoized whole-list semantics fold: the frozen (or
// delta) root plus a reference to the exact rule list it canonicalizes,
// kept for collision verification on every fingerprint hit.
type semRoot struct {
	rules []rule.Rule
	node  bdd.Node
}

// NewChecker creates a standalone checker with a fresh BDD manager.
func NewChecker() *Checker {
	return NewCheckerBacked(func() Backend { return bdd.NewManager(NumVars) })
}

// NewCheckerBacked creates a standalone checker over a caller-supplied
// manager factory — the hook the differential harness uses to run a real
// checker on the map-backed reference engine. The factory is also used
// by Reset, so the checker keeps its backend kind for life.
func NewCheckerBacked(newM func() Backend) *Checker {
	return &Checker{
		m:        newM(),
		newM:     newM,
		matchMem: make(map[rule.Match]bdd.Node, 1024),
		semMem:   make(map[uint64]semRoot, 64),
	}
}

// Size returns the number of nodes reachable through the checker's BDD
// manager — for forks this includes the shared frozen base. The manager
// never frees nodes, so long-lived checkers (analysis sessions reusing
// one checker per worker across runs) watch DeltaSize and Reset past a
// budget.
func (c *Checker) Size() int { return c.m.Size() }

// DeltaSize returns the number of nodes this checker itself owns: the
// copy-on-write delta beyond the shared base for forks, Size() for
// standalone checkers. Node budgets watch DeltaSize — a fork's Reset can
// only shed its delta, never the base.
func (c *Checker) DeltaSize() int { return c.m.DeltaSize() }

// Stats returns the checker's cumulative encoding counters.
func (c *Checker) Stats() CheckerStats {
	cache := c.cacheAcc
	cache.Add(c.m.CacheStats())
	return CheckerStats{
		BaseHits: c.baseHits, LocalHits: c.localHits, Misses: c.misses,
		FoldBaseHits: c.foldBaseHits, FoldLocalHits: c.foldLocalHits, FoldMisses: c.foldMisses,
		Cache:           cache,
		Compactions:     c.compactions,
		CompactRetained: c.compactRetained, CompactDropped: c.compactDropped,
	}
}

// CheckerStats counts where one checker's match encodings and whole-list
// semantics roots came from.
type CheckerStats struct {
	// BaseHits were answered by the shared base's frozen memo (always 0
	// for standalone checkers).
	BaseHits int
	// LocalHits were answered by the checker's own memo.
	LocalHits int
	// Misses were encoded from scratch into the checker's manager.
	Misses int

	// FoldBaseHits are whole-list semantics roots resolved from the
	// shared base's frozen semantics memo (always 0 standalone).
	FoldBaseHits int
	// FoldLocalHits were answered by the checker's own semantics memo.
	FoldLocalHits int
	// FoldMisses are semantics folds built from scratch in this checker.
	FoldMisses int

	// Cache is the manager's operation-cache tier breakdown (L1/L2/base
	// hits and misses), cumulative across Resets.
	Cache bdd.CacheStats

	// Compactions counts Compact calls that ran a delta GC, with the
	// delta nodes they retained and dropped.
	Compactions     int
	CompactRetained int
	CompactDropped  int
}

// Reset discards the checker's own BDD nodes and memoized match
// encodings, returning it to its freshly constructed state: standalone
// checkers rebuild an empty manager, forks re-fork their shared base and
// lose only the delta. Checks after a Reset produce identical reports —
// only the amortized encoding work is lost. Encoding counters survive.
func (c *Checker) Reset() {
	c.cacheAcc.Add(c.m.CacheStats())
	c.m = c.newM()
	c.matchMem = make(map[rule.Match]bdd.Node, 1024)
	c.semMem = make(map[uint64]semRoot, 64)
}

// Compact runs a delta GC on the checker's manager: every memoized match
// encoding and semantics root is a live root, everything else in the
// delta is dead and dropped, and the memos are remapped to the compacted
// IDs. Unlike Reset it keeps the warm memo state — subsequent checks of
// already-seen switches still hit — while shedding the intermediate
// nodes dead since their folds completed. Reports after a Compact are
// identical; ROBDD canonicity only cares that each memoized function
// keeps a consistent ID, not which ID.
//
// Compact returns false (and does nothing) when the backend does not
// support compaction (the map-backed reference manager).
func (c *Checker) Compact() (bdd.CompactStats, bool) {
	m, ok := c.m.(*bdd.Manager)
	if !ok {
		return bdd.CompactStats{}, false
	}
	roots := make([]bdd.Node, 0, len(c.matchMem)+len(c.semMem))
	for _, n := range c.matchMem {
		roots = append(roots, n)
	}
	for _, e := range c.semMem {
		roots = append(roots, e.node)
	}
	remap, stats := m.CompactDelta(roots)
	for k, n := range c.matchMem {
		c.matchMem[k] = remap.Node(n)
	}
	for k, e := range c.semMem {
		e.node = remap.Node(e.node)
		c.semMem[k] = e
	}
	c.compactions++
	c.compactRetained += stats.Retained
	c.compactDropped += stats.Dropped
	return stats, true
}

// Report is the outcome of one L-T equivalence check.
type Report struct {
	// Equivalent is true when the logical and deployed rules enforce
	// exactly the same behaviour.
	Equivalent bool

	// MissingRules lists the logical rules (with provenance) whose allowed
	// behaviour is at least partially absent from the TCAM. These are the
	// paper's "missing rules" used to augment risk models.
	MissingRules []rule.Rule

	// ExtraRules lists deployed rules that allow behaviour the policy does
	// not permit (e.g. corrupted entries matching the wrong traffic).
	ExtraRules []rule.Rule
}

// Check compares logical rules against deployed rules. Both slices are
// interpreted in match order (priority descending); callers should pass
// them as produced by the compiler and the TCAM snapshot respectively.
func (c *Checker) Check(logical, deployed []rule.Rule) (*Report, error) {
	lAllowed, err := c.semantics(logical)
	if err != nil {
		return nil, fmt.Errorf("encode logical rules: %w", err)
	}
	tAllowed, err := c.semantics(deployed)
	if err != nil {
		return nil, fmt.Errorf("encode deployed rules: %w", err)
	}

	rep := &Report{Equivalent: c.m.Equiv(lAllowed, tAllowed)}
	if rep.Equivalent {
		return rep, nil
	}

	missing := c.m.Diff(lAllowed, tAllowed) // should-allow but doesn't
	extra := c.m.Diff(tAllowed, lAllowed)   // allows but shouldn't

	if missing != bdd.False {
		for _, r := range logical {
			if r.Action != rule.Allow {
				continue
			}
			enc, err := c.encodeMatch(r.Match)
			if err != nil {
				return nil, err
			}
			if c.m.And(enc, missing) != bdd.False {
				rep.MissingRules = append(rep.MissingRules, r.Clone())
			}
		}
	}
	if extra != bdd.False {
		for _, r := range deployed {
			if r.Action != rule.Allow {
				continue
			}
			enc, err := c.encodeMatch(r.Match)
			if err != nil {
				return nil, err
			}
			if c.m.And(enc, extra) != bdd.False {
				rep.ExtraRules = append(rep.ExtraRules, r.Clone())
			}
		}
	}
	return rep, nil
}

// semantics resolves (and memoizes) the whole-list allowed-set BDD of a
// prioritized rule list, keyed by its canonical SemanticsFingerprint: the
// shared base's frozen semantics memo first (whole-switch roots warmed at
// base build time), then the checker's own memo, then a fresh fold into
// the checker's manager. Every memo hit is verified against the entry's
// canonical list, so a fingerprint collision falls through to a private
// fold rather than reusing the wrong root. Resolving through the base is
// what makes checking a switch whose rule list duplicates an
// already-warmed one — or a consistent switch's TCAM side, which shares
// its logical list's semantics key — O(list scan) instead of O(fold).
func (c *Checker) semantics(rules []rule.Rule) (bdd.Node, error) {
	fp := SemanticsFingerprint(rules)
	if c.base != nil {
		if e, ok := c.base.semMem[fp]; ok && SemanticsEqual(e.rules, rules) {
			c.foldBaseHits++
			return e.node, nil
		}
	}
	if e, ok := c.semMem[fp]; ok && SemanticsEqual(e.rules, rules) {
		c.foldLocalHits++
		return e.node, nil
	}
	n, err := foldSemantics(c.m, c.encodeMatch, rules)
	if err != nil {
		return bdd.False, err
	}
	c.foldMisses++
	if _, occupied := c.semMem[fp]; !occupied {
		c.semMem[fp] = semRoot{rules: rules, node: n}
	}
	return n, nil
}

// foldSemantics folds a prioritized rule list into the BDD of packets the
// list allows: the first matching rule decides, so each rule contributes
// only the header space not covered by earlier rules. encode resolves one
// match to its BDD in m (through whatever memo hierarchy the caller has).
//
// Consecutive rules with the same action cannot shadow each other into a
// different outcome, so each maximal same-action run is collapsed with a
// balanced OR reduction before the priority fold — turning the naive
// O(N²) left fold into O(N log N) BDD work for the common all-allow +
// default-deny rule lists.
func foldSemantics(m Backend, encode func(rule.Match) (bdd.Node, error), rules []rule.Rule) (bdd.Node, error) {
	allowed := bdd.False
	covered := bdd.False
	for start := 0; start < len(rules); {
		end := start
		action := rules[start].Action
		for end < len(rules) && rules[end].Action == action {
			end++
		}
		run := make([]bdd.Node, 0, end-start)
		for _, r := range rules[start:end] {
			enc, err := encode(r.Match)
			if err != nil {
				return bdd.False, err
			}
			run = append(run, enc)
		}
		runUnion := m.OrAll(run)
		if action == rule.Allow {
			allowed = m.Or(allowed, m.Diff(runUnion, covered))
		}
		covered = m.Or(covered, runUnion)
		start = end
	}
	return allowed, nil
}

// encodeMatch resolves (and memoizes) the BDD of header tuples covered
// by m: the shared base's frozen memo first (node IDs from the base are
// valid in every fork), then the checker's own memo, then a fresh encode
// into the checker's manager.
func (c *Checker) encodeMatch(m rule.Match) (bdd.Node, error) {
	if c.base != nil {
		if n, ok := c.base.matchMem[m]; ok {
			c.baseHits++
			return n, nil
		}
	}
	if n, ok := c.matchMem[m]; ok {
		c.localHits++
		return n, nil
	}
	n, err := buildMatchBDD(c.m, m)
	if err != nil {
		return bdd.False, err
	}
	c.misses++
	c.matchMem[m] = n
	return n, nil
}

// buildMatchBDD builds the BDD of header tuples covered by match in m.
func buildMatchBDD(m Backend, match rule.Match) (bdd.Node, error) {
	n := bdd.True
	if !match.WildcardVRF {
		if match.VRF > maxID {
			return bdd.False, fmt.Errorf("vrf id %d exceeds %d-bit encoding", match.VRF, vrfBits)
		}
		n = m.And(n, equalsBDD(m, vrfOff, vrfBits, uint32(match.VRF)))
	}
	if !match.WildcardSrc {
		if match.SrcEPG > maxID {
			return bdd.False, fmt.Errorf("src epg id %d exceeds %d-bit encoding", match.SrcEPG, epgBits)
		}
		n = m.And(n, equalsBDD(m, srcOff, epgBits, uint32(match.SrcEPG)))
	}
	if !match.WildcardDst {
		if match.DstEPG > maxID {
			return bdd.False, fmt.Errorf("dst epg id %d exceeds %d-bit encoding", match.DstEPG, epgBits)
		}
		n = m.And(n, equalsBDD(m, dstOff, epgBits, uint32(match.DstEPG)))
	}
	if match.Proto != rule.ProtoAny {
		n = m.And(n, equalsBDD(m, protoOff, protoBits, uint32(match.Proto)))
	}
	if !(match.PortLo == 0 && match.PortHi == rule.PortMax) {
		if match.PortLo > match.PortHi {
			return bdd.False, fmt.Errorf("inverted port range %d-%d", match.PortLo, match.PortHi)
		}
		n = m.And(n, rangeBDD(m, portOff, portBits, uint32(match.PortLo), uint32(match.PortHi)))
	}
	return n, nil
}

// equalsBDD encodes field == value over width bits starting at variable
// off (most-significant bit at the lowest variable index).
func equalsBDD(m Backend, off, width int, value uint32) bdd.Node {
	lits := make(map[int]bool, width)
	for i := 0; i < width; i++ {
		bit := (value >> uint(width-1-i)) & 1
		lits[off+i] = bit == 1
	}
	return m.Cube(lits)
}

// rangeBDD encodes lo <= field <= hi over width bits starting at off.
func rangeBDD(m Backend, off, width int, lo, hi uint32) bdd.Node {
	return m.And(geBDD(m, off, width, 0, lo), leBDD(m, off, width, 0, hi))
}

// leBDD encodes field <= value considering bits [i, width).
func leBDD(m Backend, off, width, i int, value uint32) bdd.Node {
	if i == width {
		return bdd.True
	}
	v := m.Var(off + i)
	rest := leBDD(m, off, width, i+1, value)
	if (value>>uint(width-1-i))&1 == 1 {
		// bit set: x_i=0 → anything below; x_i=1 → compare remaining bits
		return m.Or(m.Not(v), m.And(v, rest))
	}
	// bit clear: x_i=1 → greater, fail; x_i=0 → compare remaining bits
	return m.And(m.Not(v), rest)
}

// geBDD encodes field >= value considering bits [i, width).
func geBDD(m Backend, off, width, i int, value uint32) bdd.Node {
	if i == width {
		return bdd.True
	}
	v := m.Var(off + i)
	rest := geBDD(m, off, width, i+1, value)
	if (value>>uint(width-1-i))&1 == 1 {
		// bit set: x_i=0 → smaller, fail; x_i=1 → compare remaining bits
		return m.And(v, rest)
	}
	// bit clear: x_i=1 → anything above; x_i=0 → compare remaining bits
	return m.Or(v, m.And(m.Not(v), rest))
}

// NaiveCheck is a key-set differ used as a test oracle and ablation
// baseline: it reports logical rules whose exact Key is absent from the
// deployed set and deployed allow rules absent from the logical set. It is
// sound only when rule matches do not partially overlap (which holds for
// compiler output with disjoint filter port ranges), whereas the BDD
// checker is exact for arbitrary overlaps.
func NaiveCheck(logical, deployed []rule.Rule) *Report {
	depKeys := rule.KeySet(deployed)
	logKeys := rule.KeySet(logical)
	rep := &Report{Equivalent: true}
	for _, r := range logical {
		if r.Action != rule.Allow {
			continue
		}
		if _, ok := depKeys[r.Key()]; !ok {
			rep.MissingRules = append(rep.MissingRules, r.Clone())
		}
	}
	for _, r := range deployed {
		if r.Action != rule.Allow {
			continue
		}
		if _, ok := logKeys[r.Key()]; !ok {
			rep.ExtraRules = append(rep.ExtraRules, r.Clone())
		}
	}
	rep.Equivalent = len(rep.MissingRules) == 0 && len(rep.ExtraRules) == 0
	return rep
}

// MissingPairObjects extracts, from a set of missing rules, the map of
// impacted EPG pairs to the policy objects implicated by each pair's
// missing rules — the augmentation input for the risk models (§III-C).
// Rules without provenance are resolved through prov (keyed by rule Key)
// when available.
func MissingPairObjects(missing []rule.Rule, prov map[rule.Key][]object.Ref) map[[2]object.ID][]object.Ref {
	out := make(map[[2]object.ID][]object.Ref)
	for _, r := range missing {
		p := r.Provenance
		if len(p) == 0 && prov != nil {
			p = prov[r.Key()]
		}
		if len(p) == 0 {
			continue
		}
		a, b := r.Match.SrcEPG, r.Match.DstEPG
		if b < a {
			a, b = b, a
		}
		key := [2]object.ID{a, b}
		out[key] = append(out[key], p...)
	}
	for k, refs := range out {
		set := object.NewSet(refs...)
		out[k] = set.Sorted()
	}
	return out
}
