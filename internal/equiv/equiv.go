// Package equiv implements the paper's L-T equivalence checker (§III-C):
// it compares the logical rules compiled from the network policy (L-type)
// against the TCAM rules collected from a switch (T-type) by encoding both
// as reduced ordered BDDs and diffing them. When the two differ, the
// checker reports the set of missing rules — logical rules whose behaviour
// should have been deployed in the TCAM but is absent — which become the
// observations that annotate the risk models.
package equiv

import (
	"fmt"

	"scout/internal/bdd"
	"scout/internal/object"
	"scout/internal/rule"
)

// Field bit widths of the packet-classifier encoding. The header space is
// (VRF, source EPG class, destination EPG class, IP protocol, destination
// port), matching the TCAM rule format of the paper's Figure 2.
const (
	vrfBits   = 16
	epgBits   = 16
	protoBits = 8
	portBits  = 16

	vrfOff   = 0
	srcOff   = vrfOff + vrfBits
	dstOff   = srcOff + epgBits
	protoOff = dstOff + epgBits
	portOff  = protoOff + protoBits

	// NumVars is the total number of boolean variables in the encoding.
	NumVars = portOff + portBits
)

// maxID is the largest object ID representable in the encoding.
const maxID = 1<<vrfBits - 1

// Checker performs BDD-based equivalence checks between rule sets. A
// Checker owns a BDD manager and memoizes per-rule encodings, so reusing
// one Checker across many switches amortizes node construction. Not safe
// for concurrent use.
//
// A checker is either standalone (NewChecker: private manager, every
// encoding built from scratch) or a fork of a shared Base
// (Base.NewChecker): forks resolve match encodings — and, by canonical
// rule-list fingerprint, whole-switch semantics roots — through the
// base's frozen memos first and build only what the base lacks in a
// private copy-on-write delta, so any number of concurrent forks share
// one node pool for the hot encodings and the hot folds.
type Checker struct {
	m        *bdd.Manager
	base     *Base // nil for standalone checkers
	matchMem map[rule.Match]bdd.Node
	// semMem memoizes whole-list semantics roots by SemanticsFingerprint,
	// so a checker re-handed an identical rule list (the same switch
	// re-checked across session runs, or the L and T sides of a
	// consistent switch) skips the entire priority fold. Every hit is
	// verified against the entry's canonical list (SemanticsEqual), so a
	// 64-bit collision costs a private fold, never a wrong root.
	semMem map[uint64]semRoot

	// Encoding counters, cumulative across checks and Resets: baseHits
	// answered by the shared base's frozen memo, localHits by this
	// checker's own memo, misses encoded from scratch.
	baseHits  int
	localHits int
	misses    int

	// Fold counters, the same split for whole-list semantics roots.
	foldBaseHits  int
	foldLocalHits int
	foldMisses    int
}

// semRoot is one memoized whole-list semantics fold: the frozen (or
// delta) root plus a reference to the exact rule list it canonicalizes,
// kept for collision verification on every fingerprint hit.
type semRoot struct {
	rules []rule.Rule
	node  bdd.Node
}

// NewChecker creates a standalone checker with a fresh BDD manager.
func NewChecker() *Checker {
	return &Checker{
		m:        bdd.NewManager(NumVars),
		matchMem: make(map[rule.Match]bdd.Node, 1024),
		semMem:   make(map[uint64]semRoot, 64),
	}
}

// Size returns the number of nodes reachable through the checker's BDD
// manager — for forks this includes the shared frozen base. The manager
// never frees nodes, so long-lived checkers (analysis sessions reusing
// one checker per worker across runs) watch DeltaSize and Reset past a
// budget.
func (c *Checker) Size() int { return c.m.Size() }

// DeltaSize returns the number of nodes this checker itself owns: the
// copy-on-write delta beyond the shared base for forks, Size() for
// standalone checkers. Node budgets watch DeltaSize — a fork's Reset can
// only shed its delta, never the base.
func (c *Checker) DeltaSize() int { return c.m.DeltaSize() }

// Stats returns the checker's cumulative encoding counters.
func (c *Checker) Stats() CheckerStats {
	return CheckerStats{
		BaseHits: c.baseHits, LocalHits: c.localHits, Misses: c.misses,
		FoldBaseHits: c.foldBaseHits, FoldLocalHits: c.foldLocalHits, FoldMisses: c.foldMisses,
	}
}

// CheckerStats counts where one checker's match encodings and whole-list
// semantics roots came from.
type CheckerStats struct {
	// BaseHits were answered by the shared base's frozen memo (always 0
	// for standalone checkers).
	BaseHits int
	// LocalHits were answered by the checker's own memo.
	LocalHits int
	// Misses were encoded from scratch into the checker's manager.
	Misses int

	// FoldBaseHits are whole-list semantics roots resolved from the
	// shared base's frozen semantics memo (always 0 standalone).
	FoldBaseHits int
	// FoldLocalHits were answered by the checker's own semantics memo.
	FoldLocalHits int
	// FoldMisses are semantics folds built from scratch in this checker.
	FoldMisses int
}

// Reset discards the checker's own BDD nodes and memoized match
// encodings, returning it to its freshly constructed state: standalone
// checkers rebuild an empty manager, forks re-fork their shared base and
// lose only the delta. Checks after a Reset produce identical reports —
// only the amortized encoding work is lost. Encoding counters survive.
func (c *Checker) Reset() {
	if c.base != nil {
		c.m = bdd.NewManagerFrom(c.base.snap)
	} else {
		c.m = bdd.NewManager(NumVars)
	}
	c.matchMem = make(map[rule.Match]bdd.Node, 1024)
	c.semMem = make(map[uint64]semRoot, 64)
}

// Report is the outcome of one L-T equivalence check.
type Report struct {
	// Equivalent is true when the logical and deployed rules enforce
	// exactly the same behaviour.
	Equivalent bool

	// MissingRules lists the logical rules (with provenance) whose allowed
	// behaviour is at least partially absent from the TCAM. These are the
	// paper's "missing rules" used to augment risk models.
	MissingRules []rule.Rule

	// ExtraRules lists deployed rules that allow behaviour the policy does
	// not permit (e.g. corrupted entries matching the wrong traffic).
	ExtraRules []rule.Rule
}

// Check compares logical rules against deployed rules. Both slices are
// interpreted in match order (priority descending); callers should pass
// them as produced by the compiler and the TCAM snapshot respectively.
func (c *Checker) Check(logical, deployed []rule.Rule) (*Report, error) {
	lAllowed, err := c.semantics(logical)
	if err != nil {
		return nil, fmt.Errorf("encode logical rules: %w", err)
	}
	tAllowed, err := c.semantics(deployed)
	if err != nil {
		return nil, fmt.Errorf("encode deployed rules: %w", err)
	}

	rep := &Report{Equivalent: c.m.Equiv(lAllowed, tAllowed)}
	if rep.Equivalent {
		return rep, nil
	}

	missing := c.m.Diff(lAllowed, tAllowed) // should-allow but doesn't
	extra := c.m.Diff(tAllowed, lAllowed)   // allows but shouldn't

	if missing != bdd.False {
		for _, r := range logical {
			if r.Action != rule.Allow {
				continue
			}
			enc, err := c.encodeMatch(r.Match)
			if err != nil {
				return nil, err
			}
			if c.m.And(enc, missing) != bdd.False {
				rep.MissingRules = append(rep.MissingRules, r.Clone())
			}
		}
	}
	if extra != bdd.False {
		for _, r := range deployed {
			if r.Action != rule.Allow {
				continue
			}
			enc, err := c.encodeMatch(r.Match)
			if err != nil {
				return nil, err
			}
			if c.m.And(enc, extra) != bdd.False {
				rep.ExtraRules = append(rep.ExtraRules, r.Clone())
			}
		}
	}
	return rep, nil
}

// semantics resolves (and memoizes) the whole-list allowed-set BDD of a
// prioritized rule list, keyed by its canonical SemanticsFingerprint: the
// shared base's frozen semantics memo first (whole-switch roots warmed at
// base build time), then the checker's own memo, then a fresh fold into
// the checker's manager. Every memo hit is verified against the entry's
// canonical list, so a fingerprint collision falls through to a private
// fold rather than reusing the wrong root. Resolving through the base is
// what makes checking a switch whose rule list duplicates an
// already-warmed one — or a consistent switch's TCAM side, which shares
// its logical list's semantics key — O(list scan) instead of O(fold).
func (c *Checker) semantics(rules []rule.Rule) (bdd.Node, error) {
	fp := SemanticsFingerprint(rules)
	if c.base != nil {
		if e, ok := c.base.semMem[fp]; ok && SemanticsEqual(e.rules, rules) {
			c.foldBaseHits++
			return e.node, nil
		}
	}
	if e, ok := c.semMem[fp]; ok && SemanticsEqual(e.rules, rules) {
		c.foldLocalHits++
		return e.node, nil
	}
	n, err := foldSemantics(c.m, c.encodeMatch, rules)
	if err != nil {
		return bdd.False, err
	}
	c.foldMisses++
	if _, occupied := c.semMem[fp]; !occupied {
		c.semMem[fp] = semRoot{rules: rules, node: n}
	}
	return n, nil
}

// foldSemantics folds a prioritized rule list into the BDD of packets the
// list allows: the first matching rule decides, so each rule contributes
// only the header space not covered by earlier rules. encode resolves one
// match to its BDD in m (through whatever memo hierarchy the caller has).
//
// Consecutive rules with the same action cannot shadow each other into a
// different outcome, so each maximal same-action run is collapsed with a
// balanced OR reduction before the priority fold — turning the naive
// O(N²) left fold into O(N log N) BDD work for the common all-allow +
// default-deny rule lists.
func foldSemantics(m *bdd.Manager, encode func(rule.Match) (bdd.Node, error), rules []rule.Rule) (bdd.Node, error) {
	allowed := bdd.False
	covered := bdd.False
	for start := 0; start < len(rules); {
		end := start
		action := rules[start].Action
		for end < len(rules) && rules[end].Action == action {
			end++
		}
		run := make([]bdd.Node, 0, end-start)
		for _, r := range rules[start:end] {
			enc, err := encode(r.Match)
			if err != nil {
				return bdd.False, err
			}
			run = append(run, enc)
		}
		runUnion := m.OrAll(run)
		if action == rule.Allow {
			allowed = m.Or(allowed, m.Diff(runUnion, covered))
		}
		covered = m.Or(covered, runUnion)
		start = end
	}
	return allowed, nil
}

// encodeMatch resolves (and memoizes) the BDD of header tuples covered
// by m: the shared base's frozen memo first (node IDs from the base are
// valid in every fork), then the checker's own memo, then a fresh encode
// into the checker's manager.
func (c *Checker) encodeMatch(m rule.Match) (bdd.Node, error) {
	if c.base != nil {
		if n, ok := c.base.matchMem[m]; ok {
			c.baseHits++
			return n, nil
		}
	}
	if n, ok := c.matchMem[m]; ok {
		c.localHits++
		return n, nil
	}
	n, err := buildMatchBDD(c.m, m)
	if err != nil {
		return bdd.False, err
	}
	c.misses++
	c.matchMem[m] = n
	return n, nil
}

// buildMatchBDD builds the BDD of header tuples covered by match in m.
func buildMatchBDD(m *bdd.Manager, match rule.Match) (bdd.Node, error) {
	n := bdd.True
	if !match.WildcardVRF {
		if match.VRF > maxID {
			return bdd.False, fmt.Errorf("vrf id %d exceeds %d-bit encoding", match.VRF, vrfBits)
		}
		n = m.And(n, equalsBDD(m, vrfOff, vrfBits, uint32(match.VRF)))
	}
	if !match.WildcardSrc {
		if match.SrcEPG > maxID {
			return bdd.False, fmt.Errorf("src epg id %d exceeds %d-bit encoding", match.SrcEPG, epgBits)
		}
		n = m.And(n, equalsBDD(m, srcOff, epgBits, uint32(match.SrcEPG)))
	}
	if !match.WildcardDst {
		if match.DstEPG > maxID {
			return bdd.False, fmt.Errorf("dst epg id %d exceeds %d-bit encoding", match.DstEPG, epgBits)
		}
		n = m.And(n, equalsBDD(m, dstOff, epgBits, uint32(match.DstEPG)))
	}
	if match.Proto != rule.ProtoAny {
		n = m.And(n, equalsBDD(m, protoOff, protoBits, uint32(match.Proto)))
	}
	if !(match.PortLo == 0 && match.PortHi == rule.PortMax) {
		if match.PortLo > match.PortHi {
			return bdd.False, fmt.Errorf("inverted port range %d-%d", match.PortLo, match.PortHi)
		}
		n = m.And(n, rangeBDD(m, portOff, portBits, uint32(match.PortLo), uint32(match.PortHi)))
	}
	return n, nil
}

// equalsBDD encodes field == value over width bits starting at variable
// off (most-significant bit at the lowest variable index).
func equalsBDD(m *bdd.Manager, off, width int, value uint32) bdd.Node {
	lits := make(map[int]bool, width)
	for i := 0; i < width; i++ {
		bit := (value >> uint(width-1-i)) & 1
		lits[off+i] = bit == 1
	}
	return m.Cube(lits)
}

// rangeBDD encodes lo <= field <= hi over width bits starting at off.
func rangeBDD(m *bdd.Manager, off, width int, lo, hi uint32) bdd.Node {
	return m.And(geBDD(m, off, width, 0, lo), leBDD(m, off, width, 0, hi))
}

// leBDD encodes field <= value considering bits [i, width).
func leBDD(m *bdd.Manager, off, width, i int, value uint32) bdd.Node {
	if i == width {
		return bdd.True
	}
	v := m.Var(off + i)
	rest := leBDD(m, off, width, i+1, value)
	if (value>>uint(width-1-i))&1 == 1 {
		// bit set: x_i=0 → anything below; x_i=1 → compare remaining bits
		return m.Or(m.Not(v), m.And(v, rest))
	}
	// bit clear: x_i=1 → greater, fail; x_i=0 → compare remaining bits
	return m.And(m.Not(v), rest)
}

// geBDD encodes field >= value considering bits [i, width).
func geBDD(m *bdd.Manager, off, width, i int, value uint32) bdd.Node {
	if i == width {
		return bdd.True
	}
	v := m.Var(off + i)
	rest := geBDD(m, off, width, i+1, value)
	if (value>>uint(width-1-i))&1 == 1 {
		// bit set: x_i=0 → smaller, fail; x_i=1 → compare remaining bits
		return m.And(v, rest)
	}
	// bit clear: x_i=1 → anything above; x_i=0 → compare remaining bits
	return m.Or(v, m.And(m.Not(v), rest))
}

// NaiveCheck is a key-set differ used as a test oracle and ablation
// baseline: it reports logical rules whose exact Key is absent from the
// deployed set and deployed allow rules absent from the logical set. It is
// sound only when rule matches do not partially overlap (which holds for
// compiler output with disjoint filter port ranges), whereas the BDD
// checker is exact for arbitrary overlaps.
func NaiveCheck(logical, deployed []rule.Rule) *Report {
	depKeys := rule.KeySet(deployed)
	logKeys := rule.KeySet(logical)
	rep := &Report{Equivalent: true}
	for _, r := range logical {
		if r.Action != rule.Allow {
			continue
		}
		if _, ok := depKeys[r.Key()]; !ok {
			rep.MissingRules = append(rep.MissingRules, r.Clone())
		}
	}
	for _, r := range deployed {
		if r.Action != rule.Allow {
			continue
		}
		if _, ok := logKeys[r.Key()]; !ok {
			rep.ExtraRules = append(rep.ExtraRules, r.Clone())
		}
	}
	rep.Equivalent = len(rep.MissingRules) == 0 && len(rep.ExtraRules) == 0
	return rep
}

// MissingPairObjects extracts, from a set of missing rules, the map of
// impacted EPG pairs to the policy objects implicated by each pair's
// missing rules — the augmentation input for the risk models (§III-C).
// Rules without provenance are resolved through prov (keyed by rule Key)
// when available.
func MissingPairObjects(missing []rule.Rule, prov map[rule.Key][]object.Ref) map[[2]object.ID][]object.Ref {
	out := make(map[[2]object.ID][]object.Ref)
	for _, r := range missing {
		p := r.Provenance
		if len(p) == 0 && prov != nil {
			p = prov[r.Key()]
		}
		if len(p) == 0 {
			continue
		}
		a, b := r.Match.SrcEPG, r.Match.DstEPG
		if b < a {
			a, b = b, a
		}
		key := [2]object.ID{a, b}
		out[key] = append(out[key], p...)
	}
	for k, refs := range out {
		set := object.NewSet(refs...)
		out[k] = set.Sorted()
	}
	return out
}
