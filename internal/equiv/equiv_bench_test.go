package equiv

import (
	"sync"
	"sync/atomic"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// benchRules builds n disjoint allow rules plus the default deny.
func benchRules(n int) []rule.Rule {
	rules := make([]rule.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		rules = append(rules, allowRule(1, object.ID(i%64), object.ID(64+(i%64)), uint16(1024+i)))
	}
	return append(rules, rule.DefaultDeny())
}

// BenchmarkCheckEquivalent measures a clean check (the common periodic
// case: every switch consistent).
func BenchmarkCheckEquivalent(b *testing.B) {
	rules := benchRules(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckWithMissing measures a check that must extract missing
// rules (5% removed).
func BenchmarkCheckWithMissing(b *testing.B) {
	logical := benchRules(1024)
	deployed := make([]rule.Rule, 0, len(logical))
	for i, r := range logical {
		if i%20 == 7 {
			continue
		}
		deployed = append(deployed, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		rep, err := c.Check(logical, deployed)
		if err != nil || rep.Equivalent || len(rep.MissingRules) == 0 {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckerReuse measures the amortized cost when one checker
// (with its match memo) serves repeated checks, the Analyzer's pattern.
func BenchmarkCheckerReuse(b *testing.B) {
	rules := benchRules(1024)
	c := NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkNaiveCheck is the key-differ baseline.
func BenchmarkNaiveCheck(b *testing.B) {
	rules := benchRules(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := NaiveCheck(rules, rules); !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// benchFabricTables builds per-switch (logical, deployed) table pairs:
// each switch carries a distinct slice of the rule space and a ~5%
// degraded TCAM copy, mimicking a multi-switch fabric under faults.
func benchFabricTables(switches, rulesPerSwitch int) (logical, deployed [][]rule.Rule) {
	logical = make([][]rule.Rule, switches)
	deployed = make([][]rule.Rule, switches)
	for s := 0; s < switches; s++ {
		rules := make([]rule.Rule, 0, rulesPerSwitch+1)
		for i := 0; i < rulesPerSwitch; i++ {
			rules = append(rules, allowRule(1,
				object.ID((s*7+i)%64), object.ID(64+(s*11+i)%64), uint16(1024+s*rulesPerSwitch+i)))
		}
		rules = append(rules, rule.DefaultDeny())
		logical[s] = rules
		deg := make([]rule.Rule, 0, len(rules))
		for i, r := range rules {
			if i%20 == s%20 && i < rulesPerSwitch {
				continue
			}
			deg = append(deg, r)
		}
		deployed[s] = deg
	}
	return logical, deployed
}

// benchFanout checks every switch's tables with the given worker count —
// the Analyzer's check-stage sharding. With shared=false each worker owns
// a private Checker built from scratch; with shared=true the distinct
// matches are warmed into a frozen Base once per iteration and each
// worker forks it, so cross-worker encoding work is never duplicated.
func benchFanout(b *testing.B, workers int, shared bool) {
	const switches = 16
	logical, deployed := benchFabricTables(switches, 512)
	newChecker := func() *Checker { return NewChecker() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if shared {
			base := NewBase(baseMatches(append(logical, deployed...)...))
			newChecker = base.NewChecker
		}
		var wg sync.WaitGroup
		var next atomic.Int64
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := newChecker()
				for {
					s := int(next.Add(1)) - 1
					if s >= switches {
						return
					}
					rep, err := c.Check(logical[s], deployed[s])
					if err != nil || rep.Equivalent {
						b.Error("degraded copy must differ")
						return
					}
				}
			}()
		}
		wg.Wait()
		next.Store(0)
	}
}

// BenchmarkFanoutSerial is the one-checker-for-all-switches baseline
// (the pre-worker-pool Analyzer pipeline).
func BenchmarkFanoutSerial(b *testing.B) { benchFanout(b, 1, false) }

// BenchmarkFanout4 shards the same fabric across 4 private checkers; the
// speedup over BenchmarkFanoutSerial is bounded by GOMAXPROCS and eroded
// by the duplicated match encodings each worker re-derives.
func BenchmarkFanout4(b *testing.B) { benchFanout(b, 4, false) }

// BenchmarkFanoutShared4 shards across 4 forks of a shared frozen base
// (warmup included in the measurement): the duplicated encoding work of
// BenchmarkFanout4 is replaced by one base build.
func BenchmarkFanoutShared4(b *testing.B) { benchFanout(b, 4, true) }

// BenchmarkMissingSpace measures cube extraction on a 5%-degraded table.
func BenchmarkMissingSpace(b *testing.B) {
	logical := benchRules(512)
	deployed := make([]rule.Rule, 0, len(logical))
	for i, r := range logical {
		if i%20 == 7 {
			continue
		}
		deployed = append(deployed, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		cubes, err := c.MissingSpace(logical, deployed)
		if err != nil || len(cubes) == 0 {
			b.Fatal("extraction failed")
		}
	}
}

// BenchmarkCheckSemanticsShared measures a check whose whole-list folds
// resolve from frozen base roots (the warm continuous-verification
// path): both sides hit the semantics memo, so per-check cost collapses
// to two fingerprint hashes plus the root-equality test. Compare with
// BenchmarkCheckSemanticsPrivate, the same check folding per fork.
func BenchmarkCheckSemanticsShared(b *testing.B) {
	rules := benchRules(1024)
	base := NewBase(nil, rules)
	c := base.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
	b.ReportMetric(float64(c.DeltaSize())/float64(b.N), "delta-nodes/op")
}

// BenchmarkCheckSemanticsPrivate is the ablation twin: the base warms
// only match encodings (pre-PR-5 state), so every iteration's fresh fork
// rebuilds the whole fold structure in its delta.
func BenchmarkCheckSemanticsPrivate(b *testing.B) {
	rules := benchRules(1024)
	matches := make([]rule.Match, 0, len(rules))
	for _, r := range rules {
		matches = append(matches, r.Match)
	}
	SortMatches(matches)
	base := NewBase(matches)
	b.ResetTimer()
	deltas := 0
	for i := 0; i < b.N; i++ {
		c := base.NewChecker()
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
		deltas += c.DeltaSize()
	}
	b.ReportMetric(float64(deltas)/float64(b.N), "delta-nodes/op")
}
