package equiv

import (
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// benchRules builds n disjoint allow rules plus the default deny.
func benchRules(n int) []rule.Rule {
	rules := make([]rule.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		rules = append(rules, allowRule(1, object.ID(i%64), object.ID(64+(i%64)), uint16(1024+i)))
	}
	return append(rules, rule.DefaultDeny())
}

// BenchmarkCheckEquivalent measures a clean check (the common periodic
// case: every switch consistent).
func BenchmarkCheckEquivalent(b *testing.B) {
	rules := benchRules(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckWithMissing measures a check that must extract missing
// rules (5% removed).
func BenchmarkCheckWithMissing(b *testing.B) {
	logical := benchRules(1024)
	deployed := make([]rule.Rule, 0, len(logical))
	for i, r := range logical {
		if i%20 == 7 {
			continue
		}
		deployed = append(deployed, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		rep, err := c.Check(logical, deployed)
		if err != nil || rep.Equivalent || len(rep.MissingRules) == 0 {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckerReuse measures the amortized cost when one checker
// (with its match memo) serves repeated checks, the Analyzer's pattern.
func BenchmarkCheckerReuse(b *testing.B) {
	rules := benchRules(1024)
	c := NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.Check(rules, rules)
		if err != nil || !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkNaiveCheck is the key-differ baseline.
func BenchmarkNaiveCheck(b *testing.B) {
	rules := benchRules(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := NaiveCheck(rules, rules); !rep.Equivalent {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkMissingSpace measures cube extraction on a 5%-degraded table.
func BenchmarkMissingSpace(b *testing.B) {
	logical := benchRules(512)
	deployed := make([]rule.Rule, 0, len(logical))
	for i, r := range logical {
		if i%20 == 7 {
			continue
		}
		deployed = append(deployed, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker()
		cubes, err := c.MissingSpace(logical, deployed)
		if err != nil || len(cubes) == 0 {
			b.Fatal("extraction failed")
		}
	}
}
