package object

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindVRF, "vrf"},
		{KindEPG, "epg"},
		{KindContract, "contract"},
		{KindFilter, "filter"},
		{KindSwitch, "switch"},
		{Kind(0), "kind(0)"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{KindVRF, KindEPG, KindContract, KindFilter, KindSwitch} {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	for _, k := range []Kind{0, 6, -1, 100} {
		if k.Valid() {
			t.Errorf("Kind(%d) should be invalid", int(k))
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindVRF, KindEPG, KindContract, KindFilter, KindSwitch} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind should reject unknown kinds")
	}
}

func TestRefStringParseRoundTrip(t *testing.T) {
	refs := []Ref{
		VRF(101), EPG(0), Contract(42), Filter(65535), Switch(4294967295),
	}
	for _, r := range refs {
		parsed, err := ParseRef(r.String())
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", r.String(), err)
		}
		if parsed != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), parsed)
		}
	}
}

func TestParseRefErrors(t *testing.T) {
	for _, s := range []string{"", "vrf", "vrf:", "vrf:abc", "bogus:1", ":5", "vrf:-1", "vrf:99999999999"} {
		if _, err := ParseRef(s); err == nil {
			t.Errorf("ParseRef(%q) should fail", s)
		}
	}
}

func TestRefStringParseRoundTripQuick(t *testing.T) {
	kinds := []Kind{KindVRF, KindEPG, KindContract, KindFilter, KindSwitch}
	f := func(kindIdx uint8, id uint32) bool {
		r := Ref{Kind: kinds[int(kindIdx)%len(kinds)], ID: ID(id)}
		parsed, err := ParseRef(r.String())
		return err == nil && parsed == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefOrdering(t *testing.T) {
	a, b, c := VRF(1), VRF(2), EPG(1)
	if !a.Less(b) || b.Less(a) {
		t.Error("vrf:1 < vrf:2")
	}
	if !a.Less(c) {
		t.Error("kind dominates: vrf < epg")
	}
	if a.Compare(a) != 0 || a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("Compare inconsistent with Less")
	}
}

func TestSortRefsIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kinds := []Kind{KindVRF, KindEPG, KindContract, KindFilter, KindSwitch}
		refs := make([]Ref, 50)
		for i := range refs {
			refs[i] = Ref{Kind: kinds[rng.Intn(len(kinds))], ID: ID(rng.Intn(100))}
		}
		SortRefs(refs)
		for i := 1; i < len(refs); i++ {
			if refs[i].Less(refs[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(VRF(1), EPG(2))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Has(VRF(1)) || !s.Has(EPG(2)) || s.Has(EPG(3)) {
		t.Error("Has answers wrong")
	}
	s.Add(EPG(3))
	s.Add(EPG(3)) // idempotent
	if s.Len() != 3 {
		t.Errorf("Len after adds = %d, want 3", s.Len())
	}
	s.Remove(VRF(1))
	if s.Has(VRF(1)) || s.Len() != 2 {
		t.Error("Remove failed")
	}
}

func TestSetSortedDeterministic(t *testing.T) {
	s := NewSet(Switch(9), VRF(3), Filter(1), EPG(7), Contract(5), VRF(1))
	want := []Ref{VRF(1), VRF(3), EPG(7), Contract(5), Filter(1), Switch(9)}
	if got := s.Sorted(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sorted() = %v, want %v", got, want)
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a := NewSet(VRF(1), EPG(2), Filter(3))
	b := NewSet(EPG(2), Filter(4))
	u := a.Union(b)
	if u.Len() != 4 {
		t.Errorf("Union len = %d, want 4", u.Len())
	}
	i := a.Intersect(b)
	if i.Len() != 1 || !i.Has(EPG(2)) {
		t.Errorf("Intersect = %v, want {epg:2}", i.Sorted())
	}
	// Union/Intersect must not mutate inputs.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("set ops mutated operands")
	}
}

func TestSetOpsLawsQuick(t *testing.T) {
	mk := func(ids []uint8) Set {
		s := make(Set)
		for _, id := range ids {
			s.Add(EPG(ID(id % 16)))
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		u, i := a.Union(b), a.Intersect(b)
		// |A∪B| + |A∩B| == |A| + |B|
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		// Intersection ⊆ both; both ⊆ union.
		for r := range i {
			if !a.Has(r) || !b.Has(r) {
				return false
			}
		}
		for r := range a {
			if !u.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefIsZero(t *testing.T) {
	var zero Ref
	if !zero.IsZero() {
		t.Error("zero Ref should be zero")
	}
	if VRF(0).IsZero() {
		t.Error("vrf:0 is a real ref, not zero")
	}
}
