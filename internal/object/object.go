// Package object defines typed references to network policy objects.
//
// Policy objects (VRFs, EPGs, contracts, filters) and physical objects
// (switches) are the "shared risks" of the paper's risk models: a single
// mis-deployed object can break every EPG pair that depends on it. A Ref
// uniquely names one such object and is used as the risk identity across
// the risk-model, localization, and correlation packages.
package object

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the kinds of policy and physical objects that can act as
// shared risks in a risk model.
type Kind int

// Object kinds. Values start at 1 so the zero Kind is invalid.
const (
	KindVRF Kind = iota + 1
	KindEPG
	KindContract
	KindFilter
	KindSwitch
)

// kindNames maps kinds to their canonical short names.
var kindNames = map[Kind]string{
	KindVRF:      "vrf",
	KindEPG:      "epg",
	KindContract: "contract",
	KindFilter:   "filter",
	KindSwitch:   "switch",
}

// String returns the canonical lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// ParseKind converts a canonical kind name back into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown object kind %q", s)
}

// ID is the numeric identity of an object within its kind namespace.
type ID uint32

// Ref uniquely identifies a policy or physical object. Refs are valid map
// keys and are the risk identity used throughout the system.
type Ref struct {
	Kind Kind `json:"kind"`
	ID   ID   `json:"id"`
}

// Convenience constructors for each kind.

// VRF returns a Ref naming a VRF object.
func VRF(id ID) Ref { return Ref{Kind: KindVRF, ID: id} }

// EPG returns a Ref naming an endpoint-group object.
func EPG(id ID) Ref { return Ref{Kind: KindEPG, ID: id} }

// Contract returns a Ref naming a contract object.
func Contract(id ID) Ref { return Ref{Kind: KindContract, ID: id} }

// Filter returns a Ref naming a filter object.
func Filter(id ID) Ref { return Ref{Kind: KindFilter, ID: id} }

// Switch returns a Ref naming a physical switch.
func Switch(id ID) Ref { return Ref{Kind: KindSwitch, ID: id} }

// IsZero reports whether r is the zero Ref (no object).
func (r Ref) IsZero() bool { return r.Kind == 0 && r.ID == 0 }

// String renders the Ref as "kind:id", e.g. "vrf:101".
func (r Ref) String() string {
	return r.Kind.String() + ":" + strconv.FormatUint(uint64(r.ID), 10)
}

// ParseRef parses a "kind:id" string produced by Ref.String.
func ParseRef(s string) (Ref, error) {
	kindStr, idStr, ok := strings.Cut(s, ":")
	if !ok {
		return Ref{}, fmt.Errorf("malformed object ref %q: want kind:id", s)
	}
	kind, err := ParseKind(kindStr)
	if err != nil {
		return Ref{}, fmt.Errorf("malformed object ref %q: %w", s, err)
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		return Ref{}, fmt.Errorf("malformed object ref %q: bad id: %w", s, err)
	}
	return Ref{Kind: kind, ID: ID(id)}, nil
}

// Less imposes a total order on Refs (by kind, then ID), used to make
// algorithm outputs deterministic.
func (r Ref) Less(other Ref) bool {
	if r.Kind != other.Kind {
		return r.Kind < other.Kind
	}
	return r.ID < other.ID
}

// Compare returns -1, 0, or +1 comparing r with other in the Less order.
func (r Ref) Compare(other Ref) int {
	switch {
	case r.Less(other):
		return -1
	case other.Less(r):
		return 1
	default:
		return 0
	}
}

// SortRefs sorts refs in place in the canonical Less order.
func SortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
}

// Set is a set of object Refs.
type Set map[Ref]struct{}

// NewSet builds a Set from the given refs.
func NewSet(refs ...Ref) Set {
	s := make(Set, len(refs))
	for _, r := range refs {
		s[r] = struct{}{}
	}
	return s
}

// Add inserts r into the set.
func (s Set) Add(r Ref) { s[r] = struct{}{} }

// Has reports whether r is in the set.
func (s Set) Has(r Ref) bool {
	_, ok := s[r]
	return ok
}

// Remove deletes r from the set.
func (s Set) Remove(r Ref) { delete(s, r) }

// Len returns the number of refs in the set.
func (s Set) Len() int { return len(s) }

// Sorted returns the set contents as a sorted slice.
func (s Set) Sorted() []Ref {
	out := make([]Ref, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	SortRefs(out)
	return out
}

// Union returns a new set containing every ref in s or other.
func (s Set) Union(other Set) Set {
	out := make(Set, len(s)+len(other))
	for r := range s {
		out[r] = struct{}{}
	}
	for r := range other {
		out[r] = struct{}{}
	}
	return out
}

// Intersect returns a new set containing refs present in both s and other.
func (s Set) Intersect(other Set) Set {
	small, big := s, other
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(Set)
	for r := range small {
		if big.Has(r) {
			out[r] = struct{}{}
		}
	}
	return out
}
