// Binary codec for the warm-state store: deterministic, versioned,
// checksummed encodings of a frozen bdd.Snapshot, an equiv.Base, and
// per-switch check verdicts. Every file is framed the same way —
//
//	magic(4) | version(u32) | key(u64) | payload | fnv64a(all preceding)
//
// — so truncation and bit flips are rejected by the trailing checksum,
// files written by a different codec revision are rejected by the
// header before any payload byte is interpreted, and a file can never
// be loaded partially: decoding happens on a fully verified byte slice
// and any structural violation (the BDD rebuild validates ROBDD
// invariants, the base rebuild validates memo bindings) aborts the
// whole load. The key is the content address the caller expects
// (DeploymentFingerprint), so a renamed or misfiled entry is rejected
// too. Encoding is deterministic for given content — iteration is over
// canonically sorted views — which keeps repeated write-behind rounds
// of unchanged state byte-identical.

package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"scout/internal/bdd"
	"scout/internal/equiv"
	"scout/internal/object"
	"scout/internal/rule"
)

const (
	baseMagic    = "SCTB"
	verdictMagic = "SCTV"
	codecVersion = 1
)

// frameOverhead is the byte cost of the framing around a payload.
const frameOverhead = 4 + 4 + 8 + 8

// encoder appends little-endian primitives to a growing buffer.
type encoder struct{ buf []byte }

func (e *encoder) u8(v byte) { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }

// decoder consumes a verified payload with a latched error: after the
// first failure every read returns zero and the error survives to the
// caller's single check, so decode paths need no per-read branching.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: decode: "+format, args...)
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() byte {
	if d.err != nil || d.remaining() < 1 {
		d.fail("truncated payload")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.remaining() < 8 {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("malformed uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("malformed varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a list length and bounds it against the bytes left (every
// element costs at least minBytes), so a corrupted count can never
// drive a giant allocation even if it somehow survived the checksum.
func (d *decoder) count(minBytes int) int {
	n := d.uvarint()
	if d.err == nil && n > uint64(d.remaining()/minBytes) {
		d.fail("count %d exceeds payload", n)
		return 0
	}
	return int(n)
}

// seal frames a payload into a complete file image.
func seal(magic string, key uint64, payload []byte) []byte {
	e := encoder{buf: make([]byte, 0, len(payload)+frameOverhead)}
	e.buf = append(e.buf, magic...)
	e.u32(codecVersion)
	e.u64(key)
	e.buf = append(e.buf, payload...)
	h := fnv.New64a()
	h.Write(e.buf)
	e.u64(h.Sum64())
	return e.buf
}

// open verifies a file image's framing — length, magic, version,
// checksum, and content-address key, in that order — and returns the
// payload. Version mismatches are reported distinctly from corruption:
// a well-formed file from another codec revision fails here on its
// header, not on its (valid) checksum.
func open(data []byte, magic string, key uint64) ([]byte, error) {
	if len(data) < frameOverhead {
		return nil, fmt.Errorf("store: file truncated below frame (%d bytes)", len(data))
	}
	body := data[: len(data)-8 : len(data)-8]
	if string(body[:4]) != magic {
		return nil, fmt.Errorf("store: bad magic %q, want %q", body[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != codecVersion {
		return nil, fmt.Errorf("store: codec version %d, want %d", v, codecVersion)
	}
	h := fnv.New64a()
	h.Write(body)
	if sum := binary.LittleEndian.Uint64(data[len(data)-8:]); sum != h.Sum64() {
		return nil, fmt.Errorf("store: checksum mismatch (corrupt or truncated file)")
	}
	if k := binary.LittleEndian.Uint64(body[8:16]); k != key {
		return nil, fmt.Errorf("store: content key %#x, want %#x (misfiled entry)", k, key)
	}
	return body[16:], nil
}

// --- rule / match ---------------------------------------------------------

func encodeMatch(e *encoder, m rule.Match) {
	e.u32(uint32(m.VRF))
	e.u32(uint32(m.SrcEPG))
	e.u32(uint32(m.DstEPG))
	e.u8(byte(m.Proto))
	e.uvarint(uint64(m.PortLo))
	e.uvarint(uint64(m.PortHi))
	var flags byte
	if m.WildcardVRF {
		flags |= 1
	}
	if m.WildcardSrc {
		flags |= 2
	}
	if m.WildcardDst {
		flags |= 4
	}
	e.u8(flags)
}

func decodeMatch(d *decoder) rule.Match {
	var m rule.Match
	if d.remaining() < 12 {
		d.fail("truncated match")
		return m
	}
	m.VRF = object.ID(binary.LittleEndian.Uint32(d.buf[d.off:]))
	m.SrcEPG = object.ID(binary.LittleEndian.Uint32(d.buf[d.off+4:]))
	m.DstEPG = object.ID(binary.LittleEndian.Uint32(d.buf[d.off+8:]))
	d.off += 12
	m.Proto = rule.Protocol(d.u8())
	lo, hi := d.uvarint(), d.uvarint()
	if d.err == nil && (lo > rule.PortMax || hi > rule.PortMax) {
		d.fail("port range %d-%d out of range", lo, hi)
	}
	m.PortLo, m.PortHi = uint16(lo), uint16(hi)
	flags := d.u8()
	if d.err == nil && flags > 7 {
		d.fail("unknown match flags %#x", flags)
	}
	m.WildcardVRF = flags&1 != 0
	m.WildcardSrc = flags&2 != 0
	m.WildcardDst = flags&4 != 0
	return m
}

func encodeRule(e *encoder, r rule.Rule) {
	encodeMatch(e, r.Match)
	e.uvarint(uint64(r.Action))
	e.varint(int64(r.Priority))
	// Provenance uses the n+1 length scheme (0 = nil) so the nil-vs-empty
	// distinction of the original slice survives the round trip, like
	// every rule slice in this codec.
	if r.Provenance == nil {
		e.uvarint(0)
	} else {
		e.uvarint(uint64(len(r.Provenance)) + 1)
		for _, ref := range r.Provenance {
			e.uvarint(uint64(ref.Kind))
			e.uvarint(uint64(ref.ID))
		}
	}
}

func decodeRule(d *decoder) rule.Rule {
	var r rule.Rule
	r.Match = decodeMatch(d)
	r.Action = rule.Action(d.uvarint())
	r.Priority = int(d.varint())
	if n := d.uvarint(); n > 0 {
		count := int(n - 1)
		if count > d.remaining()/2 {
			d.fail("provenance count %d exceeds payload", count)
			return r
		}
		r.Provenance = make([]object.Ref, count)
		for i := range r.Provenance {
			r.Provenance[i] = object.Ref{
				Kind: object.Kind(d.uvarint()),
				ID:   object.ID(d.uvarint()),
			}
		}
	}
	return r
}

// encodeRules writes a rule slice with the n+1 nil-preserving length.
func encodeRules(e *encoder, rules []rule.Rule) {
	if rules == nil {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(len(rules)) + 1)
	for _, r := range rules {
		encodeRule(e, r)
	}
}

func decodeRules(d *decoder) []rule.Rule {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	count := int(n - 1)
	// A rule is at least 16 bytes (match 15 + action/priority/prov).
	if count > d.remaining()/16 {
		d.fail("rule count %d exceeds payload", count)
		return nil
	}
	rules := make([]rule.Rule, count)
	for i := range rules {
		rules[i] = decodeRule(d)
	}
	return rules
}

// --- snapshot -------------------------------------------------------------

func encodeSnapshot(e *encoder, s *bdd.Snapshot) {
	e.uvarint(uint64(s.NumVars()))
	e.uvarint(uint64(s.Size()))
	for i := 2; i < s.Size(); i++ {
		level, lo, hi := s.NodeAt(i)
		e.uvarint(uint64(level))
		e.uvarint(uint64(lo))
		e.uvarint(uint64(hi))
	}
}

func decodeSnapshot(d *decoder) (*bdd.Snapshot, error) {
	numVars := int(d.uvarint())
	numNodes64 := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// The two terminals are not streamed; every other node costs at
	// least 3 bytes, which bounds a corrupted count before allocation.
	if numNodes64 < 2 || numNodes64-2 > uint64(d.remaining()/3) {
		return nil, fmt.Errorf("store: decode: node count %d exceeds payload", numNodes64)
	}
	numNodes := int(numNodes64)
	snap, err := bdd.RebuildSnapshot(numVars, numNodes, func(int) (int32, bdd.Node, bdd.Node) {
		return int32(d.uvarint()), bdd.Node(d.uvarint()), bdd.Node(d.uvarint())
	})
	if d.err != nil {
		return nil, d.err
	}
	return snap, err
}

// --- base -----------------------------------------------------------------

// encodeBase serializes a frozen base — snapshot, match memo, semantics
// memo with canonical rule lists — framed under the deployment
// fingerprint it is content-addressed by.
func encodeBase(depFP uint64, b *equiv.Base) []byte {
	var e encoder
	encodeSnapshot(&e, b.Snapshot())
	e.uvarint(uint64(b.NumMatches()))
	b.ForEachMatch(func(m rule.Match, n bdd.Node) {
		encodeMatch(&e, m)
		e.uvarint(uint64(n))
	})
	e.uvarint(uint64(b.NumSemantics()))
	b.ForEachSemantics(func(_ uint64, rules []rule.Rule, root bdd.Node) {
		encodeRules(&e, rules)
		e.uvarint(uint64(root))
	})
	return seal(baseMagic, depFP, e.buf)
}

// decodeBase verifies and decodes a base file image. Semantics
// fingerprints are recomputed from the decoded rule lists — never read
// from the file — so a stale key can not misfile an entry.
func decodeBase(data []byte, depFP uint64) (*equiv.Base, error) {
	payload, err := open(data, baseMagic, depFP)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: payload}
	snap, err := decodeSnapshot(d)
	if err != nil {
		return nil, err
	}
	matches := make([]equiv.MatchEntry, d.count(16))
	for i := range matches {
		matches[i] = equiv.MatchEntry{Match: decodeMatch(d), Node: bdd.Node(d.uvarint())}
	}
	sems := make([]equiv.SemEntry, d.count(2))
	for i := range sems {
		sems[i] = equiv.SemEntry{Rules: decodeRules(d), Node: bdd.Node(d.uvarint())}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: decode: %d trailing bytes after base payload", d.remaining())
	}
	return equiv.RebuildBase(snap, matches, sems)
}

// --- verdicts -------------------------------------------------------------

// Verdict is one persisted per-switch check outcome: the report plus
// the fingerprints of the exact logical and TCAM rule lists it was
// computed from — the same replay key the in-memory session cache uses,
// so a fresh process replays it under exactly the conditions the
// original process would have.
type Verdict struct {
	Switch    object.ID
	LogicalFP uint64
	TCAMFP    uint64
	Report    *equiv.Report
}

// encodeVerdicts serializes verdicts under the deployment fingerprint.
// Entries are sorted by switch ID (on a copy) so repeated write-behind
// rounds of the same cache state produce byte-identical files.
func encodeVerdicts(depFP uint64, vs []Verdict) []byte {
	sorted := append([]Verdict(nil), vs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Switch < sorted[j-1].Switch; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var e encoder
	e.uvarint(uint64(len(sorted)))
	for _, v := range sorted {
		e.uvarint(uint64(v.Switch))
		e.u64(v.LogicalFP)
		e.u64(v.TCAMFP)
		if v.Report.Equivalent {
			e.u8(1)
		} else {
			e.u8(0)
		}
		encodeRules(&e, v.Report.MissingRules)
		encodeRules(&e, v.Report.ExtraRules)
	}
	return seal(verdictMagic, depFP, e.buf)
}

func decodeVerdicts(data []byte, depFP uint64) ([]Verdict, error) {
	payload, err := open(data, verdictMagic, depFP)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: payload}
	vs := make([]Verdict, d.count(20))
	for i := range vs {
		v := Verdict{
			Switch:    object.ID(d.uvarint()),
			LogicalFP: d.u64(),
			TCAMFP:    d.u64(),
		}
		eq := d.u8()
		if d.err == nil && eq > 1 {
			d.fail("verdict flag %d", eq)
		}
		v.Report = &equiv.Report{
			Equivalent:   eq == 1,
			MissingRules: decodeRules(d),
			ExtraRules:   decodeRules(d),
		}
		vs[i] = v
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: decode: %d trailing bytes after verdict payload", d.remaining())
	}
	return vs, nil
}
