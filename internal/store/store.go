// Package store is the durable warm-state store behind cross-restart
// and cross-deployment BDD reuse: a content-addressed directory of
// checksummed files holding frozen encoding bases (snapshot + match
// memo + semantics memo) keyed by deployment fingerprint and per-switch
// check verdicts keyed by the logical/TCAM rule-list fingerprints, plus
// a resident cross-deployment registry (registry.go) that shares frozen
// whole-switch semantics BDDs between concurrently live sessions.
//
// Writes are write-behind: Save* enqueues an encode-and-persist job and
// returns immediately; one background goroutine drains the queue,
// encoding off the hot path and publishing each file atomically
// (temp file + rename), so a crashed writer leaves the previous
// complete file, never a torn one. The queue is keyed by filename with
// latest-wins coalescing — a watch daemon persisting every round costs
// at most one in-flight encode per file no matter how far it runs
// ahead. Flush waits for the queue to drain; Close drains and stops.
//
// Loads verify everything (codec.go) and are cache-semantics: a missing
// file is (nil, nil), a corrupt or mismatched file is an error the
// caller treats as a cold start. Loading touches the file's mtime, so
// the age/LRU GC keeps hot entries alive.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"scout/internal/equiv"
)

// fileSuffix marks files owned by this store (GC refuses to touch
// anything else in the directory).
const fileSuffix = ".scout"

func baseFileName(depFP uint64) string {
	return fmt.Sprintf("base-%016x%s", depFP, fileSuffix)
}

func verdictFileName(depFP uint64, probe bool) string {
	kind := "checks"
	if probe {
		kind = "probes"
	}
	return fmt.Sprintf("%s-%016x%s", kind, depFP, fileSuffix)
}

// Store is a content-addressed warm-state directory with a write-behind
// persistence queue. All methods are safe for concurrent use; one Store
// may serve many sessions.
type Store struct {
	dir string

	mu   sync.Mutex
	cond *sync.Cond
	// pending maps filename → encode job, latest wins. inflight names
	// the file the writer goroutine is currently persisting, so Flush
	// waits for it too.
	pending  map[string]func() []byte
	inflight string
	closed   bool
	err      error // first persistence error, surfaced by Flush/Close
	done     chan struct{}
}

// Open opens (creating if needed) a warm-state store rooted at dir and
// starts its write-behind goroutine. Call Close when done with it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		pending: make(map[string]func() []byte),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// writer is the write-behind goroutine: it drains the pending queue one
// job at a time — encode (off every caller's hot path), then publish
// atomically — and exits once the store is closed and drained.
func (s *Store) writer() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		var name string
		var job func() []byte
		for name, job = range s.pending {
			break
		}
		delete(s.pending, name)
		s.inflight = name
		s.mu.Unlock()

		err := writeAtomic(filepath.Join(s.dir, name), job())

		s.mu.Lock()
		s.inflight = ""
		if err != nil && s.err == nil {
			s.err = err
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// writeAtomic publishes data at path via a same-directory temp file and
// rename, so readers only ever observe complete files.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", path, werr)
	}
	return nil
}

// enqueue registers an encode-and-persist job for name, replacing any
// not-yet-started job for the same file (latest wins). Jobs after Close
// are dropped.
func (s *Store) enqueue(name string, job func() []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.pending[name] = job
	s.cond.Signal()
}

// Flush blocks until every pending write has been persisted and returns
// the first persistence error since the previous Flush (clearing it).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 || s.inflight != "" {
		s.cond.Wait()
	}
	err := s.err
	s.err = nil
	return err
}

// Close drains the pending writes, stops the write-behind goroutine,
// and returns the first unreported persistence error. A closed store
// drops subsequent Save calls; Loads keep working.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.err
	s.err = nil
	return err
}

// SaveBase schedules write-behind persistence of a frozen base under
// its deployment fingerprint. The base is immutable, so the background
// encode needs no coordination with the caller.
func (s *Store) SaveBase(depFP uint64, b *equiv.Base) {
	s.enqueue(baseFileName(depFP), func() []byte { return encodeBase(depFP, b) })
}

// LoadBase loads the frozen base persisted for the deployment
// fingerprint: (nil, nil) when none exists, an error when the file
// fails verification (the caller treats it as a cold start). Pending
// writes are flushed first so a load observes the newest state. A
// successful load touches the file for the LRU GC.
func (s *Store) LoadBase(depFP uint64) (*equiv.Base, error) {
	data, err := s.readFile(baseFileName(depFP))
	if err != nil || data == nil {
		return nil, err
	}
	b, err := decodeBase(data, depFP)
	if err != nil {
		return nil, err
	}
	s.touch(baseFileName(depFP))
	return b, nil
}

// SaveVerdicts schedules write-behind persistence of per-switch check
// verdicts (probe selects the probe-mode cache's file). The slice is
// retained until the background encode runs; callers pass a snapshot
// they will not mutate. Reports inside are immutable by convention.
func (s *Store) SaveVerdicts(depFP uint64, probe bool, vs []Verdict) {
	s.enqueue(verdictFileName(depFP, probe), func() []byte { return encodeVerdicts(depFP, vs) })
}

// LoadVerdicts loads the verdicts persisted for the deployment
// fingerprint: (nil, nil) when none exist, an error on verification
// failure. A successful load touches the file for the LRU GC.
func (s *Store) LoadVerdicts(depFP uint64, probe bool) ([]Verdict, error) {
	name := verdictFileName(depFP, probe)
	data, err := s.readFile(name)
	if err != nil || data == nil {
		return nil, err
	}
	vs, err := decodeVerdicts(data, depFP)
	if err != nil {
		return nil, err
	}
	s.touch(name)
	return vs, nil
}

// readFile flushes pending writes and reads one store file, mapping
// absence to (nil, nil).
func (s *Store) readFile(name string) ([]byte, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", name, err)
	}
	return data, nil
}

// touch refreshes a file's mtime so the LRU half of GC sees recently
// loaded state as recently used. Best effort.
func (s *Store) touch(name string) {
	now := time.Now()
	_ = os.Chtimes(filepath.Join(s.dir, name), now, now)
}

// GCStats summarizes one garbage-collection pass.
type GCStats struct {
	// Kept and Removed count store files after the pass.
	Kept    int
	Removed int
}

// GC removes stale store files: everything older than maxAge (0 = no
// age bound), then — oldest first — whatever keeps the file count at or
// under maxFiles (0 = no count bound). Only files carrying the store
// suffix are considered; the write queue is flushed first so a file
// about to be rewritten is not judged by its old mtime. Both saves and
// loads refresh mtimes, so "oldest" is least-recently-used, not
// least-recently-written.
func (s *Store) GC(maxAge time.Duration, maxFiles int) (GCStats, error) {
	if err := s.Flush(); err != nil {
		return GCStats{}, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return GCStats{}, fmt.Errorf("store: gc: %w", err)
	}
	type file struct {
		name  string
		mtime time.Time
	}
	var files []file
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), fileSuffix) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		files = append(files, file{name: ent.Name(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })

	var st GCStats
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	keep := files[:0]
	for _, f := range files {
		if !cutoff.IsZero() && f.mtime.Before(cutoff) {
			if rmErr := os.Remove(filepath.Join(s.dir, f.name)); rmErr == nil {
				st.Removed++
				continue
			}
		}
		keep = append(keep, f)
	}
	if maxFiles > 0 && len(keep) > maxFiles {
		for _, f := range keep[:len(keep)-maxFiles] {
			if rmErr := os.Remove(filepath.Join(s.dir, f.name)); rmErr == nil {
				st.Removed++
			} else {
				st.Kept++
			}
		}
		keep = keep[len(keep)-maxFiles:]
	}
	st.Kept += len(keep)
	return st, nil
}
