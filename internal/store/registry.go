// BaseRegistry: the resident cross-deployment semantics cache. Every
// frozen base registered with it publishes its whole-switch semantics
// roots keyed by canonical semantics fingerprint; a base built
// afterwards — for any deployment, in any session sharing the registry
// — resolves lists it has in common and grafts the donor's frozen BDD
// instead of re-folding it. This generalizes the in-process semantics
// dedup of one deployment's base across deployments: tenants whose
// switches share rule-list semantics build each distinct semantics BDD
// once process-wide. Hits are verified against the donor's canonical
// rule list (equiv.SemanticsEqual), so a 64-bit fingerprint collision
// falls through to a private fold, never a wrong root — the same
// collision-proofing the per-deployment memos use.

package store

import (
	"sync"

	"scout/internal/bdd"
	"scout/internal/equiv"
	"scout/internal/rule"
)

// registryEntry is one published semantics root: the donor base's
// frozen snapshot, the canonical rule list for verification, and the
// root node within that snapshot.
type registryEntry struct {
	snap  *bdd.Snapshot
	rules []rule.Rule
	root  bdd.Node
}

// BaseRegistry shares frozen whole-switch semantics BDDs across bases.
// It implements equiv.SemanticsSource. Safe for concurrent use; the
// zero value is not usable — construct with NewBaseRegistry.
type BaseRegistry struct {
	mu      sync.RWMutex
	entries map[uint64]registryEntry

	hits       int
	misses     int
	collisions int
}

// NewBaseRegistry creates an empty registry.
func NewBaseRegistry() *BaseRegistry {
	return &BaseRegistry{entries: make(map[uint64]registryEntry)}
}

// ResolveSemantics implements equiv.SemanticsSource: it returns the
// donor snapshot and root registered for a rule list canonically equal
// to rules, after verifying the canonical lists actually agree.
func (r *BaseRegistry) ResolveSemantics(fp uint64, rules []rule.Rule) (*bdd.Snapshot, bdd.Node, bool) {
	r.mu.RLock()
	e, ok := r.entries[fp]
	r.mu.RUnlock()
	verified := ok && equiv.SemanticsEqual(e.rules, rules)
	r.mu.Lock()
	switch {
	case verified:
		r.hits++
	case ok:
		r.collisions++
	default:
		r.misses++
	}
	r.mu.Unlock()
	if !verified {
		return nil, 0, false
	}
	return e.snap, e.root, true
}

// RegisterBase publishes a frozen base's semantics roots. First owner
// wins per fingerprint: an already-registered key is left alone, so
// donors stay stable while their snapshot is shared. Registering the
// same base again is a no-op.
func (r *BaseRegistry) RegisterBase(b *equiv.Base) {
	if b == nil {
		return
	}
	snap := b.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	b.ForEachSemantics(func(fp uint64, rules []rule.Rule, root bdd.Node) {
		if _, ok := r.entries[fp]; !ok {
			r.entries[fp] = registryEntry{snap: snap, rules: rules, root: root}
		}
	})
}

// RegistryStats is a point-in-time counter snapshot.
type RegistryStats struct {
	// Entries is the number of distinct semantics roots published.
	Entries int
	// Hits are verified resolutions (a graft happened); Misses are
	// lookups with no entry; Collisions are fingerprint matches whose
	// canonical lists disagreed and fell through to a private fold.
	Hits       int
	Misses     int
	Collisions int
}

// Stats returns the registry's cumulative counters.
func (r *BaseRegistry) Stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return RegistryStats{
		Entries:    len(r.entries),
		Hits:       r.hits,
		Misses:     r.misses,
		Collisions: r.collisions,
	}
}
