package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"scout/internal/bdd"
	"scout/internal/equiv"
	"scout/internal/object"
	"scout/internal/rule"
)

// testRules builds a deterministic pseudo-random rule list whose IDs all
// fit the BDD encoding's bit widths.
func testRules(rng *rand.Rand, n int) []rule.Rule {
	rules := make([]rule.Rule, n)
	for i := range rules {
		m := rule.Match{
			VRF:    object.ID(rng.Intn(1 << 10)),
			SrcEPG: object.ID(rng.Intn(1 << 12)),
			DstEPG: object.ID(rng.Intn(1 << 12)),
			Proto:  rule.Protocol(rng.Intn(256)),
		}
		lo := uint16(rng.Intn(rule.PortMax))
		m.PortLo, m.PortHi = lo, lo+uint16(rng.Intn(int(rule.PortMax)-int(lo)+1))
		switch rng.Intn(4) {
		case 0:
			m.WildcardVRF = true
		case 1:
			m.WildcardSrc = true
		case 2:
			m.WildcardDst = true
		}
		r := rule.Rule{Match: m, Action: rule.Allow, Priority: rng.Intn(100) - 50}
		if rng.Intn(2) == 0 {
			r.Action = rule.Deny
		}
		if rng.Intn(3) == 0 {
			r.Provenance = []object.Ref{
				object.Filter(object.ID(rng.Intn(1000))),
				object.Contract(object.ID(rng.Intn(1000))),
			}
		}
		rules[i] = r
	}
	return rules
}

func collectMatches(lists ...[]rule.Rule) []rule.Match {
	set := make(map[rule.Match]struct{})
	for _, l := range lists {
		equiv.CollectMatches(set, l)
	}
	matches := make([]rule.Match, 0, len(set))
	for m := range set {
		matches = append(matches, m)
	}
	equiv.SortMatches(matches)
	return matches
}

func testBase(t *testing.T, seed int64) (*equiv.Base, [][]rule.Rule) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	listA := testRules(rng, 40)
	listB := testRules(rng, 25)
	base := equiv.NewBase(collectMatches(listA, listB), listA, listB)
	if base.NumMatches() == 0 || base.NumSemantics() != 2 {
		t.Fatalf("unexpected test base: %d matches, %d semantics", base.NumMatches(), base.NumSemantics())
	}
	return base, [][]rule.Rule{listA, listB}
}

// snapshotsEqual compares two frozen snapshots node for node.
func snapshotsEqual(t *testing.T, a, b *bdd.Snapshot) {
	t.Helper()
	if a.NumVars() != b.NumVars() || a.Size() != b.Size() {
		t.Fatalf("snapshot shape: %d vars/%d nodes vs %d vars/%d nodes",
			a.NumVars(), a.Size(), b.NumVars(), b.Size())
	}
	for i := 2; i < a.Size(); i++ {
		al, alo, ahi := a.NodeAt(i)
		bl, blo, bhi := b.NodeAt(i)
		if al != bl || alo != blo || ahi != bhi {
			t.Fatalf("node %d: (%d,%d,%d) vs (%d,%d,%d)", i, al, alo, ahi, bl, blo, bhi)
		}
	}
}

// TestBaseCodecRoundTrip pins the tentpole's identity property: a
// decoded base is node-for-node the encoder's base — same snapshot, same
// memo bindings, same Eval and SatCount behaviour against a live
// manager — so a warm restart replays the exact BDD state, not an
// approximation of it.
func TestBaseCodecRoundTrip(t *testing.T) {
	base, _ := testBase(t, 1)
	const depFP = 0xfeedface12345678
	data := encodeBase(depFP, base)
	got, err := decodeBase(data, depFP)
	if err != nil {
		t.Fatalf("decodeBase: %v", err)
	}

	snapshotsEqual(t, base.Snapshot(), got.Snapshot())

	// Memo bindings: identical node IDs for every match and semantics
	// fingerprint.
	wantMatch := make(map[rule.Match]bdd.Node)
	base.ForEachMatch(func(m rule.Match, n bdd.Node) { wantMatch[m] = n })
	gotMatch := make(map[rule.Match]bdd.Node)
	got.ForEachMatch(func(m rule.Match, n bdd.Node) { gotMatch[m] = n })
	if !reflect.DeepEqual(wantMatch, gotMatch) {
		t.Fatalf("match memo mismatch: %d vs %d entries", len(wantMatch), len(gotMatch))
	}
	wantSem := make(map[uint64]bdd.Node)
	base.ForEachSemantics(func(fp uint64, _ []rule.Rule, root bdd.Node) { wantSem[fp] = root })
	gotSem := make(map[uint64]bdd.Node)
	roots := make([]bdd.Node, 0, 2)
	got.ForEachSemantics(func(fp uint64, rules []rule.Rule, root bdd.Node) {
		gotSem[fp] = root
		roots = append(roots, root)
		if fp != equiv.SemanticsFingerprint(rules) {
			t.Fatalf("semantics fp %#x does not match decoded rules", fp)
		}
	})
	if !reflect.DeepEqual(wantSem, gotSem) {
		t.Fatalf("semantics memo mismatch: %v vs %v", wantSem, gotSem)
	}

	// Behavioural identity against live managers: Eval on random
	// assignments and exact SatCount for every frozen root.
	wantM := bdd.NewManagerFrom(base.Snapshot())
	gotM := bdd.NewManagerFrom(got.Snapshot())
	rng := rand.New(rand.NewSource(2))
	assignment := make([]bool, equiv.NumVars)
	for _, root := range roots {
		if w, g := wantM.SatCount(root), gotM.SatCount(root); w != g {
			t.Fatalf("SatCount(%d): %v vs %v", root, w, g)
		}
		for trial := 0; trial < 64; trial++ {
			for i := range assignment {
				assignment[i] = rng.Intn(2) == 1
			}
			if w, g := base.Snapshot().Eval(root, assignment), got.Snapshot().Eval(root, assignment); w != g {
				t.Fatalf("Eval(%d) diverged on trial %d: %v vs %v", root, trial, w, g)
			}
		}
	}

	// Determinism: re-encoding either side yields the same bytes.
	if again := encodeBase(depFP, got); !reflect.DeepEqual(data, again) {
		t.Fatal("re-encoding the decoded base changed the bytes")
	}
}

// TestBaseCodecRejectsDamage walks the rejection surface: every
// truncation and every single-bit flip must fail verification (checksum
// or structural validation) — a damaged file is never loaded partially.
func TestBaseCodecRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	list := testRules(rng, 6)
	base := equiv.NewBase(collectMatches(list), list)
	const depFP = 0x0123456789abcdef
	data := encodeBase(depFP, base)

	for _, n := range []int{0, 1, frameOverhead - 1, frameOverhead, len(data) / 2, len(data) - 1} {
		if _, err := decodeBase(data[:n], depFP); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(data); i++ {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 1 << (i % 8)
		if _, err := decodeBase(corrupt, depFP); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	if _, err := decodeBase(data, depFP+1); err == nil {
		t.Fatal("wrong content key accepted")
	}
}

// TestCodecRejectsVersionMismatch pins that a well-formed file from
// another codec revision is rejected on its header — distinctly from
// corruption — even though its checksum is valid.
func TestCodecRejectsVersionMismatch(t *testing.T) {
	payload := []byte{1, 2, 3}
	data := seal(baseMagic, 42, payload)
	// Re-seal by hand with a bumped version and a recomputed checksum.
	forged := append([]byte(nil), data[:len(data)-8]...)
	forged[4] = codecVersion + 1
	forged = seal(baseMagic, 42, forged[16:])
	forged[4] = codecVersion + 1
	// Fix the checksum over the altered header.
	e := encoder{buf: forged[:len(forged)-8]}
	body := append([]byte(nil), e.buf...)
	h := fnvSum(body)
	forged = forged[:len(forged)-8]
	forged = appendU64(forged, h)

	if _, err := open(forged, baseMagic, 42); err == nil {
		t.Fatal("version-mismatched file accepted")
	} else if got := err.Error(); !containsAll(got, "version") {
		t.Fatalf("want a version error, got %q", got)
	}
	// Wrong magic is rejected before anything else.
	if _, err := open(seal(verdictMagic, 42, payload), baseMagic, 42); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func fnvSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func appendU64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// TestVerdictCodecRoundTrip pins verdict round-trip fidelity, including
// the nil-vs-empty rule slice distinction JSON report identity depends
// on, and the canonical (switch-sorted) encoding order.
func TestVerdictCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := []Verdict{
		{
			Switch: 7, LogicalFP: 11, TCAMFP: 12,
			Report: &equiv.Report{Equivalent: true},
		},
		{
			Switch: 3, LogicalFP: 21, TCAMFP: 22,
			Report: &equiv.Report{MissingRules: testRules(rng, 5), ExtraRules: []rule.Rule{}},
		},
		{
			Switch: 5, LogicalFP: 31, TCAMFP: 32,
			Report: &equiv.Report{ExtraRules: testRules(rng, 3)},
		},
	}
	const depFP = 0xdeadbeef
	data := encodeVerdicts(depFP, vs)
	got, err := decodeVerdicts(data, depFP)
	if err != nil {
		t.Fatalf("decodeVerdicts: %v", err)
	}
	want := []Verdict{vs[1], vs[2], vs[0]} // switch-sorted
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	// Nil-vs-empty survived explicitly.
	if got[0].Report.MissingRules == nil || got[0].Report.ExtraRules == nil {
		t.Fatal("empty rule slices decoded as nil")
	}
	if got[2].Report.MissingRules != nil || got[2].Report.ExtraRules != nil {
		t.Fatal("nil rule slices decoded as non-nil")
	}
	// Input order does not change the bytes.
	shuffled := []Verdict{vs[2], vs[0], vs[1]}
	if again := encodeVerdicts(depFP, shuffled); !reflect.DeepEqual(data, again) {
		t.Fatal("encoding is sensitive to input order")
	}
	for _, n := range []int{frameOverhead, len(data) - 2} {
		if _, err := decodeVerdicts(data[:n], depFP); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestStoreSaveLoad exercises the write-behind path end to end: save,
// flush, reload — plus absence mapping to (nil, nil), corruption
// mapping to an error, and saves after Close being dropped.
func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base, _ := testBase(t, 5)
	const depFP = 0xabc
	s.SaveBase(depFP, base)
	s.SaveVerdicts(depFP, false, []Verdict{
		{Switch: 1, LogicalFP: 2, TCAMFP: 3, Report: &equiv.Report{Equivalent: true}},
	})
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := s.LoadBase(depFP)
	if err != nil || got == nil {
		t.Fatalf("LoadBase: %v, %v", got, err)
	}
	snapshotsEqual(t, base.Snapshot(), got.Snapshot())
	vs, err := s.LoadVerdicts(depFP, false)
	if err != nil || len(vs) != 1 || vs[0].Switch != 1 || !vs[0].Report.Equivalent {
		t.Fatalf("LoadVerdicts: %+v, %v", vs, err)
	}

	// Absence is (nil, nil) for both kinds, and for the other mode's file.
	if b, err := s.LoadBase(depFP + 1); b != nil || err != nil {
		t.Fatalf("missing base: %v, %v", b, err)
	}
	if v, err := s.LoadVerdicts(depFP, true); v != nil || err != nil {
		t.Fatalf("missing probe verdicts: %v, %v", v, err)
	}

	// A corrupted file is an error, not a partial load.
	path := filepath.Join(dir, baseFileName(depFP))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadBase(depFP); err == nil {
		t.Fatal("corrupted base loaded")
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s.SaveBase(depFP+9, base) // dropped after Close
	if _, err := os.Stat(filepath.Join(dir, baseFileName(depFP+9))); !os.IsNotExist(err) {
		t.Fatal("save after Close was persisted")
	}
}

// TestStoreGC pins the hygiene satellite: the age bound removes stale
// files, the count bound evicts least-recently-used beyond the cap, and
// foreign files in the directory are never touched.
func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base, _ := testBase(t, 6)
	for fp := uint64(1); fp <= 4; fp++ {
		s.SaveBase(fp, base)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Age files 1 and 2 beyond the bound; 2 is then "used" (loaded),
	// which refreshes its mtime and must rescue it from the age GC.
	old := time.Now().Add(-2 * time.Hour)
	for fp := uint64(1); fp <= 2; fp++ {
		if err := os.Chtimes(filepath.Join(dir, baseFileName(fp)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.LoadBase(2); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(time.Hour, 0)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if st.Removed != 1 || st.Kept != 3 {
		t.Fatalf("age GC: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, baseFileName(1))); !os.IsNotExist(err) {
		t.Fatal("stale file survived age GC")
	}

	// LRU bound: cap at 2 files, oldest goes first.
	older := time.Now().Add(-time.Minute)
	if err := os.Chtimes(filepath.Join(dir, baseFileName(3)), older, older); err != nil {
		t.Fatal(err)
	}
	st, err = s.GC(0, 2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if st.Removed != 1 || st.Kept != 2 {
		t.Fatalf("LRU GC: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, baseFileName(3))); !os.IsNotExist(err) {
		t.Fatal("LRU GC kept the oldest file")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("GC touched a foreign file")
	}
}

// TestRegistrySharing pins cross-deployment sharing: a second base over
// a canonically equal rule list grafts the registered root instead of
// folding, and the graft is behaviourally identical.
func TestRegistrySharing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	list := testRules(rng, 30)
	reg := NewBaseRegistry()

	donor, stats := equiv.NewBaseWith(reg, collectMatches(list), list)
	if stats.SemGrafts != 0 || stats.SemFolds != 1 {
		t.Fatalf("donor build: %+v", stats)
	}
	reg.RegisterBase(donor)
	if st := reg.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("after donor: %+v", st)
	}

	grafted, stats := equiv.NewBaseWith(reg, collectMatches(list), list)
	if stats.SemGrafts != 1 || stats.SemFolds != 0 {
		t.Fatalf("grafted build: %+v", stats)
	}
	if st := reg.Stats(); st.Hits != 1 {
		t.Fatalf("after graft: %+v", st)
	}

	var wantRoot, gotRoot bdd.Node
	donor.ForEachSemantics(func(_ uint64, _ []rule.Rule, root bdd.Node) { wantRoot = root })
	grafted.ForEachSemantics(func(_ uint64, _ []rule.Rule, root bdd.Node) { gotRoot = root })
	wantM := bdd.NewManagerFrom(donor.Snapshot())
	gotM := bdd.NewManagerFrom(grafted.Snapshot())
	if w, g := wantM.SatCount(wantRoot), gotM.SatCount(gotRoot); w != g {
		t.Fatalf("grafted root SatCount %v, donor %v", g, w)
	}
}

// TestRegistryCollisionFallsThrough pins the collision-proofing: a
// fingerprint hit whose canonical rule list disagrees is rejected —
// counted as a collision — and the consumer folds privately, never
// grafting a wrong root.
func TestRegistryCollisionFallsThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	listA := testRules(rng, 20)
	listB := testRules(rng, 20)
	if equiv.SemanticsEqual(listA, listB) {
		t.Fatal("test lists should differ")
	}
	reg := NewBaseRegistry()
	donor := equiv.NewBase(collectMatches(listA), listA)
	var donorRoot bdd.Node
	donor.ForEachSemantics(func(_ uint64, _ []rule.Rule, root bdd.Node) { donorRoot = root })

	// Forge a collision: publish listA's entry under listB's fingerprint.
	fpB := equiv.SemanticsFingerprint(listB)
	reg.mu.Lock()
	reg.entries[fpB] = registryEntry{snap: donor.Snapshot(), rules: listA, root: donorRoot}
	reg.mu.Unlock()

	if _, _, ok := reg.ResolveSemantics(fpB, listB); ok {
		t.Fatal("collision resolved as a hit")
	}
	_, stats := equiv.NewBaseWith(reg, collectMatches(listB), listB)
	if stats.SemGrafts != 0 || stats.SemFolds != 1 {
		t.Fatalf("collision build grafted: %+v", stats)
	}
	if st := reg.Stats(); st.Collisions != 2 || st.Hits != 0 {
		t.Fatalf("collision counters: %+v", st)
	}
}
