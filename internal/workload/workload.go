// Package workload synthesizes network policies, topologies, and fault
// scenarios for evaluation, substituting for the paper's production
// cluster dataset and hardware testbed (§VI-A).
//
// The production-like generator is calibrated to the paper's reported
// dataset (6 VRFs, 615 EPGs, 386 contracts, 160 filters, ~30 switches)
// and to the Figure 3 sharing CDFs: a few VRFs scope the vast majority of
// EPG pairs, EPG popularity is heavy-tailed, and most contracts/filters
// serve fewer than 10 EPG pairs while a small fraction serve hundreds.
// The testbed generator reproduces the §VI-A testbed policy (36 EPGs, 24
// contracts, 9 filters, 100 EPG pairs) whose low risk sharing explains
// the accuracy differences the paper observes between the two setups.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

// Spec parameterizes policy synthesis.
type Spec struct {
	Name      string
	Switches  int
	VRFs      int
	EPGs      int
	Contracts int
	Filters   int

	// TargetPairs is the approximate number of distinct EPG pairs the
	// bindings should produce.
	TargetPairs int

	// EndpointsPerEPGMax bounds endpoints per EPG (min 1).
	EndpointsPerEPGMax int
	// SwitchesPerEPGMax bounds the distinct switches an EPG's endpoints
	// spread over.
	SwitchesPerEPGMax int

	// HeavyContractFrac is the fraction of contracts with heavy-tailed
	// (large) EPG-pair usage; the rest serve <10 pairs, per Figure 3.
	HeavyContractFrac float64
	// FiltersPerContractMax bounds filters referenced per contract.
	FiltersPerContractMax int
	// EntriesPerFilterMax bounds entries per filter.
	EntriesPerFilterMax int

	// EPGZipfExponent skews EPG popularity when sampling binding
	// endpoints (0 = uniform).
	EPGZipfExponent float64

	// VRFWeights splits EPGs across VRFs; it is normalized internally and
	// padded/truncated to VRFs entries. A strongly skewed split gives the
	// "2-3% of VRFs shared by >10k pairs" shape.
	VRFWeights []float64
}

// ProductionSpec mirrors the paper's production-cluster dataset (§VI-A).
func ProductionSpec() Spec {
	return Spec{
		Name:                  "production",
		Switches:              30,
		VRFs:                  6,
		EPGs:                  615,
		Contracts:             386,
		Filters:               160,
		TargetPairs:           20000,
		EndpointsPerEPGMax:    3,
		SwitchesPerEPGMax:     3,
		HeavyContractFrac:     0.2,
		FiltersPerContractMax: 3,
		EntriesPerFilterMax:   3,
		EPGZipfExponent:       0.8,
		VRFWeights:            []float64{0.45, 0.20, 0.12, 0.10, 0.08, 0.05},
	}
}

// SmallFabricSpec models a realistic small deployment — one pod of leaf
// switches — rather than a linearly shrunken hyperscale cluster. Linear
// shrinking of ProductionSpec distorts the structural ratios small-scale
// experiments depend on: pair dedup bites harder in small EPG cohorts
// (cutting EPG pairs per switch well below the production ~330), the
// heavy contract tail starves, and the per-switch rule load still
// overflows a default leaf TCAM, so every "baseline" starts inconsistent.
// This spec keeps the production order of per-switch pair density (~130
// EPG pairs per switch versus the testbed's ~16) and its skews
// (heavy-tailed contracts, Zipf EPG popularity, dominant-VRF split) while
// sizing contracts so a clean deployment fills roughly half the default
// TCAM — the way a real small fabric is provisioned, leaving a baseline
// that is consistent until a fault is injected.
func SmallFabricSpec() Spec {
	return Spec{
		Name:                  "small-fabric",
		Switches:              8,
		VRFs:                  3,
		EPGs:                  128,
		Contracts:             64,
		Filters:               30,
		TargetPairs:           2300,
		EndpointsPerEPGMax:    2,
		SwitchesPerEPGMax:     2,
		HeavyContractFrac:     0.2,
		FiltersPerContractMax: 2,
		EntriesPerFilterMax:   2,
		EPGZipfExponent:       0.8,
		VRFWeights:            []float64{0.5, 0.3, 0.2},
	}
}

// TestbedSpec mirrors the paper's hardware testbed policy (§VI-A): 36
// EPGs, 24 contracts, 9 filters, 100 EPG pairs, with a low degree of risk
// sharing.
func TestbedSpec() Spec {
	return Spec{
		Name:                  "testbed",
		Switches:              6,
		VRFs:                  1,
		EPGs:                  36,
		Contracts:             24,
		Filters:               9,
		TargetPairs:           100,
		EndpointsPerEPGMax:    2,
		SwitchesPerEPGMax:     2,
		HeavyContractFrac:     0.1,
		FiltersPerContractMax: 2,
		EntriesPerFilterMax:   2,
		EPGZipfExponent:       0.3,
		VRFWeights:            []float64{1},
	}
}

// Generate synthesizes a policy and topology from the spec, seeded for
// reproducibility.
func Generate(spec Spec, seed int64) (*policy.Policy, *topo.Topology, error) {
	if spec.VRFs <= 0 || spec.EPGs < 2 || spec.Contracts <= 0 || spec.Filters <= 0 || spec.Switches <= 0 {
		return nil, nil, fmt.Errorf("workload: degenerate spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	p := policy.New(spec.Name)

	// VRFs.
	for i := 0; i < spec.VRFs; i++ {
		p.AddVRF(policy.VRF{ID: object.ID(100 + i), Name: fmt.Sprintf("vrf-%d", i)})
	}

	// EPG → VRF assignment by (normalized) weight.
	weights := normalizeWeights(spec.VRFWeights, spec.VRFs)
	epgVRF := make([]object.ID, spec.EPGs)
	for i := 0; i < spec.EPGs; i++ {
		v := sampleWeighted(rng, weights)
		epgVRF[i] = object.ID(100 + v)
		p.AddEPG(policy.EPG{ID: object.ID(1000 + i), Name: fmt.Sprintf("epg-%d", i), VRF: epgVRF[i]})
	}

	// Filters with mutually disjoint port ranges so compiled rule
	// semantics never partially overlap (keeps the naive differ a valid
	// oracle for the BDD checker on generated workloads).
	maxEntries := spec.EntriesPerFilterMax
	if maxEntries < 1 {
		maxEntries = 1
	}
	for i := 0; i < spec.Filters; i++ {
		entries := 1 + rng.Intn(maxEntries)
		f := policy.Filter{ID: object.ID(5000 + i), Name: fmt.Sprintf("filter-%d", i)}
		for e := 0; e < entries; e++ {
			base := uint16(1024 + i*maxEntries*8 + e*8)
			width := uint16(rng.Intn(7))
			proto := rule.ProtoTCP
			if rng.Intn(3) == 0 {
				proto = rule.ProtoUDP
			}
			f.Entries = append(f.Entries, policy.FilterEntry{
				Proto:  proto,
				PortLo: base,
				PortHi: base + width,
				Action: rule.Allow,
			})
		}
		p.AddFilter(f)
	}

	// Contracts referencing Zipf-popular filters.
	maxFilters := spec.FiltersPerContractMax
	if maxFilters < 1 {
		maxFilters = 1
	}
	filterRanks := zipfRanks(rng, spec.Filters, 1.0)
	for i := 0; i < spec.Contracts; i++ {
		n := 1 + rng.Intn(maxFilters)
		seen := make(map[int]struct{}, n)
		c := policy.Contract{ID: object.ID(3000 + i), Name: fmt.Sprintf("contract-%d", i)}
		for len(c.Filters) < n {
			fi := filterRanks.sample(rng)
			if _, dup := seen[fi]; dup {
				if len(seen) == spec.Filters {
					break
				}
				continue
			}
			seen[fi] = struct{}{}
			c.Filters = append(c.Filters, object.ID(5000+fi))
		}
		p.AddContract(c)
	}

	// Endpoints and switch placement.
	epID := object.ID(20000)
	maxEPs := spec.EndpointsPerEPGMax
	if maxEPs < 1 {
		maxEPs = 1
	}
	maxSw := spec.SwitchesPerEPGMax
	if maxSw < 1 {
		maxSw = 1
	}
	if maxSw > spec.Switches {
		// A tiny fabric can have fewer switches than the spread bound;
		// sampling more than exist would slice past the permutation.
		maxSw = spec.Switches
	}
	for i := 0; i < spec.EPGs; i++ {
		nEPs := 1 + rng.Intn(maxEPs)
		nSw := 1 + rng.Intn(maxSw)
		if nSw > nEPs {
			nSw = nEPs
		}
		swChoices := rng.Perm(spec.Switches)[:nSw]
		for e := 0; e < nEPs; e++ {
			sw := object.ID(1 + swChoices[e%nSw])
			p.AddEndpoint(policy.Endpoint{
				ID:     epID,
				Name:   fmt.Sprintf("ep-%d-%d", i, e),
				EPG:    object.ID(1000 + i),
				Switch: sw,
			})
			epID++
		}
	}

	// Bindings: contract usage is bimodal (most contracts small, a few
	// heavy), endpoint EPGs sampled with Zipf popularity within a VRF.
	epgsByVRF := make(map[object.ID][]int)
	for i, v := range epgVRF {
		epgsByVRF[v] = append(epgsByVRF[v], i)
	}
	usages := contractUsages(rng, spec)
	epgRanks := zipfRanks(rng, spec.EPGs, spec.EPGZipfExponent)
	bound := make(map[policy.Binding]struct{})
	for ci, usage := range usages {
		contract := object.ID(3000 + ci)
		for u := 0; u < usage; u++ {
			// Pick a VRF with at least two EPGs, then two distinct EPGs.
			v := object.ID(100 + sampleWeighted(rng, weights))
			cohort := epgsByVRF[v]
			if len(cohort) < 2 {
				continue
			}
			a := cohort[epgRanks.sampleBound(rng, len(cohort))]
			b := cohort[epgRanks.sampleBound(rng, len(cohort))]
			for tries := 0; a == b && tries < 8; tries++ {
				b = cohort[epgRanks.sampleBound(rng, len(cohort))]
			}
			if a == b {
				continue
			}
			bd := policy.Binding{
				From:     object.ID(1000 + a),
				To:       object.ID(1000 + b),
				Contract: contract,
			}
			if _, dup := bound[bd]; dup {
				continue
			}
			rev := policy.Binding{From: bd.To, To: bd.From, Contract: contract}
			if _, dup := bound[rev]; dup {
				continue
			}
			bound[bd] = struct{}{}
			p.Bindings = append(p.Bindings, bd)
		}
	}

	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid policy: %w", err)
	}
	t := topo.FromPolicy(p)
	// Ensure all switches exist even if placement missed some.
	for i := 0; i < spec.Switches; i++ {
		t.AddSwitch(object.ID(1 + i))
	}
	return p, t, nil
}

// contractUsages distributes spec.TargetPairs binding slots over the
// contracts: (1-HeavyContractFrac) of contracts get 1-9 pairs, the rest
// share the remainder with a Pareto-ish tail.
func contractUsages(rng *rand.Rand, spec Spec) []int {
	usages := make([]int, spec.Contracts)
	heavy := int(float64(spec.Contracts) * spec.HeavyContractFrac)
	if heavy < 1 {
		heavy = 1
	}
	small := spec.Contracts - heavy
	total := 0
	for i := 0; i < small; i++ {
		usages[i] = 1 + rng.Intn(9)
		total += usages[i]
	}
	remaining := spec.TargetPairs - total
	if remaining < heavy {
		remaining = heavy
	}
	// Pareto weights for heavy contracts.
	wts := make([]float64, heavy)
	sum := 0.0
	for i := range wts {
		wts[i] = math.Pow(rng.Float64()+0.01, -0.7)
		sum += wts[i]
	}
	for i := 0; i < heavy; i++ {
		usages[small+i] = 1 + int(float64(remaining)*wts[i]/sum)
	}
	rng.Shuffle(len(usages), func(i, j int) { usages[i], usages[j] = usages[j], usages[i] })
	return usages
}

func normalizeWeights(w []float64, n int) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		if i < len(w) && w[i] > 0 {
			out[i] = w[i]
		} else {
			out[i] = 0.01
		}
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func sampleWeighted(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// zipfPicker samples indices 0..n-1 with probability ∝ 1/(rank+1)^s under
// a random permutation (so popular items are spread across the ID space).
type zipfPicker struct {
	perm []int
	cdf  []float64
}

func zipfRanks(rng *rand.Rand, n int, s float64) *zipfPicker {
	z := &zipfPicker{perm: rng.Perm(n), cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *zipfPicker) sample(rng *rand.Rand) int {
	return z.perm[z.searchCDF(rng.Float64(), len(z.cdf))]
}

// sampleBound samples a rank restricted to the first bound ranks (used
// when choosing within a smaller cohort).
func (z *zipfPicker) sampleBound(rng *rand.Rand, bound int) int {
	if bound > len(z.cdf) {
		bound = len(z.cdf)
	}
	limit := z.cdf[bound-1]
	return z.searchCDF(rng.Float64()*limit, bound) % bound
}

func (z *zipfPicker) searchCDF(x float64, bound int) int {
	lo, hi := 0, bound-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
