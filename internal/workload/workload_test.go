package workload

import (
	"math/rand"
	"testing"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/risk"
	"scout/internal/tcam"
)

// TestSmallFabricSpec pins the properties the dedicated small-deployment
// spec exists for: it validates, it is denser per switch than the
// testbed by an order of magnitude, and a clean deployment fits the
// default leaf TCAM with headroom (so baselines start consistent,
// unlike linearly shrunken production specs).
func TestSmallFabricSpec(t *testing.T) {
	spec := SmallFabricSpec()
	for _, seed := range []int64{1, 2, 42} {
		p, tp, err := Generate(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tp.NumSwitches() != spec.Switches {
			t.Fatalf("seed %d: %d switches, want %d", seed, tp.NumSwitches(), spec.Switches)
		}
		d, err := compile.Compile(p, tp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pairsPerSwitch := float64(p.Stats().EPGPairs) / float64(spec.Switches)
		if pairsPerSwitch < 80 {
			t.Errorf("seed %d: %.0f EPG pairs per switch, want production-like density (>= 80)", seed, pairsPerSwitch)
		}
		for _, sw := range tp.Switches() {
			if n := len(d.RulesFor(sw)); n > tcam.DefaultCapacity*4/5 {
				t.Errorf("seed %d: switch %d compiles to %d rules, wants headroom under the %d-entry TCAM",
					seed, sw, n, tcam.DefaultCapacity)
			}
		}
	}
}

// smallSpec is a reduced production-like spec keeping tests fast.
func smallSpec() Spec {
	s := ProductionSpec()
	s.EPGs = 120
	s.Contracts = 80
	s.Filters = 40
	s.TargetPairs = 1200
	s.Switches = 10
	return s
}

func TestGenerateValidPolicy(t *testing.T) {
	for _, spec := range []Spec{smallSpec(), TestbedSpec()} {
		p, tp, err := Generate(spec, 42)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: generated policy invalid: %v", spec.Name, err)
		}
		if err := tp.Validate(p); err != nil {
			t.Fatalf("%s: topology invalid: %v", spec.Name, err)
		}
		st := p.Stats()
		if st.VRFs != spec.VRFs || st.EPGs != spec.EPGs || st.Contracts != spec.Contracts || st.Filters != spec.Filters {
			t.Errorf("%s: stats %+v do not match spec", spec.Name, st)
		}
		if tp.NumSwitches() != spec.Switches {
			t.Errorf("%s: switches = %d, want %d", spec.Name, tp.NumSwitches(), spec.Switches)
		}
		// Pair count should be in the target's ballpark (duplicates are
		// dropped, so it can land under).
		if st.EPGPairs < spec.TargetPairs/3 {
			t.Errorf("%s: pairs = %d, want around %d", spec.Name, st.EPGPairs, spec.TargetPairs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(smallSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(smallSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same seed must give same stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	if len(a.Bindings) != len(b.Bindings) {
		t.Error("bindings differ across identical seeds")
	}
	for i := range a.Bindings {
		if a.Bindings[i] != b.Bindings[i] {
			t.Fatalf("binding %d differs", i)
		}
	}
	c, _, err := Generate(smallSpec(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bindings) == len(c.Bindings) && a.Stats() == c.Stats() {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestGenerateRejectsDegenerateSpecs(t *testing.T) {
	bad := smallSpec()
	bad.EPGs = 1
	if _, _, err := Generate(bad, 1); err == nil {
		t.Error("spec with 1 EPG must be rejected")
	}
	bad = smallSpec()
	bad.VRFs = 0
	if _, _, err := Generate(bad, 1); err == nil {
		t.Error("spec with 0 VRFs must be rejected")
	}
}

func TestGeneratedSharingIsHeavyTailed(t *testing.T) {
	// Figure 3 qualitative shape: most filters/contracts serve few pairs;
	// VRFs serve many; some objects serve orders of magnitude more than
	// the median.
	p, tp, err := Generate(smallSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compile.Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	pairsPer := make(map[object.Ref]map[string]struct{})
	for sp, keys := range d.PairRules {
		for _, k := range keys {
			for _, ref := range d.Provenance[k] {
				set, ok := pairsPer[ref]
				if !ok {
					set = make(map[string]struct{})
					pairsPer[ref] = set
				}
				set[sp.Pair.String()] = struct{}{}
			}
		}
	}
	var vrfMax, contractMax, contractSmall, contractTotal int
	for ref, pairs := range pairsPer {
		n := len(pairs)
		switch ref.Kind {
		case object.KindVRF:
			if n > vrfMax {
				vrfMax = n
			}
		case object.KindContract:
			contractTotal++
			if n < 10 {
				contractSmall++
			}
			if n > contractMax {
				contractMax = n
			}
		}
	}
	if vrfMax < 100 {
		t.Errorf("largest VRF serves %d pairs, want heavy sharing (>100)", vrfMax)
	}
	if contractTotal == 0 || float64(contractSmall)/float64(contractTotal) < 0.5 {
		t.Errorf("small contracts = %d/%d, want majority <10 pairs", contractSmall, contractTotal)
	}
	if contractMax < 20 {
		t.Errorf("largest contract serves %d pairs, want a heavy tail", contractMax)
	}
}

func buildEnv(t *testing.T) (*compile.Deployment, *DepIndex) {
	t.Helper()
	p, tp, err := Generate(smallSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compile.Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	return d, BuildIndex(d)
}

func TestBuildIndexCoversDeployment(t *testing.T) {
	d, idx := buildEnv(t)
	objs := idx.Objects()
	if len(objs) == 0 {
		t.Fatal("index empty")
	}
	// Every indexed instance's provenance must contain the index key.
	for _, ref := range objs[:10] {
		for _, in := range idx.Instances(ref) {
			found := false
			for _, p := range d.Provenance[in.Key] {
				if p == ref {
					found = true
				}
			}
			if !found {
				t.Fatalf("instance %v indexed under %v but provenance lacks it", in, ref)
			}
		}
	}
}

func TestObjectsOnSwitch(t *testing.T) {
	d, idx := buildEnv(t)
	var anySwitch object.ID
	for sp := range d.PairRules {
		anySwitch = sp.Switch
		break
	}
	objs := idx.ObjectsOnSwitch(anySwitch)
	if len(objs) == 0 {
		t.Fatal("busy switch should have objects")
	}
	for _, ref := range objs {
		onSwitch := false
		for _, in := range idx.Instances(ref) {
			if in.SP.Switch == anySwitch {
				onSwitch = true
			}
		}
		if !onSwitch {
			t.Fatalf("%v reported on switch %d but has no instance there", ref, anySwitch)
		}
	}
}

func TestNewScenario(t *testing.T) {
	_, idx := buildEnv(t)
	rng := rand.New(rand.NewSource(1))
	sc, err := NewScenario(rng, idx.Objects(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 5 || len(sc.GroundTruth) != 5 {
		t.Fatalf("faults = %d", len(sc.Faults))
	}
	// Ground-truth objects are distinct.
	if object.NewSet(sc.GroundTruth...).Len() != 5 {
		t.Error("duplicate ground-truth objects")
	}
	// Every faulty object is "recently changed"; noise adds more.
	for _, ref := range sc.GroundTruth {
		if !sc.Changed.Has(ref) {
			t.Errorf("faulty %v missing from change set", ref)
		}
	}
	if sc.Changed.Len() != 8 {
		t.Errorf("changed = %d, want 5+3", sc.Changed.Len())
	}
	// Fractions are sane.
	for _, f := range sc.Faults {
		if f.Fraction <= 0 || f.Fraction > 1 {
			t.Errorf("fraction %v out of range", f.Fraction)
		}
	}
	if _, err := NewScenario(rng, idx.Objects()[:2], 5, 0); err == nil {
		t.Error("too many faults for candidate set must error")
	}
}

func TestScenarioMixesFullAndPartial(t *testing.T) {
	_, idx := buildEnv(t)
	rng := rand.New(rand.NewSource(2))
	full, partial := 0, 0
	for i := 0; i < 20; i++ {
		sc, err := NewScenario(rng, idx.Objects(), 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range sc.Faults {
			if f.IsFull() {
				full++
			} else {
				partial++
			}
		}
	}
	// Equal weight → both kinds must appear in quantity.
	if full < 20 || partial < 20 {
		t.Errorf("full=%d partial=%d, want a rough balance over 100 faults", full, partial)
	}
}

func TestApplyToControllerModelFullFault(t *testing.T) {
	d, idx := buildEnv(t)
	m := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	// Pick an object with a decent footprint.
	var target object.Ref
	for _, ref := range idx.Objects() {
		if ref.Kind == object.KindFilter && len(idx.Instances(ref)) > 4 {
			target = ref
			break
		}
	}
	if target.IsZero() {
		t.Skip("no suitable filter in workload")
	}
	sc := Scenario{Faults: []Fault{{Ref: target, Fraction: 1}}}
	rng := rand.New(rand.NewSource(3))
	failed := ApplyToControllerModel(m, d, idx, sc, rng)
	if failed != len(idx.Instances(target)) {
		t.Errorf("failed instances = %d, want all %d", failed, len(idx.Instances(target)))
	}
	// Full fault ⇒ hit ratio 1 for the target.
	if got := m.HitRatio(target); got != 1 {
		t.Errorf("hit ratio = %v, want 1 after full fault", got)
	}
}

func TestApplyToControllerModelPartialFault(t *testing.T) {
	d, idx := buildEnv(t)
	m := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	var target object.Ref
	for _, ref := range idx.Objects() {
		if len(idx.Instances(ref)) >= 10 {
			target = ref
			break
		}
	}
	if target.IsZero() {
		t.Skip("no wide object in workload")
	}
	sc := Scenario{Faults: []Fault{{Ref: target, Fraction: 0.3}}}
	rng := rand.New(rand.NewSource(3))
	ApplyToControllerModel(m, d, idx, sc, rng)
	if got := m.HitRatio(target); got >= 1 || got <= 0 {
		t.Errorf("partial fault hit ratio = %v, want in (0,1)", got)
	}
}

func TestApplyToSwitchModel(t *testing.T) {
	d, idx := buildEnv(t)
	// Find a switch and an object deployed there.
	var sw object.ID
	for sp := range d.PairRules {
		sw = sp.Switch
		break
	}
	objs := idx.ObjectsOnSwitch(sw)
	if len(objs) == 0 {
		t.Skip("empty switch")
	}
	m := risk.BuildSwitchModel(d, sw)
	sc := Scenario{Faults: []Fault{{Ref: objs[0], Fraction: 1}}}
	rng := rand.New(rand.NewSource(4))
	failed := ApplyToSwitchModel(m, d, idx, sw, sc, rng)
	if failed == 0 {
		t.Fatal("switch-scoped fault must fail instances")
	}
	if len(m.FailureSignature()) == 0 {
		t.Error("model must have observations after injection")
	}
}

func TestFaultString(t *testing.T) {
	full := Fault{Ref: object.Filter(1), Fraction: 1}
	part := Fault{Ref: object.Filter(2), Fraction: 0.25}
	if full.String() != "full(filter:1)" {
		t.Errorf("full = %q", full.String())
	}
	if part.String() != "partial(filter:2,0.25)" {
		t.Errorf("partial = %q", part.String())
	}
}

func TestTopologyCoversAllSwitches(t *testing.T) {
	spec := smallSpec()
	spec.Switches = 50 // more switches than EPG placement may reach
	_, tp, err := Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 50 {
		t.Errorf("switches = %d, want 50 (padding)", tp.NumSwitches())
	}
}

func TestGenerateFewerSwitchesThanSpread(t *testing.T) {
	// Regression: a spec scaled down to fewer switches than
	// SwitchesPerEPGMax used to slice past the switch permutation.
	spec := smallSpec()
	spec.Switches = 2
	spec.SwitchesPerEPGMax = 5
	p, tp, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 2 {
		t.Errorf("switches = %d, want 2", tp.NumSwitches())
	}
	for _, ep := range p.Endpoints {
		if ep.Switch < 1 || ep.Switch > 2 {
			t.Fatalf("endpoint %d placed on nonexistent switch %d", ep.ID, ep.Switch)
		}
	}
}
