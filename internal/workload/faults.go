// Fault scenario generation and risk-model-level fault application.
//
// The paper's simulation setup (§VI-A) injects two fault types with equal
// weight: full object faults (every TCAM rule derived from the object goes
// missing) and partial object faults (only a subset goes missing — the
// regime where SCORE's fixed hit-ratio threshold fails and SCOUT's
// change-log stage recovers accuracy). Scenarios apply faults directly at
// the risk-model level, which is exactly the information the equivalence
// checker would produce, without paying for per-rule TCAM and BDD work in
// large simulations.

package workload

import (
	"fmt"
	"math/rand"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/risk"
	"scout/internal/rule"
)

// Instance is one deployed logical rule: a rule key serving an EPG pair on
// a switch.
type Instance struct {
	SP  compile.SwitchPair
	Key rule.Key
}

// DepIndex maps every policy object to the deployed rule instances whose
// provenance contains it.
type DepIndex struct {
	byObject map[object.Ref][]Instance
	d        *compile.Deployment
}

// BuildIndex constructs the object → instances index for a deployment.
func BuildIndex(d *compile.Deployment) *DepIndex {
	idx := &DepIndex{byObject: make(map[object.Ref][]Instance), d: d}
	for sp, keys := range d.PairRules {
		for _, k := range keys {
			inst := Instance{SP: sp, Key: k}
			for _, ref := range d.Provenance[k] {
				idx.byObject[ref] = append(idx.byObject[ref], inst)
			}
		}
	}
	return idx
}

// Objects returns all policy objects with at least one deployed rule,
// sorted.
func (idx *DepIndex) Objects() []object.Ref {
	out := make([]object.Ref, 0, len(idx.byObject))
	for ref := range idx.byObject {
		out = append(out, ref)
	}
	object.SortRefs(out)
	return out
}

// Instances returns the deployed rule instances depending on ref.
func (idx *DepIndex) Instances(ref object.Ref) []Instance { return idx.byObject[ref] }

// ObjectsOnSwitch returns the policy objects with at least one rule
// instance deployed on switch sw, sorted.
func (idx *DepIndex) ObjectsOnSwitch(sw object.ID) []object.Ref {
	set := make(object.Set)
	for ref, instances := range idx.byObject {
		for _, in := range instances {
			if in.SP.Switch == sw {
				set.Add(ref)
				break
			}
		}
	}
	return set.Sorted()
}

// Fault is one injected object fault. Fraction 1 is a full object fault;
// less than 1 a partial object fault.
type Fault struct {
	Ref      object.Ref
	Fraction float64
}

// IsFull reports whether the fault removes every dependent rule.
func (f Fault) IsFull() bool { return f.Fraction >= 1 }

// String renders the fault for logs.
func (f Fault) String() string {
	if f.IsFull() {
		return fmt.Sprintf("full(%s)", f.Ref)
	}
	return fmt.Sprintf("partial(%s,%.2f)", f.Ref, f.Fraction)
}

// Scenario is a reproducible multi-fault experiment input.
type Scenario struct {
	// Faults are the injected object faults.
	Faults []Fault
	// GroundTruth is the set G of truly faulty objects.
	GroundTruth []object.Ref
	// Changed simulates the controller change log: it contains every
	// faulty object (the paper's evaluation ties faults to recent
	// configuration actions) plus noise entries for healthy objects.
	Changed object.Set
}

// NewScenario samples n distinct object faults from the candidate set
// (full/partial with equal weight, per §VI-A) plus noiseCount healthy
// recently-changed objects.
func NewScenario(rng *rand.Rand, candidates []object.Ref, n, noiseCount int) (Scenario, error) {
	if n > len(candidates) {
		return Scenario{}, fmt.Errorf("workload: want %d faults but only %d candidate objects", n, len(candidates))
	}
	perm := rng.Perm(len(candidates))
	sc := Scenario{Changed: make(object.Set)}
	for i := 0; i < n; i++ {
		ref := candidates[perm[i]]
		f := Fault{Ref: ref, Fraction: 1}
		if rng.Intn(2) == 0 {
			f.Fraction = 0.1 + 0.8*rng.Float64()
		}
		sc.Faults = append(sc.Faults, f)
		sc.GroundTruth = append(sc.GroundTruth, ref)
		sc.Changed.Add(ref)
	}
	for i := n; i < len(perm) && i < n+noiseCount; i++ {
		sc.Changed.Add(candidates[perm[i]])
	}
	object.SortRefs(sc.GroundTruth)
	return sc, nil
}

// ApplyToControllerModel injects the scenario's faults into a controller
// risk model built from deployment d: for every selected rule instance the
// (switch, pair) triplet's edges to all of the rule's provenance objects
// are marked fail (and to the switch risk when modeled), mirroring what
// AugmentControllerModel would do with the checker's missing rules. m may
// be the model itself or a copy-on-write overlay over it — experiment
// harnesses stack a fresh overlay per scenario instead of resetting and
// re-marking the model. It returns the number of rule instances failed.
func ApplyToControllerModel(m risk.Marker, d *compile.Deployment, idx *DepIndex, sc Scenario, rng *rand.Rand) int {
	failed := 0
	for _, f := range sc.Faults {
		for _, in := range selectInstances(idx.Instances(f.Ref), f, rng) {
			el, ok := m.ElementByLabel(in.SP.String())
			if !ok {
				continue
			}
			for _, ref := range d.Provenance[in.Key] {
				m.MarkFailed(el, ref)
			}
			swRef := object.Switch(in.SP.Switch)
			if _, modeled := m.RiskByRef(swRef); modeled {
				m.MarkFailed(el, swRef)
			}
			failed++
		}
	}
	return failed
}

// ApplyToSwitchModel injects the scenario's faults restricted to switch sw
// into that switch's risk model.
func ApplyToSwitchModel(m risk.Marker, d *compile.Deployment, idx *DepIndex, sw object.ID, sc Scenario, rng *rand.Rand) int {
	failed := 0
	for _, f := range sc.Faults {
		var local []Instance
		for _, in := range idx.Instances(f.Ref) {
			if in.SP.Switch == sw {
				local = append(local, in)
			}
		}
		for _, in := range selectInstances(local, f, rng) {
			el, ok := m.ElementByLabel(in.SP.Pair.String())
			if !ok {
				continue
			}
			for _, ref := range d.Provenance[in.Key] {
				m.MarkFailed(el, ref)
			}
			failed++
		}
	}
	return failed
}

// selectInstances picks the instances a fault damages: all of them for a
// full fault, a random non-empty subset for a partial fault.
func selectInstances(instances []Instance, f Fault, rng *rand.Rand) []Instance {
	if len(instances) == 0 {
		return nil
	}
	if f.IsFull() {
		return instances
	}
	n := int(float64(len(instances)) * f.Fraction)
	if n < 1 {
		n = 1
	}
	if n >= len(instances) {
		n = len(instances) - 1 // partial fault must leave something intact
		if n < 1 {
			n = 1
		}
	}
	shuffled := make([]Instance, len(instances))
	copy(shuffled, instances)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return shuffled[:n]
}
