package workload

import (
	"math/rand"
	"testing"

	"scout/internal/compile"
	"scout/internal/risk"
)

// BenchmarkGenerate measures synthetic policy generation.
func BenchmarkGenerate(b *testing.B) {
	spec := smallSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(spec, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildIndex measures the object→instances index build.
func BenchmarkBuildIndex(b *testing.B) {
	p, t, err := Generate(smallSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	d, err := compile.Compile(p, t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := BuildIndex(d); len(idx.Objects()) == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkApplyScenario measures risk-model fault application.
func BenchmarkApplyScenario(b *testing.B) {
	p, t, err := Generate(smallSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	d, err := compile.Compile(p, t)
	if err != nil {
		b.Fatal(err)
	}
	idx := BuildIndex(d)
	m := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	rng := rand.New(rand.NewSource(7))
	sc, err := NewScenario(rng, idx.Objects(), 5, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ResetFailures()
		ApplyToControllerModel(m, d, idx, sc, rng)
	}
}
