// Package fabric simulates the paper's 3-tier policy deployment pipeline
// (§II): a centralized controller holding the global network policy, a
// software agent per switch maintaining a local logical view, and the
// switch TCAM holding rendered rules. Every element can fail independently
// — controller↔agent disconnection, agent crash mid-update, TCAM overflow,
// TCAM bit corruption, and local rule eviction — producing exactly the
// network-state inconsistencies (§II-B) that SCOUT localizes.
//
// The fabric runs on a deterministic logical clock and a seeded RNG so
// experiments are reproducible.
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scout/internal/compile"
	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/tcam"
	"scout/internal/topo"
)

// ErrUnknownSwitch is returned when an operation names a switch that is
// not part of the topology.
var ErrUnknownSwitch = errors.New("fabric: unknown switch")

// Options configures a Fabric.
type Options struct {
	// TCAMCapacity is the per-switch TCAM size in entries; <= 0 selects
	// tcam.DefaultCapacity.
	TCAMCapacity int
	// Seed seeds the fabric's RNG (fault injection randomness).
	Seed int64
	// Start is the logical wall-clock origin; the zero value selects a
	// fixed deterministic epoch.
	Start time.Time
	// Tick is the logical time advanced by every fabric operation;
	// <= 0 selects one second.
	Tick time.Duration
}

// Switch is the per-device state: agent health, reachability, the agent's
// local logical view of the policy, and the TCAM.
type Switch struct {
	ID object.ID

	// reachable is false while the control channel to the switch is down.
	reachable bool
	// agentUp is false after a simulated agent crash.
	agentUp bool

	// view is the agent's local logical view: the rule keys the agent
	// believes are installed (its copy of the controller instructions).
	view map[rule.Key]rule.Rule

	// pending holds instructions delivered to the agent but not yet
	// rendered into TCAM (populated when the agent crashes mid-update).
	pending []rule.Rule

	tcam *tcam.TCAM
}

// TCAM exposes the switch's TCAM (primarily for tests and collection).
func (s *Switch) TCAM() *tcam.TCAM { return s.tcam }

// Reachable reports whether the control channel to the switch is up.
func (s *Switch) Reachable() bool { return s.reachable }

// AgentUp reports whether the switch agent process is running.
func (s *Switch) AgentUp() bool { return s.agentUp }

// Fabric is the simulated deployment plane.
type Fabric struct {
	pol      *policy.Policy
	topology *topo.Topology
	switches map[object.ID]*Switch

	changes *faultlog.ChangeLog
	faults  *faultlog.FaultLog
	events  *faultlog.EventLog

	deployed *compile.Deployment // last compiled desired state

	now  time.Time
	tick time.Duration
	rng  *rand.Rand
}

// New creates a fabric for the given policy and topology. The policy is
// cloned: subsequent edits must go through the fabric's change methods so
// they are recorded in the change log.
func New(p *policy.Policy, t *topo.Topology, opts Options) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	if err := t.Validate(p); err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC) // ICDCS'18 day one
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = time.Second
	}
	f := &Fabric{
		pol:      p.Clone(),
		topology: t,
		switches: make(map[object.ID]*Switch, t.NumSwitches()),
		changes:  faultlog.NewChangeLog(),
		faults:   faultlog.NewFaultLog(),
		events:   faultlog.NewEventLog(),
		now:      start,
		tick:     tick,
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	for _, sw := range t.Switches() {
		f.switches[sw] = &Switch{
			ID:        sw,
			reachable: true,
			agentUp:   true,
			view:      make(map[rule.Key]rule.Rule),
			tcam:      tcam.New(opts.TCAMCapacity),
		}
	}
	return f, nil
}

// Policy returns the controller's current desired policy (the global
// network policy). Callers must not mutate it directly.
func (f *Fabric) Policy() *policy.Policy { return f.pol }

// Topology returns the fabric topology.
func (f *Fabric) Topology() *topo.Topology { return f.topology }

// ChangeLog returns the controller change log.
func (f *Fabric) ChangeLog() *faultlog.ChangeLog { return f.changes }

// FaultLog returns the device fault log.
func (f *Fabric) FaultLog() *faultlog.FaultLog { return f.faults }

// EventLog returns the dataplane event stream: one switch-scoped event
// per TCAM mutation, link transition, or EPG placement change. The
// simulator emits events for *every* TCAM write, including the silent
// faults (corruption, eviction) that raise no device fault log — it
// plays the monitoring plane's role, so event-driven collection can be
// exercised against any failure mode. A real deployment's stream would
// miss silent faults; the periodic full-snapshot path exists for those.
func (f *Fabric) EventLog() *faultlog.EventLog { return f.events }

// emit appends a switch-scoped event at the current logical time.
func (f *Fabric) emit(kind faultlog.EventKind, sw object.ID, detail string) {
	f.events.Append(f.now, kind, sw, detail)
}

// Now returns the current logical time.
func (f *Fabric) Now() time.Time { return f.now }

// Deployment returns the most recently compiled desired state (nil before
// the first Deploy).
func (f *Fabric) Deployment() *compile.Deployment { return f.deployed }

// Switch returns the state of switch sw.
func (f *Fabric) Switch(sw object.ID) (*Switch, error) {
	s, ok := f.switches[sw]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSwitch, sw)
	}
	return s, nil
}

func (f *Fabric) advance() time.Time {
	f.now = f.now.Add(f.tick)
	return f.now
}

// Deploy compiles the current policy and pushes per-switch instruction
// deltas to every agent. Unreachable switches receive nothing; crashed
// agents accept instructions into their pending queue but do not render
// them. TCAM overflow during rendering raises a fault-log event.
func (f *Fabric) Deploy() error {
	d, err := compile.Compile(f.pol, f.topology)
	if err != nil {
		return err
	}
	f.deployed = d
	for _, sw := range f.topology.Switches() {
		f.pushToSwitch(f.switches[sw], d.BySwitch[sw])
	}
	return nil
}

// pushToSwitch reconciles a switch's local view and TCAM with the desired
// rule list, emitting one TCAM-change event when the TCAM was mutated.
func (f *Fabric) pushToSwitch(s *Switch, desired []rule.Rule) {
	if !s.reachable {
		return // instructions lost; controller-side state already updated
	}
	want := make(map[rule.Key]rule.Rule, len(desired))
	for _, r := range desired {
		want[r.Key()] = r
	}
	changed := false
	// Delete stale entries from the agent view and TCAM.
	for k := range s.view {
		if _, ok := want[k]; !ok {
			delete(s.view, k)
			if s.agentUp && s.tcam.Remove(k) {
				changed = true
			}
		}
	}
	// Install new entries in deterministic order.
	adds := make([]rule.Rule, 0, len(desired))
	for _, r := range desired {
		if _, ok := s.view[r.Key()]; !ok {
			adds = append(adds, r)
		}
	}
	rule.Sort(adds)
	for _, r := range adds {
		s.view[r.Key()] = r
		if !s.agentUp {
			s.pending = append(s.pending, r)
			continue
		}
		if f.renderRule(s, r) {
			changed = true
		}
	}
	if changed {
		f.emit(faultlog.EventTCAMChange, s.ID, "policy push")
	}
}

// renderRule installs one rule into TCAM, logging overflow faults. It
// reports whether the rule was actually installed.
func (f *Fabric) renderRule(s *Switch, r rule.Rule) bool {
	err := s.tcam.Install(r)
	if err == nil {
		return true
	}
	if errors.Is(err, tcam.ErrFull) {
		f.faults.Raise(f.now, faultlog.FaultTCAMOverflow, s.ID,
			fmt.Sprintf("tcam at %d/%d entries", s.tcam.Len(), s.tcam.Capacity()))
	}
	return false
}

// --- Policy change operations (recorded in the change log) ---

// AddFilter adds a filter object to the policy.
func (f *Fabric) AddFilter(flt policy.Filter) error {
	f.pol.AddFilter(flt)
	f.changes.Append(f.advance(), faultlog.OpAdd, object.Filter(flt.ID), "add filter "+flt.Name)
	return f.Deploy()
}

// AddFilterToContract appends an existing filter to a contract and
// redeploys — the paper's "add filter" instruction used by the §V-B use
// cases.
func (f *Fabric) AddFilterToContract(contract, filter object.ID) error {
	c, ok := f.pol.Contracts[contract]
	if !ok {
		return fmt.Errorf("fabric: unknown contract %d", contract)
	}
	if _, ok := f.pol.Filters[filter]; !ok {
		return fmt.Errorf("fabric: unknown filter %d", filter)
	}
	c.Filters = append(c.Filters, filter)
	at := f.advance()
	f.changes.Append(at, faultlog.OpModify, object.Contract(contract), "attach filter")
	f.changes.Append(at, faultlog.OpAdd, object.Filter(filter), "add filter to contract",
		f.switchesForContract(contract)...)
	return f.Deploy()
}

// RemoveFilterFromContract detaches a filter from a contract and redeploys.
func (f *Fabric) RemoveFilterFromContract(contract, filter object.ID) error {
	c, ok := f.pol.Contracts[contract]
	if !ok {
		return fmt.Errorf("fabric: unknown contract %d", contract)
	}
	kept := c.Filters[:0]
	removed := false
	for _, fid := range c.Filters {
		if fid == filter && !removed {
			removed = true
			continue
		}
		kept = append(kept, fid)
	}
	if !removed {
		return fmt.Errorf("fabric: contract %d does not reference filter %d", contract, filter)
	}
	c.Filters = kept
	at := f.advance()
	f.changes.Append(at, faultlog.OpModify, object.Contract(contract), "detach filter")
	f.changes.Append(at, faultlog.OpDelete, object.Filter(filter), "remove filter from contract",
		f.switchesForContract(contract)...)
	return f.Deploy()
}

// AddBinding binds a contract to an EPG pair and redeploys. Each switch
// hosting the pair gets an EPG placement event (the subsequent push emits
// TCAM-change events only for switches whose TCAM actually moved).
func (f *Fabric) AddBinding(from, to, contract object.ID) error {
	f.pol.Bind(from, to, contract)
	at := f.advance()
	f.changes.Append(at, faultlog.OpModify, object.EPG(from), "bind contract")
	f.changes.Append(at, faultlog.OpModify, object.EPG(to), "bind contract")
	f.changes.Append(at, faultlog.OpModify, object.Contract(contract), "bind to epg pair")
	for _, sw := range f.topology.SwitchesForPair(from, to) {
		f.emit(faultlog.EventEPG, sw, fmt.Sprintf("contract %d bound on hosted pair", contract))
	}
	return f.Deploy()
}

// RecordChange appends an arbitrary change-log entry without altering the
// policy. Workload generators use it to simulate historical operator
// activity.
func (f *Fabric) RecordChange(op faultlog.ChangeOp, obj object.Ref, detail string) {
	f.changes.Append(f.advance(), op, obj, detail)
}

func (f *Fabric) switchesForContract(contract object.ID) []object.ID {
	seen := make(map[object.ID]struct{})
	var out []object.ID
	for _, b := range f.pol.Bindings {
		if b.Contract != contract {
			continue
		}
		for _, sw := range f.topology.SwitchesForPair(b.From, b.To) {
			if _, dup := seen[sw]; dup {
				continue
			}
			seen[sw] = struct{}{}
			out = append(out, sw)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Fault injection (the paper's §II-B failure modes) ---

// Disconnect makes a switch unreachable from the controller (control
// channel disruption / unresponsive switch) and raises a fault event.
func (f *Fabric) Disconnect(sw object.ID) error {
	s, err := f.Switch(sw)
	if err != nil {
		return err
	}
	if s.reachable {
		s.reachable = false
		f.faults.Raise(f.advance(), faultlog.FaultSwitchUnreachable, sw, "heartbeat lost")
		f.emit(faultlog.EventLink, sw, "control channel down")
	}
	return nil
}

// Reconnect restores the control channel. Pending desired state is NOT
// automatically re-pushed (the controller believes the switch is current),
// preserving the inconsistency until the next full Deploy.
func (f *Fabric) Reconnect(sw object.ID) error {
	s, err := f.Switch(sw)
	if err != nil {
		return err
	}
	if !s.reachable {
		s.reachable = true
		f.faults.Clear(f.advance(), faultlog.FaultSwitchUnreachable, sw)
		f.emit(faultlog.EventLink, sw, "control channel restored")
	}
	return nil
}

// CrashAgent stops the switch agent: subsequently delivered instructions
// queue without being rendered into TCAM (agent crash mid-update, §II-B).
func (f *Fabric) CrashAgent(sw object.ID) error {
	s, err := f.Switch(sw)
	if err != nil {
		return err
	}
	if s.agentUp {
		s.agentUp = false
		f.faults.Raise(f.advance(), faultlog.FaultAgentCrash, sw, "agent process died")
	}
	return nil
}

// RestartAgent restarts the agent and renders any queued instructions.
func (f *Fabric) RestartAgent(sw object.ID) error {
	s, err := f.Switch(sw)
	if err != nil {
		return err
	}
	if !s.agentUp {
		s.agentUp = true
		f.faults.Clear(f.advance(), faultlog.FaultAgentCrash, sw)
		rendered := false
		for _, r := range s.pending {
			if f.renderRule(s, r) {
				rendered = true
			}
		}
		s.pending = nil
		if rendered {
			f.emit(faultlog.EventTCAMChange, sw, "agent restart rendered queued rules")
		}
	}
	return nil
}

// CorruptTCAM flips bits in n random TCAM entries of switch sw. TCAM
// corruption is a silent hardware fault: no fault-log event is raised
// (§V-B notes such faults produce no logs).
func (f *Fabric) CorruptTCAM(sw object.ID, n int, field tcam.CorruptionField) ([]rule.Key, error) {
	s, err := f.Switch(sw)
	if err != nil {
		return nil, err
	}
	f.advance()
	keys := s.tcam.Corrupt(n, field, f.rng)
	if len(keys) > 0 {
		f.emit(faultlog.EventTCAMChange, sw, "tcam corruption")
	}
	return keys, nil
}

// EvictTCAM removes n random TCAM entries on switch sw (local eviction the
// controller is unaware of). No fault event is raised.
func (f *Fabric) EvictTCAM(sw object.ID, n int) ([]rule.Rule, error) {
	s, err := f.Switch(sw)
	if err != nil {
		return nil, err
	}
	f.advance()
	evicted := s.tcam.EvictRandom(n, f.rng)
	if len(evicted) > 0 {
		f.emit(faultlog.EventTCAMChange, sw, "local rule eviction")
	}
	return evicted, nil
}

// InjectObjectFault deletes from the TCAMs the rules derived from the
// given policy object. fraction selects the portion of dependent rules to
// delete: 1.0 is the paper's "full object fault", anything lower a
// "partial object fault" (§VI-A). It returns the number of rules removed
// and records a change-log entry for the object (faults in the paper's
// evaluation stem from recent deployment actions on the object).
func (f *Fabric) InjectObjectFault(ref object.Ref, fraction float64) (int, error) {
	if f.deployed == nil {
		return 0, errors.New("fabric: inject object fault before Deploy")
	}
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("fabric: fraction %v out of (0,1]", fraction)
	}
	type target struct {
		sw  object.ID
		key rule.Key
	}
	var targets []target
	for _, sw := range f.topology.Switches() {
		for _, r := range f.deployed.BySwitch[sw] {
			if r.HasProvenance(ref) {
				targets = append(targets, target{sw: sw, key: r.Key()})
			}
		}
	}
	if len(targets) == 0 {
		return 0, nil
	}
	n := len(targets)
	if fraction < 1 {
		n = int(float64(len(targets)) * fraction)
		if n == 0 {
			n = 1
		}
		f.rng.Shuffle(len(targets), func(i, j int) {
			targets[i], targets[j] = targets[j], targets[i]
		})
	}
	removed := 0
	touched := make(map[object.ID]bool)
	for _, t := range targets[:n] {
		if f.switches[t.sw].tcam.Remove(t.key) {
			removed++
			touched[t.sw] = true
		}
	}
	f.changes.Append(f.advance(), faultlog.OpModify, ref, "configuration action preceding fault")
	swIDs := make([]object.ID, 0, len(touched))
	for sw := range touched {
		swIDs = append(swIDs, sw)
	}
	sort.Slice(swIDs, func(i, j int) bool { return swIDs[i] < swIDs[j] })
	for _, sw := range swIDs {
		f.emit(faultlog.EventTCAMChange, sw, "rules lost: "+ref.String())
	}
	return removed, nil
}

// --- State collection ---

// CollectTCAM returns the TCAM snapshot of switch sw (T-type rules). Rule
// collection runs over a management path and is modeled as always
// available, even while the policy control channel is down.
func (f *Fabric) CollectTCAM(sw object.ID) ([]rule.Rule, error) {
	s, err := f.Switch(sw)
	if err != nil {
		return nil, err
	}
	return s.tcam.Rules(), nil
}

// CollectAll returns TCAM snapshots for every switch.
func (f *Fabric) CollectAll() map[object.ID][]rule.Rule {
	out := make(map[object.ID][]rule.Rule, len(f.switches))
	for id, s := range f.switches {
		out[id] = s.tcam.Rules()
	}
	return out
}
