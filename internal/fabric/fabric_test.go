package fabric

import (
	"errors"
	"testing"

	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/tcam"
	"scout/internal/topo"
)

// threeTier builds the Figure 1 example used throughout the fabric tests.
func threeTier(t testing.TB) (*policy.Policy, *topo.Topology) {
	t.Helper()
	p := policy.New("three-tier")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(policy.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddEndpoint(policy.Endpoint{ID: 13, EPG: 3, Switch: 3})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddFilter(policy.Filter{ID: 700, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 700)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.AddContract(policy.Contract{ID: 202, Filters: []object.ID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	return p, topo.FromPolicy(p)
}

func newFabric(t testing.TB, opts Options) *Fabric {
	t.Helper()
	p, tp := threeTier(t)
	f, err := New(p, tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDeployRendersAllRules(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	d := f.Deployment()
	for _, sw := range f.Topology().Switches() {
		got, err := f.CollectTCAM(sw)
		if err != nil {
			t.Fatal(err)
		}
		want := d.RulesFor(sw)
		if len(got) != len(want) {
			t.Errorf("switch %d: %d TCAM rules, want %d", sw, len(got), len(want))
		}
		gotKeys := rule.KeySet(got)
		for _, r := range want {
			if _, ok := gotKeys[r.Key()]; !ok {
				t.Errorf("switch %d missing rule %v", sw, r)
			}
		}
	}
}

func TestDeployIsIdempotent(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	before, _ := f.CollectTCAM(2)
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	after, _ := f.CollectTCAM(2)
	if len(before) != len(after) {
		t.Errorf("redeploy changed rule count: %d -> %d", len(before), len(after))
	}
}

func TestUnknownSwitchErrors(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if _, err := f.Switch(99); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("err = %v, want ErrUnknownSwitch", err)
	}
	if _, err := f.CollectTCAM(99); err == nil {
		t.Error("CollectTCAM(99) must fail")
	}
	if err := f.Disconnect(99); err == nil {
		t.Error("Disconnect(99) must fail")
	}
}

func TestDisconnectBlocksUpdatesAndLogsFault(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect(2); err != nil {
		t.Fatal(err)
	}
	before, _ := f.CollectTCAM(2)

	// Push a new filter into the App-DB contract; S2 must miss it.
	if err := f.AddFilter(policy.Filter{ID: 443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(202, 443); err != nil {
		t.Fatal(err)
	}
	after, _ := f.CollectTCAM(2)
	if len(after) != len(before) {
		t.Errorf("unreachable switch must not receive rules: %d -> %d", len(before), len(after))
	}
	// S3 (reachable, hosts DB) must have the new rules.
	s3, _ := f.CollectTCAM(3)
	found := false
	for _, r := range s3 {
		if r.Match.PortLo == 443 {
			found = true
		}
	}
	if !found {
		t.Error("reachable switch 3 missing the new 443 rules")
	}
	// Fault log must carry the unreachable event, still active.
	active := f.FaultLog().ActiveAt(f.Now())
	if len(active) != 1 || active[0].Code != faultlog.FaultSwitchUnreachable || active[0].Switch != 2 {
		t.Errorf("active faults = %v", active)
	}

	// Reconnect clears the fault but does NOT resync (the paper's
	// inconsistency persists until a full redeploy).
	if err := f.Reconnect(2); err != nil {
		t.Fatal(err)
	}
	if len(f.FaultLog().ActiveAt(f.Now())) != 0 {
		t.Error("fault must clear on reconnect")
	}
	again, _ := f.CollectTCAM(2)
	if len(again) != len(before) {
		t.Error("reconnect must not auto-resync")
	}
	// A full Deploy reconciles.
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	resynced, _ := f.CollectTCAM(2)
	if len(resynced) <= len(before) {
		t.Error("redeploy after reconnect must install the missed rules")
	}
}

func TestAgentCrashQueuesPendingRules(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := f.CrashAgent(3); err != nil {
		t.Fatal(err)
	}
	before, _ := f.CollectTCAM(3)

	if err := f.AddFilter(policy.Filter{ID: 8443, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 8443)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(202, 8443); err != nil {
		t.Fatal(err)
	}
	mid, _ := f.CollectTCAM(3)
	if len(mid) != len(before) {
		t.Error("crashed agent must not render new rules")
	}
	// Restart renders the queued instructions.
	if err := f.RestartAgent(3); err != nil {
		t.Fatal(err)
	}
	after, _ := f.CollectTCAM(3)
	if len(after) <= len(before) {
		t.Error("restart must flush pending rules into TCAM")
	}
	// Crash + restart leave a cleared fault in the log.
	faults := f.FaultLog().OnSwitch(3)
	if len(faults) != 1 || faults[0].Code != faultlog.FaultAgentCrash || faults[0].Cleared.IsZero() {
		t.Errorf("fault log = %+v", faults)
	}
}

func TestTCAMOverflowRaisesFault(t *testing.T) {
	p, tp := threeTier(t)
	f, err := New(p, tp, Options{Seed: 1, TCAMCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	// S2 wants 7 rules but only 3 fit.
	s2, _ := f.CollectTCAM(2)
	if len(s2) != 3 {
		t.Errorf("S2 rules = %d, want capacity 3", len(s2))
	}
	overflow := false
	for _, flt := range f.FaultLog().OnSwitch(2) {
		if flt.Code == faultlog.FaultTCAMOverflow {
			overflow = true
		}
	}
	if !overflow {
		t.Error("overflow fault must be logged for S2")
	}
}

func TestInjectObjectFaultFull(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	removed, err := f.InjectObjectFault(object.Filter(700), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Filter 700 renders 2 rules on S2 and 2 on S3.
	if removed != 4 {
		t.Errorf("removed = %d, want 4", removed)
	}
	for _, sw := range []object.ID{2, 3} {
		rules, _ := f.CollectTCAM(sw)
		for _, r := range rules {
			if r.Match.PortLo == 700 {
				t.Errorf("switch %d still has port-700 rule", sw)
			}
		}
	}
	// The change log records a recent action on the object.
	if _, ok := f.ChangeLog().LastChange(object.Filter(700)); !ok {
		t.Error("object fault must leave a change-log trace")
	}
}

func TestInjectObjectFaultPartial(t *testing.T) {
	f := newFabric(t, Options{Seed: 7})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	removed, err := f.InjectObjectFault(object.Filter(700), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // half of 4
		t.Errorf("removed = %d, want 2", removed)
	}
}

func TestInjectObjectFaultValidation(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if _, err := f.InjectObjectFault(object.Filter(700), 1.0); err == nil {
		t.Error("injection before Deploy must fail")
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := f.InjectObjectFault(object.Filter(700), frac); err == nil {
			t.Errorf("fraction %v must be rejected", frac)
		}
	}
	// Unknown object: no instances, no error, nothing removed.
	n, err := f.InjectObjectFault(object.Filter(9999), 1.0)
	if err != nil || n != 0 {
		t.Errorf("unknown object: n=%d err=%v", n, err)
	}
}

func TestRemoveFilterFromContract(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveFilterFromContract(202, 700); err != nil {
		t.Fatal(err)
	}
	s2, _ := f.CollectTCAM(2)
	for _, r := range s2 {
		if r.Match.PortLo == 700 {
			t.Error("removed filter's rules must be deleted from TCAM")
		}
	}
	if err := f.RemoveFilterFromContract(202, 700); err == nil {
		t.Error("removing an unattached filter must fail")
	}
	if err := f.RemoveFilterFromContract(999, 80); err == nil {
		t.Error("unknown contract must fail")
	}
}

func TestAddBindingDeploysNewPair(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	// Bind Web-DB with the Web-App contract: S1 and S3 gain rules.
	if err := f.AddBinding(1, 3, 201); err != nil {
		t.Fatal(err)
	}
	s1, _ := f.CollectTCAM(1)
	found := false
	for _, r := range s1 {
		if (r.Match.SrcEPG == 1 && r.Match.DstEPG == 3) || (r.Match.SrcEPG == 3 && r.Match.DstEPG == 1) {
			found = true
		}
	}
	if !found {
		t.Error("S1 must carry the new Web-DB rules")
	}
	if f.ChangeLog().Len() == 0 {
		t.Error("AddBinding must log changes")
	}
}

func TestCorruptAndEvictTCAM(t *testing.T) {
	f := newFabric(t, Options{Seed: 5})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	damaged, err := f.CorruptTCAM(2, 2, tcam.CorruptVRF)
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) == 0 {
		t.Error("corruption should damage entries")
	}
	// Silent fault: no fault-log event.
	for _, flt := range f.FaultLog().OnSwitch(2) {
		if flt.Code == faultlog.FaultTCAMCorruption {
			t.Error("TCAM corruption must not be logged (silent fault)")
		}
	}

	evicted, err := f.EvictTCAM(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 {
		t.Errorf("evicted = %d", len(evicted))
	}
}

func TestCollectAll(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	all := f.CollectAll()
	if len(all) != 3 {
		t.Errorf("CollectAll switches = %d", len(all))
	}
	for sw, rules := range all {
		if len(rules) == 0 {
			t.Errorf("switch %d snapshot empty", sw)
		}
	}
}

func TestNewRejectsInvalidInputs(t *testing.T) {
	p, tp := threeTier(t)
	p.Bind(1, 999, 201)
	if _, err := New(p, tp, Options{}); err == nil {
		t.Error("invalid policy must be rejected")
	}

	p2, _ := threeTier(t)
	badTopo := topo.New(1) // missing switches 2, 3
	if _, err := New(p2, badTopo, Options{}); err == nil {
		t.Error("topology not covering endpoints must be rejected")
	}
}

func TestClockAdvances(t *testing.T) {
	f := newFabric(t, Options{Seed: 1})
	t0 := f.Now()
	f.RecordChange(faultlog.OpModify, object.Filter(80), "note")
	if !f.Now().After(t0) {
		t.Error("operations must advance the logical clock")
	}
}

func TestFabricPolicyCloneIsolation(t *testing.T) {
	p, tp := threeTier(t)
	f, err := New(p, tp, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's policy must not affect the fabric.
	p.AddEPG(policy.EPG{ID: 99, VRF: 101})
	if _, ok := f.Policy().EPGs[99]; ok {
		t.Error("fabric must clone the policy at construction")
	}
}
