package fabric

import (
	"testing"

	"scout/internal/object"
	"scout/internal/workload"
)

// BenchmarkDeploy measures a full testbed-policy deployment (compile +
// agent reconciliation + TCAM programming).
func BenchmarkDeploy(b *testing.B) {
	p, t, err := workload.Generate(workload.TestbedSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := New(p, t, Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := f.Deploy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalChange measures an AddFilterToContract change push
// (the paper's §V-B dynamic-change workload).
func BenchmarkIncrementalChange(b *testing.B) {
	p, t, err := workload.Generate(workload.TestbedSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(p, t, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		b.Fatal(err)
	}
	contract := p.Bindings[0].Contract
	filter := p.Contracts[contract].Filters[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := f.RemoveFilterFromContract(contract, filter); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := f.AddFilterToContract(contract, filter); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInjectObjectFault measures fault injection cost.
func BenchmarkInjectObjectFault(b *testing.B) {
	p, t, err := workload.Generate(workload.TestbedSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(p, t, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		b.Fatal(err)
	}
	objs := deployedObjectRefs(f)
	if len(objs) == 0 {
		b.Fatal("no objects")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.InjectObjectFault(objs[i%len(objs)], 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func deployedObjectRefs(f *Fabric) []object.Ref {
	set := make(object.Set)
	for _, refs := range f.Deployment().Provenance {
		for _, ref := range refs {
			set.Add(ref)
		}
	}
	return set.Sorted()
}
