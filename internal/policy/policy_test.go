package policy

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// validPolicy builds a small coherent policy used across tests.
func validPolicy() *Policy {
	p := New("test")
	p.AddVRF(VRF{ID: 101, Name: "prod"})
	p.AddEPG(EPG{ID: 1, Name: "web", VRF: 101})
	p.AddEPG(EPG{ID: 2, Name: "app", VRF: 101})
	p.AddEPG(EPG{ID: 3, Name: "db", VRF: 101})
	p.AddEndpoint(Endpoint{ID: 11, Name: "ep1", EPG: 1, Switch: 1})
	p.AddEndpoint(Endpoint{ID: 12, Name: "ep2", EPG: 2, Switch: 2})
	p.AddFilter(Filter{ID: 80, Name: "http", Entries: []FilterEntry{PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(Contract{ID: 201, Name: "web-app", Filters: []object.ID{80}})
	p.Bind(1, 2, 201)
	return p
}

func TestValidateOK(t *testing.T) {
	if err := validPolicy().Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Policy)
		wantErr string
	}{
		{
			name:    "epg-unknown-vrf",
			mutate:  func(p *Policy) { p.AddEPG(EPG{ID: 9, VRF: 999}) },
			wantErr: "unknown vrf",
		},
		{
			name:    "endpoint-unknown-epg",
			mutate:  func(p *Policy) { p.AddEndpoint(Endpoint{ID: 99, EPG: 999, Switch: 1}) },
			wantErr: "unknown epg",
		},
		{
			name:    "contract-unknown-filter",
			mutate:  func(p *Policy) { p.AddContract(Contract{ID: 299, Filters: []object.ID{999}}) },
			wantErr: "unknown filter",
		},
		{
			name:    "binding-unknown-from",
			mutate:  func(p *Policy) { p.Bind(999, 2, 201) },
			wantErr: "unknown epg",
		},
		{
			name:    "binding-unknown-to",
			mutate:  func(p *Policy) { p.Bind(1, 999, 201) },
			wantErr: "unknown epg",
		},
		{
			name:    "binding-unknown-contract",
			mutate:  func(p *Policy) { p.Bind(1, 2, 999) },
			wantErr: "unknown contract",
		},
		{
			name: "binding-crosses-vrfs",
			mutate: func(p *Policy) {
				p.AddVRF(VRF{ID: 102})
				p.AddEPG(EPG{ID: 9, VRF: 102})
				p.Bind(1, 9, 201)
			},
			wantErr: "crosses VRFs",
		},
		{
			name: "inverted-port-range",
			mutate: func(p *Policy) {
				p.AddFilter(Filter{ID: 81, Entries: []FilterEntry{{Proto: rule.ProtoTCP, PortLo: 90, PortHi: 80, Action: rule.Allow}}})
			},
			wantErr: "inverted port range",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validPolicy()
			tt.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate should fail")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q should contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestMakeEPGPairCanonical(t *testing.T) {
	if MakeEPGPair(5, 3) != MakeEPGPair(3, 5) {
		t.Error("pair must be order-insensitive")
	}
	p := MakeEPGPair(5, 3)
	if p.A != 3 || p.B != 5 {
		t.Errorf("canonical order: got %v", p)
	}
	if p.String() != "3-5" {
		t.Errorf("String = %q, want 3-5", p.String())
	}
}

func TestPairsDedupesAndSorts(t *testing.T) {
	p := validPolicy()
	p.AddContract(Contract{ID: 202, Name: "c2", Filters: []object.ID{80}})
	p.Bind(2, 1, 202) // same pair, other direction, other contract
	p.Bind(2, 3, 201)
	pairs := p.Pairs()
	want := []EPGPair{{A: 1, B: 2}, {A: 2, B: 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("Pairs = %v, want %v", pairs, want)
	}
}

func TestEndpointsOf(t *testing.T) {
	p := validPolicy()
	p.AddEndpoint(Endpoint{ID: 13, Name: "ep3", EPG: 1, Switch: 3})
	eps := p.EndpointsOf(1)
	if len(eps) != 2 || eps[0].ID != 11 || eps[1].ID != 13 {
		t.Errorf("EndpointsOf(1) = %v", eps)
	}
	if got := p.EndpointsOf(999); got != nil {
		t.Errorf("EndpointsOf(unknown) = %v, want nil", got)
	}
}

func TestObjectsSorted(t *testing.T) {
	objs := validPolicy().Objects()
	want := []object.Ref{
		object.VRF(101),
		object.EPG(1), object.EPG(2), object.EPG(3),
		object.Contract(201),
		object.Filter(80),
	}
	if !reflect.DeepEqual(objs, want) {
		t.Errorf("Objects = %v, want %v", objs, want)
	}
}

func TestStats(t *testing.T) {
	s := validPolicy().Stats()
	want := Stats{VRFs: 1, EPGs: 3, Endpoints: 2, Contracts: 1, Filters: 1, Bindings: 1, EPGPairs: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := validPolicy()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats() != p.Stats() {
		t.Errorf("round trip stats: got %+v, want %+v", got.Stats(), p.Stats())
	}
	if !reflect.DeepEqual(got.Objects(), p.Objects()) {
		t.Error("round trip lost objects")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{bad json`)); err == nil {
		t.Error("malformed JSON should fail")
	}
	// Structurally valid JSON but semantically broken policy.
	p := validPolicy()
	p.EPGs[1].VRF = 999
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSON(data); err == nil {
		t.Error("invalid policy should fail validation on load")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := validPolicy()
	c := p.Clone()
	c.AddEPG(EPG{ID: 50, VRF: 101})
	c.Filters[80].Entries[0].PortLo = 9999
	c.Contracts[201].Filters = append(c.Contracts[201].Filters, 80)
	c.Bind(1, 2, 201)

	if _, leaked := p.EPGs[50]; leaked {
		t.Error("clone shares EPG map")
	}
	if p.Filters[80].Entries[0].PortLo == 9999 {
		t.Error("clone shares filter entries")
	}
	if len(p.Contracts[201].Filters) != 1 {
		t.Error("clone shares contract filter slice")
	}
	if len(p.Bindings) != 1 {
		t.Error("clone shares bindings")
	}
}

func TestAddersCopyTheirArguments(t *testing.T) {
	p := New("copy")
	entries := []FilterEntry{PortEntry(rule.ProtoTCP, 80)}
	p.AddFilter(Filter{ID: 1, Entries: entries})
	entries[0].PortLo = 1234
	if p.Filters[1].Entries[0].PortLo == 1234 {
		t.Error("AddFilter must copy entries at the boundary")
	}

	filters := []object.ID{1}
	p.AddContract(Contract{ID: 2, Filters: filters})
	filters[0] = 99
	if p.Contracts[2].Filters[0] == 99 {
		t.Error("AddContract must copy filter list at the boundary")
	}
}

func TestPortEntry(t *testing.T) {
	e := PortEntry(rule.ProtoUDP, 53)
	if e.Proto != rule.ProtoUDP || e.PortLo != 53 || e.PortHi != 53 || e.Action != rule.Allow {
		t.Errorf("PortEntry = %+v", e)
	}
}

func TestEPGPairLess(t *testing.T) {
	pairs := []EPGPair{{A: 2, B: 3}, {A: 1, B: 5}, {A: 1, B: 2}}
	if !pairs[2].Less(pairs[1]) || !pairs[1].Less(pairs[0]) {
		t.Error("lexicographic order broken")
	}
	if pairs[0].Less(pairs[0]) {
		t.Error("irreflexive")
	}
}
