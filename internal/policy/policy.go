// Package policy implements the abstract network-policy model of the paper
// (§II): tenants express intent as endpoint groups (EPGs) connected by
// contracts that reference filters, all scoped by a VRF. The model mirrors
// Cisco APIC / GBP / PGA-style policy abstractions.
//
// The package also contains the policy compiler that renders a policy into
// per-switch logical TCAM rules (L-type rules) with full object provenance.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"

	"scout/internal/object"
	"scout/internal/rule"
)

// VRF is a virtual-routing-and-forwarding object: the layer-3 scope shared
// by a group of EPGs. A single VRF can span many tenants (and vice versa).
type VRF struct {
	ID   object.ID `json:"id"`
	Name string    `json:"name"`
}

// EPG is an endpoint group: a set of endpoints (servers, VMs, middleboxes)
// belonging to the same application tier, scoped by one VRF.
type EPG struct {
	ID   object.ID `json:"id"`
	Name string    `json:"name"`
	VRF  object.ID `json:"vrf"`
}

// Endpoint is a single attachable workload (server, VM) that belongs to an
// EPG and is physically connected to a leaf switch.
type Endpoint struct {
	ID     object.ID `json:"id"`
	Name   string    `json:"name"`
	EPG    object.ID `json:"epg"`
	Switch object.ID `json:"switch"`
}

// FilterEntry describes one (protocol, port-range, action) clause of a
// filter, e.g. "tcp port 80 allow".
type FilterEntry struct {
	Proto  rule.Protocol `json:"proto"`
	PortLo uint16        `json:"portLo"`
	PortHi uint16        `json:"portHi"`
	Action rule.Action   `json:"action"`
}

// PortEntry is a convenience constructor for a single-port allow entry.
func PortEntry(proto rule.Protocol, port uint16) FilterEntry {
	return FilterEntry{Proto: proto, PortLo: port, PortHi: port, Action: rule.Allow}
}

// Filter is a reusable set of traffic-classification entries. Filters
// implement whitelisting: traffic not covered by an allow entry of some
// applied filter is dropped by the default-deny rule.
type Filter struct {
	ID      object.ID     `json:"id"`
	Name    string        `json:"name"`
	Entries []FilterEntry `json:"entries"`
}

// Contract glues EPG pairs to filters: it defines which filters apply to
// traffic between the EPGs bound to it. Modifying a contract's filter list
// changes behaviour for every EPG pair bound to the contract.
type Contract struct {
	ID      object.ID   `json:"id"`
	Name    string      `json:"name"`
	Filters []object.ID `json:"filters"`
}

// Binding attaches a contract to a (consumer, provider) EPG pair. Rules are
// rendered symmetrically for both traffic directions, as in the paper's
// Figure 2.
type Binding struct {
	From     object.ID `json:"from"`
	To       object.ID `json:"to"`
	Contract object.ID `json:"contract"`
}

// EPGPair is an unordered pair of EPG IDs — the unit that risk models track
// as potentially impacted by shared-risk failures.
type EPGPair struct {
	A object.ID `json:"a"`
	B object.ID `json:"b"`
}

// MakeEPGPair returns the canonical (ordered) form of the pair {a, b}.
func MakeEPGPair(a, b object.ID) EPGPair {
	if b < a {
		a, b = b, a
	}
	return EPGPair{A: a, B: b}
}

// String renders the pair as "a-b".
func (p EPGPair) String() string { return fmt.Sprintf("%d-%d", p.A, p.B) }

// Less orders pairs lexicographically.
func (p EPGPair) Less(q EPGPair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

// Policy is a complete tenant network policy: the desired state maintained
// at the controller.
type Policy struct {
	Name      string                  `json:"name"`
	VRFs      map[object.ID]*VRF      `json:"vrfs"`
	EPGs      map[object.ID]*EPG      `json:"epgs"`
	Endpoints map[object.ID]*Endpoint `json:"endpoints"`
	Filters   map[object.ID]*Filter   `json:"filters"`
	Contracts map[object.ID]*Contract `json:"contracts"`
	Bindings  []Binding               `json:"bindings"`
}

// New returns an empty policy with the given name.
func New(name string) *Policy {
	return &Policy{
		Name:      name,
		VRFs:      make(map[object.ID]*VRF),
		EPGs:      make(map[object.ID]*EPG),
		Endpoints: make(map[object.ID]*Endpoint),
		Filters:   make(map[object.ID]*Filter),
		Contracts: make(map[object.ID]*Contract),
	}
}

// AddVRF inserts a VRF object.
func (p *Policy) AddVRF(v VRF) *Policy {
	p.VRFs[v.ID] = &v
	return p
}

// AddEPG inserts an EPG object.
func (p *Policy) AddEPG(e EPG) *Policy {
	p.EPGs[e.ID] = &e
	return p
}

// AddEndpoint inserts an endpoint.
func (p *Policy) AddEndpoint(e Endpoint) *Policy {
	p.Endpoints[e.ID] = &e
	return p
}

// AddFilter inserts a filter object.
func (p *Policy) AddFilter(f Filter) *Policy {
	cp := f
	cp.Entries = append([]FilterEntry(nil), f.Entries...)
	p.Filters[f.ID] = &cp
	return p
}

// AddContract inserts a contract object.
func (p *Policy) AddContract(c Contract) *Policy {
	cp := c
	cp.Filters = append([]object.ID(nil), c.Filters...)
	p.Contracts[c.ID] = &cp
	return p
}

// Bind attaches contract to the EPG pair (from, to).
func (p *Policy) Bind(from, to, contract object.ID) *Policy {
	p.Bindings = append(p.Bindings, Binding{From: from, To: to, Contract: contract})
	return p
}

// Validate checks referential integrity of the policy: every EPG references
// an existing VRF, every endpoint an existing EPG, every contract existing
// filters, and every binding existing EPGs (in the same VRF) and contract.
func (p *Policy) Validate() error {
	for id, e := range p.EPGs {
		if _, ok := p.VRFs[e.VRF]; !ok {
			return fmt.Errorf("policy %q: epg %d references unknown vrf %d", p.Name, id, e.VRF)
		}
	}
	for id, ep := range p.Endpoints {
		if _, ok := p.EPGs[ep.EPG]; !ok {
			return fmt.Errorf("policy %q: endpoint %d references unknown epg %d", p.Name, id, ep.EPG)
		}
	}
	for id, c := range p.Contracts {
		for _, f := range c.Filters {
			if _, ok := p.Filters[f]; !ok {
				return fmt.Errorf("policy %q: contract %d references unknown filter %d", p.Name, id, f)
			}
		}
	}
	for i, b := range p.Bindings {
		from, ok := p.EPGs[b.From]
		if !ok {
			return fmt.Errorf("policy %q: binding %d references unknown epg %d", p.Name, i, b.From)
		}
		to, ok := p.EPGs[b.To]
		if !ok {
			return fmt.Errorf("policy %q: binding %d references unknown epg %d", p.Name, i, b.To)
		}
		if from.VRF != to.VRF {
			return fmt.Errorf("policy %q: binding %d crosses VRFs (%d vs %d)", p.Name, i, from.VRF, to.VRF)
		}
		if _, ok := p.Contracts[b.Contract]; !ok {
			return fmt.Errorf("policy %q: binding %d references unknown contract %d", p.Name, i, b.Contract)
		}
	}
	for id, f := range p.Filters {
		for _, e := range f.Entries {
			if e.PortLo > e.PortHi {
				return fmt.Errorf("policy %q: filter %d has inverted port range %d-%d", p.Name, id, e.PortLo, e.PortHi)
			}
		}
	}
	return nil
}

// Pairs returns all distinct EPG pairs that appear in bindings, sorted.
func (p *Policy) Pairs() []EPGPair {
	set := make(map[EPGPair]struct{}, len(p.Bindings))
	for _, b := range p.Bindings {
		set[MakeEPGPair(b.From, b.To)] = struct{}{}
	}
	out := make([]EPGPair, 0, len(set))
	for pr := range set {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// EndpointsOf returns the endpoints belonging to the given EPG, sorted by ID.
func (p *Policy) EndpointsOf(epg object.ID) []*Endpoint {
	var out []*Endpoint
	for _, ep := range p.Endpoints {
		if ep.EPG == epg {
			out = append(out, ep)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Objects returns the refs of every policy object in the policy (VRFs,
// EPGs, contracts, filters), sorted.
func (p *Policy) Objects() []object.Ref {
	out := make([]object.Ref, 0, len(p.VRFs)+len(p.EPGs)+len(p.Contracts)+len(p.Filters))
	for id := range p.VRFs {
		out = append(out, object.VRF(id))
	}
	for id := range p.EPGs {
		out = append(out, object.EPG(id))
	}
	for id := range p.Contracts {
		out = append(out, object.Contract(id))
	}
	for id := range p.Filters {
		out = append(out, object.Filter(id))
	}
	object.SortRefs(out)
	return out
}

// Stats summarizes object counts, mirroring the dataset description in the
// paper's §VI-A.
type Stats struct {
	VRFs      int `json:"vrfs"`
	EPGs      int `json:"epgs"`
	Endpoints int `json:"endpoints"`
	Contracts int `json:"contracts"`
	Filters   int `json:"filters"`
	Bindings  int `json:"bindings"`
	EPGPairs  int `json:"epgPairs"`
}

// Stats returns object counts for the policy.
func (p *Policy) Stats() Stats {
	return Stats{
		VRFs:      len(p.VRFs),
		EPGs:      len(p.EPGs),
		Endpoints: len(p.Endpoints),
		Contracts: len(p.Contracts),
		Filters:   len(p.Filters),
		Bindings:  len(p.Bindings),
		EPGPairs:  len(p.Pairs()),
	}
}

// MarshalJSON serializes the policy with map entries in deterministic order.
func (p *Policy) MarshalJSON() ([]byte, error) {
	type alias Policy // avoid recursion
	return json.Marshal((*alias)(p))
}

// FromJSON deserializes a policy previously produced by json.Marshal.
func FromJSON(data []byte) (*Policy, error) {
	p := New("")
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("decode policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Clone returns a deep copy of the policy. The fabric controller clones the
// policy so that later user edits do not mutate the deployed desired state.
func (p *Policy) Clone() *Policy {
	out := New(p.Name)
	for id, v := range p.VRFs {
		cp := *v
		out.VRFs[id] = &cp
	}
	for id, e := range p.EPGs {
		cp := *e
		out.EPGs[id] = &cp
	}
	for id, ep := range p.Endpoints {
		cp := *ep
		out.Endpoints[id] = &cp
	}
	for id, f := range p.Filters {
		cp := *f
		cp.Entries = append([]FilterEntry(nil), f.Entries...)
		out.Filters[id] = &cp
	}
	for id, c := range p.Contracts {
		cp := *c
		cp.Filters = append([]object.ID(nil), c.Filters...)
		out.Contracts[id] = &cp
	}
	out.Bindings = append([]Binding(nil), p.Bindings...)
	return out
}
