package risk

import (
	"reflect"
	"strings"
	"testing"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

func TestModelBasics(t *testing.T) {
	m := NewModel("test")
	e1 := m.EnsureElement("1-2")
	if again := m.EnsureElement("1-2"); again != e1 {
		t.Error("EnsureElement must be idempotent")
	}
	m.AddEdge(e1, object.Filter(1))
	m.AddEdge(e1, object.Filter(1)) // duplicate edge
	m.AddEdge(e1, object.VRF(9))
	if m.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", m.NumEdges())
	}
	if m.NumElements() != 1 || m.NumRisks() != 2 {
		t.Errorf("elements=%d risks=%d", m.NumElements(), m.NumRisks())
	}
	if m.Label(e1) != "1-2" {
		t.Errorf("Label = %q", m.Label(e1))
	}
	if got := m.RisksOf(e1); !reflect.DeepEqual(got, []object.Ref{object.VRF(9), object.Filter(1)}) {
		t.Errorf("RisksOf = %v", got)
	}
}

func TestMarkFailedAndObservations(t *testing.T) {
	m := NewModel("test")
	e1 := m.EnsureElement("1-2")
	e2 := m.EnsureElement("2-3")
	m.AddEdge(e1, object.Filter(1))
	m.AddEdge(e2, object.Filter(1))

	if m.IsObservation(e1) {
		t.Error("fresh element is not an observation")
	}
	if !m.MarkFailed(e1, object.Filter(1)) {
		t.Error("first MarkFailed transitions the edge")
	}
	if m.MarkFailed(e1, object.Filter(1)) {
		t.Error("second MarkFailed is a no-op")
	}
	if !m.IsObservation(e1) || m.IsObservation(e2) {
		t.Error("observation status wrong")
	}
	if got := m.FailureSignature(); !reflect.DeepEqual(got, []ElementID{e1}) {
		t.Errorf("FailureSignature = %v", got)
	}
	if !m.EdgeFailed(e1, object.Filter(1)) || m.EdgeFailed(e2, object.Filter(1)) {
		t.Error("EdgeFailed wrong")
	}
	if m.NumFailedEdges() != 1 {
		t.Errorf("NumFailedEdges = %d", m.NumFailedEdges())
	}
}

func TestMarkFailedCreatesMissingEdge(t *testing.T) {
	m := NewModel("test")
	e := m.EnsureElement("x")
	m.MarkFailed(e, object.EPG(7))
	if !m.EdgeFailed(e, object.EPG(7)) {
		t.Error("MarkFailed on a new edge must create and fail it")
	}
	if m.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", m.NumEdges())
	}
}

func TestHitAndCoverageRatios(t *testing.T) {
	// Figure 5 topology (left model): F2 depends on 4 pairs, all failed;
	// C1 on 1 pair, none failed.
	m := NewModel("fig5")
	pairs := []string{"E1-E2", "E2-E3", "E3-E4", "E4-E5", "E5-E6"}
	var els []ElementID
	for _, p := range pairs {
		els = append(els, m.EnsureElement(p))
	}
	f2 := object.Filter(2)
	c1 := object.Contract(1)
	for _, el := range els[1:] {
		m.AddEdge(el, f2)
	}
	m.AddEdge(els[0], c1)
	for _, el := range els[1:] {
		m.MarkFailed(el, f2)
	}

	if got := m.HitRatio(f2); got != 1.0 {
		t.Errorf("hit(F2) = %v, want 1", got)
	}
	if got := m.HitRatio(c1); got != 0 {
		t.Errorf("hit(C1) = %v, want 0", got)
	}
	if got := m.CoverageRatio(f2); got != 1.0 {
		t.Errorf("cov(F2) = %v, want 1 (covers all 4 observations)", got)
	}
	if m.HitRatio(object.Filter(99)) != 0 || m.CoverageRatio(object.Filter(99)) != 0 {
		t.Error("unknown risks have zero ratios")
	}
	if m.NumDependents(f2) != 4 {
		t.Errorf("NumDependents(F2) = %d", m.NumDependents(f2))
	}
	if got := len(m.FailedElementsOf(f2)); got != 4 {
		t.Errorf("FailedElementsOf(F2) = %d", got)
	}
}

func TestSuspectSet(t *testing.T) {
	m := NewModel("t")
	e := m.EnsureElement("a")
	m.AddEdge(e, object.VRF(1))
	m.AddEdge(e, object.Filter(2))
	m.MarkFailed(e, object.Filter(2))
	m.MarkFailed(e, object.VRF(1))
	e2 := m.EnsureElement("b")
	m.AddEdge(e2, object.Contract(3)) // healthy edge: not a suspect
	got := m.SuspectSet()
	want := []object.Ref{object.VRF(1), object.Filter(2)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SuspectSet = %v, want %v", got, want)
	}
}

func TestResetFailures(t *testing.T) {
	m := NewModel("t")
	e := m.EnsureElement("a")
	m.AddEdge(e, object.VRF(1))
	m.MarkFailed(e, object.VRF(1))
	m.ResetFailures()
	if m.NumFailedEdges() != 0 || m.IsObservation(e) || len(m.FailureSignature()) != 0 {
		t.Error("ResetFailures must clear all failure state")
	}
	if m.NumEdges() != 1 {
		t.Error("ResetFailures must keep edges")
	}
	// Model must be reusable.
	if !m.MarkFailed(e, object.VRF(1)) {
		t.Error("model unusable after reset")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel("t")
	e := m.EnsureElement("a")
	m.AddEdge(e, object.VRF(1))
	c := m.Clone()
	c.MarkFailed(e, object.VRF(1))
	c.AddEdge(c.EnsureElement("b"), object.EPG(5))
	if m.NumFailedEdges() != 0 || m.NumElements() != 1 {
		t.Error("Clone must not share state")
	}
	if c.NumFailedEdges() != 1 || c.NumElements() != 2 {
		t.Error("clone lost its own changes")
	}
}

// threeTier builds the Figure 1 example deployment used by builder tests.
func threeTier(t *testing.T) *compile.Deployment {
	t.Helper()
	p := policy.New("three-tier")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(policy.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddEndpoint(policy.Endpoint{ID: 13, EPG: 3, Switch: 3})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddFilter(policy.Filter{ID: 700, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 700)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.AddContract(policy.Contract{ID: 202, Filters: []object.ID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	d, err := compile.Compile(p, topo.FromPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildSwitchModelFigure4a(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 2)
	// Figure 4(a): S2 has pairs Web-App and App-DB.
	if m.NumElements() != 2 {
		t.Fatalf("S2 elements = %d, want 2", m.NumElements())
	}
	webApp, ok := m.ElementByLabel("1-2")
	if !ok {
		t.Fatal("Web-App pair missing")
	}
	// Web-App relies on VRF:101, EPG:Web, EPG:App, Contract:201, Filter:80.
	want := []object.Ref{
		object.VRF(101), object.EPG(1), object.EPG(2),
		object.Contract(201), object.Filter(80),
	}
	if got := m.RisksOf(webApp); !reflect.DeepEqual(got, want) {
		t.Errorf("Web-App risks = %v, want %v", got, want)
	}
	// App-DB additionally relies on Filter:700.
	appDB, _ := m.ElementByLabel("2-3")
	risks := object.NewSet(m.RisksOf(appDB)...)
	if !risks.Has(object.Filter(700)) || !risks.Has(object.Filter(80)) {
		t.Errorf("App-DB risks = %v", risks.Sorted())
	}
}

func TestBuildControllerModelFigure4b(t *testing.T) {
	d := threeTier(t)
	m := BuildControllerModel(d, ControllerModelOptions{})
	// Triplets: S1:1-2, S2:1-2, S2:2-3, S3:2-3.
	if m.NumElements() != 4 {
		t.Fatalf("controller elements = %d, want 4", m.NumElements())
	}
	if _, ok := m.RiskByRef(object.Switch(1)); ok {
		t.Error("switch risks must be absent without IncludeSwitchRisk")
	}

	withSwitch := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	if _, ok := withSwitch.RiskByRef(object.Switch(1)); !ok {
		t.Error("switch risks must be modeled when requested")
	}
	el, _ := withSwitch.ElementByLabel("S2:1-2")
	risks := object.NewSet(withSwitch.RisksOf(el)...)
	if !risks.Has(object.Switch(2)) {
		t.Error("triplet must depend on its switch")
	}
	if risks.Has(object.Switch(1)) {
		t.Error("triplet must not depend on other switches")
	}
}

func TestAugmentSwitchModel(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 2)
	// Simulate the paper's §III-C example: the Web→App rule (1st rule of
	// Figure 2) missing from S2's TCAM.
	var missing []rule.Rule
	for _, r := range d.RulesFor(2) {
		if r.Match.SrcEPG == 1 && r.Match.DstEPG == 2 {
			missing = append(missing, r)
		}
	}
	if len(missing) != 1 {
		t.Fatalf("setup: %d missing rules", len(missing))
	}
	marked := AugmentSwitchModel(m, missing, d.Provenance)
	if marked != 5 {
		t.Errorf("marked = %d, want 5 (vrf, 2 epgs, contract, filter)", marked)
	}
	webApp, _ := m.ElementByLabel("1-2")
	if !m.IsObservation(webApp) {
		t.Error("Web-App must be an observation")
	}
	appDB, _ := m.ElementByLabel("2-3")
	if m.IsObservation(appDB) {
		t.Error("App-DB must stay healthy")
	}
	// Occam's razor setup: EPG:Web and Contract:201 have hit ratio 1 (only
	// Web-App depends on them); VRF:101 and EPG:App are shared with the
	// healthy App-DB pair so their hit ratio is 0.5.
	if m.HitRatio(object.EPG(1)) != 1 || m.HitRatio(object.Contract(201)) != 1 {
		t.Error("exclusive objects must have hit ratio 1")
	}
	if m.HitRatio(object.VRF(101)) != 0.5 || m.HitRatio(object.EPG(2)) != 0.5 {
		t.Error("shared objects must have hit ratio 0.5")
	}
}

func TestAugmentControllerModel(t *testing.T) {
	d := threeTier(t)
	m := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	var missing []rule.Rule
	for _, r := range d.RulesFor(2) {
		if r.Match.SrcEPG == 1 && r.Match.DstEPG == 2 {
			missing = append(missing, r)
		}
	}
	AugmentControllerModel(m, 2, missing, d.Provenance)

	// Figure 4(b): only S2:1-2 is marked fail; S1:1-2 stays healthy since
	// the rule is present on S1.
	s2, _ := m.ElementByLabel("S2:1-2")
	s1, _ := m.ElementByLabel("S1:1-2")
	if !m.IsObservation(s2) || m.IsObservation(s1) {
		t.Error("only the triplet on the faulty switch is an observation")
	}
	if !m.EdgeFailed(s2, object.Switch(2)) {
		t.Error("switch edge must be flagged for the failing triplet")
	}
}

func TestAugmentIgnoresUnknownPairs(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 1)
	ghost := rule.Rule{
		Match:      rule.Match{VRF: 101, SrcEPG: 8, DstEPG: 9, Proto: rule.ProtoTCP, PortLo: 1, PortHi: 1},
		Action:     rule.Allow,
		Provenance: []object.Ref{object.VRF(101)},
	}
	if marked := AugmentSwitchModel(m, []rule.Rule{ghost}, d.Provenance); marked != 0 {
		t.Error("rules for unmodeled pairs must be skipped")
	}
}

func TestDependencyHistogram(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 2)
	h := m.DependencyHistogram()
	// VRF:101 serves both pairs on S2.
	if !reflect.DeepEqual(h[object.KindVRF], []int{2}) {
		t.Errorf("vrf histogram = %v", h[object.KindVRF])
	}
	// Filters: 80 serves 2 pairs, 700 serves 1.
	if !reflect.DeepEqual(h[object.KindFilter], []int{1, 2}) {
		t.Errorf("filter histogram = %v", h[object.KindFilter])
	}
}

func TestModelString(t *testing.T) {
	m := NewModel("demo")
	if got := m.String(); got == "" {
		t.Error("String must describe the model")
	}
}

func TestWriteDOT(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 2)
	el, _ := m.ElementByLabel("1-2")
	m.MarkFailed(el, object.Filter(80))

	var buf strings.Builder
	if err := m.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", `"1-2"`, `"filter:80"`, "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Truncation bound.
	buf.Reset()
	if err := m.WriteDOT(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more elements") {
		t.Error("truncated DOT must note the cut")
	}
}

func TestAccessors(t *testing.T) {
	m := NewModel("acc")
	if m.Name() != "acc" {
		t.Errorf("Name = %q", m.Name())
	}
	e := m.EnsureElement("1-2")
	m.AddEdge(e, object.Filter(1))
	m.AddEdge(e, object.VRF(2))
	m.MarkFailed(e, object.Filter(1))

	r, ok := m.RiskByRef(object.Filter(1))
	if !ok || m.Ref(r) != object.Filter(1) {
		t.Error("RiskByRef/Ref round trip broken")
	}
	if got := m.FailedRisksOf(e); len(got) != 1 || got[0] != object.Filter(1) {
		t.Errorf("FailedRisksOf = %v", got)
	}
	if got := m.ElementsOf(object.Filter(1)); len(got) != 1 || got[0] != e {
		t.Errorf("ElementsOf = %v", got)
	}
	if m.ElementsOf(object.Filter(99)) != nil {
		t.Error("unknown risk has no elements")
	}
	if got := m.Risks(); len(got) != 2 {
		t.Errorf("Risks = %v", got)
	}
	if m.NumDependents(object.Filter(99)) != 0 {
		t.Error("unknown risk has no dependents")
	}
	// ElementsOf returns a copy.
	els := m.ElementsOf(object.Filter(1))
	els[0] = ElementID(99)
	if m.ElementsOf(object.Filter(1))[0] != e {
		t.Error("ElementsOf must copy")
	}
}

func TestAugmentResolvesProvenanceViaIndex(t *testing.T) {
	d := threeTier(t)
	m := BuildSwitchModel(d, 2)
	// A T-type rule (no provenance) whose key exists in the deployment:
	// provenanceOf must resolve through the index.
	var bare rule.Rule
	for _, r := range d.RulesFor(2) {
		if !r.IsDefaultDeny() {
			bare = r.Clone()
			bare.Provenance = nil
			break
		}
	}
	if marked := AugmentSwitchModel(m, []rule.Rule{bare}, d.Provenance); marked == 0 {
		t.Error("augmentation must resolve provenance through the index")
	}
	// Without any index, the rule is unattributable and skipped.
	m2 := BuildSwitchModel(d, 2)
	if marked := AugmentSwitchModel(m2, []rule.Rule{bare}, nil); marked != 0 {
		t.Error("unattributable rules must be skipped")
	}
}
