// Package risk implements the paper's risk models (§III): bipartite
// graphs between shared risks (policy objects, and switches in the
// controller model) and the elements they can impact (EPG pairs, or
// (switch, EPG pair) triplets). Edges are flagged success or fail; an
// element with at least one failed edge is an observation, and the set of
// observations forms the failure signature consumed by the localization
// algorithms.
package risk

import (
	"fmt"
	"sort"

	"scout/internal/object"
)

// ElementID is a dense index of an affected element within a Model.
type ElementID int

// RiskID is a dense index of a shared risk within a Model.
type RiskID int

// View is the read interface over an annotated risk model. Localization,
// rendering, and evaluation consume a View so that a mutable deep-cloned
// *Model and a copy-on-write *Overlay over an immutable pristine core are
// interchangeable: both yield the same element/risk IDs and failure sets,
// so every downstream result is byte-identical regardless of which backs
// the view.
type View interface {
	fmt.Stringer
	Name() string
	NumElements() int
	NumRisks() int
	NumEdges() int
	NumFailedEdges() int
	ElementByLabel(label string) (ElementID, bool)
	Label(el ElementID) string
	RiskByRef(ref object.Ref) (RiskID, bool)
	Ref(r RiskID) object.Ref
	EdgeFailed(el ElementID, ref object.Ref) bool
	IsObservation(el ElementID) bool
	RisksOf(el ElementID) []object.Ref
	FailedRisksOf(el ElementID) []object.Ref
	ElementsOf(ref object.Ref) []ElementID
	NumDependents(ref object.Ref) int
	FailedElementsOf(ref object.Ref) []ElementID
	FailureSignature() []ElementID
	Risks() []object.Ref
	HitRatio(ref object.Ref) float64
	CoverageRatio(ref object.Ref) float64
	SuspectSet() []object.Ref
}

// Marker is a View that also accepts failure annotation — what risk-model
// augmentation and fault injection write against. Both *Model and
// *Overlay implement it.
type Marker interface {
	View
	MarkFailed(el ElementID, ref object.Ref) bool
}

var (
	_ Marker = (*Model)(nil)
	_ Marker = (*Overlay)(nil)
)

// adjacency is the package-internal edge-order access that DOT rendering
// uses to reproduce insertion-ordered output for both view kinds.
type adjacency interface {
	risksAdj(el ElementID) []RiskID
	refOf(r RiskID) object.Ref
	edgeFailedID(el ElementID, r RiskID) bool
}

type elementData struct {
	label  string
	risks  []RiskID
	failed map[RiskID]struct{}
}

type riskData struct {
	ref      object.Ref
	elements []ElementID
}

// Model is a bipartite risk graph. Build it with AddElement/AddEdge, then
// annotate failures with MarkFailed. A Model is not safe for concurrent
// mutation.
type Model struct {
	name     string
	elements []elementData
	byLabel  map[string]ElementID

	risks  []riskData
	byRef  map[object.Ref]RiskID
	edges  int
	failed int // failed edge count

	// rev counts mutations; planCache holds the compiled localization
	// plan for the revision it was built at (see plancache.go).
	rev       uint64
	planCache planCacheSlot
}

// NewModel creates an empty risk model with a diagnostic name.
func NewModel(name string) *Model {
	return &Model{
		name:    name,
		byLabel: make(map[string]ElementID),
		byRef:   make(map[object.Ref]RiskID),
	}
}

// Name returns the model's diagnostic name.
func (m *Model) Name() string { return m.name }

// NumElements returns the number of affected elements.
func (m *Model) NumElements() int { return len(m.elements) }

// NumRisks returns the number of shared risks.
func (m *Model) NumRisks() int { return len(m.risks) }

// NumEdges returns the number of element↔risk edges.
func (m *Model) NumEdges() int { return m.edges }

// NumFailedEdges returns the number of edges marked fail.
func (m *Model) NumFailedEdges() int { return m.failed }

// EnsureElement returns the element with the given label, creating it if
// needed.
func (m *Model) EnsureElement(label string) ElementID {
	if id, ok := m.byLabel[label]; ok {
		return id
	}
	id := ElementID(len(m.elements))
	m.elements = append(m.elements, elementData{label: label})
	m.byLabel[label] = id
	m.rev++
	return id
}

// ElementByLabel looks up an element by label.
func (m *Model) ElementByLabel(label string) (ElementID, bool) {
	id, ok := m.byLabel[label]
	return id, ok
}

// Label returns the element's label.
func (m *Model) Label(el ElementID) string { return m.elements[el].label }

// EnsureRisk returns the risk node for ref, creating it if needed.
func (m *Model) EnsureRisk(ref object.Ref) RiskID {
	if id, ok := m.byRef[ref]; ok {
		return id
	}
	id := RiskID(len(m.risks))
	m.risks = append(m.risks, riskData{ref: ref})
	m.byRef[ref] = id
	m.rev++
	return id
}

// RiskByRef looks up a risk node by object reference.
func (m *Model) RiskByRef(ref object.Ref) (RiskID, bool) {
	id, ok := m.byRef[ref]
	return id, ok
}

// Ref returns the object reference of a risk node.
func (m *Model) Ref(r RiskID) object.Ref { return m.risks[r].ref }

// AddEdge connects an element to a risk (idempotent). New edges start in
// the success state.
func (m *Model) AddEdge(el ElementID, ref object.Ref) {
	r := m.EnsureRisk(ref)
	for _, existing := range m.elements[el].risks {
		if existing == r {
			return
		}
	}
	m.elements[el].risks = append(m.elements[el].risks, r)
	m.risks[r].elements = append(m.risks[r].elements, el)
	m.edges++
	m.rev++
}

// MarkFailed flags the edge between el and ref as fail, creating the edge
// if it did not exist (an observed violation always implicates the object,
// §III-C). It reports whether the edge transitioned to failed.
func (m *Model) MarkFailed(el ElementID, ref object.Ref) bool {
	m.AddEdge(el, ref)
	r := m.byRef[ref]
	e := &m.elements[el]
	if e.failed == nil {
		e.failed = make(map[RiskID]struct{})
	}
	if _, already := e.failed[r]; already {
		return false
	}
	e.failed[r] = struct{}{}
	m.failed++
	m.rev++
	return true
}

// EdgeFailed reports whether the edge el↔ref exists and is marked fail.
func (m *Model) EdgeFailed(el ElementID, ref object.Ref) bool {
	r, ok := m.byRef[ref]
	if !ok {
		return false
	}
	_, failed := m.elements[el].failed[r]
	return failed
}

// IsObservation reports whether the element has at least one failed edge.
func (m *Model) IsObservation(el ElementID) bool {
	return len(m.elements[el].failed) > 0
}

// RisksOf returns the risk refs the element depends on, sorted.
func (m *Model) RisksOf(el ElementID) []object.Ref {
	out := make([]object.Ref, 0, len(m.elements[el].risks))
	for _, r := range m.elements[el].risks {
		out = append(out, m.risks[r].ref)
	}
	object.SortRefs(out)
	return out
}

// FailedRisksOf returns the refs of risks with a failed edge to el, sorted.
func (m *Model) FailedRisksOf(el ElementID) []object.Ref {
	e := m.elements[el]
	out := make([]object.Ref, 0, len(e.failed))
	for r := range e.failed {
		out = append(out, m.risks[r].ref)
	}
	object.SortRefs(out)
	return out
}

// ElementsOf returns the element IDs depending on risk ref.
func (m *Model) ElementsOf(ref object.Ref) []ElementID {
	r, ok := m.byRef[ref]
	if !ok {
		return nil
	}
	out := make([]ElementID, len(m.risks[r].elements))
	copy(out, m.risks[r].elements)
	return out
}

// NumDependents returns |Gi| for risk ref: the number of elements that
// depend on it.
func (m *Model) NumDependents(ref object.Ref) int {
	r, ok := m.byRef[ref]
	if !ok {
		return 0
	}
	return len(m.risks[r].elements)
}

// FailedElementsOf returns Oi for risk ref: the elements whose edge to ref
// is marked fail.
func (m *Model) FailedElementsOf(ref object.Ref) []ElementID {
	r, ok := m.byRef[ref]
	if !ok {
		return nil
	}
	var out []ElementID
	for _, el := range m.risks[r].elements {
		if _, f := m.elements[el].failed[r]; f {
			out = append(out, el)
		}
	}
	return out
}

// FailureSignature returns the sorted IDs of all observations (elements
// with at least one failed edge) — the paper's failure signature F.
func (m *Model) FailureSignature() []ElementID {
	var out []ElementID
	for i := range m.elements {
		if len(m.elements[i].failed) > 0 {
			out = append(out, ElementID(i))
		}
	}
	return out
}

// Risks returns all risk refs in the model, sorted.
func (m *Model) Risks() []object.Ref {
	out := make([]object.Ref, 0, len(m.risks))
	for i := range m.risks {
		out = append(out, m.risks[i].ref)
	}
	object.SortRefs(out)
	return out
}

// HitRatio returns |Oi|/|Gi| for risk ref: the fraction of dependent
// elements that are observations *due to a failed edge to this risk*.
// It returns 0 for unknown risks or risks with no dependents.
func (m *Model) HitRatio(ref object.Ref) float64 {
	r, ok := m.byRef[ref]
	if !ok || len(m.risks[r].elements) == 0 {
		return 0
	}
	failed := 0
	for _, el := range m.risks[r].elements {
		if _, f := m.elements[el].failed[r]; f {
			failed++
		}
	}
	return float64(failed) / float64(len(m.risks[r].elements))
}

// CoverageRatio returns |Oi|/|F| for risk ref given the current failure
// signature size.
func (m *Model) CoverageRatio(ref object.Ref) float64 {
	sig := len(m.FailureSignature())
	if sig == 0 {
		return 0
	}
	r, ok := m.byRef[ref]
	if !ok {
		return 0
	}
	failed := 0
	for _, el := range m.risks[r].elements {
		if _, f := m.elements[el].failed[r]; f {
			failed++
		}
	}
	return float64(failed) / float64(sig)
}

// SuspectSet returns the union of risks with a failed edge to any
// observation: the objects an admin would have to examine without fault
// localization (the denominator of the paper's suspect-set-reduction
// metric γ).
func (m *Model) SuspectSet() []object.Ref {
	set := make(object.Set)
	for i := range m.elements {
		for r := range m.elements[i].failed {
			set.Add(m.risks[r].ref)
		}
	}
	return set.Sorted()
}

// DependencyHistogram returns, per object kind, the number of elements
// depending on each risk of that kind — the raw data behind the paper's
// Figure 3 CDFs.
func (m *Model) DependencyHistogram() map[object.Kind][]int {
	out := make(map[object.Kind][]int)
	for i := range m.risks {
		ref := m.risks[i].ref
		out[ref.Kind] = append(out[ref.Kind], len(m.risks[i].elements))
	}
	for kind := range out {
		sort.Ints(out[kind])
	}
	return out
}

// ResetFailures clears every failed-edge mark, returning the model to its
// pristine (pre-augmentation) state. Experiment harnesses reuse one model
// across many fault scenarios this way instead of rebuilding it.
func (m *Model) ResetFailures() {
	for i := range m.elements {
		m.elements[i].failed = nil
	}
	m.failed = 0
	m.rev++
}

// String summarizes the model.
func (m *Model) String() string { return summarize(m) }

// summarize renders the one-line digest shared by every view kind; the
// counts go through the View interface, so an overlay reports its
// combined (base + overlay) failure numbers.
func summarize(v View) string {
	return fmt.Sprintf("risk model %q: %d elements, %d risks, %d edges (%d failed)",
		v.Name(), v.NumElements(), v.NumRisks(), v.NumEdges(), v.NumFailedEdges())
}

// risksAdj, refOf, and edgeFailedID expose adjacency in insertion order
// for DOT rendering.
func (m *Model) risksAdj(el ElementID) []RiskID { return m.elements[el].risks }

func (m *Model) refOf(r RiskID) object.Ref { return m.risks[r].ref }

func (m *Model) edgeFailedID(el ElementID, r RiskID) bool {
	_, failed := m.elements[el].failed[r]
	return failed
}

// Clone returns a deep copy of the model (used by destructive algorithms
// that prune elements).
func (m *Model) Clone() *Model {
	out := &Model{
		name:     m.name,
		elements: make([]elementData, len(m.elements)),
		byLabel:  make(map[string]ElementID, len(m.byLabel)),
		risks:    make([]riskData, len(m.risks)),
		byRef:    make(map[object.Ref]RiskID, len(m.byRef)),
		edges:    m.edges,
		failed:   m.failed,
		rev:      m.rev,
	}
	for i, e := range m.elements {
		ne := elementData{label: e.label, risks: append([]RiskID(nil), e.risks...)}
		if e.failed != nil {
			ne.failed = make(map[RiskID]struct{}, len(e.failed))
			for r := range e.failed {
				ne.failed[r] = struct{}{}
			}
		}
		out.elements[i] = ne
	}
	for label, id := range m.byLabel {
		out.byLabel[label] = id
	}
	for i, r := range m.risks {
		out.risks[i] = riskData{ref: r.ref, elements: append([]ElementID(nil), r.elements...)}
	}
	for ref, id := range m.byRef {
		out.byRef[ref] = id
	}
	return out
}
