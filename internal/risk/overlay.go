// Copy-on-write failure overlays over an immutable pristine risk model.
//
// Building the controller risk model is O(deployment); annotating it with
// one round's failures is O(failures). The continuous-verification loop
// used to pay the build cost every warm run anyway, because annotation
// mutates the model and the cached pristine copy had to be deep-cloned
// first. An Overlay removes that: the pristine Model becomes a shared
// read-only core, and each run stacks a small overlay that records only
// its own failed-edge marks (plus the rare edges/risks a mark creates).
// Creating an overlay is O(1); reads merge base and overlay state so the
// overlay is indistinguishable from a clone annotated with the same
// MarkFailed sequence — the property the localization identity tests pin.

package risk

import (
	"io"
	"sort"

	"scout/internal/object"
)

// Overlay is a copy-on-write failure view over a base Model. The base is
// treated as immutable for the overlay's lifetime: concurrent readers
// (including other overlays over the same base) are safe as long as
// nothing mutates the base itself. Element IDs, risk IDs, and adjacency
// orders match what Clone()+MarkFailed would produce, so results read
// through either are identical.
//
// An Overlay supports marking failures but not adding elements; risks and
// edges are created implicitly when a mark names an edge the base lacks
// (the §III-C rule that an observed violation always implicates the
// object). Overlays may stack: the base may itself carry failed edges,
// which the overlay's counts and failure sets include.
type Overlay struct {
	base *Model

	// extraRisks holds risks created by overlay marks; their IDs continue
	// the base's dense numbering in creation order, mirroring EnsureRisk
	// on a clone.
	extraRisks []riskData
	extraByRef map[object.Ref]RiskID

	// extraDeps appends overlay-created edges to an element's adjacency;
	// extraElems appends overlay-gained dependents to a *base* risk
	// (overlay risks keep dependents in extraRisks[..].elements).
	extraDeps  map[ElementID][]RiskID
	extraElems map[RiskID][]ElementID

	// failed records the overlay's failure marks per element.
	failed map[ElementID]map[RiskID]struct{}

	edges     int // overlay-created edges
	numFailed int // overlay-added failure marks
}

// NewOverlay creates an empty failure overlay over base. The caller must
// not mutate base while the overlay is alive.
func NewOverlay(base *Model) *Overlay {
	return &Overlay{
		base:       base,
		extraByRef: make(map[object.Ref]RiskID),
		extraDeps:  make(map[ElementID][]RiskID),
		extraElems: make(map[RiskID][]ElementID),
		failed:     make(map[ElementID]map[RiskID]struct{}),
	}
}

// Base returns the pristine model the overlay stacks on.
func (o *Overlay) Base() *Model { return o.base }

// Name returns the base model's diagnostic name.
func (o *Overlay) Name() string { return o.base.name }

// NumElements returns the number of affected elements (overlays never add
// elements).
func (o *Overlay) NumElements() int { return len(o.base.elements) }

// NumRisks returns the combined number of shared risks.
func (o *Overlay) NumRisks() int { return len(o.base.risks) + len(o.extraRisks) }

// NumEdges returns the combined number of element↔risk edges.
func (o *Overlay) NumEdges() int { return o.base.edges + o.edges }

// NumFailedEdges returns the combined number of edges marked fail.
func (o *Overlay) NumFailedEdges() int { return o.base.failed + o.numFailed }

// ElementByLabel looks up an element by label.
func (o *Overlay) ElementByLabel(label string) (ElementID, bool) {
	return o.base.ElementByLabel(label)
}

// Label returns the element's label.
func (o *Overlay) Label(el ElementID) string { return o.base.elements[el].label }

// riskByRef resolves a ref against base risks first, then overlay risks.
func (o *Overlay) riskByRef(ref object.Ref) (RiskID, bool) {
	if r, ok := o.base.byRef[ref]; ok {
		return r, true
	}
	r, ok := o.extraByRef[ref]
	return r, ok
}

// RiskByRef looks up a risk node by object reference.
func (o *Overlay) RiskByRef(ref object.Ref) (RiskID, bool) { return o.riskByRef(ref) }

// Ref returns the object reference of a risk node.
func (o *Overlay) Ref(r RiskID) object.Ref { return o.refOf(r) }

func (o *Overlay) refOf(r RiskID) object.Ref {
	if int(r) < len(o.base.risks) {
		return o.base.risks[r].ref
	}
	return o.extraRisks[int(r)-len(o.base.risks)].ref
}

// risksAdj returns the element's adjacency: base edges first, overlay
// edges appended in creation order — the order a clone would hold.
func (o *Overlay) risksAdj(el ElementID) []RiskID {
	base := o.base.elements[el].risks
	extra := o.extraDeps[el]
	if len(extra) == 0 {
		return base
	}
	out := make([]RiskID, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// dependents returns the risk's dependent elements in clone order (base
// dependents, then overlay-gained ones).
func (o *Overlay) dependents(r RiskID) []ElementID {
	if int(r) < len(o.base.risks) {
		base := o.base.risks[r].elements
		extra := o.extraElems[r]
		if len(extra) == 0 {
			return base
		}
		out := make([]ElementID, 0, len(base)+len(extra))
		out = append(out, base...)
		return append(out, extra...)
	}
	return o.extraRisks[int(r)-len(o.base.risks)].elements
}

// hasEdge reports whether the edge el↔r exists in base or overlay.
func (o *Overlay) hasEdge(el ElementID, r RiskID) bool {
	for _, existing := range o.base.elements[el].risks {
		if existing == r {
			return true
		}
	}
	for _, existing := range o.extraDeps[el] {
		if existing == r {
			return true
		}
	}
	return false
}

// edgeFailedID reports whether the edge el↔r is marked fail in base or
// overlay.
func (o *Overlay) edgeFailedID(el ElementID, r RiskID) bool {
	if o.base.edgeFailedID(el, r) {
		return true
	}
	_, failed := o.failed[el][r]
	return failed
}

// MarkFailed flags the edge between el and ref as fail, creating the edge
// (and risk) in the overlay if the base lacks it. It reports whether the
// edge transitioned to failed — the same contract as Model.MarkFailed.
func (o *Overlay) MarkFailed(el ElementID, ref object.Ref) bool {
	r, ok := o.riskByRef(ref)
	if !ok {
		r = RiskID(len(o.base.risks) + len(o.extraRisks))
		o.extraRisks = append(o.extraRisks, riskData{ref: ref})
		o.extraByRef[ref] = r
	}
	if !o.hasEdge(el, r) {
		o.extraDeps[el] = append(o.extraDeps[el], r)
		if int(r) < len(o.base.risks) {
			o.extraElems[r] = append(o.extraElems[r], el)
		} else {
			rd := &o.extraRisks[int(r)-len(o.base.risks)]
			rd.elements = append(rd.elements, el)
		}
		o.edges++
	}
	if o.edgeFailedID(el, r) {
		return false
	}
	set := o.failed[el]
	if set == nil {
		set = make(map[RiskID]struct{})
		o.failed[el] = set
	}
	set[r] = struct{}{}
	o.numFailed++
	return true
}

// EdgeFailed reports whether the edge el↔ref exists and is marked fail.
func (o *Overlay) EdgeFailed(el ElementID, ref object.Ref) bool {
	r, ok := o.riskByRef(ref)
	if !ok {
		return false
	}
	return o.edgeFailedID(el, r)
}

// IsObservation reports whether the element has at least one failed edge.
func (o *Overlay) IsObservation(el ElementID) bool {
	return o.base.IsObservation(el) || len(o.failed[el]) > 0
}

// RisksOf returns the risk refs the element depends on, sorted.
func (o *Overlay) RisksOf(el ElementID) []object.Ref {
	adj := o.risksAdj(el)
	out := make([]object.Ref, 0, len(adj))
	for _, r := range adj {
		out = append(out, o.refOf(r))
	}
	object.SortRefs(out)
	return out
}

// FailedRisksOf returns the refs of risks with a failed edge to el,
// sorted.
func (o *Overlay) FailedRisksOf(el ElementID) []object.Ref {
	out := make([]object.Ref, 0, len(o.failed[el]))
	for r := range o.base.elements[el].failed {
		out = append(out, o.base.risks[r].ref)
	}
	for r := range o.failed[el] {
		out = append(out, o.refOf(r))
	}
	object.SortRefs(out)
	return out
}

// ElementsOf returns the element IDs depending on risk ref.
func (o *Overlay) ElementsOf(ref object.Ref) []ElementID {
	r, ok := o.riskByRef(ref)
	if !ok {
		return nil
	}
	deps := o.dependents(r)
	out := make([]ElementID, len(deps))
	copy(out, deps)
	return out
}

// NumDependents returns |Gi| for risk ref.
func (o *Overlay) NumDependents(ref object.Ref) int {
	r, ok := o.riskByRef(ref)
	if !ok {
		return 0
	}
	return len(o.dependents(r))
}

// FailedElementsOf returns Oi for risk ref: the elements whose edge to
// ref is marked fail.
func (o *Overlay) FailedElementsOf(ref object.Ref) []ElementID {
	r, ok := o.riskByRef(ref)
	if !ok {
		return nil
	}
	var out []ElementID
	for _, el := range o.dependents(r) {
		if o.edgeFailedID(el, r) {
			out = append(out, el)
		}
	}
	return out
}

// FailureSignature returns the sorted IDs of all observations. Over a
// pristine base this is O(overlay marks), the per-run cost the overlay
// exists to bound.
func (o *Overlay) FailureSignature() []ElementID {
	if o.base.failed == 0 {
		var out []ElementID
		for el := range o.failed {
			out = append(out, el)
		}
		sortElementIDs(out)
		return out
	}
	var out []ElementID
	for i := range o.base.elements {
		if o.IsObservation(ElementID(i)) {
			out = append(out, ElementID(i))
		}
	}
	return out
}

// Risks returns all risk refs in the view, sorted.
func (o *Overlay) Risks() []object.Ref {
	out := make([]object.Ref, 0, o.NumRisks())
	for i := range o.base.risks {
		out = append(out, o.base.risks[i].ref)
	}
	for i := range o.extraRisks {
		out = append(out, o.extraRisks[i].ref)
	}
	object.SortRefs(out)
	return out
}

// HitRatio returns |Oi|/|Gi| for risk ref.
func (o *Overlay) HitRatio(ref object.Ref) float64 {
	r, ok := o.riskByRef(ref)
	if !ok {
		return 0
	}
	deps := o.dependents(r)
	if len(deps) == 0 {
		return 0
	}
	failed := 0
	for _, el := range deps {
		if o.edgeFailedID(el, r) {
			failed++
		}
	}
	return float64(failed) / float64(len(deps))
}

// CoverageRatio returns |Oi|/|F| for risk ref given the current failure
// signature size.
func (o *Overlay) CoverageRatio(ref object.Ref) float64 {
	sig := len(o.FailureSignature())
	if sig == 0 {
		return 0
	}
	r, ok := o.riskByRef(ref)
	if !ok {
		return 0
	}
	failed := 0
	for _, el := range o.dependents(r) {
		if o.edgeFailedID(el, r) {
			failed++
		}
	}
	return float64(failed) / float64(sig)
}

// SuspectSet returns the union of risks with a failed edge to any
// observation.
func (o *Overlay) SuspectSet() []object.Ref {
	set := make(object.Set)
	for i := range o.base.elements {
		for r := range o.base.elements[i].failed {
			set.Add(o.base.risks[r].ref)
		}
	}
	for _, marks := range o.failed {
		for r := range marks {
			set.Add(o.refOf(r))
		}
	}
	return set.Sorted()
}

// String summarizes the view with combined base + overlay counts.
func (o *Overlay) String() string { return summarize(o) }

// WriteDOT renders the overlay view as a Graphviz digraph.
func (o *Overlay) WriteDOT(w io.Writer, maxElements int) error {
	return WriteDOT(w, o, maxElements)
}

func sortElementIDs(els []ElementID) {
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
}
