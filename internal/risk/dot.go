// Graphviz export of risk models, rendering the paper's Figure 4/5
// bipartite diagrams: affected elements on the left, shared risks on the
// right, failed edges highlighted.

package risk

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the model as a Graphviz digraph. Failed edges and
// observation elements are drawn red; healthy edges gray. maxElements
// bounds output size for huge models (0 = no bound).
func (m *Model) WriteDOT(w io.Writer, maxElements int) error {
	var b strings.Builder
	b.WriteString("digraph riskmodel {\n")
	b.WriteString("  rankdir=LR;\n")
	fmt.Fprintf(&b, "  label=%q;\n", m.name)
	b.WriteString("  node [fontsize=10];\n")

	n := len(m.elements)
	if maxElements > 0 && n > maxElements {
		n = maxElements
	}
	for i := 0; i < n; i++ {
		e := m.elements[i]
		color := "black"
		if len(e.failed) > 0 {
			color = "red"
		}
		fmt.Fprintf(&b, "  e%d [label=%q shape=box color=%s];\n", i, e.label, color)
	}

	// Emit only risks adjacent to the emitted elements.
	emitted := make(map[RiskID]bool)
	for i := 0; i < n; i++ {
		for _, r := range m.elements[i].risks {
			if !emitted[r] {
				emitted[r] = true
				fmt.Fprintf(&b, "  r%d [label=%q shape=ellipse];\n", int(r), m.risks[r].ref.String())
			}
			style := "color=gray"
			if _, failed := m.elements[i].failed[r]; failed {
				style = "color=red penwidth=2"
			}
			fmt.Fprintf(&b, "  e%d -> r%d [%s];\n", i, int(r), style)
		}
	}
	if n < len(m.elements) {
		fmt.Fprintf(&b, "  trunc [label=\"… %d more elements\" shape=plaintext];\n", len(m.elements)-n)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
