// Graphviz export of risk models, rendering the paper's Figure 4/5
// bipartite diagrams: affected elements on the left, shared risks on the
// right, failed edges highlighted.

package risk

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders any risk view — a mutable Model or a failure Overlay —
// as a Graphviz digraph. Failed edges and observation elements are drawn
// red (overlay-backed views include the overlay's marks); healthy edges
// gray. maxElements bounds output size for huge models (0 = no bound).
func WriteDOT(w io.Writer, v View, maxElements int) error {
	a, ok := v.(adjacency)
	if !ok {
		// Package-external View implementations cannot expose insertion
		// order; both in-package kinds implement adjacency.
		return fmt.Errorf("risk: WriteDOT: unsupported view type %T", v)
	}
	var b strings.Builder
	b.WriteString("digraph riskmodel {\n")
	b.WriteString("  rankdir=LR;\n")
	fmt.Fprintf(&b, "  label=%q;\n", v.Name())
	b.WriteString("  node [fontsize=10];\n")

	total := v.NumElements()
	n := total
	if maxElements > 0 && n > maxElements {
		n = maxElements
	}
	for i := 0; i < n; i++ {
		el := ElementID(i)
		color := "black"
		if v.IsObservation(el) {
			color = "red"
		}
		fmt.Fprintf(&b, "  e%d [label=%q shape=box color=%s];\n", i, v.Label(el), color)
	}

	// Emit only risks adjacent to the emitted elements.
	emitted := make(map[RiskID]bool)
	for i := 0; i < n; i++ {
		el := ElementID(i)
		for _, r := range a.risksAdj(el) {
			if !emitted[r] {
				emitted[r] = true
				fmt.Fprintf(&b, "  r%d [label=%q shape=ellipse];\n", int(r), a.refOf(r).String())
			}
			style := "color=gray"
			if a.edgeFailedID(el, r) {
				style = "color=red penwidth=2"
			}
			fmt.Fprintf(&b, "  e%d -> r%d [%s];\n", i, int(r), style)
		}
	}
	if n < total {
		fmt.Fprintf(&b, "  trunc [label=\"… %d more elements\" shape=plaintext];\n", total-n)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDOT renders the model as a Graphviz digraph.
func (m *Model) WriteDOT(w io.Writer, maxElements int) error {
	return WriteDOT(w, m, maxElements)
}
