package risk

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

// viewsEqual asserts that two views expose identical state through every
// View read method, element by element and risk by risk.
func viewsEqual(t *testing.T, want, got View) {
	t.Helper()
	if want.Name() != got.Name() {
		t.Errorf("Name: %q vs %q", want.Name(), got.Name())
	}
	for _, pair := range [][2]int{
		{want.NumElements(), got.NumElements()},
		{want.NumRisks(), got.NumRisks()},
		{want.NumEdges(), got.NumEdges()},
		{want.NumFailedEdges(), got.NumFailedEdges()},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("counts differ: want %v got %v (%s vs %s)", pair[0], pair[1], want, got)
		}
	}
	if !reflect.DeepEqual(want.Risks(), got.Risks()) {
		t.Fatalf("Risks: %v vs %v", want.Risks(), got.Risks())
	}
	if !reflect.DeepEqual(want.FailureSignature(), got.FailureSignature()) {
		t.Errorf("FailureSignature: %v vs %v", want.FailureSignature(), got.FailureSignature())
	}
	if !reflect.DeepEqual(want.SuspectSet(), got.SuspectSet()) {
		t.Errorf("SuspectSet: %v vs %v", want.SuspectSet(), got.SuspectSet())
	}
	for i := 0; i < want.NumElements(); i++ {
		el := ElementID(i)
		if want.Label(el) != got.Label(el) {
			t.Errorf("Label(%d): %q vs %q", i, want.Label(el), got.Label(el))
		}
		if id, ok := got.ElementByLabel(want.Label(el)); !ok || id != el {
			t.Errorf("ElementByLabel(%q) = %d,%v", want.Label(el), id, ok)
		}
		if want.IsObservation(el) != got.IsObservation(el) {
			t.Errorf("IsObservation(%d): %v vs %v", i, want.IsObservation(el), got.IsObservation(el))
		}
		if !reflect.DeepEqual(want.RisksOf(el), got.RisksOf(el)) {
			t.Errorf("RisksOf(%d): %v vs %v", i, want.RisksOf(el), got.RisksOf(el))
		}
		if !reflect.DeepEqual(want.FailedRisksOf(el), got.FailedRisksOf(el)) {
			t.Errorf("FailedRisksOf(%d): %v vs %v", i, want.FailedRisksOf(el), got.FailedRisksOf(el))
		}
	}
	for _, ref := range want.Risks() {
		wr, _ := want.RiskByRef(ref)
		gr, ok := got.RiskByRef(ref)
		if !ok || wr != gr {
			t.Errorf("RiskByRef(%s): %d vs %d,%v", ref, wr, gr, ok)
		}
		if want.Ref(wr) != got.Ref(gr) {
			t.Errorf("Ref round trip differs for %s", ref)
		}
		if !reflect.DeepEqual(want.ElementsOf(ref), got.ElementsOf(ref)) {
			t.Errorf("ElementsOf(%s): %v vs %v", ref, want.ElementsOf(ref), got.ElementsOf(ref))
		}
		if !reflect.DeepEqual(want.FailedElementsOf(ref), got.FailedElementsOf(ref)) {
			t.Errorf("FailedElementsOf(%s): %v vs %v", ref, want.FailedElementsOf(ref), got.FailedElementsOf(ref))
		}
		if want.NumDependents(ref) != got.NumDependents(ref) {
			t.Errorf("NumDependents(%s)", ref)
		}
		if want.HitRatio(ref) != got.HitRatio(ref) {
			t.Errorf("HitRatio(%s): %v vs %v", ref, want.HitRatio(ref), got.HitRatio(ref))
		}
		if want.CoverageRatio(ref) != got.CoverageRatio(ref) {
			t.Errorf("CoverageRatio(%s)", ref)
		}
		for _, els := range [][]ElementID{want.ElementsOf(ref)} {
			for _, el := range els {
				if want.EdgeFailed(el, ref) != got.EdgeFailed(el, ref) {
					t.Errorf("EdgeFailed(%d,%s)", el, ref)
				}
			}
		}
	}
}

// TestOverlayMatchesClone drives random MarkFailed sequences — including
// marks that create edges and risks absent from the base — against a
// clone and an overlay of the same pristine model and asserts every View
// read agrees. This is the overlay's core contract: indistinguishable
// from Clone()+MarkFailed.
func TestOverlayMatchesClone(t *testing.T) {
	d := threeTier(t)
	pristine := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	pristineDOT := dotString(t, pristine)

	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clone := pristine.Clone()
		ov := NewOverlay(pristine)

		refs := pristine.Risks()
		// Mix in refs the base does not know, so marks create overlay
		// edges and risks.
		refs = append(refs, object.Filter(9001), object.EPG(77), object.Contract(555))
		for i := 0; i < 12; i++ {
			el := ElementID(rng.Intn(pristine.NumElements()))
			ref := refs[rng.Intn(len(refs))]
			cGot := clone.MarkFailed(el, ref)
			oGot := ov.MarkFailed(el, ref)
			if cGot != oGot {
				t.Fatalf("seed %d mark %d: MarkFailed(%d,%s) clone=%v overlay=%v",
					seed, i, el, ref, cGot, oGot)
			}
		}
		viewsEqual(t, clone, ov)
		if clone.String() != ov.String() {
			t.Errorf("String: %q vs %q", clone, ov)
		}
		if cd, od := dotString(t, clone), dotString(t, ov); cd != od {
			t.Errorf("seed %d: DOT output differs:\n%s\nvs\n%s", seed, cd, od)
		}
	}

	// The pristine base must be untouched by every overlay and clone.
	if pristine.NumFailedEdges() != 0 {
		t.Fatal("overlay marks leaked into the pristine base")
	}
	if dotString(t, pristine) != pristineDOT {
		t.Fatal("pristine base changed during overlay use")
	}
}

func dotString(t *testing.T, v View) string {
	t.Helper()
	var b strings.Builder
	if err := WriteDOT(&b, v, 0); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestOverlayEmpty pins the cheap-warm-run property: an unmarked overlay
// reports exactly the pristine base's state.
func TestOverlayEmpty(t *testing.T) {
	d := threeTier(t)
	pristine := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	ov := NewOverlay(pristine)
	viewsEqual(t, pristine, ov)
	if ov.Base() != pristine {
		t.Error("Base must return the pristine core")
	}
	if len(ov.FailureSignature()) != 0 || ov.NumFailedEdges() != 0 {
		t.Error("fresh overlay must have no failures")
	}
}

// TestOverlayStacks covers overlays over an already-annotated base: the
// combined counts and failure sets must include both layers.
func TestOverlayStacks(t *testing.T) {
	m := NewModel("stack")
	a := m.EnsureElement("a")
	b := m.EnsureElement("b")
	m.AddEdge(a, object.Filter(1))
	m.AddEdge(b, object.Filter(1))
	m.MarkFailed(a, object.Filter(1))

	ov := NewOverlay(m)
	if !ov.IsObservation(a) || ov.NumFailedEdges() != 1 {
		t.Fatal("overlay must see the base's failures")
	}
	if ov.MarkFailed(a, object.Filter(1)) {
		t.Error("re-marking a base-failed edge must be a no-op")
	}
	if !ov.MarkFailed(b, object.Filter(1)) {
		t.Error("marking a healthy base edge must transition")
	}
	if got := ov.NumFailedEdges(); got != 2 {
		t.Errorf("NumFailedEdges = %d, want 2", got)
	}
	if sig := ov.FailureSignature(); len(sig) != 2 {
		t.Errorf("FailureSignature = %v", sig)
	}
	if m.NumFailedEdges() != 1 {
		t.Error("overlay marks must not touch the base")
	}
}

// TestBuildControllerModelParallelIdentity is the sharded-build identity
// regression: the merged shard build must be deeply identical — element
// IDs, risk IDs, adjacency and dependent orders, indexes — to the serial
// build at every worker count.
func TestBuildControllerModelParallelIdentity(t *testing.T) {
	d := threeTier(t)
	for _, opts := range []ControllerModelOptions{{}, {IncludeSwitchRisk: true}} {
		serial := BuildControllerModel(d, opts)
		for _, workers := range []int{2, 3, 8, 64} {
			par := BuildControllerModelParallel(d, opts, workers)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("workers=%d IncludeSwitchRisk=%v: sharded build differs from serial\nserial: %s\nparallel: %s",
					workers, opts.IncludeSwitchRisk, serial, par)
			}
		}
	}
}

// TestAugmentControllerModelPatch checks patch-based augmentation against
// the direct path: computing patches read-only and replaying them must
// mark exactly what interleaved augmentation marks.
func TestAugmentControllerModelPatch(t *testing.T) {
	d := threeTier(t)
	var missing []rule.Rule
	for _, r := range d.RulesFor(2) {
		if r.Match.SrcEPG == 1 && r.Match.DstEPG == 2 {
			missing = append(missing, r)
		}
	}
	if len(missing) == 0 {
		t.Fatal("setup: no missing rules")
	}

	direct := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	wantMarked := AugmentControllerModel(direct, 2, missing, d.Provenance)

	pristine := BuildControllerModel(d, ControllerModelOptions{IncludeSwitchRisk: true})
	patch := AugmentControllerModelPatch(pristine, 2, missing, d.Provenance)
	if patch.Empty() {
		t.Fatal("patch must carry marks")
	}
	ov := NewOverlay(pristine)
	if got := patch.Apply(ov); got != wantMarked {
		t.Errorf("patch Apply marked %d, direct marked %d", got, wantMarked)
	}
	viewsEqual(t, direct, ov)

	var nilPatch *Patch
	if !nilPatch.Empty() || nilPatch.Apply(ov) != 0 {
		t.Error("nil patch must be empty and apply nothing")
	}
}
