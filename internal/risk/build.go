// Risk-model construction from a compiled deployment, and augmentation
// with the missing rules produced by the L-T equivalence checker (§III-C).

package risk

import (
	"fmt"
	"sort"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
)

// BuildSwitchModel constructs the switch risk model for a single switch
// (paper Figure 4(a)): elements are the EPG pairs deployed on the switch,
// risks are the policy objects each pair's rules depend on.
func BuildSwitchModel(d *compile.Deployment, sw object.ID) *Model {
	m := NewModel(fmt.Sprintf("switch-%d", sw))
	// Insert elements in sorted pair order, not PairRules map order:
	// element IDs are dense insertion indices, so map-order iteration
	// would make IDs (and every downstream localization tie-break) vary
	// run to run. Only this switch's pairs are collected and sorted —
	// the full-fabric footprint would make per-switch builds quadratic.
	pairs := make([]compile.SwitchPair, 0, 64)
	for sp := range d.PairRules {
		if sp.Switch == sw {
			pairs = append(pairs, sp)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Less(pairs[j]) })
	for _, sp := range pairs {
		el := m.EnsureElement(sp.Pair.String())
		for _, k := range d.PairRules[sp] {
			for _, ref := range d.Provenance[k] {
				m.AddEdge(el, ref)
			}
		}
	}
	return m
}

// BuildAnnotatedSwitchModel builds the switch risk model for sw and
// augments it with the switch's missing rules in one step — the per-switch
// unit of the analyzer's fold stage. It only reads the deployment (the
// model under construction is unshared), so calls for distinct switches
// are safe to run concurrently against the same deployment, which is what
// lets the fold stage fan out alongside the equivalence checks.
func BuildAnnotatedSwitchModel(d *compile.Deployment, sw object.ID, missing []rule.Rule) *Model {
	m := BuildSwitchModel(d, sw)
	AugmentSwitchModel(m, missing, d.Provenance)
	return m
}

// ControllerModelOptions configures controller-model construction.
type ControllerModelOptions struct {
	// IncludeSwitchRisk adds each triplet's switch as a shared risk, so
	// that whole-switch failures (unresponsive switch, §V-B use case 3)
	// are localizable to the physical object.
	IncludeSwitchRisk bool
}

// BuildControllerModel constructs the controller risk model (paper Figure
// 4(b)): elements are (switch, EPG pair) triplets across the whole fabric;
// risks are the policy objects each pair relies on in that switch, plus
// optionally the switch itself.
func BuildControllerModel(d *compile.Deployment, opts ControllerModelOptions) *Model {
	m := NewModel("controller")
	for _, sp := range d.SwitchPairs() {
		el := m.EnsureElement(sp.String())
		for _, k := range d.PairRules[sp] {
			for _, ref := range d.Provenance[k] {
				m.AddEdge(el, ref)
			}
		}
		if opts.IncludeSwitchRisk {
			m.AddEdge(el, object.Switch(sp.Switch))
		}
	}
	return m
}

// AugmentSwitchModel marks failures in a switch risk model from the
// missing rules the equivalence checker reported for that switch. For
// every missing rule, the EPG pair it serves becomes an observation and
// the edges to all objects in the rule's provenance are flagged fail. It
// returns the number of edges newly marked failed.
func AugmentSwitchModel(m *Model, missing []rule.Rule, prov map[rule.Key][]object.Ref) int {
	marked := 0
	for _, r := range missing {
		pair := policy.MakeEPGPair(r.Match.SrcEPG, r.Match.DstEPG)
		el, ok := m.ElementByLabel(pair.String())
		if !ok {
			continue // rule for a pair not modeled on this switch
		}
		for _, ref := range provenanceOf(r, prov) {
			if m.MarkFailed(el, ref) {
				marked++
			}
		}
	}
	return marked
}

// AugmentControllerModel marks failures in the controller risk model from
// the per-switch missing-rule reports. markSwitch controls whether the
// triplet's edge to its switch risk (if modeled) is also flagged.
func AugmentControllerModel(m *Model, sw object.ID, missing []rule.Rule, prov map[rule.Key][]object.Ref) int {
	marked := 0
	for _, r := range missing {
		pair := policy.MakeEPGPair(r.Match.SrcEPG, r.Match.DstEPG)
		sp := compile.SwitchPair{Switch: sw, Pair: pair}
		el, ok := m.ElementByLabel(sp.String())
		if !ok {
			continue
		}
		for _, ref := range provenanceOf(r, prov) {
			if m.MarkFailed(el, ref) {
				marked++
			}
		}
		if _, hasSwitchRisk := m.RiskByRef(object.Switch(sw)); hasSwitchRisk {
			if m.MarkFailed(el, object.Switch(sw)) {
				marked++
			}
		}
	}
	return marked
}

func provenanceOf(r rule.Rule, prov map[rule.Key][]object.Ref) []object.Ref {
	if len(r.Provenance) > 0 {
		return r.Provenance
	}
	if prov == nil {
		return nil
	}
	return prov[r.Key()]
}
