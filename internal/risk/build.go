// Risk-model construction from a compiled deployment, and augmentation
// with the missing rules produced by the L-T equivalence checker (§III-C).

package risk

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
)

// BuildSwitchModel constructs the switch risk model for a single switch
// (paper Figure 4(a)): elements are the EPG pairs deployed on the switch,
// risks are the policy objects each pair's rules depend on.
func BuildSwitchModel(d *compile.Deployment, sw object.ID) *Model {
	m := NewModel(fmt.Sprintf("switch-%d", sw))
	// Insert elements in sorted pair order, not PairRules map order:
	// element IDs are dense insertion indices, so map-order iteration
	// would make IDs (and every downstream localization tie-break) vary
	// run to run. Only this switch's pairs are collected and sorted —
	// the full-fabric footprint would make per-switch builds quadratic.
	pairs := make([]compile.SwitchPair, 0, 64)
	for sp := range d.PairRules {
		if sp.Switch == sw {
			pairs = append(pairs, sp)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Less(pairs[j]) })
	for _, sp := range pairs {
		el := m.EnsureElement(sp.Pair.String())
		for _, k := range d.PairRules[sp] {
			for _, ref := range d.Provenance[k] {
				m.AddEdge(el, ref)
			}
		}
	}
	return m
}

// BuildAnnotatedSwitchModel builds the switch risk model for sw and
// augments it with the switch's missing rules in one step — the per-switch
// unit of the analyzer's fold stage. It only reads the deployment (the
// model under construction is unshared), so calls for distinct switches
// are safe to run concurrently against the same deployment, which is what
// lets the fold stage fan out alongside the equivalence checks.
func BuildAnnotatedSwitchModel(d *compile.Deployment, sw object.ID, missing []rule.Rule) *Model {
	m := BuildSwitchModel(d, sw)
	AugmentSwitchModel(m, missing, d.Provenance)
	return m
}

// ControllerModelOptions configures controller-model construction.
type ControllerModelOptions struct {
	// IncludeSwitchRisk adds each triplet's switch as a shared risk, so
	// that whole-switch failures (unresponsive switch, §V-B use case 3)
	// are localizable to the physical object.
	IncludeSwitchRisk bool
}

// BuildControllerModel constructs the controller risk model (paper Figure
// 4(b)): elements are (switch, EPG pair) triplets across the whole fabric;
// risks are the policy objects each pair relies on in that switch, plus
// optionally the switch itself.
func BuildControllerModel(d *compile.Deployment, opts ControllerModelOptions) *Model {
	return BuildControllerModelParallel(d, opts, 1)
}

// BuildControllerModelParallel is BuildControllerModel with the build
// sharded by switch over a pool of workers goroutines. Element labels
// embed the switch, so every shard owns a disjoint element range, and the
// shards are merged in ascending switch-ID order replaying the serial
// build's exact insertion sequence: element IDs, risk IDs, and adjacency
// orders come out identical to the serial build, keeping every downstream
// localization result byte-identical at any worker count. The merge is a
// cheap remap-and-append pass; the map-heavy per-pair work (rule-key and
// provenance lookups, edge dedup) runs in the shards. workers <= 1
// selects the serial build.
func BuildControllerModelParallel(d *compile.Deployment, opts ControllerModelOptions, workers int) *Model {
	sps := d.SwitchPairs() // sorted: ascending switch, then pair
	m := NewModel("controller")
	if workers <= 1 || len(sps) == 0 {
		buildControllerRange(m, d, sps, opts)
		return m
	}

	// Slice the sorted footprint into per-switch shards.
	type shard struct{ lo, hi int }
	var shards []shard
	lo := 0
	for i := 1; i <= len(sps); i++ {
		if i == len(sps) || sps[i].Switch != sps[lo].Switch {
			shards = append(shards, shard{lo, i})
			lo = i
		}
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		buildControllerRange(m, d, sps, opts)
		return m
	}

	models := make([]*Model, len(shards))
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				sm := NewModel("shard")
				buildControllerRange(sm, d, sps[shards[i].lo:shards[i].hi], opts)
				models[i] = sm
			}
		}()
	}
	wg.Wait()

	for _, sm := range models {
		mergeShard(m, sm)
	}
	return m
}

// buildControllerRange builds the controller-model slice for a contiguous
// run of the sorted (switch, pair) footprint into m.
func buildControllerRange(m *Model, d *compile.Deployment, sps []compile.SwitchPair, opts ControllerModelOptions) {
	for _, sp := range sps {
		el := m.EnsureElement(sp.String())
		for _, k := range d.PairRules[sp] {
			for _, ref := range d.Provenance[k] {
				m.AddEdge(el, ref)
			}
		}
		if opts.IncludeSwitchRisk {
			m.AddEdge(el, object.Switch(sp.Switch))
		}
	}
}

// mergeShard appends a shard model built from a disjoint element range
// onto m, remapping the shard's risk IDs. Shard risk IDs are first-
// encounter order within the shard's pair range, so registering them in
// ID order reproduces the serial build's global first-encounter order.
func mergeShard(m *Model, sm *Model) {
	remap := make([]RiskID, len(sm.risks))
	for i := range sm.risks {
		remap[i] = m.EnsureRisk(sm.risks[i].ref)
	}
	for i := range sm.elements {
		se := &sm.elements[i]
		el := ElementID(len(m.elements))
		risks := make([]RiskID, len(se.risks))
		for j, r := range se.risks {
			risks[j] = remap[r]
		}
		m.elements = append(m.elements, elementData{label: se.label, risks: risks})
		m.byLabel[se.label] = el
		for _, r := range risks {
			m.risks[r].elements = append(m.risks[r].elements, el)
		}
		m.edges += len(risks)
		// Keep the mutation revision identical to the serial build's: one
		// bump per element and per edge, as EnsureElement/AddEdge would do.
		m.rev += 1 + uint64(len(risks))
	}
}

// AugmentSwitchModel marks failures in a switch risk model from the
// missing rules the equivalence checker reported for that switch. For
// every missing rule, the EPG pair it serves becomes an observation and
// the edges to all objects in the rule's provenance are flagged fail. It
// returns the number of edges newly marked failed. m may be a mutable
// model or an overlay.
func AugmentSwitchModel(m Marker, missing []rule.Rule, prov map[rule.Key][]object.Ref) int {
	marked := 0
	for _, r := range missing {
		pair := policy.MakeEPGPair(r.Match.SrcEPG, r.Match.DstEPG)
		el, ok := m.ElementByLabel(pair.String())
		if !ok {
			continue // rule for a pair not modeled on this switch
		}
		for _, ref := range provenanceOf(r, prov) {
			if m.MarkFailed(el, ref) {
				marked++
			}
		}
	}
	return marked
}

// AugmentControllerModel marks failures in the controller risk model from
// the per-switch missing-rule reports: each implicated triplet's edge to
// the rule's provenance objects — and to its switch risk, when modeled —
// is flagged fail. It returns the number of edges newly marked failed.
func AugmentControllerModel(m Marker, sw object.ID, missing []rule.Rule, prov map[rule.Key][]object.Ref) int {
	return AugmentControllerModelPatch(m, sw, missing, prov).Apply(m)
}

// Patch is an ordered list of failure marks computed against a read-only
// View, replayable into a Marker with Apply. It decouples computing
// controller-model augmentation (per-switch, read-only, safe to fan out)
// from applying it (serial, in ascending switch-ID order), which is what
// lets the analyzer's fold stage parallelize everything but the final
// O(failures) replay.
type Patch struct {
	marks []patchMark
}

type patchMark struct {
	el  ElementID
	ref object.Ref
}

// Empty reports whether the patch carries no marks.
func (p *Patch) Empty() bool { return p == nil || len(p.marks) == 0 }

// Apply replays the marks into m in recorded order and returns the number
// of edges newly marked failed.
func (p *Patch) Apply(m Marker) int {
	if p == nil {
		return 0
	}
	marked := 0
	for _, mk := range p.marks {
		if m.MarkFailed(mk.el, mk.ref) {
			marked++
		}
	}
	return marked
}

// AugmentControllerModelPatch computes the failure marks
// AugmentControllerModel would make for one switch's missing rules,
// without mutating the view. It only reads v, so patches for distinct
// switches compute concurrently against a shared pristine view; replaying
// them with Apply in ascending switch-ID order is equivalent to the
// serial augmentation (marking never creates elements, and never creates
// switch risks — the only base state the computation reads).
func AugmentControllerModelPatch(v View, sw object.ID, missing []rule.Rule, prov map[rule.Key][]object.Ref) *Patch {
	p := &Patch{}
	_, hasSwitchRisk := v.RiskByRef(object.Switch(sw))
	for _, r := range missing {
		pair := policy.MakeEPGPair(r.Match.SrcEPG, r.Match.DstEPG)
		sp := compile.SwitchPair{Switch: sw, Pair: pair}
		el, ok := v.ElementByLabel(sp.String())
		if !ok {
			continue
		}
		for _, ref := range provenanceOf(r, prov) {
			p.marks = append(p.marks, patchMark{el: el, ref: ref})
		}
		if hasSwitchRisk {
			p.marks = append(p.marks, patchMark{el: el, ref: object.Switch(sw)})
		}
	}
	return p
}

func provenanceOf(r rule.Rule, prov map[rule.Key][]object.Ref) []object.Ref {
	if len(r.Provenance) > 0 {
		return r.Provenance
	}
	if prov == nil {
		return nil
	}
	return prov[r.Key()]
}
