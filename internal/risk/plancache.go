// Compiled-plan cache hook and overlay delta export.
//
// The localization engine compiles a pristine *Model into a dense
// CSR/bitset plan (internal/localize). The plan is valid exactly as long
// as the model is not mutated, so Model carries a mutation revision and a
// single-slot atomic cache: StorePlan records an artifact against the
// current revision, CachedPlan returns it only while the revision still
// matches. The slot holds `any` so risk does not depend on localize — the
// same inversion the frozen BDD base uses (the session owns the cache,
// the producer package defines the artifact).
//
// Overlays never recompile: the delta exports below enumerate exactly
// what an overlay adds on top of its base (created risks, created edges,
// failure marks), which is all the engine needs to compose a per-run
// delta in O(marks).

package risk

import (
	"sort"
	"sync/atomic"

	"scout/internal/object"
)

// planEntry pairs a cached artifact with the model revision it was
// compiled from.
type planEntry struct {
	rev  uint64
	plan any
}

// Revision returns the model's mutation counter. It changes whenever an
// element, risk, edge, or failure mark is added or failures are reset, so
// artifacts derived from the model can detect staleness.
func (m *Model) Revision() uint64 { return m.rev }

// CachedPlan returns the artifact stored by StorePlan, or nil if none was
// stored or the model has been mutated since. Safe for concurrent readers
// of an otherwise-immutable model.
func (m *Model) CachedPlan() any {
	e := m.planCache.Load()
	if e == nil || e.rev != m.rev {
		return nil
	}
	return e.plan
}

// StorePlan caches an artifact against the model's current revision,
// replacing any previous one.
func (m *Model) StorePlan(p any) {
	m.planCache.Store(&planEntry{rev: m.rev, plan: p})
}

// planCacheSlot aliases the atomic slot type so model.go's struct stays
// readable.
type planCacheSlot = atomic.Pointer[planEntry]

// ExtraRiskRefs returns the refs of risks created by overlay marks, in
// creation order (their RiskIDs continue the base's dense numbering).
func (o *Overlay) ExtraRiskRefs() []object.Ref {
	if len(o.extraRisks) == 0 {
		return nil
	}
	out := make([]object.Ref, len(o.extraRisks))
	for i := range o.extraRisks {
		out[i] = o.extraRisks[i].ref
	}
	return out
}

// ForEachOverlayEdge invokes fn for every overlay-created edge (an edge a
// mark named that the base lacked), in ascending element order. Every
// overlay-created edge also carries a failure mark, by construction of
// MarkFailed.
func (o *Overlay) ForEachOverlayEdge(fn func(el ElementID, ref object.Ref)) {
	for _, el := range sortedKeys(o.extraDeps) {
		for _, r := range o.extraDeps[el] {
			fn(el, o.refOf(r))
		}
	}
}

// ForEachOverlayMark invokes fn for every failure mark the overlay added
// (marks on base edges and on overlay-created edges alike; base-failed
// edges are never re-marked), in ascending element order.
func (o *Overlay) ForEachOverlayMark(fn func(el ElementID, ref object.Ref)) {
	for _, el := range sortedKeys(o.failed) {
		marks := o.failed[el]
		ids := make([]RiskID, 0, len(marks))
		for r := range marks {
			ids = append(ids, r)
		}
		sortRiskIDs(ids)
		for _, r := range ids {
			fn(el, o.refOf(r))
		}
	}
}

func sortRiskIDs(ids []RiskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortedKeys[V any](m map[ElementID]V) []ElementID {
	out := make([]ElementID, 0, len(m))
	for el := range m {
		out = append(out, el)
	}
	sortElementIDs(out)
	return out
}
