// Package tcam simulates a switch's ternary content-addressable memory:
// a fixed-capacity, priority-ordered table of access-control rules.
//
// The simulator reproduces the physical failure modes the paper lists in
// §II-B as sources of network-state inconsistency: insufficient space for
// new rules (overflow), local rule eviction unknown to the controller, and
// hardware corruption flipping bits in deployed rules.
package tcam

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"scout/internal/object"
	"scout/internal/rule"
)

// ErrFull is returned by Install when the TCAM has no free entries.
var ErrFull = errors.New("tcam: table full")

// DefaultCapacity is the default number of TCAM entries, loosely modeled
// on ACL TCAM bank sizes of datacenter leaf switches.
const DefaultCapacity = 4096

// TCAM is a fixed-capacity rule table. It is safe for concurrent use.
type TCAM struct {
	mu       sync.RWMutex
	capacity int
	rules    []rule.Rule // kept sorted: priority desc, then insertion order
	// index maps each installed key to its first occurrence in match
	// order, making Install's duplicate check and Remove's lookup O(1)
	// (deploys used to be O(n²) per switch from the linear scans).
	// Corruption can alias two entries onto one key; the index then
	// tracks the earlier (higher-precedence) occurrence, matching what
	// the old linear scans returned.
	index map[rule.Key]int
}

// New creates a TCAM with the given capacity. Capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *TCAM {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &TCAM{capacity: capacity, index: make(map[rule.Key]int)}
}

// Capacity returns the table capacity in entries.
func (t *TCAM) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *TCAM) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Utilization returns the fraction of capacity in use (0..1).
func (t *TCAM) Utilization() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return float64(len(t.rules)) / float64(t.capacity)
}

// Install adds a rule to the table. Installing a rule whose Key already
// exists is idempotent. Returns ErrFull when the table is at capacity.
func (t *TCAM) Install(r rule.Rule) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := r.Key()
	if _, ok := t.index[k]; ok {
		return nil
	}
	if len(t.rules) >= t.capacity {
		return fmt.Errorf("install %s: %w", r, ErrFull)
	}
	// Match order is priority descending with programming order inside a
	// band, and a fresh install is the youngest entry of its band — so
	// its slot is the first index of strictly lower priority. Deploys
	// install in sorted order, which makes this an append.
	pos := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, rule.Rule{})
	copy(t.rules[pos+1:], t.rules[pos:])
	t.rules[pos] = r.Clone()
	for j := len(t.rules) - 1; j > pos; j-- {
		kj := t.rules[j].Key()
		if p, ok := t.index[kj]; ok && p == j-1 {
			t.index[kj] = j
		}
	}
	t.index[k] = pos
	return nil
}

// Remove deletes the first entry with the given key in match order. It
// reports whether an entry was removed.
func (t *TCAM) Remove(k rule.Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index[k]
	if !ok {
		return false
	}
	t.deleteAtLocked(i)
	return true
}

// Clear removes every entry.
func (t *TCAM) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
	t.index = make(map[rule.Key]int)
}

// Rules returns a snapshot of the installed rules in match order.
func (t *TCAM) Rules() []rule.Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]rule.Rule, len(t.rules))
	for i, r := range t.rules {
		out[i] = r.Clone()
	}
	return out
}

// Keys returns the set of installed rule keys.
func (t *TCAM) Keys() map[rule.Key]struct{} {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return rule.KeySet(t.rules)
}

// Classify returns the action of the first (highest-priority) rule matching
// the packet tuple, and whether any rule matched.
func (t *TCAM) Classify(vrf, src, dst object.ID, proto rule.Protocol, port uint16) (rule.Action, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.Match.Covers(vrf, src, dst, proto, port) {
			return r.Action, true
		}
	}
	return 0, false
}

// Packet is one classification query — the header tuple Classify takes,
// reified so callers can assemble batches up front.
type Packet struct {
	VRF   object.ID
	Src   object.ID
	Dst   object.ID
	Proto rule.Protocol
	Port  uint16
}

// Outcome is the result of classifying one packet of a batch. Matched
// mirrors Classify's second return; Action is meaningful only when
// Matched is true.
type Outcome struct {
	Action  rule.Action
	Matched bool
}

// ClassifyBatch resolves every packet of the batch in one priority-ordered
// pass over the rule table: rules on the outer loop, the still-unresolved
// packet set on the inner, so an n-entry table is scanned once per batch
// instead of once per packet and the read lock is taken once. The i-th
// outcome is exactly what Classify would return for the i-th packet.
func (t *TCAM) ClassifyBatch(pkts []Packet) []Outcome {
	out := make([]Outcome, len(pkts))
	if len(pkts) == 0 {
		return out
	}
	// unresolved holds the indices of packets no rule has claimed yet,
	// compacted in place (order-preserving) as rules resolve them.
	unresolved := make([]int, len(pkts))
	for i := range unresolved {
		unresolved[i] = i
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for ri := range t.rules {
		r := &t.rules[ri]
		live := unresolved[:0]
		for _, i := range unresolved {
			p := pkts[i]
			if r.Match.Covers(p.VRF, p.Src, p.Dst, p.Proto, p.Port) {
				out[i] = Outcome{Action: r.Action, Matched: true}
			} else {
				live = append(live, i)
			}
		}
		unresolved = live
		if len(unresolved) == 0 {
			break
		}
	}
	return out
}

// EvictRandom removes up to n random entries (a local eviction mechanism
// the controller is unaware of, §II-B). It returns the evicted rules.
func (t *TCAM) EvictRandom(n int, rng *rand.Rand) []rule.Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evicted []rule.Rule
	for i := 0; i < n && len(t.rules) > 0; i++ {
		idx := rng.Intn(len(t.rules))
		evicted = append(evicted, t.rules[idx])
		t.deleteAtLocked(idx)
	}
	return evicted
}

// CorruptionField selects which match field a corruption event flips.
type CorruptionField int

// Fields that TCAM corruption can damage.
const (
	CorruptVRF CorruptionField = iota + 1
	CorruptSrcEPG
	CorruptDstEPG
	CorruptPort
)

// Corrupt flips a bit in the selected field of up to n random entries,
// simulating TCAM bit errors (§II-B, [14]). The rules remain installed but
// no longer enforce the intended behaviour — their keys change, so the
// intended rules appear missing to the equivalence checker. It returns the
// keys of the rules that were corrupted (their pre-corruption identities).
func (t *TCAM) Corrupt(n int, field CorruptionField, rng *rand.Rand) []rule.Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	var damaged []rule.Key
	for i := 0; i < n && len(t.rules) > 0; i++ {
		idx := rng.Intn(len(t.rules))
		r := &t.rules[idx]
		if r.IsDefaultDeny() {
			continue
		}
		oldKey := r.Key()
		damaged = append(damaged, oldKey)
		bit := uint32(1) << uint(rng.Intn(16))
		switch field {
		case CorruptVRF:
			r.Match.VRF ^= object.ID(bit)
		case CorruptSrcEPG:
			r.Match.SrcEPG ^= object.ID(bit)
		case CorruptDstEPG:
			r.Match.DstEPG ^= object.ID(bit)
		case CorruptPort:
			r.Match.PortLo ^= uint16(bit)
			if r.Match.PortLo > r.Match.PortHi {
				r.Match.PortLo, r.Match.PortHi = r.Match.PortHi, r.Match.PortLo
			}
		}
		t.rekeyLocked(idx, oldKey, r.Key())
	}
	return damaged
}

// rekeyLocked repairs the key index after the entry at idx changed its
// key in place (corruption). Corruption is rare, so the occasional O(n)
// rescan for a surviving duplicate is fine.
func (t *TCAM) rekeyLocked(idx int, oldKey, newKey rule.Key) {
	if oldKey == newKey {
		return
	}
	if p, ok := t.index[oldKey]; ok && p == idx {
		delete(t.index, oldKey)
		for j := range t.rules {
			if j != idx && t.rules[j].Key() == oldKey {
				t.index[oldKey] = j
				break
			}
		}
	}
	// The corrupted entry may now alias another entry's key; the index
	// keeps whichever occurs first in match order.
	if p, ok := t.index[newKey]; !ok || p > idx {
		t.index[newKey] = idx
	}
}

func (t *TCAM) deleteAtLocked(i int) {
	k := t.rules[i].Key()
	first := t.index[k] == i
	if first {
		delete(t.index, k)
	}
	t.rules = append(t.rules[:i], t.rules[i+1:]...)
	for j := i; j < len(t.rules); j++ {
		kj := t.rules[j].Key()
		if p, ok := t.index[kj]; ok && p == j+1 {
			t.index[kj] = j
		}
	}
	if first && len(t.index) < len(t.rules) {
		// A corruption-aliased duplicate of k may survive past i;
		// promote the next occurrence to first.
		for j := i; j < len(t.rules); j++ {
			if t.rules[j].Key() == k {
				t.index[k] = j
				break
			}
		}
	}
}
