// Package tcam simulates a switch's ternary content-addressable memory:
// a fixed-capacity, priority-ordered table of access-control rules.
//
// The simulator reproduces the physical failure modes the paper lists in
// §II-B as sources of network-state inconsistency: insufficient space for
// new rules (overflow), local rule eviction unknown to the controller, and
// hardware corruption flipping bits in deployed rules.
package tcam

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"scout/internal/object"
	"scout/internal/rule"
)

// ErrFull is returned by Install when the TCAM has no free entries.
var ErrFull = errors.New("tcam: table full")

// DefaultCapacity is the default number of TCAM entries, loosely modeled
// on ACL TCAM bank sizes of datacenter leaf switches.
const DefaultCapacity = 4096

// TCAM is a fixed-capacity rule table. It is safe for concurrent use.
type TCAM struct {
	mu       sync.RWMutex
	capacity int
	rules    []rule.Rule // kept sorted: priority desc, then insertion order
	inserted int         // monotonically increasing insertion stamp
	stamps   []int       // parallel to rules
}

// New creates a TCAM with the given capacity. Capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *TCAM {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &TCAM{capacity: capacity}
}

// Capacity returns the table capacity in entries.
func (t *TCAM) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *TCAM) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Utilization returns the fraction of capacity in use (0..1).
func (t *TCAM) Utilization() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return float64(len(t.rules)) / float64(t.capacity)
}

// Install adds a rule to the table. Installing a rule whose Key already
// exists is idempotent. Returns ErrFull when the table is at capacity.
func (t *TCAM) Install(r rule.Rule) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, existing := range t.rules {
		if existing.Key() == r.Key() {
			return nil
		}
	}
	if len(t.rules) >= t.capacity {
		return fmt.Errorf("install %s: %w", r, ErrFull)
	}
	t.inserted++
	t.rules = append(t.rules, r.Clone())
	t.stamps = append(t.stamps, t.inserted)
	t.sortLocked()
	return nil
}

// Remove deletes the entry with the given key. It reports whether an entry
// was removed.
func (t *TCAM) Remove(k rule.Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rules {
		if r.Key() == k {
			t.deleteAtLocked(i)
			return true
		}
	}
	return false
}

// Clear removes every entry.
func (t *TCAM) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
	t.stamps = nil
}

// Rules returns a snapshot of the installed rules in match order.
func (t *TCAM) Rules() []rule.Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]rule.Rule, len(t.rules))
	for i, r := range t.rules {
		out[i] = r.Clone()
	}
	return out
}

// Keys returns the set of installed rule keys.
func (t *TCAM) Keys() map[rule.Key]struct{} {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return rule.KeySet(t.rules)
}

// Classify returns the action of the first (highest-priority) rule matching
// the packet tuple, and whether any rule matched.
func (t *TCAM) Classify(vrf, src, dst object.ID, proto rule.Protocol, port uint16) (rule.Action, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.Match.Covers(vrf, src, dst, proto, port) {
			return r.Action, true
		}
	}
	return 0, false
}

// EvictRandom removes up to n random entries (a local eviction mechanism
// the controller is unaware of, §II-B). It returns the evicted rules.
func (t *TCAM) EvictRandom(n int, rng *rand.Rand) []rule.Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evicted []rule.Rule
	for i := 0; i < n && len(t.rules) > 0; i++ {
		idx := rng.Intn(len(t.rules))
		evicted = append(evicted, t.rules[idx])
		t.deleteAtLocked(idx)
	}
	return evicted
}

// CorruptionField selects which match field a corruption event flips.
type CorruptionField int

// Fields that TCAM corruption can damage.
const (
	CorruptVRF CorruptionField = iota + 1
	CorruptSrcEPG
	CorruptDstEPG
	CorruptPort
)

// Corrupt flips a bit in the selected field of up to n random entries,
// simulating TCAM bit errors (§II-B, [14]). The rules remain installed but
// no longer enforce the intended behaviour — their keys change, so the
// intended rules appear missing to the equivalence checker. It returns the
// keys of the rules that were corrupted (their pre-corruption identities).
func (t *TCAM) Corrupt(n int, field CorruptionField, rng *rand.Rand) []rule.Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	var damaged []rule.Key
	for i := 0; i < n && len(t.rules) > 0; i++ {
		idx := rng.Intn(len(t.rules))
		r := &t.rules[idx]
		if r.IsDefaultDeny() {
			continue
		}
		damaged = append(damaged, r.Key())
		bit := uint32(1) << uint(rng.Intn(16))
		switch field {
		case CorruptVRF:
			r.Match.VRF ^= object.ID(bit)
		case CorruptSrcEPG:
			r.Match.SrcEPG ^= object.ID(bit)
		case CorruptDstEPG:
			r.Match.DstEPG ^= object.ID(bit)
		case CorruptPort:
			r.Match.PortLo ^= uint16(bit)
			if r.Match.PortLo > r.Match.PortHi {
				r.Match.PortLo, r.Match.PortHi = r.Match.PortHi, r.Match.PortLo
			}
		}
	}
	return damaged
}

func (t *TCAM) deleteAtLocked(i int) {
	t.rules = append(t.rules[:i], t.rules[i+1:]...)
	t.stamps = append(t.stamps[:i], t.stamps[i+1:]...)
}

// sortLocked restores match order: priority descending, then insertion
// order (older entries first), matching hardware behaviour where entry
// position within a priority band follows programming order.
func (t *TCAM) sortLocked() {
	idx := make([]int, len(t.rules))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := t.rules[idx[a]], t.rules[idx[b]]
		if ra.Priority != rb.Priority {
			return ra.Priority > rb.Priority
		}
		return t.stamps[idx[a]] < t.stamps[idx[b]]
	})
	newRules := make([]rule.Rule, len(t.rules))
	newStamps := make([]int, len(t.stamps))
	for i, j := range idx {
		newRules[i] = t.rules[j]
		newStamps[i] = t.stamps[j]
	}
	t.rules = newRules
	t.stamps = newStamps
}
