package tcam

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scout/internal/object"
	"scout/internal/rule"
)

func mkRule(vrf, src, dst object.ID, port uint16, prio int) rule.Rule {
	return rule.Rule{
		Match: rule.Match{
			VRF: vrf, SrcEPG: src, DstEPG: dst,
			Proto: rule.ProtoTCP, PortLo: port, PortHi: port,
		},
		Action:   rule.Allow,
		Priority: prio,
	}
}

func TestInstallAndLen(t *testing.T) {
	tc := New(10)
	if tc.Capacity() != 10 || tc.Len() != 0 {
		t.Fatalf("fresh tcam: cap=%d len=%d", tc.Capacity(), tc.Len())
	}
	if err := tc.Install(mkRule(1, 2, 3, 80, 10)); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 1 {
		t.Errorf("Len = %d", tc.Len())
	}
	// Idempotent for identical keys.
	if err := tc.Install(mkRule(1, 2, 3, 80, 10)); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 1 {
		t.Errorf("duplicate install must be idempotent, Len = %d", tc.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity || New(-5).Capacity() != DefaultCapacity {
		t.Error("non-positive capacity must select the default")
	}
}

func TestOverflow(t *testing.T) {
	tc := New(2)
	if err := tc.Install(mkRule(1, 1, 1, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tc.Install(mkRule(1, 1, 1, 2, 10)); err != nil {
		t.Fatal(err)
	}
	err := tc.Install(mkRule(1, 1, 1, 3, 10))
	if !errors.Is(err, ErrFull) {
		t.Errorf("overflow error = %v, want ErrFull", err)
	}
	if tc.Utilization() != 1.0 {
		t.Errorf("Utilization = %v, want 1", tc.Utilization())
	}
}

func TestRemove(t *testing.T) {
	tc := New(4)
	r := mkRule(1, 2, 3, 80, 10)
	if err := tc.Install(r); err != nil {
		t.Fatal(err)
	}
	if !tc.Remove(r.Key()) {
		t.Error("Remove should report success")
	}
	if tc.Remove(r.Key()) {
		t.Error("second Remove should report failure")
	}
	if tc.Len() != 0 {
		t.Errorf("Len after remove = %d", tc.Len())
	}
}

func TestClearAndKeys(t *testing.T) {
	tc := New(4)
	for p := uint16(1); p <= 3; p++ {
		if err := tc.Install(mkRule(1, 2, 3, p, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if len(tc.Keys()) != 3 {
		t.Errorf("Keys = %d", len(tc.Keys()))
	}
	tc.Clear()
	if tc.Len() != 0 || len(tc.Keys()) != 0 {
		t.Error("Clear must empty the table")
	}
}

func TestClassifyFirstMatchWins(t *testing.T) {
	tc := New(8)
	deny := mkRule(1, 2, 3, 80, 20)
	deny.Action = rule.Deny
	if err := tc.Install(deny); err != nil {
		t.Fatal(err)
	}
	if err := tc.Install(mkRule(1, 2, 3, 80, 10)); err != nil {
		t.Fatal(err)
	}
	action, matched := tc.Classify(1, 2, 3, rule.ProtoTCP, 80)
	if !matched || action != rule.Deny {
		t.Errorf("Classify = %v,%v; want deny (higher priority first)", action, matched)
	}
	if _, matched := tc.Classify(9, 9, 9, rule.ProtoTCP, 80); matched {
		t.Error("no rule should match unrelated traffic")
	}
}

func TestClassifyInsertionOrderWithinPriority(t *testing.T) {
	tc := New(8)
	first := mkRule(1, 2, 3, 80, 10)
	second := mkRule(1, 2, 3, 80, 10)
	second.Match.PortHi = 90 // different key, also covers port 80
	second.Action = rule.Deny
	if err := tc.Install(first); err != nil {
		t.Fatal(err)
	}
	if err := tc.Install(second); err != nil {
		t.Fatal(err)
	}
	action, _ := tc.Classify(1, 2, 3, rule.ProtoTCP, 80)
	if action != rule.Allow {
		t.Error("within a priority band, earlier-programmed entry wins")
	}
}

// TestClassifyMatchesLinearOracle cross-checks Classify against a direct
// scan over the Rules() snapshot.
func TestClassifyMatchesLinearOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := New(64)
		for i := 0; i < 30; i++ {
			r := mkRule(
				object.ID(rng.Intn(3)), object.ID(rng.Intn(4)), object.ID(rng.Intn(4)),
				uint16(rng.Intn(64)), rng.Intn(3)*10)
			r.Match.PortHi = r.Match.PortLo + uint16(rng.Intn(16))
			if rng.Intn(2) == 0 {
				r.Action = rule.Deny
			}
			_ = tc.Install(r)
		}
		snapshot := tc.Rules()
		for probe := 0; probe < 50; probe++ {
			vrf := object.ID(rng.Intn(3))
			src := object.ID(rng.Intn(4))
			dst := object.ID(rng.Intn(4))
			port := uint16(rng.Intn(96))
			gotAction, gotMatch := tc.Classify(vrf, src, dst, rule.ProtoTCP, port)
			var wantAction rule.Action
			wantMatch := false
			for _, r := range snapshot {
				if r.Match.Covers(vrf, src, dst, rule.ProtoTCP, port) {
					wantAction, wantMatch = r.Action, true
					break
				}
			}
			if gotMatch != wantMatch || (wantMatch && gotAction != wantAction) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestClassifyBatchMatchesClassify is the batch-path property test:
// over randomized tables (priority ties included) and packet batches
// (no-match packets included), ClassifyBatch must agree with per-packet
// Classify outcome-for-outcome.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := New(128)
		nRules := rng.Intn(60)
		for i := 0; i < nRules; i++ {
			r := mkRule(
				object.ID(rng.Intn(3)), object.ID(rng.Intn(4)), object.ID(rng.Intn(4)),
				uint16(rng.Intn(64)), rng.Intn(3)*10) // few bands => priority ties
			r.Match.PortHi = r.Match.PortLo + uint16(rng.Intn(16))
			if rng.Intn(2) == 0 {
				r.Action = rule.Deny
			}
			_ = tc.Install(r)
		}
		pkts := make([]Packet, rng.Intn(40))
		for i := range pkts {
			pkts[i] = Packet{
				VRF: object.ID(rng.Intn(4)), Src: object.ID(rng.Intn(5)), Dst: object.ID(rng.Intn(5)),
				Proto: rule.ProtoTCP, Port: uint16(rng.Intn(96)), // over-wide ranges => no-match packets
			}
		}
		got := tc.ClassifyBatch(pkts)
		if len(got) != len(pkts) {
			return false
		}
		for i, p := range pkts {
			action, matched := tc.Classify(p.VRF, p.Src, p.Dst, p.Proto, p.Port)
			if got[i].Matched != matched || (matched && got[i].Action != action) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClassifyBatchEmpty(t *testing.T) {
	tc := populatedT(t, 4)
	if out := tc.ClassifyBatch(nil); len(out) != 0 {
		t.Errorf("empty batch returned %d outcomes", len(out))
	}
}

func populatedT(t *testing.T, n int) *TCAM {
	t.Helper()
	tc := New(n)
	for p := uint16(0); p < uint16(n); p++ {
		if err := tc.Install(mkRule(1, 2, 3, p, 10)); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// TestIndexConsistentUnderChurn hammers the key index with the full
// mutation surface — install, remove, evict, corrupt (which can alias
// keys) — and after every step checks the index invariants against a
// linear oracle: every key resolves to its first occurrence in match
// order, Remove removes exactly the first occurrence, and the table
// stays sorted priority-descending.
func TestIndexConsistentUnderChurn(t *testing.T) {
	check := func(tc *TCAM) error {
		tc.mu.RLock()
		defer tc.mu.RUnlock()
		firsts := make(map[rule.Key]int)
		for i, r := range tc.rules {
			if i > 0 && tc.rules[i-1].Priority < r.Priority {
				return fmt.Errorf("rules out of priority order at %d", i)
			}
			k := r.Key()
			if _, seen := firsts[k]; !seen {
				firsts[k] = i
			}
		}
		if len(firsts) != len(tc.index) {
			return fmt.Errorf("index has %d entries, want %d", len(tc.index), len(firsts))
		}
		for k, want := range firsts {
			if got, ok := tc.index[k]; !ok || got != want {
				return fmt.Errorf("index[%v] = %d, want first occurrence %d", k, got, want)
			}
		}
		return nil
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tc := New(64)
		for step := 0; step < 120; step++ {
			switch rng.Intn(5) {
			case 0, 1:
				r := mkRule(
					object.ID(rng.Intn(3)), object.ID(rng.Intn(3)), object.ID(rng.Intn(3)),
					uint16(rng.Intn(16)), rng.Intn(3)*10)
				_ = tc.Install(r)
			case 2:
				rules := tc.Rules()
				if len(rules) > 0 {
					tc.Remove(rules[rng.Intn(len(rules))].Key())
				}
			case 3:
				tc.EvictRandom(1+rng.Intn(2), rng)
			case 4:
				tc.Corrupt(1+rng.Intn(2), CorruptionField(1+rng.Intn(4)), rng)
			}
			if err := check(tc); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

func TestEvictRandom(t *testing.T) {
	tc := New(16)
	for p := uint16(1); p <= 10; p++ {
		if err := tc.Install(mkRule(1, 2, 3, p, 10)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	evicted := tc.EvictRandom(4, rng)
	if len(evicted) != 4 || tc.Len() != 6 {
		t.Errorf("evicted=%d len=%d", len(evicted), tc.Len())
	}
	// Evicting more than present drains the table without error.
	evicted = tc.EvictRandom(100, rng)
	if len(evicted) != 6 || tc.Len() != 0 {
		t.Errorf("drain: evicted=%d len=%d", len(evicted), tc.Len())
	}
}

func TestCorruptChangesKeysButNotLen(t *testing.T) {
	tc := New(16)
	for p := uint16(1); p <= 5; p++ {
		if err := tc.Install(mkRule(1, 2, 3, p, 10)); err != nil {
			t.Fatal(err)
		}
	}
	before := tc.Keys()
	rng := rand.New(rand.NewSource(3))
	damaged := tc.Corrupt(3, CorruptVRF, rng)
	if len(damaged) == 0 {
		t.Fatal("corruption should damage entries")
	}
	if tc.Len() != 5 {
		t.Errorf("corruption must not change entry count, Len=%d", tc.Len())
	}
	after := tc.Keys()
	changed := 0
	for k := range before {
		if _, still := after[k]; !still {
			changed++
		}
	}
	if changed == 0 {
		t.Error("corrupted entries must have different keys")
	}
	// Damaged keys are the pre-corruption identities.
	for _, k := range damaged {
		if _, was := before[k]; !was {
			t.Errorf("damaged key %v was not present before corruption", k)
		}
	}
}

func TestCorruptSkipsDefaultDeny(t *testing.T) {
	tc := New(4)
	if err := tc.Install(rule.DefaultDeny()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if damaged := tc.Corrupt(10, CorruptVRF, rng); len(damaged) != 0 {
		t.Error("default deny must never be corrupted")
	}
}

func TestCorruptPortKeepsRangeValid(t *testing.T) {
	tc := New(8)
	r := mkRule(1, 2, 3, 80, 10)
	if err := tc.Install(r); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		tc.Corrupt(1, CorruptPort, rng)
		for _, got := range tc.Rules() {
			if got.Match.PortLo > got.Match.PortHi {
				t.Fatalf("corruption produced inverted range: %v", got.Match)
			}
		}
	}
}

func TestRulesSnapshotIsACopy(t *testing.T) {
	tc := New(4)
	if err := tc.Install(mkRule(1, 2, 3, 80, 10)); err != nil {
		t.Fatal(err)
	}
	snap := tc.Rules()
	snap[0].Match.VRF = 999
	action, matched := tc.Classify(1, 2, 3, rule.ProtoTCP, 80)
	if !matched || action != rule.Allow {
		t.Error("mutating the snapshot must not affect the table")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tc := New(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := uint16(0); p < 200; p++ {
			_ = tc.Install(mkRule(1, 2, 3, p, 10))
		}
	}()
	for i := 0; i < 200; i++ {
		tc.Classify(1, 2, 3, rule.ProtoTCP, uint16(i))
		tc.Len()
	}
	<-done
	if tc.Len() != 200 {
		t.Errorf("Len = %d, want 200", tc.Len())
	}
}
