package tcam

import (
	"fmt"
	"math/rand"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

func populated(b *testing.B, n int) *TCAM {
	b.Helper()
	tc := New(n + 1)
	for i := 0; i < n; i++ {
		r := mkRule(object.ID(i%8), object.ID(i%16), object.ID(i%32), uint16(i), 10)
		if err := tc.Install(r); err != nil {
			b.Fatal(err)
		}
	}
	return tc
}

// BenchmarkInstall measures rule installation — the indexed duplicate
// check plus the binary-search insert into match order.
func BenchmarkInstall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tc := New(1024)
		b.StartTimer()
		for p := 0; p < 512; p++ {
			r := mkRule(1, 2, 3, uint16(p), p%4*10)
			if err := tc.Install(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassify measures first-match lookup in a half-full table.
func BenchmarkClassify(b *testing.B) {
	tc := populated(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Classify(object.ID(i%8), object.ID(i%16), object.ID(i%32), rule.ProtoTCP, uint16(i%2048))
	}
}

// BenchmarkClassifyBatch compares per-packet classification against the
// rule-major batched pass at several table densities. The batch holds
// one packet per installed rule (the probe workload shape: one probe
// per filter entry) plus a tail of no-match packets that force full
// table scans either way.
func BenchmarkClassifyBatch(b *testing.B) {
	for _, size := range []int{256, 1024, 4096} {
		tc := populated(b, size)
		pkts := make([]Packet, 0, size+size/8)
		for i := 0; i < size; i++ {
			pkts = append(pkts, Packet{
				VRF: object.ID(i % 8), Src: object.ID(i % 16), Dst: object.ID(i % 32),
				Proto: rule.ProtoTCP, Port: uint16(i),
			})
		}
		for i := 0; i < size/8; i++ {
			pkts = append(pkts, Packet{VRF: 999, Src: 999, Dst: 999, Proto: rule.ProtoTCP, Port: 1})
		}
		b.Run(fmt.Sprintf("perpacket-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					tc.Classify(p.VRF, p.Src, p.Dst, p.Proto, p.Port)
				}
			}
		})
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := tc.ClassifyBatch(pkts); len(out) != len(pkts) {
					b.Fatal("bad batch")
				}
			}
		})
	}
}

// BenchmarkSnapshot measures full-table collection (the T-type dump the
// checker consumes).
func BenchmarkSnapshot(b *testing.B) {
	tc := populated(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rules := tc.Rules(); len(rules) != 2048 {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkCorrupt measures fault injection.
func BenchmarkCorrupt(b *testing.B) {
	tc := populated(b, 2048)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Corrupt(8, CorruptVRF, rng)
	}
}
