package tcam

import (
	"math/rand"
	"testing"

	"scout/internal/object"
	"scout/internal/rule"
)

func populated(b *testing.B, n int) *TCAM {
	b.Helper()
	tc := New(n + 1)
	for i := 0; i < n; i++ {
		r := mkRule(object.ID(i%8), object.ID(i%16), object.ID(i%32), uint16(i), 10)
		if err := tc.Install(r); err != nil {
			b.Fatal(err)
		}
	}
	return tc
}

// BenchmarkInstall measures rule installation including priority resort.
func BenchmarkInstall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tc := New(1024)
		b.StartTimer()
		for p := 0; p < 512; p++ {
			r := mkRule(1, 2, 3, uint16(p), p%4*10)
			if err := tc.Install(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassify measures first-match lookup in a half-full table.
func BenchmarkClassify(b *testing.B) {
	tc := populated(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Classify(object.ID(i%8), object.ID(i%16), object.ID(i%32), rule.ProtoTCP, uint16(i%2048))
	}
}

// BenchmarkSnapshot measures full-table collection (the T-type dump the
// checker consumes).
func BenchmarkSnapshot(b *testing.B) {
	tc := populated(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rules := tc.Rules(); len(rules) != 2048 {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkCorrupt measures fault injection.
func BenchmarkCorrupt(b *testing.B) {
	tc := populated(b, 2048)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Corrupt(8, CorruptVRF, rng)
	}
}
