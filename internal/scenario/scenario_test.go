package scenario

import (
	"strings"
	"testing"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/topo"
)

func threeTierFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	p := policy.New("three-tier")
	p.AddVRF(policy.VRF{ID: 101})
	p.AddEPG(policy.EPG{ID: 1, VRF: 101})
	p.AddEPG(policy.EPG{ID: 2, VRF: 101})
	p.AddEPG(policy.EPG{ID: 3, VRF: 101})
	p.AddEndpoint(policy.Endpoint{ID: 11, EPG: 1, Switch: 1})
	p.AddEndpoint(policy.Endpoint{ID: 12, EPG: 2, Switch: 2})
	p.AddEndpoint(policy.Endpoint{ID: 13, EPG: 3, Switch: 3})
	p.AddFilter(policy.Filter{ID: 80, Entries: []policy.FilterEntry{policy.PortEntry(rule.ProtoTCP, 80)}})
	p.AddContract(policy.Contract{ID: 201, Filters: []object.ID{80}})
	p.AddContract(policy.Contract{ID: 202, Filters: []object.ID{80}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	f, err := fabric.New(p, topo.FromPolicy(p), fabric.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const unresponsiveJSON = `{
  "name": "unresponsive switch during filter push",
  "steps": [
    {"op": "deploy"},
    {"op": "disconnect", "switch": 2},
    {"op": "add-filter", "filter": {"id": 443, "name": "https", "proto": 6, "portLo": 443, "portHi": 443}},
    {"op": "attach-filter", "contract": 202, "filterId": 443}
  ]
}`

func TestParseAndRunUnresponsiveSwitch(t *testing.T) {
	sc, err := Parse([]byte(unresponsiveJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name == "" || len(sc.Steps) != 4 {
		t.Fatalf("parsed scenario: %+v", sc)
	}
	f := threeTierFabric(t)
	res, err := sc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 4 {
		t.Errorf("StepsRun = %d", res.StepsRun)
	}
	// Effect check: switch 2 missed the 443 rules, switch 3 has them.
	s2, _ := f.CollectTCAM(2)
	s3, _ := f.CollectTCAM(3)
	has443 := func(rules []rule.Rule) bool {
		for _, r := range rules {
			if r.Match.PortLo == 443 {
				return true
			}
		}
		return false
	}
	if has443(s2) {
		t.Error("disconnected switch must miss the new filter")
	}
	if !has443(s3) {
		t.Error("reachable switch must have the new filter")
	}
}

func TestRunAllOps(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "name": "kitchen sink",
	  "steps": [
	    {"op": "deploy"},
	    {"op": "crash-agent", "switch": 1},
	    {"op": "restart-agent", "switch": 1},
	    {"op": "disconnect", "switch": 3},
	    {"op": "reconnect", "switch": 3},
	    {"op": "bind", "from": 1, "to": 3, "contract": 201},
	    {"op": "inject", "object": "filter:80", "fraction": 0.5},
	    {"op": "corrupt", "switch": 2, "count": 2, "field": "vrf"},
	    {"op": "evict", "switch": 2, "count": 1},
	    {"op": "detach-filter", "contract": 202, "filterId": 80}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := threeTierFabric(t)
	res, err := sc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 10 {
		t.Errorf("StepsRun = %d, want 10", res.StepsRun)
	}
	if res.RulesRemoved == 0 {
		t.Error("inject+evict must remove rules")
	}
	if res.RulesCorrupted == 0 {
		t.Error("corrupt must damage rules")
	}
}

func TestParseRejectsBadScenarios(t *testing.T) {
	bad := []struct {
		name string
		json string
		want string
	}{
		{"malformed", `{`, "decode"},
		{"unknown-op", `{"steps":[{"op":"explode"}]}`, "unknown op"},
		{"inject-no-object", `{"steps":[{"op":"inject"}]}`, "requires object"},
		{"inject-bad-ref", `{"steps":[{"op":"inject","object":"nope:1"}]}`, "unknown object kind"},
		{"inject-bad-fraction", `{"steps":[{"op":"inject","object":"filter:1","fraction":2}]}`, "out of [0,1]"},
		{"filter-missing", `{"steps":[{"op":"add-filter"}]}`, "requires filter"},
		{"filter-inverted", `{"steps":[{"op":"add-filter","filter":{"id":1,"portLo":9,"portHi":1}}]}`, "inverted"},
		{"attach-incomplete", `{"steps":[{"op":"attach-filter","contract":1}]}`, "requires contract and filterId"},
		{"corrupt-bad-field", `{"steps":[{"op":"corrupt","field":"checksum"}]}`, "unknown corruption field"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.json))
			if err == nil {
				t.Fatal("Parse should fail")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q should contain %q", err, tt.want)
			}
		})
	}
}

func TestRunStopsAtFirstFailure(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "name": "fails mid-way",
	  "steps": [
	    {"op": "deploy"},
	    {"op": "disconnect", "switch": 99},
	    {"op": "evict", "switch": 1}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := threeTierFabric(t)
	res, err := sc.Run(f)
	if err == nil {
		t.Fatal("run must fail on unknown switch")
	}
	if res.StepsRun != 1 {
		t.Errorf("StepsRun = %d, want 1 (stop at failure)", res.StepsRun)
	}
	if !strings.Contains(err.Error(), "step 1") {
		t.Errorf("error should name the failing step: %v", err)
	}
}

func TestInjectDefaultsToFullFault(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "steps": [
	    {"op": "deploy"},
	    {"op": "inject", "object": "filter:80"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := threeTierFabric(t)
	res, err := sc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	// Full fault on filter 80: all 8 rules (2 pairs × 2 dirs × 2 switches)
	// across S1-S3 removed.
	if res.RulesRemoved == 0 {
		t.Fatal("full fault must remove rules")
	}
	for _, sw := range []object.ID{1, 2, 3} {
		rules, _ := f.CollectTCAM(sw)
		for _, r := range rules {
			if r.Match.PortLo == 80 {
				t.Errorf("switch %d still has port-80 rules", sw)
			}
		}
	}
}

func TestCorruptionFieldNames(t *testing.T) {
	for _, field := range []string{"", "vrf", "src", "dst", "port"} {
		sc, err := Parse([]byte(`{"steps":[{"op":"corrupt","switch":1,"field":"` + field + `"}]}`))
		if err != nil {
			t.Fatalf("field %q rejected: %v", field, err)
		}
		f := threeTierFabric(t)
		if err := f.Deploy(); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Run(f); err != nil {
			t.Errorf("field %q run failed: %v", field, err)
		}
	}
}
