// Package scenario executes declarative fault scenarios against a
// deployment fabric. A scenario is a JSON list of steps (deploy, policy
// changes, fault injections) that reproduces an incident deterministically
// — the repro artifact an operator attaches to a trouble ticket, and the
// format cmd/scout replays with -scenario.
//
// Example:
//
//	{
//	  "name": "unresponsive switch during filter push",
//	  "steps": [
//	    {"op": "deploy"},
//	    {"op": "disconnect", "switch": 2},
//	    {"op": "add-filter", "filter": {"id": 443, "proto": 6, "portLo": 443, "portHi": 443}},
//	    {"op": "attach-filter", "contract": 202, "filterId": 443}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/rule"
	"scout/internal/tcam"
)

// FilterSpec describes a filter created by an add-filter step.
type FilterSpec struct {
	ID     object.ID     `json:"id"`
	Name   string        `json:"name,omitempty"`
	Proto  rule.Protocol `json:"proto"`
	PortLo uint16        `json:"portLo"`
	PortHi uint16        `json:"portHi"`
}

// Step is one scenario action. Which fields apply depends on Op.
type Step struct {
	// Op selects the action: deploy, disconnect, reconnect, crash-agent,
	// restart-agent, inject, add-filter, attach-filter, detach-filter,
	// bind, corrupt, evict.
	Op string `json:"op"`

	// Switch targets switch-scoped ops (disconnect, corrupt, evict, …).
	Switch object.ID `json:"switch,omitempty"`

	// Object and Fraction configure inject (object fault) steps. Object
	// uses the "kind:id" syntax of object.ParseRef; Fraction defaults
	// to 1 (full fault).
	Object   string  `json:"object,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`

	// Filter describes the filter an add-filter step creates.
	Filter *FilterSpec `json:"filter,omitempty"`

	// Contract and FilterID name the objects of attach-filter /
	// detach-filter; From/To/Contract those of bind.
	Contract object.ID `json:"contract,omitempty"`
	FilterID object.ID `json:"filterId,omitempty"`
	From     object.ID `json:"from,omitempty"`
	To       object.ID `json:"to,omitempty"`

	// Count and Field configure corrupt/evict steps. Field is one of
	// vrf, src, dst, port (corrupt only).
	Count int    `json:"count,omitempty"`
	Field string `json:"field,omitempty"`
}

// Scenario is a named, ordered list of steps.
type Scenario struct {
	Name  string `json:"name"`
	Steps []Step `json:"steps"`
}

// Parse decodes and validates a JSON scenario.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	for i := range s.Steps {
		if err := s.Steps[i].validate(); err != nil {
			return nil, fmt.Errorf("scenario %q step %d: %w", s.Name, i, err)
		}
	}
	return &s, nil
}

func (st *Step) validate() error {
	switch st.Op {
	case "deploy", "reconnect", "restart-agent", "disconnect", "crash-agent":
	case "inject":
		if st.Object == "" {
			return fmt.Errorf("inject requires object")
		}
		if _, err := object.ParseRef(st.Object); err != nil {
			return err
		}
		if st.Fraction < 0 || st.Fraction > 1 {
			return fmt.Errorf("fraction %v out of [0,1]", st.Fraction)
		}
	case "add-filter":
		if st.Filter == nil {
			return fmt.Errorf("add-filter requires filter")
		}
		if st.Filter.PortLo > st.Filter.PortHi {
			return fmt.Errorf("filter port range inverted")
		}
	case "attach-filter", "detach-filter":
		if st.Contract == 0 || st.FilterID == 0 {
			return fmt.Errorf("%s requires contract and filterId", st.Op)
		}
	case "bind":
		if st.Contract == 0 {
			return fmt.Errorf("bind requires contract")
		}
	case "corrupt":
		if _, err := corruptionField(st.Field); err != nil {
			return err
		}
	case "evict":
	default:
		return fmt.Errorf("unknown op %q", st.Op)
	}
	return nil
}

func corruptionField(name string) (tcam.CorruptionField, error) {
	switch name {
	case "", "vrf":
		return tcam.CorruptVRF, nil
	case "src":
		return tcam.CorruptSrcEPG, nil
	case "dst":
		return tcam.CorruptDstEPG, nil
	case "port":
		return tcam.CorruptPort, nil
	default:
		return 0, fmt.Errorf("unknown corruption field %q", name)
	}
}

// Result summarizes a scenario run.
type Result struct {
	// StepsRun counts executed steps.
	StepsRun int
	// RulesRemoved accumulates TCAM rules removed by inject/evict steps.
	RulesRemoved int
	// RulesCorrupted accumulates entries damaged by corrupt steps.
	RulesCorrupted int
}

// Run executes the scenario against the fabric, stopping at the first
// failing step.
func (s *Scenario) Run(f *fabric.Fabric) (*Result, error) {
	res := &Result{}
	for i, st := range s.Steps {
		if err := runStep(f, st, res); err != nil {
			return res, fmt.Errorf("scenario %q step %d (%s): %w", s.Name, i, st.Op, err)
		}
		res.StepsRun++
	}
	return res, nil
}

func runStep(f *fabric.Fabric, st Step, res *Result) error {
	switch st.Op {
	case "deploy":
		return f.Deploy()
	case "disconnect":
		return f.Disconnect(st.Switch)
	case "reconnect":
		return f.Reconnect(st.Switch)
	case "crash-agent":
		return f.CrashAgent(st.Switch)
	case "restart-agent":
		return f.RestartAgent(st.Switch)
	case "inject":
		ref, err := object.ParseRef(st.Object)
		if err != nil {
			return err
		}
		fraction := st.Fraction
		if fraction == 0 {
			fraction = 1
		}
		n, err := f.InjectObjectFault(ref, fraction)
		res.RulesRemoved += n
		return err
	case "add-filter":
		return f.AddFilter(policy.Filter{
			ID:   st.Filter.ID,
			Name: st.Filter.Name,
			Entries: []policy.FilterEntry{{
				Proto:  st.Filter.Proto,
				PortLo: st.Filter.PortLo,
				PortHi: st.Filter.PortHi,
				Action: rule.Allow,
			}},
		})
	case "attach-filter":
		return f.AddFilterToContract(st.Contract, st.FilterID)
	case "detach-filter":
		return f.RemoveFilterFromContract(st.Contract, st.FilterID)
	case "bind":
		return f.AddBinding(st.From, st.To, st.Contract)
	case "corrupt":
		field, err := corruptionField(st.Field)
		if err != nil {
			return err
		}
		count := st.Count
		if count <= 0 {
			count = 1
		}
		damaged, err := f.CorruptTCAM(st.Switch, count, field)
		res.RulesCorrupted += len(damaged)
		return err
	case "evict":
		count := st.Count
		if count <= 0 {
			count = 1
		}
		evicted, err := f.EvictTCAM(st.Switch, count)
		res.RulesRemoved += len(evicted)
		return err
	default:
		return fmt.Errorf("unknown op %q", st.Op)
	}
}
