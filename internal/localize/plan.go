// Compiled localization plans.
//
// newView rebuilt map-of-maps adjacency from the model on every
// localization call — O(edges) of map churn per invocation, paid again
// for every warm run even though the pristine model never changes. A plan
// compiles that adjacency once into dense CSR arrays indexed by a
// ref-sorted risk ordering:
//
//   - risk → dependent elements (deps/depOff)
//   - risk → base failed elements (failEls/failOff)
//   - element → risks with a per-edge failed flag (adj/adjOff/adjFailed),
//     sorted by plan index so walking an element's failed risks yields
//     refs in sorted order with no allocation
//
// The plan is cached on the model against its mutation revision (the way
// the frozen BDD base is cached against its deployment fingerprint), so
// repeated runs — and every overlay stacked on the model — reuse it
// without recompiling topology. Overlay runs compose the plan with a
// per-run delta enumerated from the overlay's failure marks in O(marks).

package localize

import (
	"sort"

	"scout/internal/object"
	"scout/internal/risk"
)

// plan is the immutable compiled form of a pristine *risk.Model.
type plan struct {
	nElements int
	nRisks    int

	// refs maps plan risk index → object ref, ascending in Ref.Less
	// order; idxByRef is the inverse.
	refs     []object.Ref
	idxByRef map[object.Ref]int32

	// CSR: risk → dependent elements.
	depOff []int32
	deps   []int32
	// CSR: risk → elements whose edge to the risk is base-failed.
	failOff []int32
	failEls []int32
	// CSR: element → risks (plan indices, ascending) with per-edge
	// base-failed flags.
	adjOff    []int32
	adj       []int32
	adjFailed []bool

	// sig is the base failure signature (ascending element IDs);
	// failedRisks are the plan indices with ≥1 base failed edge
	// (ascending index = ascending ref).
	sig         []int32
	failedRisks []int32
}

func (p *plan) deg(i int32) int32     { return p.depOff[i+1] - p.depOff[i] }
func (p *plan) failCnt(i int32) int32 { return p.failOff[i+1] - p.failOff[i] }

// compilePlan builds a plan from the model through its public read
// surface. Called once per model revision; every subsequent run reuses
// the cached result.
func compilePlan(m *risk.Model) *plan {
	refs := m.Risks() // sorted by Ref.Less
	nR := len(refs)
	nE := m.NumElements()
	p := &plan{
		nElements: nE,
		nRisks:    nR,
		refs:      refs,
		idxByRef:  make(map[object.Ref]int32, nR),
		depOff:    make([]int32, nR+1),
		failOff:   make([]int32, nR+1),
		adjOff:    make([]int32, nE+1),
	}
	for i, ref := range refs {
		p.idxByRef[ref] = int32(i)
	}

	// First pass: per-risk element lists and failed sets, plus adjacency
	// counts per element.
	elems := make([][]risk.ElementID, nR)
	failedOf := make([]map[risk.ElementID]struct{}, nR)
	for i, ref := range refs {
		elems[i] = m.ElementsOf(ref)
		fe := m.FailedElementsOf(ref)
		if len(fe) > 0 {
			set := make(map[risk.ElementID]struct{}, len(fe))
			for _, el := range fe {
				set[el] = struct{}{}
			}
			failedOf[i] = set
		}
		for _, el := range elems[i] {
			p.adjOff[el+1]++
		}
	}
	for i := 0; i < nR; i++ {
		p.depOff[i+1] = p.depOff[i] + int32(len(elems[i]))
		nf := 0
		if failedOf[i] != nil {
			nf = len(failedOf[i])
		}
		p.failOff[i+1] = p.failOff[i] + int32(nf)
		if nf > 0 {
			p.failedRisks = append(p.failedRisks, int32(i))
		}
	}
	for el := 0; el < nE; el++ {
		p.adjOff[el+1] += p.adjOff[el]
	}

	// Second pass: fill the CSR bodies. Filling element adjacency in
	// ascending risk-index order leaves each element's row sorted by plan
	// index, i.e. by ref.
	p.deps = make([]int32, p.depOff[nR])
	p.failEls = make([]int32, p.failOff[nR])
	p.adj = make([]int32, p.adjOff[nE])
	p.adjFailed = make([]bool, p.adjOff[nE])
	adjNext := make([]int32, nE)
	copy(adjNext, p.adjOff[:nE])
	for i := 0; i < nR; i++ {
		di := p.depOff[i]
		fi := p.failOff[i]
		for _, el := range elems[i] {
			p.deps[di] = int32(el)
			di++
			k := adjNext[el]
			adjNext[el] = k + 1
			p.adj[k] = int32(i)
			if failedOf[i] != nil {
				if _, f := failedOf[i][el]; f {
					p.adjFailed[k] = true
					p.failEls[fi] = int32(el)
					fi++
				}
			}
		}
		// Keep each risk's failed-element row ascending for deterministic
		// stage-two and coverage walks.
		row := p.failEls[p.failOff[i]:fi]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}

	for _, el := range m.FailureSignature() {
		p.sig = append(p.sig, int32(el))
	}
	return p
}

// planFor resolves the compiled plan for a view: a *Model compiles (or
// reuses) its own plan; an *Overlay reuses its base's plan plus a per-run
// delta. Other View implementations fall back to the reference engine.
func planFor(v risk.View) (*plan, *risk.Overlay, bool) {
	switch m := v.(type) {
	case *risk.Model:
		return modelPlan(m), nil, true
	case *risk.Overlay:
		return modelPlan(m.Base()), m, true
	}
	return nil, nil, false
}

func modelPlan(m *risk.Model) *plan {
	if p, ok := m.CachedPlan().(*plan); ok {
		engineCounters.planReuses.Add(1)
		return p
	}
	p := compilePlan(m)
	m.StorePlan(p)
	engineCounters.planCompiles.Add(1)
	return p
}

// runView is the mutable per-call state: the shared plan, the overlay
// delta (nil maps for pure-model runs), the alive/pending masks, and the
// incrementally-maintained per-risk alive counters.
type runView struct {
	p    *plan
	nAll int32

	// Overlay delta. Risk indices ≥ p.nRisks address extraRefs.
	extraRefs []object.Ref
	extraDeps map[int32][]int32 // risk → overlay-created dependent elements
	marks     map[int32][]int32 // risk → overlay-marked elements
	elCreated map[int32][]int32 // element → risks via overlay-created edges
	elMarked  map[int32][]int32 // element → risks overlay-marked on base edges

	alive        bitset
	pending      bitset
	pendingCount int

	// aliveDeps[i] = |Gi ∩ alive|, aliveFailed[i] = |Oi ∩ alive|,
	// maintained on prune. Because every alive element with a failed edge
	// is still pending, aliveFailed is also |Oi ∩ pending| — the coverage
	// Scout's hit-ratio-1 stage maximizes.
	aliveDeps   []int32
	aliveFailed []int32

	// failedRisks: indices with ≥1 failed edge (base or overlay), sorted
	// by ref.
	failedRisks []int32
}

func (rv *runView) ref(i int32) object.Ref {
	if int(i) < rv.p.nRisks {
		return rv.p.refs[i]
	}
	return rv.extraRefs[int(i)-rv.p.nRisks]
}

func (rv *runView) refLess(a, b int32) bool { return rv.ref(a).Less(rv.ref(b)) }

// forEachDep invokes fn for every dependent element of risk i.
func (rv *runView) forEachDep(i int32, fn func(el int32)) {
	if int(i) < rv.p.nRisks {
		for _, el := range rv.p.deps[rv.p.depOff[i]:rv.p.depOff[i+1]] {
			fn(el)
		}
	}
	for _, el := range rv.extraDeps[i] {
		fn(el)
	}
}

// forEachFailed invokes fn for every element whose edge to risk i is
// failed (base marks, then overlay marks; the two sets are disjoint).
func (rv *runView) forEachFailed(i int32, fn func(el int32)) {
	if int(i) < rv.p.nRisks {
		for _, el := range rv.p.failEls[rv.p.failOff[i]:rv.p.failOff[i+1]] {
			fn(el)
		}
	}
	for _, el := range rv.marks[i] {
		fn(el)
	}
}

// coverage returns |Oi ∩ pending| for risk i.
func (rv *runView) coverage(i int32) int32 {
	cov := int32(0)
	rv.forEachFailed(i, func(el int32) {
		if rv.pending.test(el) {
			cov++
		}
	})
	return cov
}

// newRunView composes the plan with the overlay delta (o may be nil) and
// initializes the masks and counters.
func newRunView(p *plan, o *risk.Overlay) *runView {
	rv := &runView{p: p, nAll: int32(p.nRisks)}
	if o != nil {
		rv.extraRefs = o.ExtraRiskRefs()
		rv.nAll += int32(len(rv.extraRefs))
		extraIdx := make(map[object.Ref]int32, len(rv.extraRefs))
		for i, ref := range rv.extraRefs {
			extraIdx[ref] = int32(p.nRisks + i)
		}
		lookup := func(ref object.Ref) int32 {
			if i, ok := p.idxByRef[ref]; ok {
				return i
			}
			return extraIdx[ref]
		}
		created := make(map[int64]struct{})
		o.ForEachOverlayEdge(func(el risk.ElementID, ref object.Ref) {
			i := lookup(ref)
			if rv.extraDeps == nil {
				rv.extraDeps = make(map[int32][]int32)
				rv.elCreated = make(map[int32][]int32)
			}
			rv.extraDeps[i] = append(rv.extraDeps[i], int32(el))
			rv.elCreated[int32(el)] = append(rv.elCreated[int32(el)], i)
			created[int64(el)<<32|int64(i)] = struct{}{}
		})
		o.ForEachOverlayMark(func(el risk.ElementID, ref object.Ref) {
			i := lookup(ref)
			if rv.marks == nil {
				rv.marks = make(map[int32][]int32)
				rv.elMarked = make(map[int32][]int32)
			}
			rv.marks[i] = append(rv.marks[i], int32(el))
			if _, isNew := created[int64(el)<<32|int64(i)]; !isNew {
				rv.elMarked[int32(el)] = append(rv.elMarked[int32(el)], i)
			}
		})
	}

	rv.alive = newBitset(p.nElements)
	rv.alive.setFirst(p.nElements)
	rv.pending = newBitset(p.nElements)
	for _, el := range p.sig {
		rv.pending.set(el)
	}
	for i := range rv.marks {
		for _, el := range rv.marks[i] {
			rv.pending.set(el)
		}
	}
	rv.pendingCount = rv.pending.count()

	rv.aliveDeps = make([]int32, rv.nAll)
	rv.aliveFailed = make([]int32, rv.nAll)
	for i := int32(0); int(i) < p.nRisks; i++ {
		rv.aliveDeps[i] = p.deg(i)
		rv.aliveFailed[i] = p.failCnt(i)
	}
	for i, els := range rv.extraDeps {
		rv.aliveDeps[i] += int32(len(els))
	}
	for i, els := range rv.marks {
		rv.aliveFailed[i] += int32(len(els))
	}

	if len(rv.marks) == 0 {
		rv.failedRisks = p.failedRisks
	} else {
		seen := make(map[int32]struct{}, len(p.failedRisks)+len(rv.marks))
		merged := make([]int32, 0, len(p.failedRisks)+len(rv.marks))
		for _, i := range p.failedRisks {
			seen[i] = struct{}{}
			merged = append(merged, i)
		}
		for i := range rv.marks {
			if _, ok := seen[i]; !ok {
				merged = append(merged, i)
			}
		}
		sort.Slice(merged, func(a, b int) bool { return rv.refLess(merged[a], merged[b]) })
		rv.failedRisks = merged
	}
	return rv
}

// prune removes element el from the working model, decrementing the
// alive counters of every risk it depends on. Returns false if el was
// already pruned.
func (rv *runView) prune(el int32) bool {
	if !rv.alive.test(el) {
		return false
	}
	rv.alive.clear(el)
	if rv.pending.test(el) {
		rv.pending.clear(el)
		rv.pendingCount--
	}
	p := rv.p
	for k := p.adjOff[el]; k < p.adjOff[el+1]; k++ {
		r := p.adj[k]
		rv.aliveDeps[r]--
		if p.adjFailed[k] {
			rv.aliveFailed[r]--
		}
	}
	for _, r := range rv.elCreated[el] {
		rv.aliveDeps[r]--
		rv.aliveFailed[r]-- // created edges are always marked
	}
	for _, r := range rv.elMarked[el] {
		rv.aliveFailed[r]--
	}
	return true
}

// failedRefsOf returns the sorted refs of risks with a failed edge to el
// — the plan-side equivalent of View.FailedRisksOf.
func (rv *runView) failedRefsOf(el int32) []object.Ref {
	var out []object.Ref
	p := rv.p
	for k := p.adjOff[el]; k < p.adjOff[el+1]; k++ {
		if p.adjFailed[k] {
			out = append(out, p.refs[p.adj[k]])
		}
	}
	extra := len(rv.elCreated[el]) + len(rv.elMarked[el])
	if extra == 0 {
		return out // base rows are already ref-sorted
	}
	for _, r := range rv.elCreated[el] {
		out = append(out, rv.ref(r))
	}
	for _, r := range rv.elMarked[el] {
		out = append(out, rv.ref(r))
	}
	object.SortRefs(out)
	return out
}
