// Compiled-plan implementations of SCOUT, SCORE, and MaxCoverage. Each
// is pinned Result-identical to its reference counterpart in ref.go by
// the differential tests and the `scout-bench -experiment localizer` CI
// gate; the reference engine remains the readable specification.

package localize

import (
	"time"

	"scout/internal/object"
	"scout/internal/risk"
)

// planScout is Scout on a compiled plan. Stage one replaces the
// per-round candidate rescan with the incrementally-maintained alive
// counters: a risk is a candidate iff aliveFailed > 0 (some pending
// observation has a failed edge to it), has hit ratio 1 iff
// aliveFailed == aliveDeps, and its coverage is aliveFailed itself.
func planScout(p *plan, o *risk.Overlay, oracle ChangeOracle) *Result {
	start := time.Now()
	rv := newRunView(p, o)
	res := &Result{}
	hypothesis := make(object.Set)
	totalObs := rv.pendingCount

	var maxSet []int32
	for rv.pendingCount > 0 {
		res.Iterations++
		// pickCandidates (Algorithm 2) over the ref-sorted failed risks.
		maxCov := int32(0)
		maxSet = maxSet[:0]
		for _, i := range rv.failedRisks {
			cov := rv.aliveFailed[i]
			if cov == 0 || cov != rv.aliveDeps[i] {
				continue // not a candidate, or hit ratio < 1
			}
			switch {
			case cov > maxCov:
				maxCov = cov
				maxSet = append(maxSet[:0], i)
			case cov == maxCov:
				maxSet = append(maxSet, i)
			}
		}
		if len(maxSet) == 0 {
			break
		}
		step := Step{Picked: make([]object.Ref, 0, len(maxSet))}
		pendingBefore := rv.pendingCount
		for _, i := range maxSet {
			step.Picked = append(step.Picked, rv.ref(i))
			rv.forEachDep(i, func(el int32) {
				if rv.prune(el) {
					step.Pruned++
				}
			})
			hypothesis.Add(rv.ref(i))
		}
		step.Coverage = pendingBefore - rv.pendingCount
		res.Steps = append(res.Steps, step)
	}
	engineCounters.stage1Nanos.Add(int64(time.Since(start)))

	// Stage two: explain leftovers via the change log, walking pending in
	// ascending element order so the oracle call sequence is
	// deterministic.
	if rv.pendingCount > 0 && oracle != nil {
		start = time.Now()
		rv.pending.forEach(func(el int32) {
			picked := false
			for _, ref := range rv.failedRefsOf(el) {
				if oracle.RecentlyChanged(ref) {
					if !hypothesis.Has(ref) {
						hypothesis.Add(ref)
						res.ChangeLogPicks = append(res.ChangeLogPicks, ref)
					}
					picked = true
				}
			}
			if picked {
				rv.pending.clear(el)
				rv.pendingCount--
			}
		})
		object.SortRefs(res.ChangeLogPicks)
		engineCounters.stage2Nanos.Add(int64(time.Since(start)))
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = pendingElements(rv)
	res.Explained = totalObs - rv.pendingCount
	return res
}

// pendingElements lists the remaining pending observations, matching the
// reference engine's sortedElements shape (non-nil even when empty).
func pendingElements(rv *runView) []risk.ElementID {
	out := make([]risk.ElementID, 0, rv.pendingCount)
	rv.pending.forEach(func(el int32) { out = append(out, risk.ElementID(el)) })
	return out
}

// planGreedy is the shared lazy-greedy pick loop of Score and
// MaxCoverage: greedily pick the eligible risk with maximum residual
// coverage (lowest ref on ties) until nothing new is covered. eligible
// must be sorted by ref.
func planGreedy(rv *runView, eligible []int32, res *Result, hypothesis object.Set) {
	start := time.Now()
	h := make(lazyHeap, 0, len(eligible))
	for rank, i := range eligible {
		// pending starts as the full failure signature, so the initial
		// residual coverage is the risk's total failed-edge count.
		h.push(lazyEntry{cov: rv.aliveFailed[i], rank: int32(rank), round: 0, idx: i})
	}
	round := int32(0)
	for rv.pendingCount > 0 && len(h) > 0 {
		e := h.pop()
		if e.round != round {
			e.cov = rv.coverage(e.idx)
			e.round = round
			engineCounters.lazyEvals.Add(1)
			h.push(e)
			continue
		}
		if e.cov == 0 {
			break
		}
		res.Iterations++
		round++
		engineCounters.lazyPicks.Add(1)
		engineCounters.fullScanEvals.Add(int64(len(eligible)))
		hypothesis.Add(rv.ref(e.idx))
		pendingBefore := rv.pendingCount
		rv.forEachFailed(e.idx, func(el int32) {
			if rv.pending.test(el) {
				rv.pending.clear(el)
				rv.pendingCount--
			}
		})
		res.Steps = append(res.Steps, Step{
			Picked:   []object.Ref{rv.ref(e.idx)},
			Coverage: pendingBefore - rv.pendingCount,
		})
	}
	engineCounters.greedy.Add(int64(time.Since(start)))
}

// planScore is Score on a compiled plan.
func planScore(p *plan, o *risk.Overlay, threshold float64) *Result {
	rv := newRunView(p, o)
	res := &Result{}
	hypothesis := make(object.Set)
	totalObs := rv.pendingCount

	// Eligible risks: hit ratio >= threshold on the full model. The
	// freshly-initialized alive counters are exactly the full-model
	// dependent/failed counts.
	var eligible []int32
	for i := int32(0); i < rv.nAll; i++ {
		deps, failed := rv.aliveDeps[i], rv.aliveFailed[i]
		if deps == 0 || failed == 0 {
			continue
		}
		if float64(failed)/float64(deps) >= threshold {
			eligible = append(eligible, i)
		}
	}
	if len(rv.extraRefs) > 0 {
		sortByRef(rv, eligible)
	}

	planGreedy(rv, eligible, res, hypothesis)

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = pendingElements(rv)
	res.Explained = totalObs - rv.pendingCount
	return res
}

// planMaxCoverage is MaxCoverage on a compiled plan: every risk with a
// failed edge is eligible (risks without one can never cover anything, so
// skipping them cannot change the picks).
func planMaxCoverage(p *plan, o *risk.Overlay) *Result {
	rv := newRunView(p, o)
	res := &Result{}
	hypothesis := make(object.Set)
	totalObs := rv.pendingCount

	planGreedy(rv, rv.failedRisks, res, hypothesis)

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = pendingElements(rv)
	res.Explained = totalObs - rv.pendingCount
	return res
}

// sortByRef sorts risk indices by their object refs (needed only when
// overlay-created risks interleave with the base ordering).
func sortByRef(rv *runView, idxs []int32) {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && rv.refLess(idxs[j], idxs[j-1]); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}
