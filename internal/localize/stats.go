// Process-wide engine counters. The compiled-plan engine is invoked from
// concurrent per-switch workers, so the counters are atomics; callers
// that want per-run numbers (the analyzer, sessions, benchmarks) snapshot
// before and after and diff. Under the normal serialized run loop the
// delta attributes cleanly to the run; overlapping analyses in one
// process share the totals, which is fine for diagnostics.

package localize

import (
	"sync/atomic"
	"time"
)

// EngineStats is a snapshot (or delta) of the compiled-plan engine's
// cumulative counters.
type EngineStats struct {
	// PlanCompiles counts CSR plan compilations from a pristine model;
	// PlanReuses counts calls served by a model's cached plan (warm and
	// overlay runs).
	PlanCompiles int64
	PlanReuses   int64
	// LazyEvals counts coverage re-evaluations performed by the
	// lazy-greedy heap in Score/MaxCoverage; FullScanEvals is the number
	// of coverage evaluations a per-round full rescan (the reference
	// engine's strategy) would have performed for the same picks.
	LazyEvals     int64
	FullScanEvals int64
	// LazyPicks counts greedy picks served from the heap.
	LazyPicks int64
	// Stage1 and Stage2 accumulate wall time in Scout's greedy-prune and
	// change-log stages; Greedy accumulates Score/MaxCoverage pick-loop
	// time.
	Stage1 time.Duration
	Stage2 time.Duration
	Greedy time.Duration
}

var engineCounters struct {
	planCompiles, planReuses         atomic.Int64
	lazyEvals, fullScanEvals         atomic.Int64
	lazyPicks                        atomic.Int64
	stage1Nanos, stage2Nanos, greedy atomic.Int64
}

// StatsSnapshot returns the engine's cumulative counters.
func StatsSnapshot() EngineStats {
	return EngineStats{
		PlanCompiles:  engineCounters.planCompiles.Load(),
		PlanReuses:    engineCounters.planReuses.Load(),
		LazyEvals:     engineCounters.lazyEvals.Load(),
		FullScanEvals: engineCounters.fullScanEvals.Load(),
		LazyPicks:     engineCounters.lazyPicks.Load(),
		Stage1:        time.Duration(engineCounters.stage1Nanos.Load()),
		Stage2:        time.Duration(engineCounters.stage2Nanos.Load()),
		Greedy:        time.Duration(engineCounters.greedy.Load()),
	}
}

// Delta returns s - prev, field-wise.
func (s EngineStats) Delta(prev EngineStats) EngineStats {
	return EngineStats{
		PlanCompiles:  s.PlanCompiles - prev.PlanCompiles,
		PlanReuses:    s.PlanReuses - prev.PlanReuses,
		LazyEvals:     s.LazyEvals - prev.LazyEvals,
		FullScanEvals: s.FullScanEvals - prev.FullScanEvals,
		LazyPicks:     s.LazyPicks - prev.LazyPicks,
		Stage1:        s.Stage1 - prev.Stage1,
		Stage2:        s.Stage2 - prev.Stage2,
		Greedy:        s.Greedy - prev.Greedy,
	}
}
