// MaxCoverage: the unconstrained greedy set-cover baseline the paper's
// §IV-A sketches ("finding a minimal set of policy objects that covers
// risk models ... known to be NP-complete"). Unlike SCORE it applies no
// hit-ratio filter at all: any risk with failed edges is eligible, picked
// purely by residual coverage. It maximizes recall on the failure
// signature but implicates heavily-shared objects (VRFs, popular EPGs)
// whose hit ratios are tiny, so its precision collapses — the motivation
// for SCOUT's hit-ratio stage.

package localize

import (
	"scout/internal/object"
	"scout/internal/risk"
)

// MaxCoverage runs plain greedy set cover over the failed edges of the
// annotated model: repeatedly pick the risk explaining the most
// still-unexplained observations until everything is explained.
func MaxCoverage(m risk.View) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)
	risks := m.Risks()

	for len(pending) > 0 {
		var best object.Ref
		bestCov := 0
		for _, ref := range risks {
			if hypothesis.Has(ref) {
				continue
			}
			cov := 0
			for el := range v.failed[ref] {
				if _, p := pending[el]; p {
					cov++
				}
			}
			if cov > bestCov || (cov == bestCov && cov > 0 && ref.Less(best)) {
				best = ref
				bestCov = cov
			}
		}
		if bestCov == 0 {
			break
		}
		res.Iterations++
		hypothesis.Add(best)
		pendingBefore := len(pending)
		for el := range v.failed[best] {
			delete(pending, el)
		}
		res.Steps = append(res.Steps, Step{
			Picked:   []object.Ref{best},
			Coverage: pendingBefore - len(pending),
		})
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}
