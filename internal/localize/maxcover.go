// MaxCoverage: the unconstrained greedy set-cover baseline the paper's
// §IV-A sketches ("finding a minimal set of policy objects that covers
// risk models ... known to be NP-complete"). Unlike SCORE it applies no
// hit-ratio filter at all: any risk with failed edges is eligible, picked
// purely by residual coverage. It maximizes recall on the failure
// signature but implicates heavily-shared objects (VRFs, popular EPGs)
// whose hit ratios are tiny, so its precision collapses — the motivation
// for SCOUT's hit-ratio stage.

package localize

import (
	"scout/internal/risk"
)

// MaxCoverage runs plain greedy set cover over the failed edges of the
// annotated model: repeatedly pick the risk explaining the most
// still-unexplained observations until everything is explained. Models
// and overlays run on the compiled-plan engine; other View
// implementations fall back to the reference engine.
func MaxCoverage(m risk.View) *Result {
	if p, o, ok := planFor(m); ok {
		return planMaxCoverage(p, o)
	}
	return RefMaxCoverage(m)
}
