package localize

// Property-style regression for the overlay/clone interchangeability
// contract: every localization algorithm must return identical Results
// (and Gamma) whether the fault scenario was applied to a deep clone of
// the pristine controller model or to a copy-on-write overlay over the
// same pristine core. The scenarios come from internal/workload's fault
// generator — full and partial object faults with change-log noise, the
// paper's §VI-A regime.

import (
	"math/rand"
	"reflect"
	"testing"

	"scout/internal/compile"
	"scout/internal/object"
	"scout/internal/risk"
	"scout/internal/workload"
)

func interchangeEnv(t *testing.T) (*compile.Deployment, *workload.DepIndex) {
	t.Helper()
	pol, tp, err := workload.Generate(workload.SmallFabricSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compile.Compile(pol, tp)
	if err != nil {
		t.Fatal(err)
	}
	return d, workload.BuildIndex(d)
}

func TestOverlayCloneInterchangeable(t *testing.T) {
	d, idx := interchangeEnv(t)
	pristine := risk.BuildControllerModel(d, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	candidates := idx.Objects()

	runs := 0
	for seed := int64(1); seed <= 5; seed++ {
		for faults := 1; faults <= 6; faults++ {
			// Two rng streams with identical state: fault selection inside
			// ApplyToControllerModel consumes randomness, so each
			// application needs its own stream to stay aligned.
			scRng := rand.New(rand.NewSource(seed))
			sc, err := workload.NewScenario(scRng, candidates, faults, 5)
			if err != nil {
				t.Fatal(err)
			}
			cloneRng := rand.New(rand.NewSource(seed * 1000))
			overlayRng := rand.New(rand.NewSource(seed * 1000))

			clone := pristine.Clone()
			workload.ApplyToControllerModel(clone, d, idx, sc, cloneRng)
			ov := risk.NewOverlay(pristine)
			workload.ApplyToControllerModel(ov, d, idx, sc, overlayRng)

			if clone.NumFailedEdges() == 0 {
				continue // scenario hit only undeployed objects
			}
			runs++

			oracle := SetOracle(sc.Changed)
			cScout, oScout := Scout(clone, oracle), Scout(ov, oracle)
			if !reflect.DeepEqual(cScout, oScout) {
				t.Fatalf("seed=%d faults=%d: Scout differs\nclone:   %+v\noverlay: %+v",
					seed, faults, cScout, oScout)
			}
			if cg, og := cScout.Gamma(clone), oScout.Gamma(ov); cg != og {
				t.Fatalf("seed=%d faults=%d: Gamma differs: %v vs %v", seed, faults, cg, og)
			}
			for _, threshold := range []float64{0.6, 1.0} {
				if c, o := Score(clone, threshold), Score(ov, threshold); !reflect.DeepEqual(c, o) {
					t.Fatalf("seed=%d faults=%d: Score(%.1f) differs", seed, faults, threshold)
				}
			}
			if c, o := MaxCoverage(clone), MaxCoverage(ov); !reflect.DeepEqual(c, o) {
				t.Fatalf("seed=%d faults=%d: MaxCoverage differs", seed, faults)
			}
		}
	}
	if runs == 0 {
		t.Fatal("no scenario produced failures; property was never exercised")
	}
	if pristine.NumFailedEdges() != 0 {
		t.Fatal("overlay runs mutated the pristine core")
	}
}

// TestOverlayCloneInterchangeableSwitchModel covers the switch-model
// variant of the same property.
func TestOverlayCloneInterchangeableSwitchModel(t *testing.T) {
	d, idx := interchangeEnv(t)
	// Pick the busiest switch so faults actually land.
	var sw object.ID
	best := -1
	for s := range d.BySwitch {
		if n := len(d.BySwitch[s]); n > best {
			sw, best = s, n
		}
	}
	pristine := risk.BuildSwitchModel(d, sw)
	candidates := idx.ObjectsOnSwitch(sw)

	runs := 0
	for seed := int64(1); seed <= 5; seed++ {
		scRng := rand.New(rand.NewSource(seed))
		sc, err := workload.NewScenario(scRng, candidates, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		cloneRng := rand.New(rand.NewSource(seed))
		overlayRng := rand.New(rand.NewSource(seed))

		clone := pristine.Clone()
		workload.ApplyToSwitchModel(clone, d, idx, sw, sc, cloneRng)
		ov := risk.NewOverlay(pristine)
		workload.ApplyToSwitchModel(ov, d, idx, sw, sc, overlayRng)
		if clone.NumFailedEdges() == 0 {
			continue
		}
		runs++
		if c, o := Scout(clone, NoChanges{}), Scout(ov, NoChanges{}); !reflect.DeepEqual(c, o) {
			t.Fatalf("seed=%d: switch-model Scout differs", seed)
		}
	}
	if runs == 0 {
		t.Fatal("no switch scenario produced failures")
	}
}
