package localize

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/risk"
)

// figure5Model reproduces the paper's Figure 5 switch risk model exactly:
//
//	pairs:  E1-E2  E2-E3  E3-E4  E4-E5  E5-E6  E6-E7
//	risks:  C1     F1     F2     C2     C3     F3
//
// Edges (fail marked *):
//
//	E1-E2: C1, F1
//	E2-E3: F1*, F2*          (F1 h=1? no — see below)
//	E3-E4: F2*
//	E4-E5: F2*, C2*
//	E5-E6: F2*, C3*
//	E6-E7: C3*, F3*
//
// Ratios from the figure: C1 h=0; F1 h=1 c=0.4? The figure shows F1 h=0,
// F2 h=1 c=0.8, C2 h=1 c=0.4(?), C3 h=0.3, F3 h=0.3. We encode the
// essential structure: F2 has hit 1 and the highest coverage; after
// pruning F2's dependents, the leftover observation E6-E7 has only
// partial-hit risks and is explained by the change log (F3 was recently
// modified).
func figure5Model(t testing.TB) (*risk.Model, map[string]object.Ref) {
	t.Helper()
	m := risk.NewModel("figure5")
	refs := map[string]object.Ref{
		"C1": object.Contract(1),
		"F1": object.Filter(1),
		"F2": object.Filter(2),
		"C2": object.Contract(2),
		"C3": object.Contract(3),
		"F3": object.Filter(3),
	}
	edges := map[string][]string{
		"E1-E2": {"C1", "F1"},
		"E2-E3": {"F1", "F2"},
		"E3-E4": {"F2"},
		"E4-E5": {"F2", "C2"},
		"E5-E6": {"F2", "C3"},
		"E6-E7": {"C3", "F3"},
		// Healthy pair keeping C3/F3 below hit ratio 1 even after F2's
		// dependents are pruned — the partial-fault regime stage 2 exists
		// for.
		"E7-E8": {"C3", "F3"},
	}
	failed := map[string][]string{
		"E2-E3": {"F2"},
		"E3-E4": {"F2"},
		"E4-E5": {"F2", "C2"},
		"E5-E6": {"F2", "C3"},
		"E6-E7": {"C3", "F3"},
	}
	for el, risks := range edges {
		id := m.EnsureElement(el)
		for _, r := range risks {
			m.AddEdge(id, refs[r])
		}
	}
	for el, risks := range failed {
		id, _ := m.ElementByLabel(el)
		for _, r := range risks {
			m.MarkFailed(id, refs[r])
		}
	}
	return m, refs
}

func TestScoutFigure5(t *testing.T) {
	m, refs := figure5Model(t)
	// F3 was recently modified (the paper's assumption in the example).
	oracle := SetOracle(object.NewSet(refs["F3"]))
	res := Scout(m, oracle)

	want := []object.Ref{refs["C3"], refs["F3"]}
	object.SortRefs(want)
	// Stage 1 picks F2 (hit 1, max coverage). Stage 2 inspects E6-E7's
	// failed risks {C3, F3}; only F3 is recently changed.
	wantHyp := []object.Ref{refs["F2"], refs["F3"]}
	object.SortRefs(wantHyp)
	if !reflect.DeepEqual(res.Hypothesis, wantHyp) {
		t.Errorf("Hypothesis = %v, want %v (F2 from stage 1, F3 from change log)", res.Hypothesis, wantHyp)
	}
	if len(res.ChangeLogPicks) != 1 || res.ChangeLogPicks[0] != refs["F3"] {
		t.Errorf("ChangeLogPicks = %v, want [F3]", res.ChangeLogPicks)
	}
	if len(res.Unexplained) != 0 {
		t.Errorf("Unexplained = %v, want none", res.Unexplained)
	}
	if res.Explained != 5 {
		t.Errorf("Explained = %d, want 5", res.Explained)
	}
}

func TestScoutWithoutChangeLogLeavesTailUnexplained(t *testing.T) {
	m, refs := figure5Model(t)
	res := Scout(m, NoChanges{})
	if !reflect.DeepEqual(res.Hypothesis, []object.Ref{refs["F2"]}) {
		t.Errorf("Hypothesis = %v, want [F2]", res.Hypothesis)
	}
	if len(res.Unexplained) != 1 {
		t.Errorf("Unexplained = %v, want the E6-E7 observation", res.Unexplained)
	}
}

func TestScoutNilOracle(t *testing.T) {
	m, refs := figure5Model(t)
	res := Scout(m, nil)
	if !reflect.DeepEqual(res.Hypothesis, []object.Ref{refs["F2"]}) {
		t.Errorf("nil oracle must behave like NoChanges: %v", res.Hypothesis)
	}
}

func TestScoutCleanModel(t *testing.T) {
	m, _ := figure5Model(t)
	m.ResetFailures()
	res := Scout(m, NoChanges{})
	if len(res.Hypothesis) != 0 || res.Explained != 0 || res.Iterations != 0 {
		t.Errorf("clean model must produce empty result: %+v", res)
	}
}

func TestScoreFigure5(t *testing.T) {
	m, refs := figure5Model(t)

	// SCORE-1: only hit-ratio-1 risks eligible → finds F2 and C2 (C2's
	// only dependent failed), misses the partial-hit C3/F3 tail.
	res := Score(m, 1.0)
	hyp := object.NewSet(res.Hypothesis...)
	if !hyp.Has(refs["F2"]) {
		t.Errorf("SCORE-1 must find F2: %v", res.Hypothesis)
	}
	if hyp.Has(refs["F3"]) || hyp.Has(refs["C3"]) {
		t.Errorf("SCORE-1 must not find partial-hit risks: %v", res.Hypothesis)
	}
	if len(res.Unexplained) == 0 {
		t.Error("SCORE-1 must leave the E6-E7 observation unexplained")
	}

	// SCORE-0.5: C3 (hit 2/3) becomes eligible and explains E6-E7.
	res = Score(m, 0.5)
	hyp = object.NewSet(res.Hypothesis...)
	if !hyp.Has(refs["C3"]) && !hyp.Has(refs["F3"]) {
		t.Errorf("SCORE-0.5 should cover the tail observation: %v", res.Hypothesis)
	}
}

func TestScoutPicksAllTiedCandidates(t *testing.T) {
	// Two risks with identical dependent sets, both fully failed: both
	// "explain the problem best" (the paper's Figure 4a discussion) and
	// both enter the hypothesis in the same iteration.
	m := risk.NewModel("tie")
	e := m.EnsureElement("1-2")
	a, b := object.EPG(1), object.Contract(9)
	m.AddEdge(e, a)
	m.AddEdge(e, b)
	m.MarkFailed(e, a)
	m.MarkFailed(e, b)
	res := Scout(m, NoChanges{})
	if len(res.Hypothesis) != 2 {
		t.Errorf("tied candidates must both be picked: %v", res.Hypothesis)
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}

func TestScoutPruningUnlocksNextIteration(t *testing.T) {
	// Two independent full faults: greedy picks them over two iterations
	// (different coverage) or one (equal coverage); all observations end
	// explained either way.
	m := risk.NewModel("multi")
	f1, f2 := object.Filter(1), object.Filter(2)
	for i, label := range []string{"a", "b", "c"} {
		el := m.EnsureElement(label)
		m.AddEdge(el, f1)
		m.MarkFailed(el, f1)
		_ = i
	}
	for _, label := range []string{"x", "y"} {
		el := m.EnsureElement(label)
		m.AddEdge(el, f2)
		m.MarkFailed(el, f2)
	}
	res := Scout(m, NoChanges{})
	want := []object.Ref{f1, f2}
	object.SortRefs(want)
	if !reflect.DeepEqual(res.Hypothesis, want) {
		t.Errorf("Hypothesis = %v, want %v", res.Hypothesis, want)
	}
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2 (coverage 3 then 2)", res.Iterations)
	}
	if len(res.Unexplained) != 0 {
		t.Error("all observations must be explained")
	}
}

func TestScoutHonorsHitRatioOnPrunedModel(t *testing.T) {
	// After pruning F2's dependents (Figure 5), C3's hit ratio rises from
	// 1/3 to 1/1 in the pruned model — the second iteration must pick it
	// up without the change log... unless its remaining coverage is zero.
	m := risk.NewModel("prune")
	fBig := object.Filter(1)
	cSmall := object.Contract(1)
	// e1, e2 depend on fBig (both failed). e2 and e3 depend on cSmall;
	// e3's edge to cSmall failed too.
	e1 := m.EnsureElement("e1")
	e2 := m.EnsureElement("e2")
	e3 := m.EnsureElement("e3")
	m.AddEdge(e1, fBig)
	m.AddEdge(e2, fBig)
	m.AddEdge(e2, cSmall)
	m.AddEdge(e3, cSmall)
	m.MarkFailed(e1, fBig)
	m.MarkFailed(e2, fBig)
	m.MarkFailed(e3, cSmall)

	res := Scout(m, NoChanges{})
	// Iteration 1: fBig (hit 1, cov 2) wins over cSmall (hit 1/2).
	// Pruning removes e1, e2. Iteration 2: cSmall now hit 1/1 over the
	// remaining model and explains e3.
	want := []object.Ref{cSmall, fBig}
	object.SortRefs(want)
	if !reflect.DeepEqual(res.Hypothesis, want) {
		t.Errorf("Hypothesis = %v, want %v", res.Hypothesis, want)
	}
}

func TestChangeLogOracle(t *testing.T) {
	log := faultlog.NewChangeLog()
	t0 := time.Date(2018, 7, 2, 9, 0, 0, 0, time.UTC)
	log.Append(t0, faultlog.OpModify, object.Filter(3), "tweak")
	o := ChangeLogOracle{Log: log, Since: t0.Add(-time.Hour)}
	if !o.RecentlyChanged(object.Filter(3)) {
		t.Error("filter 3 changed within the window")
	}
	if o.RecentlyChanged(object.Filter(4)) {
		t.Error("filter 4 never changed")
	}
	late := ChangeLogOracle{Log: log, Since: t0.Add(time.Hour)}
	if late.RecentlyChanged(object.Filter(3)) {
		t.Error("change is older than the window")
	}
}

func TestEvaluate(t *testing.T) {
	res := &Result{Hypothesis: []object.Ref{object.Filter(1), object.Filter(2)}}
	acc := res.Evaluate([]object.Ref{object.Filter(2), object.Filter(3)})
	if acc.TruePositives != 1 {
		t.Errorf("TP = %d", acc.TruePositives)
	}
	if acc.Precision != 0.5 || acc.Recall != 0.5 {
		t.Errorf("P=%v R=%v, want 0.5/0.5", acc.Precision, acc.Recall)
	}
	empty := &Result{}
	acc = empty.Evaluate(nil)
	if acc.Precision != 0 || acc.Recall != 0 {
		t.Error("degenerate inputs must not divide by zero")
	}
}

func TestGamma(t *testing.T) {
	m := risk.NewModel("g")
	e := m.EnsureElement("a")
	for i := 0; i < 4; i++ {
		m.AddEdge(e, object.Filter(object.ID(i)))
		m.MarkFailed(e, object.Filter(object.ID(i)))
	}
	res := &Result{Hypothesis: []object.Ref{object.Filter(0)}}
	if g := res.Gamma(m); g != 0.25 {
		t.Errorf("Gamma = %v, want 0.25", g)
	}
	m.ResetFailures()
	if g := res.Gamma(m); g != 0 {
		t.Errorf("Gamma with no suspects = %v, want 0", g)
	}
}

// randomAnnotatedModel builds a random bipartite model with fully-failed
// risks so every observation is explainable by stage 1.
func randomAnnotatedModel(seed int64) *risk.Model {
	rng := rand.New(rand.NewSource(seed))
	m := risk.NewModel("rand")
	nElems := 5 + rng.Intn(30)
	nRisks := 3 + rng.Intn(10)
	els := make([]risk.ElementID, nElems)
	for i := range els {
		els[i] = m.EnsureElement(labelFor(i))
	}
	for i := range els {
		for r := 0; r < 1+rng.Intn(3); r++ {
			m.AddEdge(els[i], object.Filter(object.ID(rng.Intn(nRisks))))
		}
	}
	// Fail a couple of risks fully.
	for r := 0; r < 2; r++ {
		ref := object.Filter(object.ID(rng.Intn(nRisks)))
		for _, el := range m.ElementsOf(ref) {
			m.MarkFailed(el, ref)
		}
	}
	return m
}

func labelFor(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// TestScoutExplainsEverythingOnFullFaults: with only full-object faults,
// stage 1 alone must explain every observation (the invariant behind the
// paper's claim that SCOUT always finds full faults).
func TestScoutExplainsEverythingOnFullFaults(t *testing.T) {
	f := func(seed int64) bool {
		m := randomAnnotatedModel(seed)
		res := Scout(m, NoChanges{})
		return len(res.Unexplained) == 0 &&
			res.Explained == len(m.FailureSignature())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHypothesisObjectsHaveFailedEdges: every object SCOUT or SCORE emits
// must have at least one failed edge (no hallucinated suspects).
func TestHypothesisObjectsHaveFailedEdges(t *testing.T) {
	f := func(seed int64) bool {
		m := randomAnnotatedModel(seed)
		for _, res := range []*Result{Scout(m, NoChanges{}), Score(m, 0.6), Score(m, 1.0)} {
			for _, ref := range res.Hypothesis {
				if len(m.FailedElementsOf(ref)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScoutDeterministic: same model, same oracle → same result.
func TestScoutDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a := Scout(randomAnnotatedModel(seed), NoChanges{})
		b := Scout(randomAnnotatedModel(seed), NoChanges{})
		return reflect.DeepEqual(a.Hypothesis, b.Hypothesis) &&
			a.Explained == b.Explained && a.Iterations == b.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScoreThresholdMonotonicity(t *testing.T) {
	// Lowering the threshold can only add eligible risks, so explained
	// observations never decrease.
	f := func(seed int64) bool {
		m := randomAnnotatedModel(seed)
		// Add one partial fault to differentiate thresholds.
		rng := rand.New(rand.NewSource(seed + 42))
		refs := m.Risks()
		ref := refs[rng.Intn(len(refs))]
		if els := m.ElementsOf(ref); len(els) > 1 {
			m.MarkFailed(els[0], ref)
		}
		strict := Score(m, 1.0)
		loose := Score(m, 0.3)
		return loose.Explained >= strict.Explained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxCoverageExplainsEverything(t *testing.T) {
	// Pure set cover always explains the full signature (every failed
	// edge's risk is eligible), trading precision for recall.
	f := func(seed int64) bool {
		m := randomAnnotatedModel(seed)
		res := MaxCoverage(m)
		return len(res.Unexplained) == 0 && res.Explained == len(m.FailureSignature())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxCoverageFigure5(t *testing.T) {
	m, refs := figure5Model(t)
	res := MaxCoverage(m)
	hyp := object.NewSet(res.Hypothesis...)
	// F2 covers the most observations and must be picked; the tail is
	// covered by C3 (covers E6-E7) or F3 — either explains everything.
	if !hyp.Has(refs["F2"]) {
		t.Errorf("max coverage must pick F2: %v", res.Hypothesis)
	}
	if len(res.Unexplained) != 0 {
		t.Errorf("max coverage leaves nothing unexplained: %v", res.Unexplained)
	}
	// Steps trace the greedy picks in order.
	if len(res.Steps) != len(res.Hypothesis) {
		t.Errorf("steps = %d, hypothesis = %d", len(res.Steps), len(res.Hypothesis))
	}
	if res.Steps[0].Picked[0] != refs["F2"] {
		t.Errorf("first pick = %v, want F2", res.Steps[0].Picked)
	}
}

func TestScoutStepsTrace(t *testing.T) {
	m, refs := figure5Model(t)
	res := Scout(m, SetOracle(object.NewSet(refs["F3"])))
	if len(res.Steps) != 1 {
		t.Fatalf("stage-1 steps = %d, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if len(s.Picked) != 1 || s.Picked[0] != refs["F2"] {
		t.Errorf("step picked %v, want [F2]", s.Picked)
	}
	if s.Coverage != 4 {
		t.Errorf("step coverage = %d, want 4", s.Coverage)
	}
	if s.Pruned < 4 {
		t.Errorf("step pruned = %d, want >= 4", s.Pruned)
	}
}
