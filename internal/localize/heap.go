// Lazy-greedy (CELF-style) pick heap for the submodular set-cover loops.
//
// Residual coverage |Oi ∩ pending| only shrinks as observations are
// explained, so a stored score is always an upper bound on the current
// one. The pick loop pops the max entry; if its score was computed in an
// earlier round it is re-evaluated and pushed back, otherwise it is the
// true maximum and is picked. Tie-breaking must reproduce the reference
// engine's "lowest ref among max-coverage risks" exactly, so entries
// carry their rank in the ref-sorted eligible list and the heap orders by
// (coverage desc, rank asc): a stale entry that still ties the fresh top
// sorts first, gets re-evaluated, and wins the tie just as a full rescan
// would.

package localize

// lazyEntry is one eligible risk in the pick heap.
type lazyEntry struct {
	cov   int32 // last-evaluated residual coverage
	rank  int32 // position in the ref-sorted eligible list (tie-break)
	round int32 // pick round the coverage was evaluated in
	idx   int32 // run-view risk index
}

// lazyHeap is a binary max-heap of lazyEntry ordered by (cov desc, rank
// asc).
type lazyHeap []lazyEntry

func lazyLess(a, b lazyEntry) bool {
	return a.cov > b.cov || (a.cov == b.cov && a.rank < b.rank)
}

func (h *lazyHeap) push(e lazyEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lazyLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *lazyHeap) pop() lazyEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && lazyLess(s[l], s[smallest]) {
			smallest = l
		}
		if r < len(s) && lazyLess(s[r], s[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
