package localize

import (
	"math/rand"
	"testing"

	"scout/internal/object"
	"scout/internal/risk"
)

// benchModel builds a dense annotated model: elems elements, risks
// shared risks, ~deg edges per element, a handful of full faults.
func benchModel(b *testing.B, elems, risks, deg, faults int) *risk.Model {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := risk.NewModel("bench")
	ids := make([]risk.ElementID, elems)
	for i := range ids {
		ids[i] = m.EnsureElement(labelFor(i))
	}
	for _, el := range ids {
		for d := 0; d < deg; d++ {
			m.AddEdge(el, object.Filter(object.ID(rng.Intn(risks))))
		}
	}
	for f := 0; f < faults; f++ {
		ref := object.Filter(object.ID(rng.Intn(risks)))
		for _, el := range m.ElementsOf(ref) {
			m.MarkFailed(el, ref)
		}
	}
	return m
}

// benchOverlay builds a pristine model plus an overlay carrying the same
// fault pattern — the indirection the analyzer's warm path actually pays.
func benchOverlay(b *testing.B, elems, risks, deg, faults int) *risk.Overlay {
	b.Helper()
	base := benchModel(b, elems, risks, deg, 0)
	rng := rand.New(rand.NewSource(43))
	ov := risk.NewOverlay(base)
	for f := 0; f < faults; f++ {
		ref := object.Filter(object.ID(rng.Intn(risks)))
		for _, el := range base.ElementsOf(ref) {
			ov.MarkFailed(el, ref)
		}
	}
	return ov
}

// reportEngineMetrics attaches plan-compiles/op and coverage-evals/op to
// a benchmark from the engine counter delta across the timed loop.
func reportEngineMetrics(b *testing.B, before EngineStats) {
	d := StatsSnapshot().Delta(before)
	b.ReportMetric(float64(d.PlanCompiles)/float64(b.N), "plan-compiles/op")
	b.ReportMetric(float64(d.LazyEvals)/float64(b.N), "coverage-evals/op")
}

// BenchmarkScoutLarge measures SCOUT on a 50k-element model — roughly a
// 150-switch controller risk model. The plan compiles on the first
// iteration and is reused by the rest, so plan-compiles/op tends to 0.
func BenchmarkScoutLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	before := StatsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Scout(m, NoChanges{})
		if len(res.Hypothesis) == 0 {
			b.Fatal("no hypothesis")
		}
	}
	reportEngineMetrics(b, before)
}

// BenchmarkRefScoutLarge is the retained map-based engine on the same
// model — the baseline the compiled-plan speedup is measured against.
func BenchmarkRefScoutLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RefScout(m, NoChanges{})
		if len(res.Hypothesis) == 0 {
			b.Fatal("no hypothesis")
		}
	}
}

// BenchmarkScoutLargeOverlay measures SCOUT through a failure overlay
// over a pristine 50k-element base: the plan comes from the base's cache
// and each iteration composes only the O(marks) delta.
func BenchmarkScoutLargeOverlay(b *testing.B) {
	ov := benchOverlay(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	before := StatsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Scout(ov, NoChanges{})
		if len(res.Hypothesis) == 0 {
			b.Fatal("no hypothesis")
		}
	}
	reportEngineMetrics(b, before)
}

// BenchmarkScoreLarge measures the SCORE baseline on the same model.
func BenchmarkScoreLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	before := StatsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(m, 1.0)
	}
	reportEngineMetrics(b, before)
}

// BenchmarkRefScoreLarge is the map-based SCORE baseline.
func BenchmarkRefScoreLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefScore(m, 1.0)
	}
}

// BenchmarkScoreLargeOverlay measures SCORE through a failure overlay.
func BenchmarkScoreLargeOverlay(b *testing.B) {
	ov := benchOverlay(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	before := StatsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(ov, 1.0)
	}
	reportEngineMetrics(b, before)
}

// BenchmarkScoutSmall measures per-switch-model latency (hundreds of
// elements), the event-driven AnalyzeSwitch path.
func BenchmarkScoutSmall(b *testing.B) {
	m := benchModel(b, 400, 80, 5, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scout(m, NoChanges{})
	}
}
