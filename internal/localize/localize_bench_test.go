package localize

import (
	"math/rand"
	"testing"

	"scout/internal/object"
	"scout/internal/risk"
)

// benchModel builds a dense annotated model: elems elements, risks
// shared risks, ~deg edges per element, a handful of full faults.
func benchModel(b *testing.B, elems, risks, deg, faults int) *risk.Model {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := risk.NewModel("bench")
	ids := make([]risk.ElementID, elems)
	for i := range ids {
		ids[i] = m.EnsureElement(labelFor(i))
	}
	for _, el := range ids {
		for d := 0; d < deg; d++ {
			m.AddEdge(el, object.Filter(object.ID(rng.Intn(risks))))
		}
	}
	for f := 0; f < faults; f++ {
		ref := object.Filter(object.ID(rng.Intn(risks)))
		for _, el := range m.ElementsOf(ref) {
			m.MarkFailed(el, ref)
		}
	}
	return m
}

// BenchmarkScoutLarge measures SCOUT on a 50k-element model — roughly a
// 150-switch controller risk model.
func BenchmarkScoutLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Scout(m, NoChanges{})
		if len(res.Hypothesis) == 0 {
			b.Fatal("no hypothesis")
		}
	}
}

// BenchmarkScoreLarge measures the SCORE baseline on the same model.
func BenchmarkScoreLarge(b *testing.B) {
	m := benchModel(b, 50000, 2000, 6, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(m, 1.0)
	}
}

// BenchmarkScoutSmall measures per-switch-model latency (hundreds of
// elements), the event-driven AnalyzeSwitch path.
func BenchmarkScoutSmall(b *testing.B) {
	m := benchModel(b, 400, 80, 5, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scout(m, NoChanges{})
	}
}
