package localize

// Differential gate for the compiled-plan engine: Scout/Score/MaxCoverage
// must return Results identical (reflect.DeepEqual, including Steps,
// Iterations, ChangeLogPicks, Unexplained) to the retained reference
// engine over randomized models, randomized partial-fault annotations,
// and workload-generated overlay scenarios — and the plan cache must
// compile once per pristine model revision, never on warm/overlay runs.

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"scout/internal/object"
	"scout/internal/risk"
	"scout/internal/workload"
)

// randomPartialModel is like randomAnnotatedModel but also marks partial
// faults (random subsets of a risk's dependents), producing unexplained
// leftovers for stage two.
func randomPartialModel(seed int64) (*risk.Model, object.Set) {
	rng := rand.New(rand.NewSource(seed))
	m := risk.NewModel("rand-partial")
	nElems := 4 + rng.Intn(40)
	nRisks := 3 + rng.Intn(12)
	els := make([]risk.ElementID, nElems)
	for i := range els {
		els[i] = m.EnsureElement(labelFor(i))
	}
	for i := range els {
		for r := 0; r < 1+rng.Intn(4); r++ {
			m.AddEdge(els[i], object.Filter(object.ID(rng.Intn(nRisks))))
		}
	}
	changed := make(object.Set)
	// Full faults.
	for r := 0; r < rng.Intn(3); r++ {
		ref := object.Filter(object.ID(rng.Intn(nRisks)))
		for _, el := range m.ElementsOf(ref) {
			m.MarkFailed(el, ref)
		}
	}
	// Partial faults, sometimes visible to the change oracle.
	for r := 0; r < 1+rng.Intn(3); r++ {
		ref := object.Filter(object.ID(rng.Intn(nRisks)))
		for _, el := range m.ElementsOf(ref) {
			if rng.Intn(2) == 0 {
				m.MarkFailed(el, ref)
			}
		}
		if rng.Intn(2) == 0 {
			changed.Add(ref)
		}
	}
	return m, changed
}

func assertEngineIdentity(t *testing.T, label string, v risk.View, oracle ChangeOracle) {
	t.Helper()
	pairs := []struct {
		name      string
		ref, plan *Result
	}{
		{"Scout", RefScout(v, oracle), Scout(v, oracle)},
		{"Scout/NoChanges", RefScout(v, NoChanges{}), Scout(v, NoChanges{})},
		{"Score-0.6", RefScore(v, 0.6), Score(v, 0.6)},
		{"Score-1.0", RefScore(v, 1.0), Score(v, 1.0)},
		{"MaxCoverage", RefMaxCoverage(v), MaxCoverage(v)},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.ref, p.plan) {
			t.Fatalf("%s: %s differs between engines\nref:  %+v\nplan: %+v",
				label, p.name, p.ref, p.plan)
		}
	}
}

func TestDifferentialRandomModels(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		m, changed := randomPartialModel(seed)
		assertEngineIdentity(t, "model", m, SetOracle(changed))
	}
}

func TestDifferentialFigure5(t *testing.T) {
	m, refs := figure5Model(t)
	assertEngineIdentity(t, "figure5", m, SetOracle(object.NewSet(refs["C3"], refs["F3"])))
}

// TestDifferentialOverlays pins engine identity on overlay-backed views:
// workload fault scenarios applied to copy-on-write overlays over one
// pristine controller model, with the model itself built at workers 1, 2,
// and NumCPU (the sharded builds must feed identical plans).
func TestDifferentialOverlays(t *testing.T) {
	d, idx := interchangeEnv(t)
	candidates := idx.Objects()

	workerCounts := []int{1, 2, runtime.NumCPU()}
	var results []*Result
	for _, workers := range workerCounts {
		pristine := risk.BuildControllerModelParallel(
			d, risk.ControllerModelOptions{IncludeSwitchRisk: true}, workers)
		runs := 0
		var firstResults []*Result
		for seed := int64(1); seed <= 4; seed++ {
			for faults := 1; faults <= 5; faults++ {
				scRng := rand.New(rand.NewSource(seed))
				sc, err := workload.NewScenario(scRng, candidates, faults, 5)
				if err != nil {
					t.Fatal(err)
				}
				ov := risk.NewOverlay(pristine)
				workload.ApplyToControllerModel(ov, d, idx, sc, rand.New(rand.NewSource(seed*1000)))
				if ov.NumFailedEdges() == 0 {
					continue
				}
				runs++
				assertEngineIdentity(t, "overlay", ov, SetOracle(sc.Changed))
				firstResults = append(firstResults, Scout(ov, SetOracle(sc.Changed)))
			}
		}
		if runs == 0 {
			t.Fatal("no overlay scenario produced failures")
		}
		if results == nil {
			results = firstResults
		} else if !reflect.DeepEqual(results, firstResults) {
			t.Fatalf("workers=%d: Scout results differ from workers=%d build",
				workers, workerCounts[0])
		}
	}
}

// TestPlanCompileOnce pins the plan-reuse contract: one compile per
// pristine model revision, zero compiles for warm re-runs and for any
// number of overlays over the same base, and a recompile after mutation.
func TestPlanCompileOnce(t *testing.T) {
	m, _ := randomPartialModel(11)
	before := StatsSnapshot()
	Scout(m, NoChanges{})
	Score(m, 1.0)
	MaxCoverage(m)
	for i := 0; i < 5; i++ {
		ov := risk.NewOverlay(m)
		ov.MarkFailed(0, object.VRF(99))
		Scout(ov, NoChanges{})
	}
	d := StatsSnapshot().Delta(before)
	if d.PlanCompiles != 1 {
		t.Errorf("PlanCompiles = %d, want 1 (compile once, reuse everywhere)", d.PlanCompiles)
	}
	if d.PlanReuses != 7 {
		t.Errorf("PlanReuses = %d, want 7", d.PlanReuses)
	}

	// Mutating the model invalidates the cached plan.
	el := m.EnsureElement("fresh-element")
	m.MarkFailed(el, object.VRF(1))
	before = StatsSnapshot()
	assertEngineIdentity(t, "post-mutation", m, NoChanges{})
	if d := StatsSnapshot().Delta(before); d.PlanCompiles != 1 {
		t.Errorf("post-mutation PlanCompiles = %d, want exactly 1", d.PlanCompiles)
	}
}

// recordingOracle records the sequence of RecentlyChanged calls.
type recordingOracle struct {
	calls   []object.Ref
	changed object.Set
}

func (o *recordingOracle) RecentlyChanged(ref object.Ref) bool {
	o.calls = append(o.calls, ref)
	return o.changed.Has(ref)
}

// TestStageTwoOracleOrderDeterministic: both engines must consult the
// change oracle in the same deterministic sequence (ascending pending
// element, then ascending ref) — a counting or memoizing oracle sees
// identical call streams run over run and engine over engine.
func TestStageTwoOracleOrderDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		m, changed := randomPartialModel(seed)
		refOracle := &recordingOracle{changed: changed}
		planOracle := &recordingOracle{changed: changed}
		RefScout(m, refOracle)
		Scout(m, planOracle)
		if !reflect.DeepEqual(refOracle.calls, planOracle.calls) {
			t.Fatalf("seed=%d: oracle call sequences differ\nref:  %v\nplan: %v",
				seed, refOracle.calls, planOracle.calls)
		}
		repeat := &recordingOracle{changed: changed}
		Scout(m, repeat)
		if !reflect.DeepEqual(planOracle.calls, repeat.calls) {
			t.Fatalf("seed=%d: oracle call sequence not deterministic across runs", seed)
		}
	}
}
