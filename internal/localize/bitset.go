// Packed bit masks for the compiled localization engine: the pending
// (unexplained-observation) and alive (un-pruned element) sets are
// word-packed so membership tests on the hot prune/coverage loops are one
// shift and mask instead of a map probe.

package localize

import "math/bits"

// bitset is a packed set of small non-negative integers.
type bitset []uint64

// newBitset returns a bitset able to hold values in [0, n).
func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) test(i int32) bool { return b[i>>6]&(1<<(uint32(i)&63)) != 0 }

func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint32(i) & 63) }

func (b bitset) clear(i int32) { b[i>>6] &^= 1 << (uint32(i) & 63) }

// setFirst sets bits [0, n).
func (b bitset) setFirst(n int) {
	full := n >> 6
	for w := 0; w < full; w++ {
		b[w] = ^uint64(0)
	}
	if rem := uint(n & 63); rem != 0 {
		b[full] |= (1 << rem) - 1
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach invokes fn for every set bit in ascending order. fn may clear
// the bit it was invoked for.
func (b bitset) forEach(fn func(i int32)) {
	for wi, w := range b {
		base := int32(wi) << 6
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
