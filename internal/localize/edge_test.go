package localize

// Edge cases the compiled-plan rewrite must preserve, each asserted on
// both engines: an empty failure signature, a risk whose alive dependents
// hit zero mid-run, a signature only the change-log stage can explain,
// and tie-groups larger than one in pickCandidates.

import (
	"reflect"
	"testing"

	"scout/internal/object"
	"scout/internal/risk"
)

// TestEmptyFailureSignature: a healthy model localizes to an empty
// hypothesis with zero iterations on both engines.
func TestEmptyFailureSignature(t *testing.T) {
	m := risk.NewModel("healthy")
	e1 := m.EnsureElement("E1-E2")
	e2 := m.EnsureElement("E2-E3")
	m.AddEdge(e1, object.Filter(1))
	m.AddEdge(e2, object.Filter(1))
	m.AddEdge(e2, object.Contract(1))

	for name, res := range map[string]*Result{
		"Scout":       Scout(m, NoChanges{}),
		"RefScout":    RefScout(m, NoChanges{}),
		"Score":       Score(m, 1.0),
		"RefScore":    RefScore(m, 1.0),
		"MaxCoverage": MaxCoverage(m),
		"RefMaxCov":   RefMaxCoverage(m),
	} {
		if len(res.Hypothesis) != 0 || res.Iterations != 0 ||
			len(res.Unexplained) != 0 || res.Explained != 0 || len(res.Steps) != 0 {
			t.Errorf("%s on healthy model: non-trivial result %+v", name, res)
		}
	}
	assertEngineIdentity(t, "empty-signature", m, NoChanges{})
}

// TestZeroAliveDepsMidRun: after stage one picks a full fault and prunes
// its dependents, a risk whose every dependent was pruned has zero alive
// deps; it must be skipped (not divide-by-zero'd, not picked) by later
// rounds on both engines.
func TestZeroAliveDepsMidRun(t *testing.T) {
	m := risk.NewModel("zero-alive")
	e1 := m.EnsureElement("E1")
	e2 := m.EnsureElement("E2")
	e3 := m.EnsureElement("E3")
	e4 := m.EnsureElement("E4")
	full := object.Filter(1)  // fully failed, covers e1..e3
	sub := object.Contract(2) // depends only on e1/e2 (subset of full's deps)
	other := object.Filter(3) // fully failed on e4, second round's pick
	for _, el := range []risk.ElementID{e1, e2, e3} {
		m.AddEdge(el, full)
		m.MarkFailed(el, full)
	}
	m.AddEdge(e1, sub)
	m.MarkFailed(e1, sub)
	m.AddEdge(e2, sub)
	m.AddEdge(e4, other)
	m.MarkFailed(e4, other)

	res := Scout(m, NoChanges{})
	// full (cov 3) is picked alone first; pruning e1..e3 leaves sub with
	// zero alive deps, so round two picks other.
	want := []object.Ref{full, other}
	if !reflect.DeepEqual(res.Hypothesis, want) {
		t.Errorf("Hypothesis = %v, want %v", res.Hypothesis, want)
	}
	if res.Iterations != 2 || len(res.Steps) != 2 {
		t.Errorf("Iterations = %d, Steps = %d, want 2 rounds", res.Iterations, len(res.Steps))
	}
	assertEngineIdentity(t, "zero-alive-deps", m, NoChanges{})
}

// TestStageTwoOnly: with only partial faults (hit ratio < 1 everywhere)
// stage one explains nothing — every observation reaches stage two, and
// only change-log hits explain anything.
func TestStageTwoOnly(t *testing.T) {
	m := risk.NewModel("stage-two-only")
	e1 := m.EnsureElement("E1")
	e2 := m.EnsureElement("E2")
	e3 := m.EnsureElement("E3")
	partialA := object.Filter(1)
	partialB := object.Contract(2)
	m.AddEdge(e1, partialA)
	m.AddEdge(e2, partialA) // healthy edge keeps hit ratio at 1/2
	m.AddEdge(e2, partialB)
	m.AddEdge(e3, partialB) // healthy edge keeps hit ratio at 1/2
	m.MarkFailed(e1, partialA)
	m.MarkFailed(e2, partialB)

	// Without an oracle nothing is explained.
	res := Scout(m, NoChanges{})
	if len(res.Hypothesis) != 0 || res.Explained != 0 || len(res.Unexplained) != 2 {
		t.Errorf("no-oracle result: %+v", res)
	}
	if len(res.Steps) != 0 || res.Iterations != 1 {
		t.Errorf("stage one must run one fruitless round: %+v", res)
	}

	// With partialA in the change log, e1 is explained via stage two.
	res = Scout(m, SetOracle(object.NewSet(partialA)))
	if !reflect.DeepEqual(res.Hypothesis, []object.Ref{partialA}) ||
		!reflect.DeepEqual(res.ChangeLogPicks, []object.Ref{partialA}) {
		t.Errorf("oracle result: %+v", res)
	}
	if res.Explained != 1 || len(res.Unexplained) != 1 {
		t.Errorf("Explained = %d, Unexplained = %v", res.Explained, res.Unexplained)
	}
	assertEngineIdentity(t, "stage-two-only", m, SetOracle(object.NewSet(partialA)))
}

// TestPickCandidatesTieGroup: two disjoint full faults with equal
// coverage are picked together in one step, in ref order.
func TestPickCandidatesTieGroup(t *testing.T) {
	m := risk.NewModel("ties")
	a := object.Contract(1)
	b := object.Filter(2)
	for i, ref := range []object.Ref{a, a, b, b} {
		el := m.EnsureElement(labelFor(i))
		m.AddEdge(el, ref)
		m.MarkFailed(el, ref)
	}

	res := Scout(m, NoChanges{})
	if res.Iterations != 1 || len(res.Steps) != 1 {
		t.Fatalf("tie group must resolve in one round: %+v", res)
	}
	want := []object.Ref{a, b}
	object.SortRefs(want)
	if !reflect.DeepEqual(res.Steps[0].Picked, want) {
		t.Errorf("Steps[0].Picked = %v, want %v", res.Steps[0].Picked, want)
	}
	if res.Steps[0].Coverage != 4 || res.Steps[0].Pruned != 4 {
		t.Errorf("Coverage = %d, Pruned = %d, want 4/4",
			res.Steps[0].Coverage, res.Steps[0].Pruned)
	}
	assertEngineIdentity(t, "tie-group", m, NoChanges{})
}

// TestOverlayOnlyFailures: a pristine base with every failure in the
// overlay (the session warm path) — the delta composition alone must
// carry the run.
func TestOverlayOnlyFailures(t *testing.T) {
	m := risk.NewModel("pristine")
	e1 := m.EnsureElement("E1")
	e2 := m.EnsureElement("E2")
	f := object.Filter(1)
	m.AddEdge(e1, f)
	m.AddEdge(e2, f)

	ov := risk.NewOverlay(m)
	ov.MarkFailed(e1, f)
	ov.MarkFailed(e2, f)
	// A mark that creates both a new risk and a new edge in the overlay.
	novel := object.VRF(7)
	ov.MarkFailed(e1, novel)

	assertEngineIdentity(t, "overlay-only", ov, SetOracle(object.NewSet(novel)))
	res := Scout(ov, NoChanges{})
	if !reflect.DeepEqual(res.Hypothesis, []object.Ref{f}) {
		t.Errorf("Hypothesis = %v, want [%v]", res.Hypothesis, f)
	}
	if m.NumFailedEdges() != 0 {
		t.Error("overlay run mutated the pristine base")
	}
}
