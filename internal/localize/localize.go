// Package localize implements the paper's network-policy fault
// localization algorithms over annotated risk models (§IV):
//
//   - SCOUT (Algorithms 1 and 2): a two-stage greedy solver. Stage one
//     repeatedly picks the shared risks with hit ratio exactly 1 and
//     maximum coverage, pruning every element that depends on a picked
//     risk. Stage two explains the left-over observations — caused by
//     partial object faults whose hit ratio is below 1 — by consulting the
//     controller change log for recently-modified objects.
//   - SCORE (Kompella et al.): the prior greedy min-set-cover baseline
//     that admits every risk above a static hit-ratio threshold and picks
//     by coverage. Partial faults below the threshold are treated as
//     noise, which is the accuracy gap SCOUT closes.
//
// Two engines implement the algorithms. The default one runs on a
// compiled localization plan (plan.go): dense CSR adjacency and packed
// bit masks compiled once per pristine model, cached on the model, and
// composed with an O(marks) delta for overlay runs, with a lazy-greedy
// heap for the submodular pick loops (engine.go). The original
// map-of-maps implementation is retained as RefScout/RefScore/
// RefMaxCoverage (ref.go) and pins the rewrite through differential
// tests.
package localize

import (
	"sort"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/risk"
)

// ChangeOracle answers whether a policy object has recently had
// configuration actions applied — the change-log lookup of Algorithm 1
// lines 21-24.
type ChangeOracle interface {
	RecentlyChanged(object.Ref) bool
}

// ChangeLogOracle adapts a controller change log: objects changed at or
// after Since count as recent.
type ChangeLogOracle struct {
	Log   *faultlog.ChangeLog
	Since time.Time
}

// RecentlyChanged reports whether ref has a change entry at or after Since.
func (o ChangeLogOracle) RecentlyChanged(ref object.Ref) bool {
	return o.Log.ChangedSince(ref, o.Since)
}

// SetOracle is a fixed set of recently-changed objects (used in
// simulations and tests).
type SetOracle object.Set

// RecentlyChanged reports whether ref is in the set.
func (o SetOracle) RecentlyChanged(ref object.Ref) bool {
	return object.Set(o).Has(ref)
}

// NoChanges is an oracle that never reports changes; using it disables
// SCOUT's second stage (the ablation in DESIGN.md §5).
type NoChanges struct{}

// RecentlyChanged always returns false.
func (NoChanges) RecentlyChanged(object.Ref) bool { return false }

var (
	_ ChangeOracle = ChangeLogOracle{}
	_ ChangeOracle = SetOracle(nil)
	_ ChangeOracle = NoChanges{}
)

// Step records one greedy iteration for explainability: what was picked
// and why.
type Step struct {
	// Picked are the risks selected this iteration (ties picked together).
	Picked []object.Ref
	// Coverage is the number of then-unexplained observations the picked
	// set covered.
	Coverage int
	// Pruned is the number of elements removed from the working model.
	Pruned int
}

// Result is the outcome of a localization run.
type Result struct {
	// Hypothesis is the minimal set of most-likely faulty objects, sorted.
	Hypothesis []object.Ref
	// Explained counts observations covered by the hypothesis.
	Explained int
	// Unexplained lists observations no hypothesis object accounts for.
	Unexplained []risk.ElementID
	// Iterations is the number of greedy rounds stage one executed.
	Iterations int
	// ChangeLogPicks lists the hypothesis objects contributed by the
	// change-log stage (SCOUT only; empty for SCORE).
	ChangeLogPicks []object.Ref
	// Steps traces the greedy iterations in order (Scout stage one, or
	// Score's per-pick rounds).
	Steps []Step
}

// Gamma returns the suspect-set-reduction ratio γ = |H| / |suspect set|
// for the result against the model it was computed from (paper §VI). It
// returns 0 when there are no suspects.
func (r *Result) Gamma(m risk.View) float64 {
	suspects := m.SuspectSet()
	if len(suspects) == 0 {
		return 0
	}
	return float64(len(r.Hypothesis)) / float64(len(suspects))
}

// Scout runs the SCOUT algorithm (Algorithm 1) on the annotated model.
// oracle supplies the change-log lookup for stage two; pass NoChanges{} to
// disable it. Models and overlays run on the compiled-plan engine; other
// View implementations fall back to the reference engine.
func Scout(m risk.View, oracle ChangeOracle) *Result {
	if p, o, ok := planFor(m); ok {
		return planScout(p, o, oracle)
	}
	return RefScout(m, oracle)
}

// Score runs the SCORE baseline with the given hit-ratio threshold
// (SCORE-X in the paper's figures, e.g. 0.6 or 1.0). Hit ratios are
// computed once on the full model; eligible risks are greedily selected by
// residual coverage until no eligible risk explains a new observation.
func Score(m risk.View, threshold float64) *Result {
	if p, o, ok := planFor(m); ok {
		return planScore(p, o, threshold)
	}
	return RefScore(m, threshold)
}

func sortedElements(set map[risk.ElementID]struct{}) []risk.ElementID {
	out := make([]risk.ElementID, 0, len(set))
	for el := range set {
		out = append(out, el)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accuracy holds precision/recall of a hypothesis against ground truth.
type Accuracy struct {
	Precision float64
	Recall    float64
	// TruePositives = |G ∩ H|.
	TruePositives int
}

// Evaluate computes precision (|G∩H|/|H|) and recall (|G∩H|/|G|) of the
// result's hypothesis against the ground-truth faulty objects.
func (r *Result) Evaluate(groundTruth []object.Ref) Accuracy {
	g := object.NewSet(groundTruth...)
	tp := 0
	for _, ref := range r.Hypothesis {
		if g.Has(ref) {
			tp++
		}
	}
	acc := Accuracy{TruePositives: tp}
	if len(r.Hypothesis) > 0 {
		acc.Precision = float64(tp) / float64(len(r.Hypothesis))
	}
	if len(groundTruth) > 0 {
		acc.Recall = float64(tp) / float64(len(groundTruth))
	}
	return acc
}
