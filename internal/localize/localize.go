// Package localize implements the paper's network-policy fault
// localization algorithms over annotated risk models (§IV):
//
//   - SCOUT (Algorithms 1 and 2): a two-stage greedy solver. Stage one
//     repeatedly picks the shared risks with hit ratio exactly 1 and
//     maximum coverage, pruning every element that depends on a picked
//     risk. Stage two explains the left-over observations — caused by
//     partial object faults whose hit ratio is below 1 — by consulting the
//     controller change log for recently-modified objects.
//   - SCORE (Kompella et al.): the prior greedy min-set-cover baseline
//     that admits every risk above a static hit-ratio threshold and picks
//     by coverage. Partial faults below the threshold are treated as
//     noise, which is the accuracy gap SCOUT closes.
package localize

import (
	"sort"
	"time"

	"scout/internal/faultlog"
	"scout/internal/object"
	"scout/internal/risk"
)

// ChangeOracle answers whether a policy object has recently had
// configuration actions applied — the change-log lookup of Algorithm 1
// lines 21-24.
type ChangeOracle interface {
	RecentlyChanged(object.Ref) bool
}

// ChangeLogOracle adapts a controller change log: objects changed at or
// after Since count as recent.
type ChangeLogOracle struct {
	Log   *faultlog.ChangeLog
	Since time.Time
}

// RecentlyChanged reports whether ref has a change entry at or after Since.
func (o ChangeLogOracle) RecentlyChanged(ref object.Ref) bool {
	return o.Log.ChangedSince(ref, o.Since)
}

// SetOracle is a fixed set of recently-changed objects (used in
// simulations and tests).
type SetOracle object.Set

// RecentlyChanged reports whether ref is in the set.
func (o SetOracle) RecentlyChanged(ref object.Ref) bool {
	return object.Set(o).Has(ref)
}

// NoChanges is an oracle that never reports changes; using it disables
// SCOUT's second stage (the ablation in DESIGN.md §5).
type NoChanges struct{}

// RecentlyChanged always returns false.
func (NoChanges) RecentlyChanged(object.Ref) bool { return false }

var (
	_ ChangeOracle = ChangeLogOracle{}
	_ ChangeOracle = SetOracle(nil)
	_ ChangeOracle = NoChanges{}
)

// Step records one greedy iteration for explainability: what was picked
// and why.
type Step struct {
	// Picked are the risks selected this iteration (ties picked together).
	Picked []object.Ref
	// Coverage is the number of then-unexplained observations the picked
	// set covered.
	Coverage int
	// Pruned is the number of elements removed from the working model.
	Pruned int
}

// Result is the outcome of a localization run.
type Result struct {
	// Hypothesis is the minimal set of most-likely faulty objects, sorted.
	Hypothesis []object.Ref
	// Explained counts observations covered by the hypothesis.
	Explained int
	// Unexplained lists observations no hypothesis object accounts for.
	Unexplained []risk.ElementID
	// Iterations is the number of greedy rounds stage one executed.
	Iterations int
	// ChangeLogPicks lists the hypothesis objects contributed by the
	// change-log stage (SCOUT only; empty for SCORE).
	ChangeLogPicks []object.Ref
	// Steps traces the greedy iterations in order (Scout stage one, or
	// Score's per-pick rounds).
	Steps []Step
}

// Gamma returns the suspect-set-reduction ratio γ = |H| / |suspect set|
// for the result against the model it was computed from (paper §VI). It
// returns 0 when there are no suspects.
func (r *Result) Gamma(m risk.View) float64 {
	suspects := m.SuspectSet()
	if len(suspects) == 0 {
		return 0
	}
	return float64(len(r.Hypothesis)) / float64(len(suspects))
}

// view is the mutable working state of the greedy algorithms: adjacency
// extracted once from the (immutable) model plus an alive mask that
// implements Algorithm 1's Prune.
type view struct {
	m risk.View
	// deps[ref] = elements depending on ref.
	deps map[object.Ref][]risk.ElementID
	// failed[ref] = elements whose edge to ref is marked fail.
	failed map[object.Ref]map[risk.ElementID]struct{}
	alive  []bool
}

func newView(m risk.View) *view {
	v := &view{
		m:      m,
		deps:   make(map[object.Ref][]risk.ElementID),
		failed: make(map[object.Ref]map[risk.ElementID]struct{}),
		alive:  make([]bool, m.NumElements()),
	}
	for i := range v.alive {
		v.alive[i] = true
	}
	for _, ref := range m.Risks() {
		v.deps[ref] = m.ElementsOf(ref)
		set := make(map[risk.ElementID]struct{})
		for _, el := range m.FailedElementsOf(ref) {
			set[el] = struct{}{}
		}
		v.failed[ref] = set
	}
	return v
}

// aliveCounts returns (|Gi ∩ alive|, |Oi ∩ alive|) for risk ref.
func (v *view) aliveCounts(ref object.Ref) (deps, failed int) {
	for _, el := range v.deps[ref] {
		if !v.alive[el] {
			continue
		}
		deps++
		if _, f := v.failed[ref][el]; f {
			failed++
		}
	}
	return deps, failed
}

// Scout runs the SCOUT algorithm (Algorithm 1) on the annotated model.
// oracle supplies the change-log lookup for stage two; pass NoChanges{} to
// disable it.
func Scout(m risk.View, oracle ChangeOracle) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	// P: unexplained observations.
	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)

	for len(pending) > 0 {
		res.Iterations++
		// K: shared risks with a failed edge from some unexplained
		// observation (lines 6-10).
		candidates := make(object.Set)
		for el := range pending {
			for _, ref := range m.FailedRisksOf(el) {
				candidates.Add(ref)
			}
		}
		// pickCandidates (Algorithm 2): risks with hit ratio 1, then the
		// max-coverage subset among them.
		faultySet := pickCandidates(v, candidates, pending)
		if len(faultySet) == 0 {
			break
		}
		// Prune every element depending on a picked risk (lines 15-17).
		step := Step{Picked: append([]object.Ref(nil), faultySet...)}
		pendingBefore := len(pending)
		for _, ref := range faultySet {
			for _, el := range v.deps[ref] {
				if !v.alive[el] {
					continue
				}
				v.alive[el] = false
				step.Pruned++
				delete(pending, el)
			}
			hypothesis.Add(ref)
		}
		step.Coverage = pendingBefore - len(pending)
		res.Steps = append(res.Steps, step)
	}

	// Stage two (lines 20-25): explain remaining observations via the
	// change log.
	if len(pending) > 0 && oracle != nil {
		for el := range pending {
			picked := false
			for _, ref := range m.FailedRisksOf(el) {
				if oracle.RecentlyChanged(ref) {
					if !hypothesis.Has(ref) {
						hypothesis.Add(ref)
						res.ChangeLogPicks = append(res.ChangeLogPicks, ref)
					}
					picked = true
				}
			}
			if picked {
				delete(pending, el)
			}
		}
		object.SortRefs(res.ChangeLogPicks)
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}

// pickCandidates implements Algorithm 2: among the candidate risks, keep
// those whose (alive) hit ratio is exactly 1, then return the subset with
// the maximum number of unexplained observations covered.
func pickCandidates(v *view, candidates object.Set, pending map[risk.ElementID]struct{}) []object.Ref {
	maxCov := 0
	var maxSet []object.Ref
	for _, ref := range candidates.Sorted() {
		deps, failed := v.aliveCounts(ref)
		if deps == 0 || failed != deps {
			continue // hit ratio < 1
		}
		cov := 0
		for el := range v.failed[ref] {
			if _, p := pending[el]; p {
				cov++
			}
		}
		if cov == 0 {
			continue
		}
		switch {
		case cov > maxCov:
			maxCov = cov
			maxSet = []object.Ref{ref}
		case cov == maxCov:
			maxSet = append(maxSet, ref)
		}
	}
	return maxSet
}

// Score runs the SCORE baseline with the given hit-ratio threshold
// (SCORE-X in the paper's figures, e.g. 0.6 or 1.0). Hit ratios are
// computed once on the full model; eligible risks are greedily selected by
// residual coverage until no eligible risk explains a new observation.
func Score(m risk.View, threshold float64) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)

	// Eligible risks: hit ratio >= threshold on the full model.
	var eligible []object.Ref
	for _, ref := range m.Risks() {
		deps, failed := v.aliveCounts(ref) // full model: everything alive
		if deps == 0 || failed == 0 {
			continue
		}
		if float64(failed)/float64(deps) >= threshold {
			eligible = append(eligible, ref)
		}
	}

	for len(pending) > 0 {
		best := object.Ref{}
		bestCov := 0
		for _, ref := range eligible {
			if hypothesis.Has(ref) {
				continue
			}
			cov := 0
			for el := range v.failed[ref] {
				if _, p := pending[el]; p {
					cov++
				}
			}
			if cov > bestCov || (cov == bestCov && cov > 0 && ref.Less(best)) {
				best = ref
				bestCov = cov
			}
		}
		if bestCov == 0 {
			break
		}
		res.Iterations++
		hypothesis.Add(best)
		pendingBefore := len(pending)
		for el := range v.failed[best] {
			delete(pending, el)
		}
		res.Steps = append(res.Steps, Step{
			Picked:   []object.Ref{best},
			Coverage: pendingBefore - len(pending),
		})
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}

func sortedElements(set map[risk.ElementID]struct{}) []risk.ElementID {
	out := make([]risk.ElementID, 0, len(set))
	for el := range set {
		out = append(out, el)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accuracy holds precision/recall of a hypothesis against ground truth.
type Accuracy struct {
	Precision float64
	Recall    float64
	// TruePositives = |G ∩ H|.
	TruePositives int
}

// Evaluate computes precision (|G∩H|/|H|) and recall (|G∩H|/|G|) of the
// result's hypothesis against the ground-truth faulty objects.
func (r *Result) Evaluate(groundTruth []object.Ref) Accuracy {
	g := object.NewSet(groundTruth...)
	tp := 0
	for _, ref := range r.Hypothesis {
		if g.Has(ref) {
			tp++
		}
	}
	acc := Accuracy{TruePositives: tp}
	if len(r.Hypothesis) > 0 {
		acc.Precision = float64(tp) / float64(len(r.Hypothesis))
	}
	if len(groundTruth) > 0 {
		acc.Recall = float64(tp) / float64(len(groundTruth))
	}
	return acc
}
