// Reference localization engine: the original map-of-maps implementation
// of SCOUT, SCORE, and MaxCoverage, retained as the readable
// specification the compiled-plan engine (plan.go/engine.go) is pinned
// against. RefScout/RefScore/RefMaxCoverage must stay Result-identical to
// Scout/Score/MaxCoverage — the differential tests and the
// `scout-bench -experiment localizer` CI gate enforce it.

package localize

import (
	"scout/internal/object"
	"scout/internal/risk"
)

// view is the mutable working state of the reference engine: adjacency
// extracted once from the (immutable) model plus an alive mask that
// implements Algorithm 1's Prune.
type view struct {
	m risk.View
	// deps[ref] = elements depending on ref.
	deps map[object.Ref][]risk.ElementID
	// failed[ref] = elements whose edge to ref is marked fail.
	failed map[object.Ref]map[risk.ElementID]struct{}
	alive  []bool
}

func newView(m risk.View) *view {
	v := &view{
		m:      m,
		deps:   make(map[object.Ref][]risk.ElementID),
		failed: make(map[object.Ref]map[risk.ElementID]struct{}),
		alive:  make([]bool, m.NumElements()),
	}
	for i := range v.alive {
		v.alive[i] = true
	}
	for _, ref := range m.Risks() {
		v.deps[ref] = m.ElementsOf(ref)
		set := make(map[risk.ElementID]struct{})
		for _, el := range m.FailedElementsOf(ref) {
			set[el] = struct{}{}
		}
		v.failed[ref] = set
	}
	return v
}

// aliveCounts returns (|Gi ∩ alive|, |Oi ∩ alive|) for risk ref.
func (v *view) aliveCounts(ref object.Ref) (deps, failed int) {
	for _, el := range v.deps[ref] {
		if !v.alive[el] {
			continue
		}
		deps++
		if _, f := v.failed[ref][el]; f {
			failed++
		}
	}
	return deps, failed
}

// RefScout is the reference implementation of Scout (Algorithm 1).
func RefScout(m risk.View, oracle ChangeOracle) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	// P: unexplained observations.
	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)

	for len(pending) > 0 {
		res.Iterations++
		// K: shared risks with a failed edge from some unexplained
		// observation (lines 6-10).
		candidates := make(object.Set)
		for el := range pending {
			for _, ref := range m.FailedRisksOf(el) {
				candidates.Add(ref)
			}
		}
		// pickCandidates (Algorithm 2): risks with hit ratio 1, then the
		// max-coverage subset among them.
		faultySet := pickCandidates(v, candidates, pending)
		if len(faultySet) == 0 {
			break
		}
		// Prune every element depending on a picked risk (lines 15-17).
		step := Step{Picked: append([]object.Ref(nil), faultySet...)}
		pendingBefore := len(pending)
		for _, ref := range faultySet {
			for _, el := range v.deps[ref] {
				if !v.alive[el] {
					continue
				}
				v.alive[el] = false
				step.Pruned++
				delete(pending, el)
			}
			hypothesis.Add(ref)
		}
		step.Coverage = pendingBefore - len(pending)
		res.Steps = append(res.Steps, step)
	}

	// Stage two (lines 20-25): explain remaining observations via the
	// change log. Pending is walked in ascending element order so the
	// oracle sees a deterministic call sequence.
	if len(pending) > 0 && oracle != nil {
		for _, el := range sortedElements(pending) {
			picked := false
			for _, ref := range m.FailedRisksOf(el) {
				if oracle.RecentlyChanged(ref) {
					if !hypothesis.Has(ref) {
						hypothesis.Add(ref)
						res.ChangeLogPicks = append(res.ChangeLogPicks, ref)
					}
					picked = true
				}
			}
			if picked {
				delete(pending, el)
			}
		}
		object.SortRefs(res.ChangeLogPicks)
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}

// pickCandidates implements Algorithm 2: among the candidate risks, keep
// those whose (alive) hit ratio is exactly 1, then return the subset with
// the maximum number of unexplained observations covered.
func pickCandidates(v *view, candidates object.Set, pending map[risk.ElementID]struct{}) []object.Ref {
	maxCov := 0
	var maxSet []object.Ref
	for _, ref := range candidates.Sorted() {
		deps, failed := v.aliveCounts(ref)
		if deps == 0 || failed != deps {
			continue // hit ratio < 1
		}
		cov := 0
		for el := range v.failed[ref] {
			if _, p := pending[el]; p {
				cov++
			}
		}
		if cov == 0 {
			continue
		}
		switch {
		case cov > maxCov:
			maxCov = cov
			maxSet = []object.Ref{ref}
		case cov == maxCov:
			maxSet = append(maxSet, ref)
		}
	}
	return maxSet
}

// RefScore is the reference implementation of Score.
func RefScore(m risk.View, threshold float64) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)

	// Eligible risks: hit ratio >= threshold on the full model.
	var eligible []object.Ref
	for _, ref := range m.Risks() {
		deps, failed := v.aliveCounts(ref) // full model: everything alive
		if deps == 0 || failed == 0 {
			continue
		}
		if float64(failed)/float64(deps) >= threshold {
			eligible = append(eligible, ref)
		}
	}

	for len(pending) > 0 {
		best := object.Ref{}
		bestCov := 0
		for _, ref := range eligible {
			if hypothesis.Has(ref) {
				continue
			}
			cov := 0
			for el := range v.failed[ref] {
				if _, p := pending[el]; p {
					cov++
				}
			}
			if cov > bestCov || (cov == bestCov && cov > 0 && ref.Less(best)) {
				best = ref
				bestCov = cov
			}
		}
		if bestCov == 0 {
			break
		}
		res.Iterations++
		hypothesis.Add(best)
		pendingBefore := len(pending)
		for el := range v.failed[best] {
			delete(pending, el)
		}
		res.Steps = append(res.Steps, Step{
			Picked:   []object.Ref{best},
			Coverage: pendingBefore - len(pending),
		})
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}

// RefMaxCoverage is the reference implementation of MaxCoverage.
func RefMaxCoverage(m risk.View) *Result {
	v := newView(m)
	res := &Result{}
	hypothesis := make(object.Set)

	pending := make(map[risk.ElementID]struct{})
	for _, el := range m.FailureSignature() {
		pending[el] = struct{}{}
	}
	totalObs := len(pending)
	risks := m.Risks()

	for len(pending) > 0 {
		var best object.Ref
		bestCov := 0
		for _, ref := range risks {
			if hypothesis.Has(ref) {
				continue
			}
			cov := 0
			for el := range v.failed[ref] {
				if _, p := pending[el]; p {
					cov++
				}
			}
			if cov > bestCov || (cov == bestCov && cov > 0 && ref.Less(best)) {
				best = ref
				bestCov = cov
			}
		}
		if bestCov == 0 {
			break
		}
		res.Iterations++
		hypothesis.Add(best)
		pendingBefore := len(pending)
		for el := range v.failed[best] {
			delete(pending, el)
		}
		res.Steps = append(res.Steps, Step{
			Picked:   []object.Ref{best},
			Coverage: pendingBefore - len(pending),
		})
	}

	res.Hypothesis = hypothesis.Sorted()
	res.Unexplained = sortedElements(pending)
	res.Explained = totalObs - len(pending)
	return res
}
