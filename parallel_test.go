package scout_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"scout"
)

// faultyFabric builds a seeded multi-switch fabric (the paper's 6-switch
// testbed spec) and injects a deterministic mix of faults so every
// checker path — missing rules, extra rules, partial faults — is
// exercised by the determinism tests.
func faultyFabric(t testing.TB, seed int64) *scout.Fabric {
	t.Helper()
	pol, topo, err := scout.GenerateWorkload(scout.TestbedWorkloadSpec(), seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}

	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	if len(filters) < 2 {
		t.Fatalf("testbed spec produced %d filters, need at least 2", len(filters))
	}
	if _, err := f.InjectObjectFault(scout.FilterRef(filters[0]), 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectObjectFault(scout.FilterRef(filters[1]), 0.5); err != nil {
		t.Fatal(err)
	}

	switches := topo.Switches()
	if _, err := f.EvictTCAM(switches[0], 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CorruptTCAM(switches[len(switches)-1], 2, scout.CorruptDstEPG); err != nil {
		t.Fatal(err)
	}
	return f
}

// reportJSON analyzes the fabric and returns the report serialized with
// the wall-clock field zeroed, so byte comparison sees only pipeline
// output.
func reportJSON(t testing.TB, f *scout.Fabric, opts scout.AnalyzerOptions) []byte {
	t.Helper()
	rep, err := scout.NewAnalyzer(opts).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	rep.Elapsed = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelAnalyzeDeterministic is the regression test for the
// worker-pool pipeline: any worker count must produce a report
// byte-identical to the serial pipeline. At Workers>1 this covers every
// sharded stage — the per-switch check fan-out, the sharded
// controller-model build (merged in ascending switch-ID order), and the
// patch-based parallel controller augmentation — against the fully
// serial Workers=1 run.
func TestParallelAnalyzeDeterministic(t *testing.T) {
	f := faultyFabric(t, 7)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1})

	var probe struct {
		Consistent   bool
		TotalMissing int
	}
	if err := json.Unmarshal(serial, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Consistent || probe.TotalMissing == 0 {
		t.Fatal("fault injection produced a consistent fabric; test is vacuous")
	}

	for _, workers := range []int{2, 3, 4, 8, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers})
		if !bytes.Equal(serial, got) {
			t.Errorf("Workers=%d report differs from serial:\nserial:   %s\nparallel: %s",
				workers, serial, got)
		}
	}
}

// TestParallelProbeAnalyzeDeterministic covers the probe-based
// observation source going through the same fan-out machinery.
func TestParallelProbeAnalyzeDeterministic(t *testing.T) {
	f := faultyFabric(t, 11)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1, UseProbes: true})
	for _, workers := range []int{2, 4, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers, UseProbes: true})
		if !bytes.Equal(serial, got) {
			t.Errorf("UseProbes Workers=%d report differs from serial", workers)
		}
	}
}

// TestParallelNaiveCheckerDeterministic covers the ablation checker,
// which shares the pool but ignores the per-worker BDD checker.
func TestParallelNaiveCheckerDeterministic(t *testing.T) {
	f := faultyFabric(t, 13)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1, UseNaiveChecker: true})
	for _, workers := range []int{4, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers, UseNaiveChecker: true})
		if !bytes.Equal(serial, got) {
			t.Errorf("UseNaiveChecker Workers=%d report differs from serial", workers)
		}
	}
}

// TestParallelCheckErrorPropagates forces an encoding error in the check
// stage and verifies the pool surfaces it instead of deadlocking or
// returning a partial report. The VRF id exceeds the checker's 16-bit
// field encoding, which is the only way a check itself can fail.
func TestParallelCheckErrorPropagates(t *testing.T) {
	badRule := scout.Rule{
		Match:  scout.RuleMatch{VRF: 1 << 17, SrcEPG: 1, DstEPG: 2, PortLo: 80, PortHi: 80},
		Action: scout.Allow,
	}
	bySwitch := make(map[scout.ObjectID][]scout.Rule)
	tcamState := make(map[scout.ObjectID][]scout.Rule)
	for sw := scout.ObjectID(1); sw <= 8; sw++ {
		bySwitch[sw] = []scout.Rule{badRule}
		tcamState[sw] = nil
	}
	st := scout.State{
		Deployment: &scout.Deployment{BySwitch: bySwitch},
		TCAM:       tcamState,
	}
	for _, workers := range []int{1, 4} {
		_, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers}).AnalyzeState(st)
		if err == nil {
			t.Fatalf("Workers=%d: expected encoding error, got nil", workers)
		}
		// Which failing switch is reported is scheduler-dependent when
		// several fail at once; the contract is only that the error names
		// a switch.
		if !strings.Contains(err.Error(), "equivalence check switch") {
			t.Errorf("Workers=%d: error should name a failing switch, got: %v", workers, err)
		}
	}
}

// TestWorkersFloor checks that nonsensical worker counts degrade to the
// serial pipeline rather than panicking or spawning nothing.
func TestWorkersFloor(t *testing.T) {
	f := faultyFabric(t, 17)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1})
	got := reportJSON(t, f, scout.AnalyzerOptions{Workers: -3})
	if !bytes.Equal(serial, got) {
		t.Error("Workers=-3 report differs from serial")
	}
}
