package scout_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sort"
	"strings"
	"testing"

	"scout"
)

// faultyFabric builds a seeded multi-switch fabric (the paper's 6-switch
// testbed spec) and injects a deterministic mix of faults so every
// checker path — missing rules, extra rules, partial faults — is
// exercised by the determinism tests.
func faultyFabric(t testing.TB, seed int64) *scout.Fabric {
	t.Helper()
	pol, topo, err := scout.GenerateWorkload(scout.TestbedWorkloadSpec(), seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}

	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	if len(filters) < 2 {
		t.Fatalf("testbed spec produced %d filters, need at least 2", len(filters))
	}
	if _, err := f.InjectObjectFault(scout.FilterRef(filters[0]), 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectObjectFault(scout.FilterRef(filters[1]), 0.5); err != nil {
		t.Fatal(err)
	}

	switches := topo.Switches()
	if _, err := f.EvictTCAM(switches[0], 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CorruptTCAM(switches[len(switches)-1], 2, scout.CorruptDstEPG); err != nil {
		t.Fatal(err)
	}
	return f
}

// reportJSON analyzes the fabric and returns the report serialized with
// the wall-clock field zeroed, so byte comparison sees only pipeline
// output.
func reportJSON(t testing.TB, f *scout.Fabric, opts scout.AnalyzerOptions) []byte {
	t.Helper()
	rep, err := scout.NewAnalyzer(opts).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	rep.Elapsed = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelAnalyzeDeterministic is the regression test for the
// worker-pool pipeline: any worker count must produce a report
// byte-identical to the serial pipeline. At Workers>1 this covers every
// sharded stage — the per-switch check fan-out, the sharded
// controller-model build (merged in ascending switch-ID order), and the
// patch-based parallel controller augmentation — against the fully
// serial Workers=1 run.
func TestParallelAnalyzeDeterministic(t *testing.T) {
	f := faultyFabric(t, 7)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1})

	var probe struct {
		Consistent   bool
		TotalMissing int
	}
	if err := json.Unmarshal(serial, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Consistent || probe.TotalMissing == 0 {
		t.Fatal("fault injection produced a consistent fabric; test is vacuous")
	}

	for _, workers := range []int{2, 3, 4, 8, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers})
		if !bytes.Equal(serial, got) {
			t.Errorf("Workers=%d report differs from serial:\nserial:   %s\nparallel: %s",
				workers, serial, got)
		}
	}
}

// TestSharedBaseIdentity is the identity regression for the frozen
// shared BDD base: analyses through base+fork checkers and through
// private per-worker checkers must produce byte-identical reports at
// worker counts 1, 2, and NumCPU — the base moves encoding work, never
// check results.
func TestSharedBaseIdentity(t *testing.T) {
	f := faultyFabric(t, 7)
	baseline := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1, PrivateCheckers: true})
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		for _, private := range []bool{false, true} {
			got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers, PrivateCheckers: private})
			if !bytes.Equal(baseline, got) {
				t.Errorf("Workers=%d PrivateCheckers=%v report differs from serial private baseline",
					workers, private)
			}
		}
	}
}

// TestSharedBaseEncodeStats pins the observable difference between the
// two checker modes: shared-base runs report the base and resolve warmed
// encodings from it; private runs re-encode everything per worker.
func TestSharedBaseEncodeStats(t *testing.T) {
	f := faultyFabric(t, 7)
	analyze := func(opts scout.AnalyzerOptions) *scout.Report {
		t.Helper()
		rep, err := scout.NewAnalyzer(opts).Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if rep.EncodeStats == nil {
			t.Fatal("BDD-checker analysis must report EncodeStats")
		}
		return rep
	}

	shared := analyze(scout.AnalyzerOptions{Workers: 4}).EncodeStats
	private := analyze(scout.AnalyzerOptions{Workers: 4, PrivateCheckers: true}).EncodeStats

	if shared.BaseNodes == 0 || shared.BaseMatches == 0 {
		t.Errorf("shared mode must build a base: %+v", shared)
	}
	if shared.BaseHits == 0 {
		t.Errorf("shared mode must resolve encodings from the base: %+v", shared)
	}
	if private.BaseNodes != 0 || private.BaseHits != 0 {
		t.Errorf("private mode must not touch a base: %+v", private)
	}
	if private.Misses == 0 {
		t.Errorf("private mode must encode from scratch: %+v", private)
	}
	// The headline claim: with the base, warmed encodings are never
	// re-derived per worker — a shared run's from-scratch encodes are
	// only the novel (corrupted) matches, and its total node
	// construction never exceeds the private mode's. (Strict reduction
	// depends on how the scheduler spreads switches across workers; the
	// sharedbdd experiment measures it on a spec built to show it.)
	if shared.Misses >= private.Misses {
		t.Errorf("shared mode missed %d encodings, private %d — base not consulted",
			shared.Misses, private.Misses)
	}
	// 10% slack: which worker checks which switch is scheduling-
	// dependent, and per-worker fold structure (unlike match encodings)
	// still duplicates across forks.
	if shared.TotalNodes() > private.TotalNodes()+private.TotalNodes()/10 {
		t.Errorf("shared total nodes %d exceed private total %d",
			shared.TotalNodes(), private.TotalNodes())
	}

	// Modes without BDD checkers carry no stats.
	naive, err := scout.NewAnalyzer(scout.AnalyzerOptions{UseNaiveChecker: true}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if naive.EncodeStats != nil {
		t.Error("naive-checker analysis must not report EncodeStats")
	}
}

// TestParallelProbeAnalyzeDeterministic covers the probe-based
// observation source going through the same fan-out machinery.
func TestParallelProbeAnalyzeDeterministic(t *testing.T) {
	f := faultyFabric(t, 11)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1, UseProbes: true})
	for _, workers := range []int{2, 4, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers, UseProbes: true})
		if !bytes.Equal(serial, got) {
			t.Errorf("UseProbes Workers=%d report differs from serial", workers)
		}
	}
}

// TestParallelNaiveCheckerDeterministic covers the ablation checker,
// which shares the pool but ignores the per-worker BDD checker.
func TestParallelNaiveCheckerDeterministic(t *testing.T) {
	f := faultyFabric(t, 13)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1, UseNaiveChecker: true})
	for _, workers := range []int{4, 0} {
		got := reportJSON(t, f, scout.AnalyzerOptions{Workers: workers, UseNaiveChecker: true})
		if !bytes.Equal(serial, got) {
			t.Errorf("UseNaiveChecker Workers=%d report differs from serial", workers)
		}
	}
}

// TestParallelCheckErrorPropagates forces an encoding error in the check
// stage and verifies the pool surfaces it instead of deadlocking or
// returning a partial report. The VRF id exceeds the checker's 16-bit
// field encoding, which is the only way a check itself can fail.
func TestParallelCheckErrorPropagates(t *testing.T) {
	badRule := scout.Rule{
		Match:  scout.RuleMatch{VRF: 1 << 17, SrcEPG: 1, DstEPG: 2, PortLo: 80, PortHi: 80},
		Action: scout.Allow,
	}
	bySwitch := make(map[scout.ObjectID][]scout.Rule)
	tcamState := make(map[scout.ObjectID][]scout.Rule)
	for sw := scout.ObjectID(1); sw <= 8; sw++ {
		bySwitch[sw] = []scout.Rule{badRule}
		tcamState[sw] = nil
	}
	st := scout.State{
		Deployment: &scout.Deployment{BySwitch: bySwitch},
		TCAM:       tcamState,
	}
	for _, workers := range []int{1, 4} {
		_, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers}).AnalyzeState(st)
		if err == nil {
			t.Fatalf("Workers=%d: expected encoding error, got nil", workers)
		}
		// Which failing switch is reported is scheduler-dependent when
		// several fail at once; the contract is only that the error names
		// a switch.
		if !strings.Contains(err.Error(), "equivalence check switch") {
			t.Errorf("Workers=%d: error should name a failing switch, got: %v", workers, err)
		}
	}
}

// TestWorkersFloor checks that nonsensical worker counts degrade to the
// serial pipeline rather than panicking or spawning nothing.
func TestWorkersFloor(t *testing.T) {
	f := faultyFabric(t, 17)
	serial := reportJSON(t, f, scout.AnalyzerOptions{Workers: 1})
	got := reportJSON(t, f, scout.AnalyzerOptions{Workers: -3})
	if !bytes.Equal(serial, got) {
		t.Error("Workers=-3 report differs from serial")
	}
}
