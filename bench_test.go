// Benchmark harness: one benchmark per paper table/figure (§VI), plus the
// DESIGN.md ablations. Each benchmark regenerates its experiment at a
// reduced-but-representative scale so `go test -bench=.` completes in
// minutes; cmd/scout-bench runs the same experiments at paper scale.
//
// The figures' qualitative shapes (who wins, by how much, where curves
// bend) are asserted by the test suite in internal/eval; the benchmarks
// here measure the cost of regenerating each figure and print the headline
// metrics for eyeballing against the paper (recorded in EXPERIMENTS.md).
package scout_test

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"scout"
	"scout/internal/equiv"
	"scout/internal/eval"
	"scout/internal/localize"
	"scout/internal/risk"
	"scout/internal/workload"
)

// benchScale keeps -bench runs affordable; scout-bench uses 1.0.
const benchScale = 0.15

var (
	simEnvOnce sync.Once
	simEnv     *eval.Env
	simEnvErr  error
)

func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	simEnvOnce.Do(func() {
		simEnv, simEnvErr = eval.NewEnv(eval.SimSpec(benchScale), 42)
	})
	if simEnvErr != nil {
		b.Fatal(simEnvErr)
	}
	return simEnv
}

// BenchmarkFigure3 regenerates the object-sharing CDFs (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.Figure3(env)
		if len(res.Series["vrfs"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure7Testbed regenerates the testbed suspect-set-reduction
// panel (Figure 7a): 200 single-object faults, γ per suspect-set bucket.
func BenchmarkFigure7Testbed(b *testing.B) {
	env, err := eval.NewEnv(workload.TestbedSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SuspectSetReduction(env, eval.GammaOptions{
			Faults:  200,
			Buckets: [][2]int{{1, 10}, {10, 20}, {20, 40}, {40, 60}},
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFigure7Sim regenerates the simulation panel (Figure 7b) at
// reduced fault count per iteration.
func BenchmarkFigure7Sim(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SuspectSetReduction(env, eval.GammaOptions{
			Faults:  150,
			Buckets: [][2]int{{1, 10}, {10, 50}, {50, 100}, {100, 500}, {500, 1000}},
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFigure8 regenerates the switch-risk-model accuracy comparison
// (Figure 8): SCOUT vs SCORE-0.6 vs SCORE-1 over 1..10 faults.
func BenchmarkFigure8(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.SwitchModelAccuracy(env, eval.AccuracyOptions{
			MaxFaults: 10, Runs: 5, Noise: 5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportHeadline(b, res)
	}
}

// BenchmarkFigure9 regenerates the controller-risk-model accuracy
// comparison (Figure 9).
func BenchmarkFigure9(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.ControllerModelAccuracy(env, eval.AccuracyOptions{
			MaxFaults: 10, Runs: 5, Noise: 5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportHeadline(b, res)
	}
}

// BenchmarkFigure10 regenerates the end-to-end testbed comparison
// (Figure 10): full pipeline per run (fabric, TCAM faults, BDD check,
// augmentation, localization).
func BenchmarkFigure10(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.TestbedAccuracy(workload.TestbedSpec(), eval.TestbedOptions{
			MaxFaults: 5, Runs: 3, Noise: 3, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportHeadline(b, res)
	}
}

// BenchmarkScalability measures controller-model build + SCOUT runtime at
// growing switch counts (§VI-B; the paper reports ~45 s at 200 switches
// and ~130 s at 500 on a 4-core 2.6 GHz machine).
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Scalability([]int{10, 25, 50}, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.LocalizeSecs, "localize-s@50sw")
		b.ReportMetric(float64(last.Elements), "elements@50sw")
	}
}

// BenchmarkAblationNoChangeLog quantifies the recall the change-log stage
// buys (DESIGN.md §5): SCOUT stage 1 alone vs the full algorithm.
func BenchmarkAblationNoChangeLog(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.ControllerModelAccuracy(env, eval.AccuracyOptions{
			MaxFaults:  5,
			Runs:       5,
			Noise:      5,
			Seed:       int64(i),
			Algorithms: []eval.Algorithm{eval.StandardAlgorithms()[0], eval.ScoutNoChangeLog()},
		})
		if err != nil {
			b.Fatal(err)
		}
		full, _ := res.Curve("SCOUT")
		ablated, _ := res.Curve("SCOUT-nolog")
		b.ReportMetric(full.MeanRecall()-ablated.MeanRecall(), "recall-gain")
	}
}

// BenchmarkScoutAlgorithm measures the raw localization algorithm on a
// pre-annotated controller model (the §VI-B scalability kernel).
func BenchmarkScoutAlgorithm(b *testing.B) {
	env := benchEnv(b)
	model, changed := annotatedModel(b, env, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := localize.Scout(model, localize.SetOracle(changed))
		if len(res.Hypothesis) == 0 {
			b.Fatal("no hypothesis")
		}
	}
}

// BenchmarkScoreAlgorithm measures the SCORE baseline on the same model.
func BenchmarkScoreAlgorithm(b *testing.B) {
	env := benchEnv(b)
	model, _ := annotatedModel(b, env, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localize.Score(model, 1.0)
	}
}

func annotatedModel(b *testing.B, env *eval.Env, faults int) (*risk.Model, map[scout.ObjectRef]struct{}) {
	b.Helper()
	model := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	rng := newRand(7)
	sc, err := workload.NewScenario(rng, env.Index.Objects(), faults, 5)
	if err != nil {
		b.Fatal(err)
	}
	workload.ApplyToControllerModel(model, env.Deployment, env.Index, sc, rng)
	return model, sc.Changed
}

// BenchmarkControllerModelBuild measures risk-model construction, the
// dominant cost at large switch counts.
func BenchmarkControllerModelBuild(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})
		if m.NumElements() == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkCompile measures policy compilation into per-switch L-type
// rules.
func BenchmarkCompile(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compileEnv(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndAnalyze measures the full public-API pipeline on the
// 3-tier example with one injected fault (the quickstart path).
func BenchmarkEndToEndAnalyze(b *testing.B) {
	pol := threeTierPolicy()
	topo := scout.TopologyFromPolicy(pol)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Deploy(); err != nil {
			b.Fatal(err)
		}
		if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := scout.NewAnalyzer().Analyze(f)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Consistent {
			b.Fatal("fault not detected")
		}
	}
}

// BenchmarkAnalyzeWorkers measures the end-to-end analyzer at varying
// worker counts on a multi-switch faulty fabric, in both checker modes:
// "shared" forks every worker checker off the frozen shared encoding
// base (the default), "private" gives each worker a from-scratch checker
// (the pre-shared-base behaviour). workers=1 is the historical serial
// pipeline; higher counts shard the per-switch equivalence checks across
// the pool (wall-clock speedup is bounded by GOMAXPROCS — on single-core
// machines compare the bdd-nodes/op metric instead, which counts total
// node construction and is scheduler-independent on the private side's
// duplication).
func BenchmarkAnalyzeWorkers(b *testing.B) {
	spec := scout.ProductionWorkloadSpec()
	spec.EPGs = 200
	spec.Contracts = 120
	spec.Filters = 60
	spec.TargetPairs = 2000
	spec.Switches = 16
	// Pin each EPG to one switch (the paper's §VI-B scaling methodology:
	// growth adds EPG-and-switch pairs). Per-switch rule sets then barely
	// overlap, so sharding duplicates little BDD encoding work and the
	// speedup tracks GOMAXPROCS instead of memo loss.
	spec.SwitchesPerEPGMax = 1
	pol, topo, err := scout.GenerateWorkload(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		b.Fatal(err)
	}
	for _, bind := range pol.Bindings[:3] {
		if _, err := f.InjectObjectFault(scout.ContractRef(bind.Contract), 1.0); err != nil {
			b.Fatal(err)
		}
	}
	st := scout.State{
		Deployment: f.Deployment(),
		TCAM:       f.CollectAll(),
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}
	for _, mode := range []struct {
		name    string
		private bool
	}{{"shared", false}, {"private", true}} {
		for _, workers := range []int{1, 2, 4, 8, 0} {
			name := fmt.Sprintf("%s/workers=%d", mode.name, workers)
			if workers == 0 {
				name = mode.name + "/workers=NumCPU"
			}
			b.Run(name, func(b *testing.B) {
				a := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers, PrivateCheckers: mode.private})
				var nodes int
				for i := 0; i < b.N; i++ {
					rep, err := a.AnalyzeState(st)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Consistent {
						b.Fatal("faults not detected")
					}
					nodes = rep.EncodeStats.TotalNodes()
				}
				b.ReportMetric(float64(nodes), "bdd-nodes/op")
			})
		}
	}
}

// BenchmarkSessionIncremental measures warm delta re-verification against
// cold full analysis on the production-like spec (the same scaled
// production dataset every other benchmark uses; cmd/scout-bench
// -experiment incremental runs it at paper scale). Each iteration touches
// exactly one switch's TCAM: the cold path re-analyzes the whole fabric,
// the warm path re-checks only the touched switch and replays cached
// reports for the rest. The TCAM capacity is raised so the baseline
// deploys cleanly and the comparison isolates the check-stage savings.
func BenchmarkSessionIncremental(b *testing.B) {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	newFabric := func(b *testing.B) *scout.Fabric {
		f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 42, TCAMCapacity: 1 << 17})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Deploy(); err != nil {
			b.Fatal(err)
		}
		return f
	}
	// toggle alternates removing and re-installing one switch's
	// highest-priority rule, so every iteration dirties exactly one switch.
	makeToggle := func(b *testing.B, f *scout.Fabric) func(i int) {
		sw := topo.Switches()[0]
		s, err := f.Switch(sw)
		if err != nil {
			b.Fatal(err)
		}
		rules, err := f.CollectTCAM(sw)
		if err != nil || len(rules) == 0 {
			b.Fatalf("no rules on switch %d: %v", sw, err)
		}
		target := rules[0]
		return func(i int) {
			if i%2 == 0 {
				if !s.TCAM().Remove(target.Key()) {
					b.Fatal("toggle remove failed")
				}
				return
			}
			if err := s.TCAM().Install(target); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		f := newFabric(b)
		toggle := makeToggle(b, f)
		a := scout.NewAnalyzer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(i)
			if _, err := a.Analyze(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		f := newFabric(b)
		toggle := makeToggle(b, f)
		sess, err := scout.NewSession(f)
		if err != nil {
			b.Fatal(err)
		}
		collector := scout.NewCollector(f, 2)
		if _, err := sess.AnalyzeEpoch(collector.Snapshot()); err != nil {
			b.Fatal(err) // warm-up: populate the per-switch cache
		}
		var es *equiv.EncodeStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(i)
			rep, err := sess.AnalyzeEpoch(collector.Snapshot())
			if err != nil {
				b.Fatal(err)
			}
			es = rep.EncodeStats
		}
		b.StopTimer()
		st := sess.Stats()
		if st.Runs > 1 {
			b.ReportMetric(float64(st.Checked-len(topo.Switches()))/float64(st.Runs-1), "switches-rechecked/op")
		}
		// The checkers are long-lived, so EncodeStats counters are
		// cumulative over the session: report per-op deltas and the
		// overall op-cache hit rate of the new tiered tables.
		if es != nil {
			b.ReportMetric(float64(es.DeltaNodes)/float64(b.N), "delta-nodes/op")
			if lookups := es.OpCache.Hits() + es.OpCache.Misses; lookups > 0 {
				b.ReportMetric(100*float64(es.OpCache.Hits())/float64(lookups), "cache-hit-%")
			}
		}
	})
}

// BenchmarkSessionProbeWarm measures the probe-mode replay payoff on a
// clean fabric: the cold path classifies every switch's probe batch
// each round, the warm path fingerprints the TCAMs and replays every
// cached verdict without a single Classify call.
func BenchmarkSessionProbeWarm(b *testing.B) {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	newFabric := func(b *testing.B) *scout.Fabric {
		f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 42, TCAMCapacity: 1 << 17})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Deploy(); err != nil {
			b.Fatal(err)
		}
		return f
	}
	opts := scout.AnalyzerOptions{UseProbes: true}

	b.Run("cold", func(b *testing.B) {
		f := newFabric(b)
		a := scout.NewAnalyzer(opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Analyze(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		f := newFabric(b)
		sess, err := scout.NewSession(f, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Analyze(); err != nil {
			b.Fatal(err) // warm-up: populate the probe cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Analyze(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sess.Stats()
		if st.Runs > 1 {
			b.ReportMetric(float64(st.ProbeSwitchesClassified-len(topo.Switches()))/float64(st.Runs-1),
				"switches-classified/op")
		}
	})
}

// BenchmarkSessionEventStorm measures the payoff of coalescing an event
// storm: K events over S switches analyzed once per event (a full
// snapshot + incremental round each) versus drained through the
// coalescing queue into one batch and a single partial refresh that
// re-reads only the S distinct switches. The toggles restore each
// switch's TCAM every iteration so state stays bounded across b.N.
func BenchmarkSessionEventStorm(b *testing.B) {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	const stormSwitches = 4
	const eventsPerSwitch = 4
	if len(topo.Switches()) < stormSwitches {
		b.Fatalf("spec has %d switches, need %d", len(topo.Switches()), stormSwitches)
	}
	newFabric := func(b *testing.B) *scout.Fabric {
		f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 42, TCAMCapacity: 1 << 17})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Deploy(); err != nil {
			b.Fatal(err)
		}
		return f
	}
	type toggler struct {
		sw   scout.ObjectID
		flip func(phase int)
	}
	makeTogglers := func(b *testing.B, f *scout.Fabric) []toggler {
		out := make([]toggler, 0, stormSwitches)
		for _, sw := range topo.Switches()[:stormSwitches] {
			s, err := f.Switch(sw)
			if err != nil {
				b.Fatal(err)
			}
			rules, err := f.CollectTCAM(sw)
			if err != nil || len(rules) == 0 {
				b.Fatalf("no rules on switch %d: %v", sw, err)
			}
			target := rules[0]
			out = append(out, toggler{sw: sw, flip: func(phase int) {
				if phase%2 == 0 {
					if !s.TCAM().Remove(target.Key()) {
						b.Fatal("toggle remove failed")
					}
					return
				}
				if err := s.TCAM().Install(target); err != nil {
					b.Fatal(err)
				}
			}})
		}
		return out
	}

	b.Run("per-event", func(b *testing.B) {
		f := newFabric(b)
		togglers := makeTogglers(b, f)
		sess, err := scout.NewSession(f)
		if err != nil {
			b.Fatal(err)
		}
		collector := scout.NewCollector(f, 2)
		if _, err := sess.AnalyzeEpoch(collector.Snapshot()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for e := 0; e < stormSwitches*eventsPerSwitch; e++ {
				togglers[e%stormSwitches].flip(e / stormSwitches)
				if _, err := sess.AnalyzeEpoch(collector.Snapshot()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		f := newFabric(b)
		togglers := makeTogglers(b, f)
		sess, err := scout.NewSession(f)
		if err != nil {
			b.Fatal(err)
		}
		queue := scout.NewEventQueue(scout.EventQueueOptions{Cap: 64})
		events := f.EventLog()
		if _, err := sess.ApplyEvents(scout.EventBatch{}); err != nil {
			b.Fatal(err) // baseline: full collection anchors the session
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for e := 0; e < stormSwitches*eventsPerSwitch; e++ {
				tg := togglers[e%stormSwitches]
				tg.flip(e / stormSwitches)
				queue.Push(events.Append(f.Now(), scout.EventTCAMChange, tg.sw, "storm"))
			}
			if _, err := sess.ApplyEvents(queue.Cut(f.Now())); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := sess.Stats(); st.EventBatches > 0 {
			b.ReportMetric(float64(st.EventSwitchesRead)/float64(st.EventBatches), "switches-read/batch")
		}
	})
}

// BenchmarkEquivBDD and BenchmarkEquivNaive compare the exact ROBDD
// checker against the key-set differ (DESIGN.md ablation: the naive
// differ is faster but blind to semantic overlap).
func BenchmarkEquivBDD(b *testing.B) {
	benchEquiv(b, false)
}

// BenchmarkEquivNaive is the naive key-set counterpart of
// BenchmarkEquivBDD.
func BenchmarkEquivNaive(b *testing.B) {
	benchEquiv(b, true)
}

func reportHeadline(b *testing.B, res *eval.AccuracyResult) {
	b.Helper()
	scoutCurve, ok := res.Curve("SCOUT")
	if !ok {
		b.Fatal("missing SCOUT curve")
	}
	b.ReportMetric(scoutCurve.MeanRecall(), "scout-recall")
	b.ReportMetric(scoutCurve.MeanPrecision(), "scout-precision")
	if score, ok := res.Curve("SCORE-1"); ok {
		b.ReportMetric(score.MeanRecall(), "score1-recall")
	}
}

// BenchmarkWarmSetupOverlayVsClone measures the per-run setup cost a warm
// session pays before localization: the historical deep Model.Clone() of
// the cached pristine controller model (O(model size)) against stacking a
// copy-on-write overlay (O(1); marks are then O(dirty failures)).
func BenchmarkWarmSetupOverlayVsClone(b *testing.B) {
	env := benchEnv(b)
	pristine := risk.BuildControllerModel(env.Deployment, risk.ControllerModelOptions{IncludeSwitchRisk: true})
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pristine.Clone().NumElements() == 0 {
				b.Fatal("empty clone")
			}
		}
	})
	b.Run("overlay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if risk.NewOverlay(pristine).NumElements() == 0 {
				b.Fatal("empty overlay")
			}
		}
	})
}

// BenchmarkControllerModelBuildWorkers measures the sharded
// controller-model build at varying worker counts (the speedup is bounded
// by GOMAXPROCS; at one core the sharded runs only pay the merge pass).
func BenchmarkControllerModelBuildWorkers(b *testing.B) {
	env := benchEnv(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := risk.BuildControllerModelParallel(env.Deployment,
					risk.ControllerModelOptions{IncludeSwitchRisk: true}, workers)
				if m.NumElements() == 0 {
					b.Fatal("empty model")
				}
			}
		})
	}
}

// warmBenchFabric builds the standard benchmark fabric with a small
// fault so warm-state benchmarks exercise non-trivial verdicts.
func warmBenchFabric(b *testing.B) *scout.Fabric {
	b.Helper()
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(benchScale), 42)
	if err != nil {
		b.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 42, TCAMCapacity: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		b.Fatal(err)
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	if _, err := f.InjectObjectFault(scout.FilterRef(filters[0]), 1.0); err != nil {
		b.Fatal(err)
	}
	return f
}

// warmStateBytes sums the on-disk size of a warm-state directory.
func warmStateBytes(b *testing.B, dir string) int64 {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, ent := range entries {
		info, err := ent.Info()
		if err != nil {
			b.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// BenchmarkWarmStartVsCold measures the tentpole's payoff: the first
// analysis of a fresh process with a populated warm-state store (load
// base + verdicts, replay everything) against the same first analysis
// cold (build the base, check every switch). bytes/op reports the state
// read off disk per warm start; bdd-nodes/op the nodes constructed per
// run — cold rebuilds them all, warm rebuilds none.
func BenchmarkWarmStartVsCold(b *testing.B) {
	f := warmBenchFabric(b)
	dir := b.TempDir()
	seedStore, err := scout.OpenWarmStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := scout.NewSession(f, scout.AnalyzerOptions{WarmStore: seedStore})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		b.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		b.Fatal(err)
	}
	if err := seedStore.Close(); err != nil {
		b.Fatal(err)
	}
	stateBytes := warmStateBytes(b, dir)

	b.Run("cold", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			sess, err := scout.NewSession(f)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sess.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			nodes = rep.EncodeStats.TotalNodes()
		}
		b.ReportMetric(float64(nodes), "bdd-nodes/op")
	})
	b.Run("warm", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			ws, err := scout.OpenWarmStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			sess, err := scout.NewSession(f, scout.AnalyzerOptions{WarmStore: ws})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sess.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			if st := sess.Stats(); st.BaseLoads != 1 || st.Checked != 0 {
				b.Fatalf("warm start not warm: %+v", st)
			}
			// The loaded base is frozen state, not constructed nodes; only
			// checker deltas (zero on a clean replay) are built per run.
			nodes = rep.EncodeStats.DeltaNodes
			if err := ws.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nodes), "bdd-nodes/op")
		b.ReportMetric(float64(stateBytes), "bytes/op")
	})
}

// BenchmarkStoreRoundTrip measures the store codec under the write-behind
// store: persisting the benchmark deployment's frozen base (encode +
// atomic publish) and restoring it (verify + rebuild the open-addressed
// unique table). bytes/op is the base file size, bdd-nodes/op the frozen
// nodes carried per operation.
func BenchmarkStoreRoundTrip(b *testing.B) {
	f := warmBenchFabric(b)
	dir := b.TempDir()
	ws, err := scout.OpenWarmStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ws.Close()
	sess, err := scout.NewSession(f, scout.AnalyzerOptions{WarmStore: ws})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		b.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		b.Fatal(err)
	}
	fp := equiv.DeploymentFingerprint(f.Deployment().BySwitch)
	base, err := ws.LoadBase(fp)
	if err != nil || base == nil {
		b.Fatalf("seed base missing: %v", err)
	}
	nodes, fileBytes := float64(base.Size()), float64(warmStateBytes(b, dir))

	b.Run("save", func(b *testing.B) {
		b.SetBytes(int64(fileBytes))
		for i := 0; i < b.N; i++ {
			ws.SaveBase(fp, base)
			if err := ws.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(nodes, "bdd-nodes/op")
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(fileBytes))
		for i := 0; i < b.N; i++ {
			got, err := ws.LoadBase(fp)
			if err != nil || got == nil {
				b.Fatalf("LoadBase: %v", err)
			}
		}
		b.ReportMetric(nodes, "bdd-nodes/op")
	})
}
