package scout_test

import (
	"math/rand"
	"testing"

	"scout"
	"scout/internal/compile"
	"scout/internal/equiv"
	"scout/internal/eval"
	"scout/internal/rule"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func compileEnv(env *eval.Env) (*compile.Deployment, error) {
	return compile.Compile(env.Policy, env.Topo)
}

// threeTierPolicy builds the paper's Figure 1 example through the public
// API.
func threeTierPolicy() *scout.Policy {
	p := scout.NewPolicy("three-tier")
	p.AddVRF(scout.VRF{ID: 101, Name: "vrf-101"})
	p.AddEPG(scout.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(scout.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(scout.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(scout.Endpoint{ID: 11, Name: "EP1", EPG: 1, Switch: 1})
	p.AddEndpoint(scout.Endpoint{ID: 12, Name: "EP2", EPG: 2, Switch: 2})
	p.AddEndpoint(scout.Endpoint{ID: 13, Name: "EP3", EPG: 3, Switch: 3})
	p.AddFilter(scout.Filter{ID: 80, Name: "port-80", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 80),
	}})
	p.AddFilter(scout.Filter{ID: 700, Name: "port-700", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 700),
	}})
	p.AddContract(scout.Contract{ID: 201, Name: "Web-App", Filters: []scout.ObjectID{80}})
	p.AddContract(scout.Contract{ID: 202, Name: "App-DB", Filters: []scout.ObjectID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	return p
}

// benchEquiv measures one L-T check of the busiest switch's rules against
// a degraded copy (5% of rules removed).
func benchEquiv(b *testing.B, naive bool) {
	b.Helper()
	env := benchEnv(b)

	// Busiest switch by rule count.
	var logical []rule.Rule
	for _, sw := range env.Topo.Switches() {
		if rules := env.Deployment.RulesFor(sw); len(rules) > len(logical) {
			logical = rules
		}
	}
	if len(logical) == 0 {
		b.Fatal("no rules")
	}
	rng := newRand(3)
	deployed := make([]rule.Rule, 0, len(logical))
	for _, r := range logical {
		if !r.IsDefaultDeny() && rng.Intn(20) == 0 {
			continue // ~5% missing
		}
		deployed = append(deployed, r)
	}
	b.ReportMetric(float64(len(logical)), "rules")

	b.ResetTimer()
	if naive {
		for i := 0; i < b.N; i++ {
			rep := equiv.NaiveCheck(logical, deployed)
			if rep.Equivalent {
				b.Fatal("degraded copy must differ")
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		checker := equiv.NewChecker()
		rep, err := checker.Check(logical, deployed)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Equivalent {
			b.Fatal("degraded copy must differ")
		}
	}
}
