package scout

// This file re-exports the domain types and constructors downstream users
// need to drive the pipeline, so the whole system is usable through the
// single public package while implementations stay in internal/.

import (
	"scout/internal/collect"
	"scout/internal/compile"
	"scout/internal/correlate"
	"scout/internal/fabric"
	"scout/internal/faultlog"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/policy"
	"scout/internal/probe"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/scenario"
	"scout/internal/store"
	"scout/internal/stream"
	"scout/internal/tcam"
	"scout/internal/topo"
	"scout/internal/workload"
)

// Object identity.
type (
	// ObjectRef uniquely names a policy or physical object.
	ObjectRef = object.Ref
	// ObjectID is the numeric identity of an object within its kind.
	ObjectID = object.ID
	// ObjectKind enumerates object kinds (VRF, EPG, contract, filter,
	// switch).
	ObjectKind = object.Kind
)

// Object kinds.
const (
	KindVRF      = object.KindVRF
	KindEPG      = object.KindEPG
	KindContract = object.KindContract
	KindFilter   = object.KindFilter
	KindSwitch   = object.KindSwitch
)

// Object reference constructors.
var (
	// VRFRef names a VRF object.
	VRFRef = object.VRF
	// EPGRef names an endpoint-group object.
	EPGRef = object.EPG
	// ContractRef names a contract object.
	ContractRef = object.Contract
	// FilterRef names a filter object.
	FilterRef = object.Filter
	// SwitchRef names a physical switch.
	SwitchRef = object.Switch
	// ParseObjectRef parses "kind:id" strings.
	ParseObjectRef = object.ParseRef
)

// Policy model.
type (
	// Policy is a complete tenant network policy (desired state).
	Policy = policy.Policy
	// VRF is a virtual-routing-and-forwarding scope object.
	VRF = policy.VRF
	// EPG is an endpoint group.
	EPG = policy.EPG
	// Endpoint is a workload attached to a leaf switch.
	Endpoint = policy.Endpoint
	// Filter is a reusable set of traffic classification entries.
	Filter = policy.Filter
	// FilterEntry is one (protocol, port range, action) clause.
	FilterEntry = policy.FilterEntry
	// Contract glues EPG pairs to filters.
	Contract = policy.Contract
	// Binding attaches a contract to an EPG pair.
	Binding = policy.Binding
	// EPGPair is an unordered pair of EPG IDs.
	EPGPair = policy.EPGPair
)

var (
	// NewPolicy returns an empty policy.
	NewPolicy = policy.New
	// PolicyFromJSON decodes and validates a serialized policy.
	PolicyFromJSON = policy.FromJSON
	// PortEntry builds a single-port allow filter entry.
	PortEntry = policy.PortEntry
	// MakeEPGPair canonicalizes an EPG pair.
	MakeEPGPair = policy.MakeEPGPair
)

// Rules.
type (
	// Rule is a prioritized access-control entry (logical or TCAM).
	Rule = rule.Rule
	// RuleMatch is the matching half of a rule.
	RuleMatch = rule.Match
	// RuleAction is allow or deny.
	RuleAction = rule.Action
	// RuleKey is a rule's behavioural identity (match + action).
	RuleKey = rule.Key
	// Protocol is an IP protocol number.
	Protocol = rule.Protocol
	// SwitchPair identifies an EPG pair deployed on a specific switch —
	// the per-switch key of a Deployment's PairRules index.
	SwitchPair = compile.SwitchPair
)

// Rule actions and common protocols.
const (
	Allow     = rule.Allow
	Deny      = rule.Deny
	ProtoAny  = rule.ProtoAny
	ProtoICMP = rule.ProtoICMP
	ProtoTCP  = rule.ProtoTCP
	ProtoUDP  = rule.ProtoUDP
)

// Topology.
type (
	// Topology is the leaf-switch attachment view.
	Topology = topo.Topology
)

var (
	// NewTopology creates a topology with the given switches.
	NewTopology = topo.New
	// TopologyFromPolicy derives the topology from endpoint placements.
	TopologyFromPolicy = topo.FromPolicy
)

// Fabric simulation.
type (
	// Fabric simulates controller, switch agents, and TCAMs.
	Fabric = fabric.Fabric
	// FabricOptions configures a fabric.
	FabricOptions = fabric.Options
	// CorruptionField selects the TCAM field a corruption event flips.
	CorruptionField = tcam.CorruptionField
)

// TCAM corruption fields.
const (
	CorruptVRF    = tcam.CorruptVRF
	CorruptSrcEPG = tcam.CorruptSrcEPG
	CorruptDstEPG = tcam.CorruptDstEPG
	CorruptPort   = tcam.CorruptPort
)

// NewFabric creates a deployment fabric for the policy and topology.
var NewFabric = fabric.New

// Dataplane classification and probing.
type (
	// ClassifyPacket is one classification query against a TCAM — the
	// header tuple Classify takes, reified for batch classification.
	ClassifyPacket = tcam.Packet
	// ClassifyOutcome is the result of classifying one packet of a
	// batch (action + whether any rule matched).
	ClassifyOutcome = tcam.Outcome
	// ProbeClassifier is the dataplane surface a probe needs:
	// first-match classification.
	ProbeClassifier = probe.Classifier
	// ProbeBatchClassifier is a ProbeClassifier that resolves a whole
	// packet batch in one rule-major pass (TCAMs implement it).
	ProbeBatchClassifier = probe.BatchClassifier
	// ProbePacket is one synthesized probe header.
	ProbePacket = probe.Packet
	// ProbeViolation is one probe outcome contradicting the policy.
	ProbeViolation = probe.Violation
	// ProberStats is a snapshot of a prober's packet-memo and
	// batch-classification counters (Analyzer.ProberStats /
	// Session.ProberStats).
	ProberStats = probe.Stats
)

// Logs.
type (
	// ChangeLog is the controller's policy change log.
	ChangeLog = faultlog.ChangeLog
	// FaultLog is the device fault log.
	FaultLog = faultlog.FaultLog
	// FaultCode identifies a physical fault class.
	FaultCode = faultlog.FaultCode
)

// Dataplane event streaming.
type (
	// Event is one switch-scoped dataplane event (TCAM change, link
	// transition, EPG placement change).
	Event = faultlog.Event
	// EventKind classifies a dataplane event.
	EventKind = faultlog.EventKind
	// EventStream is the append-only dataplane event stream collectors
	// and watch loops tail.
	EventStream = faultlog.EventLog
	// EventCursor is a stateful consumer position over an EventStream.
	EventCursor = faultlog.Cursor
	// EventQueue coalesces switch-scoped events into bounded batches
	// (per-switch dedupe, size/deadline cuts, overflow-to-coalesce).
	EventQueue = stream.Queue
	// EventQueueOptions configures an EventQueue.
	EventQueueOptions = stream.Options
	// EventQueueStats counts an EventQueue's coalescing behaviour.
	EventQueueStats = stream.Stats
	// EventBatch is one coalesced unit of refresh work cut from an
	// EventQueue, the input of Session.ApplyEvents.
	EventBatch = stream.Batch
)

// Event kinds.
const (
	EventTCAMChange = faultlog.EventTCAMChange
	EventLink       = faultlog.EventLink
	EventEPG        = faultlog.EventEPG
)

var (
	// NewEventStream returns an empty dataplane event stream (production
	// users feeding their own monitoring plane into a session).
	NewEventStream = faultlog.NewEventLog
	// NewEventQueue creates a coalescing event queue.
	NewEventQueue = stream.New
)

// Fault codes.
const (
	FaultTCAMOverflow      = faultlog.FaultTCAMOverflow
	FaultSwitchUnreachable = faultlog.FaultSwitchUnreachable
	FaultAgentCrash        = faultlog.FaultAgentCrash
	FaultControlChannel    = faultlog.FaultControlChannel
	FaultTCAMCorruption    = faultlog.FaultTCAMCorruption
)

// Risk models and localization.
type (
	// RiskModel is a bipartite shared-risk model.
	RiskModel = risk.Model
	// RiskView is the read interface over an annotated risk model; a
	// mutable model and a copy-on-write overlay are interchangeable
	// behind it.
	RiskView = risk.View
	// RiskMarker is a RiskView that accepts failure annotation.
	RiskMarker = risk.Marker
	// RiskOverlay is a copy-on-write failure overlay over an immutable
	// pristine risk model.
	RiskOverlay = risk.Overlay
	// ControllerModelOptions configures controller-model construction.
	ControllerModelOptions = risk.ControllerModelOptions
	// Deployment is the compiled per-switch logical rule set.
	Deployment = compile.Deployment
	// LocalizationResult is the output of SCOUT or SCORE.
	LocalizationResult = localize.Result
	// ChangeOracle answers "was this object recently changed?".
	ChangeOracle = localize.ChangeOracle
	// ChangeLogOracle adapts a controller change log as a ChangeOracle.
	ChangeLogOracle = localize.ChangeLogOracle
	// NoChanges is an oracle that never reports changes.
	NoChanges = localize.NoChanges
)

var (
	// BuildSwitchRiskModel builds the per-switch risk model.
	BuildSwitchRiskModel = risk.BuildSwitchModel
	// BuildControllerRiskModel builds the fabric-wide risk model.
	BuildControllerRiskModel = risk.BuildControllerModel
	// BuildControllerRiskModelParallel builds the fabric-wide risk model
	// sharded by switch over a worker pool, with a deterministic
	// ascending-switch-ID merge (identical output at any worker count).
	BuildControllerRiskModelParallel = risk.BuildControllerModelParallel
	// NewRiskOverlay stacks a fresh copy-on-write failure overlay on a
	// pristine risk model (which must not be mutated afterwards).
	NewRiskOverlay = risk.NewOverlay
	// WriteRiskDOT renders any risk view as a Graphviz digraph.
	WriteRiskDOT = risk.WriteDOT
	// AugmentSwitchRiskModel marks failures from missing rules in a
	// switch risk model.
	AugmentSwitchRiskModel = risk.AugmentSwitchModel
	// AugmentControllerRiskModel marks failures from a switch's missing
	// rules in the controller risk model.
	AugmentControllerRiskModel = risk.AugmentControllerModel
	// Localize runs the SCOUT algorithm on an annotated risk model.
	Localize = localize.Scout
	// LocalizeSCORE runs the SCORE baseline with a hit-ratio threshold.
	LocalizeSCORE = localize.Score
	// LocalizeMaxCoverage runs the unconstrained greedy set-cover
	// baseline (maximum recall, poor precision).
	LocalizeMaxCoverage = localize.MaxCoverage
)

// Workload synthesis (the paper's §VI-A datasets).
type (
	// WorkloadSpec parameterizes synthetic policy generation.
	WorkloadSpec = workload.Spec
)

var (
	// GenerateWorkload synthesizes a policy and topology from a spec.
	GenerateWorkload = workload.Generate
	// ProductionWorkloadSpec mirrors the paper's production cluster.
	ProductionWorkloadSpec = workload.ProductionSpec
	// TestbedWorkloadSpec mirrors the paper's hardware testbed policy.
	TestbedWorkloadSpec = workload.TestbedSpec
	// SmallFabricWorkloadSpec is a small deployment with production-like
	// density (use instead of linearly shrinking the production spec).
	SmallFabricWorkloadSpec = workload.SmallFabricSpec
)

// State collection.
type (
	// Collector snapshots fabric TCAM state into bounded epoch history.
	Collector = collect.Collector
	// Epoch is one immutable TCAM collection.
	Epoch = collect.Epoch
	// SwitchDelta is a per-switch rule difference between epochs.
	SwitchDelta = collect.SwitchDelta
	// CollectorStats counts a collector's full/partial snapshot work.
	CollectorStats = collect.Stats
)

var (
	// NewCollector creates a collector over a fabric.
	NewCollector = collect.New
	// DiffEpochs compares two epochs switch by switch.
	DiffEpochs = collect.Diff
	// DirtyEpochSwitches lists the switches whose rules differ between two
	// epochs — the invalidation input for incremental re-verification.
	DirtyEpochSwitches = collect.DirtySwitches
)

// Scenario scripting.
type (
	// Scenario is a declarative, replayable fault scenario.
	Scenario = scenario.Scenario
	// ScenarioStep is one scenario action.
	ScenarioStep = scenario.Step
	// ScenarioResult summarizes a scenario run.
	ScenarioResult = scenario.Result
)

// ParseScenario decodes and validates a JSON scenario.
var ParseScenario = scenario.Parse

// Durable warm state (cross-restart and cross-deployment BDD reuse).
type (
	// WarmStore is the content-addressed, write-behind warm-state store:
	// frozen encoding bases and per-switch verdicts persisted under
	// deployment fingerprints, restored by Sessions on construction
	// (AnalyzerOptions.WarmStore).
	WarmStore = store.Store
	// BaseRegistry shares frozen whole-switch semantics BDDs across every
	// analyzer and session handed the same registry
	// (AnalyzerOptions.BaseRegistry).
	BaseRegistry = store.BaseRegistry
	// BaseRegistryStats is a BaseRegistry counter snapshot.
	BaseRegistryStats = store.RegistryStats
	// StoreVerdict is one persisted per-switch check verdict.
	StoreVerdict = store.Verdict
	// StoreGCStats summarizes one warm-store garbage-collection pass.
	StoreGCStats = store.GCStats
)

var (
	// OpenWarmStore opens (creating if needed) a warm-state store
	// directory and starts its write-behind goroutine.
	OpenWarmStore = store.Open
	// NewBaseRegistry creates an empty cross-deployment semantics
	// registry.
	NewBaseRegistry = store.NewBaseRegistry
)

// Correlation.
type (
	// CorrelationReport ranks physical root causes for a hypothesis.
	CorrelationReport = correlate.Report
	// FaultSignature describes a known physical fault class.
	FaultSignature = correlate.Signature
)

// DefaultFaultSignatures returns the built-in fault signatures.
var DefaultFaultSignatures = correlate.DefaultSignatures
