package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 25,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 25 || got[2] != 50 {
		t.Errorf("parseInts = %v, want [10 25 50]", got)
	}
	if _, err := parseInts("10,abc"); err == nil {
		t.Error("bad count must fail")
	}
}

// TestRunParallelSmoke runs the serial-vs-parallel experiment on a tiny
// workload: it exercises the full analyzer pipeline at two worker counts
// and enforces the byte-identical-report contract.
func TestRunParallelSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "parallel", scale: 0.05, seed: 3, workers: 2}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"serial", "workers=2", "speedup", "reports byte-identical: true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunIncrementalSmoke runs the session experiment on a tiny workload:
// a cold session run, a one-switch touch, a warm delta run, and the
// byte-identical replay contract against the cold analyzer.
func TestRunIncrementalSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "incremental", scale: 0.05, seed: 3, workers: 2}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"cold session run", "warm delta run (1/", "speedup", "reports byte-identical: true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunScaleSmoke runs the scalability sweep at a toy switch count, the
// cheapest experiment that still spans workload generation, compilation,
// risk-model build, and localization.
func TestRunScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is seconds-scale")
	}
	var out bytes.Buffer
	cfg := config{experiment: "scale", scale: 0.05, seed: 3, switchList: "4"}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Scalability") {
		t.Errorf("output missing scalability header:\n%s", out.String())
	}
}

// TestRunRejectsUnknownList guards the flag plumbing: a malformed
// -switches list must fail the scale experiment, not silently no-op.
func TestRunRejectsUnknownList(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "scale", scale: 0.05, seed: 3, switchList: "4,oops"}
	if err := run(cfg, &out); err == nil {
		t.Error("malformed -switches must error")
	}
}

// TestRunOverlaySmoke runs the immutable-core experiment on a tiny
// workload: sharded-vs-serial build identity, overlay-vs-clone setup
// cost, and the overlay/clone localization interchangeability contract.
func TestRunOverlaySmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "overlay", scale: 0.05, seed: 3, workers: 2, noise: 3}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"cold build serial", "cold build sharded", "build speedup",
		"sharded build identical to serial: true",
		"clone", "overlay",
		"overlay localization identical to clone: true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSharedBDDSmoke runs the shared-base ablation on a tiny
// workload: private-vs-fork node construction at four worker counts,
// the per-count report-identity contract, and the
// near-1-worker-baseline bound on shared construction.
func TestRunSharedBDDSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "sharedbdd", scale: 0.05, seed: 3}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"private nodes", "base+fork nodes",
		"reports byte-identical between modes at every worker count: true",
		"shared construction at 4 workers near 1-worker baseline: true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunFoldShareSmoke runs the fold-sharing experiment on a tiny
// workload: flat shared-mode construction across worker counts, exactly
// one semantics build per distinct rule list, one replay per clone
// switch, and the report-identity contract against private mode.
func TestRunFoldShareSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "foldshare", scale: 0.05, seed: 3}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"sem frozen", "dedup replay",
		"reports byte-identical to private mode at every worker count: true",
		"one per distinct rule list",
		"shared-mode node construction flat from 1 to 4 workers (±5%): true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunProbeReuseSmoke runs the probe-reuse experiment on a tiny
// workload: the exact classified+replayed partition every round, zero
// classification on clean warm rounds, batched (never fallback)
// probing, and the warm-vs-cold report identity contract.
func TestRunProbeReuseSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "probereuse", scale: 0.05, seed: 3, workers: 2}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"baseline: full probe round:",
		"clean warm round:",
		"every round: classified + replayed == switches, batch passes <= classified: true",
		"clean warm rounds classified zero switches with stationary prober counters: true",
		"warm reports byte-identical to cold probe analysis",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunStormSmoke runs the event-storm experiment on a tiny workload:
// coalescing bounds on re-check work, read-only-dirty partial
// collection, the subscribed collector's single partial epoch, and the
// streamed-vs-full report identity contract.
func TestRunStormSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "storm", scale: 0.05, seed: 3, workers: 2}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"coalesced into",
		"re-check work bounded by batches x min(S, batch):",
		"partial refreshes read only batch members, aliased the rest: true",
		"event-driven collector: 1 partial epoch,",
		"streamed report byte-identical to full AnalyzeEpoch",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunBDDSpeedSmoke runs the BDD-core differential experiment on a
// tiny workload: per-switch report byte-identity against the map-backed
// reference engine, node-construction and cache-counter identity, and
// the pipeline byte-identity contract across worker counts.
func TestRunBDDSpeedSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "bddspeed", scale: 0.05, seed: 3}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"BDD nodes on both engines",
		"op cache:",
		"cold-encode wall clock",
		"reports byte-identical to the map-backed reference and across worker counts: true",
		"node-construction and cache-hit counters identical across engines and repeat sweeps: true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunWarmStoreSmoke runs the warm-store experiment on a tiny
// workload: restarted sessions must restore the persisted base and
// verdicts (zero rebuilds, zero re-checks, zero encodes) and reproduce
// the warm in-process report byte-for-byte, and a dirty restart must
// re-check exactly the mutated switch.
func TestRunWarmStoreSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{experiment: "warmstore", scale: 0.05, seed: 3, workers: 2}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"original process:",
		"restart (workers=1):",
		"restarted sessions loaded one base, rebuilt none, re-checked zero switches: true",
		"restarted sessions encoded zero matches and folded zero rule lists: true",
		"restarted reports byte-identical to the warm in-process report at workers 1/2/NumCPU: true",
		"dirty restart re-checked exactly the mutated switch and matched a cold analysis: true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
