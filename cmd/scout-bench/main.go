// Command scout-bench regenerates the paper's evaluation tables and
// figures (§VI). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured comparisons.
//
// Usage:
//
//	scout-bench -experiment all
//	scout-bench -experiment fig8 -scale 1.0 -runs 30
//	scout-bench -experiment scale -switches 10,50,100,200,500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"scout/internal/eval"
	"scout/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scout-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "fig3|fig7a|fig7b|fig8|fig9|fig10|ablation|scale|all")
		scale      = flag.Float64("scale", 0.25, "production-spec scale for simulation experiments (1.0 = paper size)")
		seed       = flag.Int64("seed", 42, "experiment seed")
		runs       = flag.Int("runs", 30, "repetitions per accuracy data point")
		maxFaults  = flag.Int("faults", 10, "max simultaneous faults for accuracy experiments")
		noise      = flag.Int("noise", 5, "healthy recently-changed objects per scenario")
		switchList = flag.String("switches", "10,25,50,100,200", "comma-separated switch counts for -experiment scale")
	)
	flag.Parse()

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	simEnv := func() (*eval.Env, error) {
		start := time.Now()
		env, err := eval.NewEnv(eval.SimSpec(*scale), *seed)
		if err != nil {
			return nil, err
		}
		st := env.Policy.Stats()
		fmt.Printf("[workload] production-like scale=%.2f: %d EPGs, %d contracts, %d filters, %d pairs (%v)\n\n",
			*scale, st.EPGs, st.Contracts, st.Filters, st.EPGPairs, time.Since(start).Round(time.Millisecond))
		return env, nil
	}

	var env *eval.Env
	getEnv := func() (*eval.Env, error) {
		if env != nil {
			return env, nil
		}
		var err error
		env, err = simEnv()
		return env, err
	}

	if want("fig3") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 3: EPG pairs per object (CDF checkpoints) ==")
		fmt.Println(eval.Figure3(e).Render())
	}

	if want("fig7a") {
		fmt.Println("== Figure 7(a): suspect-set reduction γ, testbed (200 faults) ==")
		tb, err := eval.NewEnv(workload.TestbedSpec(), *seed)
		if err != nil {
			return err
		}
		res, err := eval.SuspectSetReduction(tb, eval.GammaOptions{
			Faults:  200,
			Buckets: [][2]int{{1, 10}, {10, 20}, {20, 40}, {40, 60}},
			Noise:   *noise,
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if want("fig7b") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 7(b): suspect-set reduction γ, simulation (1500 faults) ==")
		res, err := eval.SuspectSetReduction(e, eval.GammaOptions{
			Faults:  1500,
			Buckets: [][2]int{{1, 10}, {10, 50}, {50, 100}, {100, 500}, {500, 1000}},
			Noise:   *noise,
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	accOpts := eval.AccuracyOptions{MaxFaults: *maxFaults, Runs: *runs, Noise: *noise, Seed: *seed}

	if want("fig8") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 8: precision/recall on the switch risk model ==")
		res, err := eval.SwitchModelAccuracy(e, accOpts)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if want("fig9") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 9: precision/recall on the controller risk model ==")
		res, err := eval.ControllerModelAccuracy(e, accOpts)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if want("fig10") {
		fmt.Println("== Figure 10: testbed end-to-end, SCOUT vs SCORE-1 ==")
		res, err := eval.TestbedAccuracy(workload.TestbedSpec(), eval.TestbedOptions{
			MaxFaults: *maxFaults,
			Runs:      minInt(*runs, 10), // paper uses 10 runs on the testbed
			Noise:     *noise,
			Seed:      *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if want("ablation") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Println("== Ablation: SCOUT with vs without the change-log stage ==")
		opts := accOpts
		opts.Algorithms = append(eval.StandardAlgorithms(), eval.ScoutNoChangeLog())
		res, err := eval.ControllerModelAccuracy(e, opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if want("scale") {
		fmt.Println("== Scalability: SCOUT runtime vs switch count (§VI-B) ==")
		counts, err := parseInts(*switchList)
		if err != nil {
			return err
		}
		res, err := eval.Scalability(counts, 5, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad switch count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
