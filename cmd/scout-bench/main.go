// Command scout-bench regenerates the paper's evaluation tables and
// figures (§VI). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured comparisons.
//
// Usage:
//
//	scout-bench -experiment all
//	scout-bench -experiment fig8 -scale 1.0 -runs 30
//	scout-bench -experiment scale -switches 10,50,100,200,500
//	scout-bench -experiment parallel -scale 0.5 -workers 8
//	scout-bench -experiment sharedbdd -scale 0.5
//	scout-bench -experiment foldshare -scale 0.25
//	scout-bench -experiment storm -scale 0.25
//	scout-bench -experiment probereuse -scale 0.25
//	scout-bench -experiment bddspeed -scale 0.25
//	scout-bench -experiment warmstore -scale 0.25
//	scout-bench -experiment localizer -scale 0.25
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"scout"
	"scout/internal/bdd"
	"scout/internal/equiv"
	"scout/internal/eval"
	"scout/internal/localize"
	"scout/internal/risk"
	"scout/internal/workload"
)

// config carries the flag values so tests can drive run directly.
type config struct {
	experiment string
	scale      float64
	seed       int64
	runs       int
	maxFaults  int
	noise      int
	switchList string
	workers    int
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.experiment, "experiment", "all", "fig3|fig7a|fig7b|fig8|fig9|fig10|ablation|scale|parallel|incremental|overlay|sharedbdd|foldshare|storm|probereuse|bddspeed|warmstore|localizer|all")
	flag.Float64Var(&cfg.scale, "scale", 0.25, "production-spec scale for simulation experiments (1.0 = paper size)")
	flag.Int64Var(&cfg.seed, "seed", 42, "experiment seed")
	flag.IntVar(&cfg.runs, "runs", 30, "repetitions per accuracy data point")
	flag.IntVar(&cfg.maxFaults, "faults", 10, "max simultaneous faults for accuracy experiments")
	flag.IntVar(&cfg.noise, "noise", 5, "healthy recently-changed objects per scenario")
	flag.StringVar(&cfg.switchList, "switches", "10,25,50,100,200", "comma-separated switch counts for -experiment scale")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scout-bench:", err)
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	want := func(name string) bool { return cfg.experiment == "all" || cfg.experiment == name }
	simEnv := func() (*eval.Env, error) {
		start := time.Now()
		env, err := eval.NewEnv(eval.SimSpec(cfg.scale), cfg.seed)
		if err != nil {
			return nil, err
		}
		st := env.Policy.Stats()
		fmt.Fprintf(w, "[workload] production-like scale=%.2f: %d EPGs, %d contracts, %d filters, %d pairs (%v)\n\n",
			cfg.scale, st.EPGs, st.Contracts, st.Filters, st.EPGPairs, time.Since(start).Round(time.Millisecond))
		return env, nil
	}

	var env *eval.Env
	getEnv := func() (*eval.Env, error) {
		if env != nil {
			return env, nil
		}
		var err error
		env, err = simEnv()
		return env, err
	}

	if want("fig3") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figure 3: EPG pairs per object (CDF checkpoints) ==")
		fmt.Fprintln(w, eval.Figure3(e).Render())
	}

	if want("fig7a") {
		fmt.Fprintln(w, "== Figure 7(a): suspect-set reduction γ, testbed (200 faults) ==")
		tb, err := eval.NewEnv(workload.TestbedSpec(), cfg.seed)
		if err != nil {
			return err
		}
		res, err := eval.SuspectSetReduction(tb, eval.GammaOptions{
			Faults:  200,
			Buckets: [][2]int{{1, 10}, {10, 20}, {20, 40}, {40, 60}},
			Noise:   cfg.noise,
			Seed:    cfg.seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("fig7b") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figure 7(b): suspect-set reduction γ, simulation (1500 faults) ==")
		res, err := eval.SuspectSetReduction(e, eval.GammaOptions{
			Faults:  1500,
			Buckets: [][2]int{{1, 10}, {10, 50}, {50, 100}, {100, 500}, {500, 1000}},
			Noise:   cfg.noise,
			Seed:    cfg.seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	accOpts := eval.AccuracyOptions{MaxFaults: cfg.maxFaults, Runs: cfg.runs, Noise: cfg.noise, Seed: cfg.seed}

	if want("fig8") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figure 8: precision/recall on the switch risk model ==")
		res, err := eval.SwitchModelAccuracy(e, accOpts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("fig9") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Figure 9: precision/recall on the controller risk model ==")
		res, err := eval.ControllerModelAccuracy(e, accOpts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("fig10") {
		fmt.Fprintln(w, "== Figure 10: testbed end-to-end, SCOUT vs SCORE-1 ==")
		res, err := eval.TestbedAccuracy(workload.TestbedSpec(), eval.TestbedOptions{
			MaxFaults: cfg.maxFaults,
			Runs:      minInt(cfg.runs, 10), // paper uses 10 runs on the testbed
			Noise:     cfg.noise,
			Seed:      cfg.seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("ablation") {
		e, err := getEnv()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: SCOUT with vs without the change-log stage ==")
		opts := accOpts
		opts.Algorithms = append(eval.StandardAlgorithms(), eval.ScoutNoChangeLog())
		res, err := eval.ControllerModelAccuracy(e, opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("scale") {
		fmt.Fprintln(w, "== Scalability: SCOUT runtime vs switch count (§VI-B) ==")
		counts, err := parseInts(cfg.switchList)
		if err != nil {
			return err
		}
		res, err := eval.Scalability(counts, 5, cfg.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Render())
	}

	if want("parallel") {
		fmt.Fprintln(w, "== Parallel check stage: serial vs sharded per-switch checking ==")
		if err := runParallel(cfg, w); err != nil {
			return err
		}
	}

	if want("incremental") {
		fmt.Fprintln(w, "== Incremental sessions: cold full analysis vs warm delta re-verification ==")
		if err := runIncremental(cfg, w); err != nil {
			return err
		}
	}

	if want("overlay") {
		fmt.Fprintln(w, "== Immutable risk core: sharded build + copy-on-write overlays vs clone ==")
		if err := runOverlay(cfg, w); err != nil {
			return err
		}
	}

	if want("sharedbdd") {
		fmt.Fprintln(w, "== Shared BDD base: private per-worker checkers vs frozen base + forks ==")
		if err := runSharedBDD(cfg, w); err != nil {
			return err
		}
	}

	if want("foldshare") {
		fmt.Fprintln(w, "== Fold sharing: frozen whole-switch semantics + check dedup ==")
		if err := runFoldShare(cfg, w); err != nil {
			return err
		}
	}

	if want("storm") {
		fmt.Fprintln(w, "== Event storm: coalescing queue + partial collection vs per-event rounds ==")
		if err := runStorm(cfg, w); err != nil {
			return err
		}
	}

	if want("probereuse") {
		fmt.Fprintln(w, "== Probe reuse: batched classification + fingerprint-keyed replay ==")
		if err := runProbeReuse(cfg, w); err != nil {
			return err
		}
	}

	if want("bddspeed") {
		fmt.Fprintln(w, "== BDD core: open-addressed engine vs map-backed reference ==")
		if err := runBDDSpeed(cfg, w); err != nil {
			return err
		}
	}

	if want("warmstore") {
		fmt.Fprintln(w, "== Warm store: durable cross-restart BDD state ==")
		if err := runWarmStore(cfg, w); err != nil {
			return err
		}
	}

	if want("localizer") {
		fmt.Fprintln(w, "== Localization engine: compiled CSR/bitset plans vs map-based reference ==")
		if err := runLocalizer(cfg, w); err != nil {
			return err
		}
	}
	return nil
}

// runProbeReuse measures the probe-mode warm path: each session round
// fingerprints every switch's TCAM, replays the cached verdict for
// clean switches, and classifies only the dirty ones' probe batches in
// one rule-major pass. Asserting on counters only (CI runners may be
// single-core):
//
//   - every round partitions the fabric exactly: switches classified +
//     switches replayed == the switch count, and the prober's batch
//     passes never exceed the switches classified (one priority-ordered
//     pass per dirty switch, none for replays);
//   - a clean warm round classifies zero switches and leaves every
//     prober counter stationary — no Classify call reaches any TCAM;
//   - after a fault dirties a subset, only that subset is re-classified
//     and every round's report stays byte-identical to a cold one-shot
//     probe analysis of the same fabric state.
func runProbeReuse(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	numSwitches := topo.NumSwitches()
	fmt.Fprintf(w, "fabric: %d switches, %d EPG pairs\n\n", numSwitches, pol.Stats().EPGPairs)

	opts := scout.AnalyzerOptions{Workers: cfg.workers, UseProbes: true}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		return err
	}

	// coldJSON runs a fresh one-shot probe analyzer over the fabric's
	// current state — the identity reference for every session round.
	coldJSON := func() ([]byte, time.Duration, error) {
		rep, err := scout.NewAnalyzer(opts).Analyze(f)
		if err != nil {
			return nil, 0, err
		}
		elapsed := rep.Elapsed
		rep.Elapsed = 0
		data, err := json.Marshal(rep)
		return data, elapsed, err
	}
	round := func(label string, wantClassified int) (time.Duration, error) {
		before := sess.Stats()
		var pBefore scout.ProberStats
		if ps, ok := sess.ProberStats(); ok {
			pBefore = ps
		}
		rep, err := sess.Analyze()
		if err != nil {
			return 0, err
		}
		elapsed := rep.Elapsed
		after := sess.Stats()
		pAfter, _ := sess.ProberStats()
		classified := after.ProbeSwitchesClassified - before.ProbeSwitchesClassified
		replayed := after.ProbeSwitchesReplayed - before.ProbeSwitchesReplayed
		passes := pAfter.BatchPasses - pBefore.BatchPasses
		fmt.Fprintf(w, "%-28s %3d classified + %3d replayed, %3d batch passes, %v\n",
			label+":", classified, replayed, passes, elapsed.Round(time.Microsecond))
		if classified+replayed != numSwitches {
			return 0, fmt.Errorf("%s: classified %d + replayed %d != %d switches (partition violation)",
				label, classified, replayed, numSwitches)
		}
		if classified != wantClassified {
			return 0, fmt.Errorf("%s: classified %d switches, want %d", label, classified, wantClassified)
		}
		if passes > classified {
			return 0, fmt.Errorf("%s: %d batch passes exceed %d classified switches", label, passes, classified)
		}
		if pAfter.FallbackProbes != pBefore.FallbackProbes {
			return 0, fmt.Errorf("%s: per-packet fallback engaged (%d probes) — TCAMs must batch",
				label, pAfter.FallbackProbes-pBefore.FallbackProbes)
		}
		if wantClassified == 0 && pAfter != pBefore {
			return 0, fmt.Errorf("%s: prober counters moved on a clean round: %+v -> %+v (a Classify leaked)",
				label, pBefore, pAfter)
		}
		rep.Elapsed = 0
		got, err := json.Marshal(rep)
		if err != nil {
			return 0, err
		}
		want, coldElapsed, err := coldJSON()
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(got, want) {
			return 0, fmt.Errorf("%s: warm probe report differs from cold analysis (identity violation)", label)
		}
		return coldElapsed, nil
	}

	if _, err := round("baseline: full probe round", numSwitches); err != nil {
		return err
	}
	coldElapsed, err := round("clean warm round", 0)
	if err != nil {
		return err
	}

	// Dirty a strict subset: evict the top rule on min(3, N) switches.
	dirty := minInt(3, numSwitches)
	for _, sw := range topo.Switches()[:dirty] {
		s, err := f.Switch(sw)
		if err != nil {
			return err
		}
		rules, err := f.CollectTCAM(sw)
		if err != nil {
			return err
		}
		if len(rules) == 0 || !s.TCAM().Remove(rules[0].Key()) {
			return fmt.Errorf("could not dirty switch %d", sw)
		}
	}
	if _, err := round(fmt.Sprintf("after %d-switch fault", dirty), dirty); err != nil {
		return err
	}
	if _, err := round("warm round over fault", 0); err != nil {
		return err
	}

	st := sess.Stats()
	ps, _ := sess.ProberStats()
	fmt.Fprintf(w, "\nsession totals: %d runs, %d switches classified, %d replayed, %d packets batched\n",
		st.Runs, st.ProbeSwitchesClassified, st.ProbeSwitchesReplayed, st.ProbePacketsBatched)
	fmt.Fprintf(w, "prober: packet memo %d hits / %d misses, %d batch passes (%d packets), %d fallback probes\n",
		ps.MemoHits, ps.MemoMisses, ps.BatchPasses, ps.BatchedPackets, ps.FallbackProbes)
	if ps.BatchedPackets != st.ProbePacketsBatched {
		return fmt.Errorf("session counted %d batched packets, prober %d (accounting drift)",
			st.ProbePacketsBatched, ps.BatchedPackets)
	}
	fmt.Fprintln(w, "every round: classified + replayed == switches, batch passes <= classified: true")
	fmt.Fprintln(w, "clean warm rounds classified zero switches with stationary prober counters: true")
	fmt.Fprintf(w, "warm reports byte-identical to cold probe analysis (cold reference %v): true\n",
		coldElapsed.Round(time.Millisecond))
	return nil
}

// runStorm measures the event-driven streaming layer under a burst
// storm: K events over S switches drain through the coalescing queue
// into size-cut batches, each applied as one partial session refresh.
// Asserting on counters only (CI runners may be single-core):
//
//   - coalescing re-checks each distinct switch at most once per batch:
//     the switch marks that ever became batch members equal pushes minus
//     coalesced merges, no batch exceeds the configured size, and total
//     refresh work is bounded by batches x min(S, batch) with at most
//     ceil(K/batch) batches;
//   - partial collection reads only dirty switches: the session's
//     event-path reads equal the queue's batched switch marks, everything
//     else aliases the previous epoch, and an event-subscribed collector
//     re-reads exactly the S distinct storm switches;
//   - the drained stream's report must be byte-identical to a full
//     AnalyzeEpoch of the same final state.
func runStorm(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	// Storm a strict subset of the fabric so partial epochs have clean
	// switches to alias (half the switches, capped at 8, at least 2).
	numSwitches := topo.NumSwitches()
	stormS := minInt(8, maxInt(2, numSwitches/2))
	const perSwitch = 15 // odd: every storm switch ends with its top rule missing
	const batchSize = 4
	events := stormS * perSwitch
	fmt.Fprintf(w, "fabric: %d switches; storm: %d events over %d switches, batch size %d\n\n",
		numSwitches, events, stormS, batchSize)

	opts := scout.AnalyzerOptions{Workers: cfg.workers}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		return err
	}
	refSess, err := scout.NewSession(f, opts)
	if err != nil {
		return err
	}
	collector := scout.NewCollector(f, 4)
	evCollector := scout.NewCollector(f, 4)
	evCollector.Subscribe(f.EventLog())
	baseEpoch := evCollector.Snapshot()

	// Baselines: both sessions anchor on the same full state.
	if _, err := sess.ApplyEvents(scout.EventBatch{}); err != nil {
		return err
	}
	if _, err := refSess.AnalyzeEpoch(collector.Snapshot()); err != nil {
		return err
	}

	// The storm: bursts of perSwitch toggle events per switch, appended
	// to the fabric's stream the way its monitoring plane would.
	cursor := f.EventLog().TailCursor()
	stormSwitches := topo.Switches()[:stormS]
	for _, sw := range stormSwitches {
		s, err := f.Switch(sw)
		if err != nil {
			return err
		}
		rules, err := f.CollectTCAM(sw)
		if err != nil {
			return err
		}
		if len(rules) == 0 {
			return fmt.Errorf("switch %d has an empty TCAM", sw)
		}
		target := rules[0]
		for phase := 0; phase < perSwitch; phase++ {
			if phase%2 == 0 {
				if !s.TCAM().Remove(target.Key()) {
					return fmt.Errorf("switch %d: toggle remove failed", sw)
				}
			} else if err := s.TCAM().Install(target); err != nil {
				return err
			}
			f.EventLog().Append(f.Now(), scout.EventTCAMChange, sw, "storm")
		}
	}

	// Drain the storm through the queue; apply every size-cut batch.
	queue := scout.NewEventQueue(scout.EventQueueOptions{Cap: 64, BatchSize: batchSize})
	for _, ev := range cursor.Drain() {
		if queue.Push(ev) {
			if _, err := sess.ApplyEvents(queue.Cut(f.Now())); err != nil {
				return err
			}
		}
	}
	for queue.Len() > 0 {
		if _, err := sess.ApplyEvents(queue.Cut(f.Now())); err != nil {
			return err
		}
	}
	final, err := sess.ApplyEvents(scout.EventBatch{}) // pure replay at the current clock
	if err != nil {
		return err
	}

	qs := queue.Stats()
	st := sess.Stats()
	fmt.Fprintf(w, "queue: %d pushed, %d coalesced into %d switch refreshes across %d batches (max %d)\n",
		qs.Pushed, qs.Coalesced, qs.BatchedSwitches, qs.Batches, qs.MaxBatch)
	fmt.Fprintf(w, "session: %d event batches, %d switches re-read, %d aliased\n",
		st.EventBatches, st.EventSwitchesRead, st.EventSwitchesAliased)

	if qs.Pushed != events {
		return fmt.Errorf("queue saw %d events, want %d", qs.Pushed, events)
	}
	if qs.BatchedSwitches != qs.Pushed-qs.Coalesced {
		return fmt.Errorf("batched switch marks %d != pushes %d - coalesced %d (a mark was dropped or duplicated)",
			qs.BatchedSwitches, qs.Pushed, qs.Coalesced)
	}
	if qs.MaxBatch > batchSize {
		return fmt.Errorf("batch of %d switches exceeds configured size %d", qs.MaxBatch, batchSize)
	}
	maxBatches := (events + batchSize - 1) / batchSize
	if qs.Batches > maxBatches {
		return fmt.Errorf("%d batches for %d events, want at most ceil(K/batch) = %d", qs.Batches, events, maxBatches)
	}
	if bound := qs.Batches * minInt(stormS, batchSize); qs.BatchedSwitches > bound {
		return fmt.Errorf("%d switch refreshes exceed batches x min(S, batch) = %d", qs.BatchedSwitches, bound)
	}
	fmt.Fprintf(w, "re-check work bounded by batches x min(S, batch): %d <= %d\n",
		qs.BatchedSwitches, qs.Batches*minInt(stormS, batchSize))

	// Partial collection reads only dirty switches. The +1 event batch is
	// the final empty replay, which reads nothing.
	if st.EventBatches != qs.Batches+1 {
		return fmt.Errorf("session ran %d event batches, want %d cuts + 1 empty replay", st.EventBatches, qs.Batches)
	}
	if st.EventSwitchesRead != qs.BatchedSwitches {
		return fmt.Errorf("session re-read %d switches, want exactly the %d batch members", st.EventSwitchesRead, qs.BatchedSwitches)
	}
	if st.EventSwitchesAliased != st.EventBatches*numSwitches-st.EventSwitchesRead {
		return fmt.Errorf("aliased %d switches, want %d (everything not re-read)",
			st.EventSwitchesAliased, st.EventBatches*numSwitches-st.EventSwitchesRead)
	}
	fmt.Fprintln(w, "partial refreshes read only batch members, aliased the rest: true")

	// Event-subscribed collector: one partial epoch reading exactly the
	// distinct storm switches.
	evEpoch, consumed, err := evCollector.SnapshotEvents()
	if err != nil {
		return err
	}
	cs := evCollector.Stats()
	if len(consumed) != events {
		return fmt.Errorf("collector consumed %d events, want %d", len(consumed), events)
	}
	if got := cs.SwitchesRead - numSwitches; got != stormS {
		return fmt.Errorf("event-driven epoch read %d switches, want the %d distinct storm switches", got, stormS)
	}
	dirty := scout.DirtyEpochSwitches(baseEpoch, evEpoch)
	if len(dirty) != stormS {
		return fmt.Errorf("event-driven epoch dirtied %d switches, want %d", len(dirty), stormS)
	}
	fmt.Fprintf(w, "event-driven collector: 1 partial epoch, %d/%d switches read, %d aliased: true\n",
		cs.SwitchesRead-numSwitches, numSwitches, cs.SwitchesAliased)

	// Byte-identity against a full AnalyzeEpoch of the same final state.
	want, err := refSess.AnalyzeEpoch(collector.Snapshot())
	if err != nil {
		return err
	}
	final.Elapsed, want.Elapsed = 0, 0
	fData, err := json.Marshal(final)
	if err != nil {
		return err
	}
	wData, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(fData, wData) {
		return fmt.Errorf("streamed report differs from full AnalyzeEpoch (equivalence violation)")
	}
	if final.Consistent || final.TotalMissing == 0 {
		return fmt.Errorf("storm left no visible faults — the toggles should end with rules missing")
	}
	fmt.Fprintf(w, "streamed report byte-identical to full AnalyzeEpoch (%d missing rules flagged): true\n",
		final.TotalMissing)
	return nil
}

// runFoldShare measures the semantics-sharing layer on top of the shared
// base: whole-switch semantics folds frozen once at warmup and resolved
// by fingerprint, plus whole-switch check dedup across byte-equal
// switches. The fabric state is extended with clone switches (byte-equal
// logical and TCAM lists) so duplicated-fingerprint groups exist by
// construction, then, asserting on node/check counters only (CI runners
// may be single-core):
//
//   - shared-mode total node construction must be flat (±5%) from 1 to 4
//     workers — with every logical list's fold frozen in the base, the
//     per-fork deltas hold only drifted TCAM folds, which are built once
//     no matter how the scheduler spreads switches;
//   - each duplicated-fingerprint group must run exactly one semantics
//     build per distinct rule list: fold misses across base and forks
//     must equal the number of distinct unwarmed lists, and every clone
//     must replay its group's verdict;
//   - reports must stay byte-identical to the private (no base, no
//     dedup) mode at every worker count.
func runFoldShare(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	for _, id := range filters[:minInt(3, len(filters))] {
		if _, err := f.InjectObjectFault(scout.FilterRef(id), 1.0); err != nil {
			return err
		}
	}

	// Extend the state with clone switches (eval.DuplicateSwitches,
	// shared with the dedup regression tests): every other switch gets a
	// byte-equal twin (same logical rules, same TCAM snapshot), the
	// duplicate groups the dedup collapses.
	dup, dupTCAM, clones := eval.DuplicateSwitches(f.Deployment(), f.CollectAll())
	st := scout.State{
		Deployment: dup,
		TCAM:       dupTCAM,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}
	fmt.Fprintf(w, "fabric: %d switches (+%d byte-equal clones), 3 filter faults injected\n\n",
		topo.NumSwitches(), clones)

	// Expected build counts, derived from the state itself: the base
	// freezes one root per distinct logical semantics fingerprint, and
	// the forks fold only group representatives' TCAM lists whose
	// fingerprint no logical list warmed.
	logicalSem := make(map[uint64]bool)
	for _, rules := range dup.BySwitch {
		logicalSem[equiv.SemanticsFingerprint(rules)] = true
	}
	groupTCAM := make(map[[2]uint64]uint64, len(dupTCAM))
	for sw, rules := range dupTCAM {
		key := [2]uint64{equiv.Fingerprint(dup.BySwitch[sw]), equiv.Fingerprint(rules)}
		groupTCAM[key] = equiv.SemanticsFingerprint(rules)
	}
	unwarmed := make(map[uint64]bool)
	for _, fp := range groupTCAM {
		if !logicalSem[fp] {
			unwarmed[fp] = true
		}
	}

	measure := func(workers int, private bool) (*scout.Report, []byte, error) {
		rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{
			Workers: workers, PrivateCheckers: private,
		}).AnalyzeState(st)
		if err != nil {
			return nil, nil, err
		}
		rep.Elapsed = 0
		data, err := json.Marshal(rep)
		return rep, data, err
	}

	fmt.Fprintf(w, "%-8s %13s %12s %12s %12s %12s\n",
		"workers", "total nodes", "sem frozen", "fold hits", "fold misses", "dedup replay")
	var shared1 int
	for _, workers := range []int{1, 2, 4} {
		shRep, shJSON, err := measure(workers, false)
		if err != nil {
			return err
		}
		_, privJSON, err := measure(workers, true)
		if err != nil {
			return err
		}
		if !bytes.Equal(privJSON, shJSON) {
			return fmt.Errorf("workers=%d: fold-share report differs from private (identity violation)", workers)
		}
		es := shRep.EncodeStats
		fmt.Fprintf(w, "%-8d %13d %12d %12d %12d %12d\n",
			workers, es.TotalNodes(), es.BaseSemantics, es.FoldHits(), es.FoldMisses, es.DedupReplays)

		if es.BaseSemantics != len(logicalSem) {
			return fmt.Errorf("workers=%d: base froze %d semantics roots, want %d (one per distinct logical list)",
				workers, es.BaseSemantics, len(logicalSem))
		}
		if es.FoldMisses != len(unwarmed) {
			return fmt.Errorf("workers=%d: %d private folds, want %d — one semantics build per distinct unwarmed list",
				workers, es.FoldMisses, len(unwarmed))
		}
		if es.DedupReplays != clones {
			return fmt.Errorf("workers=%d: %d dedup replays, want one per clone (%d)",
				workers, es.DedupReplays, clones)
		}
		if workers == 1 {
			shared1 = es.TotalNodes()
		} else if tol := shared1 / 20; es.TotalNodes() > shared1+tol || es.TotalNodes() < shared1-tol {
			return fmt.Errorf("workers=%d: total construction %d not flat vs 1-worker %d (±5%%)",
				workers, es.TotalNodes(), shared1)
		}
	}
	fmt.Fprintln(w, "\nreports byte-identical to private mode at every worker count: true")
	fmt.Fprintf(w, "semantics builds: %d frozen at warmup + %d per-fork = one per distinct rule list\n",
		len(logicalSem), len(unwarmed))
	fmt.Fprintln(w, "shared-mode node construction flat from 1 to 4 workers (±5%): true")
	return nil
}

// runSharedBDD measures the check stage's total BDD node construction —
// the shared frozen base plus every worker's private delta, against
// private per-worker checkers — at worker counts 1/2/4/8 on the same
// faulty fabric. The duplicated work private checkers pay grows with the
// worker count (each re-derives the match encodings its switches share
// with other workers'), while the base+fork split encodes each match
// once regardless; reports must be byte-identical between the modes at
// every count. Assertions are on node-construction counters, not
// wall-clock — CI runners may be single-core.
func runSharedBDD(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	for _, id := range filters[:minInt(3, len(filters))] {
		if _, err := f.InjectObjectFault(scout.FilterRef(id), 1.0); err != nil {
			return err
		}
	}
	st := scout.State{
		Deployment: f.Deployment(),
		TCAM:       f.CollectAll(),
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}
	fmt.Fprintf(w, "fabric: %d switches, %d EPG pairs, 3 filter faults injected\n\n",
		topo.NumSwitches(), pol.Stats().EPGPairs)

	measure := func(workers int, private bool) (*scout.Report, []byte, error) {
		rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{
			Workers: workers, PrivateCheckers: private,
		}).AnalyzeState(st)
		if err != nil {
			return nil, nil, err
		}
		rep.Elapsed = 0
		data, err := json.Marshal(rep)
		return rep, data, err
	}

	fmt.Fprintf(w, "%-8s %15s %15s %10s\n", "workers", "private nodes", "base+fork nodes", "ratio")
	var private1, shared4 int
	for _, workers := range []int{1, 2, 4, 8} {
		privRep, privJSON, err := measure(workers, true)
		if err != nil {
			return err
		}
		shRep, shJSON, err := measure(workers, false)
		if err != nil {
			return err
		}
		if !bytes.Equal(privJSON, shJSON) {
			return fmt.Errorf("workers=%d: shared-base report differs from private (identity violation)", workers)
		}
		priv, sh := privRep.EncodeStats.TotalNodes(), shRep.EncodeStats.TotalNodes()
		if workers == 1 {
			private1 = priv
		}
		if workers == 4 {
			shared4 = sh
		}
		fmt.Fprintf(w, "%-8d %15d %15d %9.2fx\n", workers, priv, sh, float64(priv)/float64(sh))
		if sh > priv+priv/10 {
			return fmt.Errorf("workers=%d: shared construction %d exceeds private %d (base not shared)", workers, sh, priv)
		}
	}
	fmt.Fprintln(w, "\nreports byte-identical between modes at every worker count: true")
	fmt.Fprintf(w, "shared@4workers vs private@1worker (duplicated-encoding elimination): %d vs %d (%.2fx)\n",
		shared4, private1, float64(shared4)/float64(private1))
	// The fold structure per worker still duplicates across forks, so
	// "near the 1-worker baseline" carries slack; match encodings — the
	// dominant cost — are built exactly once in the base.
	if shared4 > private1+private1/4 {
		return fmt.Errorf("shared construction at 4 workers (%d) not near the 1-worker baseline (%d)", shared4, private1)
	}
	fmt.Fprintln(w, "shared construction at 4 workers near 1-worker baseline: true")
	return nil
}

// runOverlay measures the two costs the immutable-core refactor removes
// from the warm loop: (a) per-run setup — a copy-on-write overlay over
// the cached pristine controller model vs the deep Model.Clone() warm
// sessions used to pay, which scales with model size; and (b) the cold
// controller-model build — serial vs sharded by switch across workers.
// Both paths must be observationally identical; the sharded build is
// verified deeply equal to the serial one and the overlay is verified to
// localize a fault scenario exactly like an annotated clone.
func runOverlay(cfg config, w io.Writer) error {
	env, err := eval.NewEnv(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opts := risk.ControllerModelOptions{IncludeSwitchRisk: true}

	// (b) Cold build: serial vs sharded.
	buildTime := func(workers int) (*risk.Model, time.Duration) {
		start := time.Now()
		m := risk.BuildControllerModelParallel(env.Deployment, opts, workers)
		return m, time.Since(start)
	}
	serial, serialBuild := buildTime(1)
	sharded, shardedBuild := buildTime(workers)
	fmt.Fprintf(w, "controller model (scale=%.2f): %d switches, %d elements, %d risks, %d edges\n",
		cfg.scale, env.Topo.NumSwitches(), serial.NumElements(), serial.NumRisks(), serial.NumEdges())
	fmt.Fprintf(w, "cold build serial  (workers=1):  %v\n", serialBuild.Round(time.Microsecond))
	fmt.Fprintf(w, "cold build sharded (workers=%d): %v\n", workers, shardedBuild.Round(time.Microsecond))
	if shardedBuild > 0 {
		fmt.Fprintf(w, "build speedup: %.2fx (bounded by GOMAXPROCS=%d)\n",
			float64(serialBuild)/float64(shardedBuild), runtime.GOMAXPROCS(0))
	}
	if !reflect.DeepEqual(serial, sharded) {
		return fmt.Errorf("sharded build differs from serial (determinism violation)")
	}
	fmt.Fprintln(w, "sharded build identical to serial: true")

	// (a) Warm-run setup: Clone() is O(model size), an overlay is O(1)
	// regardless of model size.
	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		_ = serial.Clone()
	}
	clonePer := time.Since(start) / reps
	start = time.Now()
	var lastOverlay *risk.Overlay
	for i := 0; i < reps; i++ {
		lastOverlay = risk.NewOverlay(serial)
	}
	overlayPer := time.Since(start) / reps
	fmt.Fprintf(w, "\nwarm-run setup, avg of %d: clone %v vs overlay %v",
		reps, clonePer.Round(time.Nanosecond), overlayPer.Round(time.Nanosecond))
	if overlayPer > 0 {
		fmt.Fprintf(w, " (%.0fx)", float64(clonePer)/float64(overlayPer))
	}
	fmt.Fprintln(w)

	// Interchangeability on a real fault scenario: identical hypotheses.
	rng := rand.New(rand.NewSource(cfg.seed))
	sc, err := workload.NewScenario(rng, env.Index.Objects(), 5, cfg.noise)
	if err != nil {
		return err
	}
	clone := serial.Clone()
	workload.ApplyToControllerModel(clone, env.Deployment, env.Index, sc, rand.New(rand.NewSource(cfg.seed+1)))
	workload.ApplyToControllerModel(lastOverlay, env.Deployment, env.Index, sc, rand.New(rand.NewSource(cfg.seed+1)))
	cRes := localize.Scout(clone, localize.SetOracle(sc.Changed))
	oRes := localize.Scout(lastOverlay, localize.SetOracle(sc.Changed))
	if !reflect.DeepEqual(cRes, oRes) {
		return fmt.Errorf("overlay localization differs from clone (interchangeability violation)")
	}
	fmt.Fprintf(w, "5-fault scenario: %d observations, hypothesis %d objects, gamma %.4f\n",
		cRes.Explained+len(cRes.Unexplained), len(oRes.Hypothesis), oRes.Gamma(lastOverlay))
	fmt.Fprintln(w, "overlay localization identical to clone: true")
	return nil
}

// runIncremental measures a persistent analysis session against the
// one-shot analyzer on the same fabric: after a warm-up run, one switch's
// TCAM is touched and the warm session re-checks only that switch while
// the cold analyzer redoes the whole fabric. The reports must stay
// byte-identical (the session's replay contract).
func runIncremental(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	fmt.Fprintf(w, "fabric: %d switches, %d EPG pairs\n", topo.NumSwitches(), pol.Stats().EPGPairs)

	opts := scout.AnalyzerOptions{Workers: cfg.workers}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		return err
	}
	collector := scout.NewCollector(f, 4)

	coldSession, err := sess.AnalyzeEpoch(collector.Snapshot())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cold session run (all %d switches checked): %v\n",
		len(coldSession.Switches), coldSession.Elapsed.Round(time.Millisecond))

	// Touch exactly one switch: evict its highest-priority rule.
	sw := topo.Switches()[0]
	s, err := f.Switch(sw)
	if err != nil {
		return err
	}
	rules, err := f.CollectTCAM(sw)
	if err != nil {
		return err
	}
	if len(rules) == 0 || !s.TCAM().Remove(rules[0].Key()) {
		return fmt.Errorf("could not touch switch %d", sw)
	}

	before := sess.Stats()
	epoch := collector.Snapshot()
	warm, err := sess.AnalyzeEpoch(epoch)
	if err != nil {
		return err
	}
	checked := sess.Stats().Checked - before.Checked
	fmt.Fprintf(w, "warm delta run (%d/%d switches re-checked): %v\n",
		checked, len(warm.Switches), warm.Elapsed.Round(time.Millisecond))

	cold, err := scout.NewAnalyzer(opts).AnalyzeState(scout.State{
		Deployment: f.Deployment(),
		TCAM:       epoch.TCAM,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        epoch.Time,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cold full analysis of the same state: %v\n", cold.Elapsed.Round(time.Millisecond))
	if warm.Elapsed > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", float64(cold.Elapsed)/float64(warm.Elapsed))
	}

	warm.Elapsed, cold.Elapsed = 0, 0
	wData, err := json.Marshal(warm)
	if err != nil {
		return err
	}
	cData, err := json.Marshal(cold)
	if err != nil {
		return err
	}
	if !bytes.Equal(wData, cData) {
		return fmt.Errorf("warm report differs from cold (replay violation)")
	}
	fmt.Fprintln(w, "reports byte-identical: true")
	return nil
}

// runParallel measures the end-to-end analyzer with the serial check
// stage against the sharded one on the same faulty fabric, and verifies
// the reports are byte-identical (the pool's determinism contract).
func runParallel(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	for _, id := range filters[:minInt(3, len(filters))] {
		if _, err := f.InjectObjectFault(scout.FilterRef(id), 1.0); err != nil {
			return err
		}
	}
	st := pol.Stats()
	fmt.Fprintf(w, "fabric: %d switches, %d EPG pairs, 3 filter faults injected\n",
		topo.NumSwitches(), st.EPGPairs)

	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	measure := func(workers int) (time.Duration, []byte, error) {
		rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers}).Analyze(f)
		if err != nil {
			return 0, nil, err
		}
		elapsed := rep.Elapsed
		rep.Elapsed = 0
		data, err := json.Marshal(rep)
		return elapsed, data, err
	}
	serialTime, serialRep, err := measure(1)
	if err != nil {
		return err
	}
	parTime, parRep, err := measure(workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serial   (workers=1):  %v\n", serialTime.Round(time.Millisecond))
	fmt.Fprintf(w, "parallel (workers=%d): %v\n", workers, parTime.Round(time.Millisecond))
	if parTime > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", float64(serialTime)/float64(parTime))
	}
	if !bytes.Equal(serialRep, parRep) {
		return fmt.Errorf("parallel report differs from serial (determinism violation)")
	}
	fmt.Fprintln(w, "reports byte-identical: true")
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad switch count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runBDDSpeed gates the open-addressed BDD engine (packed-key unique
// table, tiered L1/L2 op cache, delta GC) against the map-backed
// reference implementation it replaced. Assertions are on reports and
// node/cache counters, never wall-clock (CI runners may be
// single-core); timings are printed for information only:
//
//   - every switch's equivalence report must be byte-identical between
//     a checker on the new engine and one backed by bdd.RefManager, and
//     the two engines must construct exactly the same number of nodes —
//     interning is exact and the exact cache tier never evicts, so node
//     IDs cannot depend on cache policy;
//   - the cache-tier hit counters must be deterministic: replaying the
//     same serial sweep on a fresh checker reproduces them bit-for-bit;
//   - full pipeline reports at workers 1, 2, and NumCPU must be
//     byte-identical to each other, and every switch's verdict must
//     match the serial map-backed baseline.
func runBDDSpeed(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	for _, id := range filters[:minInt(3, len(filters))] {
		if _, err := f.InjectObjectFault(scout.FilterRef(id), 1.0); err != nil {
			return err
		}
	}

	dep := f.Deployment()
	tcam := f.CollectAll()
	switches := make([]scout.ObjectID, 0, len(dep.BySwitch))
	for sw := range dep.BySwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	fmt.Fprintf(w, "fabric: %d switches, 3 filter faults injected\n\n", topo.NumSwitches())

	// sweep runs the whole fabric's per-switch checks serially through
	// one checker, keeping both the live reports and their JSON bytes.
	type swReport struct {
		rep  *equiv.Report
		data []byte
	}
	sweep := func(c *equiv.Checker) (map[scout.ObjectID]swReport, time.Duration, error) {
		out := make(map[scout.ObjectID]swReport, len(switches))
		var dur time.Duration
		for _, sw := range switches {
			start := time.Now()
			rep, err := c.Check(dep.BySwitch[sw], tcam[sw])
			dur += time.Since(start)
			if err != nil {
				return nil, 0, err
			}
			data, err := json.Marshal(rep)
			if err != nil {
				return nil, 0, err
			}
			out[sw] = swReport{rep: rep, data: data}
		}
		return out, dur, nil
	}

	fast := equiv.NewChecker()
	ref := equiv.NewCheckerBacked(func() equiv.Backend { return bdd.NewRefManager(equiv.NumVars) })
	fastReps, fastDur, err := sweep(fast)
	if err != nil {
		return err
	}
	refReps, refDur, err := sweep(ref)
	if err != nil {
		return err
	}
	broken := 0
	for _, sw := range switches {
		if !bytes.Equal(fastReps[sw].data, refReps[sw].data) {
			return fmt.Errorf("switch %d: open-addressed report differs from map-backed reference", sw)
		}
		if !fastReps[sw].rep.Equivalent {
			broken++
		}
	}
	if fast.Size() != ref.Size() {
		return fmt.Errorf("node-construction counters diverged: open-addressed built %d nodes, reference %d",
			fast.Size(), ref.Size())
	}

	cs := fast.Stats().Cache
	lookups := cs.Hits() + cs.Misses
	fmt.Fprintf(w, "serial sweep: %d switches checked (%d inconsistent), %d BDD nodes on both engines\n",
		len(switches), broken, fast.Size())
	fmt.Fprintf(w, "op cache: %d L1 / %d L2 hits, %d misses (%.1f%% hit rate over %d lookups)\n",
		cs.L1Hits, cs.L2Hits, cs.Misses, 100*float64(cs.Hits())/float64(maxInt(1, int(lookups))), lookups)
	speedup := float64(refDur) / float64(maxInt(1, int(fastDur)))
	fmt.Fprintf(w, "cold-encode wall clock (informational, not asserted): open-addressed %v, map-backed %v (%.2fx)\n",
		fastDur.Round(time.Millisecond), refDur.Round(time.Millisecond), speedup)

	// Hit-counter identity: the sweep replayed on a fresh checker must
	// reproduce the tier counters exactly — cache behaviour is a pure
	// function of the operation stream, not of timing or memory layout.
	fast2 := equiv.NewChecker()
	if _, _, err := sweep(fast2); err != nil {
		return err
	}
	if got := fast2.Stats().Cache; got != cs {
		return fmt.Errorf("cache hit counters not deterministic across identical sweeps: %+v vs %+v", got, cs)
	}

	// Pipeline leg: full analyses on the new engine at 1, 2, and NumCPU
	// workers must agree byte-for-byte, and each switch's verdict must
	// match the serial reference baseline established above.
	st := scout.State{
		Deployment: dep,
		TCAM:       tcam,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}
	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	fmt.Fprintf(w, "\n%-8s %13s %12s %12s %12s %12s\n",
		"workers", "total nodes", "L1 hits", "L2 hits", "base hits", "misses")
	var baseline []byte
	for _, workers := range workerCounts {
		rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers}).AnalyzeState(st)
		if err != nil {
			return err
		}
		rep.Elapsed = 0
		data, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		if baseline == nil {
			baseline = data
			for _, sr := range rep.Switches {
				want := refReps[sr.Switch].rep
				if sr.Equivalent != want.Equivalent {
					return fmt.Errorf("switch %d: pipeline verdict %v, map-backed baseline %v",
						sr.Switch, sr.Equivalent, want.Equivalent)
				}
				if !reflect.DeepEqual(sr.MissingRules, want.MissingRules) ||
					!reflect.DeepEqual(sr.ExtraRules, want.ExtraRules) {
					return fmt.Errorf("switch %d: pipeline missing/extra rules differ from map-backed baseline", sr.Switch)
				}
			}
		} else if !bytes.Equal(data, baseline) {
			return fmt.Errorf("workers=%d: report differs from workers=1 (identity violation)", workers)
		}
		es := rep.EncodeStats
		oc := es.OpCache
		fmt.Fprintf(w, "%-8d %13d %12d %12d %12d %12d\n",
			workers, es.TotalNodes(), oc.L1Hits, oc.L2Hits, oc.BaseHits, oc.Misses)
	}
	fmt.Fprintln(w, "\nreports byte-identical to the map-backed reference and across worker counts: true")
	fmt.Fprintln(w, "node-construction and cache-hit counters identical across engines and repeat sweeps: true")
	return nil
}

// runWarmStore measures durable warm state: a session persists its
// frozen encoding base and per-switch verdicts into a content-addressed
// store directory, and a fresh process (new store handle, new session)
// over the unchanged fabric restores them instead of rebuilding.
// Asserting on counters only (CI runners may be single-core):
//
//   - every restarted session loads exactly one base and rebuilds none,
//     re-checks zero switches, and encodes zero matches and folds zero
//     rule lists — the whole BDD warm state came off disk — at workers
//     1, 2, and NumCPU;
//   - each restarted report is byte-identical to the warm in-process
//     report the original session produced;
//   - a restart over a mutated fabric re-checks exactly the dirty
//     switch and matches a cold analyzer on the same state, proving the
//     restored cache is live, not merely replayable.
func runWarmStore(cfg config, w io.Writer) error {
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	numSwitches := topo.NumSwitches()

	// Dirty a strict subset up front so the persisted verdicts carry
	// real missing-rule payloads, not just "equivalent" bits.
	faulted := minInt(3, numSwitches)
	for _, sw := range topo.Switches()[:faulted] {
		s, err := f.Switch(sw)
		if err != nil {
			return err
		}
		rules, err := f.CollectTCAM(sw)
		if err != nil {
			return err
		}
		if len(rules) == 0 || !s.TCAM().Remove(rules[0].Key()) {
			return fmt.Errorf("could not dirty switch %d", sw)
		}
	}
	fmt.Fprintf(w, "fabric: %d switches, %d faulted before the first run\n\n", numSwitches, faulted)

	dir, err := os.MkdirTemp("", "scout-warmstore-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	reportJSON := func(rep *scout.Report) ([]byte, error) {
		rep.Elapsed = 0
		return json.Marshal(rep)
	}

	// Original process: cold run builds and persists, a second run pins
	// the in-process warm report the restarts must reproduce.
	ws1, err := scout.OpenWarmStore(dir)
	if err != nil {
		return err
	}
	sess1, err := scout.NewSession(f, scout.AnalyzerOptions{Workers: cfg.workers, WarmStore: ws1})
	if err != nil {
		return err
	}
	rep, err := sess1.Analyze()
	if err != nil {
		return err
	}
	coldElapsed := rep.Elapsed
	if st := sess1.Stats(); st.BaseRebuilds != 1 || st.Checked != numSwitches {
		return fmt.Errorf("cold run: %d base rebuilds, %d checked, want 1 and %d", st.BaseRebuilds, st.Checked, numSwitches)
	}
	rep, err = sess1.Analyze()
	if err != nil {
		return err
	}
	warmElapsed := rep.Elapsed
	if st := sess1.Stats(); st.Checked != numSwitches {
		return fmt.Errorf("in-process warm run re-checked %d switches beyond the cold run", st.Checked-numSwitches)
	}
	want, err := reportJSON(rep)
	if err != nil {
		return err
	}
	if err := sess1.Close(); err != nil {
		return err
	}
	if err := ws1.Close(); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var stateBytes int64
	for _, ent := range entries {
		if info, err := ent.Info(); err == nil {
			stateBytes += info.Size()
		}
	}
	fmt.Fprintf(w, "%-34s cold %v, warm %v, %d state files (%d KiB)\n",
		"original process:", coldElapsed.Round(time.Microsecond), warmElapsed.Round(time.Microsecond),
		len(entries), stateBytes/1024)

	// Restarted processes: fresh store handle and session per worker
	// count over the unchanged fabric.
	restart := func(workers int) (*scout.Session, *scout.WarmStore, error) {
		ws, err := scout.OpenWarmStore(dir)
		if err != nil {
			return nil, nil, err
		}
		sess, err := scout.NewSession(f, scout.AnalyzerOptions{Workers: workers, WarmStore: ws})
		if err != nil {
			ws.Close()
			return nil, nil, err
		}
		return sess, ws, nil
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		sess, ws, err := restart(workers)
		if err != nil {
			return err
		}
		rep, err := sess.Analyze()
		if err != nil {
			return err
		}
		st := sess.Stats()
		label := fmt.Sprintf("restart (workers=%d):", workers)
		fmt.Fprintf(w, "%-34s base loads %d / rebuilds %d, %d replayed / %d checked, %v\n",
			label, st.BaseLoads, st.BaseRebuilds, st.Replayed, st.Checked, rep.Elapsed.Round(time.Microsecond))
		if st.BaseLoads != 1 || st.BaseRebuilds != 0 {
			return fmt.Errorf("%s loaded %d bases and rebuilt %d, want 1 and 0", label, st.BaseLoads, st.BaseRebuilds)
		}
		if st.Checked != 0 || st.Replayed != numSwitches {
			return fmt.Errorf("%s checked %d and replayed %d switches, want 0 and %d", label, st.Checked, st.Replayed, numSwitches)
		}
		if st.EncodeMisses != 0 || st.FoldMisses != 0 {
			return fmt.Errorf("%s encoded: %d match misses, %d fold misses, want none", label, st.EncodeMisses, st.FoldMisses)
		}
		got, err := reportJSON(rep)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s report differs from the warm in-process report (identity violation)", label)
		}
		if err := sess.Close(); err != nil {
			return err
		}
		if err := ws.Close(); err != nil {
			return err
		}
	}

	// Dirty restart: mutate one more switch, restart, and expect exactly
	// one re-check whose report matches a cold analyzer.
	dirtySw := topo.Switches()[numSwitches-1]
	s, err := f.Switch(dirtySw)
	if err != nil {
		return err
	}
	rules, err := f.CollectTCAM(dirtySw)
	if err != nil {
		return err
	}
	if len(rules) == 0 || !s.TCAM().Remove(rules[0].Key()) {
		return fmt.Errorf("could not dirty switch %d", dirtySw)
	}
	sess, ws, err := restart(cfg.workers)
	if err != nil {
		return err
	}
	rep, err = sess.Analyze()
	if err != nil {
		return err
	}
	st := sess.Stats()
	fmt.Fprintf(w, "%-34s %d replayed / %d checked, %v\n",
		"dirty restart (1 mutated switch):", st.Replayed, st.Checked, rep.Elapsed.Round(time.Microsecond))
	if st.Checked != 1 || st.Replayed != numSwitches-1 {
		return fmt.Errorf("dirty restart checked %d and replayed %d switches, want 1 and %d", st.Checked, st.Replayed, numSwitches-1)
	}
	got, err := reportJSON(rep)
	if err != nil {
		return err
	}
	coldRep, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: cfg.workers}).Analyze(f)
	if err != nil {
		return err
	}
	coldWant, err := reportJSON(coldRep)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, coldWant) {
		return fmt.Errorf("dirty restart report differs from cold analyzer (identity violation)")
	}
	if err := sess.Close(); err != nil {
		return err
	}
	if err := ws.Close(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nrestarted sessions loaded one base, rebuilt none, re-checked zero switches: true")
	fmt.Fprintln(w, "restarted sessions encoded zero matches and folded zero rule lists: true")
	fmt.Fprintln(w, "restarted reports byte-identical to the warm in-process report at workers 1/2/NumCPU: true")
	fmt.Fprintln(w, "dirty restart re-checked exactly the mutated switch and matched a cold analysis: true")
	return nil
}

// runLocalizer gates the compiled-plan localization engine against the
// retained map-based reference. Asserting on counters and result
// identity only (CI runners may be single-core):
//
//   - over a corpus of workload fault overlays on one pristine
//     controller model, every SCOUT/SCORE-0.6/SCORE-1 Result is
//     identical (reflect.DeepEqual, including Steps, Iterations, and
//     ChangeLogPicks) between the engines, with exactly one plan
//     compile — every overlay run reuses the pristine model's cached
//     plan;
//   - full pipeline analyses with the plan engine and with RefLocalizer
//     produce byte-identical JSON reports at workers 1, 2, and NumCPU;
//   - a warm session over a faulty fabric compiles plans only on its
//     cold run (one controller plan plus one per broken switch) and
//     re-localizes warm runs entirely from cached plans; a session over
//     a clean fabric never compiles a plan at all.
func runLocalizer(cfg config, w io.Writer) error {
	env, err := eval.NewEnv(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	buildWorkers := cfg.workers
	if buildWorkers <= 0 {
		buildWorkers = runtime.NumCPU()
	}
	pristine := risk.BuildControllerModelParallel(env.Deployment,
		risk.ControllerModelOptions{IncludeSwitchRisk: true}, buildWorkers)
	planAlgos := eval.StandardAlgorithms()
	refAlgos := eval.RefStandardAlgorithms()
	candidates := env.Index.Objects()
	rng := rand.New(rand.NewSource(cfg.seed))
	before := localize.StatsSnapshot()
	scenarios := 0
	var planDur, refDur time.Duration
	for i := 0; i < 40; i++ {
		sc, err := workload.NewScenario(rng, candidates, 1+i%5, cfg.noise)
		if err != nil {
			return err
		}
		ov := risk.NewOverlay(pristine)
		workload.ApplyToControllerModel(ov, env.Deployment, env.Index, sc, rng)
		if ov.NumFailedEdges() == 0 {
			continue
		}
		scenarios++
		for k := range planAlgos {
			start := time.Now()
			got := planAlgos[k].Run(ov, sc.Changed)
			planDur += time.Since(start)
			start = time.Now()
			want := refAlgos[k].Run(ov, sc.Changed)
			refDur += time.Since(start)
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("scenario %d, %s: compiled-plan Result differs from map-based reference", i, planAlgos[k].Name)
			}
		}
	}
	if scenarios == 0 {
		return fmt.Errorf("no overlay scenario produced failures")
	}
	planRuns := scenarios * len(planAlgos)
	d := localize.StatsSnapshot().Delta(before)
	if d.PlanCompiles != 1 {
		return fmt.Errorf("corpus: %d plan compiles over %d overlay runs, want exactly 1 (pristine model compiled once)", d.PlanCompiles, planRuns)
	}
	if int(d.PlanReuses) != planRuns-1 {
		return fmt.Errorf("corpus: %d plan reuses, want %d (every run after the first)", d.PlanReuses, planRuns-1)
	}
	fmt.Fprintf(w, "corpus: %d overlay scenarios x %d algorithms, Results identical on both engines\n",
		scenarios, len(planAlgos))
	fmt.Fprintf(w, "plan cache: %d compile / %d reuses over %d plan-engine runs\n",
		d.PlanCompiles, d.PlanReuses, planRuns)
	if d.FullScanEvals > 0 {
		fmt.Fprintf(w, "lazy greedy: %d heap re-evaluations for %d picks vs %d eager coverage evaluations (%.1fx fewer)\n",
			d.LazyEvals, d.LazyPicks, d.FullScanEvals,
			float64(d.FullScanEvals)/float64(maxInt(1, int(d.LazyEvals))))
	}
	speedup := float64(refDur) / float64(maxInt(1, int(planDur)))
	fmt.Fprintf(w, "engine wall clock (informational, not asserted): compiled-plan %v, map-based %v (%.2fx)\n\n",
		planDur.Round(time.Millisecond), refDur.Round(time.Millisecond), speedup)

	// Pipeline leg: full analyses through both engines at 1, 2, and
	// NumCPU workers must all marshal to the same bytes (LocalizeStats is
	// diagnostics-only and excluded from the JSON form). Capacity large
	// enough that deployment never overflows a TCAM: the injected faults
	// are then the only inconsistencies, and the control fabric below is
	// genuinely clean.
	pol, topo, err := scout.GenerateWorkload(eval.SimSpec(cfg.scale), cfg.seed)
	if err != nil {
		return err
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed, TCAMCapacity: 1 << 17})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}
	filters := make([]scout.ObjectID, 0, len(pol.Filters))
	for id := range pol.Filters {
		filters = append(filters, id)
	}
	sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })
	for _, id := range filters[:minInt(3, len(filters))] {
		if _, err := f.InjectObjectFault(scout.FilterRef(id), 1.0); err != nil {
			return err
		}
	}
	st := scout.State{
		Deployment: f.Deployment(),
		TCAM:       f.CollectAll(),
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}
	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	var baseline []byte
	for _, workers := range workerCounts {
		for _, refLoc := range []bool{false, true} {
			rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers, RefLocalizer: refLoc}).AnalyzeState(st)
			if err != nil {
				return err
			}
			if rep.Consistent {
				return fmt.Errorf("pipeline: faulty fabric analyzed consistent; localization never ran")
			}
			if !refLoc && (rep.LocalizeStats == nil || rep.LocalizeStats.PlanCompiles < 1) {
				return fmt.Errorf("pipeline: plan-engine run reported no plan compiles")
			}
			rep.Elapsed = 0
			data, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			if baseline == nil {
				baseline = data
			} else if !bytes.Equal(data, baseline) {
				return fmt.Errorf("workers=%d refLocalizer=%v: report differs from plan-engine workers=1 (identity violation)", workers, refLoc)
			}
		}
	}
	fmt.Fprintf(w, "pipeline: reports byte-identical across engines at workers %v\n", workerCounts)

	// Warm-session leg: plans compile on the cold run only.
	sess, err := scout.NewSession(f, scout.AnalyzerOptions{Workers: cfg.workers})
	if err != nil {
		return err
	}
	coldRep, err := sess.Analyze()
	if err != nil {
		return err
	}
	broken := 0
	for _, sr := range coldRep.Switches {
		if !sr.Equivalent {
			broken++
		}
	}
	coldStats := sess.Stats()
	if coldStats.PlanCompiles != 1+broken {
		return fmt.Errorf("cold session run compiled %d plans, want %d (controller + %d broken switches)",
			coldStats.PlanCompiles, 1+broken, broken)
	}
	coldJSON, err := json.Marshal(coldRep)
	if err != nil {
		return err
	}
	warmRep, err := sess.Analyze()
	if err != nil {
		return err
	}
	warmStats := sess.Stats()
	if warmStats.PlanCompiles != coldStats.PlanCompiles {
		return fmt.Errorf("warm session run compiled %d plans, want 0",
			warmStats.PlanCompiles-coldStats.PlanCompiles)
	}
	if warmStats.PlanReuses < coldStats.PlanReuses+1+broken {
		return fmt.Errorf("warm session run reused %d plans, want at least %d (controller + broken switches)",
			warmStats.PlanReuses-coldStats.PlanReuses, 1+broken)
	}
	coldRep.Elapsed = 0
	warmRep.Elapsed = 0
	warmJSON, err := json.Marshal(warmRep)
	if err != nil {
		return err
	}
	coldJSON, err = json.Marshal(coldRep)
	if err != nil {
		return err
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		return fmt.Errorf("warm session report differs from cold (identity violation)")
	}
	fmt.Fprintf(w, "faulty-fabric session: cold run %d compiles (controller + %d broken switches), warm run 0 compiles / %d reuses\n",
		coldStats.PlanCompiles, broken, warmStats.PlanReuses-coldStats.PlanReuses)

	// Clean fabric: nothing to localize, so no plan is ever compiled.
	clean, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: cfg.seed, TCAMCapacity: 1 << 17})
	if err != nil {
		return err
	}
	if err := clean.Deploy(); err != nil {
		return err
	}
	cleanSess, err := scout.NewSession(clean, scout.AnalyzerOptions{Workers: cfg.workers})
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		rep, err := cleanSess.Analyze()
		if err != nil {
			return err
		}
		if !rep.Consistent {
			return fmt.Errorf("clean fabric analyzed inconsistent")
		}
	}
	if st := cleanSess.Stats(); st.PlanCompiles != 0 || st.PlanReuses != 0 {
		return fmt.Errorf("clean-fabric session compiled %d / reused %d plans, want zero localization work",
			st.PlanCompiles, st.PlanReuses)
	}
	fmt.Fprintf(w, "clean-fabric session: 2 runs, zero plan compiles\n")

	fmt.Fprintln(w, "\ncorpus Results identical between engines with one plan compile, all reuses: true")
	fmt.Fprintln(w, "pipeline reports byte-identical across engines and worker counts: true")
	fmt.Fprintln(w, "warm session runs compile zero plans (faulty and clean fabrics): true")
	return nil
}
