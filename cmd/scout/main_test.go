package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"scout"
)

func TestParseFault(t *testing.T) {
	tests := []struct {
		in       string
		wantRef  scout.ObjectRef
		wantFrac float64
		wantErr  bool
	}{
		{"filter:5003@1.0", scout.FilterRef(5003), 1.0, false},
		{"epg:1004@0.4", scout.EPGRef(1004), 0.4, false},
		{"vrf:101", scout.VRFRef(101), 1.0, false}, // fraction defaults to 1
		{"contract:3000@0.25", scout.ContractRef(3000), 0.25, false},
		{"bogus:1@1.0", scout.ObjectRef{}, 0, true},
		{"filter:abc@1.0", scout.ObjectRef{}, 0, true},
		{"filter:1@xyz", scout.ObjectRef{}, 0, true},
		{"", scout.ObjectRef{}, 0, true},
	}
	for _, tt := range tests {
		ref, frac, err := parseFault(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseFault(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if ref != tt.wantRef || frac != tt.wantFrac {
			t.Errorf("parseFault(%q) = %v@%v, want %v@%v", tt.in, ref, frac, tt.wantRef, tt.wantFrac)
		}
	}
}

func TestLoadPolicyGenerates(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Stats().EPGs == 0 || topo.NumSwitches() == 0 {
		t.Error("generated policy empty")
	}
	if _, _, err := loadPolicy("", "nope", 1); err == nil {
		t.Error("unknown spec must fail")
	}
	if _, _, err := loadPolicy("/nonexistent/file.json", "", 1); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadPolicyFromFile(t *testing.T) {
	pol, _, err := loadPolicy("", "testbed", 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/policy.json"
	data, err := marshalPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	loaded, topo, err := loadPolicy(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != pol.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", loaded.Stats(), pol.Stats())
	}
	if topo.NumSwitches() == 0 {
		t.Error("topology not derived")
	}
}

func TestLoadPolicySmallSpec(t *testing.T) {
	pol, topo, err := loadPolicy("", "small", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Stats().EPGs == 0 || topo.NumSwitches() == 0 {
		t.Error("generated small-fabric policy empty")
	}
}

// TestRunWatch drives the event-driven daemon loop: a full baseline
// round, then fault-injection events drain through the coalescing queue
// and the shutdown flush cuts one batch that re-checks only the
// switches the events named.
func TestRunWatch(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	// The lowest EPG's rules live on a strict subset of the testbed's
	// switches (unlike a filter fault, which touches everything), so the
	// batch exercises the aliased-switch path.
	var epgID scout.ObjectID
	for id := range pol.EPGs {
		if epgID == 0 || id < epgID {
			epgID = id
		}
	}

	var out bytes.Buffer
	report, pstats, err := runWatch(f, []objectFault{{ref: scout.EPGRef(epgID), fraction: 1.0}},
		watchOptions{analyzer: scout.AnalyzerOptions{Workers: 2}, window: 2 * time.Second, queueCap: 64}, &out)
	if err != nil {
		t.Fatalf("runWatch: %v\noutput:\n%s", err, out.String())
	}
	if report == nil || report.Consistent {
		t.Fatalf("final watch report must flag the fault; output:\n%s", out.String())
	}
	if pstats != nil {
		t.Error("TCAM-mode watch must not return prober stats")
	}
	n := topo.NumSwitches()
	for _, want := range []string{
		fmt.Sprintf("baseline: full collection: re-checked %d/%d", n, n),
		"injected epg:",
		"batch 1: ",
		"event queue: ",
		"streaming collection: 1 partial refreshes, ",
		"session encodings: base ",
		"(1 rebuilds, ",
		"session fold sharing: hits ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The batch must re-read strictly fewer switches than the fabric has
	// — the fault touched a subset and the rest aliased the prior epoch.
	if strings.Contains(out.String(), fmt.Sprintf("batch 1: %d switches", n)) ||
		strings.Contains(out.String(), ", 0 aliased") {
		t.Errorf("fault batch re-read every switch — partial refresh not engaged:\n%s", out.String())
	}
}

// TestRunWatchProbes drives the daemon loop in probe mode: the baseline
// round probes every switch, and the fault round's fingerprint pass
// replays clean switches so only the dirtied subset is re-classified.
func TestRunWatchProbes(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	var epgID scout.ObjectID
	for id := range pol.EPGs {
		if epgID == 0 || id < epgID {
			epgID = id
		}
	}

	var out bytes.Buffer
	report, pstats, err := runWatch(f, []objectFault{{ref: scout.EPGRef(epgID), fraction: 1.0}},
		watchOptions{analyzer: scout.AnalyzerOptions{Workers: 2, UseProbes: true}, window: 2 * time.Second, queueCap: 64}, &out)
	if err != nil {
		t.Fatalf("runWatch: %v\noutput:\n%s", err, out.String())
	}
	if report == nil || report.Consistent {
		t.Fatalf("final probe-watch report must flag the fault; output:\n%s", out.String())
	}
	if pstats == nil || pstats.BatchPasses == 0 {
		t.Fatalf("probe-mode watch must return live prober stats, got %+v", pstats)
	}
	n := topo.NumSwitches()
	for _, want := range []string{
		fmt.Sprintf("baseline: full probe round: classified %d/%d switches (0 replayed", n, n),
		"injected epg:",
		"batch 1: ",
		"probe replay: ",
		"prober: packet memo ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The fault batch must replay at least one clean switch — the EPG
	// fault only dirties a subset of the testbed.
	if strings.Contains(out.String(), fmt.Sprintf("batch 1: classified %d/%d switches (0 replayed", n, n)) {
		t.Errorf("fault round re-classified every switch — fingerprint replay not engaged:\n%s", out.String())
	}
}

// TestCheckWatchFlags pins the one-shot/daemon flag-combination rules:
// mixing them must fail loudly instead of silently misbehaving.
func TestCheckWatchFlags(t *testing.T) {
	tests := []struct {
		name    string
		watch   bool
		set     []string
		wantErr bool
	}{
		{"watch alone", true, nil, false},
		{"watch with fault", true, []string{"fault", "v"}, false},
		{"watch with scenario", true, []string{"scenario"}, true},
		{"one-shot with scenario", false, []string{"scenario"}, false},
		{"batch-window without watch", false, []string{"batch-window"}, true},
		{"queue-cap without watch", false, []string{"queue-cap"}, true},
		{"watch with batching knobs", true, []string{"batch-window", "queue-cap"}, false},
	}
	for _, tt := range tests {
		set := make(map[string]bool, len(tt.set))
		for _, name := range tt.set {
			set[name] = true
		}
		err := checkWatchFlags(tt.watch, set)
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: checkWatchFlags = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

// TestCheckStateFlags pins the warm-state flag rules: the GC bounds are
// meaningless without a directory to bound and must fail loudly.
func TestCheckStateFlags(t *testing.T) {
	tests := []struct {
		name     string
		stateDir string
		set      []string
		wantErr  bool
	}{
		{"no state flags", "", nil, false},
		{"state-dir alone", "/tmp/warm", []string{"state-dir"}, false},
		{"state-dir with both bounds", "/tmp/warm", []string{"state-dir", "state-gc-age", "state-cap"}, false},
		{"gc-age without state-dir", "", []string{"state-gc-age"}, true},
		{"cap without state-dir", "", []string{"state-cap"}, true},
	}
	for _, tt := range tests {
		set := make(map[string]bool, len(tt.set))
		for _, name := range tt.set {
			set[name] = true
		}
		err := checkStateFlags(tt.stateDir, set)
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: checkStateFlags = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}
