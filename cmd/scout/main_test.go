package main

import (
	"testing"

	"scout"
)

func TestParseFault(t *testing.T) {
	tests := []struct {
		in       string
		wantRef  scout.ObjectRef
		wantFrac float64
		wantErr  bool
	}{
		{"filter:5003@1.0", scout.FilterRef(5003), 1.0, false},
		{"epg:1004@0.4", scout.EPGRef(1004), 0.4, false},
		{"vrf:101", scout.VRFRef(101), 1.0, false}, // fraction defaults to 1
		{"contract:3000@0.25", scout.ContractRef(3000), 0.25, false},
		{"bogus:1@1.0", scout.ObjectRef{}, 0, true},
		{"filter:abc@1.0", scout.ObjectRef{}, 0, true},
		{"filter:1@xyz", scout.ObjectRef{}, 0, true},
		{"", scout.ObjectRef{}, 0, true},
	}
	for _, tt := range tests {
		ref, frac, err := parseFault(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseFault(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if ref != tt.wantRef || frac != tt.wantFrac {
			t.Errorf("parseFault(%q) = %v@%v, want %v@%v", tt.in, ref, frac, tt.wantRef, tt.wantFrac)
		}
	}
}

func TestLoadPolicyGenerates(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Stats().EPGs == 0 || topo.NumSwitches() == 0 {
		t.Error("generated policy empty")
	}
	if _, _, err := loadPolicy("", "nope", 1); err == nil {
		t.Error("unknown spec must fail")
	}
	if _, _, err := loadPolicy("/nonexistent/file.json", "", 1); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadPolicyFromFile(t *testing.T) {
	pol, _, err := loadPolicy("", "testbed", 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/policy.json"
	data, err := marshalPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	loaded, topo, err := loadPolicy(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != pol.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", loaded.Stats(), pol.Stats())
	}
	if topo.NumSwitches() == 0 {
		t.Error("topology not derived")
	}
}
