package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"scout"
)

func TestParseFault(t *testing.T) {
	tests := []struct {
		in       string
		wantRef  scout.ObjectRef
		wantFrac float64
		wantErr  bool
	}{
		{"filter:5003@1.0", scout.FilterRef(5003), 1.0, false},
		{"epg:1004@0.4", scout.EPGRef(1004), 0.4, false},
		{"vrf:101", scout.VRFRef(101), 1.0, false}, // fraction defaults to 1
		{"contract:3000@0.25", scout.ContractRef(3000), 0.25, false},
		{"bogus:1@1.0", scout.ObjectRef{}, 0, true},
		{"filter:abc@1.0", scout.ObjectRef{}, 0, true},
		{"filter:1@xyz", scout.ObjectRef{}, 0, true},
		{"", scout.ObjectRef{}, 0, true},
	}
	for _, tt := range tests {
		ref, frac, err := parseFault(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseFault(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if ref != tt.wantRef || frac != tt.wantFrac {
			t.Errorf("parseFault(%q) = %v@%v, want %v@%v", tt.in, ref, frac, tt.wantRef, tt.wantFrac)
		}
	}
}

func TestLoadPolicyGenerates(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Stats().EPGs == 0 || topo.NumSwitches() == 0 {
		t.Error("generated policy empty")
	}
	if _, _, err := loadPolicy("", "nope", 1); err == nil {
		t.Error("unknown spec must fail")
	}
	if _, _, err := loadPolicy("/nonexistent/file.json", "", 1); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadPolicyFromFile(t *testing.T) {
	pol, _, err := loadPolicy("", "testbed", 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/policy.json"
	data, err := marshalPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	loaded, topo, err := loadPolicy(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != pol.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", loaded.Stats(), pol.Stats())
	}
	if topo.NumSwitches() == 0 {
		t.Error("topology not derived")
	}
}

func TestLoadPolicySmallSpec(t *testing.T) {
	pol, topo, err := loadPolicy("", "small", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Stats().EPGs == 0 || topo.NumSwitches() == 0 {
		t.Error("generated small-fabric policy empty")
	}
}

// TestRunWatch drives the persistent-session mode: a full baseline round,
// then one delta round per fault that re-checks only touched switches.
func TestRunWatch(t *testing.T) {
	pol, topo, err := loadPolicy("", "testbed", 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	var filterID scout.ObjectID
	for id := range pol.Filters {
		if filterID == 0 || id < filterID {
			filterID = id
		}
	}

	var out bytes.Buffer
	report, err := runWatch(f, []objectFault{{ref: scout.FilterRef(filterID), fraction: 1.0}},
		scout.AnalyzerOptions{Workers: 2}, &out)
	if err != nil {
		t.Fatalf("runWatch: %v\noutput:\n%s", err, out.String())
	}
	if report == nil || report.Consistent {
		t.Fatalf("final watch report must flag the fault; output:\n%s", out.String())
	}
	n := topo.NumSwitches()
	for _, want := range []string{
		fmt.Sprintf("epoch 1 (baseline): re-checked %d/%d", n, n),
		"injected filter:",
		fmt.Sprintf("epoch 2 (filter:%d): re-checked", filterID),
		"session encodings: base ",
		"(1 rebuilds, ",
		"session fold sharing: hits ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
