// Command scout runs the end-to-end fault-localization pipeline on a
// policy: deploy onto the simulated fabric, inject the requested faults,
// then collect, check, localize, and correlate.
//
// Usage:
//
//	scout -policy policy.json -fault filter:5003@1.0 -fault epg:1004@0.4 \
//	      -disconnect 3 -v
//	scout -spec testbed -fault filter:5002@1.0
//	scout -spec small -watch -fault filter:5003@1.0 -fault epg:1004@0.4
//
// Fault syntax: <kind>:<id>@<fraction> where fraction 1.0 is a full
// object fault and anything lower a partial fault. -disconnect takes a
// switch ID to render unreachable before a final no-op policy touch.
// -watch replaces the one-shot analysis with a persistent session:
// a full baseline run, then one collection + delta re-verification round
// per fault, re-checking only the switches each fault touched.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"scout"
)

// marshalPolicy and writeFile are seams for tests.
func marshalPolicy(p *scout.Policy) ([]byte, error) { return json.Marshal(p) }

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// faultFlags accumulates repeated -fault arguments.
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scout:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyPath = flag.String("policy", "", "policy JSON file (from policygen); empty generates -spec")
		specName   = flag.String("spec", "testbed", "spec to generate when -policy is empty: production or testbed")
		seed       = flag.Int64("seed", 1, "fabric and generator seed")
		capacity   = flag.Int("tcam", 0, "per-switch TCAM capacity (0 = default)")
		disconnect = flag.Int("disconnect", -1, "switch ID to disconnect before analysis")
		scenPath   = flag.String("scenario", "", "JSON scenario file to replay instead of -fault/-disconnect")
		workers    = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")
		watch      = flag.Bool("watch", false, "drive a persistent analysis session: snapshot + delta re-verification around every injected fault")
		jsonOut    = flag.Bool("json", false, "emit the analysis report as JSON")
		verbose    = flag.Bool("v", false, "print per-switch details")
	)
	var faults faultFlags
	flag.Var(&faults, "fault", "object fault to inject, e.g. filter:5003@1.0 (repeatable)")
	flag.Parse()

	pol, topo, err := loadPolicy(*policyPath, *specName, *seed)
	if err != nil {
		return err
	}
	st := pol.Stats()
	fmt.Printf("policy %q: %d VRFs, %d EPGs, %d contracts, %d filters, %d EPG pairs\n",
		pol.Name, st.VRFs, st.EPGs, st.Contracts, st.Filters, st.EPGPairs)

	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: *seed, TCAMCapacity: *capacity})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}

	if *scenPath != "" {
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			return err
		}
		sc, err := scout.ParseScenario(data)
		if err != nil {
			return err
		}
		res, err := sc.Run(f)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %q: %d steps, %d rules removed, %d corrupted\n",
			sc.Name, res.StepsRun, res.RulesRemoved, res.RulesCorrupted)
	}

	parsed := make([]objectFault, 0, len(faults))
	for _, spec := range faults {
		ref, fraction, err := parseFault(spec)
		if err != nil {
			return err
		}
		parsed = append(parsed, objectFault{ref: ref, fraction: fraction})
	}

	// The disconnect (and its visibility-granting policy touch) applies
	// in both modes: one-shot analyses see it alongside the faults, watch
	// sessions fold it into the baseline round. Fault injection order is
	// immaterial — faults bypass the agent views, so the redeploy here
	// never restores them.
	if *disconnect >= 0 {
		sw := scout.ObjectID(*disconnect)
		if err := f.Disconnect(sw); err != nil {
			return err
		}
		// A no-op-ish policy touch so the outage has visible impact: add
		// a probe filter to the first bound contract.
		if len(pol.Bindings) > 0 {
			if err := f.AddFilter(scout.Filter{ID: 64999, Name: "probe", Entries: []scout.FilterEntry{
				scout.PortEntry(scout.ProtoTCP, 64999),
			}}); err != nil {
				return err
			}
			if err := f.AddFilterToContract(pol.Bindings[0].Contract, 64999); err != nil {
				return err
			}
		}
		fmt.Printf("disconnected switch %d during a policy change\n", sw)
	}

	if *watch {
		report, err := runWatch(f, parsed, scout.AnalyzerOptions{Workers: *workers}, os.Stdout)
		if err != nil {
			return err
		}
		return emitReport(report, *jsonOut, *verbose)
	}

	for _, flt := range parsed {
		removed, err := f.InjectObjectFault(flt.ref, flt.fraction)
		if err != nil {
			return err
		}
		fmt.Printf("injected %s @%.2f: %d rules removed\n", flt.ref, flt.fraction, removed)
	}

	report, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: *workers}).Analyze(f)
	if err != nil {
		return err
	}
	return emitReport(report, *jsonOut, *verbose)
}

// emitReport renders the final analysis report (shared by the one-shot and
// watch paths).
func emitReport(report *scout.Report, jsonOut, verbose bool) error {
	if jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(data, '\n'))
		return nil
	}
	fmt.Println()
	fmt.Print(report.Summary())
	if verbose {
		if report.ControllerView != nil {
			// Overlay-aware: warm session runs back the view with a
			// copy-on-write overlay whose counts include its own marks.
			fmt.Printf("\ncontroller risk view: %s\n", report.ControllerView)
		}
		if es := report.EncodeStats; es != nil {
			fmt.Printf("\nbdd encoding: base %d nodes (%d matches, %d semantics warmed), delta %d nodes across %d checkers, encode hits %d (%d from base) / misses %d\n",
				es.BaseNodes, es.BaseMatches, es.BaseSemantics, es.DeltaNodes, es.Checkers, es.Hits(), es.BaseHits, es.Misses)
			fmt.Printf("fold sharing: hits %d (%d from base) / misses %d, check dedup %d groups / %d replays\n",
				es.FoldHits(), es.FoldBaseHits, es.FoldMisses, es.DedupGroups, es.DedupReplays)
		}
		fmt.Println("\nper-switch details:")
		for _, sr := range report.Switches {
			status := "consistent"
			if !sr.Equivalent {
				status = fmt.Sprintf("%d missing rules, local hypothesis %v",
					len(sr.MissingRules), sr.Result.Hypothesis)
			}
			fmt.Printf("  switch %-4d %s\n", sr.Switch, status)
		}
	}
	fmt.Printf("\nanalysis wall-clock: %v\n", report.Elapsed)
	return nil
}

// objectFault is one parsed -fault argument.
type objectFault struct {
	ref      scout.ObjectRef
	fraction float64
}

// runWatch drives a persistent analysis session the way a production
// deployment would: a clean baseline epoch is collected and fully
// analyzed, then every fault is injected in its own round — snapshot,
// delta re-verification of only the switches the fault touched, report.
// It returns the final round's report.
func runWatch(f *scout.Fabric, faults []objectFault, opts scout.AnalyzerOptions, w io.Writer) (*scout.Report, error) {
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		return nil, err
	}
	collector := scout.NewCollector(f, len(faults)+1)

	round := func(label string) (*scout.Report, error) {
		epoch := collector.Snapshot()
		before := sess.Stats()
		report, err := sess.AnalyzeEpoch(epoch)
		if err != nil {
			return nil, err
		}
		after := sess.Stats()
		fmt.Fprintf(w, "epoch %d (%s): re-checked %d/%d switches (%d replayed), %d missing rules, %v\n",
			epoch.Seq, label, after.Checked-before.Checked, len(report.Switches),
			after.Replayed-before.Replayed, report.TotalMissing, report.Elapsed.Round(time.Microsecond))
		return report, nil
	}

	report, err := round("baseline")
	if err != nil {
		return nil, err
	}
	for _, flt := range faults {
		removed, err := f.InjectObjectFault(flt.ref, flt.fraction)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "injected %s @%.2f: %d rules removed\n", flt.ref, flt.fraction, removed)
		if report, err = round(flt.ref.String()); err != nil {
			return nil, err
		}
	}
	st := sess.Stats()
	fmt.Fprintf(w, "session encodings: base %d nodes (%d rebuilds, %d semantics), delta %d nodes, encode hits %d / misses %d\n",
		st.BaseNodes, st.BaseRebuilds, st.BaseSemantics, st.DeltaNodes, st.EncodeHits, st.EncodeMisses)
	fmt.Fprintf(w, "session fold sharing: hits %d / misses %d, check dedup %d groups / %d replays\n",
		st.FoldHits, st.FoldMisses, st.DedupGroups, st.DedupReplays)
	return report, nil
}

func loadPolicy(path, specName string, seed int64) (*scout.Policy, *scout.Topology, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		pol, err := scout.PolicyFromJSON(data)
		if err != nil {
			return nil, nil, err
		}
		return pol, scout.TopologyFromPolicy(pol), nil
	}
	var spec scout.WorkloadSpec
	switch specName {
	case "production":
		spec = scout.ProductionWorkloadSpec()
	case "testbed":
		spec = scout.TestbedWorkloadSpec()
	case "small":
		spec = scout.SmallFabricWorkloadSpec()
	default:
		return nil, nil, fmt.Errorf("unknown spec %q", specName)
	}
	return scout.GenerateWorkload(spec, seed)
}

func parseFault(s string) (scout.ObjectRef, float64, error) {
	refStr, fracStr, found := strings.Cut(s, "@")
	fraction := 1.0
	if found {
		var err error
		fraction, err = strconv.ParseFloat(fracStr, 64)
		if err != nil {
			return scout.ObjectRef{}, 0, fmt.Errorf("fault %q: bad fraction: %w", s, err)
		}
	}
	ref, err := scout.ParseObjectRef(refStr)
	if err != nil {
		return scout.ObjectRef{}, 0, fmt.Errorf("fault %q: %w", s, err)
	}
	return ref, fraction, nil
}
