// Command scout runs the end-to-end fault-localization pipeline on a
// policy: deploy onto the simulated fabric, inject the requested faults,
// then collect, check, localize, and correlate.
//
// Usage:
//
//	scout -policy policy.json -fault filter:5003@1.0 -fault epg:1004@0.4 \
//	      -disconnect 3 -v
//	scout -spec testbed -fault filter:5002@1.0
//	scout -spec small -watch -fault filter:5003@1.0 -fault epg:1004@0.4
//
// Fault syntax: <kind>:<id>@<fraction> where fraction 1.0 is a full
// object fault and anything lower a partial fault. -disconnect takes a
// switch ID to render unreachable before a final no-op policy touch.
// -watch replaces the one-shot analysis with an event-driven daemon
// loop over a persistent session: a full baseline round, then dataplane
// events drain from the fabric's event stream through a coalescing
// queue — bounded by -queue-cap, cut by size or the -batch-window
// deadline — and every batch triggers one partial collection and
// incremental re-verification of only the switches its events name.
// -scenario is a one-shot replay and cannot be combined with -watch.
//
// -state-dir names a durable warm-state directory: the analysis (both
// one-shot and -watch) runs through a session that restores a
// fingerprint-matching frozen encoding base and verdict cache on start
// and persists its deltas write-behind, so a restarted process replays
// an unchanged fabric without rebuilding any BDD state. -state-gc-age
// and -state-cap bound the directory on shutdown (age-out and
// least-recently-used eviction) and require -state-dir.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"scout"
)

// marshalPolicy and writeFile are seams for tests.
func marshalPolicy(p *scout.Policy) ([]byte, error) { return json.Marshal(p) }

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// faultFlags accumulates repeated -fault arguments.
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scout:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyPath  = flag.String("policy", "", "policy JSON file (from policygen); empty generates -spec")
		specName    = flag.String("spec", "testbed", "spec to generate when -policy is empty: production or testbed")
		seed        = flag.Int64("seed", 1, "fabric and generator seed")
		capacity    = flag.Int("tcam", 0, "per-switch TCAM capacity (0 = default)")
		disconnect  = flag.Int("disconnect", -1, "switch ID to disconnect before analysis")
		scenPath    = flag.String("scenario", "", "JSON scenario file to replay instead of -fault/-disconnect")
		workers     = flag.Int("workers", 0, "parallel per-switch equivalence checkers (0 = NumCPU, 1 = serial)")
		probes      = flag.Bool("probes", false, "observe via active dataplane probes (batched per-switch classification) instead of TCAM collection")
		watch       = flag.Bool("watch", false, "drive an event-driven session daemon: full baseline, then coalesced per-batch incremental refreshes")
		batchWindow = flag.Duration("batch-window", 2*time.Second, "watch mode: cut a pending batch after its oldest event waited this long (requires -watch)")
		queueCap    = flag.Int("queue-cap", 64, "watch mode: distinct switches buffered before a batch is forced, and the max batch size (requires -watch)")
		stateDir    = flag.String("state-dir", "", "durable warm-state directory: restore fingerprint-matching BDD state on start, persist deltas write-behind")
		stateAge    = flag.Duration("state-gc-age", 0, "on shutdown, remove warm-state files unused longer than this (0 = no age bound; requires -state-dir)")
		stateCap    = flag.Int("state-cap", 0, "on shutdown, keep at most this many warm-state files, least-recently-used evicted first (0 = no cap; requires -state-dir)")
		jsonOut     = flag.Bool("json", false, "emit the analysis report as JSON")
		verbose     = flag.Bool("v", false, "print per-switch details")
	)
	var faults faultFlags
	flag.Var(&faults, "fault", "object fault to inject, e.g. filter:5003@1.0 (repeatable)")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if err := checkWatchFlags(*watch, set); err != nil {
		return err
	}
	if err := checkStateFlags(*stateDir, set); err != nil {
		return err
	}

	pol, topo, err := loadPolicy(*policyPath, *specName, *seed)
	if err != nil {
		return err
	}
	st := pol.Stats()
	fmt.Printf("policy %q: %d VRFs, %d EPGs, %d contracts, %d filters, %d EPG pairs\n",
		pol.Name, st.VRFs, st.EPGs, st.Contracts, st.Filters, st.EPGPairs)

	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: *seed, TCAMCapacity: *capacity})
	if err != nil {
		return err
	}
	if err := f.Deploy(); err != nil {
		return err
	}

	if *scenPath != "" {
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			return err
		}
		sc, err := scout.ParseScenario(data)
		if err != nil {
			return err
		}
		res, err := sc.Run(f)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %q: %d steps, %d rules removed, %d corrupted\n",
			sc.Name, res.StepsRun, res.RulesRemoved, res.RulesCorrupted)
	}

	parsed := make([]objectFault, 0, len(faults))
	for _, spec := range faults {
		ref, fraction, err := parseFault(spec)
		if err != nil {
			return err
		}
		parsed = append(parsed, objectFault{ref: ref, fraction: fraction})
	}

	// The disconnect (and its visibility-granting policy touch) applies
	// in both modes: one-shot analyses see it alongside the faults, watch
	// sessions fold it into the baseline round. Fault injection order is
	// immaterial — faults bypass the agent views, so the redeploy here
	// never restores them.
	if *disconnect >= 0 {
		sw := scout.ObjectID(*disconnect)
		if err := f.Disconnect(sw); err != nil {
			return err
		}
		// A no-op-ish policy touch so the outage has visible impact: add
		// a probe filter to the first bound contract.
		if len(pol.Bindings) > 0 {
			if err := f.AddFilter(scout.Filter{ID: 64999, Name: "probe", Entries: []scout.FilterEntry{
				scout.PortEntry(scout.ProtoTCP, 64999),
			}}); err != nil {
				return err
			}
			if err := f.AddFilterToContract(pol.Bindings[0].Contract, 64999); err != nil {
				return err
			}
		}
		fmt.Printf("disconnected switch %d during a policy change\n", sw)
	}

	var warm *scout.WarmStore
	if *stateDir != "" {
		warm, err = scout.OpenWarmStore(*stateDir)
		if err != nil {
			return err
		}
		defer warm.Close() // idempotent; the happy path closes via finishWarmStore
	}
	aOpts := scout.AnalyzerOptions{Workers: *workers, UseProbes: *probes, WarmStore: warm}

	if *watch {
		report, pstats, err := runWatch(f, parsed, watchOptions{
			analyzer: aOpts,
			window:   *batchWindow,
			queueCap: *queueCap,
		}, os.Stdout)
		if err != nil {
			return err
		}
		if warm != nil {
			if err := finishWarmStore(warm, *stateAge, *stateCap, os.Stdout); err != nil {
				return err
			}
		}
		return emitReport(report, pstats, *jsonOut, *verbose)
	}

	for _, flt := range parsed {
		removed, err := f.InjectObjectFault(flt.ref, flt.fraction)
		if err != nil {
			return err
		}
		fmt.Printf("injected %s @%.2f: %d rules removed\n", flt.ref, flt.fraction, removed)
	}

	var report *scout.Report
	var pstats *scout.ProberStats
	if warm != nil {
		// One-shot with durable state runs through a session, whose
		// reports are byte-identical to the analyzer's: it restores the
		// persisted base and verdicts before the run and flushes its
		// write-behind deltas on Close.
		sess, err := scout.NewSession(f, aOpts)
		if err != nil {
			return err
		}
		report, err = sess.Analyze()
		if err != nil {
			return err
		}
		st := sess.Stats()
		fmt.Printf("warm state: base loaded %d / rebuilt %d, switches replayed %d / checked %d\n",
			st.BaseLoads, st.BaseRebuilds, st.Replayed, st.Checked)
		if ps, ok := sess.ProberStats(); ok {
			pstats = &ps
		}
		if err := sess.Close(); err != nil {
			return err
		}
		if err := finishWarmStore(warm, *stateAge, *stateCap, os.Stdout); err != nil {
			return err
		}
	} else {
		a := scout.NewAnalyzer(aOpts)
		report, err = a.Analyze(f)
		if err != nil {
			return err
		}
		if ps, ok := a.ProberStats(); ok {
			pstats = &ps
		}
	}
	return emitReport(report, pstats, *jsonOut, *verbose)
}

// finishWarmStore runs the configured shutdown GC over the warm-state
// directory and closes the store, surfacing any write-behind
// persistence error the run accumulated.
func finishWarmStore(warm *scout.WarmStore, age time.Duration, maxFiles int, w io.Writer) error {
	if age > 0 || maxFiles > 0 {
		st, err := warm.GC(age, maxFiles)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "warm-state gc: kept %d files, removed %d\n", st.Kept, st.Removed)
	}
	return warm.Close()
}

// emitReport renders the final analysis report (shared by the one-shot and
// watch paths). pstats, when non-nil, carries the probe-mode prober
// counters for the verbose dump.
func emitReport(report *scout.Report, pstats *scout.ProberStats, jsonOut, verbose bool) error {
	if jsonOut {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(data, '\n'))
		return nil
	}
	fmt.Println()
	fmt.Print(report.Summary())
	if verbose {
		if report.ControllerView != nil {
			// Overlay-aware: warm session runs back the view with a
			// copy-on-write overlay whose counts include its own marks.
			fmt.Printf("\ncontroller risk view: %s\n", report.ControllerView)
		}
		if es := report.EncodeStats; es != nil {
			fmt.Printf("\nbdd encoding: base %d nodes (%d matches, %d semantics warmed), delta %d nodes across %d checkers, encode hits %d (%d from base) / misses %d\n",
				es.BaseNodes, es.BaseMatches, es.BaseSemantics, es.DeltaNodes, es.Checkers, es.Hits(), es.BaseHits, es.Misses)
			fmt.Printf("fold sharing: hits %d (%d from base) / misses %d, check dedup %d groups / %d replays\n",
				es.FoldHits(), es.FoldBaseHits, es.FoldMisses, es.DedupGroups, es.DedupReplays)
			fmt.Printf("bdd op cache: %d L1 / %d L2 / %d base hits, %d misses; %d compactions (%d retained / %d dropped)\n",
				es.OpCache.L1Hits, es.OpCache.L2Hits, es.OpCache.BaseHits, es.OpCache.Misses,
				es.Compactions, es.CompactRetained, es.CompactDropped)
		}
		if ls := report.LocalizeStats; ls != nil {
			fmt.Printf("\nlocalization: %d plan compiles / %d reuses, lazy heap %d re-evaluations for %d picks (vs %d eager scans)\n",
				ls.PlanCompiles, ls.PlanReuses, ls.LazyEvals, ls.LazyPicks, ls.FullScanEvals)
			fmt.Printf("localization stages: hit-ratio-1 %v, change-log %v, greedy set cover %v\n",
				ls.Stage1.Round(time.Microsecond), ls.Stage2.Round(time.Microsecond), ls.Greedy.Round(time.Microsecond))
		}
		if pstats != nil {
			fmt.Printf("\nprober: packet memo %d hits / %d misses, %d batch passes (%d packets batched), %d fallback probes\n",
				pstats.MemoHits, pstats.MemoMisses, pstats.BatchPasses, pstats.BatchedPackets, pstats.FallbackProbes)
		}
		fmt.Println("\nper-switch details:")
		for _, sr := range report.Switches {
			status := "consistent"
			if !sr.Equivalent {
				status = fmt.Sprintf("%d missing rules, local hypothesis %v",
					len(sr.MissingRules), sr.Result.Hypothesis)
			}
			fmt.Printf("  switch %-4d %s\n", sr.Switch, status)
		}
	}
	fmt.Printf("\nanalysis wall-clock: %v\n", report.Elapsed)
	return nil
}

// objectFault is one parsed -fault argument.
type objectFault struct {
	ref      scout.ObjectRef
	fraction float64
}

// checkWatchFlags rejects flag combinations that mix the one-shot and
// daemon modes: -scenario is a one-shot replay (its effects would fold
// invisibly into the watch baseline), and the batching knobs do nothing
// without the daemon loop. set holds the names of explicitly-set flags.
func checkWatchFlags(watch bool, set map[string]bool) error {
	if watch {
		if set["scenario"] {
			return fmt.Errorf("-scenario is a one-shot replay and cannot drive the -watch event loop; run it without -watch")
		}
		return nil
	}
	for _, name := range []string{"batch-window", "queue-cap"} {
		if set[name] {
			return fmt.Errorf("-%s only applies to the -watch daemon loop; add -watch or drop the flag", name)
		}
	}
	return nil
}

// checkStateFlags rejects the warm-state GC knobs without a warm-state
// directory to bound: they silently do nothing otherwise. set holds the
// names of explicitly-set flags.
func checkStateFlags(stateDir string, set map[string]bool) error {
	if stateDir != "" {
		return nil
	}
	for _, name := range []string{"state-gc-age", "state-cap"} {
		if set[name] {
			return fmt.Errorf("-%s bounds the -state-dir directory; add -state-dir or drop the flag", name)
		}
	}
	return nil
}

// watchOptions configures the -watch daemon loop.
type watchOptions struct {
	analyzer scout.AnalyzerOptions
	window   time.Duration
	queueCap int
}

// runWatch drives the event-driven session daemon the way a production
// deployment would: a cursor is parked at the dataplane event stream's
// tail, a full baseline round anchors the session, then events drain
// through a bounded coalescing queue and every batch cut — by size, by
// the deadline window, or by overflow backpressure — triggers one
// refresh round. In the default TCAM mode a round is one partial
// collection and incremental re-verification of just the switches the
// batch names; in probe mode (UseProbes) a round re-probes the live
// dataplane through Session.Analyze, whose TCAM fingerprints replay
// clean switches' verdicts and classify only the dirty ones' probe
// batches. A shutdown flush cuts whatever is still pending so no switch
// is stranded below the deadline. It returns the last report produced
// (the baseline's when no events arrive) and, in probe mode, the
// prober's counter snapshot.
func runWatch(f *scout.Fabric, faults []objectFault, opts watchOptions, w io.Writer) (*scout.Report, *scout.ProberStats, error) {
	sess, err := scout.NewSession(f, opts.analyzer)
	if err != nil {
		return nil, nil, err
	}
	probeMode := opts.analyzer.UseProbes
	// Park the cursor before the baseline collection so no mutation can
	// slip between the stream position and the collected state.
	cursor := f.EventLog().TailCursor()
	queue := scout.NewEventQueue(scout.EventQueueOptions{Cap: opts.queueCap, Window: opts.window})

	round := func(batch scout.EventBatch, label string) (*scout.Report, error) {
		before := sess.Stats()
		var report *scout.Report
		var err error
		if probeMode {
			// Probe rounds ignore the batch's switch list: the session's
			// fingerprint pass finds the dirty set itself, so the queue
			// only paces when rounds happen.
			report, err = sess.Analyze()
		} else {
			report, err = sess.ApplyEvents(batch)
		}
		if err != nil {
			return nil, err
		}
		after := sess.Stats()
		if probeMode {
			fmt.Fprintf(w, "%s: classified %d/%d switches (%d replayed, %d packets batched), %d missing rules, %v\n",
				label, after.ProbeSwitchesClassified-before.ProbeSwitchesClassified, len(report.Switches),
				after.ProbeSwitchesReplayed-before.ProbeSwitchesReplayed,
				after.ProbePacketsBatched-before.ProbePacketsBatched,
				report.TotalMissing, report.Elapsed.Round(time.Microsecond))
		} else {
			fmt.Fprintf(w, "%s: re-checked %d/%d switches (%d replayed), %d missing rules, %v\n",
				label, after.Checked-before.Checked, len(report.Switches),
				after.Replayed-before.Replayed, report.TotalMissing, report.Elapsed.Round(time.Microsecond))
		}
		return report, nil
	}
	cut := func() (*scout.Report, error) {
		batch := queue.Cut(f.Now())
		label := fmt.Sprintf("batch %d: %d switches (waited %v)",
			queue.Stats().Batches, len(batch.Switches), batch.Latency())
		return round(batch, label)
	}

	baselineLabel := "baseline: full collection"
	if probeMode {
		baselineLabel = "baseline: full probe round"
	}
	report, err := round(scout.EventBatch{}, baselineLabel)
	if err != nil {
		return nil, nil, err
	}

	// pump drains new events into the queue and cuts every batch that
	// came due (size, deadline, or overflow backpressure).
	pump := func() error {
		due := false
		for _, ev := range cursor.Drain() {
			due = queue.Push(ev) || due
		}
		for due || queue.Due(f.Now()) {
			due = false
			if report, err = cut(); err != nil {
				return err
			}
		}
		return nil
	}

	for _, flt := range faults {
		removed, err := f.InjectObjectFault(flt.ref, flt.fraction)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(w, "injected %s @%.2f: %d rules removed\n", flt.ref, flt.fraction, removed)
		if err := pump(); err != nil {
			return nil, nil, err
		}
	}
	// Shutdown flush: cut whatever is still below size and deadline.
	for queue.Len() > 0 {
		if report, err = cut(); err != nil {
			return nil, nil, err
		}
	}

	qs := queue.Stats()
	fmt.Fprintf(w, "event queue: %d pushed, %d coalesced, %d stale, %d overflows; %d batches (max %d switches)\n",
		qs.Pushed, qs.Coalesced, qs.Stale, qs.Overflows, qs.Batches, qs.MaxBatch)
	st := sess.Stats()
	fmt.Fprintf(w, "session localization: %d plan compiles / %d reuses, lazy heap %d re-evaluations for %d picks (vs %d eager scans)\n",
		st.PlanCompiles, st.PlanReuses, st.LazyEvals, st.LazyPicks, st.FullScanEvals)
	var pstats *scout.ProberStats
	if probeMode {
		fmt.Fprintf(w, "probe replay: %d switches classified, %d replayed, %d packets batched\n",
			st.ProbeSwitchesClassified, st.ProbeSwitchesReplayed, st.ProbePacketsBatched)
		if ps, ok := sess.ProberStats(); ok {
			pstats = &ps
			fmt.Fprintf(w, "prober: packet memo %d hits / %d misses, %d batch passes (%d packets batched), %d fallback probes\n",
				ps.MemoHits, ps.MemoMisses, ps.BatchPasses, ps.BatchedPackets, ps.FallbackProbes)
		}
		return report, pstats, nil
	}
	fmt.Fprintf(w, "streaming collection: %d partial refreshes, %d switches re-read, %d aliased\n",
		st.EventBatches, st.EventSwitchesRead, st.EventSwitchesAliased)
	fmt.Fprintf(w, "session encodings: base %d nodes (%d rebuilds, %d semantics), delta %d nodes, encode hits %d / misses %d\n",
		st.BaseNodes, st.BaseRebuilds, st.BaseSemantics, st.DeltaNodes, st.EncodeHits, st.EncodeMisses)
	fmt.Fprintf(w, "session fold sharing: hits %d / misses %d, check dedup %d groups / %d replays\n",
		st.FoldHits, st.FoldMisses, st.DedupGroups, st.DedupReplays)
	fmt.Fprintf(w, "session checker GC: %d compactions (%d retained / %d dropped), %d resets\n",
		st.CheckerCompactions, st.CompactRetained, st.CompactDropped, st.CheckerResets)
	return report, nil, nil
}

func loadPolicy(path, specName string, seed int64) (*scout.Policy, *scout.Topology, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		pol, err := scout.PolicyFromJSON(data)
		if err != nil {
			return nil, nil, err
		}
		return pol, scout.TopologyFromPolicy(pol), nil
	}
	var spec scout.WorkloadSpec
	switch specName {
	case "production":
		spec = scout.ProductionWorkloadSpec()
	case "testbed":
		spec = scout.TestbedWorkloadSpec()
	case "small":
		spec = scout.SmallFabricWorkloadSpec()
	default:
		return nil, nil, fmt.Errorf("unknown spec %q", specName)
	}
	return scout.GenerateWorkload(spec, seed)
}

func parseFault(s string) (scout.ObjectRef, float64, error) {
	refStr, fracStr, found := strings.Cut(s, "@")
	fraction := 1.0
	if found {
		var err error
		fraction, err = strconv.ParseFloat(fracStr, 64)
		if err != nil {
			return scout.ObjectRef{}, 0, fmt.Errorf("fault %q: bad fraction: %w", s, err)
		}
	}
	ref, err := scout.ParseObjectRef(refStr)
	if err != nil {
		return scout.ObjectRef{}, 0, fmt.Errorf("fault %q: %w", s, err)
	}
	return ref, fraction, nil
}
