package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"scout"
)

func TestBuildSpec(t *testing.T) {
	prod, err := buildSpec("production", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := buildSpec("testbed", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if prod.EPGs <= tb.EPGs {
		t.Errorf("production spec (%d EPGs) should dwarf testbed (%d EPGs)", prod.EPGs, tb.EPGs)
	}
	half, err := buildSpec("production", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.EPGs != prod.EPGs/2 {
		t.Errorf("scale 0.5: EPGs = %d, want %d", half.EPGs, prod.EPGs/2)
	}
	if _, err := buildSpec("nope", 1.0); err == nil {
		t.Error("unknown spec must fail")
	}
	if _, err := buildSpec("production", -1); err == nil {
		t.Error("negative scale must fail")
	}
}

// TestRunSmoke generates a tiny testbed policy to stdout and verifies the
// JSON round-trips through the public policy codec.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(config{specName: "testbed", scale: 0.5, seed: 3}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := scout.PolicyFromJSON(stdout.Bytes())
	if err != nil {
		t.Fatalf("output is not a loadable policy: %v", err)
	}
	if pol.Stats().EPGs == 0 {
		t.Error("generated policy has no EPGs")
	}
	if !strings.Contains(stderr.String(), "generated") {
		t.Errorf("stderr should carry the summary line, got %q", stderr.String())
	}
}

// TestRunWritesFile covers the -out path.
func TestRunWritesFile(t *testing.T) {
	path := t.TempDir() + "/policy.json"
	var stdout, stderr bytes.Buffer
	if err := run(config{specName: "testbed", scale: 0.5, seed: 3, out: path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("with -out, stdout should stay empty")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scout.PolicyFromJSON(data); err != nil {
		t.Fatalf("written file is not a loadable policy: %v", err)
	}
}
