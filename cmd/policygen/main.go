// Command policygen synthesizes a network policy calibrated to the
// paper's dataset statistics and writes it as JSON, for use with
// cmd/scout.
//
// Usage:
//
//	policygen -spec production -scale 0.25 -seed 42 -out policy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"scout"
)

// config carries the flag values so tests can drive run directly.
type config struct {
	specName string
	scale    float64
	seed     int64
	out      string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.specName, "spec", "production", "base spec: production, testbed, or small")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "scale factor applied to EPG/contract/filter/pair counts")
	flag.Int64Var(&cfg.seed, "seed", 42, "generator seed")
	flag.StringVar(&cfg.out, "out", "", "output file (default stdout)")
	flag.Parse()

	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "policygen:", err)
		os.Exit(1)
	}
}

// buildSpec resolves the base spec and applies the scale factor.
func buildSpec(specName string, scale float64) (scout.WorkloadSpec, error) {
	var spec scout.WorkloadSpec
	switch specName {
	case "production":
		spec = scout.ProductionWorkloadSpec()
	case "testbed":
		spec = scout.TestbedWorkloadSpec()
	case "small":
		spec = scout.SmallFabricWorkloadSpec()
	default:
		return spec, fmt.Errorf("unknown spec %q (want production, testbed, or small)", specName)
	}
	if scale != 1.0 {
		if scale <= 0 {
			return spec, fmt.Errorf("scale must be positive")
		}
		shrink := func(n int) int {
			v := int(float64(n) * scale)
			if v < 2 {
				v = 2
			}
			return v
		}
		spec.EPGs = shrink(spec.EPGs)
		spec.Contracts = shrink(spec.Contracts)
		spec.Filters = shrink(spec.Filters)
		spec.TargetPairs = shrink(spec.TargetPairs)
		spec.Switches = shrink(spec.Switches)
	}
	return spec, nil
}

func run(cfg config, stdout, stderr io.Writer) error {
	spec, err := buildSpec(cfg.specName, cfg.scale)
	if err != nil {
		return err
	}
	pol, _, err := scout.GenerateWorkload(spec, cfg.seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	st := pol.Stats()
	fmt.Fprintf(stderr, "generated %s policy: %d VRFs, %d EPGs, %d endpoints, %d contracts, %d filters, %d EPG pairs\n",
		spec.Name, st.VRFs, st.EPGs, st.Endpoints, st.Contracts, st.Filters, st.EPGPairs)

	if cfg.out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(cfg.out, data, 0o644)
}
