// Command policygen synthesizes a network policy calibrated to the
// paper's dataset statistics and writes it as JSON, for use with
// cmd/scout.
//
// Usage:
//
//	policygen -spec production -scale 0.25 -seed 42 -out policy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scout"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policygen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specName = flag.String("spec", "production", "base spec: production or testbed")
		scale    = flag.Float64("scale", 1.0, "scale factor applied to EPG/contract/filter/pair counts")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var spec scout.WorkloadSpec
	switch *specName {
	case "production":
		spec = scout.ProductionWorkloadSpec()
	case "testbed":
		spec = scout.TestbedWorkloadSpec()
	default:
		return fmt.Errorf("unknown spec %q (want production or testbed)", *specName)
	}
	if *scale != 1.0 {
		if *scale <= 0 {
			return fmt.Errorf("scale must be positive")
		}
		shrink := func(n int) int {
			v := int(float64(n) * *scale)
			if v < 2 {
				v = 2
			}
			return v
		}
		spec.EPGs = shrink(spec.EPGs)
		spec.Contracts = shrink(spec.Contracts)
		spec.Filters = shrink(spec.Filters)
		spec.TargetPairs = shrink(spec.TargetPairs)
		spec.Switches = shrink(spec.Switches)
	}

	pol, _, err := scout.GenerateWorkload(spec, *seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	st := pol.Stats()
	fmt.Fprintf(os.Stderr, "generated %s policy: %d VRFs, %d EPGs, %d endpoints, %d contracts, %d filters, %d EPG pairs\n",
		spec.Name, st.VRFs, st.EPGs, st.Endpoints, st.Contracts, st.Filters, st.EPGPairs)

	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
