package scout

import (
	"testing"

	"scout/internal/fabric"
	"scout/internal/object"
	"scout/internal/rule"
	"scout/internal/workload"
)

// TestProberCachedPerDeployment pins the probe-stage cross-run reuse: an
// analyzer hands out one prober per deployment fingerprint — pointer
// identity short-circuits, an equal-content deployment at a different
// address reuses the same prober, and a recompile (changed rules)
// rebuilds it.
func TestProberCachedPerDeployment(t *testing.T) {
	pol, tp, err := workload.Generate(workload.TestbedSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(pol, tp, fabric.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	d := f.Deployment()

	a := NewAnalyzer(AnalyzerOptions{UseProbes: true})
	p1 := a.proberFor(d)
	if p1 == nil {
		t.Fatal("nil prober")
	}
	if a.proberFor(d) != p1 {
		t.Error("same deployment pointer must reuse the prober")
	}

	// Same content at a different address: the fingerprint path keeps
	// the prober (and its packet memo) alive.
	copied := *d
	if a.proberFor(&copied) != p1 {
		t.Error("equal-content deployment must reuse the prober")
	}
	// ...and re-arms the pointer fast path for the new address.
	if a.proberFor(&copied) != p1 {
		t.Error("pointer fast path must track the latest deployment")
	}

	// A recompile-shaped change (one switch's rules differ) must rebuild.
	changed := *d
	changed.BySwitch = make(map[object.ID][]rule.Rule, len(d.BySwitch))
	for sw, rules := range d.BySwitch {
		changed.BySwitch[sw] = rules
	}
	for sw, rules := range changed.BySwitch {
		if len(rules) > 0 {
			changed.BySwitch[sw] = rules[1:]
			break
		}
	}
	if a.proberFor(&changed) == p1 {
		t.Error("changed deployment must rebuild the prober")
	}

	// End to end: repeated probe analyses share the memo, so the second
	// run synthesizes nothing new.
	if _, err := a.Analyze(f); err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := a.prober.MemoStats()
	if _, err := a.Analyze(f); err != nil {
		t.Fatal(err)
	}
	hits, misses := a.prober.MemoStats()
	if misses != missesAfterFirst {
		t.Errorf("second probe run synthesized %d new packets, want 0", misses-missesAfterFirst)
	}
	if hits == 0 {
		t.Error("second probe run must hit the shared packet memo")
	}
}
