package scout_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"scout"
)

func deployedThreeTier(t *testing.T, seed int64) *scout.Fabric {
	t.Helper()
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAnalyzeRequiresDeploy(t *testing.T) {
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scout.NewAnalyzer().Analyze(f); err == nil {
		t.Error("Analyze before Deploy must fail")
	}
	if _, err := scout.NewAnalyzer().AnalyzeSwitch(f, 1); err == nil {
		t.Error("AnalyzeSwitch before Deploy must fail")
	}
}

func TestAnalyzeWithProbes(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{UseProbes: true}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("probe mode must detect the missing rules")
	}
	found := false
	for _, ref := range rep.Hypothesis {
		if ref == scout.FilterRef(700) {
			found = true
		}
	}
	if !found {
		t.Errorf("probe-mode hypothesis %v must contain filter:700", rep.Hypothesis)
	}
}

func TestAnalyzeWithNaiveChecker(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	// Generated policies have non-overlapping rules, so the naive differ
	// must agree with the BDD checker.
	bddRep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	naiveRep, err := scout.NewAnalyzer(scout.AnalyzerOptions{UseNaiveChecker: true}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if bddRep.TotalMissing != naiveRep.TotalMissing {
		t.Errorf("checker disagreement: bdd=%d naive=%d missing", bddRep.TotalMissing, naiveRep.TotalMissing)
	}
	if len(bddRep.Hypothesis) != len(naiveRep.Hypothesis) {
		t.Errorf("hypotheses differ: %v vs %v", bddRep.Hypothesis, naiveRep.Hypothesis)
	}
}

func TestAnalyzeSwitchScoped(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	// Filter 700 rules live on switches 2 and 3 only.
	sr1, err := scout.NewAnalyzer().AnalyzeSwitch(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sr1.Equivalent || sr1.Result != nil {
		t.Error("switch 1 must be consistent")
	}
	sr2, err := scout.NewAnalyzer().AnalyzeSwitch(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Equivalent || sr2.Result == nil {
		t.Fatal("switch 2 must be inconsistent with a localization result")
	}
	found := false
	for _, ref := range sr2.Result.Hypothesis {
		if ref == scout.FilterRef(700) {
			found = true
		}
	}
	if !found {
		t.Errorf("switch-scoped hypothesis %v must contain filter:700", sr2.Result.Hypothesis)
	}
	if _, err := scout.NewAnalyzer().AnalyzeSwitch(f, 99); err == nil {
		t.Error("unknown switch must fail")
	}
}

// TestAnalyzeSwitchRequiresDeploy pins the event-driven single-switch
// mode's precondition: no compiled desired state, no check.
func TestAnalyzeSwitchRequiresDeploy(t *testing.T) {
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scout.NewAnalyzer().AnalyzeSwitch(f, 1); err == nil {
		t.Error("AnalyzeSwitch before Deploy must fail")
	}
}

// TestAnalyzeSwitchObservationSources runs the single-switch mode through
// each observation source — probes and the naive differ — which share the
// fan-out machinery but take different checker paths.
func TestAnalyzeSwitchObservationSources(t *testing.T) {
	for _, opts := range []scout.AnalyzerOptions{
		{UseProbes: true},
		{UseNaiveChecker: true},
	} {
		f := deployedThreeTier(t, 1)
		if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
			t.Fatal(err)
		}
		sr, err := scout.NewAnalyzer(opts).AnalyzeSwitch(f, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Equivalent || len(sr.MissingRules) == 0 || sr.Result == nil {
			t.Errorf("opts %+v: switch 2 report = %+v, want missing rules and a localization", opts, sr)
		}
		clean, err := scout.NewAnalyzer(opts).AnalyzeSwitch(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !clean.Equivalent || clean.Result != nil {
			t.Errorf("opts %+v: switch 1 must stay consistent", opts)
		}
		// Probing an unknown switch surfaces the fabric error too.
		if _, err := scout.NewAnalyzer(opts).AnalyzeSwitch(f, 99); err == nil {
			t.Errorf("opts %+v: unknown switch must fail", opts)
		}
	}
}

func TestAnalyzeDetectsCorruptionAsExtraRules(t *testing.T) {
	f := deployedThreeTier(t, 5)
	damaged, err := f.CorruptTCAM(2, 2, scout.CorruptVRF)
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) == 0 {
		t.Skip("corruption hit nothing")
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("corruption must break equivalence")
	}
	var s2 *scout.SwitchReport
	for i := range rep.Switches {
		if rep.Switches[i].Switch == 2 {
			s2 = &rep.Switches[i]
		}
	}
	if s2 == nil || s2.Equivalent {
		t.Fatal("switch 2 must be flagged")
	}
	if len(s2.MissingRules) == 0 {
		t.Error("corrupted rules must appear missing (intended behaviour absent)")
	}
	if len(s2.ExtraRules) == 0 {
		t.Error("corrupted rules must appear extra (bogus behaviour present)")
	}
}

func TestAnalyzeEvictionLocalized(t *testing.T) {
	f := deployedThreeTier(t, 11)
	evicted, err := f.EvictTCAM(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("eviction must be detected")
	}
	// Only switch 3 is affected.
	for _, sr := range rep.Switches {
		if sr.Switch == 3 && sr.Equivalent {
			t.Error("switch 3 must be inconsistent")
		}
		if sr.Switch != 3 && !sr.Equivalent {
			t.Errorf("switch %d must stay consistent", sr.Switch)
		}
	}
}

func TestReportJSON(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"Consistent":false`, `"Hypothesis"`, `"elapsedMillis"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s[:200])
		}
	}
	// Round-trippable into a generic map (schema sanity).
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["Switches"]; !ok {
		t.Error("JSON must carry per-switch reports")
	}
}

func TestAnalyzerChangeWindow(t *testing.T) {
	f := deployedThreeTier(t, 1)
	// Partial fault: stage 1 cannot reach hit ratio 1 for filter:80 (it
	// spans S1, S2, S3); the change-log stage must pick it up — unless
	// the window excludes the change.
	if _, err := f.InjectObjectFault(scout.FilterRef(80), 0.34); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{ChangeWindow: 24 * time.Hour}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("partial fault must be detected")
	}
	// A 1ns window excludes the injection-time change entry, so stage 2
	// has nothing to work with: either fewer objects or unexplained
	// observations remain.
	tiny, err := scout.NewAnalyzer(scout.AnalyzerOptions{ChangeWindow: time.Nanosecond}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny.Controller.Unexplained) < len(rep.Controller.Unexplained) {
		t.Errorf("shrinking the window cannot explain more: %d vs %d",
			len(tiny.Controller.Unexplained), len(rep.Controller.Unexplained))
	}
}

func TestAnalyzerIncludeSwitchRiskOff(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if err := f.Disconnect(2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilter(scout.Filter{ID: 443, Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 443),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(202, 443); err != nil {
		t.Fatal(err)
	}
	off := false
	rep, err := scout.NewAnalyzer(scout.AnalyzerOptions{IncludeSwitchRisk: &off}).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range rep.Hypothesis {
		if ref.Kind == scout.KindSwitch {
			t.Errorf("switch risks disabled but hypothesis has %v", ref)
		}
	}
}

func TestAnalyzeStateFromEpoch(t *testing.T) {
	// Post-incident forensics: snapshot state before and after a fault,
	// then analyze the historical epochs offline via AnalyzeState.
	f := deployedThreeTier(t, 1)
	collector := scout.NewCollector(f, 0)
	before := collector.Snapshot()

	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	after := collector.Snapshot()

	analyzer := scout.NewAnalyzer()
	cleanRep, err := analyzer.AnalyzeState(scout.State{
		Deployment: f.Deployment(),
		TCAM:       before.TCAM,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        before.Time,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRep.Consistent {
		t.Error("pre-fault epoch must analyze consistent")
	}

	faultRep, err := analyzer.AnalyzeState(scout.State{
		Deployment: f.Deployment(),
		TCAM:       after.TCAM,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        after.Time,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faultRep.Consistent {
		t.Fatal("post-fault epoch must analyze inconsistent")
	}
	found := false
	for _, ref := range faultRep.Hypothesis {
		if ref == scout.FilterRef(700) {
			found = true
		}
	}
	if !found {
		t.Errorf("epoch hypothesis %v must contain filter:700", faultRep.Hypothesis)
	}

	// The epoch diff pinpoints exactly the removed rules.
	deltas := scout.DiffEpochs(before, after)
	removed := 0
	for _, d := range deltas {
		removed += len(d.Removed)
		if len(d.Added) != 0 {
			t.Errorf("switch %d gained rules unexpectedly", d.Switch)
		}
	}
	if removed != faultRep.TotalMissing {
		t.Errorf("epoch diff removed %d rules, checker reported %d missing", removed, faultRep.TotalMissing)
	}
}

func TestAnalyzeStateNilLogs(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer().AnalyzeState(scout.State{
		Deployment: f.Deployment(),
		TCAM:       f.CollectAll(),
		Now:        f.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Error("fault must be detected even without logs")
	}
	if _, err := scout.NewAnalyzer().AnalyzeState(scout.State{}); err == nil {
		t.Error("state without deployment must fail")
	}
}

func TestMaxCoverageBaselineTradesPrecisionForRecall(t *testing.T) {
	f := deployedThreeTier(t, 1)
	if _, err := f.InjectObjectFault(scout.FilterRef(700), 1.0); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Deployment()
	model := scout.BuildControllerRiskModel(d, scout.ControllerModelOptions{IncludeSwitchRisk: true})
	for _, sr := range rep.Switches {
		if !sr.Equivalent {
			scout.AugmentControllerRiskModel(model, sr.Switch, sr.MissingRules, d.Provenance)
		}
	}
	res := scout.LocalizeMaxCoverage(model)
	if len(res.Unexplained) != 0 {
		t.Error("max coverage must explain every observation")
	}
	if len(res.Hypothesis) == 0 {
		t.Error("hypothesis empty")
	}
}

func TestSummaryRendering(t *testing.T) {
	// Inconsistent + root cause path.
	f := deployedThreeTier(t, 1)
	if err := f.Disconnect(2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilter(scout.Filter{ID: 443, Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 443),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(202, 443); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"INCONSISTENT", "hypothesis", "root causes", "unreachable"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}

	// Inconsistent + silent fault path (no root cause matched).
	f2 := deployedThreeTier(t, 2)
	if _, err := f2.EvictTCAM(1, 1); err != nil {
		t.Fatal(err)
	}
	rep2, err := scout.NewAnalyzer().Analyze(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep2.Summary(), "silent fault") {
		t.Errorf("silent-fault summary wrong:\n%s", rep2.Summary())
	}
}
