package scout_test

import (
	"bytes"
	"runtime"
	"testing"

	"scout"
)

// TestSessionWarmRestartIdentity pins the tentpole end to end: a fresh
// process (new store handle, new session) over an unchanged fabric
// restores the persisted base and verdicts and replays the previous
// report byte-identically — zero switches re-checked, zero match or
// fold encodes — at every worker count. A subsequent mutation re-checks
// exactly the dirty switch, proving the restored cache stays live, not
// just replayable.
func TestSessionWarmRestartIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		dir := t.TempDir()
		f := faultyFabric(t, 11)
		numSwitches := f.Topology().NumSwitches()
		opts := func(ws *scout.WarmStore) scout.AnalyzerOptions {
			return scout.AnalyzerOptions{Workers: workers, WarmStore: ws}
		}

		ws1, err := scout.OpenWarmStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess1, err := scout.NewSession(f, opts(ws1))
		if err != nil {
			t.Fatal(err)
		}
		rep1, err := sess1.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if st := sess1.Stats(); st.BaseRebuilds != 1 || st.BaseLoads != 0 || st.Checked != numSwitches {
			t.Fatalf("workers=%d cold stats: %+v", workers, st)
		}
		want := marshalReport(t, rep1)
		if err := sess1.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ws1.Close(); err != nil {
			t.Fatal(err)
		}

		// "Restart": a fresh store handle and session over the same
		// unchanged fabric.
		ws2, err := scout.OpenWarmStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess2, err := scout.NewSession(f, opts(ws2))
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := sess2.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		st := sess2.Stats()
		if st.BaseRebuilds != 0 || st.BaseLoads != 1 {
			t.Errorf("workers=%d: warm restart rebuilt the base: %+v", workers, st)
		}
		if st.Checked != 0 || st.Replayed != numSwitches {
			t.Errorf("workers=%d: warm restart checked %d, replayed %d, want 0/%d",
				workers, st.Checked, st.Replayed, numSwitches)
		}
		if st.EncodeMisses != 0 || st.FoldMisses != 0 {
			t.Errorf("workers=%d: warm restart encoded: %d match, %d fold misses",
				workers, st.EncodeMisses, st.FoldMisses)
		}
		if !bytes.Equal(want, marshalReport(t, rep2)) {
			t.Errorf("workers=%d: restarted report differs from original", workers)
		}

		// Dirty restart leg: mutate one switch; only it re-checks, and the
		// report still matches a cold analyzer on the same state.
		dirtySw := f.Topology().Switches()[0]
		removeOneRule(t, f, dirtySw)
		rep3, err := sess2.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		after := sess2.Stats()
		if got := after.Checked - st.Checked; got != 1 {
			t.Errorf("workers=%d: dirty restart re-checked %d switches, want 1", workers, got)
		}
		cold, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: workers}).Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, rep3), marshalReport(t, cold)) {
			t.Errorf("workers=%d: dirty restart report differs from cold analyzer", workers)
		}
		if err := sess2.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ws2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionProbeWarmRestart pins the probe-mode half of durable warm
// state: probe verdicts persist keyed by the deployment fingerprint, so
// a restarted probe session replays a fingerprint-clean fabric with
// zero switches classified.
func TestSessionProbeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	f := faultyFabric(t, 13)
	numSwitches := f.Topology().NumSwitches()
	opts := func(ws *scout.WarmStore) scout.AnalyzerOptions {
		return scout.AnalyzerOptions{UseProbes: true, WarmStore: ws}
	}

	ws1, err := scout.OpenWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess1, err := scout.NewSession(f, opts(ws1))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := sess1.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if st := sess1.Stats(); st.ProbeSwitchesClassified != numSwitches {
		t.Fatalf("cold probe stats: %+v", st)
	}
	want := marshalReport(t, rep1)
	if err := sess1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ws1.Close(); err != nil {
		t.Fatal(err)
	}

	ws2, err := scout.OpenWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	sess2, err := scout.NewSession(f, opts(ws2))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sess2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	st := sess2.Stats()
	if st.ProbeSwitchesClassified != 0 || st.ProbeSwitchesReplayed != numSwitches {
		t.Errorf("warm probe restart classified %d, replayed %d, want 0/%d",
			st.ProbeSwitchesClassified, st.ProbeSwitchesReplayed, numSwitches)
	}
	if !bytes.Equal(want, marshalReport(t, rep2)) {
		t.Error("restarted probe report differs from original")
	}
}

// TestCrossDeploymentBaseSharing pins the registry acceptance
// criterion: two sessions over byte-equal rule lists sharing one
// BaseRegistry build each distinct whole-switch semantics BDD exactly
// once process-wide — the first session folds them all, the second
// grafts every one from the registry and folds nothing.
func TestCrossDeploymentBaseSharing(t *testing.T) {
	reg := scout.NewBaseRegistry()
	opts := scout.AnalyzerOptions{Workers: 2, BaseRegistry: reg}

	// Same workload seed twice: two independent fabrics whose compiled
	// deployments carry byte-equal per-switch rule lists.
	f1 := faultyFabric(t, 17)
	f2 := faultyFabric(t, 17)

	sess1, err := scout.NewSession(f1, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := sess1.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	st1 := sess1.Stats()
	if st1.BaseSemGrafts != 0 || st1.BaseSemFolds == 0 {
		t.Fatalf("donor session stats: %+v", st1)
	}

	sess2, err := scout.NewSession(f2, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sess2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	st2 := sess2.Stats()
	if st2.BaseSemFolds != 0 || st2.BaseSemGrafts != st1.BaseSemFolds {
		t.Errorf("sharing session folded %d, grafted %d, want 0 folds and %d grafts",
			st2.BaseSemFolds, st2.BaseSemGrafts, st1.BaseSemFolds)
	}
	rst := reg.Stats()
	if rst.Hits != st2.BaseSemGrafts || rst.Collisions != 0 {
		t.Errorf("registry stats: %+v, want %d hits", rst, st2.BaseSemGrafts)
	}
	// Identical fabrics, identical reports — grafting changed nothing
	// observable.
	if !bytes.Equal(marshalReport(t, rep1), marshalReport(t, rep2)) {
		t.Error("sharing session's report differs from donor's")
	}
}
